// Continuous monitoring under an update stream: the scenario the paper's
// dynamic maintenance targets. An e-commerce network keeps changing; a
// watchlist of vertices must be re-scored after every change. The example
// contrasts the maintained index against the naive alternative (rebuild
// per change) and verifies both agree.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	cyclehub "repro"
)

const (
	vertices = 1200
	edges    = 3600
	updates  = 200
	watch    = 5
)

func main() {
	r := rand.New(rand.NewSource(23))
	g := cyclehub.NewGraph(vertices)
	for g.NumEdges() < edges {
		u, v := r.Intn(vertices), r.Intn(vertices)
		if u != v && !g.HasEdge(u, v) {
			mustOK(g.AddEdge(u, v))
		}
	}
	watchlist := r.Perm(vertices)[:watch]

	start := time.Now()
	idx := cyclehub.BuildIndex(g)
	buildTime := time.Since(start)
	fmt.Printf("initial build: %s for %d vertices / %d edges\n", buildTime, vertices, edges)

	var insTotal, delTotal time.Duration
	var ins, del int
	for k := 0; k < updates; k++ {
		u, v := r.Intn(vertices), r.Intn(vertices)
		if u == v {
			continue
		}
		if idx.Graph().HasEdge(u, v) {
			t0 := time.Now()
			mustOK(idx.DeleteEdge(u, v))
			delTotal += time.Since(t0)
			del++
		} else {
			t0 := time.Now()
			mustOK(idx.InsertEdge(u, v))
			insTotal += time.Since(t0)
			ins++
		}
		// The watchlist is re-scored after every change — microseconds
		// per vertex, so it is effectively free.
		for _, w := range watchlist {
			idx.CycleCount(w)
		}
	}
	fmt.Printf("absorbed %d insertions (avg %s) and %d deletions (avg %s)\n",
		ins, insTotal/time.Duration(max(ins, 1)), del, delTotal/time.Duration(max(del, 1)))
	fmt.Printf("rebuild-per-update would have cost ≈ %s each; incremental insertion is %.0fx cheaper\n",
		buildTime, float64(buildTime)/float64(insTotal/time.Duration(max(ins, 1))))

	// End-to-end verification: the maintained index agrees with a fresh
	// BFS on every watched vertex.
	for _, w := range watchlist {
		got := idx.CycleCount(w)
		want := cyclehub.CycleCountBFS(idx.Graph(), w)
		if got != want {
			log.Fatalf("divergence at %d: %+v vs %+v", w, got, want)
		}
		fmt.Printf("watch %4d: %+v (verified)\n", w, got)
	}
}

func mustOK(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
