// The replicated-cluster walkthrough: the cscd/cscrouter deployment
// driven end to end from one process, over real loopback HTTP. Two
// worker groups each serve the full index (reads partition across them
// by shard placement, writes broadcast to both); group 0's primary
// ships its WAL to a follower; a router fronts everything with health
// probes and a periodically refreshed routing table. Mid-run the
// walkthrough kills group 0's primary and shows the router promoting
// the follower and answering through the blackout.
//
// The same cluster as real processes is four terminals:
//
//	$ go run ./cmd/cscd -addr :8440 -data /tmp/f0 -vertices 200 -follower
//	$ go run ./cmd/cscd -addr :8337 -data /tmp/w0 -vertices 200 -replicate-to http://127.0.0.1:8440
//	$ go run ./cmd/cscd -addr :8338 -data /tmp/w1 -vertices 200
//	$ go run ./cmd/cscrouter -addr :8000 \
//	    -group http://127.0.0.1:8337,http://127.0.0.1:8440 \
//	    -group http://127.0.0.1:8338
//
//	$ curl -X POST 'localhost:8000/edges?flush=1' -d '{"edges":[[0,1],[1,2],[2,0]]}'
//	$ curl localhost:8000/cycle/0
//	$ curl localhost:8000/cluster/table
//	$ kill %2   # kill the primary: reads keep answering, the follower is promoted
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	cyclehub "repro"
	"repro/internal/dist"
)

const (
	vertices = 200
	stream   = 600
)

func main() {
	mk := func() string {
		dir, err := os.MkdirTemp("", "csc-cluster")
		must(err)
		return dir
	}
	dirs := []string{mk(), mk(), mk()}
	defer func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()
	boot := func() (*cyclehub.Index, error) {
		return cyclehub.BuildIndex(cyclehub.NewGraph(vertices)), nil
	}

	// The follower first: it replays the primary's WAL shipments and
	// serves flagged stale reads until promoted.
	fol, err := cyclehub.OpenFollower(dirs[0], boot)
	must(err)
	folURL, folClose := listen(fol.Handler())
	defer folClose()
	fmt.Printf("follower   on %s (replays group 0's WAL)\n", folURL)

	// Group 0's primary ships every committed batch to the follower;
	// group 1 is a second read replica group (no follower of its own).
	w0, err := cyclehub.OpenEngine(dirs[1], boot, cyclehub.WithReplicateTo(folURL))
	must(err)
	w0URL, w0Close := listen(w0.Handler())
	w1, err := cyclehub.OpenEngine(dirs[2], boot)
	must(err)
	w1URL, w1Close := listen(w1.Handler())
	defer w1Close()
	fmt.Printf("worker w0  on %s (group 0 primary)\nworker w1  on %s (group 1 primary)\n", w0URL, w1URL)

	// The router: shard table fetched from w0, fast probes, and a table
	// refresh so vertices that gain cycles get routed instead of answered
	// trivially from the boot-time snapshot.
	table, err := dist.FetchTable(w0URL, 2, nil)
	must(err)
	router, err := dist.NewRouter(table, []dist.GroupConfig{
		{Primary: w0URL, Follower: folURL},
		{Primary: w1URL},
	}, dist.RouterOptions{
		ProbeInterval: 50 * time.Millisecond,
		ProbeMisses:   2,
		TableRefresh:  100 * time.Millisecond,
	})
	must(err)
	defer router.Close()
	base, routerClose := listen(router.Handler())
	defer routerClose()
	fmt.Printf("router     on %s\n\n", base)

	// Stream edges through the router: every batch broadcasts to both
	// groups and ships to the follower.
	r := rand.New(rand.NewSource(7))
	batch := make([][2]int, 0, 32)
	sent := 0
	t0 := time.Now()
	for sent < stream {
		u, v := r.Intn(vertices), r.Intn(vertices)
		if u == v {
			continue
		}
		batch = append(batch, [2]int{u, v})
		sent++
		if len(batch) == cap(batch) || sent == stream {
			body, _ := json.Marshal(map[string]any{"edges": batch})
			resp, err := http.Post(base+"/edges?flush=1", "application/json", bytes.NewReader(body))
			must(err)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("broadcast write: status %d", resp.StatusCode)
			}
			batch = batch[:0]
		}
	}
	fmt.Printf("streamed %d edge inserts through the router in %s (lag now %d batches)\n",
		sent, time.Since(t0).Round(time.Millisecond), w0.ReplicationLag())

	// Wait for a table refresh to absorb the components the stream
	// created, then find a cycle-carrying vertex and remember its answer.
	probe, want := findCycle(base)
	fmt.Printf("vertex %d answers %s\n", probe, want)

	// Kill group 0's primary: its listener goes dark mid-flight, exactly
	// like a crashed process. The router's probes miss, it promotes the
	// follower (replay to tip, then the full serving surface), and reads
	// keep answering throughout.
	fmt.Printf("\nkilling w0...\n")
	w0Close()
	killedAt := time.Now()
	for router.Failovers() == 0 {
		resp, err := http.Get(fmt.Sprintf("%s/cycle/%d", base, probe))
		must(err)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("read during blackout: status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("router failed over to the follower %s after the kill; reads never stopped\n",
		time.Since(killedAt).Round(time.Millisecond))

	got := getCycle(base, probe)
	fmt.Printf("vertex %d still answers %s\n", probe, got)
	if got != want {
		log.Fatal("promoted follower diverged from the pre-kill answer!")
	}

	// Writes flow again — now broadcast to the promoted follower and w1.
	body, _ := json.Marshal(map[string]any{"edges": [][2]int{{0, 1}, {1, 0}}})
	resp, err := http.Post(base+"/edges?flush=1", "application/json", bytes.NewReader(body))
	must(err)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("post-failover write: status %d", resp.StatusCode)
	}
	fmt.Printf("post-failover write accepted; vertex 0 now answers %s\n", getCycle(base, 0))

	// Graceful shutdown: w0's engine is still alive (only its listener
	// died) and its replication stream drained before the kill, so Close
	// passes the in-flight-shipment barrier cleanly.
	must(w0.Close())
	must(w1.Close())
	must(fol.Close())
	fmt.Println("clean shutdown: replication barrier passed, stores unlocked")
}

// findCycle polls through the router until the refreshed table routes a
// vertex with a cycle, and returns that vertex and its answer.
func findCycle(base string) (int, string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		for v := 0; v < vertices; v++ {
			if ans := getCycle(base, v); ans != "no cycle" {
				return v, ans
			}
		}
		if time.Now().After(deadline) {
			log.Fatal("no routed cycle appeared; table refresh broken?")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getCycle(base string, v int) string {
	resp, err := http.Get(fmt.Sprintf("%s/cycle/%d", base, v))
	must(err)
	defer resp.Body.Close()
	var out struct {
		Exists bool   `json:"exists"`
		Length int    `json:"length"`
		Count  uint64 `json:"count"`
		Stale  bool   `json:"stale,omitempty"`
	}
	must(json.NewDecoder(resp.Body).Decode(&out))
	if !out.Exists {
		return "no cycle"
	}
	s := fmt.Sprintf("%d cycles of length %d", out.Count, out.Length)
	if out.Stale {
		s += " (stale)"
	}
	return s
}

// listen mounts a handler on a loopback port and returns its base URL
// and a closer that kills the listener the way process death would.
func listen(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
