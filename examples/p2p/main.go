// File-sharing optimization (the paper's Application 2): in a peer-to-peer
// network, a host with many short request/transfer cycles is both easy to
// reach and failure-tolerant — a good index-server candidate. This example
// scores every host by SCCnt with the CSC index and contrasts the
// per-query latency against the O(n+m) BFS baseline, the trade-off that
// motivates the index in the first place.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	cyclehub "repro"
)

const (
	hosts   = 2000
	degree  = 4 // outgoing interactions per host
	samples = 300
)

func main() {
	g := buildOverlay()
	fmt.Printf("p2p overlay: %d hosts, %d interactions\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	idx := cyclehub.BuildIndex(g)
	fmt.Printf("index built in %s (%d label entries)\n",
		time.Since(start).Round(time.Millisecond), idx.Stats().Entries)

	// Score all hosts: prefer many short cycles (quick, redundant routes).
	type host struct {
		id  int
		res cyclehub.CycleResult
	}
	var scored []host
	for v := 0; v < hosts; v++ {
		if r := idx.CycleCount(v); r.Exists {
			scored = append(scored, host{v, r})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		a, b := scored[i].res, scored[j].res
		if a.Length != b.Length {
			return a.Length < b.Length
		}
		return a.Count > b.Count
	})
	fmt.Println("\nindex-server candidates (shortest cycles, most routes):")
	for i := 0; i < 5 && i < len(scored); i++ {
		h := scored[i]
		fmt.Printf("  host %4d: %d cycles of length %d\n", h.id, h.res.Count, h.res.Length)
	}

	// Latency comparison on a random sample of hosts.
	r := rand.New(rand.NewSource(2))
	sample := make([]int, samples)
	for i := range sample {
		sample[i] = r.Intn(hosts)
	}
	t0 := time.Now()
	for _, v := range sample {
		idx.CycleCount(v)
	}
	perIdx := time.Since(t0) / samples
	t0 = time.Now()
	for _, v := range sample {
		cyclehub.CycleCountBFS(idx.Graph(), v)
	}
	perBFS := time.Since(t0) / samples
	fmt.Printf("\navg query latency: CSC %s vs BFS %s (%.0fx)\n",
		perIdx, perBFS, float64(perBFS)/float64(perIdx))
}

// buildOverlay wires a Gnutella-like overlay: every host opens `degree`
// connections to random peers, no reciprocal pairs.
func buildOverlay() *cyclehub.Graph {
	g := cyclehub.NewGraph(hosts)
	r := rand.New(rand.NewSource(17))
	for v := 0; v < hosts; v++ {
		for g.OutDegree(v) < degree {
			w := r.Intn(hosts)
			if w == v || g.HasEdge(v, w) || g.HasEdge(w, v) {
				continue
			}
			if err := g.AddEdge(v, w); err != nil {
				log.Fatal(err)
			}
		}
	}
	return g
}
