// The serving walkthrough: the cscd scenario driven end to end from one
// process. An engine with WAL durability and a top-k watch is started
// over an empty graph, its HTTP API (the exact surface cscd listens on)
// is mounted on a local port, edges are streamed in over HTTP while
// queries run, the top-k watchlist is read back, and finally the engine
// is "killed" and reopened to show snapshot+WAL recovery.
//
// The same session against a real daemon is two terminals:
//
//	$ go run ./cmd/cscd -addr :8337 -data /tmp/cscd -vertices 100 -k 5
//
//	$ curl -X POST 'localhost:8337/edges?flush=1' -d '{"edges":[[0,1],[1,2],[2,0]]}'
//	$ curl localhost:8337/cycle/0
//	$ curl localhost:8337/top
//	$ curl localhost:8337/stats
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	cyclehub "repro"
)

const (
	vertices = 300
	stream   = 900
	topK     = 5
)

func main() {
	dir, err := os.MkdirTemp("", "cscd-example")
	must(err)
	defer os.RemoveAll(dir)

	// An engine over an empty graph, durable in dir, with a top-k watch.
	eng, err := cyclehub.OpenEngine(dir,
		func() (*cyclehub.Index, error) { return cyclehub.BuildIndex(cyclehub.NewGraph(vertices)), nil },
		cyclehub.WithTopK(topK), cyclehub.WithSnapshotEvery(8))
	must(err)

	// Mount the daemon's HTTP surface on a local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	srv := &http.Server{Handler: eng.Handler()}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// Stream random edges over HTTP in batches, the way a feed would.
	r := rand.New(rand.NewSource(7))
	batch := make([][2]int, 0, 64)
	sent := 0
	t0 := time.Now()
	for sent < stream {
		u, v := r.Intn(vertices), r.Intn(vertices)
		if u == v {
			continue
		}
		batch = append(batch, [2]int{u, v})
		sent++
		if len(batch) == cap(batch) || sent == stream {
			body, _ := json.Marshal(map[string]any{"edges": batch})
			resp, err := http.Post(base+"/edges?flush=1", "application/json", bytes.NewReader(body))
			must(err)
			resp.Body.Close()
			batch = batch[:0]
		}
	}
	fmt.Printf("streamed %d edge inserts over HTTP in %s\n", sent, time.Since(t0).Round(time.Millisecond))

	// Read the watchlist back.
	resp, err := http.Get(base + "/top")
	must(err)
	var top struct {
		Top []struct {
			Vertex int    `json:"vertex"`
			Length int    `json:"length"`
			Count  uint64 `json:"count"`
		} `json:"top"`
	}
	must(json.NewDecoder(resp.Body).Decode(&top))
	resp.Body.Close()
	fmt.Println("top cycle-carrying vertices:")
	for i, row := range top.Top {
		fmt.Printf("  #%d vertex %4d: %d shortest cycles of length %d\n", i+1, row.Vertex, row.Count, row.Length)
	}

	// Library-side queries hit the same engine concurrently with HTTP.
	st := eng.Stats()
	fmt.Printf("engine: %d edges, %d batches applied, %d ops coalesced, WAL %d bytes\n",
		st.Edges, st.Batches, st.OpsCoalesced, st.WALBytes)

	// "Kill" the process and recover. Close persists nothing new — there
	// is no final snapshot, and every batch was WAL-fsynced before it
	// applied — it only releases the store's lock, exactly as process
	// death would. Reopening replays the WAL over the last periodic
	// snapshot and every answer survives.
	_ = srv.Close()
	want := eng.CycleCount(top.Top[0].Vertex)
	must(eng.Close())
	eng2, err := cyclehub.OpenEngine(dir,
		func() (*cyclehub.Index, error) { return nil, fmt.Errorf("bootstrap must not rerun: a snapshot exists") },
		cyclehub.WithTopK(topK), cyclehub.WithSnapshotEvery(8))
	must(err)
	got := eng2.CycleCount(top.Top[0].Vertex)
	fmt.Printf("after crash+recovery, vertex %d still answers %+v (was %+v)\n", top.Top[0].Vertex, got, want)
	if got != want {
		log.Fatal("recovery diverged!")
	}
	must(eng2.Close())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
