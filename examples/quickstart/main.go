// Quickstart: build a CSC index over the paper's Figure 2 graph, answer
// shortest-cycle-counting queries, maintain the index through edge
// updates, and persist it to disk.
package main

import (
	"bytes"
	"fmt"
	"log"

	cyclehub "repro"
)

func main() {
	// The 10-vertex graph of the paper's Figure 2 (v1 is vertex 0).
	g, err := cyclehub.GraphFromEdges(10, [][2]int{
		{0, 2}, {0, 3}, {0, 4},
		{2, 5},
		{3, 6}, {4, 6}, {5, 6},
		{6, 7}, {7, 8}, {8, 9},
		{9, 0}, {9, 1},
		{1, 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	idx := cyclehub.BuildIndex(g)
	fmt.Printf("index: %+v\n", idx.Stats())

	// Example 1 of the paper: three shortest cycles of length 6 through v7.
	r := idx.CycleCount(6)
	fmt.Printf("SCCnt(v7) = %d shortest cycles of length %d\n", r.Count, r.Length)

	// A one-off query without an index (the BFS baseline) agrees.
	b := cyclehub.CycleCountBFS(idx.Graph(), 6)
	fmt.Printf("BFS check  = %d cycles of length %d\n", b.Count, b.Length)

	// Dynamic maintenance: v4→v7 already exists, so inserting v7→v4
	// creates a reciprocal pair — the new shortest cycle through v7 has
	// length 2, and the index absorbs the change without a rebuild.
	if err := idx.InsertEdge(6, 3); err != nil {
		log.Fatal(err)
	}
	r = idx.CycleCount(6)
	fmt.Printf("after insert(v7→v4): SCCnt(v7) = %d cycles of length %d\n", r.Count, r.Length)

	if err := idx.DeleteEdge(6, 3); err != nil {
		log.Fatal(err)
	}
	r = idx.CycleCount(6)
	fmt.Printf("after delete(v7→v4): SCCnt(v7) = %d cycles of length %d\n", r.Count, r.Length)

	// Persistence: the serialized index reloads query- and update-ready.
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := cyclehub.ReadIndex(&buf)
	if err != nil {
		log.Fatal(err)
	}
	r = loaded.CycleCount(6)
	fmt.Printf("reloaded index: SCCnt(v7) = %d cycles of length %d\n", r.Count, r.Length)
}
