// Fraud detection (the paper's Application 1 and §VI-D case study):
// a transaction network hides a money-laundering ring structure — criminal
// accounts route funds to themselves through middlemen and agents, so an
// unusual number of short cycles passes through them. Ranking accounts by
// SCCnt surfaces the planted criminals; the stream of new transactions is
// absorbed by incremental index maintenance.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	cyclehub "repro"
)

const (
	accounts  = 1500
	criminals = 4
	rings     = 8 // laundering cycles per criminal account
	ringLen   = 4 // hops per cycle: criminal → middleman → agent → middleman → criminal
)

func main() {
	g, planted := buildNetwork()
	fmt.Printf("transaction network: %d accounts, %d transactions, %d planted criminals\n",
		g.NumVertices(), g.NumEdges(), len(planted))

	idx := cyclehub.BuildIndex(g)

	fmt.Println("\ntop accounts by shortest-cycle count:")
	report(idx, planted)

	// New transactions arrive; the last one closes one more laundering
	// ring of the planted length through criminal 0, raising its count
	// from 8 to 9 in real time.
	fmt.Println("\nstreaming new transactions ...")
	mustInsert(idx, 900, 901)
	mustInsert(idx, 901, 902)
	m1, m2, m3 := accounts-3, accounts-2, accounts-1
	mustInsert(idx, planted[0], m1)
	mustInsert(idx, m1, m2)
	mustInsert(idx, m2, m3)
	start := time.Now()
	mustInsert(idx, m3, planted[0])
	fmt.Printf("ring-closing transaction absorbed in %s\n", time.Since(start))

	fmt.Println("\ntop accounts after the stream:")
	report(idx, planted)
}

// buildNetwork plants laundering rings over sparse background traffic.
// Vertices [0,criminals) are criminal accounts; middlemen occupy the ids
// right after; the rest is ordinary traffic.
func buildNetwork() (*cyclehub.Graph, []int) {
	g := cyclehub.NewGraph(accounts)
	r := rand.New(rand.NewSource(7))
	var planted []int
	next := criminals
	for c := 0; c < criminals; c++ {
		planted = append(planted, c)
		for k := 0; k < rings; k++ {
			prev := c
			for hop := 0; hop < ringLen-1; hop++ {
				mid := next
				next++
				mustAdd(g, prev, mid)
				prev = mid
			}
			mustAdd(g, prev, c)
		}
	}
	// Ordinary customers transact without reciprocal pairs; the last
	// three ids stay free for the streamed ring.
	for g.NumEdges() < accounts*2 {
		u := next + r.Intn(accounts-3-next)
		v := next + r.Intn(accounts-3-next)
		if u == v || g.HasEdge(u, v) || g.HasEdge(v, u) {
			continue
		}
		mustAdd(g, u, v)
	}
	return g, planted
}

func report(idx *cyclehub.Index, planted []int) {
	type row struct {
		account int
		res     cyclehub.CycleResult
	}
	var rows []row
	for v := 0; v < idx.Graph().NumVertices(); v++ {
		if r := idx.CycleCount(v); r.Exists {
			rows = append(rows, row{v, r})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].res.Count != rows[j].res.Count {
			return rows[i].res.Count > rows[j].res.Count
		}
		return rows[i].res.Length < rows[j].res.Length
	})
	isPlanted := map[int]bool{}
	for _, p := range planted {
		isPlanted[p] = true
	}
	fmt.Println("  rank  account  cycle-len  SCCnt  planted?")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  %4d  %7d  %9d  %5d  %v\n",
			i+1, r.account, r.res.Length, r.res.Count, isPlanted[r.account])
	}
}

func mustAdd(g *cyclehub.Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		log.Fatal(err)
	}
}

func mustInsert(idx *cyclehub.Index, u, v int) {
	if err := idx.InsertEdge(u, v); err != nil {
		log.Fatal(err)
	}
}
