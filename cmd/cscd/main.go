// Command cscd is the shortest-cycle-counting daemon: it serves SCCnt
// queries and a live top-k watchlist over HTTP while absorbing a stream
// of edge updates, with WAL+snapshot durability — the paper's real-time
// monitoring scenario as a process you can point traffic at.
//
// Start it on a graph file (or an empty graph) and stream edges:
//
//	cscd -addr :8337 -data /var/lib/cscd -graph net.txt -k 10
//
// or point it at a serialized index file — with -mmap and a v3 file
// (a compressed index written by WriteTo) the labels stay file-backed
// and page in on demand, so the daemon serves before the arena is read:
//
//	cscd -addr :8337 -index graph.csc -mmap
//
//	curl localhost:8337/cycle/42
//	curl localhost:8337/cycle/42?maxlen=4
//	curl localhost:8337/top
//	curl -X POST   localhost:8337/edges?flush=1 -d '{"edges":[[1,2],[2,1]]}'
//	curl -X DELETE localhost:8337/edges -d '{"edges":[[1,2]]}'
//	curl localhost:8337/stats
//	curl localhost:8337/metrics
//	curl localhost:8337/debug/trace
//
// With -data, every applied batch is fsynced to a write-ahead log before
// it touches the index and full snapshots are taken periodically, so a
// killed daemon restarts into exactly the state it crashed with (the
// bootstrap flags -graph/-vertices only matter for an empty store). On
// SIGINT/SIGTERM the daemon drains, snapshots, and exits cleanly.
//
// The daemon also participates in a replicated cluster (fronted by
// cmd/cscrouter). With -replicate-to URL every committed batch's WAL
// record is shipped to a follower after the local fsync, and Close
// drains the in-flight shipment before releasing the store. With
// -follower the daemon is that follower: it accepts shipped records on
// POST /repl/append (appending to its own WAL before applying), serves
// reads flagged "stale":true, reports its replay position on
// GET /repl/status, and on POST /repl/promote replays to tip and swaps
// to the full serving surface:
//
//	cscd -addr :8440 -data /tmp/f0 -graph net.txt -follower
//	cscd -addr :8337 -data /tmp/w0 -graph net.txt -replicate-to http://127.0.0.1:8440
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cyclehub "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8337", "HTTP listen address")
		data      = flag.String("data", "", "store directory for WAL + snapshots (empty: in-memory only)")
		graphIn   = flag.String("graph", "", "bootstrap graph file (\"n m\" + \"u v\" edge-list format)")
		indexIn   = flag.String("index", "", "bootstrap from a serialized index file (v1/v2/v3) instead of building one")
		useMmap   = flag.Bool("mmap", false, "with -index and a v3 file: mmap the label arena instead of reading it (serve before labels page in)")
		compress  = flag.Bool("compress", false, "build with compressed label storage (delta+varint frozen arena + bloom-screened joins)")
		orderBy   = flag.String("order", "degree", "hub-ordering strategy: degree | id | random | betweenness | coverage")
		orderSeed = flag.Int64("order-seed", 0, "sampling seed for the betweenness/coverage/random orderings")
		rerank    = flag.Duration("rerank", 0, "enable online per-shard hub re-ranking, checking drift at this interval (0 = off)")
		vertices  = flag.Int("vertices", 0, "bootstrap an empty graph with this many vertices (when -graph is unset)")
		topK      = flag.Int("k", 0, "maintain a top-k cycle-count watchlist and serve /top")
		maxBatch  = flag.Int("max-batch", 256, "max update ops applied per grace period")
		flushInt  = flag.Duration("flush-interval", 2*time.Millisecond, "max time a partial batch waits before applying")
		mailbox   = flag.Int("mailbox", 4096, "update mailbox capacity (full = backpressure)")
		snapshot  = flag.Int("snapshot-every", 64, "batches between full snapshots (with -data)")
		workers   = flag.Int("workers", 0, "build/warm parallelism (0 = all cores)")
		updWork   = flag.Int("update-workers", 0, "batch-apply parallelism: per-shard update streams per batch (0 = all cores, 1 = sequential)")
		noCache   = flag.Bool("no-read-cache", false, "disable the per-vertex result cache (every /cycle read re-joins labels)")
		admit     = flag.String("admission", "block", "full-mailbox policy: block (backpressure), reject (429), shed (drop + count)")
		oobReb    = flag.Int("oob-rebuild-threshold", 0, "defer structural shard rebuilds of at least this many vertices off the write path (0 = always inline)")
		walRetry  = flag.Int("wal-retry", 3, "WAL append retries before degrading to read-only (with -data)")
		noMetrics = flag.Bool("no-metrics", false, "disable the /metrics + /debug/trace observability surface")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		accessLog = flag.String("access-log", "", "append one JSON line per HTTP request to this file (\"-\" = stdout)")
		slowQuery = flag.Duration("slow-query", 0, "log /cycle reads at or above this duration as slow, with the queried vertex (0 = off)")
		replTo    = flag.String("replicate-to", "", "ship every committed batch's WAL record to the follower daemon at this base URL (e.g. http://127.0.0.1:8440)")
		follower  = flag.Bool("follower", false, "run as a replication follower: accept shipped WAL records on POST /repl/append, serve flagged stale reads, promote on POST /repl/promote (requires -data)")
	)
	flag.Parse()

	policy, err := cyclehub.ParseAdmission(*admit)
	if err != nil {
		log.Fatalf("cscd: %v", err)
	}

	ordering, err := cyclehub.ParseOrdering(*orderBy)
	if err != nil {
		log.Fatalf("cscd: %v", err)
	}
	buildOpts := []cyclehub.Option{
		cyclehub.WithWorkers(*workers),
		cyclehub.WithOrdering(ordering),
		cyclehub.WithOrderingSeed(*orderSeed),
	}
	if *compress {
		buildOpts = append(buildOpts, cyclehub.WithCompression())
	}
	bootstrap := func() (*cyclehub.Index, error) {
		if *indexIn != "" {
			if *graphIn != "" {
				return nil, errors.New("-index and -graph are mutually exclusive")
			}
			t0 := time.Now()
			ix, err := cyclehub.ReadIndexFile(*indexIn, *useMmap)
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", *indexIn, err)
			}
			mode := "read"
			if *useMmap {
				mode = "mmap"
			}
			log.Printf("index loaded (%s) from %s in %s (%d label entries)",
				mode, *indexIn, time.Since(t0).Round(time.Millisecond), ix.Stats().Entries)
			return ix, nil
		}
		if *graphIn != "" {
			f, err := os.Open(*graphIn)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			g, err := cyclehub.ReadGraph(f)
			if err != nil {
				return nil, fmt.Errorf("read %s: %w", *graphIn, err)
			}
			log.Printf("building index over %s: %d vertices, %d edges", *graphIn, g.NumVertices(), g.NumEdges())
			t0 := time.Now()
			ix := cyclehub.BuildIndex(g, buildOpts...)
			log.Printf("index built in %s (%d label entries)", time.Since(t0).Round(time.Millisecond), ix.Stats().Entries)
			return ix, nil
		}
		if *vertices <= 0 {
			return nil, errors.New("empty store: need -graph, -index, or -vertices to bootstrap")
		}
		log.Printf("bootstrapping empty graph with %d vertices", *vertices)
		return cyclehub.BuildIndex(cyclehub.NewGraph(*vertices), buildOpts...), nil
	}

	opts := []cyclehub.EngineOption{
		cyclehub.WithBatch(*maxBatch, *flushInt),
		cyclehub.WithMailbox(*mailbox),
		cyclehub.WithSnapshotEvery(*snapshot),
		cyclehub.WithUpdateWorkers(*updWork),
		cyclehub.WithAdmission(policy),
		cyclehub.WithWALRetry(*walRetry),
		cyclehub.WithOOBRebuildThreshold(*oobReb),
	}
	if *rerank > 0 {
		opts = append(opts, cyclehub.WithReRanking(*rerank))
	}
	if *topK > 0 {
		opts = append(opts, cyclehub.WithTopK(*topK))
	}
	if *noCache {
		opts = append(opts, cyclehub.WithoutReadCache())
	}
	if !*noMetrics {
		opts = append(opts, cyclehub.WithMetrics())
	}
	if *pprofOn {
		opts = append(opts, cyclehub.WithPprof())
	}
	if *slowQuery > 0 {
		opts = append(opts, cyclehub.WithSlowQueryThreshold(*slowQuery))
	}
	if *accessLog != "" {
		out := os.Stdout
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("cscd: open access log: %v", err)
			}
			defer f.Close()
			out = f
		}
		opts = append(opts, cyclehub.WithAccessLog(out))
	}
	if *replTo != "" {
		opts = append(opts, cyclehub.WithReplicateTo(*replTo))
	}

	if *follower {
		if *data == "" {
			log.Fatal("cscd: -follower requires -data (the follower's own store directory)")
		}
		if *replTo != "" {
			log.Fatal("cscd: -follower and -replicate-to are mutually exclusive (chained replication is not supported)")
		}
		runFollower(*addr, *data, bootstrap, opts)
		return
	}

	var eng *cyclehub.Engine
	if *data != "" {
		eng, err = cyclehub.OpenEngine(*data, bootstrap, opts...)
	} else {
		var ix *cyclehub.Index
		if ix, err = bootstrap(); err == nil {
			eng, err = cyclehub.NewEngine(ix, opts...)
		}
	}
	if err != nil {
		log.Fatalf("cscd: %v", err)
	}
	st := eng.Stats()
	log.Printf("serving %d vertices / %d edges (seq %d) on %s", st.Vertices, st.Edges, st.Seq, *addr)

	srv := &http.Server{Addr: *addr, Handler: eng.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cscd: %v", err)
	}
	if *data != "" {
		if err := eng.Snapshot(); err != nil {
			log.Printf("cscd: final snapshot: %v", err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Printf("cscd: close: %v", err)
	}
	log.Print("bye")
}

// runFollower serves the replication-follower surface: shipped WAL
// records land on POST /repl/append, reads are flagged stale, and POST
// /repl/promote (typically from a cscrouter that lost the primary)
// replays to tip and swaps the full engine handler in.
func runFollower(addr, dir string, bootstrap func() (*cyclehub.Index, error), opts []cyclehub.EngineOption) {
	f, err := cyclehub.OpenFollower(dir, bootstrap, opts...)
	if err != nil {
		log.Fatalf("cscd: open follower: %v", err)
	}
	log.Printf("follower serving on %s (replayed through seq %d)", addr, f.Seq())

	srv := &http.Server{Addr: addr, Handler: f.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("follower shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cscd: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Printf("cscd: follower close: %v", err)
	}
	log.Print("bye")
}
