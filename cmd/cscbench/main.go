// Command cscbench regenerates the paper's evaluation tables and figures
// (§VI) on the synthetic dataset analogs.
//
// Usage:
//
//	cscbench -exp all -scale small
//	cscbench -exp fig10 -dataset WKT -scale full
//	cscbench -json BENCH_small.json -scale small
//
// Experiments: table4, fig9, fig10, fig11, fig12, case, scaling, ablation,
// ordering, sharding, updates, queries, churn, storage, cluster, bench, or all.
// Scales: tiny, small (default), full.
// Figure experiments accept -dataset to restrict the run to one graph.
// -json runs the machine-readable bench suite (see EXPERIMENTS.md) and writes
// the BENCH_*.json file that tracks the perf trajectory across PRs;
// -workers controls construction parallelism (0 = all cores).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		expName = flag.String("exp", "all", "experiment: table4|fig9|fig10|fig11|fig12|case|scaling|ablation|ordering|sharding|updates|queries|churn|storage|cluster|bench|all")
		scaleIn = flag.String("scale", "small", "dataset scale: tiny|small|full")
		dataset = flag.String("dataset", "", "restrict to one dataset (e.g. G04)")
		jsonOut = flag.String("json", "", "write the bench suite as JSON to this file (e.g. BENCH_small.json); implies -exp bench unless -exp is set")
		workers = flag.Int("workers", 0, "construction workers (0 = all cores, 1 = sequential)")
	)
	flag.Parse()

	scale, err := exp.ParseScale(*scaleIn)
	if err != nil {
		fatal(err)
	}
	exp.Workers = *workers
	if *jsonOut != "" {
		switch *expName {
		case "all":
			*expName = "bench" // -json wants the machine-readable suite only
		case "bench":
		default:
			fatal(fmt.Errorf("-json is produced by the bench suite; drop -exp %s or use -exp bench", *expName))
		}
	}
	datasets := exp.Datasets()
	if *dataset != "" {
		d, err := exp.DatasetByName(*dataset)
		if err != nil {
			fatal(err)
		}
		datasets = []exp.Dataset{d}
	}

	run := func(name string, f func() error) {
		fmt.Printf("== %s (scale %s) ==\n", name, scale)
		start := time.Now()
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Printf("-- %s done in %s --\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := *expName == "all"
	ran := false
	if all || *expName == "table4" {
		ran = true
		run("Table IV: dataset statistics", func() error {
			return exp.WriteTable4(os.Stdout, exp.Table4(scale))
		})
	}
	if all || *expName == "fig9" {
		ran = true
		run("Figure 9: index construction time and size", func() error {
			var rows []exp.BuildRow
			for _, d := range datasets {
				rows = append(rows, exp.Fig9(scale, d))
			}
			return exp.WriteFig9(os.Stdout, rows)
		})
	}
	if all || *expName == "fig10" {
		ran = true
		run("Figure 10: query time by degree cluster", func() error {
			for _, d := range datasets {
				res, err := exp.Fig10(scale, d)
				if err != nil {
					return err
				}
				if err := exp.WriteFig10(os.Stdout, res); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		})
	}
	if all || *expName == "fig11" {
		ran = true
		run("Figure 11: incremental maintenance", func() error {
			var rows []exp.UpdateRow
			for _, d := range datasets {
				// The paper skips the minimality strategy on its two
				// largest graphs for cost reasons; mirror that at full
				// scale.
				skip := scale == exp.Full && (d.Name == "WAR" || d.Name == "WSR")
				rows = append(rows, exp.Fig11(scale, d, skip))
			}
			return exp.WriteFig11(os.Stdout, rows)
		})
	}
	if all || *expName == "fig12" {
		ran = true
		run("Figure 12: decremental maintenance (G04)", func() error {
			return exp.WriteFig12(os.Stdout, exp.Fig12(scale))
		})
	}
	if all || *expName == "case" {
		ran = true
		run("Case study: suspicious-account ranking", func() error {
			return exp.WriteCase(os.Stdout, exp.CaseStudy(scale))
		})
	}
	if all || *expName == "scaling" {
		ran = true
		run("Extension: label growth vs graph size", func() error {
			sizes := []int{1000, 2000, 4000, 8000}
			if scale == exp.Tiny {
				sizes = []int{200, 400, 800}
			}
			return exp.WriteScaling(os.Stdout, exp.Scaling(sizes))
		})
	}
	if all || *expName == "ablation" {
		ran = true
		run("Ablation: couple-vertex skipping vs generic construction", func() error {
			var rows []exp.AblationRow
			for _, d := range datasets {
				rows = append(rows, exp.AblationConstruction(scale, d))
			}
			return exp.WriteAblation(os.Stdout, rows)
		})
	}
	if all || *expName == "sharding" {
		ran = true
		run("Extension: condensation sharding vs monolithic build", func() error {
			return exp.WriteSharding(os.Stdout, exp.Sharding(scale))
		})
	}
	if all || *expName == "updates" {
		ran = true
		run("Extension: batch-parallel vs per-edge update throughput", func() error {
			return exp.WriteUpdates(os.Stdout, exp.Updates(scale))
		})
	}
	if all || *expName == "queries" {
		ran = true
		run("Extension: read path — cold vs cached queries, dirty vs full rescore", func() error {
			return exp.WriteQueries(os.Stdout, exp.Queries(scale))
		})
	}
	if all || *expName == "churn" {
		ran = true
		run("Extension: read tail latency under structural churn — inline vs out-of-band rebuilds", func() error {
			return exp.WriteChurn(os.Stdout, exp.Churn(scale))
		})
	}
	if all || *expName == "storage" {
		ran = true
		run("Extension: compressed label storage — arena footprint, bloom screen, v3 cold start", func() error {
			return exp.WriteStorage(os.Stdout, exp.Storage(scale))
		})
	}
	if all || *expName == "cluster" {
		ran = true
		run("Extension: replicated cluster — routed reads, WAL shipping, failover drill", func() error {
			return exp.WriteCluster(os.Stdout, exp.Cluster(scale))
		})
	}
	if all || *expName == "ordering" {
		ran = true
		run("Extension: hub-ordering shootout — degree vs random vs betweenness vs coverage", func() error {
			return exp.WriteOrdering(os.Stdout, exp.Ordering(scale))
		})
	}
	if *expName == "bench" {
		ran = true
		run("Bench suite: build/query/update trajectory", func() error {
			res := exp.BenchSuite(scale, datasets)
			if *jsonOut == "" {
				return exp.WriteBenchJSON(os.Stdout, res)
			}
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			if err := exp.WriteBenchJSON(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err // a truncated BENCH file must not look written
			}
			for _, r := range res {
				fmt.Printf("%-4s build %8.1fms  %9d entries  query %7.0fns  insert %9.0fns  delete %10.0fns\n",
					r.Dataset, float64(r.BuildWallNS)/1e6, r.Entries, r.QueryNS, r.InsertNS, r.DeleteNS)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
			return nil
		})
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *expName))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cscbench:", err)
	os.Exit(1)
}
