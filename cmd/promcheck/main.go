// Command promcheck validates Prometheus text exposition format 0.0.4,
// as served by cscd's /metrics: CI pipes a live scrape through it to
// catch a malformed exposition before a real scraper would.
//
//	curl -s localhost:8337/metrics | promcheck
//	promcheck metrics.txt
//
// Checked invariants:
//
//   - every family (# TYPE) is declared exactly once
//   - every sample line belongs to the family declared above it
//   - sample values parse as numbers
//   - histogram buckets are cumulative (non-decreasing counts over
//     strictly increasing le bounds, per label set), end at le="+Inf",
//     and agree with the series' _count
//
// Exit status 0 when the input passes, 1 with a diagnostic per
// violation otherwise.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	errs := check(in)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "promcheck: %s\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Println("promcheck: ok")
}

// histSeries accumulates one histogram label set's bucket chain.
type histSeries struct {
	lastVal float64
	lastLE  float64
	inf     float64
	hasInf  bool
	count   float64
	hasCnt  bool
}

func check(in io.Reader) []string {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	families := map[string]string{} // name -> type
	hists := map[string]*histSeries{}
	cur := ""
	lineNo := 0
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				fail("line %d: malformed TYPE: %q", lineNo, line)
				continue
			}
			name, typ := f[2], f[3]
			if _, dup := families[name]; dup {
				fail("line %d: duplicate family %q", lineNo, name)
			}
			families[name] = typ
			cur = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}

		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			fail("line %d: sample without value: %q", lineNo, line)
			continue
		}
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			fail("line %d: bad value %q", lineNo, fields[len(fields)-1])
			continue
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if families[cur] == "histogram" && strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
				break
			}
		}
		if cur == "" || base != cur {
			fail("line %d: sample %q outside its TYPE block (current family %q)", lineNo, name, cur)
			continue
		}

		if families[cur] != "histogram" {
			continue
		}
		key := base + stripLE(line)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := leOf(line)
			if !ok {
				fail("line %d: bucket without le: %q", lineNo, line)
				continue
			}
			h := hists[key]
			if h == nil {
				h = &histSeries{lastVal: -1, lastLE: math.Inf(-1)}
				hists[key] = h
			}
			if le <= h.lastLE {
				fail("line %d: le %v not increasing (prev %v)", lineNo, le, h.lastLE)
			}
			if val < h.lastVal {
				fail("line %d: bucket count %v decreased (prev %v)", lineNo, val, h.lastVal)
			}
			h.lastLE, h.lastVal = le, val
			if math.IsInf(le, 1) {
				h.inf, h.hasInf = val, true
			}
		case strings.HasSuffix(name, "_count"):
			h := hists[key]
			if h == nil {
				h = &histSeries{lastVal: -1, lastLE: math.Inf(-1)}
				hists[key] = h
			}
			h.count, h.hasCnt = val, true
		}
	}
	if err := sc.Err(); err != nil {
		fail("read: %v", err)
	}
	for key, h := range hists {
		if !h.hasInf {
			fail("histogram %s: no le=\"+Inf\" bucket", key)
		}
		if h.hasInf && h.hasCnt && h.count != h.inf {
			fail("histogram %s: _count %v != +Inf bucket %v", key, h.count, h.inf)
		}
	}
	return errs
}

// leOf extracts the le label of a bucket line.
func leOf(line string) (float64, bool) {
	i := strings.Index(line, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	raw := rest[:j]
	if raw == "+Inf" {
		return math.Inf(1), true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// stripLE returns the line's label set, sorted, with le removed — the
// identity of one histogram series across its bucket chain.
func stripLE(line string) string {
	i := strings.IndexByte(line, '{')
	if i < 0 {
		return "{}"
	}
	j := strings.LastIndexByte(line, '}')
	if j < i {
		return "{}"
	}
	var labels []string
	for _, l := range strings.Split(line[i+1:j], ",") {
		if !strings.HasPrefix(l, "le=") {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	return "{" + strings.Join(labels, ",") + "}"
}
