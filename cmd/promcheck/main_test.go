package main

import (
	"strings"
	"testing"
)

const valid = `# HELP cscd_queries_total Total queries.
# TYPE cscd_queries_total counter
cscd_queries_total 10
# HELP cscd_query_seconds Query latency.
# TYPE cscd_query_seconds histogram
cscd_query_seconds_bucket{le="0.001"} 3
cscd_query_seconds_bucket{le="0.01"} 9
cscd_query_seconds_bucket{le="+Inf"} 10
cscd_query_seconds_sum 0.5
cscd_query_seconds_count 10
`

func TestValid(t *testing.T) {
	if errs := check(strings.NewReader(valid)); len(errs) != 0 {
		t.Fatalf("valid exposition rejected: %v", errs)
	}
}

func TestViolations(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"duplicate family",
			"# TYPE a counter\na 1\n# TYPE a counter\na 2\n",
			"duplicate family"},
		{"orphan sample",
			"# TYPE a counter\nb 1\n",
			"outside its TYPE block"},
		{"non-monotone buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"decreased"},
		{"le not increasing",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"not increasing"},
		{"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",
			"+Inf"},
		{"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 2\n",
			"!= +Inf bucket"},
		{"bad value",
			"# TYPE a counter\na zebra\n",
			"bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check(strings.NewReader(tc.input))
			if len(errs) == 0 {
				t.Fatal("violation not detected")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error mentioning %q in %v", tc.want, errs)
			}
		})
	}
}

// TestVecSeries: two label sets of one HistogramVec interleave in the
// family block; each chain is validated independently.
func TestVecSeries(t *testing.T) {
	input := `# TYPE h histogram
h_bucket{route="a",le="1"} 1
h_bucket{route="a",le="+Inf"} 2
h_sum{route="a"} 1.5
h_count{route="a"} 2
h_bucket{route="b",le="1"} 7
h_bucket{route="b",le="+Inf"} 7
h_sum{route="b"} 3
h_count{route="b"} 7
`
	if errs := check(strings.NewReader(input)); len(errs) != 0 {
		t.Fatalf("vec exposition rejected: %v", errs)
	}
}
