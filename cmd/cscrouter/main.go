// Command cscrouter is the failover-aware routing tier of a replicated
// cscd cluster. It holds no index — only a vertex→shard→group routing
// table (fetched from a worker's GET /cluster/shards and placed by
// size-balanced label-byte bins) plus per-group health state, and it:
//
//   - fans GET /cycle/{v} to the worker group owning v's shard, with a
//     per-request deadline and bounded retries with backoff; trivial
//     vertices (no shard, structurally zero cycles) are answered locally
//     without a proxy hop;
//   - broadcasts POST/DELETE /edges to every group (each group holds the
//     full index), relying on worker-side coalescing for idempotence;
//   - probes every group's primary (GET /stats) and follower
//     (GET /repl/status); after -probe-misses consecutive missed probes
//     of a primary with a live follower it POSTs /repl/promote and
//     repoints the group — failover, never failed back automatically;
//   - serves /cluster/table, /healthz (?ready=1 turns a degraded cluster
//     into 503), /stats, and Prometheus /metrics with replication-lag
//     and failover families.
//
// A three-process cluster on one machine:
//
//	cscd -addr :8337 -data /tmp/w0 -graph net.txt -replicate-to http://127.0.0.1:8440
//	cscd -addr :8440 -data /tmp/f0 -graph net.txt -follower
//	cscrouter -addr :8000 -group http://127.0.0.1:8337,http://127.0.0.1:8440
//
//	curl localhost:8000/cycle/42
//	curl localhost:8000/cluster/table
//
// Repeat -group for more worker groups; reads partition across them by
// shard placement, writes broadcast to all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
)

// groupFlags collects repeated -group primary[,follower] values.
type groupFlags []dist.GroupConfig

func (g *groupFlags) String() string {
	var parts []string
	for _, c := range *g {
		s := c.Primary
		if c.Follower != "" {
			s += "," + c.Follower
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}

func (g *groupFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) > 2 {
		return fmt.Errorf("want primary_url[,follower_url], got %q", v)
	}
	cfg := dist.GroupConfig{Primary: strings.TrimRight(parts[0], "/")}
	if len(parts) == 2 {
		cfg.Follower = strings.TrimRight(parts[1], "/")
	}
	if cfg.Primary == "" {
		return fmt.Errorf("empty primary url in %q", v)
	}
	*g = append(*g, cfg)
	return nil
}

func main() {
	var groups groupFlags
	flag.Var(&groups, "group", "worker group as primary_url[,follower_url]; repeat for more groups (reads partition across groups by shard placement, writes broadcast to all)")
	var (
		addr       = flag.String("addr", ":8000", "HTTP listen address")
		tableFrom  = flag.String("table-from", "", "worker URL to fetch the shard table from (default: the first group's primary)")
		tableWait  = flag.Duration("table-wait", 30*time.Second, "how long to keep retrying the shard-table fetch while workers boot")
		probeEvery = flag.Duration("probe-interval", 250*time.Millisecond, "health-probe cadence per worker group")
		probeTO    = flag.Duration("probe-timeout", time.Second, "deadline for one health probe")
		misses     = flag.Int("probe-misses", 3, "consecutive missed probes of a primary before failing over to its follower")
		reqTO      = flag.Duration("request-timeout", 2*time.Second, "deadline for one proxied attempt")
		retryMax   = flag.Int("retry", 1, "extra attempts per endpoint after a network error or 5xx")
		backoff    = flag.Duration("retry-backoff", 25*time.Millisecond, "pause before the first retry, doubling per attempt")
		tblRefresh = flag.Duration("table-refresh", 2*time.Second, "how often to re-fetch the shard table from a live worker (writes can merge components and re-shard vertices)")
		noMetrics  = flag.Bool("no-metrics", false, "disable the /metrics surface")
	)
	flag.Parse()

	if len(groups) == 0 {
		log.Fatal("cscrouter: need at least one -group primary_url[,follower_url]")
	}
	src := *tableFrom
	if src == "" {
		src = groups[0].Primary
	}

	// Workers may still be building their index; retry the table fetch
	// until -table-wait elapses.
	var (
		table *dist.Table
		err   error
	)
	deadline := time.Now().Add(*tableWait)
	for {
		table, err = dist.FetchTable(src, len(groups), nil)
		if err == nil || time.Now().After(deadline) {
			break
		}
		log.Printf("cscrouter: shard table not ready at %s (%v), retrying", src, err)
		time.Sleep(500 * time.Millisecond)
	}
	if err != nil {
		log.Fatalf("cscrouter: fetch shard table from %s: %v", src, err)
	}
	log.Printf("routing %d vertices over %d shard slots across %d groups", table.Vertices, len(table.OwnerOf), len(groups))

	var reg *obs.Registry
	if !*noMetrics {
		reg = obs.New()
	}
	router, err := dist.NewRouter(table, groups, dist.RouterOptions{
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTO,
		ProbeMisses:    *misses,
		RequestTimeout: *reqTO,
		RetryMax:       *retryMax,
		RetryBackoff:   *backoff,
		TableRefresh:   *tblRefresh,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatalf("cscrouter: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: router.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	log.Printf("routing on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cscrouter: %v", err)
	}
	_ = router.Close()
	log.Print("bye")
}
