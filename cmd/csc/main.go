// Command csc builds, queries, updates and persists CSC indexes from the
// command line.
//
// Usage:
//
//	csc build  -graph graph.txt -index graph.idx
//	csc query  -index graph.idx -v 169
//	csc query  -index graph.idx -all -top 10
//	csc insert -index graph.idx -u 3 -v 7 [-save]
//	csc delete -index graph.idx -u 3 -v 7 [-save]
//	csc stats  -index graph.idx
//
// Graphs use the plain edge-list format: a header line "n m" followed by
// one "u v" line per directed edge ('#' comments allowed).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	cyclehub "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = runBuild(args)
	case "query":
		err = runQuery(args)
	case "insert", "delete":
		err = runUpdate(cmd, args)
	case "stats":
		err = runStats(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: csc build|query|insert|delete|stats [flags] (see -h per subcommand)")
	os.Exit(2)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file to index")
	indexPath := fs.String("index", "", "output index file")
	minimality := fs.Bool("minimality", false, "maintain label minimality on updates")
	fs.Parse(args)
	if *graphPath == "" || *indexPath == "" {
		return fmt.Errorf("build: -graph and -index are required")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := cyclehub.ReadGraph(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	start := time.Now()
	var opts []cyclehub.Option
	if *minimality {
		opts = append(opts, cyclehub.WithMinimality())
	}
	idx := cyclehub.BuildIndex(g, opts...)
	st := idx.Stats()
	fmt.Printf("index built in %s: %d entries, %d bytes (%d reduced)\n",
		time.Since(start).Round(time.Millisecond), st.Entries, st.Bytes, st.ReducedBytes)
	return saveIndex(idx, *indexPath)
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	vertex := fs.Int("v", -1, "query vertex")
	all := fs.Bool("all", false, "rank every vertex by SCCnt")
	top := fs.Int("top", 10, "rows to print with -all")
	fs.Parse(args)
	idx, err := loadIndex(*indexPath)
	if err != nil {
		return err
	}
	if *all {
		type row struct {
			v int
			r cyclehub.CycleResult
		}
		var rows []row
		for v := 0; v < idx.Graph().NumVertices(); v++ {
			if r := idx.CycleCount(v); r.Exists {
				rows = append(rows, row{v, r})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].r.Count != rows[j].r.Count {
				return rows[i].r.Count > rows[j].r.Count
			}
			return rows[i].r.Length < rows[j].r.Length
		})
		if len(rows) > *top {
			rows = rows[:*top]
		}
		fmt.Println("vertex  shortest-cycle-length  count")
		for _, r := range rows {
			fmt.Printf("%6d  %21d  %5d\n", r.v, r.r.Length, r.r.Count)
		}
		return nil
	}
	if *vertex < 0 {
		return fmt.Errorf("query: -v or -all required")
	}
	if n := idx.Graph().NumVertices(); *vertex >= n {
		return fmt.Errorf("query: vertex %d out of range [0,%d)", *vertex, n)
	}
	start := time.Now()
	r := idx.CycleCount(*vertex)
	elapsed := time.Since(start)
	if !r.Exists {
		fmt.Printf("SCCnt(%d): no cycle (%s)\n", *vertex, elapsed)
		return nil
	}
	fmt.Printf("SCCnt(%d) = %d shortest cycles of length %d (%s)\n",
		*vertex, r.Count, r.Length, elapsed)
	return nil
}

func runUpdate(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	u := fs.Int("u", -1, "edge source")
	v := fs.Int("v", -1, "edge target")
	save := fs.Bool("save", false, "write the maintained index back")
	fs.Parse(args)
	if *u < 0 || *v < 0 {
		return fmt.Errorf("%s: -u and -v are required", cmd)
	}
	idx, err := loadIndex(*indexPath)
	if err != nil {
		return err
	}
	start := time.Now()
	if cmd == "insert" {
		err = idx.InsertEdge(*u, *v)
	} else {
		err = idx.DeleteEdge(*u, *v)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d,%d) maintained in %s\n", cmd, *u, *v, time.Since(start))
	if *save {
		return saveIndex(idx, *indexPath)
	}
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	fs.Parse(args)
	idx, err := loadIndex(*indexPath)
	if err != nil {
		return err
	}
	st := idx.Stats()
	g := idx.Graph()
	fmt.Printf("graph:   %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("labels:  %d entries\n", st.Entries)
	fmt.Printf("size:    %d bytes full, %d bytes reduced\n", st.Bytes, st.ReducedBytes)
	return nil
}

func loadIndex(path string) (*cyclehub.Index, error) {
	if path == "" {
		return nil, fmt.Errorf("-index is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cyclehub.ReadIndex(f)
}

func saveIndex(idx *cyclehub.Index, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := idx.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("index saved to %s\n", path)
	return nil
}
