package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfscount"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

func TestConvertShape(t *testing.T) {
	g := testgraphs.Figure2()
	gb := Convert(g)
	// Gb has 2n vertices and n+m edges (§IV-B).
	if gb.NumVertices() != 20 {
		t.Fatalf("|Vb| = %d, want 20", gb.NumVertices())
	}
	if gb.NumEdges() != 10+13 {
		t.Fatalf("|Eb| = %d, want 23", gb.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if !gb.HasEdge(InVertex(v), OutVertex(v)) {
			t.Fatalf("missing couple edge for %d", v)
		}
	}
	// Original edge v1→v3 becomes (v1_out → v3_in).
	if !gb.HasEdge(OutVertex(0), InVertex(2)) {
		t.Fatal("missing converted edge")
	}
	// V_in vertices carry all in-edges, V_out all out-edges.
	for v := 0; v < 10; v++ {
		if gb.OutDegree(InVertex(v)) != 1 || gb.InDegree(OutVertex(v)) != 1 {
			t.Fatalf("couple structure broken at %d", v)
		}
	}
}

func TestCoupleHelpers(t *testing.T) {
	for v := 0; v < 5; v++ {
		vi, vo := InVertex(v), OutVertex(v)
		if !IsIn(vi) || IsIn(vo) {
			t.Fatal("IsIn wrong")
		}
		if Couple(vi) != vo || Couple(vo) != vi {
			t.Fatal("Couple wrong")
		}
		if Original(vi) != v || Original(vo) != v {
			t.Fatal("Original wrong")
		}
	}
	if a, b := ConvertEdge(3, 7); a != OutVertex(3) || b != InVertex(7) {
		t.Fatalf("ConvertEdge = (%d,%d)", a, b)
	}
}

func TestLiftOrderCouplesConsecutive(t *testing.T) {
	g := testgraphs.Figure2()
	base := order.ByDegree(g)
	lifted := LiftOrder(base)
	if lifted.Len() != 20 {
		t.Fatalf("lifted len = %d", lifted.Len())
	}
	for r := 0; r < base.Len(); r++ {
		v := base.VertexAt(r)
		if lifted.VertexAt(2*r) != InVertex(v) || lifted.VertexAt(2*r+1) != OutVertex(v) {
			t.Fatalf("rank %d: couple not consecutive", r)
		}
		if !lifted.Above(InVertex(v), OutVertex(v)) {
			t.Fatal("v_in must rank above v_out")
		}
	}
}

// Property: the paper's distance law — the shortest v_out→v_in distance in
// Gb equals 2k−1 where k is the shortest cycle length through v in G, and
// the path counts coincide with the cycle counts.
func TestCycleDistanceLaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(14)
		g := graph.New(n)
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		gb := Convert(g)
		for v := 0; v < n; v++ {
			k, cnt := bfscount.CycleCount(g, v)
			d, bcnt := bfscount.SPCount(gb, OutVertex(v), InVertex(v))
			if k == bfscount.NoCycle {
				if d != bfscount.NoCycle {
					return false
				}
				continue
			}
			if d != 2*k-1 || CycleLength(d) != k || bcnt != cnt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
