// Package bipartite implements the paper's bipartite conversion (§IV-B,
// Algorithm 2): every vertex v of a directed graph G is split into a
// couple (v_in, v_out) joined by the edge (v_in → v_out), and every edge
// (v,w) of G becomes (v_out → w_in). The converted graph Gb has 2n
// vertices and n+m edges; a cycle of length k through v in G corresponds
// one-to-one to a path of length 2k−1 from v_out to v_in in Gb, which is
// what lets a shortest-path-counting index answer shortest-cycle counting.
//
// The package also lifts a vertex ordering of G to Gb so that each couple
// occupies consecutive ranks with v_in ranked immediately above v_out —
// the precondition for the couple-vertex-skipping construction (§IV-C)
// and the index reduction (§IV-E).
package bipartite

import (
	"repro/internal/graph"
	"repro/internal/order"
)

// InVertex returns the Gb id of v's incoming vertex v_in.
func InVertex(v int) int { return 2 * v }

// OutVertex returns the Gb id of v's outgoing vertex v_out.
func OutVertex(v int) int { return 2*v + 1 }

// IsIn reports whether a Gb vertex belongs to V_in.
func IsIn(b int) bool { return b%2 == 0 }

// Couple returns the partner of a Gb vertex (v_in ↔ v_out).
func Couple(b int) int { return b ^ 1 }

// Original returns the G vertex a Gb vertex was split from.
func Original(b int) int { return b / 2 }

// Convert builds Gb from G (Algorithm 2, BI-G).
func Convert(g *graph.Digraph) *graph.Digraph {
	n := g.NumVertices()
	gb := graph.New(2 * n)
	for v := 0; v < n; v++ {
		mustAdd(gb, InVertex(v), OutVertex(v))
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Out(v) {
			mustAdd(gb, OutVertex(v), InVertex(int(w)))
		}
	}
	return gb
}

func mustAdd(g *graph.Digraph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		// Unreachable for a valid self-loop-free input graph: the couple
		// edges and converted edges are distinct by construction.
		panic(err)
	}
}

// ConvertEdge maps an edge (a,b) of G to its Gb counterpart
// (a_out → b_in); dynamic updates on G are applied to Gb through it.
func ConvertEdge(a, b int) (int, int) { return OutVertex(a), InVertex(b) }

// LiftOrder expands an ordering of G's n vertices into an ordering of
// Gb's 2n vertices, keeping each couple consecutive with v_in ranked
// immediately above v_out.
func LiftOrder(base *order.Order) *order.Order {
	n := base.Len()
	vs := make([]int, 0, 2*n)
	for r := 0; r < n; r++ {
		v := base.VertexAt(r)
		vs = append(vs, InVertex(v), OutVertex(v))
	}
	o, err := order.FromVertexList(vs)
	if err != nil {
		panic(err) // unreachable: vs is a permutation by construction
	}
	return o
}

// CycleLength converts a Gb shortest distance d from v_out to v_in into
// the original cycle length (d+1)/2 (§IV-D).
func CycleLength(d int) int { return (d + 1) / 2 }
