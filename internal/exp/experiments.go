package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bfscount"
	"repro/internal/cluster"
	"repro/internal/csc"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hpspc"
	"repro/internal/order"
	"repro/internal/pll"
)

// ---------------------------------------------------------------- Table IV

// StatsRow is one row of Table IV (dataset statistics).
type StatsRow struct {
	Name, Paper, Kind string
	N, M              int
}

// Table4 generates every dataset at the given scale and reports its size.
func Table4(s Scale) []StatsRow {
	var rows []StatsRow
	for _, d := range Datasets() {
		g := d.Build(s)
		rows = append(rows, StatsRow{
			Name: d.Name, Paper: d.Paper, Kind: d.Kind,
			N: g.NumVertices(), M: g.NumEdges(),
		})
	}
	return rows
}

// ---------------------------------------------------------------- Figure 9

// BuildRow is one dataset's entry in Figure 9 (index time and size).
type BuildRow struct {
	Dataset            string
	HPTime, CSCTime    time.Duration
	HPBytes, CSCBytes  int // CSCBytes is the reduced (couple-merged) size
	HPEntries, CSCEnts int
}

// Fig9 builds HP-SPC and CSC on one dataset and reports construction time
// and index size. CSC sizes use the §IV-E reduction, matching how the
// paper compares the two.
func Fig9(s Scale, d Dataset) BuildRow {
	g := d.Build(s)
	ord := order.ByDegree(g)

	hpGraph := g.Clone()
	t0 := time.Now()
	hp, _ := hpspc.BuildWorkers(hpGraph, ord, pll.Redundancy, Workers)
	hpTime := time.Since(t0)

	t0 = time.Now()
	x, _ := csc.Build(g, ord, csc.Options{Workers: Workers})
	cscTime := time.Since(t0)

	return BuildRow{
		Dataset: d.Name,
		HPTime:  hpTime, CSCTime: cscTime,
		HPBytes: hp.Bytes(), CSCBytes: x.ReducedBytes(),
		HPEntries: hp.EntryCount(), CSCEnts: x.ReducedEntryCount(),
	}
}

// --------------------------------------------------------------- Figure 10

// QueryRow is one degree cluster's average SCCnt query time per algorithm.
type QueryRow struct {
	Cluster         string
	Queries         int
	BFS, HPSPC, CSC time.Duration // average per query; 0 when unmeasured
}

// QueryResult is one sub-figure of Figure 10.
type QueryResult struct {
	Dataset string
	Rows    [5]QueryRow
}

// queryCaps bounds per-cluster query counts. BFS is orders of magnitude
// slower, so it gets a smaller sample, like any reasonable lab notebook.
func queryCaps(s Scale) (idxCap, bfsCap int) {
	switch s {
	case Tiny:
		return 200, 50
	case Small:
		return 1000, 60
	default:
		return 4000, 40
	}
}

// Fig10 measures average SCCnt query time per degree cluster for the BFS
// baseline, HP-SPC and CSC on one dataset, cross-checking that all three
// algorithms agree on every sampled query.
func Fig10(s Scale, d Dataset) (QueryResult, error) {
	g := d.Build(s)
	ord := order.ByDegree(g)
	hp, _ := hpspc.BuildWorkers(g.Clone(), ord, pll.Redundancy, Workers)
	x, _ := csc.Build(g.Clone(), ord, csc.Options{Workers: Workers})

	// §VI-A: all vertices (or at least 50,000) split into five clusters by
	// min-in-out degree.
	vs := make([]int, g.NumVertices())
	for i := range vs {
		vs[i] = i
	}
	clusters := cluster.Vertices(g, vs)
	idxCap, bfsCap := queryCaps(s)

	res := QueryResult{Dataset: d.Name}
	r := rand.New(rand.NewSource(42))
	for ci, cvs := range clusters {
		row := QueryRow{Cluster: cluster.Names[ci]}
		if len(cvs) == 0 {
			res.Rows[ci] = row
			continue
		}
		sample := sampleInts(r, cvs, idxCap)
		row.Queries = len(sample)

		// Correctness cross-check on a sub-sample.
		for _, v := range sample[:min(len(sample), 30)] {
			bl, bc := bfscount.CycleCount(g, v)
			hl, hc := hp.CycleCount(v)
			cl, cc := x.CycleCount(v)
			if bl != hl || bc != hc || bl != cl || bc != cc {
				return res, fmt.Errorf("fig10 %s: disagreement at vertex %d: bfs(%d,%d) hp(%d,%d) csc(%d,%d)",
					d.Name, v, bl, bc, hl, hc, cl, cc)
			}
		}

		row.CSC = timePerQuery(sample, func(v int) { x.CycleCount(v) })
		row.HPSPC = timePerQuery(sample, func(v int) { hp.CycleCount(v) })
		bfsSample := sample[:min(len(sample), bfsCap)]
		row.BFS = timePerQuery(bfsSample, func(v int) { bfscount.CycleCount(g, v) })
		res.Rows[ci] = row
	}
	return res, nil
}

func timePerQuery(vs []int, f func(int)) time.Duration {
	if len(vs) == 0 {
		return 0
	}
	start := time.Now()
	for _, v := range vs {
		f(v)
	}
	return time.Since(start) / time.Duration(len(vs))
}

func sampleInts(r *rand.Rand, vs []int, cap int) []int {
	if len(vs) <= cap {
		return vs
	}
	out := make([]int, cap)
	perm := r.Perm(len(vs))
	for i := 0; i < cap; i++ {
		out[i] = vs[perm[i]]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --------------------------------------------------------------- Figure 11

// UpdateRow is one dataset's incremental-maintenance entry in Figure 11:
// average time per edge insertion and average index growth, under both
// strategies. MinimalitySkipped mirrors the paper, which omitted the
// minimality strategy on its largest graphs for cost reasons.
type UpdateRow struct {
	Dataset           string
	Updates           int
	RedundancyAvg     time.Duration
	RedundancyGrowth  float64 // label entries added per insertion
	MinimalityAvg     time.Duration
	MinimalityGrowth  float64
	MinimalitySkipped bool
}

func updateCount(s Scale) int {
	switch s {
	case Tiny:
		return 20
	case Small:
		return 60
	default:
		return 200 // paper: [200,500] random edges
	}
}

// Fig11 removes K random edges, builds the CSC index on the reduced
// graph, and measures inserting them back one by one (the paper's §VI-C
// protocol), under the redundancy and minimality strategies.
func Fig11(s Scale, d Dataset, skipMinimality bool) UpdateRow {
	base := d.Build(s)
	k := updateCount(s)
	edges := pickEdges(base, k, 11)

	row := UpdateRow{Dataset: d.Name, Updates: len(edges), MinimalitySkipped: skipMinimality}
	row.RedundancyAvg, row.RedundancyGrowth = runInsertions(base, edges, pll.Redundancy)
	if !skipMinimality {
		row.MinimalityAvg, row.MinimalityGrowth = runInsertions(base, edges, pll.Minimality)
	}
	return row
}

func runInsertions(base *graph.Digraph, edges [][2]int, strat pll.Strategy) (time.Duration, float64) {
	g := base.Clone()
	for _, e := range edges {
		if err := g.RemoveEdge(e[0], e[1]); err != nil {
			panic(err) // edges were sampled from base
		}
	}
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{Strategy: strat, Workers: Workers})
	before := x.EntryCount()
	start := time.Now()
	for _, e := range edges {
		if _, err := x.InsertEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	growth := float64(x.EntryCount()-before) / float64(len(edges))
	return elapsed / time.Duration(len(edges)), growth
}

func pickEdges(g *graph.Digraph, k int, seed int64) [][2]int {
	es := g.Edges()
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
	if k > len(es) {
		k = len(es)
	}
	return es[:k]
}

// --------------------------------------------------------------- Figure 12

// DeleteRow is one edge-degree cluster of the decremental experiment.
type DeleteRow struct {
	Cluster    string
	Edges      int
	AvgTime    time.Duration
	AvgRemoved float64 // label entries dropped in step 2 per deletion —
	// the churn Figure 12(b) plots ("a large number of unaffected label
	// entries are removed and recovered later")
	AvgNet float64 // net index change per deletion (can be positive:
	// longer distances can need more covering entries)
	AvgTouched float64 // vertices visited by repair BFSes per deletion
}

// Fig12 deletes random edges from the G04 analog, clustered by edge
// degree (indeg(source)+outdeg(target)), and measures the decremental
// update (§VI-C, Figure 12).
func Fig12(s Scale) [5]DeleteRow {
	d, err := DatasetByName("G04")
	if err != nil {
		panic(err)
	}
	g := d.Build(s)
	k := updateCount(s) * 2
	edges := pickEdges(g, k, 12)
	groups := cluster.Edges(g, edges)

	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{Workers: Workers})
	var rows [5]DeleteRow
	for ci, ces := range groups {
		row := DeleteRow{Cluster: cluster.Names[ci], Edges: len(ces)}
		if len(ces) == 0 {
			rows[ci] = row
			continue
		}
		var total time.Duration
		var removed, net, touched int
		for _, e := range ces {
			before := x.EntryCount()
			st, err := x.DeleteEdge(e[0], e[1])
			if err != nil {
				panic(err)
			}
			total += st.Duration
			removed += st.EntriesRemoved
			net += x.EntryCount() - before
			touched += st.Visited
		}
		row.AvgTime = total / time.Duration(len(ces))
		row.AvgRemoved = float64(removed) / float64(len(ces))
		row.AvgNet = float64(net) / float64(len(ces))
		row.AvgTouched = float64(touched) / float64(len(ces))
		rows[ci] = row
	}
	return rows
}

// --------------------------------------------------------- Case study (§VI-D)

// CaseVertex is one account in the case-study ranking.
type CaseVertex struct {
	Vertex   int
	Length   int
	Count    uint64
	Criminal bool
}

// CaseResult is the Figure 13 reproduction: accounts ranked by shortest
// cycle count over a transaction network with planted laundering rings.
type CaseResult struct {
	Top       []CaseVertex
	Criminals []int
	// Recovered reports whether every planted criminal ranks inside the
	// top len(Criminals) accounts by SCCnt.
	Recovered bool
}

// CaseStudy plants laundering rings in a synthetic transaction network and
// checks that ranking accounts by SCCnt surfaces the planted criminals, as
// the paper's MAHINDAS case study does for suspicious accounts.
func CaseStudy(s Scale) CaseResult {
	n, m := 2000, 3000
	if s == Tiny {
		n, m = 400, 600
	}
	tx := gen.TransactionNetwork(n, m, 5, 12, 4, 13)
	x, _ := csc.Build(tx.G, order.ByDegree(tx.G), csc.Options{Workers: Workers})

	all := make([]CaseVertex, 0, n)
	criminal := make(map[int]bool, len(tx.Criminals))
	for _, c := range tx.Criminals {
		criminal[c] = true
	}
	for v := 0; v < n; v++ {
		l, c := x.CycleCount(v)
		if l == bfscount.NoCycle {
			continue
		}
		all = append(all, CaseVertex{Vertex: v, Length: l, Count: c, Criminal: criminal[v]})
	}
	// Rank suspicious accounts the way Figure 13 is read: vertex size is
	// the shortest cycle count (bigger = more suspicious); color — the
	// cycle length — breaks ties in favor of quicker feedback loops.
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	top := all
	if len(top) > 10 {
		top = top[:10]
	}
	res := CaseResult{Top: top, Criminals: tx.Criminals, Recovered: true}
	for i := 0; i < len(tx.Criminals) && i < len(all); i++ {
		if !all[i].Criminal {
			res.Recovered = false
		}
	}
	return res
}

func less(a, b CaseVertex) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	if a.Length != b.Length {
		return a.Length < b.Length
	}
	return a.Vertex < b.Vertex
}

// ------------------------------------------------- Extensions (DESIGN E11/E12)

// ScalingRow records label growth as the graph grows (Theorem IV.1 sanity:
// entries per vertex should grow like ω·log n, i.e. slowly).
type ScalingRow struct {
	N, M             int
	EntriesPerVertex float64
	BuildTime        time.Duration
}

// Scaling sweeps graph size at constant average degree.
func Scaling(sizes []int) []ScalingRow {
	var rows []ScalingRow
	for _, n := range sizes {
		g := gen.ErdosRenyi(gen.Config{N: n, M: 4 * n, Seed: int64(n)})
		t0 := time.Now()
		x, _ := csc.Build(g, order.ByDegree(g), csc.Options{Workers: Workers})
		rows = append(rows, ScalingRow{
			N: n, M: 4 * n,
			EntriesPerVertex: float64(x.EntryCount()) / float64(2*n),
			BuildTime:        time.Since(t0),
		})
	}
	return rows
}

// AblationRow compares the couple-vertex-skipping construction against the
// generic engine on the same dataset (identical labels, different work).
type AblationRow struct {
	Dataset          string
	SkippingTime     time.Duration
	GenericTime      time.Duration
	EntriesIdentical bool
	SkippingSpeedup  float64
}

// AblationConstruction quantifies what couple-vertex skipping buys.
func AblationConstruction(s Scale, d Dataset) AblationRow {
	g := d.Build(s)
	ord := order.ByDegree(g)

	t0 := time.Now()
	a, _ := csc.Build(g.Clone(), ord, csc.Options{Workers: Workers})
	skipTime := time.Since(t0)

	t0 = time.Now()
	b, _ := csc.Build(g.Clone(), ord, csc.Options{GenericConstruction: true, Workers: Workers})
	genTime := time.Since(t0)

	return AblationRow{
		Dataset:          d.Name,
		SkippingTime:     skipTime,
		GenericTime:      genTime,
		EntriesIdentical: a.EntryCount() == b.EntryCount(),
		SkippingSpeedup:  float64(genTime) / float64(skipTime),
	}
}
