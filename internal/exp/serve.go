package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
)

// ServePoint is one engine-throughput measurement: sustained queries/sec
// with GOMAXPROCS reader goroutines while the writer absorbs updates at
// the given rate. EXPERIMENTS.md documents the methodology.
//
// The latency percentiles come from 1-in-serveSampleEvery reads timed
// into per-reader obs histograms (merged at the end): closed-loop
// readers measure service time under full contention, complementing the
// churn experiment's open-loop probes, and sampling keeps the clock
// reads from perturbing the throughput number they annotate.
type ServePoint struct {
	Readers          int     `json:"readers"`
	UpdateRatePerSec int     `json:"update_rate_per_sec"`
	WindowNS         int64   `json:"window_ns"`
	Queries          uint64  `json:"queries"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	CacheHits        uint64  `json:"cache_hits,omitempty"`
	OpsApplied       uint64  `json:"ops_applied"`
	Batches          uint64  `json:"batches"`
	LatencySamples   uint64  `json:"latency_samples,omitempty"`
	P50NS            int64   `json:"read_p50_ns,omitempty"`
	P99NS            int64   `json:"read_p99_ns,omitempty"`
}

// serveSampleEvery is the read-latency sampling stride of serveBench.
const serveSampleEvery = 16

// serveRates are the update loads each dataset is measured under:
// read-only, a moderate stream, and a heavy stream.
var serveRates = []int{0, 2000, 20000}

func serveWindow(s Scale) time.Duration {
	switch s {
	case Tiny:
		return 150 * time.Millisecond
	case Small:
		return 300 * time.Millisecond
	default:
		return 500 * time.Millisecond
	}
}

// ServeBench measures the serving engine's query throughput under
// concurrent update load. The updater streams delete+reinsert pairs of
// random existing edges (the same net-zero protocol the update benchmark
// uses), paced to the target rate; readers query uniform-random vertices
// as fast as the reader epochs allow. The engine is in-memory (no WAL),
// so the numbers isolate the concurrency protocol from fsync cost.
func serveBench(s Scale, g *graph.Digraph, e *engine.Engine) []ServePoint {
	readers := runtime.GOMAXPROCS(0)
	window := serveWindow(s)
	n := g.NumVertices()
	edges := pickEdges(g, 256, 11)
	var out []ServePoint
	for _, rate := range serveRates {
		before := e.Stats()
		var stop atomic.Bool
		var wg sync.WaitGroup
		hists := make([]*obs.Histogram, readers)
		for w := 0; w < readers; w++ {
			hists[w] = obs.NewHistogram()
			wg.Add(1)
			go func(w int, seed uint64) {
				defer wg.Done()
				v := int(seed % uint64(n))
				for i := 0; !stop.Load(); i++ {
					if i%serveSampleEvery == 0 {
						t0 := time.Now()
						e.CycleCount(v)
						hists[w].ObserveSince(t0)
					} else {
						e.CycleCount(v)
					}
					v = (v + 7919) % n // prime stride: spread vertices, no rand in the hot loop
				}
			}(w, uint64(w)*2654435761+1)
		}
		if rate > 0 && len(edges) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Pace in 1ms ticks, alternating a tick of deletions with a
				// tick that reinserts them: the phases land in different
				// batches, so the load truly applies instead of coalescing
				// to a no-op, and the graph returns to its starting state.
				perTick := rate / 1000
				if perTick < 1 {
					perTick = 1
				}
				if perTick > len(edges) {
					perTick = len(edges)
				}
				i := 0
				deleted := make([][2]int, 0, perTick)
				tick := time.NewTicker(time.Millisecond)
				defer tick.Stop()
				for !stop.Load() {
					<-tick.C
					if len(deleted) == 0 {
						for k := 0; k < perTick; k++ {
							ed := edges[i%len(edges)]
							i++
							if e.Delete(ed[0], ed[1]) != nil {
								return
							}
							deleted = append(deleted, ed)
						}
					} else {
						for _, ed := range deleted {
							if e.Insert(ed[0], ed[1]) != nil {
								return
							}
						}
						deleted = deleted[:0]
					}
				}
				for _, ed := range deleted { // restore the starting graph
					_ = e.Insert(ed[0], ed[1])
				}
			}()
		}
		t0 := time.Now()
		time.Sleep(window)
		stop.Store(true)
		// The measured window ends when readers are told to stop — the
		// updater's drain and the backlog flush below must not dilute the
		// rate (they can take several windows' worth on dense analogs).
		elapsed := time.Since(t0)
		wg.Wait()
		e.Flush() // leave the graph at its starting state for the next rate
		// The engine's own counter is the query count: it only counts
		// queries that actually entered a reader epoch.
		after := e.Stats()
		queries := after.Queries - before.Queries
		var lat obs.HistSnapshot
		for _, hist := range hists {
			lat.Merge(hist.Snapshot())
		}
		out = append(out, ServePoint{
			Readers:          readers,
			UpdateRatePerSec: rate,
			WindowNS:         elapsed.Nanoseconds(),
			Queries:          queries,
			QueriesPerSec:    float64(queries) / elapsed.Seconds(),
			CacheHits:        after.CacheHits - before.CacheHits,
			OpsApplied:       after.OpsApplied - before.OpsApplied,
			Batches:          after.Batches - before.Batches,
			LatencySamples:   lat.Count,
			P50NS:            lat.Quantile(0.50),
			P99NS:            lat.Quantile(0.99),
		})
	}
	return out
}
