package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 9 {
		t.Fatalf("registry has %d datasets, want 9", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		g := d.Build(Tiny)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty tiny build", d.Name)
		}
	}
	if _, err := DatasetByName("G04"); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "small", "full"} {
		sc, err := ParseScale(s)
		if err != nil || sc.String() != s {
			t.Errorf("ParseScale(%q) = %v, %v", s, sc, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTable4(t *testing.T) {
	rows := Table4(Tiny)
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	var buf bytes.Buffer
	if err := WriteTable4(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "G04") {
		t.Fatal("table missing dataset name")
	}
}

func TestFig9SmallestDataset(t *testing.T) {
	d, _ := DatasetByName("G04")
	row := Fig9(Tiny, d)
	if row.HPTime <= 0 || row.CSCTime <= 0 {
		t.Fatalf("timings not positive: %+v", row)
	}
	if row.HPBytes == 0 || row.CSCBytes == 0 {
		t.Fatalf("sizes not positive: %+v", row)
	}
	// §VI-B2: the reduced CSC index should be within a small factor of
	// HP-SPC, not a 2x blowup despite Gb doubling the vertices.
	ratio := float64(row.CSCBytes) / float64(row.HPBytes)
	if ratio > 1.8 || ratio < 0.4 {
		t.Fatalf("size ratio %0.2f far from parity: %+v", ratio, row)
	}
	var buf bytes.Buffer
	if err := WriteFig9(&buf, []BuildRow{row}); err != nil {
		t.Fatal(err)
	}
}

func TestFig10AgreementAndShape(t *testing.T) {
	d, _ := DatasetByName("EME")
	res, err := Fig10(Tiny, d)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range res.Rows {
		total += row.Queries
	}
	if total == 0 {
		t.Fatal("no queries ran")
	}
	var buf bytes.Buffer
	if err := WriteFig10(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "High") {
		t.Fatal("missing cluster names")
	}
}

func TestFig11Shape(t *testing.T) {
	d, _ := DatasetByName("G04")
	row := Fig11(Tiny, d, false)
	if row.Updates == 0 || row.RedundancyAvg <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
	if row.MinimalityAvg <= 0 {
		t.Fatalf("minimality not measured: %+v", row)
	}
	// §VI-C1: minimality must be substantially slower than redundancy.
	if row.MinimalityAvg < row.RedundancyAvg {
		t.Logf("warning: minimality (%v) not slower than redundancy (%v) at tiny scale",
			row.MinimalityAvg, row.RedundancyAvg)
	}
	skipped := Fig11(Tiny, d, true)
	if !skipped.MinimalitySkipped || skipped.MinimalityAvg != 0 {
		t.Fatalf("skip flag ignored: %+v", skipped)
	}
	var buf bytes.Buffer
	if err := WriteFig11(&buf, []UpdateRow{row, skipped}); err != nil {
		t.Fatal(err)
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(Tiny)
	edges := 0
	for _, r := range rows {
		edges += r.Edges
	}
	if edges == 0 {
		t.Fatal("no deletions ran")
	}
	var buf bytes.Buffer
	if err := WriteFig12(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestCaseStudyRecoversCriminals(t *testing.T) {
	res := CaseStudy(Tiny)
	if !res.Recovered {
		t.Fatalf("planted criminals not recovered: top=%v", res.Top)
	}
	if len(res.Top) == 0 {
		t.Fatal("empty ranking")
	}
	var buf bytes.Buffer
	if err := WriteCase(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "true") {
		t.Fatal("ranking table missing planted accounts")
	}
}

func TestScalingGrowsSlowly(t *testing.T) {
	rows := Scaling([]int{200, 400, 800})
	if len(rows) != 3 {
		t.Fatal("rows missing")
	}
	// Entries per vertex should grow sub-linearly: less than 3x over a 4x
	// size increase.
	if rows[2].EntriesPerVertex > 3*rows[0].EntriesPerVertex {
		t.Fatalf("label growth superlinear: %+v", rows)
	}
	var buf bytes.Buffer
	if err := WriteScaling(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

// TestOrderingShootout gates the hub-ordering experiment on its
// deterministic size results (timings vary, label bytes do not):
// every strategy builds every family, no informed strategy loses to
// random anywhere, and at least one sampled-cycle strategy beats the
// degree baseline by ≥10% label bytes on at least one family — the
// evidence the pluggable-order machinery pays for itself.
func TestOrderingShootout(t *testing.T) {
	rows := Ordering(Tiny)
	strategies := orderingStrategies()
	byFam := map[string]map[string]OrderingRow{}
	for _, r := range rows {
		if r.Entries == 0 || r.LabelBytes == 0 || r.BuildNS <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
		if byFam[r.Family] == nil {
			byFam[r.Family] = map[string]OrderingRow{}
		}
		byFam[r.Family][r.Strategy] = r
	}
	for fam, cells := range byFam {
		if len(cells) != len(strategies) {
			t.Fatalf("family %s has %d strategies, want %d", fam, len(cells), len(strategies))
		}
	}
	// The degree heuristic must matter where degrees are informative:
	// random pays a large byte penalty on the chorded giant SCC. (No
	// global degree-beats-random assertion — on uniform-degree graphs
	// like the rings and the torus, degree degenerates to id order and
	// random legitimately wins.)
	if r := byFam["giant-scc"]["random"].BytesVsDegree; r < 1.1 {
		t.Errorf("random only %.3fx degree bytes on giant-scc; degree baseline suspect", r)
	}
	best := 1.0
	for _, cells := range byFam {
		for _, name := range []string{"betweenness", "coverage"} {
			if r := cells[name].BytesVsDegree; r < best {
				best = r
			}
		}
	}
	if best > 0.90 {
		t.Errorf("no sampled strategy beats degree by ≥10%% label bytes anywhere (best ratio %.3f)", best)
	}
	var buf bytes.Buffer
	if err := WriteOrdering(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestAblationConstruction(t *testing.T) {
	d, _ := DatasetByName("G04")
	row := AblationConstruction(Tiny, d)
	if !row.EntriesIdentical {
		t.Fatalf("constructions diverged: %+v", row)
	}
	var buf bytes.Buffer
	if err := WriteAblation(&buf, []AblationRow{row}); err != nil {
		t.Fatal(err)
	}
}

// The bench suite must emit the serving-throughput points alongside the
// static figures: GOMAXPROCS readers, every configured update rate, and
// nonzero query counts (the JSON artifact CI uploads depends on this).
func TestBenchSuiteEmitsServePoints(t *testing.T) {
	d, err := DatasetByName("G04")
	if err != nil {
		t.Fatal(err)
	}
	res := Bench(Tiny, d)
	if len(res.Serve) != len(serveRates) {
		t.Fatalf("got %d serve points, want %d", len(res.Serve), len(serveRates))
	}
	for i, p := range res.Serve {
		if p.UpdateRatePerSec != serveRates[i] {
			t.Fatalf("point %d rate %d, want %d", i, p.UpdateRatePerSec, serveRates[i])
		}
		if p.Readers < 1 || p.Queries == 0 || p.QueriesPerSec <= 0 {
			t.Fatalf("degenerate serve point %+v", p)
		}
		if p.UpdateRatePerSec > 0 && p.OpsApplied == 0 {
			t.Fatalf("update rate %d applied no ops — the load coalesced away", p.UpdateRatePerSec)
		}
	}
}

// TestUpdateThroughputExperiment is the batch-update acceptance gate: on
// the many-small-SCC family at tiny scale, applying the batch-64 stream
// through ApplyBatch must sustain at least 2x the updates/sec of per-edge
// sequential maintenance, and every row of the sweep must be well-formed
// (the UPD-* rows in BENCH_*.json come straight from these).
func TestUpdateThroughputExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("update throughput experiment is not -short")
	}
	if raceEnabled {
		// The race detector serializes goroutines and inflates every
		// traversal unevenly; the ≥2x gate is a wall-clock ratio and
		// only meaningful on an uninstrumented binary.
		t.Skip("timing gate is not meaningful under -race")
	}
	rows := Updates(Tiny)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 2 families x 3 batch sizes", len(rows))
	}
	type key struct {
		fam string
		bs  int
	}
	byKey := map[key]UpdateThroughputRow{}
	for _, r := range rows {
		if r.N == 0 || r.Ops == 0 || r.SeqOpsPerSec <= 0 || r.BatchOpsPerSec <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byKey[key{r.Family, r.BatchSize}] = r
	}
	for _, bs := range updateBatchSizes {
		for _, fam := range []string{"many-small-scc", "giant-scc"} {
			if _, ok := byKey[key{fam, bs}]; !ok {
				t.Fatalf("missing row %s b%d", fam, bs)
			}
		}
	}
	headline := byKey[key{"many-small-scc", 64}]
	if headline.Speedup < 2 {
		t.Fatalf("many-small-scc batch-64 speedup %.2fx < 2x: %+v", headline.Speedup, headline)
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "many-small-scc") {
		t.Fatal("table missing family name")
	}
}

// TestQueryThroughputExperiment is the read-path acceptance gate: on the
// many-small-SCC family at tiny scale, refreshing the top-k scoreboard
// by rescoring only each batch-64 dirty set must sustain at least 2x the
// throughput of a full RescoreAll per batch, every serve point must
// carry live cold and cached rates, and the cached arm must actually hit
// (the QRY-* rows in BENCH_*.json come straight from these).
func TestQueryThroughputExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("query throughput experiment is not -short")
	}
	if raceEnabled {
		// Wall-clock ratio gates are meaningless on an instrumented
		// binary (see TestUpdateThroughputExperiment).
		t.Skip("timing gate is not meaningful under -race")
	}
	rows := Queries(Tiny)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want one per family", len(rows))
	}
	byFam := map[string]QueryThroughputRow{}
	for _, r := range rows {
		if r.N == 0 || r.M == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if len(r.Serve) != len(serveRates) {
			t.Fatalf("%s: %d serve points, want %d", r.Family, len(r.Serve), len(serveRates))
		}
		for i, p := range r.Serve {
			if p.UpdateRatePerSec != serveRates[i] {
				t.Fatalf("%s point %d rate %d, want %d", r.Family, i, p.UpdateRatePerSec, serveRates[i])
			}
			if p.ColdQPS <= 0 || p.CachedQPS <= 0 {
				t.Fatalf("%s: degenerate serve point %+v", r.Family, p)
			}
		}
		// The read-only point walks every vertex repeatedly; after the
		// first sweep almost every read must be a hit.
		if p := r.Serve[0]; p.CacheHitRate < 0.5 {
			t.Fatalf("%s: rate-0 cache hit rate %.2f < 0.5", r.Family, p.CacheHitRate)
		}
		if len(r.TopK) != len(topkBatchSizes) {
			t.Fatalf("%s: %d topk rows, want %d", r.Family, len(r.TopK), len(topkBatchSizes))
		}
		for _, p := range r.TopK {
			if p.N == 0 || p.Batches == 0 || p.DirtyPerSec <= 0 || p.FullPerSec <= 0 || p.AvgDirty <= 0 {
				t.Fatalf("%s: degenerate topk row %+v", r.Family, p)
			}
		}
		byFam[r.Family] = r
	}
	var headline TopKRescoreRow
	for _, p := range byFam["many-small-scc"].TopK {
		if p.BatchSize == 64 {
			headline = p
		}
	}
	if headline.Speedup < 2 {
		t.Fatalf("many-small-scc batch-64 dirty-rescore speedup %.2fx < 2x: %+v", headline.Speedup, headline)
	}
	var buf bytes.Buffer
	if err := WriteQueries(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "many-small-scc") || !strings.Contains(buf.String(), "cached-q/s") {
		t.Fatal("table missing expected content")
	}
}

// TestChurnExperiment is the overload-resilience acceptance gate: under
// the bridge-flap protocol the out-of-band arm must cut the read-path
// p99 by at least 2x against inline rebuilds (the CHURN-* rows in
// BENCH_*.json come straight from these), both arms must quiesce to
// oracle-identical answers (churnArm panics otherwise), and the inline
// arm must report zero out-of-band activity.
func TestChurnExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("churn experiment is not -short")
	}
	if raceEnabled {
		// Wall-clock ratio gates are meaningless on an instrumented
		// binary (see TestUpdateThroughputExperiment).
		t.Skip("timing gate is not meaningful under -race")
	}
	rows := Churn(Tiny)
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.N == 0 || r.M == 0 || r.Readers == 0 {
		t.Fatalf("degenerate row %+v", r)
	}
	for _, a := range []ChurnArm{r.Inline, r.OOB} {
		if a.Reads == 0 || a.Flaps == 0 || a.P50NS <= 0 || a.P99NS < a.P50NS {
			t.Fatalf("degenerate arm %+v", a)
		}
	}
	if r.Inline.Threshold != 0 || r.Inline.Rebuilds != 0 || r.Inline.Superseded != 0 {
		t.Fatalf("inline arm ran out-of-band rebuilds: %+v", r.Inline)
	}
	if r.OOB.Threshold <= 0 {
		t.Fatalf("OOB arm threshold %d", r.OOB.Threshold)
	}
	if r.P99Improvement < 2 {
		t.Fatalf("OOB p99 improvement %.2fx < 2x: inline %v vs oob %v",
			r.P99Improvement, time.Duration(r.Inline.P99NS), time.Duration(r.OOB.P99NS))
	}
	var buf bytes.Buffer
	if err := WriteChurn(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dumbbell") || !strings.Contains(buf.String(), "p99 improvement") {
		t.Fatal("table missing expected content")
	}
}

// TestClusterExperiment is the replicated-cluster acceptance gate: the
// CLUSTER-* rows in BENCH_*.json come straight from these figures.
// Throughput arms must be non-degenerate (ReadSpeedup is reported, not
// gated — both arms share one GOMAXPROCS pool, so it measures routing
// overhead, not multi-host scaling), and the failover drill must lose
// zero acknowledged writes, fail over exactly once, and bound the write
// blackout.
func TestClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment is not -short")
	}
	if raceEnabled {
		// Wall-clock gates are meaningless on an instrumented binary, and
		// the drill's correctness is already race-tested in internal/dist.
		t.Skip("timing gate is not meaningful under -race")
	}
	rows := Cluster(Tiny)
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.N == 0 || r.M == 0 || r.Shards == 0 {
		t.Fatalf("degenerate row %+v", r)
	}
	for _, a := range []ClusterThroughputArm{r.One, r.Three} {
		if a.Reads == 0 || a.QPS <= 0 || a.P50NS <= 0 || a.P99NS < a.P50NS {
			t.Fatalf("degenerate arm %+v", a)
		}
	}
	if r.One.Groups != 1 || r.Three.Groups != 3 || r.ReadSpeedup <= 0 {
		t.Fatalf("arm shape: %+v", r)
	}
	if r.AckedWrites == 0 || r.LostAckedWrites != 0 {
		t.Fatalf("failover drill lost %d of %d acked writes", r.LostAckedWrites, r.AckedWrites)
	}
	if r.Failovers != 1 {
		t.Fatalf("failovers %d, want exactly 1", r.Failovers)
	}
	if r.FailoverBlackoutNS <= 0 || r.FailoverBlackoutNS > (5*time.Second).Nanoseconds() {
		t.Fatalf("blackout window %s, want (0, 5s]", time.Duration(r.FailoverBlackoutNS))
	}
	var buf bytes.Buffer
	if err := WriteCluster(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rings") || !strings.Contains(buf.String(), "failover") {
		t.Fatal("table missing expected content")
	}
}

// The sharding experiment is the tentpole's acceptance gate: on the
// DAG-heavy family the sharded build must be at least 2x faster and at
// least 2x smaller than the monolithic one, and both numbers land in the
// BENCH_*.json artifact through BenchSuite's SHARD-* rows.
func TestShardingExperiment(t *testing.T) {
	rows := Sharding(Tiny)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byFam := map[string]ShardingRow{}
	for _, r := range rows {
		if r.N == 0 || r.MonoBuildNS <= 0 || r.ShardedBuildNS <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byFam[r.Family] = r
	}
	dag := byFam["dag-heavy"]
	if dag.BuildSpeedup < 2 {
		t.Fatalf("dag-heavy build speedup %.2fx < 2x: %+v", dag.BuildSpeedup, dag)
	}
	if dag.BytesReduction < 2 {
		t.Fatalf("dag-heavy bytes reduction %.2fx < 2x: %+v", dag.BytesReduction, dag)
	}
	if dag.TrivialVertices < dag.N*8/10 {
		t.Fatalf("dag-heavy family not DAG-heavy: %d trivial of %d", dag.TrivialVertices, dag.N)
	}
	giant := byFam["giant-scc"]
	if giant.Shards != 1 || giant.TrivialVertices != 0 {
		t.Fatalf("giant-scc family not a single component: %+v", giant)
	}
	// Giant-SCC labels must match the monolithic ones exactly — sharding
	// with one shard is the same labeling problem.
	if giant.MonoBytes != giant.ShardedBytes {
		t.Fatalf("giant-scc bytes diverge: mono %d sharded %d", giant.MonoBytes, giant.ShardedBytes)
	}
	many := byFam["many-small-scc"]
	if many.Shards < 10 {
		t.Fatalf("many-small-scc produced %d shards", many.Shards)
	}
	var buf bytes.Buffer
	if err := WriteSharding(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dag-heavy") {
		t.Fatal("table missing family name")
	}
}

func TestStorageExperiment(t *testing.T) {
	rows := Storage(Tiny)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	byFam := map[string]StorageRow{}
	for _, r := range rows {
		if r.N == 0 || r.Entries == 0 || r.CompressedBytes == 0 || r.UncompressedBytes == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.FileBytes == 0 || r.ColdLoadNS <= 0 || r.MmapLoadNS <= 0 {
			t.Fatalf("cold-start leg missing from row %+v", r)
		}
		byFam[r.Family] = r
	}
	// The headline gate: on the DAG-heavy family the frozen delta+varint
	// arena must be ≥2x smaller per entry than the uncompressed CSR
	// arena, and the bloom signatures must actually screen joins on the
	// mostly-acyclic query sweep.
	dag := byFam["dag-heavy"]
	if dag.Reduction < 2 {
		t.Fatalf("dag-heavy frozen arena only %.2fx smaller than the mutable arena, want ≥2x: %+v", dag.Reduction, dag)
	}
	if dag.BytesPerEntry >= 8 {
		t.Fatalf("dag-heavy frozen arena %.2f bytes/entry, not below the 8-byte packed entry: %+v", dag.BytesPerEntry, dag)
	}
	if dag.BloomChecks == 0 || dag.BloomRejects == 0 {
		t.Fatalf("dag-heavy bloom screen inert: %d checks, %d rejects", dag.BloomChecks, dag.BloomRejects)
	}
	if _, ok := byFam["giant-scc"]; !ok {
		t.Fatalf("giant-scc contrast row missing: %+v", rows)
	}
	var buf bytes.Buffer
	if err := WriteStorage(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dag-heavy") {
		t.Fatal("table missing family name")
	}
}
