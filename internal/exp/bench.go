package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/order"
)

// BenchResult is one dataset's row of the machine-readable benchmark
// suite (`cscbench -json`). Every figure the paper's evaluation tracks —
// construction wall-clock, index size, query latency, update latency —
// lands in one JSON object so the perf trajectory can be diffed across
// PRs without parsing prose tables. EXPERIMENTS.md documents the
// methodology.
type BenchResult struct {
	Dataset      string  `json:"dataset"`
	Scale        string  `json:"scale"`
	Workers      int     `json:"workers"` // 0 = all cores
	GOMAXPROCS   int     `json:"gomaxprocs"`
	N            int     `json:"n"`
	M            int     `json:"m"`
	BuildWallNS  int64   `json:"build_wall_ns"`
	Entries      int     `json:"entries"`
	Bytes        int     `json:"bytes"`
	ReducedBytes int     `json:"reduced_bytes"`
	ArenaBytes   int     `json:"arena_bytes"`
	Reruns       int     `json:"parallel_reruns"`
	QueryNS      float64 `json:"query_ns"`
	InsertNS     float64 `json:"insert_ns"`
	DeleteNS     float64 `json:"delete_ns"`

	// Serve is the engine-throughput experiment: queries/sec sustained by
	// GOMAXPROCS concurrent readers at each update rate (serve.go).
	Serve []ServePoint `json:"serve,omitempty"`

	// Sharding is set on the synthetic partition-family rows the suite
	// appends after the paper-analog datasets: the monolithic-vs-sharded
	// build comparison (sharding.go). On those rows the standard
	// build/size fields describe the sharded build.
	Sharding *ShardingRow `json:"sharding,omitempty"`

	// Update is set on the UPD-* rows the suite appends after the
	// SHARD-* rows: the end-to-end update-throughput comparison of
	// per-edge sequential maintenance against the batch planner
	// (updates.go).
	Update *UpdateThroughputRow `json:"update,omitempty"`

	// Query is set on the QRY-* rows the suite appends after the UPD-*
	// rows: the read-path experiment — cold vs cached serving throughput
	// and dirty-rescore vs full-rescore top-k maintenance (queries.go).
	Query *QueryThroughputRow `json:"query,omitempty"`

	// Churn is set on the CHURN-* rows the suite appends after QRY-*:
	// read-tail latency under structural churn, inline rebuilds vs
	// out-of-band deferral (churn.go).
	Churn *ChurnRow `json:"churn,omitempty"`

	// Storage is set on the MEM-* rows the suite appends after CHURN-*:
	// the compressed frozen-arena footprint vs the mutable
	// representation, bloom pre-screen reject rate, and v3 cold-start
	// latency (storage.go).
	Storage *StorageRow `json:"storage,omitempty"`

	// Ordering is set on the ORD-* rows the suite appends after MEM-*:
	// the hub-ordering shootout — label bytes, build time, and query
	// percentiles per strategy, normalized against the degree baseline
	// (ordering.go).
	Ordering *OrderingRow `json:"ordering,omitempty"`

	// Cluster is set on the CLUSTER-* rows the suite appends last: the
	// replicated-cluster experiment — routed read throughput at one vs
	// three worker groups and the kill-a-worker failover drill
	// (cluster.go).
	Cluster *ClusterRow `json:"cluster,omitempty"`
}

// benchQueries and benchUpdates bound the per-dataset sample sizes.
func benchSamples(s Scale) (queries, updates int) {
	switch s {
	case Tiny:
		return 2000, 20
	case Small:
		return 5000, 40
	default:
		return 10000, 80
	}
}

// Bench builds the CSC index on one dataset and measures the quantities
// BenchResult records, at the parallelism the Workers package variable
// selects (like every other experiment). Updates are measured as
// delete+reinsert pairs over random existing edges (each leg timed
// separately), so the graph and index end the run unchanged.
func Bench(s Scale, d Dataset) BenchResult {
	g := d.Build(s)
	n, m := g.NumVertices(), g.NumEdges()
	ord := order.ByDegree(g)

	t0 := time.Now()
	x, _ := csc.Build(g, ord, csc.Options{Workers: Workers})
	buildWall := time.Since(t0)

	res := BenchResult{
		Dataset:      d.Name,
		Scale:        s.String(),
		Workers:      Workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		N:            n,
		M:            m,
		BuildWallNS:  buildWall.Nanoseconds(),
		Entries:      x.EntryCount(),
		Bytes:        x.Bytes(),
		ReducedBytes: x.ReducedBytes(),
		Reruns:       x.Engine().Reruns(),
	}
	if a := x.Engine().Arena(); a != nil {
		res.ArenaBytes = a.Bytes()
	}

	queries, updates := benchSamples(s)
	r := rand.New(rand.NewSource(9))

	qt0 := time.Now()
	for i := 0; i < queries; i++ {
		x.CycleCount(r.Intn(n))
	}
	res.QueryNS = float64(time.Since(qt0).Nanoseconds()) / float64(queries)

	edges := pickEdges(x.Graph(), updates, 9)
	if len(edges) > 0 {
		var delTotal, insTotal time.Duration
		for _, e := range edges {
			dt0 := time.Now()
			if _, err := x.DeleteEdge(e[0], e[1]); err != nil {
				panic(err) // edges were sampled from the live graph
			}
			delTotal += time.Since(dt0)
			it0 := time.Now()
			if _, err := x.InsertEdge(e[0], e[1]); err != nil {
				panic(err)
			}
			insTotal += time.Since(it0)
		}
		res.DeleteNS = float64(delTotal.Nanoseconds()) / float64(len(edges))
		res.InsertNS = float64(insTotal.Nanoseconds()) / float64(len(edges))
	}

	// Serving throughput: hand the index to a concurrent engine (it owns
	// it from here — this is the benchmark's last use) and measure
	// queries/sec under each update rate.
	e := engine.New(x, engine.Options{FlushInterval: -1})
	res.Serve = serveBench(s, x.Graph(), e)
	if err := e.Close(); err != nil {
		panic(err)
	}
	return res
}

// BenchSuite runs Bench over the given datasets, then appends one row per
// condensation-sharding family (Sharding) and one per update-throughput
// point (Updates, the UPD-* rows) so the mono-vs-sharded build and the
// batch-vs-sequential update trajectories land in the same BENCH_*.json
// artifact.
func BenchSuite(s Scale, ds []Dataset) []BenchResult {
	var out []BenchResult
	for _, d := range ds {
		out = append(out, Bench(s, d))
	}
	for _, row := range Sharding(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:     "SHARD-" + row.Family,
			Scale:       s.String(),
			Workers:     Workers,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			N:           row.N,
			M:           row.M,
			BuildWallNS: row.ShardedBuildNS,
			Entries:     row.ShardedBytes / 8,
			Bytes:       row.ShardedBytes,
			Sharding:    &row,
		})
	}
	for _, row := range Updates(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:    fmt.Sprintf("UPD-%s-b%d", row.Family, row.BatchSize),
			Scale:      s.String(),
			Workers:    Workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			N:          row.N,
			M:          row.M,
			Update:     &row,
		})
	}
	for _, row := range Queries(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:    "QRY-" + row.Family,
			Scale:      s.String(),
			Workers:    Workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			N:          row.N,
			M:          row.M,
			Query:      &row,
		})
	}
	for _, row := range Churn(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:    "CHURN-" + row.Family,
			Scale:      s.String(),
			Workers:    Workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			N:          row.N,
			M:          row.M,
			Churn:      &row,
		})
	}
	for _, row := range Storage(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:    "MEM-" + row.Family,
			Scale:      s.String(),
			Workers:    Workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			N:          row.N,
			M:          row.M,
			Entries:    row.Entries,
			Bytes:      row.CompressedBytes,
			Storage:    &row,
		})
	}
	for _, row := range Ordering(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:     fmt.Sprintf("ORD-%s-%s", row.Family, row.Strategy),
			Scale:       s.String(),
			Workers:     Workers,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			N:           row.N,
			M:           row.M,
			BuildWallNS: row.BuildNS,
			Entries:     row.Entries,
			Bytes:       row.LabelBytes,
			Ordering:    &row,
		})
	}
	for _, row := range Cluster(s) {
		row := row
		out = append(out, BenchResult{
			Dataset:    "CLUSTER-" + row.Family,
			Scale:      s.String(),
			Workers:    Workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			N:          row.N,
			M:          row.M,
			Cluster:    &row,
		})
	}
	return out
}

// WriteBenchJSON emits the suite as indented JSON (one array, stable
// field order), the format BENCH_*.json files store.
func WriteBenchJSON(w io.Writer, res []BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
