// Package exp is the experiment harness: it holds the registry of
// synthetic analogs standing in for the paper's nine datasets (Table IV)
// and the runners that regenerate every table and figure of the evaluation
// section (§VI). Each runner returns typed rows; format.go renders them in
// the paper's layout.
package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Workers sets the construction parallelism every experiment build uses
// (0 = all cores, 1 = the sequential methodology of the paper's
// evaluation). cscbench sets it from -workers. Labels are byte-identical
// either way; only wall-clock figures change.
var Workers = 0

// Scale selects dataset sizes. The paper's originals range up to 139M
// edges; Full keeps their relative ordering at laptop scale, Small is the
// default for quick runs and the Go benchmarks, Tiny exists for the unit
// tests of this package.
type Scale int

const (
	Tiny Scale = iota
	Small
	Full
)

// ParseScale converts a CLI flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("exp: unknown scale %q (tiny|small|full)", s)
}

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// Dataset is one synthetic analog of a paper dataset.
type Dataset struct {
	// Name matches the paper's notation (Table IV).
	Name string
	// Paper records the original network and its size.
	Paper string
	// Kind describes the generator used for the analog.
	Kind string
	// Build generates the graph at the given scale, deterministically.
	Build func(s Scale) *graph.Digraph
}

// size returns (n, m) for a dataset whose full-scale analog is (n0, m0):
// Small divides by 4, Tiny by 40.
func size(s Scale, n0, m0 int) (int, int) {
	switch s {
	case Tiny:
		return n0 / 40, m0 / 40
	case Small:
		return n0 / 4, m0 / 4
	default:
		return n0, m0
	}
}

// Datasets lists the nine analogs in the paper's order. Full-scale sizes
// keep Table IV's relative ordering while remaining buildable on a laptop;
// DESIGN.md documents the substitution.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name:  "G04",
			Paper: "p2p-Gnutella04 (10,879 / 39,994)",
			Kind:  "uniform p2p (Erdős–Rényi, no reciprocal edges)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 10000, 40000)
				return gen.ErdosRenyi(gen.Config{N: n, M: m, Seed: 104, NoReciprocal: true})
			},
		},
		{
			Name:  "G30",
			Paper: "p2p-Gnutella30 (36,682 / 88,328)",
			Kind:  "uniform p2p (Erdős–Rényi, no reciprocal edges)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 24000, 60000)
				return gen.ErdosRenyi(gen.Config{N: n, M: m, Seed: 130, NoReciprocal: true})
			},
		},
		{
			Name:  "EME",
			Paper: "email-EuAll (265,214 / 420,045)",
			Kind:  "hub-dominated email (star model)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 40000, 64000)
				return gen.Star(gen.Config{N: n, M: m, Seed: 201}, 0.01)
			},
		},
		{
			Name:  "WBN",
			Paper: "web-NotreDame (325,729 / 1,497,134)",
			Kind:  "web crawl (copy model with reciprocity)",
			Build: func(s Scale) *graph.Digraph {
				n, _ := size(s, 24000, 0)
				return gen.Copy(gen.Config{N: n, Seed: 301}, 5, 0.6, 0.25)
			},
		},
		{
			Name:  "WKT",
			Paper: "wiki-Talk (2,394,385 / 5,021,410)",
			Kind:  "extreme-skew discussion graph (power law 1.9/2.2)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 48000, 100000)
				return gen.PowerLaw(gen.Config{N: n, M: m, Seed: 401}, 1.9, 2.2)
			},
		},
		{
			Name:  "WBB",
			Paper: "web-BerkStan (685,231 / 7,600,595)",
			Kind:  "dense web crawl (copy model)",
			Build: func(s Scale) *graph.Digraph {
				n, _ := size(s, 28000, 0)
				return gen.Copy(gen.Config{N: n, Seed: 501}, 11, 0.7, 0.3)
			},
		},
		{
			Name:  "HDR",
			Paper: "Hudong-Related (2,452,715 / 18,854,882)",
			Kind:  "encyclopedia links (power law 2.1/2.1)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 52000, 400000)
				return gen.PowerLaw(gen.Config{N: n, M: m, Seed: 601}, 2.1, 2.1)
			},
		},
		{
			Name:  "WAR",
			Paper: "wiki_link War (2,093,450 / 38,631,915)",
			Kind:  "dense wiki links (power law 2.0/2.0)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 48000, 700000)
				return gen.PowerLaw(gen.Config{N: n, M: m, Seed: 701}, 2.0, 2.0)
			},
		},
		{
			Name:  "WSR",
			Paper: "wiki_link SR (3,175,009 / 139,586,199)",
			Kind:  "densest wiki links (power law 2.0/1.9)",
			Build: func(s Scale) *graph.Digraph {
				n, m := size(s, 60000, 1200000)
				return gen.PowerLaw(gen.Config{N: n, M: m, Seed: 801}, 2.0, 1.9)
			},
		},
	}
}

// DatasetByName finds a dataset in the registry.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("exp: unknown dataset %q", name)
}
