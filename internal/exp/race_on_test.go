//go:build race

package exp

// raceEnabled reports whether this test binary runs under the race
// detector, which serializes goroutines and distorts wall-clock ratios.
const raceEnabled = true
