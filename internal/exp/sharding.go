package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// ShardingRow compares the monolithic and SCC-sharded builds on one
// partition-stress family: build wall-clock and label bytes, plus the
// partition shape. The DAG-heavy family is the headline — condensation
// sharding skips labeling everything outside the (tiny) cyclic regions,
// so build time and label bytes drop by the acyclic share of the graph.
// The giant-SCC family is the worst case: one component, so sharding
// degrades to the monolithic build plus one Tarjan pass.
type ShardingRow struct {
	Family          string  `json:"family"`
	N               int     `json:"n"`
	M               int     `json:"m"`
	Shards          int     `json:"shards"`
	TrivialVertices int     `json:"trivial_vertices"`
	MonoBuildNS     int64   `json:"mono_build_ns"`
	ShardedBuildNS  int64   `json:"sharded_build_ns"`
	MonoBytes       int     `json:"mono_bytes"`
	ShardedBytes    int     `json:"sharded_bytes"`
	BuildSpeedup    float64 `json:"build_speedup"`
	BytesReduction  float64 `json:"bytes_reduction"`
}

// shardingFamily is one generated family of the sharding experiment.
type shardingFamily struct {
	name  string
	build func(s Scale) *graph.Digraph
}

func shardingFamilies() []shardingFamily {
	return []shardingFamily{
		{"dag-heavy", func(s Scale) *graph.Digraph {
			switch s {
			case Tiny:
				return testgraphs.DAGHeavy(2000, 6000, 4, 7)
			case Small:
				return testgraphs.DAGHeavy(8000, 24000, 8, 7)
			default:
				return testgraphs.DAGHeavy(20000, 60000, 12, 7)
			}
		}},
		{"many-small-scc", func(s Scale) *graph.Digraph {
			switch s {
			case Tiny:
				return testgraphs.ManySmallSCC(40, 5, 200, 8)
			case Small:
				return testgraphs.ManySmallSCC(150, 6, 800, 8)
			default:
				return testgraphs.ManySmallSCC(400, 6, 2400, 8)
			}
		}},
		{"giant-scc", func(s Scale) *graph.Digraph {
			switch s {
			case Tiny:
				return testgraphs.GiantSCC(500, 2000, 9)
			case Small:
				return testgraphs.GiantSCC(1500, 6000, 9)
			default:
				return testgraphs.GiantSCC(4000, 16000, 9)
			}
		}},
	}
}

// Sharding runs the condensation-sharding experiment: per family, one
// timed monolithic build and one timed sharded build (both at the
// Workers parallelism every experiment uses), with label-byte totals and
// the partition shape. Both indexes are built on clones of the same
// generated graph.
func Sharding(s Scale) []ShardingRow {
	var rows []ShardingRow
	for _, fam := range shardingFamilies() {
		g := fam.build(s)
		n, m := g.NumVertices(), g.NumEdges()

		mg := g.Clone()
		t0 := time.Now()
		mono, _ := csc.Build(mg, order.ByDegree(mg), csc.Options{Workers: Workers})
		monoWall := time.Since(t0)

		t1 := time.Now()
		sharded, _ := csc.BuildSharded(g, csc.Options{Workers: Workers})
		shardWall := time.Since(t1)

		row := ShardingRow{
			Family:          fam.name,
			N:               n,
			M:               m,
			Shards:          sharded.NumShards(),
			TrivialVertices: sharded.TrivialVertices(),
			MonoBuildNS:     monoWall.Nanoseconds(),
			ShardedBuildNS:  shardWall.Nanoseconds(),
			MonoBytes:       mono.Bytes(),
			ShardedBytes:    sharded.Bytes(),
		}
		if row.ShardedBuildNS > 0 {
			row.BuildSpeedup = float64(row.MonoBuildNS) / float64(row.ShardedBuildNS)
		}
		if row.ShardedBytes > 0 {
			row.BytesReduction = float64(row.MonoBytes) / float64(row.ShardedBytes)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteSharding renders the sharding experiment as a prose table.
func WriteSharding(w io.Writer, rows []ShardingRow) error {
	if _, err := fmt.Fprintf(w, "%-15s %8s %8s %7s %8s | %10s %10s %7s | %10s %10s %7s\n",
		"family", "n", "m", "shards", "trivial",
		"mono-ms", "shard-ms", "speedup", "mono-KB", "shard-KB", "reduce"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-15s %8d %8d %7d %8d | %10.2f %10.2f %6.1fx | %10.1f %10.1f %6.1fx\n",
			r.Family, r.N, r.M, r.Shards, r.TrivialVertices,
			float64(r.MonoBuildNS)/1e6, float64(r.ShardedBuildNS)/1e6, r.BuildSpeedup,
			float64(r.MonoBytes)/1024, float64(r.ShardedBytes)/1024, r.BytesReduction); err != nil {
			return err
		}
	}
	return nil
}
