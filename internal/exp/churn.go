package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
)

// ChurnArm is one engine configuration's half of the structural-churn
// experiment: read-latency percentiles sampled by concurrent readers
// while a writer flaps a bridge edge whose every transition merges or
// splits the graph's dominant component.
//
// Readers are low-rate latency probes, not closed-loop load: each
// sleeps churnProbeEvery between reads and times one read. A probe
// arriving while the writer holds the stripe locks measures the
// residual lock-hold time — so the percentiles read as the latency
// distribution an independently-arriving client sees, with the
// probability of landing in a rebuild stall reflected proportionally.
// A free-running reader would instead record hundreds of thousands of
// nanosecond reads between rebuilds and exactly one sample per
// multi-millisecond stall, hiding the cliff below the p99 mark.
type ChurnArm struct {
	Threshold  int     `json:"oob_threshold"` // 0 = inline rebuilds
	Flaps      int     `json:"flaps"`
	Reads      int     `json:"reads"`
	WallNS     int64   `json:"wall_ns"` // writer wall-clock for the flap loop
	P50NS      int64   `json:"read_p50_ns"`
	P99NS      int64   `json:"read_p99_ns"`
	P999NS     int64   `json:"read_p999_ns"`
	MaxNS      int64   `json:"read_max_ns"`
	FlapsPerS  float64 `json:"flaps_per_sec"`
	Rebuilds   uint64  `json:"oob_rebuilds"`
	Superseded uint64  `json:"oob_superseded"`
}

// ChurnRow is one family's row of the churn experiment (`cscbench -exp
// churn`, the CHURN-* rows of BENCH_*.json): the same flap protocol
// driven against an inline-rebuild engine and an out-of-band one, with
// the tail-latency improvement the OOB path buys.
type ChurnRow struct {
	Family  string   `json:"family"`
	N       int      `json:"n"`
	M       int      `json:"m"`
	Readers int      `json:"readers"`
	Inline  ChurnArm `json:"inline"`
	OOB     ChurnArm `json:"oob"`
	// P99Improvement = inline p99 / OOB p99: how much of the rebuild
	// cliff the stale-read window shaves off the read tail.
	P99Improvement float64 `json:"p99_improvement"`
}

// dumbbell builds the churn family: two independently chorded strongly
// connected halves of h vertices each, tied into one 2h-vertex SCC by
// the bridge pair (h-1 -> h, 2h-1 -> 0). Deleting the forward bridge
// splits the giant component in half; re-inserting it merges the halves
// back — the worst-case structural flap for an inline-rebuild engine.
func dumbbell(h, chords int, seed int64) *graph.Digraph {
	g := graph.New(2 * h)
	for k := 0; k < h; k++ {
		mustAdd(g, k, (k+1)%h)
		mustAdd(g, h+k, h+(k+1)%h)
	}
	r := rand.New(rand.NewSource(seed))
	for _, base := range []int{0, h} {
		for c := 0; c < chords; {
			u, v := base+r.Intn(h), base+r.Intn(h)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			mustAdd(g, u, v)
			c++
		}
	}
	mustAdd(g, h-1, h)
	mustAdd(g, 2*h-1, 0)
	return g
}

func mustAdd(g *graph.Digraph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// churnParams sizes the dumbbell so one inline rebuild of the merged
// component outlasts the runtime's ~10ms async-preemption quantum. On a
// single-core machine that is what guarantees sleeping probes get
// scheduled *inside* the lock-held window; with shorter rebuilds the
// probes only ever wake after the lock drops and the stall vanishes
// from the sample set.
func churnParams(s Scale) (h, chords, flaps, readers int) {
	switch s {
	case Tiny:
		return 400, 900, 30, 2
	case Small:
		return 700, 1700, 40, 4
	default:
		return 1000, 2500, 60, 4
	}
}

// churnFlapEvery is the writer's flap interval: a fixed churn rate, so
// both arms run the same protocol over comparable wall-clock. The
// inline arm falls behind the tick when rebuilds outlast the interval;
// that lag is the experiment's point, not a flaw. churnProbeEvery is
// the readers' probe interval (see the ChurnArm doc).
const (
	churnFlapEvery  = time.Millisecond
	churnProbeEvery = 200 * time.Microsecond
)

// churnArm runs the flap protocol against one engine configuration and
// reports the latency profile the readers saw. At quiesce the served
// answers are cross-checked against the indexless BFS oracle.
func churnArm(g *graph.Digraph, threshold, flaps, readers int) ChurnArm {
	x, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
	e := engine.New(x, engine.Options{
		FlushInterval:       -1,
		OOBRebuildThreshold: threshold,
	})
	h := g.NumVertices() / 2

	// Each reader records into its own latency histogram — contention-free
	// — and the arm's percentiles come from the merged snapshot. This is
	// the serving layer's own histogram (internal/obs), so the experiment
	// reports exactly what a production /metrics scrape would, to its
	// ≤6.25% bucket resolution.
	var stop atomic.Bool
	var wg sync.WaitGroup
	hists := make([]*obs.Histogram, readers)
	for ri := 0; ri < readers; ri++ {
		hists[ri] = obs.NewHistogram()
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			v := ri
			for !stop.Load() {
				time.Sleep(churnProbeEvery)
				t0 := time.Now()
				e.CycleCount(v % (2 * h))
				hists[ri].ObserveSince(t0)
				v += 13 // odd stride: walk every vertex, spread across stripes
			}
		}(ri)
	}

	t0 := time.Now()
	wnext := t0
	for i := 0; i < flaps; i++ {
		if d := time.Until(wnext); d > 0 {
			time.Sleep(d)
		}
		if err := e.Delete(h-1, h); err != nil {
			panic(err)
		}
		e.Flush()
		if err := e.Insert(h-1, h); err != nil {
			panic(err)
		}
		e.Flush()
		wnext = wnext.Add(churnFlapEvery)
	}
	wall := time.Since(t0)
	stop.Store(true)
	wg.Wait()

	if err := e.WaitRebuilds(); err != nil {
		panic(err)
	}
	// The flap sequence is net-zero: the quiesced engine must answer
	// exactly like a BFS on the original graph.
	for v := 0; v < 2*h; v += 13 {
		wl, wc := bfscount.CycleCount(g, v)
		gl, gc := e.CycleCount(v)
		if gl != wl || gc != wc {
			panic(fmt.Sprintf("exp: churn threshold=%d vertex %d: engine (%d,%d) != oracle (%d,%d)",
				threshold, v, gl, gc, wl, wc))
		}
	}
	st := e.Stats()
	if err := e.Close(); err != nil {
		panic(err)
	}

	var all obs.HistSnapshot
	for _, hist := range hists {
		all.Merge(hist.Snapshot())
	}
	arm := ChurnArm{
		Threshold:  threshold,
		Flaps:      flaps,
		Reads:      int(all.Count),
		WallNS:     wall.Nanoseconds(),
		P50NS:      all.Quantile(0.50),
		P99NS:      all.Quantile(0.99),
		P999NS:     all.Quantile(0.999),
		MaxNS:      all.Max,
		Rebuilds:   st.OOBRebuilds,
		Superseded: st.OOBSuperseded,
	}
	if wall > 0 {
		arm.FlapsPerS = float64(flaps) / wall.Seconds()
	}
	return arm
}

// churnOOBThreshold picks the OOB arm's deferral threshold: far below
// the half size, so every bridge flap defers.
func churnOOBThreshold(h int) int { return h / 4 }

// Churn runs the overload-resilience experiment: the same bridge-flap
// protocol against an inline-rebuild engine (threshold 0, every flap
// rebuilds the giant component under the write lock) and an out-of-band
// one (flaps defer; readers ride the stale window). The reported
// improvement is the read-path p99 ratio between the arms.
func Churn(s Scale) []ChurnRow {
	h, chords, flaps, readers := churnParams(s)
	g := dumbbell(h, chords, 31)
	row := ChurnRow{
		Family:  "dumbbell",
		N:       g.NumVertices(),
		M:       g.NumEdges(),
		Readers: readers,
	}
	row.Inline = churnArm(g, 0, flaps, readers)
	row.OOB = churnArm(g, churnOOBThreshold(h), flaps, readers)
	if row.OOB.P99NS > 0 {
		row.P99Improvement = float64(row.Inline.P99NS) / float64(row.OOB.P99NS)
	}
	return []ChurnRow{row}
}

// WriteChurn renders the churn experiment as a prose table.
func WriteChurn(w io.Writer, rows []ChurnRow) error {
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s (n=%d m=%d, %d readers)\n", r.Family, r.N, r.M, r.Readers); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-8s %6s %9s | %10s %10s %10s %10s | %9s %8s %8s\n",
			"arm", "thresh", "reads", "p50", "p99", "p99.9", "max", "flaps/s", "rebuilds", "supers"); err != nil {
			return err
		}
		for _, a := range []struct {
			name string
			arm  ChurnArm
		}{{"inline", r.Inline}, {"oob", r.OOB}} {
			if _, err := fmt.Fprintf(w, "  %-8s %6d %9d | %10s %10s %10s %10s | %9.0f %8d %8d\n",
				a.name, a.arm.Threshold, a.arm.Reads,
				time.Duration(a.arm.P50NS), time.Duration(a.arm.P99NS),
				time.Duration(a.arm.P999NS), time.Duration(a.arm.MaxNS),
				a.arm.FlapsPerS, a.arm.Rebuilds, a.arm.Superseded); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  p99 improvement: %.1fx\n\n", r.P99Improvement); err != nil {
			return err
		}
	}
	return nil
}
