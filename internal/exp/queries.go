package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/testgraphs"
)

// QueryServePoint is one update-rate point of the read-path experiment:
// the same reader/updater protocol as the serving-throughput experiment,
// run once against an engine with the result cache disabled (cold: every
// read re-joins labels) and once with it enabled (cached: untouched
// vertices answer O(1)).
type QueryServePoint struct {
	UpdateRatePerSec int     `json:"update_rate_per_sec"`
	ColdQPS          float64 `json:"cold_queries_per_sec"`
	CachedQPS        float64 `json:"cached_queries_per_sec"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	Speedup          float64 `json:"speedup"`
	// Sampled read-latency p99 of each arm (see ServePoint), from the
	// obs histograms the serving layer itself exposes on /metrics.
	ColdP99NS   int64 `json:"cold_read_p99_ns,omitempty"`
	CachedP99NS int64 `json:"cached_read_p99_ns,omitempty"`
}

// TopKRescoreRow is one batch-size point of the top-k maintenance
// comparison: after each applied batch, refreshing the scoreboard by
// rescoring only the batch's dirty set (the post-batch hook's strategy)
// versus re-scoring every vertex (RescoreAll at the experiment's Workers
// parallelism). Both strategies produce identical scoreboards — the
// experiment cross-checks that — so the throughput ratio is a pure win.
type TopKRescoreRow struct {
	BatchSize int `json:"batch_size"`
	// N and M describe the graph this comparison ran on — for
	// many-small-SCC a larger instance than the row's serve half (see
	// topkGraph), so per-vertex ratios must use these fields, not the
	// row-level n/m.
	N           int     `json:"n"`
	M           int     `json:"m"`
	Batches     int     `json:"batches"`
	AvgDirty    float64 `json:"avg_dirty_per_batch"`
	DirtyNS     int64   `json:"dirty_rescore_wall_ns"`
	FullNS      int64   `json:"full_rescore_wall_ns"`
	DirtyPerSec float64 `json:"dirty_rescores_per_sec"`
	FullPerSec  float64 `json:"full_rescores_per_sec"`
	Speedup     float64 `json:"speedup"`
}

// QueryThroughputRow is one family's row of the read-path experiment
// (`cscbench -exp queries`, the QRY-* rows of BENCH_*.json).
type QueryThroughputRow struct {
	Family  string            `json:"family"`
	N       int               `json:"n"`
	M       int               `json:"m"`
	Workers int               `json:"workers"`
	Serve   []QueryServePoint `json:"serve,omitempty"`
	TopK    []TopKRescoreRow  `json:"topk,omitempty"`
}

// topkBatchSizes is the batch-size sweep of the rescore comparison.
var topkBatchSizes = []int{1, 64}

// topkGraph picks the graph each rescore comparison runs on: the same
// families as the update experiment, except many-small-SCC grows — the
// dirty share of a batch shrinks as the graph grows, which is exactly
// the regime the dirty rescore exists for.
func topkGraph(s Scale, fam updateFamily) *graph.Digraph {
	if fam.name == "many-small-scc" {
		switch s {
		case Tiny:
			return testgraphs.ManySmallSCC(600, 6, 1200, 8)
		case Small:
			return testgraphs.ManySmallSCC(1200, 6, 2400, 8)
		default:
			return testgraphs.ManySmallSCC(2400, 6, 4800, 8)
		}
	}
	return fam.build(s)
}

// topkOpsBudget bounds the ops each rescore comparison applies; at batch
// size 1 every op pays a full-board rescore on the RescoreAll arm, so
// the budget stays small.
func topkOpsBudget(s Scale) int {
	switch s {
	case Tiny:
		return 512
	case Small:
		return 1024
	default:
		return 2048
	}
}

// Queries runs the read-path experiment: per family, (1) cold-vs-cached
// serving throughput at each update rate, and (2) dirty-rescore vs
// full-rescore top-k maintenance throughput at each batch size.
func Queries(s Scale) []QueryThroughputRow {
	var rows []QueryThroughputRow
	for _, fam := range updateFamilies() {
		g := fam.build(s)
		row := QueryThroughputRow{
			Family:  fam.name,
			N:       g.NumVertices(),
			M:       g.NumEdges(),
			Workers: Workers,
		}

		// Cold arm: the cache disabled, everything else identical.
		coldIx, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
		cold := engine.New(coldIx, engine.Options{FlushInterval: -1, NoCache: true})
		coldPts := serveBench(s, g, cold)
		if err := cold.Close(); err != nil {
			panic(err)
		}
		cachedIx, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
		cached := engine.New(cachedIx, engine.Options{FlushInterval: -1})
		cachedPts := serveBench(s, g, cached)
		if err := cached.Close(); err != nil {
			panic(err)
		}
		for i := range coldPts {
			p := QueryServePoint{
				UpdateRatePerSec: coldPts[i].UpdateRatePerSec,
				ColdQPS:          coldPts[i].QueriesPerSec,
				CachedQPS:        cachedPts[i].QueriesPerSec,
				ColdP99NS:        coldPts[i].P99NS,
				CachedP99NS:      cachedPts[i].P99NS,
			}
			if cachedPts[i].Queries > 0 {
				p.CacheHitRate = float64(cachedPts[i].CacheHits) / float64(cachedPts[i].Queries)
			}
			if p.ColdQPS > 0 {
				p.Speedup = p.CachedQPS / p.ColdQPS
			}
			row.Serve = append(row.Serve, p)
		}

		row.TopK = topkRescore(s, fam)
		rows = append(rows, row)
	}
	return rows
}

// topkRescore measures the two scoreboard-maintenance strategies over
// the same applied batch stream on one index: per batch, RescoreDirty of
// the batch's exact dirty set against RescoreAll of the whole board. The
// two monitors' boards are cross-checked for equality as the stream
// progresses.
func topkRescore(s Scale, fam updateFamily) []TopKRescoreRow {
	var rows []TopKRescoreRow
	for _, bs := range topkBatchSizes {
		g := topkGraph(s, fam)
		x, _ := csc.BuildSharded(g, csc.Options{Workers: Workers})
		batches := updateBatches(x, bs, topkOpsBudget(s))
		if len(batches) == 0 {
			continue
		}
		dirtyMon := monitor.NewParallel(x, 10, Workers)
		fullMon := monitor.NewParallel(x, 10, Workers)

		row := TopKRescoreRow{BatchSize: bs, N: g.NumVertices(), M: g.NumEdges()}
		totalDirty := 0
		for bi, batch := range batches {
			st, err := x.ApplyBatch(batch, Workers)
			if err != nil {
				panic(err) // batches were derived from the live graph
			}
			dirty := csc.DirtyVertices(st)
			totalDirty += len(dirty)

			t0 := time.Now()
			dirtyMon.RescoreDirty(dirty)
			row.DirtyNS += time.Since(t0).Nanoseconds()

			t1 := time.Now()
			fullMon.RescoreAll(Workers)
			row.FullNS += time.Since(t1).Nanoseconds()
			row.Batches++

			if bi%16 == 0 { // the two strategies must agree exactly
				for v := 0; v < g.NumVertices(); v++ {
					if dirtyMon.Score(v) != fullMon.Score(v) {
						panic(fmt.Sprintf("exp: queries %s b%d batch %d: dirty board %+v != full board %+v at vertex %d",
							fam.name, bs, bi, dirtyMon.Score(v), fullMon.Score(v), v))
					}
				}
			}
		}
		row.AvgDirty = float64(totalDirty) / float64(row.Batches)
		if row.DirtyNS > 0 {
			row.DirtyPerSec = float64(row.Batches) / (float64(row.DirtyNS) / 1e9)
		}
		if row.FullNS > 0 {
			row.FullPerSec = float64(row.Batches) / (float64(row.FullNS) / 1e9)
		}
		// Guard both legs: a zero wall-clock (coarse monotonic clock,
		// all-empty dirty sets) must not put +Inf into the JSON artifact.
		if row.FullNS > 0 && row.DirtyNS > 0 {
			row.Speedup = float64(row.FullNS) / float64(row.DirtyNS)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteQueries renders the read-path experiment as prose tables.
func WriteQueries(w io.Writer, rows []QueryThroughputRow) error {
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s (n=%d m=%d)\n", r.Family, r.N, r.M); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %8s | %12s %12s %8s %8s | %10s %10s\n",
			"rate", "cold-q/s", "cached-q/s", "hit", "speedup", "cold-p99", "cached-p99"); err != nil {
			return err
		}
		for _, p := range r.Serve {
			if _, err := fmt.Fprintf(w, "  %8d | %12.0f %12.0f %7.1f%% %7.2fx | %10s %10s\n",
				p.UpdateRatePerSec, p.ColdQPS, p.CachedQPS, 100*p.CacheHitRate, p.Speedup,
				time.Duration(p.ColdP99NS), time.Duration(p.CachedP99NS)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  %8s | %8s %8s %10s %14s %14s %8s\n",
			"batch", "n", "batches", "avg-dirty", "dirty-resc/s", "full-resc/s", "speedup"); err != nil {
			return err
		}
		for _, p := range r.TopK {
			if _, err := fmt.Fprintf(w, "  %8d | %8d %8d %10.1f %14.0f %14.0f %7.1fx\n",
				p.BatchSize, p.N, p.Batches, p.AvgDirty, p.DirtyPerSec, p.FullPerSec, p.Speedup); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
