package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ClusterThroughputArm is one worker-count configuration of the cluster
// read experiment: concurrent readers driving GET /cycle/{v} through a
// router over real HTTP worker backends.
type ClusterThroughputArm struct {
	Groups  int     `json:"groups"`
	Readers int     `json:"readers"`
	Reads   int     `json:"reads"`
	WallNS  int64   `json:"wall_ns"`
	QPS     float64 `json:"qps"`
	P50NS   int64   `json:"read_p50_ns"`
	P99NS   int64   `json:"read_p99_ns"`
}

// ClusterRow is one family's row of the replicated-cluster experiment
// (`cscbench -exp cluster`, the CLUSTER-* rows of BENCH_*.json): read
// throughput through the router at one vs three worker groups, and the
// failover drill — primary killed under load, blackout window until the
// router's promoted follower takes writes again, and a full
// acked-writes reconcile against the BFS oracle.
//
// The throughput arms share one process and one GOMAXPROCS pool, so
// ReadSpeedup measures routing overhead and placement spread, not the
// linear scaling a real multi-host deployment would see; it is reported
// as measured, not gated.
type ClusterRow struct {
	Family string               `json:"family"`
	N      int                  `json:"n"`
	M      int                  `json:"m"`
	Shards int                  `json:"shards"`
	One    ClusterThroughputArm `json:"one_group"`
	Three  ClusterThroughputArm `json:"three_groups"`
	// ReadSpeedup = three-group QPS / one-group QPS.
	ReadSpeedup float64 `json:"read_speedup"`

	// Failover drill figures. AckedWrites counts edge inserts the router
	// acknowledged before the primary was killed; LostAckedWrites counts
	// sampled vertices whose post-promotion answer disagreed with the
	// oracle replaying those writes (must be 0).
	AckedWrites        int    `json:"acked_writes"`
	LostAckedWrites    int    `json:"lost_acked_writes"`
	FailoverBlackoutNS int64  `json:"failover_blackout_ns"`
	Failovers          uint64 `json:"failovers"`
}

// ringsGraph builds the cluster family: k disjoint chorded rings of h
// vertices each — k non-trivial SCCs for the placement to spread, no
// trivial vertices, so every read takes the proxy path.
func ringsGraph(k, h, chords int, seed int64) *graph.Digraph {
	g := graph.New(k * h)
	r := rand.New(rand.NewSource(seed))
	for ring := 0; ring < k; ring++ {
		base := ring * h
		for i := 0; i < h; i++ {
			mustAdd(g, base+i, base+(i+1)%h)
		}
		for c := 0; c < chords; {
			u, v := base+r.Intn(h), base+r.Intn(h)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			mustAdd(g, u, v)
			c++
		}
	}
	return g
}

func clusterParams(s Scale) (rings, h, chords, readers, readsPerReader, drillWrites int) {
	switch s {
	case Tiny:
		return 6, 40, 40, 4, 300, 18
	case Small:
		return 8, 80, 120, 4, 600, 30
	default:
		return 12, 120, 240, 8, 1200, 48
	}
}

// clusterWorker is one in-process cscd stand-in: its own sharded index,
// engine, and real HTTP listener.
type clusterWorker struct {
	e   *engine.Engine
	srv *httptest.Server
}

func newClusterWorker(g *graph.Digraph, opts engine.Options) clusterWorker {
	x, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
	e := engine.New(x, opts)
	return clusterWorker{e: e, srv: httptest.NewServer(serve.Handler(e, nil, 0))}
}

func (w clusterWorker) close() {
	w.srv.Close()
	if err := w.e.Close(); err != nil {
		panic(err)
	}
}

// clusterThroughputArm measures read QPS through a router fronting
// nGroups worker groups (primaries only — replication is the drill's
// business). Reads enter at the router handler; the router→worker hop
// is real HTTP.
func clusterThroughputArm(g *graph.Digraph, nGroups, readers, readsPerReader int) ClusterThroughputArm {
	workers := make([]clusterWorker, nGroups)
	cfgs := make([]dist.GroupConfig, nGroups)
	for i := range workers {
		workers[i] = newClusterWorker(g, engine.Options{FlushInterval: -1})
		cfgs[i] = dist.GroupConfig{Primary: workers[i].srv.URL}
	}
	defer func() {
		for _, w := range workers {
			w.close()
		}
	}()

	shardOf, stats, ok := workers[0].e.ShardTable()
	if !ok {
		panic("exp: cluster index is not sharded")
	}
	r, err := dist.NewRouter(dist.BuildTable(shardOf, stats, nGroups), cfgs, dist.RouterOptions{
		ProbeInterval: time.Hour, // static healthy cluster: probes are noise
	})
	if err != nil {
		panic(err)
	}
	defer r.Close()
	h := r.Handler()
	n := g.NumVertices()

	var wg sync.WaitGroup
	hists := make([]*obs.Histogram, readers)
	t0 := time.Now()
	for ri := 0; ri < readers; ri++ {
		hists[ri] = obs.NewHistogram()
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			v := ri
			for i := 0; i < readsPerReader; i++ {
				rec := httptest.NewRecorder()
				rt0 := time.Now()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/cycle/%d", v%n), nil))
				hists[ri].ObserveSince(rt0)
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("exp: cluster read of %d: status %d body %s", v%n, rec.Code, rec.Body))
				}
				v += 7 // odd stride: walk every ring
			}
		}(ri)
	}
	wg.Wait()
	wall := time.Since(t0)

	var all obs.HistSnapshot
	for _, hist := range hists {
		all.Merge(hist.Snapshot())
	}
	arm := ClusterThroughputArm{
		Groups:  nGroups,
		Readers: readers,
		Reads:   readers * readsPerReader,
		WallNS:  wall.Nanoseconds(),
		P50NS:   all.Quantile(0.50),
		P99NS:   all.Quantile(0.99),
	}
	if wall > 0 {
		arm.QPS = float64(arm.Reads) / wall.Seconds()
	}
	return arm
}

// clusterFailoverDrill runs the kill-a-worker protocol outside the test
// suite so its figures land in BENCH_*.json: acked chord inserts through
// the router, WAL shipping to a follower, primary killed, blackout
// measured until the promoted follower takes the next write, and every
// sampled vertex reconciled against the BFS oracle over acked writes.
func clusterFailoverDrill(g *graph.Digraph, ringH, drillWrites int) (acked, lost int, blackoutNS int64, failovers uint64) {
	dir, err := os.MkdirTemp("", "csccluster")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	boot := func() (csc.Counter, error) {
		x, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
		return x, nil
	}
	f, err := dist.OpenFollower(dir, boot, dist.FollowerOptions{})
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fsrv := httptest.NewServer(dist.NewFollowerServer(f, engine.Options{FlushInterval: -1}, serve.Options{}, nil))
	defer fsrv.Close()

	ship := dist.NewShipper(fsrv.URL, dist.ShipperOptions{RetryInterval: 5 * time.Millisecond})
	prim := newClusterWorker(g, engine.Options{FlushInterval: -1, Replication: ship})
	primSrv := prim.srv
	down := newKillSwitch(primSrv)
	defer prim.close()

	shardOf, stats, ok := prim.e.ShardTable()
	if !ok {
		panic("exp: cluster index is not sharded")
	}
	r, err := dist.NewRouter(dist.BuildTable(shardOf, stats, 1),
		[]dist.GroupConfig{{Primary: down.URL(), Follower: fsrv.URL}}, dist.RouterOptions{
			ProbeInterval: 5 * time.Millisecond,
			ProbeTimeout:  time.Second,
			ProbeMisses:   2,
			RetryBackoff:  time.Millisecond,
		})
	if err != nil {
		panic(err)
	}
	defer r.Close()
	h := r.Handler()

	// Acked writes: fresh chords inside existing rings (SCC membership
	// never changes, so the boot-time table stays exact).
	oracle := g.Clone()
	rnd := rand.New(rand.NewSource(77))
	n := g.NumVertices()
	post := func(u, v int) int {
		body, _ := json.Marshal(serve.EdgesRequest{Edges: [][2]int{{u, v}}})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/edges?flush=1", bytes.NewReader(body)))
		return rec.Code
	}
	for acked < drillWrites {
		u, v := rnd.Intn(n), rnd.Intn(n)
		if u == v || u/ringH != v/ringH || oracle.HasEdge(u, v) {
			continue
		}
		if code := post(u, v); code != http.StatusOK {
			panic(fmt.Sprintf("exp: cluster drill write (%d,%d): status %d", u, v, code))
		}
		mustAdd(oracle, u, v)
		acked++
	}
	waitUntil("replication to drain", func() bool { return ship.Lag() == 0 && f.Seq() == prim.e.Seq() })

	// Kill the primary and measure the write blackout: wall-clock from
	// the kill to the first insert the promoted follower acknowledges.
	down.Kill()
	killedAt := time.Now()
	var resumeU, resumeV int
	for {
		resumeU, resumeV = rnd.Intn(n), rnd.Intn(n)
		if resumeU != resumeV && resumeU/ringH == resumeV/ringH && !oracle.HasEdge(resumeU, resumeV) {
			break
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if code := post(resumeU, resumeV); code == http.StatusOK {
			blackoutNS = time.Since(killedAt).Nanoseconds()
			mustAdd(oracle, resumeU, resumeV)
			acked++
			break
		}
		if time.Now().After(deadline) {
			panic("exp: cluster writes never resumed after failover")
		}
		time.Sleep(2 * time.Millisecond)
	}
	failovers = r.Failovers()

	// Reconcile: every sampled vertex must answer exactly what a BFS over
	// the acked-writes oracle computes.
	for v := 0; v < n; v += 7 {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/cycle/%d", v), nil))
		if rec.Code != http.StatusOK {
			lost++
			continue
		}
		var out serve.CycleJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			panic(err)
		}
		wl, wc := bfscount.CycleCount(oracle, v)
		gl, gc := -1, uint64(0)
		if out.Exists {
			gl, gc = out.Length, out.Count
		}
		if wl == bfscount.NoCycle {
			wl = -1
		}
		if gl != wl || (wl != -1 && gc != wc) {
			lost++
		}
	}
	return acked, lost, blackoutNS, failovers
}

// killSwitch fronts a worker server; Kill makes every subsequent
// connection die the way a dead process's would.
type killSwitch struct {
	srv  *httptest.Server
	dead chan struct{}
	once sync.Once
}

func newKillSwitch(backend *httptest.Server) *killSwitch {
	k := &killSwitch{dead: make(chan struct{})}
	k.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-k.dead:
			panic(http.ErrAbortHandler)
		default:
		}
		backend.Config.Handler.ServeHTTP(w, r)
	}))
	return k
}

func (k *killSwitch) URL() string { return k.srv.URL }
func (k *killSwitch) Kill()       { k.once.Do(func() { close(k.dead) }) }

func waitUntil(what string, pred func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			panic("exp: cluster drill timed out waiting for " + what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Cluster runs the replicated-cluster experiment: the read-throughput
// comparison at one vs three worker groups, then the failover drill.
func Cluster(s Scale) []ClusterRow {
	rings, h, chords, readers, readsPerReader, drillWrites := clusterParams(s)
	g := ringsGraph(rings, h, chords, 23)
	row := ClusterRow{
		Family: "rings",
		N:      g.NumVertices(),
		M:      g.NumEdges(),
		Shards: rings,
	}
	row.One = clusterThroughputArm(g, 1, readers, readsPerReader)
	row.Three = clusterThroughputArm(g, 3, readers, readsPerReader)
	if row.One.QPS > 0 {
		row.ReadSpeedup = row.Three.QPS / row.One.QPS
	}
	row.AckedWrites, row.LostAckedWrites, row.FailoverBlackoutNS, row.Failovers =
		clusterFailoverDrill(g, h, drillWrites)
	return []ClusterRow{row}
}

// WriteCluster renders the cluster experiment as a prose table.
func WriteCluster(w io.Writer, rows []ClusterRow) error {
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s (n=%d m=%d, %d shards)\n", r.Family, r.N, r.M, r.Shards); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-8s %7s %9s | %12s %10s %10s\n",
			"groups", "readers", "reads", "qps", "p50", "p99"); err != nil {
			return err
		}
		for _, a := range []ClusterThroughputArm{r.One, r.Three} {
			if _, err := fmt.Fprintf(w, "  %-8d %7d %9d | %12.0f %10s %10s\n",
				a.Groups, a.Readers, a.Reads, a.QPS,
				time.Duration(a.P50NS), time.Duration(a.P99NS)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  read speedup (3 vs 1, shared GOMAXPROCS): %.2fx\n", r.ReadSpeedup); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  failover: %d acked writes, %d lost, blackout %s, %d failover(s)\n\n",
			r.AckedWrites, r.LostAckedWrites, time.Duration(r.FailoverBlackoutNS), r.Failovers); err != nil {
			return err
		}
	}
	return nil
}
