package exp

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// WriteTable4 renders the dataset statistics table (Table IV analog).
func WriteTable4(w io.Writer, rows []StatsRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Graph\tn\tm\tgenerator\tpaper original")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\n", r.Name, r.N, r.M, r.Kind, r.Paper)
	}
	return tw.Flush()
}

// WriteFig9 renders index construction time and size (Figure 9 analog).
func WriteFig9(w io.Writer, rows []BuildRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Graph\tHP-SPC time\tCSC time\tHP-SPC size\tCSC size\tsize ratio")
	for _, r := range rows {
		ratio := float64(r.CSCBytes) / float64(r.HPBytes)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.3f\n",
			r.Dataset, fmtDur(r.HPTime), fmtDur(r.CSCTime),
			fmtBytes(r.HPBytes), fmtBytes(r.CSCBytes), ratio)
	}
	return tw.Flush()
}

// WriteFig10 renders per-cluster query times for one dataset (one
// sub-figure of Figure 10).
func WriteFig10(w io.Writer, res QueryResult) error {
	fmt.Fprintf(w, "Query time, %s (average per SCCnt query)\n", res.Dataset)
	tw := newTab(w)
	fmt.Fprintln(tw, "Cluster\tqueries\tBFS\tHP-SPC\tCSC\tCSC speedup vs HP-SPC")
	for _, row := range res.Rows {
		speed := "-"
		if row.CSC > 0 && row.HPSPC > 0 {
			speed = fmt.Sprintf("%.1fx", float64(row.HPSPC)/float64(row.CSC))
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
			row.Cluster, row.Queries, fmtDur(row.BFS), fmtDur(row.HPSPC),
			fmtDur(row.CSC), speed)
	}
	return tw.Flush()
}

// WriteFig11 renders incremental update costs (Figure 11 analog).
func WriteFig11(w io.Writer, rows []UpdateRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Graph\tinsertions\tredundancy avg\tminimality avg\tslowdown\tentries/insert (red.)\tentries/insert (min.)")
	for _, r := range rows {
		minAvg, slow, minGrow := "-", "-", "-"
		if !r.MinimalitySkipped {
			minAvg = fmtDur(r.MinimalityAvg)
			if r.RedundancyAvg > 0 {
				slow = fmt.Sprintf("%.0fx", float64(r.MinimalityAvg)/float64(r.RedundancyAvg))
			}
			minGrow = fmt.Sprintf("%.1f", r.MinimalityGrowth)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%.1f\t%s\n",
			r.Dataset, r.Updates, fmtDur(r.RedundancyAvg), minAvg, slow,
			r.RedundancyGrowth, minGrow)
	}
	return tw.Flush()
}

// WriteFig12 renders decremental update costs by edge-degree cluster
// (Figure 12 analog, G04).
func WriteFig12(w io.Writer, rows [5]DeleteRow) error {
	fmt.Fprintln(w, "Decremental maintenance, G04 analog (by edge degree)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Cluster\tedges\tavg update time\tavg entries removed\tavg net change\tavg vertices visited")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.1f\t%+.1f\t%.1f\n",
			r.Cluster, r.Edges, fmtDur(r.AvgTime), r.AvgRemoved, r.AvgNet, r.AvgTouched)
	}
	return tw.Flush()
}

// WriteCase renders the case-study ranking (Figure 13 analog).
func WriteCase(w io.Writer, res CaseResult) error {
	fmt.Fprintf(w, "Planted criminal accounts: %v (recovered by SCCnt ranking: %v)\n",
		res.Criminals, res.Recovered)
	tw := newTab(w)
	fmt.Fprintln(tw, "rank\taccount\tshortest cycle len\tSCCnt\tplanted criminal")
	for i, v := range res.Top {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\n", i+1, v.Vertex, v.Length, v.Count, v.Criminal)
	}
	return tw.Flush()
}

// WriteScaling renders the label-growth sweep (DESIGN E11).
func WriteScaling(w io.Writer, rows []ScalingRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "n\tm\tentries/vertex\tbuild time")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%s\n", r.N, r.M, r.EntriesPerVertex, fmtDur(r.BuildTime))
	}
	return tw.Flush()
}

// WriteOrdering renders the hub-ordering shootout.
func WriteOrdering(w io.Writer, rows []OrderingRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "family\tstrategy\tbuild\tentries\tlabel KB\tvs degree\tq p50\tq p99")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.1f\t%.3f\t%dns\t%dns\n",
			r.Family, r.Strategy, fmtDur(time.Duration(r.BuildNS)),
			r.Entries, float64(r.LabelBytes)/1024, r.BytesVsDegree,
			r.QueryP50NS, r.QueryP99NS)
	}
	return tw.Flush()
}

// WriteAblation renders the construction ablation (DESIGN E12).
func WriteAblation(w io.Writer, rows []AblationRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Graph\tcouple-skipping\tgeneric engine\tspeedup\tidentical labels")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2fx\t%v\n",
			r.Dataset, fmtDur(r.SkippingTime), fmtDur(r.GenericTime),
			r.SkippingSpeedup, r.EntriesIdentical)
	}
	return tw.Flush()
}
