package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/testgraphs"
)

// UpdateThroughputRow is one (family, batch size) point of the
// update-throughput experiment: the same op sequence applied once through
// per-edge sequential maintenance (InsertEdge/DeleteEdge, the pre-batch
// path) and once through the batch planner (ApplyBatch at the Workers
// parallelism), reported as updates/sec. EXPERIMENTS.md documents the
// protocol; the rows land in BENCH_*.json as UPD-* datasets.
type UpdateThroughputRow struct {
	Family    string `json:"family"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	BatchSize int    `json:"batch_size"`
	// BatchOps is the largest batch actually applied: the requested
	// BatchSize clamped by the family's intra-shard edge pools and the
	// ops budget (giant-scc at b1024 genuinely runs smaller batches —
	// read this field, not batch_size, when comparing scaling).
	BatchOps       int     `json:"batch_ops"`
	Workers        int     `json:"workers"`
	Ops            int     `json:"ops"`
	SeqNS          int64   `json:"seq_wall_ns"`
	BatchNS        int64   `json:"batch_wall_ns"`
	SeqOpsPerSec   float64 `json:"seq_ops_per_sec"`
	BatchOpsPerSec float64 `json:"batch_ops_per_sec"`
	Speedup        float64 `json:"speedup"`
}

// updateBatchSizes is the batch-size sweep every family is measured at.
var updateBatchSizes = []int{1, 64, 1024}

// updateFamily is one generated family of the update experiment. The
// sizes are chosen so the largest batch still draws distinct edges: the
// many-small-SCC family is the headline (every batch spreads over many
// independent shards, so per-shard streams parallelize and per-edge
// split/merge rebuilds coalesce away), the giant-SCC family the worst
// case (one shard: the planner degrades to a sequential stream plus one
// partition check per batch).
type updateFamily struct {
	name   string
	budget int // ops per measured path at tiny scale
	build  func(s Scale) *graph.Digraph
}

func updateFamilies() []updateFamily {
	return []updateFamily{
		{"many-small-scc", 2048, func(s Scale) *graph.Digraph {
			switch s {
			case Tiny:
				return testgraphs.ManySmallSCC(200, 6, 400, 8)
			case Small:
				return testgraphs.ManySmallSCC(400, 6, 800, 8)
			default:
				return testgraphs.ManySmallSCC(800, 6, 1600, 8)
			}
		}},
		{"giant-scc", 128, func(s Scale) *graph.Digraph {
			switch s {
			case Tiny:
				return testgraphs.GiantSCC(500, 2000, 9)
			case Small:
				return testgraphs.GiantSCC(1500, 6000, 9)
			default:
				return testgraphs.GiantSCC(4000, 16000, 9)
			}
		}},
	}
}

func updateOpsBudget(s Scale, fam updateFamily) int {
	switch s {
	case Tiny:
		return fam.budget
	case Small:
		return 2 * fam.budget
	default:
		return 4 * fam.budget
	}
}

// updateBatches builds the measured op sequence over random intra-shard
// edges, mixing the two realistic shapes of a dynamic stream:
//
//   - waves: half of each batch deletes distinct edges that the *next*
//     batch reinserts — durable changes that genuinely split and re-merge
//     components, exercising the planner's once-per-batch partition
//     reconciliation and scoped rebuilds;
//   - flaps: the other half is insert+delete churn of the same edge
//     inside one batch — transient changes the batch path coalesces away
//     entirely, where per-edge application pays a split rebuild and a
//     merge rebuild per flap.
//
// Wave and flap edges draw from disjoint pools so every batch is a valid
// sequence, and the graph returns to its start state after every even
// batch. Single-op batches degenerate to pure wave alternation. The
// sequence is a pure function of the family and scale, so both measured
// paths replay identical ops.
func updateBatches(x *csc.Sharded, batchSize, budget int) [][]csc.EdgeOp {
	g := x.Graph()
	var intra [][2]int
	for _, e := range g.Edges() {
		if s := x.ShardOf(e[0]); s >= 0 && s == x.ShardOf(e[1]) {
			intra = append(intra, e)
		}
	}
	r := rand.New(rand.NewSource(23))
	r.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })
	half := len(intra) / 2
	if half == 0 {
		return nil // no intra-shard edges to churn: nothing to measure
	}
	wavePool, flapPool := intra[:half], intra[half:]

	// A quarter of each batch is durable wave ops, the rest transient
	// flaps — the flap-heavy mix of a monitoring stream, where most churn
	// cancels within one batch window.
	wv := batchSize / 4
	if wv > len(wavePool) {
		wv = len(wavePool) // a wave needs distinct edges
	}
	if wv > budget/2 {
		wv = budget / 2 // keep the total op count near the budget
	}
	if wv < 1 {
		wv = 1 // wavePool is non-empty, so one wave edge always exists
	}
	fp := (batchSize - wv) / 2
	if fp > len(flapPool) {
		fp = len(flapPool)
	}
	if lim := (budget/2 - wv) / 2; fp > lim {
		fp = lim // a single batch must not blow through the ops budget
	}
	if fp < 0 {
		fp = 0
	}

	wi, fi := 0, 0
	flaps := func(batch []csc.EdgeOp) []csc.EdgeOp {
		for k := 0; k < fp; k++ {
			e := flapPool[fi%len(flapPool)]
			fi++
			batch = append(batch, csc.Del(e[0], e[1]), csc.Ins(e[0], e[1]))
		}
		return batch
	}
	var batches [][]csc.EdgeOp
	for ops := 0; ops < budget; ops += 2 * (wv + 2*fp) {
		del := make([]csc.EdgeOp, 0, wv+2*fp)
		ins := make([]csc.EdgeOp, 0, wv+2*fp)
		for k := 0; k < wv; k++ {
			e := wavePool[wi%len(wavePool)]
			wi++
			del = append(del, csc.Del(e[0], e[1]))
			ins = append(ins, csc.Ins(e[0], e[1]))
		}
		batches = append(batches, flaps(del), flaps(ins))
	}
	return batches
}

// Updates runs the update-throughput experiment: for every family and
// batch size, the same edge-op sequence is applied through per-edge
// sequential maintenance and through ApplyBatch at the Workers
// parallelism, on separately built indexes over the same graph. Both
// paths are cross-checked against each other on every vertex afterwards.
func Updates(s Scale) []UpdateThroughputRow {
	var rows []UpdateThroughputRow
	for _, fam := range updateFamilies() {
		g := fam.build(s)
		budget := updateOpsBudget(s, fam)
		for _, bs := range updateBatchSizes {
			seqIdx, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
			batchIdx, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers})
			batches := updateBatches(seqIdx, bs, budget)
			ops, batchOps := 0, 0
			for _, b := range batches {
				ops += len(b)
				if len(b) > batchOps {
					batchOps = len(b)
				}
			}

			t0 := time.Now()
			for _, batch := range batches {
				for _, op := range batch {
					var err error
					if op.Kind == csc.OpInsert {
						_, err = seqIdx.InsertEdge(int(op.A), int(op.B))
					} else {
						_, err = seqIdx.DeleteEdge(int(op.A), int(op.B))
					}
					if err != nil {
						panic(err) // ops were derived from the live graph
					}
				}
			}
			seqWall := time.Since(t0)

			t1 := time.Now()
			for _, batch := range batches {
				if _, err := batchIdx.ApplyBatch(batch, Workers); err != nil {
					panic(err)
				}
			}
			batchWall := time.Since(t1)

			// Both paths applied a net-zero sequence over the same start
			// graph: they must agree everywhere.
			sl, sc := seqIdx.CycleCountAll(Workers)
			bl, bc := batchIdx.CycleCountAll(Workers)
			for v := range sl {
				if sl[v] != bl[v] || sc[v] != bc[v] {
					panic(fmt.Sprintf("exp: updates %s b%d: vertex %d seq (%d,%d) != batch (%d,%d)",
						fam.name, bs, v, sl[v], sc[v], bl[v], bc[v]))
				}
			}

			row := UpdateThroughputRow{
				Family:    fam.name,
				N:         g.NumVertices(),
				M:         g.NumEdges(),
				BatchSize: bs,
				BatchOps:  batchOps,
				Workers:   Workers,
				Ops:       ops,
				SeqNS:     seqWall.Nanoseconds(),
				BatchNS:   batchWall.Nanoseconds(),
			}
			if seqWall > 0 {
				row.SeqOpsPerSec = float64(ops) / seqWall.Seconds()
			}
			if batchWall > 0 {
				row.BatchOpsPerSec = float64(ops) / batchWall.Seconds()
				row.Speedup = float64(seqWall) / float64(batchWall)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// WriteUpdates renders the update-throughput experiment as a prose table.
func WriteUpdates(w io.Writer, rows []UpdateThroughputRow) error {
	if _, err := fmt.Fprintf(w, "%-15s %8s %8s %6s %6s %6s | %12s %12s %8s\n",
		"family", "n", "m", "batch", "actual", "ops", "seq-ops/s", "batch-ops/s", "speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-15s %8d %8d %6d %6d %6d | %12.0f %12.0f %7.1fx\n",
			r.Family, r.N, r.M, r.BatchSize, r.BatchOps, r.Ops,
			r.SeqOpsPerSec, r.BatchOpsPerSec, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}
