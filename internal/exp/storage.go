package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/csc"
	"repro/internal/label"
	"repro/internal/order"
)

// StorageRow is one family's entry in the compressed-storage experiment
// (the MEM-* rows of BENCH_*.json): the delta+varint frozen arena's
// footprint against the mutable 8-byte-entry representation, the bloom
// pre-screen's reject rate on a query sweep, and the cold-start latency
// of the v3 file through the full read and the mmap path.
type StorageRow struct {
	Family  string `json:"family"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Entries int    `json:"entries"`

	// UncompressedBytes is the mutable CSR arena's label footprint (8
	// bytes per slot, per-list growth pad included — what the process
	// actually holds resident); CompressedBytes the delta+varint frozen
	// arena carrying the same entries. Reduction is their ratio,
	// BytesPerEntry the frozen cost per label entry. Both sides are
	// measured on the monolithic labeling, where every vertex carries
	// labels and the arena is one allocation.
	UncompressedBytes int     `json:"uncompressed_bytes"`
	CompressedBytes   int     `json:"compressed_bytes"`
	BytesPerEntry     float64 `json:"bytes_per_entry"`
	Reduction         float64 `json:"reduction"`

	// Bloom signature screen over a full monolithic query sweep: checks
	// are joins where both sides carried a signature, rejects the joins
	// answered from the signatures alone without decoding an entry.
	// DAG-heavy graphs are the headline — most vertices sit on no cycle,
	// so their label pairs share no hub and the signatures screen them.
	BloomChecks     uint64  `json:"bloom_checks"`
	BloomRejects    uint64  `json:"bloom_rejects"`
	BloomRejectRate float64 `json:"bloom_reject_rate"`

	// Cold-start: serialize a sharded compressed build as a v3 file,
	// then time load-through-first-query via the full stream read (parse
	// + validate every label list) and via the mmap path (structural
	// validation only; label bytes page in on demand).
	FileBytes  int   `json:"file_bytes"`
	ColdLoadNS int64 `json:"cold_load_ns"`
	MmapLoadNS int64 `json:"mmap_load_ns"`
}

// Storage runs the compressed-storage experiment on the DAG-heavy and
// giant-SCC partition families: the first is the headline (rank-sorted
// hubs in tiny per-component labels compress hard, and bloom signatures
// screen the acyclic majority), the second the adversarial case (one
// dense labeling, every pair shares hubs, signatures reject nothing).
func Storage(s Scale) []StorageRow {
	var rows []StorageRow
	for _, fam := range shardingFamilies() {
		if fam.name == "many-small-scc" {
			continue // the dag-heavy row already covers the sharded-small-label shape
		}
		g := fam.build(s)
		n, m := g.NumVertices(), g.NumEdges()

		// Footprint and bloom screen are measured on the monolithic
		// labeling — every vertex carries labels there, so the mutable
		// arena and the frozen arena hold the same full entry set, and
		// queries actually reach the join kernels (the sharded form
		// answers most non-cyclic vertices from the shard map without
		// ever joining).
		plain, _ := csc.Build(g.Clone(), order.ByDegree(g), csc.Options{Workers: Workers})
		mono, _ := csc.Build(g.Clone(), order.ByDegree(g), csc.Options{Workers: Workers, CompressLabels: true})

		row := StorageRow{
			Family:            fam.name,
			N:                 n,
			M:                 m,
			Entries:           mono.EntryCount(),
			UncompressedBytes: plain.Engine().Arena().Bytes(),
			CompressedBytes:   mono.CompressedBytes(),
		}
		if row.Entries > 0 {
			row.BytesPerEntry = float64(row.CompressedBytes) / float64(row.Entries)
		}
		if row.CompressedBytes > 0 {
			row.Reduction = float64(row.UncompressedBytes) / float64(row.CompressedBytes)
		}

		c0, r0 := label.BloomStats()
		for v := 0; v < n; v++ {
			mono.CycleCount(v)
		}
		c1, r1 := label.BloomStats()
		row.BloomChecks = c1 - c0
		row.BloomRejects = r1 - r0
		if row.BloomChecks > 0 {
			row.BloomRejectRate = float64(row.BloomRejects) / float64(row.BloomChecks)
		}

		// Cold start: the v3 on-disk form is the sharded compressed
		// build; write one file and load it twice. Queries after each
		// load prove the index serves, and time-to-first-answer is the
		// number a restart actually cares about.
		comp, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: Workers, CompressLabels: true})
		dir, err := os.MkdirTemp("", "cscstorage")
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, "index.csc")
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		if _, err := comp.WriteTo(f); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if fi, err := os.Stat(path); err == nil {
			row.FileBytes = int(fi.Size())
		}
		t0 := time.Now()
		full, err := csc.ReadFile(path, false)
		if err != nil {
			panic(err)
		}
		full.CycleCount(0)
		row.ColdLoadNS = time.Since(t0).Nanoseconds()

		t1 := time.Now()
		mm, err := csc.ReadFile(path, true)
		if err != nil {
			panic(err)
		}
		mm.CycleCount(0)
		row.MmapLoadNS = time.Since(t1).Nanoseconds()
		_ = os.RemoveAll(dir)

		rows = append(rows, row)
	}
	return rows
}

// WriteStorage renders the storage experiment as a prose table.
func WriteStorage(w io.Writer, rows []StorageRow) error {
	if _, err := fmt.Fprintf(w, "%-12s %8s %8s %10s | %10s %10s %7s %7s | %9s %8s | %9s %9s\n",
		"family", "n", "m", "entries",
		"raw-KB", "comp-KB", "B/entry", "reduce",
		"bloom-chk", "rej-rate", "cold-ms", "mmap-ms"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %8d %8d %10d | %10.1f %10.1f %7.2f %6.1fx | %9d %8.2f | %9.2f %9.2f\n",
			r.Family, r.N, r.M, r.Entries,
			float64(r.UncompressedBytes)/1024, float64(r.CompressedBytes)/1024,
			r.BytesPerEntry, r.Reduction,
			r.BloomChecks, r.BloomRejectRate,
			float64(r.ColdLoadNS)/1e6, float64(r.MmapLoadNS)/1e6); err != nil {
			return err
		}
	}
	return nil
}
