package exp

import (
	"time"

	"repro/internal/csc"
	"repro/internal/order"
	"repro/internal/pll"
)

// OrderingRow compares hub-ordering strategies on one dataset — the
// ablation behind the paper's (and all PLL literature's) choice of degree
// ordering: a good ordering puts broad-coverage vertices first, which
// prunes the construction BFSes early and shrinks every label list.
type OrderingRow struct {
	Dataset   string
	Ordering  string
	BuildTime time.Duration
	Entries   int
	QueryNs   float64 // average SCCnt evaluation, sampled
}

// AblationOrdering builds CSC under degree, id and random orderings.
func AblationOrdering(s Scale, d Dataset) []OrderingRow {
	g := d.Build(s)
	n := g.NumVertices()
	orders := []struct {
		name string
		ord  *order.Order
	}{
		{"degree", order.ByDegree(g)},
		{"id", order.ByID(n)},
		{"random", order.ByRandom(n, 99)},
	}
	var rows []OrderingRow
	for _, o := range orders {
		t0 := time.Now()
		x, _ := csc.Build(g.Clone(), o.ord, csc.Options{Strategy: pll.Redundancy, Workers: Workers})
		build := time.Since(t0)

		sample := n
		if sample > 2000 {
			sample = 2000
		}
		t0 = time.Now()
		for v := 0; v < sample; v++ {
			x.CycleCount(v)
		}
		perQuery := float64(time.Since(t0).Nanoseconds()) / float64(sample)

		rows = append(rows, OrderingRow{
			Dataset:   d.Name,
			Ordering:  o.name,
			BuildTime: build,
			Entries:   x.EntryCount(),
			QueryNs:   perQuery,
		})
	}
	return rows
}
