package exp

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// The hub-ordering shootout: every ordering strategy the order package
// implements, built over the same partition-stress families the sharding
// experiment uses, measured on the three axes an ordering can move —
// label bytes (the paper's headline: a good order prunes construction
// BFSes early, so every list shrinks), build wall-clock (sampled
// strategies pay per-sample BFS up front), and query latency (shorter
// lists join faster). The ORD-* rows land in the BENCH_*.json artifact
// next to SHARD-*/UPD-*/QRY-*, so the ordering trajectory diffs across
// PRs like every other figure.

// OrderingRow is one (family, strategy) cell of the shootout.
type OrderingRow struct {
	Family   string `json:"family"`
	Strategy string `json:"strategy"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	BuildNS  int64  `json:"build_ns"`
	Entries  int    `json:"entries"`
	// LabelBytes is the sharded index's total label footprint under this
	// strategy; BytesVsDegree the ratio against the degree baseline on
	// the same family (1.0 for the degree row itself, < 1 beats it).
	LabelBytes    int     `json:"label_bytes"`
	BytesVsDegree float64 `json:"bytes_vs_degree"`
	QueryP50NS    int64   `json:"query_p50_ns"`
	QueryP99NS    int64   `json:"query_p99_ns"`
}

// orderingStrategies is the shootout sweep: the paper's degree baseline,
// the two sampled-cycle strategies, and random as the floor every
// informed order must clear.
func orderingStrategies() []order.Strategy {
	return []order.Strategy{order.Degree, order.Random, order.Betweenness, order.Coverage}
}

// orderingSeed fixes the sampling seed so every shootout run builds the
// same orders — rows are comparable across machines and PRs.
const orderingSeed = 7

// orderingFamilies is the shootout's graph sweep: the three sharding
// families plus the uniform-degree torus, where degree ordering
// degenerates to row-major vertex id — the case that shows why vertex
// order must be pluggable at all.
func orderingFamilies() []shardingFamily {
	return append(shardingFamilies(), shardingFamily{
		"torus", func(s Scale) *graph.Digraph {
			switch s {
			case Tiny:
				return testgraphs.Torus(16, 16)
			case Small:
				return testgraphs.Torus(24, 24)
			default:
				return testgraphs.Torus(32, 32)
			}
		},
	})
}

// Ordering runs the shootout: per family, one timed sharded build per
// strategy plus a sampled query-latency distribution, with label bytes
// normalized against the family's degree baseline.
func Ordering(s Scale) []OrderingRow {
	var rows []OrderingRow
	for _, fam := range orderingFamilies() {
		g := fam.build(s)
		n, m := g.NumVertices(), g.NumEdges()
		degreeBytes := 0
		for _, strat := range orderingStrategies() {
			gg := g.Clone()
			t0 := time.Now()
			x, _ := csc.BuildSharded(gg, csc.Options{
				Workers:   Workers,
				Order:     strat,
				OrderSeed: orderingSeed,
			})
			build := time.Since(t0)

			row := OrderingRow{
				Family:     fam.name,
				Strategy:   strat.String(),
				N:          n,
				M:          m,
				BuildNS:    build.Nanoseconds(),
				Entries:    x.EntryCount(),
				LabelBytes: x.Bytes(),
			}
			if strat == order.Degree {
				degreeBytes = row.LabelBytes
			}
			if degreeBytes > 0 {
				row.BytesVsDegree = float64(row.LabelBytes) / float64(degreeBytes)
			}
			row.QueryP50NS, row.QueryP99NS = orderingQueryLatency(x, n, s)
			rows = append(rows, row)
		}
	}
	return rows
}

// orderingQueryLatency samples per-query SCCnt latency and reports the
// p50/p99 of the distribution — tail latency is where a bad order shows
// first, since only the longest label lists feel it.
func orderingQueryLatency(x *csc.Sharded, n int, s Scale) (p50, p99 int64) {
	samples, _ := benchSamples(s)
	r := rand.New(rand.NewSource(orderingSeed))
	lat := make([]int64, samples)
	for i := range lat {
		v := r.Intn(n)
		t0 := time.Now()
		x.CycleCount(v)
		lat[i] = time.Since(t0).Nanoseconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100]
}
