package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout ("HDR-lite"): values below 2^histSubBits land
// in one exact bucket each; every octave above is split into
// 2^histSubBits linear sub-buckets. Relative quantile error is bounded
// by 2^-histSubBits (6.25%) — plenty for latency percentiles — while a
// full histogram stays under 8 KiB of counters and recording stays two
// atomic adds plus an atomic max.
const (
	histSubBits = 4
	histSubs    = 1 << histSubBits // sub-buckets per octave, and the exact range
	// histMaxExp caps the value range at 2^histMaxExp-1 ns (~69 s);
	// larger observations clamp into the top bucket.
	histMaxExp  = 36
	histBuckets = histSubs + (histMaxExp-histSubBits)*histSubs
)

// bucketIdx maps a non-negative value to its bucket. Monotone: larger
// values never map to smaller buckets.
func bucketIdx(v int64) int {
	if v < histSubs {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(v>>(exp-histSubBits)) & (histSubs - 1)
	return (exp-histSubBits)*histSubs + histSubs + sub
}

// bucketBound returns bucket i's inclusive upper bound.
func bucketBound(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	i -= histSubs
	exp := histSubBits + i/histSubs
	sub := i % histSubs
	width := int64(1) << (exp - histSubBits)
	return int64(1)<<exp + int64(sub+1)*width - 1
}

// Histogram is a lock-free latency histogram: log2 octaves with linear
// sub-buckets, plus running count/sum/max. Observations are int64
// nanoseconds (negative values clamp to zero). A nil Histogram is a
// no-op — the disabled-registry configuration.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns a standalone histogram, usable without a
// Registry (the experiment harness records probe latencies this way).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value (nanoseconds).
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// HistSnapshot is a point-in-time copy of a histogram, mergeable with
// other snapshots and queryable for quantiles. Snapshots taken
// concurrently with recording are internally consistent per bucket but
// may straddle an in-flight observation (count and bucket sums can be
// off by the observations landing during the copy) — fine for
// monitoring, and exact once recording has quiesced.
type HistSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     int64
	Max     int64
}

// Snapshot copies the histogram's current state. Safe concurrently
// with Observe. A nil histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Merge folds o into s — the cross-goroutine aggregation path when each
// worker records into its own histogram.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns the value (ns) at quantile q in [0,1]: the upper
// bound of the bucket holding the rank-q observation, so the relative
// error is bounded by the sub-bucket width (≤ 6.25%) and tails are
// reported conservatively (never under). Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	// NaN slips through both range checks (every comparison with NaN is
	// false) and uint64(NaN*x) is undefined in the spec — treat it as the
	// lowest quantile rather than produce a platform-dependent rank.
	if q != q || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum > rank {
			b := bucketBound(i)
			if b > s.Max && s.Max > 0 {
				return s.Max // the top occupied bucket overshoots the true max
			}
			return b
		}
	}
	return s.Max
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
