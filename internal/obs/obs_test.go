package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBucketLayout pins the bucket scheme: bucketIdx is monotone, every
// bucket's upper bound maps back into the same bucket, and bounds are
// strictly increasing.
func TestBucketLayout(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		b := bucketBound(i)
		if b <= prev {
			t.Fatalf("bucket %d bound %d not increasing past %d", i, b, prev)
		}
		if got := bucketIdx(b); got != i && i != histBuckets-1 {
			t.Fatalf("bucketIdx(bound(%d)=%d) = %d", i, b, got)
		}
		prev = b
	}
	last := int64(0)
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		i := int64(bucketIdx(v))
		if i < last {
			t.Fatalf("bucketIdx not monotone at %d", v)
		}
		last = i
	}
}

// TestQuantileOracle is the percentile-correctness gate: against a
// sorted-sample oracle over several distributions, every extracted
// quantile must land within the histogram's sub-bucket resolution
// (relative error ≤ 2^-histSubBits, with slack for the oracle's own
// rank rounding).
func TestQuantileOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dists := map[string]func() int64{
		"uniform": func() int64 { return r.Int63n(1_000_000) },
		"exp":     func() int64 { return int64(r.ExpFloat64() * 50_000) },
		"bimodal": func() int64 {
			return map[bool]int64{true: 900 + r.Int63n(200), false: 30_000_000 + r.Int63n(5_000_000)}[r.Intn(100) < 95]
		},
		"heavytail": func() int64 { return int64(math.Pow(10, 3+5*r.Float64())) },
	}
	for name, gen := range dists {
		h := NewHistogram()
		samples := make([]int64, 50_000)
		for i := range samples {
			samples[i] = gen()
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		if s.Count != uint64(len(samples)) {
			t.Fatalf("%s: count %d != %d", name, s.Count, len(samples))
		}
		if s.Max != samples[len(samples)-1] {
			t.Fatalf("%s: max %d != %d", name, s.Max, samples[len(samples)-1])
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			want := samples[int(q*float64(len(samples)-1))]
			got := s.Quantile(q)
			// The histogram reports a bucket upper bound ≥ the true
			// value, within one sub-bucket width.
			tol := float64(want)/float64(histSubs) + 1
			if float64(got) < float64(want)-tol || float64(got) > float64(want)+2*tol {
				t.Errorf("%s p%g: got %d want %d (±%.0f)", name, q*100, got, want, tol)
			}
		}
	}
}

// TestQuantileEdgeCases pins the degenerate snapshots: empty and
// single-sample histograms must return defined values at every q —
// including NaN and out-of-range q, which must clamp rather than feed an
// undefined float→uint64 conversion into the rank.
func TestQuantileEdgeCases(t *testing.T) {
	nan := math.NaN()
	var empty HistSnapshot
	for _, q := range []float64{nan, math.Inf(-1), -1, 0, 0.5, 1, 2, math.Inf(1)} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}
	if empty.Mean() != 0 {
		t.Errorf("empty.Mean() = %v, want 0", empty.Mean())
	}

	for _, v := range []int64{0, 1, 7, 1_000_003} {
		h := NewHistogram()
		h.Observe(v)
		s := h.Snapshot()
		want := s.Quantile(0.5) // in-range answer for the one sample
		if want < v || float64(want) > float64(v)+float64(v)/histSubs+1 {
			t.Fatalf("single sample %d: p50 = %d out of bucket tolerance", v, want)
		}
		for _, q := range []float64{nan, math.Inf(-1), -3, 0, 0.25, 1, 5, math.Inf(1)} {
			got := s.Quantile(q)
			// One sample: every quantile is that sample's bucket answer.
			if got != want {
				t.Errorf("single sample %d: Quantile(%v) = %d, want %d", v, q, got, want)
			}
		}
	}

	// NaN on a populated multi-bucket snapshot clamps to the lowest rank,
	// never a garbage rank past the end (which would return Max).
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	s := h.Snapshot()
	if got, want := s.Quantile(nan), s.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %d, want lowest-rank answer %d", got, want)
	}
}

// Merging an empty snapshot must be the identity, in both directions.
func TestMergeEmptyIdentity(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		h.Observe(r.Int63n(1 << 28))
	}
	base := h.Snapshot()

	got := base
	got.Merge(HistSnapshot{})
	if got != base {
		t.Fatal("merging an empty snapshot changed the receiver")
	}

	var onto HistSnapshot
	onto.Merge(base)
	if onto != base {
		t.Fatal("merging into an empty snapshot did not reproduce the source")
	}
}

// TestSnapshotMerge: per-worker histograms merged must agree with one
// shared histogram over the same observations.
func TestSnapshotMerge(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	shared := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 10_000; i++ {
		v := r.Int63n(1 << 30)
		shared.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := parts[0].Snapshot()
	for _, p := range parts[1:] {
		merged.Merge(p.Snapshot())
	}
	want := shared.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs: count %d/%d sum %d/%d max %d/%d",
			merged.Count, want.Count, merged.Sum, want.Sum, merged.Max, want.Max)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Fatalf("p%g: merged %d != shared %d", q*100, merged.Quantile(q), want.Quantile(q))
		}
	}
}

// TestConcurrentRecordSnapshot is the race gate for the hot path:
// goroutines hammer counters and histograms while another goroutine
// scrapes snapshots and expositions; after everyone quiesces the totals
// must be exact.
func TestConcurrentRecordSnapshot(t *testing.T) {
	reg := New()
	c := reg.Counter("test_ops_total", "ops")
	h := reg.Histogram("test_latency_seconds", "latency")
	const workers, perWorker = 8, 5_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Snapshot()
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		writers.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer writers.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(r.Int63n(1 << 25))
			}
		}(int64(w))
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter %d != %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count %d != %d", s.Count, workers*perWorker)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestDisabledAndNil: a disabled registry hands out nil metrics, and
// every nil-receiver method is a safe no-op.
func TestDisabledAndNil(t *testing.T) {
	for _, reg := range []*Registry{Disabled(), nil} {
		c := reg.Counter("x_total", "")
		g := reg.Gauge("x", "")
		h := reg.Histogram("x_seconds", "")
		v := reg.HistogramVec("x_route_seconds", "", "route")
		reg.CounterFunc("x_fn_total", "", func() uint64 { return 1 })
		reg.GaugeFunc("x_fn", "", func() float64 { return 1 })
		reg.Collect("x_shard", "", "shard", func(emit func(string, float64)) { emit("0", 1) })
		c.Inc()
		c.Add(5)
		g.Set(2)
		g.Add(-1)
		h.Observe(100)
		v.With("a").Observe(100)
		if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
			t.Fatal("disabled metrics recorded")
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if reg != nil && buf.Len() != 0 {
			t.Fatalf("disabled exposition wrote %q", buf.String())
		}
		var ring *Ring
		ring.Add(BatchTrace{})
		if ring.Snapshot() != nil || ring.Len() != 0 {
			t.Fatal("nil ring not empty")
		}
	}
}

// TestRingEviction: the ring keeps the newest n entries, oldest first.
func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := uint64(1); i <= 10; i++ {
		r.Add(BatchTrace{Seq: i})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len %d", len(got))
	}
	for i, tr := range got {
		if want := uint64(7 + i); tr.Seq != want {
			t.Fatalf("entry %d seq %d want %d", i, tr.Seq, want)
		}
	}
}

// TestExpositionGolden pins the /metrics wire format byte-for-byte: a
// deterministic registry rendered against testdata/metrics.golden
// (regenerate with -update). Sorting, HELP/TYPE lines, label quoting,
// histogram bucket bounds and cumulative counts are all under the
// golden.
func TestExpositionGolden(t *testing.T) {
	reg := New()
	reg.Counter("cscd_ops_applied_total", "edge ops applied").Add(1234)
	reg.Gauge("cscd_queue_depth", "mailbox depth").Set(7)
	reg.CounterFunc("cscd_queries_total", "client queries", func() uint64 { return 99 })
	reg.GaugeFunc("cscd_label_bytes", "label arena bytes", func() float64 { return 81920 })
	reg.Collect("cscd_shard_entries", "label entries per shard", "shard", func(emit func(string, float64)) {
		emit("0", 120)
		emit("3", 45)
	})
	h := reg.Histogram("cscd_query_join_seconds", "label-join latency")
	for _, ns := range []int64{150, 900, 2_000, 2_100, 65_000, 1_000_000, 30_000_000} {
		h.Observe(ns)
	}
	v := reg.HistogramVec("cscd_http_request_seconds", "request latency by route", "route")
	v.With("GET /cycle/{v}").Observe(45_000)
	v.With("GET /stats").Observe(12_000)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestDuplicateRegistrationPanics: metric names are constants, so a
// collision must fail loudly at startup, not alias silently.
func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := New()
	reg.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate name")
		}
	}()
	reg.Counter("dup_total", "")
}

func BenchmarkObserve(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Observe(i & 0xfffff)
			i += 997
		}
	})
}

func ExampleHistSnapshot_Quantile() {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	s := h.Snapshot()
	fmt.Println(s.Quantile(0.5) >= 450_000, s.Quantile(0.5) <= 550_000)
	// Output: true true
}
