// Package obs is the dependency-free observability core shared by the
// serving engine, the HTTP layer, and the experiment harness: atomic
// counters and gauges, log2-bucketed latency histograms with mergeable
// snapshots and percentile extraction (hist.go), a fixed-size
// batch-lifecycle trace ring (trace.go), and a hand-rolled Prometheus
// text exposition (prom.go).
//
// Design constraints, in order:
//
//   - Hot-path recording must be lock-free: Counter.Add and
//     Histogram.Observe are a handful of atomic adds, safe from any
//     goroutine. The registry mutex guards registration and scrape
//     only — both cold.
//   - One measurement path. A metric can be registered func-backed
//     (CounterFunc/GaugeFunc/Collect), reading the owner's live
//     counters at scrape time — so /metrics and /stats cannot drift:
//     both surfaces read the same words.
//   - A disabled registry (Disabled, or a nil *Registry) hands out nil
//     metrics, and every method is nil-receiver safe, so instrumented
//     code needs no branches: the no-op configuration is the same code
//     path minus the atomic writes. BenchmarkObsOverhead holds the
//     instrumented read path to the noise floor against this.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType discriminates exposition families.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready; a nil Counter (from a disabled registry) is a no-op.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil Counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomic instantaneous value. A nil Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value (0 for a nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// family is one registered exposition family: exactly one of the value
// sources is set.
type family struct {
	name, help string
	typ        metricType
	labelKey   string // Collect / HistogramVec children

	counter   *Counter
	gauge     *Gauge
	counterFn func() uint64
	gaugeFn   func() float64
	collect   func(emit func(labelValue string, v float64))
	hist      *Histogram
	vec       *HistogramVec
}

// Registry holds the registered metric families of one process (or one
// experiment arm). The zero value must not be used; construct with New
// or Disabled. All registration methods panic on a duplicate name —
// metric names are compile-time constants, so a collision is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	fams     []*family
	byName   map[string]*family
	disabled bool
}

// New returns an enabled registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Disabled returns a registry whose constructors hand out nil metrics:
// every Observe/Add on them is a no-op and WritePrometheus writes
// nothing. The ablation arm for overhead benchmarks.
func Disabled() *Registry {
	return &Registry{byName: make(map[string]*family), disabled: true}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.byName[f.name] = f
	r.fams = append(r.fams, f)
}

func (r *Registry) off() bool { return r == nil || r.disabled }

// Counter registers and returns an owned counter (nil when disabled).
func (r *Registry) Counter(name, help string) *Counter {
	if r.off() {
		return nil
	}
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: typeCounter, counter: c})
	return c
}

// Gauge registers and returns an owned gauge (nil when disabled).
func (r *Registry) Gauge(name, help string) *Gauge {
	if r.off() {
		return nil
	}
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: typeGauge, gauge: g})
	return g
}

// CounterFunc registers a func-backed counter: fn is called at scrape
// time, so the exposition reads the owner's live counter — the
// no-drift path for counters that already exist elsewhere (striped
// per-shard counters, engine stats words).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r.off() {
		return
	}
	r.register(&family{name: name, help: help, typ: typeCounter, counterFn: fn})
}

// GaugeFunc registers a func-backed gauge, read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r.off() {
		return
	}
	r.register(&family{name: name, help: help, typ: typeGauge, gaugeFn: fn})
}

// Collect registers a labeled gauge family whose samples are produced
// at scrape time: fn is called with an emit callback and emits one
// sample per label value (e.g. one per shard). labelKey names the
// label dimension.
func (r *Registry) Collect(name, help, labelKey string, fn func(emit func(labelValue string, v float64))) {
	if r.off() {
		return
	}
	r.register(&family{name: name, help: help, typ: typeGauge, labelKey: labelKey, collect: fn})
}

// Histogram registers and returns an owned latency histogram (nil when
// disabled). Observations are nanoseconds; the exposition converts
// bucket bounds to seconds per Prometheus convention.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r.off() {
		return nil
	}
	h := NewHistogram()
	r.register(&family{name: name, help: help, typ: typeHistogram, hist: h})
	return h
}

// HistogramVec registers a histogram family partitioned by one label
// (nil when disabled). Children are created on first With and live for
// the registry's lifetime.
func (r *Registry) HistogramVec(name, help, labelKey string) *HistogramVec {
	if r.off() {
		return nil
	}
	v := &HistogramVec{children: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, typ: typeHistogram, labelKey: labelKey, vec: v})
	return v
}

// HistogramVec is a histogram family keyed by one label value. A nil
// vec hands out nil histograms.
type HistogramVec struct {
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label value, creating
// it on first use. Callers on hot paths should call With once and keep
// the child.
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[labelValue]
	if !ok {
		h = NewHistogram()
		v.children[labelValue] = h
	}
	return h
}

// sorted returns the children in label order (scrape path).
func (v *HistogramVec) sorted() (labels []string, hists []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for l := range v.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		hists = append(hists, v.children[l])
	}
	return labels, hists
}

// families snapshots the registration list for a scrape, sorted by
// name.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*family, len(r.fams))
	copy(out, r.fams)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
