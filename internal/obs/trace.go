package obs

import (
	"sync"
	"time"
)

// Stage is one timed step of a batch's lifecycle.
type Stage struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// BatchTrace is one entry of the batch-lifecycle trace ring: everything
// that happened to one applied batch (or one out-of-band rebuild swap),
// with per-stage durations. The /debug/trace endpoint serves the ring's
// recent entries as JSON.
type BatchTrace struct {
	// Seq is the batch's sequence number (a swap entry carries the
	// sequence it committed under).
	Seq uint64 `json:"seq"`
	// Kind is "batch" for a mailbox batch, "oob-swap" for an
	// out-of-band rebuild landing.
	Kind string `json:"kind"`
	// Start is when the writer began processing (wall clock).
	Start time.Time `json:"start"`
	// Raw is the mailbox op count before coalescing; Ops the net batch
	// size actually applied.
	Raw int `json:"raw_ops,omitempty"`
	Ops int `json:"ops,omitempty"`
	// Shards lists the shard slots the batch streamed into or rebuilt
	// (empty for a monolithic index).
	Shards []int `json:"shards,omitempty"`
	// Deferred marks a batch that handed a structural rebuild to the
	// out-of-band path instead of running it inline.
	Deferred bool `json:"deferred,omitempty"`
	// WaitNS is how long the first op of the batch sat in the mailbox
	// before the writer started on it (the enqueue stage).
	WaitNS int64 `json:"wait_ns,omitempty"`
	// Stages are the writer-side steps in order: coalesce, wal, plan,
	// apply, rebuild, hooks for a batch; rebuild, swap for an oob-swap.
	Stages []Stage `json:"stages"`
	// StaleNS is an oob-swap's freeze→swap window: how long the rebuilt
	// shards served stale answers.
	StaleNS int64 `json:"stale_ns,omitempty"`
	// TotalNS is the whole entry's wall-clock.
	TotalNS int64 `json:"total_ns"`
}

// Ring is a fixed-size ring buffer of batch traces, written by the
// engine's writer goroutine (one entry per batch — cold path) and read
// by /debug/trace. A nil Ring drops entries.
type Ring struct {
	mu   sync.Mutex
	buf  []BatchTrace
	next uint64 // total entries ever added
}

// NewRing returns a ring keeping the last n entries (n clamps up to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]BatchTrace, 0, n)}
}

// Add appends one trace, evicting the oldest once full.
func (r *Ring) Add(t BatchTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = t
	}
	r.next++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, oldest first.
func (r *Ring) Snapshot() []BatchTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BatchTrace, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	at := r.next % uint64(cap(r.buf))
	out = append(out, r.buf[at:]...)
	return append(out, r.buf[:at]...)
}

// Len reports how many traces are retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
