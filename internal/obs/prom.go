package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exposition histogram bounds: one cumulative bucket per octave, from
// 255ns to ~17s. Full sub-bucket resolution stays internal (quantile
// extraction); the wire format only needs enough shape for dashboards,
// and 28 le lines per histogram keeps a scrape readable. Bounds are
// inclusive upper bounds in nanoseconds — exactly the top bucket bound
// of each octave, so cumulative counts are exact prefix sums.
const (
	promLowExp  = 8  // first le = 2^8-1 ns
	promHighExp = 35 // last finite le = 2^35-1 ns (~34 s)
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), sorted by metric name. Func-backed
// and collected families read their owners' live values here — the
// scrape is the measurement, there is no copy to drift.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Load())
		case f.counterFn != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counterFn())
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Load())
		case f.gaugeFn != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		case f.collect != nil:
			f.collect(func(labelValue string, v float64) {
				fmt.Fprintf(bw, "%s{%s=%q} %s\n", f.name, f.labelKey, labelValue, formatFloat(v))
			})
		case f.hist != nil:
			writeHist(bw, f.name, "", f.hist.Snapshot())
		case f.vec != nil:
			labels, hists := f.vec.sorted()
			for i, l := range labels {
				writeHist(bw, f.name, fmt.Sprintf("%s=%q", f.labelKey, l), hists[i].Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeHist renders one histogram series (labels may be empty or one
// pre-rendered key="value" pair).
func writeHist(w io.Writer, name, labels string, s HistSnapshot) {
	cum := uint64(0)
	next := 0 // next internal bucket to fold into the cumulative count
	for exp := promLowExp; exp <= promHighExp; exp++ {
		boundNS := int64(1)<<exp - 1
		top := bucketIdx(boundNS) // last internal bucket at or under the bound
		for ; next <= top && next < histBuckets; next++ {
			cum += s.Buckets[next]
		}
		// Divide by the exact constant 1e9 (not multiply by the inexact
		// 1e-9) so bounds render as clean shortest floats.
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, histLabels(labels, formatFloat(float64(boundNS)/1e9)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, histLabels(labels, "+Inf"), s.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(s.Sum)/1e9))
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(float64(s.Sum)/1e9))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

func histLabels(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// 1e+06-style exponents are valid exposition, but keep small
	// integers plain for readability.
	if !strings.ContainsAny(s, ".e") {
		return s
	}
	return s
}
