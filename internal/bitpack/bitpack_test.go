package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpack(t *testing.T) {
	cases := []struct {
		hub, dist int
		count     uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{MaxHub, MaxDist, MaxCount},
		{42, 17, 123456},
		{MaxHub / 2, MaxDist / 2, MaxCount / 2},
	}
	for _, c := range cases {
		e := Pack(c.hub, c.dist, c.count)
		if e.Hub() != c.hub || e.Dist() != c.dist || e.Count() != c.count {
			t.Errorf("Pack(%d,%d,%d) roundtrip = (%d,%d,%d)",
				c.hub, c.dist, c.count, e.Hub(), e.Dist(), e.Count())
		}
	}
}

func TestPackClamps(t *testing.T) {
	e := Pack(MaxHub+10, MaxDist+10, MaxCount+10)
	if e.Hub() != MaxHub || e.Dist() != MaxDist || e.Count() != MaxCount {
		t.Errorf("clamped pack = (%d,%d,%d), want maxima", e.Hub(), e.Dist(), e.Count())
	}
	e = Pack(-5, -5, 0)
	if e.Hub() != 0 || e.Dist() != 0 {
		t.Errorf("negative pack = (%d,%d), want zeros", e.Hub(), e.Dist())
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(hub, dist uint32, count uint64) bool {
		h := int(hub % (MaxHub + 1))
		d := int(dist % (MaxDist + 1))
		c := count % (MaxCount + 1)
		e := Pack(h, d, c)
		return e.Hub() == h && e.Dist() == d && e.Count() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHubOrderingProperty(t *testing.T) {
	// Entries with distinct hubs must order by hub regardless of the other
	// fields, because hub occupies the most significant bits.
	f := func(h1, h2 uint32, d1, d2 uint32, c1, c2 uint64) bool {
		a := Pack(int(h1%(MaxHub+1)), int(d1%(MaxDist+1)), c1%(MaxCount+1))
		b := Pack(int(h2%(MaxHub+1)), int(d2%(MaxDist+1)), c2%(MaxCount+1))
		if a.Hub() == b.Hub() {
			return true
		}
		return (a.Hub() < b.Hub()) == (a < b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddCountSaturates(t *testing.T) {
	e := Pack(3, 4, MaxCount-1)
	e2, sat := e.AddCount(1)
	if sat || e2.Count() != MaxCount {
		t.Fatalf("AddCount(1) = (%d, %v), want (MaxCount, false)", e2.Count(), sat)
	}
	e3, sat := e2.AddCount(1)
	if !sat || e3.Count() != MaxCount {
		t.Fatalf("AddCount at ceiling = (%d, %v), want (MaxCount, true)", e3.Count(), sat)
	}
	if e3.Hub() != 3 || e3.Dist() != 4 {
		t.Fatalf("AddCount disturbed hub/dist: (%d,%d)", e3.Hub(), e3.Dist())
	}
}

func TestSatArith(t *testing.T) {
	if got := SatAdd(MaxCount, MaxCount); got != MaxCount {
		t.Errorf("SatAdd ceiling = %d", got)
	}
	if got := SatAdd(2, 3); got != 5 {
		t.Errorf("SatAdd(2,3) = %d", got)
	}
	if got := SatMul(1<<12, 1<<12); got != MaxCount {
		t.Errorf("SatMul overflow = %d, want MaxCount", got)
	}
	if got := SatMul(7, 6); got != 42 {
		t.Errorf("SatMul(7,6) = %d", got)
	}
}

func TestWithDistCount(t *testing.T) {
	e := Pack(99, 5, 7)
	e2 := e.WithDistCount(6, 14)
	if e2.Hub() != 99 || e2.Dist() != 6 || e2.Count() != 14 {
		t.Fatalf("WithDistCount = (%d,%d,%d)", e2.Hub(), e2.Dist(), e2.Count())
	}
}

func BenchmarkPack(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	hubs := make([]int, 1024)
	for i := range hubs {
		hubs[i] = r.Intn(MaxHub)
	}
	b.ResetTimer()
	var sink Entry
	for i := 0; i < b.N; i++ {
		sink = Pack(hubs[i&1023], i&MaxDist, uint64(i)&MaxCount)
	}
	_ = sink
}
