package bitpack

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func entryBytes(es []Entry) []byte {
	out := make([]byte, 0, 8*len(es))
	for _, e := range es {
		out = binary.LittleEndian.AppendUint64(out, uint64(e))
	}
	return out
}

func roundTrip(t *testing.T, es []Entry) {
	t.Helper()
	var syncs []uint32
	enc := AppendDeltaBlocks(nil, es, func(h, off uint32) { syncs = append(syncs, h, off) })
	var got []Entry
	consumed, ok := DecodeDeltaBlocks(enc, len(es), func(e Entry) bool {
		got = append(got, e)
		return true
	})
	if !ok || consumed != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes, ok=%v", consumed, len(enc), ok)
	}
	if len(got) != len(es) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(es))
	}
	for i := range es {
		if got[i] != es[i] {
			t.Fatalf("entry %d: got %x want %x", i, got[i], es[i])
		}
	}
	wantBlocks := (len(es) + DeltaBlock - 1) / DeltaBlock
	if len(syncs) != 2*wantBlocks {
		t.Fatalf("%d sync pairs, want %d", len(syncs)/2, wantBlocks)
	}
	// Every sync offset must point at its block's absolute hub.
	for b := 0; b < wantBlocks; b++ {
		h, off := syncs[2*b], syncs[2*b+1]
		v, w := binary.Uvarint(enc[off:])
		if w <= 0 || uint32(v) != h {
			t.Fatalf("block %d: sync hub %d, stream says %d", b, h, v)
		}
		if int(h) != es[b*DeltaBlock].Hub() {
			t.Fatalf("block %d: sync hub %d, entry hub %d", b, h, es[b*DeltaBlock].Hub())
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := [][]Entry{
		nil,
		{Pack(0, 0, 0)},                     // single entry, all-zero fields
		{Pack(MaxHub, MaxDist, MaxCount)},   // single entry, max fields
		{Pack(0, 3, 7), Pack(1, 0, 1)},      // minimal gap
		{Pack(5, 1, 2), Pack(MaxHub, 9, 4)}, // max gap
	}
	// Dense run crossing several block boundaries.
	var dense []Entry
	for h := 0; h < 3*DeltaBlock+5; h++ {
		dense = append(dense, Pack(h, h%17, uint64(h%9)+1))
	}
	cases = append(cases, dense)
	// Sparse run with growing gaps.
	var sparse []Entry
	for h := 1; h < MaxHub; h = h*3 + 1 {
		sparse = append(sparse, Pack(h, h%MaxDist, uint64(h)%MaxCount))
	}
	cases = append(cases, sparse)
	for i, es := range cases {
		t.Run(string(rune('a'+i)), func(t *testing.T) { roundTrip(t, es) })
	}
}

func TestDecodeDeltaRejectsCorrupt(t *testing.T) {
	es := []Entry{Pack(1, 2, 3), Pack(4, 5, 6), Pack(9, 0, 1)}
	enc := AppendDeltaBlocks(nil, es, nil)
	// Every strict prefix must fail to produce all entries.
	for cut := 0; cut < len(enc); cut++ {
		if _, ok := DecodeDeltaBlocks(enc[:cut], len(es), func(Entry) bool { return true }); ok {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(enc))
		}
	}
	// A zero gap (duplicate hub) must be rejected.
	dup := AppendDeltaBlocks(nil, []Entry{Pack(3, 1, 1)}, nil)
	dup = append(dup, 0, 1, 1) // gap 0, dist 1, count 1
	if _, ok := DecodeDeltaBlocks(dup, 2, func(Entry) bool { return true }); ok {
		t.Fatal("zero hub gap decoded cleanly")
	}
}

func TestDecodeDeltaEarlyStop(t *testing.T) {
	es := []Entry{Pack(1, 2, 3), Pack(4, 5, 6), Pack(9, 0, 1)}
	enc := AppendDeltaBlocks(nil, es, nil)
	seen := 0
	_, ok := DecodeDeltaBlocks(enc, len(es), func(Entry) bool {
		seen++
		return seen < 2
	})
	if !ok || seen != 2 {
		t.Fatalf("early stop: ok=%v seen=%d", ok, seen)
	}
}

// FuzzDeltaRoundTrip drives the codec both ways: structured inputs must
// round-trip exactly, and arbitrary bytes must never panic or over-read
// the decoder.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 0, 1}, uint16(1))          // single entry
	f.Add([]byte{0, 0, 0, 1, 0, 0}, uint16(2)) // zero-gap-ish stream
	max := AppendDeltaBlocks(nil, []Entry{Pack(0, 0, 1), Pack(MaxHub, MaxDist, MaxCount)}, nil)
	f.Add(max, uint16(2)) // max-gap pair
	var dense []Entry
	for h := 0; h < DeltaBlock+3; h++ {
		dense = append(dense, Pack(h, 1, 1))
	}
	f.Add(AppendDeltaBlocks(nil, dense, nil), uint16(len(dense)))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Arbitrary bytes: must not panic, must not report consuming more
		// than it was given.
		var first []Entry
		consumed, ok := DecodeDeltaBlocks(data, int(n), func(e Entry) bool {
			first = append(first, e)
			return true
		})
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if !ok {
			return
		}
		// Anything that decoded cleanly is a valid list: strictly
		// ascending hubs, fields in range — and it must survive a
		// re-encode/re-decode round trip entry for entry. (Byte equality
		// is not required: varints admit non-canonical paddings.)
		for i := 1; i < len(first); i++ {
			if first[i].Hub() <= first[i-1].Hub() {
				t.Fatalf("decoded hubs not ascending: %d then %d", first[i-1].Hub(), first[i].Hub())
			}
		}
		enc := AppendDeltaBlocks(nil, first, nil)
		var second []Entry
		c2, ok2 := DecodeDeltaBlocks(enc, len(first), func(e Entry) bool {
			second = append(second, e)
			return true
		})
		if !ok2 || c2 != len(enc) {
			t.Fatalf("re-decode failed: ok=%v consumed %d of %d", ok2, c2, len(enc))
		}
		if !bytes.Equal(entryBytes(first), entryBytes(second)) {
			t.Fatalf("round trip changed entries: %v vs %v", first, second)
		}
	})
}
