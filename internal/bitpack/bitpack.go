// Package bitpack implements the 64-bit packed label-entry encoding used
// throughout the index, matching the layout reported in the paper's
// evaluation settings (§VI-A): the vertex (hub) identifier takes 23 bits,
// the distance 17 bits, and the shortest-path count 24 bits.
//
// The hub field stores the hub's *rank position* rather than its raw vertex
// id so that label lists sorted by the packed value are automatically sorted
// by rank, which makes the two-list merge-join query a linear scan.
//
// Counts saturate at MaxCount instead of wrapping: once a count reaches the
// 24-bit ceiling it sticks there, and Add reports saturation so callers can
// surface it. Distances likewise saturate at MaxDist.
package bitpack

const (
	// HubBits is the width of the hub-rank field.
	HubBits = 23
	// DistBits is the width of the distance field.
	DistBits = 17
	// CountBits is the width of the path-count field.
	CountBits = 24

	// MaxHub is the largest representable hub rank.
	MaxHub = 1<<HubBits - 1
	// MaxDist is the largest representable distance. It doubles as the
	// "unreachable" sentinel in tentative-distance arrays.
	MaxDist = 1<<DistBits - 1
	// MaxCount is the saturation ceiling for shortest-path counts.
	MaxCount = 1<<CountBits - 1

	distShift = CountBits
	hubShift  = CountBits + DistBits
)

// Entry is a packed label entry: [ hub:23 | dist:17 | count:24 ].
// Entries compare correctly as integers for hub-rank ordering because the
// hub occupies the most significant bits.
type Entry uint64

// Pack builds an Entry from its three fields. Values outside the field
// widths are clamped (hub and dist to their maxima, count to MaxCount);
// callers that care about exactness should validate beforehand —
// construction code does, via the package-level limits.
func Pack(hub, dist int, count uint64) Entry {
	if hub < 0 {
		hub = 0
	} else if hub > MaxHub {
		hub = MaxHub
	}
	if dist < 0 {
		dist = 0
	} else if dist > MaxDist {
		dist = MaxDist
	}
	if count > MaxCount {
		count = MaxCount
	}
	return Entry(uint64(hub)<<hubShift | uint64(dist)<<distShift | count)
}

// Hub returns the hub-rank field.
func (e Entry) Hub() int { return int(e >> hubShift) }

// Dist returns the distance field.
func (e Entry) Dist() int { return int(e>>distShift) & MaxDist }

// Count returns the shortest-path count field.
func (e Entry) Count() uint64 { return uint64(e) & MaxCount }

// WithDistCount returns a copy of e with the distance and count replaced,
// keeping the hub.
func (e Entry) WithDistCount(dist int, count uint64) Entry {
	return Pack(e.Hub(), dist, count)
}

// AddCount returns the entry with count increased by delta, saturating at
// MaxCount. The second result reports whether saturation occurred.
func (e Entry) AddCount(delta uint64) (Entry, bool) {
	c := e.Count()
	s := c + delta
	if s > MaxCount || s < c { // overflow of the 64-bit add cannot happen for 24-bit inputs, but keep the guard
		return Pack(e.Hub(), e.Dist(), MaxCount), true
	}
	return Pack(e.Hub(), e.Dist(), s), false
}

// SatAdd adds two counts with saturation at MaxCount.
func SatAdd(a, b uint64) uint64 {
	s := a + b
	if s > MaxCount {
		return MaxCount
	}
	return s
}

// SatMul multiplies two counts with saturation at MaxCount. Both inputs are
// at most MaxCount (24 bits) so the 64-bit product cannot overflow.
func SatMul(a, b uint64) uint64 {
	p := a * b
	if p > MaxCount {
		return MaxCount
	}
	return p
}
