package bitpack

import "encoding/binary"

// Delta+varint codec for frozen label lists. A list's entries are in
// strictly ascending hub order, and hubs are rank positions (small,
// dense after rank-sorting), so consecutive hub gaps are tiny — almost
// always a single varint byte. Each entry encodes as
//
//	hub   uvarint  absolute at a block start, gap (≥ 1) otherwise
//	dist  uvarint
//	count uvarint
//
// in blocks of DeltaBlock entries. Every block restarts with an
// absolute hub, so a seek structure (label.Frozen's sync records) can
// jump to any block boundary and decode forward without the preceding
// stream. Typical cost is 3-4 bytes per entry against the 8-byte packed
// form (plus arena padding).
//
// Decoding is panic-free on arbitrary bytes: a truncated or malformed
// stream reports !ok instead of running past the slice.

// DeltaBlock is the codec's restart interval: every DeltaBlock-th entry
// stores its hub absolutely instead of as a gap.
const DeltaBlock = 32

// AppendDeltaBlocks appends the block-structured delta+varint encoding
// of es to dst and returns the extended slice. If sync is non-nil it is
// called once per block with the block's starting hub and the block's
// byte offset relative to the start of this encoding.
func AppendDeltaBlocks(dst []byte, es []Entry, sync func(startHub, off uint32)) []byte {
	base := len(dst)
	prev := 0
	for i, e := range es {
		h := e.Hub()
		if i%DeltaBlock == 0 {
			if sync != nil {
				sync(uint32(h), uint32(len(dst)-base))
			}
			dst = binary.AppendUvarint(dst, uint64(h))
		} else {
			dst = binary.AppendUvarint(dst, uint64(h-prev))
		}
		prev = h
		dst = binary.AppendUvarint(dst, uint64(e.Dist()))
		dst = binary.AppendUvarint(dst, e.Count())
	}
	return dst
}

// DecodeDeltaBlocks streams n entries out of data, calling fn for each;
// decoding stops early when fn returns false. It returns the number of
// bytes consumed and whether all requested entries decoded cleanly
// (false on truncation, a varint overflow, or a field outside its
// packed width — the corrupt-input cases a reader must reject).
func DecodeDeltaBlocks(data []byte, n int, fn func(Entry) bool) (consumed int, ok bool) {
	pos, hub := 0, 0
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(data[pos:])
		if w <= 0 || v > MaxHub {
			return pos, false
		}
		pos += w
		if i%DeltaBlock == 0 {
			hub = int(v)
		} else {
			if v == 0 {
				return pos, false // gaps are ≥ 1: hubs strictly ascend
			}
			hub += int(v)
		}
		if hub > MaxHub {
			return pos, false
		}
		d, w := binary.Uvarint(data[pos:])
		if w <= 0 || d > MaxDist {
			return pos, false
		}
		pos += w
		c, w := binary.Uvarint(data[pos:])
		if w <= 0 || c > MaxCount {
			return pos, false
		}
		pos += w
		if !fn(Pack(hub, int(d), c)) {
			return pos, true
		}
	}
	return pos, true
}
