package faultstore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/testgraphs"
)

// The resilience stress test: a saturated mailbox under the reject
// admission policy, a fault-injected store whose every fsync is slow,
// hot-set readers, and a live top-k watch — all at once, designed to
// run under the race detector. Nothing may deadlock, the admission
// counters must reconcile exactly with what the writers observed, and
// at quiesce every answer must match the indexless BFS oracle.
func TestOverloadStressReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	writerN, attempts := 4, 400
	if raceEnabled {
		writerN, attempts = 3, 150
	}

	g := testgraphs.GiantSCC(200, 700, 11)
	n := g.NumVertices()
	dir := t.TempDir()
	fio := New()
	fio.Inject(Fault{Point: WALSync, Delay: 300 * time.Microsecond}) // every fsync crawls
	boot := func() (csc.Counter, error) {
		x, _ := csc.BuildSharded(g, csc.Options{})
		return x, nil
	}
	e, err := engine.OpenIO(dir, fio, boot, engine.Options{
		MailboxSize:   8,
		Admission:     engine.AdmitReject,
		FlushInterval: -1,
		SnapshotEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	watch := e.WatchTopK(5)

	var stop atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			v := seed
			for !stop.Load() {
				e.CycleCount(v % n)
				e.CycleCountBounded((v+1)%n, 4)
				v += 7919 // prime stride: spread across stripe shards
			}
		}(r)
	}

	var accepted, overloaded atomic.Uint64
	var writers sync.WaitGroup
	for wr := 0; wr < writerN; wr++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < attempts; i++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				var err error
				if rng.Intn(3) == 0 {
					err = e.Delete(a, b)
				} else {
					err = e.Insert(a, b)
				}
				switch err {
				case nil:
					accepted.Add(1)
				case engine.ErrOverloaded:
					overloaded.Add(1)
				default:
					t.Errorf("unexpected enqueue error: %v", err)
					return
				}
			}
		}(int64(100 + wr))
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	e.Flush()

	st := e.Stats()
	if st.OpsEnqueued != accepted.Load() {
		t.Fatalf("OpsEnqueued %d != %d accepted by writers", st.OpsEnqueued, accepted.Load())
	}
	if st.OpsOverload != overloaded.Load() {
		t.Fatalf("OpsOverload %d != %d rejections observed by writers", st.OpsOverload, overloaded.Load())
	}
	if st.OpsEnqueued != st.OpsApplied+st.OpsCoalesced {
		t.Fatalf("mailbox leak: enqueued %d != applied %d + coalesced %d",
			st.OpsEnqueued, st.OpsApplied, st.OpsCoalesced)
	}
	if st.OpsRejected != 0 {
		t.Fatalf("OpsRejected = %d, want 0", st.OpsRejected)
	}
	if overloaded.Load() == 0 {
		t.Log("warning: mailbox never saturated — overload path unexercised this run")
	}

	// Quiesced answers must match the indexless oracle.
	fg := e.Index().Graph()
	for v := 0; v < n; v += 9 {
		wl, wc := bfscount.CycleCount(fg, v)
		gl, gc := e.CycleCount(v)
		if gl != wl || gc != wc {
			t.Fatalf("vertex %d: engine (%d,%d) != oracle (%d,%d)", v, gl, gc, wl, wc)
		}
	}
	for _, sc := range watch.Top() {
		l, c := e.CycleCount(sc.Vertex)
		if l != sc.Length || c != sc.Count {
			t.Fatalf("top-k vertex %d: scoreboard (%d,%d) != engine (%d,%d)",
				sc.Vertex, sc.Length, sc.Count, l, c)
		}
	}
}
