// Package faultstore is a fault-injecting engine.StoreIO: it wraps the
// real filesystem and deterministically injects write errors, torn
// tails, fsync latency, and crash points into the exact WAL/snapshot
// boundary a test targets. It exists because the durability path's
// hardest bugs live at boundaries a unit test never crosses naturally —
// the byte between two WAL records, the instant after a snapshot rename
// but before the WAL reset — and the only way to pin recovery behavior
// at every such boundary is to script the failure.
//
// Every filesystem touch the Store makes maps to a named Point
// ("wal.write", "snap.rename", ...). Each Point keeps a hit counter;
// a Fault matches a Point from its Nth hit on. A matched fault can
// return an error, write only a prefix of the bytes first (TornBytes),
// sleep (Delay — latency injection without an error), or Crash: freeze
// the store so this and every later operation fails without touching
// disk, exactly what a process killed at that boundary would have left
// behind. Reopening the directory with the real filesystem then
// exercises recovery against that precise on-disk state.
package faultstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// Point names one filesystem touch point of the durability path, as
// "<file>.<op>": the WAL file's writes, syncs, and truncations, and the
// snapshot path's create/write/sync/rename.
type Point string

// The injectable points. Reads are not injectable: recovery always runs
// against the real filesystem.
const (
	WALWrite    Point = "wal.write"
	WALSync     Point = "wal.sync"
	WALTruncate Point = "wal.truncate"
	SnapCreate  Point = "snap.create"
	SnapWrite   Point = "snap.write"
	SnapSync    Point = "snap.sync"
	SnapRename  Point = "snap.rename"
)

var (
	// ErrInjected is the default error a matched fault returns.
	ErrInjected = errors.New("faultstore: injected fault")
	// ErrCrashed is returned by every operation after a Crash fault
	// fired: the simulated process is dead, nothing reaches the disk.
	ErrCrashed = errors.New("faultstore: crashed")
)

// Fault is one scripted failure. The zero Point never matches.
type Fault struct {
	// Point selects the touch point.
	Point Point
	// Nth is the 1-based hit of Point the fault first fires on
	// (0 behaves as 1: fire from the first hit).
	Nth int
	// Times bounds how many consecutive hits fire (0 = every hit from
	// Nth on — a sticky fault, e.g. a disk that stays broken).
	Times int
	// Err is the error to return (ErrInjected when nil).
	Err error
	// TornBytes, on a write point, writes only that many bytes of the
	// payload to the real file before failing — a torn tail.
	TornBytes int
	// Delay sleeps before the operation. With no Err/Crash the operation
	// then proceeds normally: pure latency injection (a hanging fsync).
	Delay time.Duration
	// Crash freezes the store at this boundary: the matched operation
	// does not execute (beyond TornBytes, if set) and every later
	// operation returns ErrCrashed without touching disk.
	Crash bool
}

// IO is the fault-injecting StoreIO. Wrap it around engine.OSIO, hand
// it to engine.OpenIO, and script faults with Inject — before or during
// the run; all methods are safe under concurrency.
type IO struct {
	inner engine.StoreIO

	mu      sync.Mutex
	hits    map[Point]int
	faults  []Fault
	crashed bool
}

// Wrap returns a fault-injecting IO over inner.
func Wrap(inner engine.StoreIO) *IO {
	return &IO{inner: inner, hits: make(map[Point]int)}
}

// New returns a fault-injecting IO over the real filesystem.
func New() *IO { return Wrap(engine.OSIO) }

// Inject adds one scripted fault.
func (w *IO) Inject(f Fault) {
	w.mu.Lock()
	w.faults = append(w.faults, f)
	w.mu.Unlock()
}

// Clear removes every scripted fault (hit counters and crash state are
// kept): the disk is healthy again.
func (w *IO) Clear() {
	w.mu.Lock()
	w.faults = nil
	w.mu.Unlock()
}

// Hits returns how many times the point has been touched so far —
// including touches that were failed by a fault. A counting run with no
// faults injected enumerates the crash-point space for a workload.
func (w *IO) Hits(p Point) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits[p]
}

// Crashed reports whether a Crash fault has fired.
func (w *IO) Crashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}

// at registers one hit of p and resolves it against the script. torn is
// the byte prefix a failing write should still land (-1: none).
func (w *IO) at(p Point) (torn int, err error) {
	w.mu.Lock()
	if w.crashed {
		w.mu.Unlock()
		return -1, ErrCrashed
	}
	w.hits[p]++
	n := w.hits[p]
	var delay time.Duration
	var match *Fault
	for i := range w.faults {
		f := &w.faults[i]
		if f.Point != p {
			continue
		}
		nth := f.Nth
		if nth <= 0 {
			nth = 1
		}
		if n < nth || (f.Times > 0 && n >= nth+f.Times) {
			continue
		}
		delay += f.Delay
		if f.Err != nil || f.Crash || f.TornBytes > 0 {
			match = f
			break
		}
	}
	torn = -1
	if match != nil {
		if match.Crash {
			w.crashed = true
			err = ErrCrashed
		} else if err = match.Err; err == nil {
			err = ErrInjected
		}
		if match.TornBytes > 0 {
			torn = match.TornBytes
		}
	}
	w.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return torn, err
}

// kindOf classifies a path into the point-name prefix: the WAL file,
// the snapshot (and its temp file), or anything else (the store
// directory opened for dir fsync) which is never injected.
func kindOf(name string) string {
	base := filepath.Base(name)
	switch {
	case strings.HasPrefix(base, "wal."):
		return "wal"
	case strings.HasPrefix(base, "snapshot."):
		return "snap"
	}
	return ""
}

func (w *IO) MkdirAll(dir string, perm os.FileMode) error {
	if w.Crashed() {
		return ErrCrashed
	}
	return w.inner.MkdirAll(dir, perm)
}

func (w *IO) OpenFile(name string, flag int, perm os.FileMode) (engine.StoreFile, error) {
	if w.Crashed() {
		return nil, ErrCrashed
	}
	f, err := w.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{inner: f, kind: kindOf(name), io: w}, nil
}

func (w *IO) Create(name string) (engine.StoreFile, error) {
	if kindOf(name) == "snap" {
		if _, err := w.at(SnapCreate); err != nil {
			return nil, err
		}
	} else if w.Crashed() {
		return nil, ErrCrashed
	}
	f, err := w.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{inner: f, kind: kindOf(name), io: w}, nil
}

func (w *IO) Open(name string) (engine.StoreFile, error) {
	if w.Crashed() {
		return nil, ErrCrashed
	}
	f, err := w.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{inner: f, kind: kindOf(name), io: w}, nil
}

func (w *IO) Rename(oldpath, newpath string) error {
	if kindOf(newpath) == "snap" {
		if _, err := w.at(SnapRename); err != nil {
			return err
		}
	} else if w.Crashed() {
		return ErrCrashed
	}
	return w.inner.Rename(oldpath, newpath)
}

// file wraps one StoreFile, routing its writes, syncs, and truncations
// through the fault script. Reads and seeks pass through (short of a
// crash): replay at open time is not a failure surface under test.
type file struct {
	inner engine.StoreFile
	kind  string
	io    *IO
}

// point maps this file's operation to its Point, or "" when the file is
// not injectable (the store directory handle).
func (f *file) point(op string) Point {
	if f.kind == "" {
		return ""
	}
	return Point(f.kind + "." + op)
}

func (f *file) Write(p []byte) (int, error) {
	if pt := f.point("write"); pt != "" {
		torn, err := f.io.at(pt)
		if err != nil {
			if torn >= 0 && torn < len(p) {
				n, _ := f.inner.Write(p[:torn])
				_ = f.inner.Sync() // make the torn prefix the durable state
				return n, err
			}
			return 0, err
		}
	} else if f.io.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Write(p)
}

func (f *file) Sync() error {
	if pt := f.point("sync"); pt != "" {
		if _, err := f.io.at(pt); err != nil {
			return err
		}
	} else if f.io.Crashed() {
		return ErrCrashed
	}
	return f.inner.Sync()
}

func (f *file) Truncate(size int64) error {
	if pt := f.point("truncate"); pt != "" {
		if _, err := f.io.at(pt); err != nil {
			return err
		}
	} else if f.io.Crashed() {
		return ErrCrashed
	}
	return f.inner.Truncate(size)
}

func (f *file) Read(p []byte) (int, error) {
	if f.io.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Read(p)
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	if f.io.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Seek(offset, whence)
}

// Close always reaches the real file, even crashed: the test harness
// must be able to release the WAL flock to reopen the directory.
func (f *file) Close() error { return f.inner.Close() }

// Fd passes through: the WAL flock locks the real descriptor.
func (f *file) Fd() uintptr { return f.inner.Fd() }
