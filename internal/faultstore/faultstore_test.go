package faultstore

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/graph"
)

// The shared crash-matrix workload: a deterministic script of single-op
// batches (FlushInterval < 0 plus a Flush per op makes every op exactly
// one WAL record) over a 10-vertex graph, with periodic snapshots every
// 3 batches and a final explicit one — so the run crosses every WAL
// append boundary and every snapshot boundary several times.
const workloadVerts = 10

type scriptOp struct {
	del  bool
	a, b int
}

func workloadScript() []scriptOp {
	return []scriptOp{
		{false, 0, 1}, {false, 1, 2}, {false, 2, 0}, // triangle
		{false, 2, 3}, {false, 3, 4}, {false, 4, 2}, // attached ring
		{false, 4, 5}, {false, 5, 6}, {false, 6, 4}, // second ring
		{del: true, a: 2, b: 0}, {false, 2, 0}, // flap the triangle edge
		{del: true, a: 3, b: 4},
		{false, 3, 0}, {false, 0, 3}, // 2-cycle
		{del: true, a: 5, b: 6},
	}
}

func bootstrap() (csc.Counter, error) {
	x, _ := csc.BuildSharded(graph.New(workloadVerts), csc.Options{})
	return x, nil
}

func workloadOpts() engine.Options {
	return engine.Options{FlushInterval: -1, SnapshotEvery: 3, UpdateWorkers: 1}
}

// runWorkload drives the script against dir through sio, ignoring every
// error past open (a crashed store makes the tail of the script fail by
// design) and closing the engine. Open failure (crash before the WAL
// header landed) is fine too: the script is simply skipped.
func runWorkload(dir string, sio engine.StoreIO) {
	e, err := engine.OpenIO(dir, sio, bootstrap, workloadOpts())
	if err != nil {
		return
	}
	for _, op := range workloadScript() {
		if op.del {
			_ = e.Delete(op.a, op.b)
		} else {
			_ = e.Insert(op.a, op.b)
		}
		e.Flush()
	}
	_ = e.Snapshot()
	_ = e.Close()
}

// oracleBytes serializes the index state after the first s script ops,
// built through the same engine batch path an undamaged run uses.
func oracleBytes(t *testing.T, s int) []byte {
	t.Helper()
	ix, err := bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(ix, workloadOpts())
	defer e.Close()
	for _, op := range workloadScript()[:s] {
		if op.del {
			err = e.Delete(op.a, op.b)
		} else {
			err = e.Insert(op.a, op.b)
		}
		if err != nil {
			t.Fatalf("oracle op: %v", err)
		}
		e.Flush()
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// prefixGraph returns the edge set after the first s script ops.
func prefixGraph(t *testing.T, s int) *graph.Digraph {
	t.Helper()
	g := graph.New(workloadVerts)
	for _, op := range workloadScript()[:s] {
		var err error
		if op.del {
			err = g.RemoveEdge(op.a, op.b)
		} else {
			err = g.AddEdge(op.a, op.b)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestCrashPointMatrix crashes the durability path at every WAL
// append/sync/truncate and snapshot create/write/sync/rename boundary
// the workload crosses (plus torn-tail variants of every WAL record
// write), then recovers each wreck with the plain filesystem and
// asserts the recovered state is byte-identical to an oracle replay of
// some consistent prefix of the script.
func TestCrashPointMatrix(t *testing.T) {
	// Counting run: enumerate how often each point is hit.
	countDir := t.TempDir()
	counter := New()
	runWorkload(countDir, counter)
	if counter.Crashed() {
		t.Fatal("counting run crashed with no faults injected")
	}

	points := []Point{WALWrite, WALSync, WALTruncate, SnapCreate, SnapWrite, SnapSync, SnapRename}
	oracles := make(map[uint64][]byte)
	total := len(workloadScript())
	cases := 0
	for _, p := range points {
		hits := counter.Hits(p)
		if hits == 0 {
			t.Fatalf("workload never touched %s — the matrix has a hole", p)
		}
		for k := 1; k <= hits; k++ {
			faults := []Fault{{Point: p, Nth: k, Crash: true}}
			if p == WALWrite {
				// Also tear this write: land a 6-byte prefix (mid-record
				// for every record, mid-header for the 8-byte header)
				// before the crash.
				faults = append(faults, Fault{Point: p, Nth: k, Crash: true, TornBytes: 6})
			}
			for _, f := range faults {
				cases++
				dir := t.TempDir()
				fio := New()
				fio.Inject(f)
				runWorkload(dir, fio)

				e2, err := engine.Open(dir, bootstrap, workloadOpts())
				if err != nil {
					t.Fatalf("%s hit %d (torn=%d): recovery failed: %v", p, k, f.TornBytes, err)
				}
				s := e2.Seq()
				if s > uint64(total) {
					t.Fatalf("%s hit %d: recovered seq %d > %d ops attempted", p, k, s, total)
				}
				want := prefixGraph(t, int(s))
				got := e2.Index().Graph()
				if got.NumEdges() != want.NumEdges() {
					t.Fatalf("%s hit %d: recovered %d edges, prefix %d has %d",
						p, k, got.NumEdges(), s, want.NumEdges())
				}
				for _, eg := range want.Edges() {
					if !got.HasEdge(eg[0], eg[1]) {
						t.Fatalf("%s hit %d: recovered graph missing edge %v of prefix %d", p, k, eg, s)
					}
				}
				var buf bytes.Buffer
				if _, err := e2.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				if _, ok := oracles[s]; !ok {
					oracles[s] = oracleBytes(t, int(s))
				}
				if !bytes.Equal(buf.Bytes(), oracles[s]) {
					t.Fatalf("%s hit %d (torn=%d): recovered index not byte-identical to oracle at prefix %d",
						p, k, f.TornBytes, s)
				}
				if err := e2.Close(); err != nil {
					t.Fatalf("%s hit %d: close after recovery: %v", p, k, err)
				}
			}
		}
	}
	t.Logf("crash matrix: %d crash cases recovered byte-identical", cases)
}

// A store whose fsync fails persistently must not kill the engine or
// let served state drift from the log: the engine retries with rollback
// (counted), then degrades to read-only — updates refused, reads fine —
// and a successful snapshot on a healed disk restores write service.
func TestPersistentWALFailureDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	fio := New()
	opts := workloadOpts()
	opts.WALRetry = 2
	opts.SnapshotEvery = -1
	e, err := engine.OpenIO(dir, fio, bootstrap, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	diskDead := errors.New("disk on fire")
	fio.Inject(Fault{Point: WALSync, Err: diskDead}) // sticky
	if err := e.Insert(1, 2); err != nil {
		t.Fatal(err) // the enqueue is accepted; the flush fails
	}
	e.Flush()

	if err := e.Err(); !errors.Is(err, diskDead) {
		t.Fatalf("Err = %v, want the injected disk error", err)
	}
	if !e.ReadOnly() {
		t.Fatal("persistent WAL failure did not degrade to read-only")
	}
	st := e.Stats()
	if st.WALRetries != 2 {
		t.Fatalf("WALRetries = %d, want 2", st.WALRetries)
	}
	if !st.ReadOnly {
		t.Fatal("Stats.ReadOnly false in read-only mode")
	}
	if e.Index().Graph().HasEdge(1, 2) {
		t.Fatal("dropped batch leaked into served state")
	}
	if err := e.Insert(2, 3); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("enqueue while read-only: err %v, want ErrReadOnly", err)
	}
	if l, _ := e.CycleCount(0); l != bfscount.NoCycle {
		t.Fatalf("read while read-only: length %d", l)
	}

	// Disk healed: one successful snapshot restores write service.
	fio.Clear()
	if err := e.Snapshot(); err != nil {
		t.Fatalf("healing snapshot: %v", err)
	}
	if e.ReadOnly() || e.Err() != nil {
		t.Fatalf("snapshot did not heal: readOnly=%v err=%v", e.ReadOnly(), e.Err())
	}
	for _, eg := range [][2]int{{1, 2}, {2, 0}} {
		if err := e.Insert(eg[0], eg[1]); err != nil {
			t.Fatalf("insert after heal: %v", err)
		}
	}
	e.Flush()
	if l, _ := e.CycleCount(0); l != 3 {
		t.Fatalf("triangle after heal: length %d, want 3", l)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery agrees with everything acknowledged after the heal.
	e2, err := engine.Open(dir, bootstrap, workloadOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if l, _ := e2.CycleCount(0); l != 3 {
		t.Fatalf("recovered triangle: length %d, want 3", l)
	}
}

// A wedged writer — stalled inside a slow fsync with the mailbox full —
// must not deadlock callers: InsertCtx returns when its deadline
// passes, and the overload is visible in /stats' counters.
func TestWedgedWriterBoundedEnqueue(t *testing.T) {
	dir := t.TempDir()
	fio := New()
	opts := workloadOpts()
	opts.MailboxSize = 1
	e, err := engine.OpenIO(dir, fio, bootstrap, opts)
	if err != nil {
		t.Fatal(err)
	}

	fio.Inject(Fault{Point: WALSync, Delay: 500 * time.Millisecond})
	if err := e.Insert(0, 1); err != nil { // writer picks this up and wedges
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := e.Insert(1, 2); err != nil { // fills the 1-slot mailbox
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	startAt := time.Now()
	err = e.InsertCtx(ctx, 2, 0)
	elapsed := time.Since(startAt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("InsertCtx against wedged writer: err %v, want DeadlineExceeded", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("InsertCtx took %v — blocked on the wedged writer instead of its deadline", elapsed)
	}
	if got := e.Stats().OpsOverload; got != 1 {
		t.Fatalf("OpsOverload = %d, want 1", got)
	}

	fio.Clear() // un-wedge so close is fast
	e.Flush()
	if !e.Index().Graph().HasEdge(1, 2) {
		t.Fatal("mailed op lost after writer un-wedged")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
