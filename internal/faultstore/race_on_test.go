//go:build race

package faultstore

// raceEnabled reports whether this test binary runs under the race
// detector; the stress test shrinks its workload accordingly.
const raceEnabled = true
