//go:build !race

package faultstore

const raceEnabled = false
