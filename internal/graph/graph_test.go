package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddRemoveBasics(t *testing.T) {
	g := New(4)
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 0)
	if g.NumEdges() != 3 {
		t.Fatalf("m=%d, want 3", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge direction confusion")
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 || g.Degree(0) != 2 {
		t.Fatalf("degrees of 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) || g.NumEdges() != 2 {
		t.Fatal("RemoveEdge did not remove")
	}
}

func mustAdd(t *testing.T, g *Digraph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop err = %v", err)
	}
	if err := g.AddEdge(0, 5); !errors.Is(err, ErrVertexRange) {
		t.Errorf("range err = %v", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative err = %v", err)
	}
	mustAdd(t, g, 0, 1)
	if err := g.AddEdge(0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("dup err = %v", err)
	}
	if err := g.RemoveEdge(1, 0); !errors.Is(err, ErrMissingEdge) {
		t.Errorf("missing err = %v", err)
	}
	if err := g.RemoveEdge(0, 9); !errors.Is(err, ErrVertexRange) {
		t.Errorf("remove range err = %v", err)
	}
}

func TestMinInOutDegree(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 3, 0)
	if got := g.MinInOutDegree(0); got != 1 {
		t.Errorf("MinInOutDegree(0) = %d, want 1", got)
	}
	if got := g.MinInOutDegree(3); got != 0 {
		t.Errorf("MinInOutDegree(3) = %d, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	c := g.Clone()
	mustAdd(t, c, 1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone shares storage with original")
	}
	if !Equal(g, g.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("Reverse wrong edges")
	}
	if !Equal(g, r.Reverse()) {
		t.Fatal("double reverse != original")
	}
}

func TestEdgeListRoundtrip(t *testing.T) {
	g := New(5)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 4, 0)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, g2) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestReadEdgeListSkipsDirt(t *testing.T) {
	in := "# comment\n4 0\n0 1\n0 1\n2 2\n3 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (dup and self-loop skipped)", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"", "x y\n", "3 1\n0 one\n", "3\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

// Property: a random sequence of valid adds and removes keeps out/in
// adjacency mirrored and the edge count consistent.
func TestMutationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := New(n)
		type edge struct{ u, v int }
		var present []edge
		for step := 0; step < 200; step++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				if err := g.RemoveEdge(u, v); err != nil {
					return false
				}
				for i, e := range present {
					if e.u == u && e.v == v {
						present = append(present[:i], present[i+1:]...)
						break
					}
				}
			} else {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
				present = append(present, edge{u, v})
			}
		}
		if g.NumEdges() != len(present) {
			return false
		}
		// in/out mirrors.
		for v := 0; v < n; v++ {
			for _, w := range g.Out(v) {
				if !contains(g.In(int(w)), int32(v)) {
					return false
				}
			}
			for _, w := range g.In(v) {
				if !contains(g.Out(int(w)), int32(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 2, 1)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("Edges len = %d", len(es))
	}
	seen := map[[2]int]bool{}
	for _, e := range es {
		seen[e] = true
	}
	if !seen[[2]int{0, 1}] || !seen[[2]int{2, 1}] {
		t.Fatalf("Edges = %v", es)
	}
}
