// Package graph provides the dynamic directed-graph substrate the index
// is built on: adjacency lists with O(deg) edge insertion and deletion, a
// reverse view, and plain-text edge-list I/O.
//
// Vertices are dense integers [0, N). The paper's graphs are directed and
// self-loop free (§VI-A), so AddEdge rejects self-loops; parallel edges are
// rejected as well since the algorithms treat E as a set.
package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Common errors returned by edge mutations.
var (
	ErrSelfLoop       = errors.New("graph: self-loops are not allowed")
	ErrVertexRange    = errors.New("graph: vertex out of range")
	ErrDuplicateEdge  = errors.New("graph: edge already exists")
	ErrMissingEdge    = errors.New("graph: edge does not exist")
	ErrMalformedInput = errors.New("graph: malformed edge list")
)

// Digraph is a mutable directed graph over vertices 0..n-1.
// The zero value is an empty graph with no vertices.
type Digraph struct {
	out [][]int32
	in  [][]int32
	m   int
}

// New returns an empty directed graph with n vertices and no edges.
func New(n int) *Digraph {
	return &Digraph{
		out: make([][]int32, n),
		in:  make([][]int32, n),
	}
}

// FromEdges builds a graph with n vertices and the given (u,v) edge pairs.
// It fails fast on the first invalid edge.
func FromEdges(n int, edges [][2]int) (*Digraph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("edge (%d,%d): %w", e[0], e[1], err)
		}
	}
	return g, nil
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return len(g.out) }

// AddVertex appends a fresh isolated vertex and returns its id.
func (g *Digraph) AddVertex() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int { return g.m }

// OutDegree returns |nbr_out(v)|.
func (g *Digraph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns |nbr_in(v)|.
func (g *Digraph) InDegree(v int) int { return len(g.in[v]) }

// Degree returns the paper's degree(v): in-degree plus out-degree.
func (g *Digraph) Degree(v int) int { return len(g.out[v]) + len(g.in[v]) }

// MinInOutDegree returns min(|nbr_in(v)|, |nbr_out(v)|), the quantity the
// paper clusters query vertices by (§VI-A).
func (g *Digraph) MinInOutDegree(v int) int {
	if len(g.in[v]) < len(g.out[v]) {
		return len(g.in[v])
	}
	return len(g.out[v])
}

// Out returns the out-neighbor slice of v. The slice is owned by the graph
// and must not be mutated or retained across mutations.
func (g *Digraph) Out(v int) []int32 { return g.out[v] }

// In returns the in-neighbor slice of v with the same aliasing caveat as Out.
func (g *Digraph) In(v int) []int32 { return g.in[v] }

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Digraph) HasEdge(u, v int) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	// Scan the smaller of u's out-list and v's in-list.
	if len(g.out[u]) <= len(g.in[v]) {
		return contains(g.out[u], int32(v))
	}
	return contains(g.in[v], int32(u))
}

func contains(s []int32, x int32) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

func (g *Digraph) valid(v int) bool { return v >= 0 && v < len(g.out) }

// AddEdge inserts the directed edge (u,v).
func (g *Digraph) AddEdge(u, v int) error {
	if !g.valid(u) || !g.valid(v) {
		return ErrVertexRange
	}
	if u == v {
		return ErrSelfLoop
	}
	if g.HasEdge(u, v) {
		return ErrDuplicateEdge
	}
	g.out[u] = append(g.out[u], int32(v))
	g.in[v] = append(g.in[v], int32(u))
	g.m++
	return nil
}

// RemoveEdge deletes the directed edge (u,v).
func (g *Digraph) RemoveEdge(u, v int) error {
	if !g.valid(u) || !g.valid(v) {
		return ErrVertexRange
	}
	ok1 := removeOne(&g.out[u], int32(v))
	if !ok1 {
		return ErrMissingEdge
	}
	removeOne(&g.in[v], int32(u))
	g.m--
	return nil
}

func removeOne(s *[]int32, x int32) bool {
	list := *s
	for i, y := range list {
		if y == x {
			list[i] = list[len(list)-1]
			*s = list[:len(list)-1]
			return true
		}
	}
	return false
}

// Edges returns all directed edges as (u,v) pairs in out-adjacency order.
func (g *Digraph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u := range g.out {
		for _, v := range g.out[u] {
			edges = append(edges, [2]int{u, int(v)})
		}
	}
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		out: make([][]int32, len(g.out)),
		in:  make([][]int32, len(g.in)),
		m:   g.m,
	}
	for v := range g.out {
		if len(g.out[v]) > 0 {
			c.out[v] = append([]int32(nil), g.out[v]...)
		}
		if len(g.in[v]) > 0 {
			c.in[v] = append([]int32(nil), g.in[v]...)
		}
	}
	return c
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := &Digraph{
		out: make([][]int32, len(g.out)),
		in:  make([][]int32, len(g.in)),
		m:   g.m,
	}
	for v := range g.out {
		if len(g.in[v]) > 0 {
			r.out[v] = append([]int32(nil), g.in[v]...)
		}
		if len(g.out[v]) > 0 {
			r.in[v] = append([]int32(nil), g.out[v]...)
		}
	}
	return r
}

// WriteEdgeList writes the graph as "n m" followed by one "u v" line per
// edge — the same plain format SNAP distributes.
func (g *Digraph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for u := range g.out {
		for _, v := range g.out[u] {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' are comments. Self-loops and duplicates in the input are skipped
// rather than rejected, matching how the paper's datasets are cleaned.
func ReadEdgeList(r io.Reader) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Digraph
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("%w: %q", ErrMalformedInput, line)
		}
		a, err1 := strconv.Atoi(f[0])
		b, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: %q", ErrMalformedInput, line)
		}
		if g == nil {
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("%w: negative header", ErrMalformedInput)
			}
			g = New(a)
			continue
		}
		err := g.AddEdge(a, b)
		if err != nil && !errors.Is(err, ErrSelfLoop) && !errors.Is(err, ErrDuplicateEdge) {
			return nil, fmt.Errorf("edge (%d,%d): %w", a, b, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("%w: empty input", ErrMalformedInput)
	}
	return g, nil
}

// Equal reports whether two graphs have identical vertex counts and edge
// sets (adjacency order is ignored).
func Equal(a, b *Digraph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		if len(a.out[u]) != len(b.out[u]) {
			return false
		}
		for _, v := range a.out[u] {
			if !contains(b.out[u], v) {
				return false
			}
		}
	}
	return true
}
