// Package gen generates the synthetic directed graphs that stand in for
// the paper's nine SNAP/Konect datasets (Table IV) and the MAHINDAS case
// study. The environment is offline, so the real downloads are replaced
// with deterministic generators that reproduce the structural features the
// experiments are sensitive to: degree skew (query-time clustering),
// reciprocity (shortest cycle lengths), and small-world diameters (update
// locality). Every generator is a pure function of its parameters and
// seed.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Config is shared by the random generators.
type Config struct {
	N    int   // number of vertices
	M    int   // target number of edges (best effort; duplicates skipped)
	Seed int64 // PRNG seed; same seed ⇒ same graph

	// NoReciprocal suppresses 2-cycles (v⇄w), keeping shortest cycle
	// lengths ≥ 3 as in the paper's cycle definition.
	NoReciprocal bool
}

// ErdosRenyi draws M uniform random directed edges over N vertices.
func ErdosRenyi(cfg Config) *graph.Digraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.N)
	addRandomEdges(g, r, cfg.M, uniformPicker(cfg.N, r), cfg.NoReciprocal)
	return g
}

// PowerLaw draws edges from a directed Chung-Lu model: endpoint
// probabilities follow power laws with the given exponents (typical
// social/web graphs sit between 2 and 3; smaller means heavier skew).
// OutExp shapes source selection, InExp target selection.
func PowerLaw(cfg Config, outExp, inExp float64) *graph.Digraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.N)
	src := zipfPicker(cfg.N, outExp, r)
	dst := zipfPicker(cfg.N, inExp, r)
	addRandomEdgesBi(g, r, cfg.M, src, dst, cfg.NoReciprocal)
	return g
}

// SmallWorld builds a directed ring lattice with k out-neighbors per
// vertex and rewires each edge's target with probability p (a directed
// Watts-Strogatz model): high clustering, short diameter.
func SmallWorld(cfg Config, k int, p float64) *graph.Digraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.N)
	for v := 0; v < cfg.N; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % cfg.N
			if r.Float64() < p {
				w = r.Intn(cfg.N)
			}
			tryAdd(g, v, w, cfg.NoReciprocal)
		}
	}
	return g
}

// Copy builds a web-like graph with the copy model: each new vertex
// copies a random prototype's out-links with probability copyProb and
// otherwise links to random earlier vertices, then adds a back-link with
// probability backProb — producing the dense bow-tie communities and
// reciprocity typical of web crawls.
func Copy(cfg Config, outDeg int, copyProb, backProb float64) *graph.Digraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.N)
	// Seed clique-ish core.
	core := outDeg + 1
	if core > cfg.N {
		core = cfg.N
	}
	for v := 0; v < core; v++ {
		for w := 0; w < core; w++ {
			if v != w {
				tryAdd(g, v, w, cfg.NoReciprocal)
			}
		}
	}
	for v := core; v < cfg.N; v++ {
		proto := r.Intn(v)
		links := 0
		for _, u := range g.Out(proto) {
			if links >= outDeg {
				break
			}
			if r.Float64() < copyProb && int(u) != v {
				if tryAdd(g, v, int(u), cfg.NoReciprocal) {
					links++
				}
			}
		}
		for links < outDeg {
			w := r.Intn(v)
			if tryAdd(g, v, w, cfg.NoReciprocal) {
				links++
			} else if g.OutDegree(v) >= v {
				break
			}
		}
		if r.Float64() < backProb {
			tryAdd(g, proto, v, cfg.NoReciprocal)
		}
	}
	return g
}

// Star builds an email-like graph: a small set of hub vertices exchanges
// mail with everyone, the long tail barely participates. hubFrac controls
// the hub population share.
func Star(cfg Config, hubFrac float64) *graph.Digraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.N)
	hubs := int(math.Max(1, hubFrac*float64(cfg.N)))
	pick := func() int {
		// 70% of endpoints land on a hub.
		if r.Float64() < 0.7 {
			return r.Intn(hubs)
		}
		return r.Intn(cfg.N)
	}
	addRandomEdgesBi(g, r, cfg.M, pick, pick, cfg.NoReciprocal)
	return g
}

func uniformPicker(n int, r *rand.Rand) func() int {
	return func() int { return r.Intn(n) }
}

// zipfPicker returns vertices with probability ∝ (v+1)^-1/(exp-1) weights,
// approximated by inverse-CDF sampling over precomputed cumulative
// weights. Exponent exp > 1.
func zipfPicker(n int, exp float64, r *rand.Rand) func() int {
	w := make([]float64, n)
	total := 0.0
	alpha := 1.0 / (exp - 1.0)
	for i := range w {
		total += math.Pow(float64(i+1), -alpha)
		w[i] = total
	}
	// The weight ordering correlates rank with popularity; relabel through
	// a random permutation so vertex ids look arbitrary.
	perm := r.Perm(n)
	return func() int {
		x := r.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if w[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return perm[lo]
	}
}

func addRandomEdges(g *graph.Digraph, r *rand.Rand, m int, pick func() int, noRecip bool) {
	addRandomEdgesBi(g, r, m, pick, pick, noRecip)
}

func addRandomEdgesBi(g *graph.Digraph, r *rand.Rand, m int, src, dst func() int, noRecip bool) {
	attempts := 0
	maxAttempts := 20 * m
	for g.NumEdges() < m && attempts < maxAttempts {
		attempts++
		tryAdd(g, src(), dst(), noRecip)
	}
}

func tryAdd(g *graph.Digraph, u, v int, noRecip bool) bool {
	if u == v {
		return false
	}
	if noRecip && g.HasEdge(v, u) {
		return false
	}
	return g.AddEdge(u, v) == nil
}

// Transaction is the case-study network: a background payment graph with
// planted money-laundering rings (Figure 1 / Figure 13). Criminal accounts
// sit on many short cycles routed through middleman and agent accounts.
type Transaction struct {
	G *graph.Digraph
	// Criminals lists the planted accounts whose SCCnt should stand out.
	Criminals []int
	// RingLen is the planted cycle length.
	RingLen int
}

// TransactionNetwork plants `criminals` accounts, each on `rings` distinct
// cycles of length ringLen, over an Erdős–Rényi background of n vertices
// and m edges. Background edges never create cycles shorter than ringLen
// through the planted accounts (best effort: the planted accounts take no
// background edges at all).
func TransactionNetwork(n, m, criminals, rings, ringLen int, seed int64) Transaction {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	tx := Transaction{G: g, RingLen: ringLen}
	if ringLen < 2 {
		ringLen = 3
	}
	// Reserve the first vertices: criminals, then ring intermediaries.
	next := criminals
	for c := 0; c < criminals; c++ {
		tx.Criminals = append(tx.Criminals, c)
		for k := 0; k < rings; k++ {
			prev := c
			for step := 0; step < ringLen-1; step++ {
				mid := next
				next++
				if next > n {
					panic("gen: transaction network too small for planted rings")
				}
				mustAddTx(g, prev, mid)
				prev = mid
			}
			mustAddTx(g, prev, c)
		}
	}
	// Background traffic among the remaining accounts only; reciprocal
	// pairs are suppressed so no background account sits on a 2-cycle.
	if next < n-1 {
		for g.NumEdges() < m {
			u := next + r.Intn(n-next)
			v := next + r.Intn(n-next)
			if u == v || g.HasEdge(v, u) {
				continue
			}
			_ = g.AddEdge(u, v)
		}
	}
	return tx
}

func mustAddTx(g *graph.Digraph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err) // planted vertices are fresh, duplicates impossible
	}
}
