package gen

import (
	"sort"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 200, M: 800, Seed: 5}
	builders := map[string]func() *graph.Digraph{
		"er":   func() *graph.Digraph { return ErdosRenyi(cfg) },
		"pl":   func() *graph.Digraph { return PowerLaw(cfg, 2.2, 2.0) },
		"sw":   func() *graph.Digraph { return SmallWorld(cfg, 4, 0.1) },
		"copy": func() *graph.Digraph { return Copy(cfg, 4, 0.6, 0.3) },
		"star": func() *graph.Digraph { return Star(cfg, 0.02) },
	}
	for name, build := range builders {
		a, b := build(), build()
		if !graph.Equal(a, b) {
			t.Errorf("%s: same seed produced different graphs", name)
		}
		if a.NumVertices() != cfg.N {
			t.Errorf("%s: n = %d", name, a.NumVertices())
		}
		if a.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
}

func TestEdgeTargetsApproximatelyMet(t *testing.T) {
	for _, cfg := range []Config{
		{N: 500, M: 2000, Seed: 1},
		{N: 100, M: 400, Seed: 2},
	} {
		g := ErdosRenyi(cfg)
		if g.NumEdges() != cfg.M {
			t.Errorf("ER: m = %d, want %d", g.NumEdges(), cfg.M)
		}
		p := PowerLaw(cfg, 2.2, 2.0)
		if p.NumEdges() < cfg.M/2 {
			t.Errorf("PowerLaw: m = %d far below target %d", p.NumEdges(), cfg.M)
		}
	}
}

func TestNoReciprocal(t *testing.T) {
	for _, g := range []*graph.Digraph{
		ErdosRenyi(Config{N: 120, M: 700, Seed: 3, NoReciprocal: true}),
		PowerLaw(Config{N: 120, M: 700, Seed: 3, NoReciprocal: true}, 2.1, 2.1),
		SmallWorld(Config{N: 120, Seed: 3, NoReciprocal: true}, 5, 0.2),
	} {
		for _, e := range g.Edges() {
			if g.HasEdge(e[1], e[0]) {
				t.Fatalf("reciprocal pair %v survived NoReciprocal", e)
			}
		}
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	cfg := Config{N: 1000, M: 5000, Seed: 7}
	er := ErdosRenyi(cfg)
	pl := PowerLaw(cfg, 2.0, 2.0)
	if maxDegree(pl) <= maxDegree(er) {
		t.Errorf("power law max degree %d not heavier than ER %d",
			maxDegree(pl), maxDegree(er))
	}
}

func maxDegree(g *graph.Digraph) int {
	m := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

func TestStarConcentratesDegree(t *testing.T) {
	g := Star(Config{N: 1000, M: 5000, Seed: 4}, 0.01)
	degrees := make([]int, g.NumVertices())
	for v := range degrees {
		degrees[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	top := 0
	for _, d := range degrees[:10] {
		top += d
	}
	if top < g.NumEdges()/2 {
		t.Errorf("top-10 vertices carry only %d of %d edge endpoints", top, 2*g.NumEdges())
	}
}

func TestTransactionNetworkPlantsRings(t *testing.T) {
	tx := TransactionNetwork(500, 1000, 3, 4, 4, 11)
	if len(tx.Criminals) != 3 {
		t.Fatalf("criminals = %v", tx.Criminals)
	}
	for _, c := range tx.Criminals {
		l, cnt := bfscount.CycleCount(tx.G, c)
		if l != 4 {
			t.Fatalf("criminal %d shortest cycle length %d, want 4", c, l)
		}
		if cnt != 4 {
			t.Fatalf("criminal %d SCCnt = %d, want 4 planted rings", c, cnt)
		}
	}
	// Background accounts must not accidentally beat the planted accounts
	// on count at the planted length or shorter.
	for v := 100; v < 120; v++ {
		l, cnt := bfscount.CycleCount(tx.G, v)
		if l != bfscount.NoCycle && l <= tx.RingLen && cnt >= 4 {
			t.Fatalf("background vertex %d rivals planted rings: (%d,%d)", v, l, cnt)
		}
	}
}

func TestTransactionNetworkTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized network")
		}
	}()
	TransactionNetwork(5, 10, 3, 4, 5, 1)
}

func TestCopyModelReciprocity(t *testing.T) {
	g := Copy(Config{N: 400, M: 0, Seed: 9}, 5, 0.5, 0.5)
	recip := 0
	for _, e := range g.Edges() {
		if g.HasEdge(e[1], e[0]) {
			recip++
		}
	}
	if recip == 0 {
		t.Error("copy model with backProb produced no reciprocal edges")
	}
}
