package order

import (
	"encoding/binary"
	"testing"

	"repro/internal/graph"
	"repro/internal/testgraphs"
)

func ring(n int) *graph.Digraph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		_ = g.AddEdge(v, (v+1)%n)
	}
	return g
}

func TestStrategyStringParseRoundTrip(t *testing.T) {
	for s := Degree; s.Valid(); s++ {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseStrategy(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
	if Strategy(250).Valid() {
		t.Error("out-of-range strategy valid")
	}
}

// Wire values are a serialization contract (the v4 format stores them):
// appending is fine, renumbering is corruption.
func TestStrategyWireValuesFrozen(t *testing.T) {
	want := map[Strategy]uint8{Degree: 0, ID: 1, Random: 2, Betweenness: 3, Coverage: 4, Hits: 5}
	for s, w := range want {
		if uint8(s) != w {
			t.Fatalf("strategy %s has wire value %d, want %d", s, uint8(s), w)
		}
	}
}

// Every strategy must be a pure function of (graph, seed): two computes
// yield the identical total order, on every corpus graph. This is what
// makes repeated builds byte-identical and the v4 provenance tag
// trustworthy.
func TestStrategyDeterminism(t *testing.T) {
	for _, ng := range testgraphs.Corpus() {
		for s := Degree; s.Valid(); s++ {
			a, err := Compute(ng.G, s, 42)
			if err != nil {
				t.Fatalf("%s/%s: %v", ng.Name, s, err)
			}
			b, err := Compute(ng.G, s, 42)
			if err != nil {
				t.Fatalf("%s/%s: %v", ng.Name, s, err)
			}
			if a.Len() != b.Len() {
				t.Fatalf("%s/%s: lengths differ", ng.Name, s)
			}
			for r := 0; r < a.Len(); r++ {
				if a.VertexAt(r) != b.VertexAt(r) {
					t.Fatalf("%s/%s: rank %d differs: %d vs %d", ng.Name, s, r, a.VertexAt(r), b.VertexAt(r))
				}
			}
		}
	}
}

// On a uniform directed ring every vertex is interchangeable, so every
// score-based strategy ties everywhere and must fall back to vertex id —
// the tie-break that keeps orders deterministic.
func TestStrategyTieBreaksOnVertexID(t *testing.T) {
	g := ring(12)
	for _, s := range []Strategy{Degree, Betweenness, Coverage, Hits} {
		o, err := Compute(g, s, 7)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for r := 0; r < o.Len(); r++ {
			if o.VertexAt(r) != r {
				t.Fatalf("%s: rank %d is vertex %d, want id order on uniform ring", s, r, o.VertexAt(r))
			}
		}
	}
	// ByWeights with uniform weights is the same situation.
	o := ByWeights(g, make([]float64, 12))
	for r := 0; r < o.Len(); r++ {
		if o.VertexAt(r) != r {
			t.Fatalf("ByWeights: rank %d is vertex %d, want id order", r, o.VertexAt(r))
		}
	}
}

func TestComputeRejectsUnknownStrategy(t *testing.T) {
	if _, err := Compute(ring(3), Strategy(99), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestByWeightsRanksHeavyFirst(t *testing.T) {
	g := ring(5)
	o := ByWeights(g, []float64{0, 10, 3, 10, 0})
	// 10s first (tie → id: 1 then 3), then 3, then 0s by id.
	want := []int{1, 3, 2, 0, 4}
	for r, v := range want {
		if o.VertexAt(r) != v {
			t.Fatalf("rank %d: vertex %d, want %d", r, o.VertexAt(r), v)
		}
	}
}

func TestByWeightsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched weights length")
		}
	}()
	ByWeights(ring(4), make([]float64, 3))
}

func TestDefaultSamples(t *testing.T) {
	if DefaultSamples(10) != 10 {
		t.Fatalf("DefaultSamples(10) = %d", DefaultSamples(10))
	}
	if DefaultSamples(100000) != 64 {
		t.Fatalf("DefaultSamples(100000) = %d", DefaultSamples(100000))
	}
}

func TestVertexListRoundTrip(t *testing.T) {
	for _, ng := range testgraphs.Corpus() {
		o := ByDegree(ng.G)
		back, err := FromVertexList(o.VertexList())
		if err != nil {
			t.Fatalf("%s: %v", ng.Name, err)
		}
		for r := 0; r < o.Len(); r++ {
			if o.VertexAt(r) != back.VertexAt(r) {
				t.Fatalf("%s: rank %d differs after round-trip", ng.Name, r)
			}
		}
	}
}

// fuzzDecodeList maps fuzz bytes to a vertex list: consecutive
// little-endian int16s, so negatives, duplicates, and out-of-range ids
// all arise naturally from byte mutations.
func fuzzDecodeList(data []byte) []int {
	list := make([]int, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		list = append(list, int(int16(binary.LittleEndian.Uint16(data[i:]))))
	}
	return list
}

// FuzzFromVertexList drives the permutation validator with hostile
// lists. Accepted inputs must be genuine permutations that survive a
// VertexList round-trip; everything else must error rather than produce
// an order with dangling or duplicated ranks (which would corrupt every
// downstream labeling).
func FuzzFromVertexList(f *testing.F) {
	f.Add([]byte{})                                   // empty: valid zero-length order
	f.Add([]byte{0, 0})                               // [0]: trivial permutation
	f.Add([]byte{2, 0, 0, 0, 1, 0})                   // [2 0 1]: valid
	f.Add([]byte{0, 0, 0, 0, 1, 0})                   // [0 0 1]: duplicate
	f.Add([]byte{0, 0, 3, 0})                         // [0 3]: out of range
	f.Add([]byte{0, 0, 0xff, 0xff})                   // [0 -1]: negative
	f.Add([]byte{0xff, 0x7f, 0, 0})                   // [32767 0]: far out of range
	f.Add([]byte{1, 0, 0, 0, 3, 0, 2, 0, 4, 0, 5, 0}) // [1 0 3 2 4 5]: valid
	f.Fuzz(func(t *testing.T, data []byte) {
		list := fuzzDecodeList(data)
		o, err := FromVertexList(list)
		if err != nil {
			return
		}
		if o.Len() != len(list) {
			t.Fatalf("Len %d != input %d", o.Len(), len(list))
		}
		seen := make(map[int]bool, len(list))
		for r := 0; r < o.Len(); r++ {
			v := o.VertexAt(r)
			if v < 0 || v >= o.Len() {
				t.Fatalf("rank %d holds out-of-range vertex %d", r, v)
			}
			if seen[v] {
				t.Fatalf("vertex %d appears at two ranks", v)
			}
			seen[v] = true
			if o.Rank(v) != r {
				t.Fatalf("Rank(VertexAt(%d)) = %d", r, o.Rank(v))
			}
			if v != list[r] {
				t.Fatalf("rank %d: accepted order disagrees with input list", r)
			}
		}
		back := o.VertexList()
		for i := range list {
			if back[i] != list[i] {
				t.Fatalf("VertexList round-trip differs at %d", i)
			}
		}
	})
}
