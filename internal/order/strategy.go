// Ordering strategies. The hub order is the single biggest lever on
// label size ("Algorithmic and Hardness Results for the Hub Labeling
// Problem", Angelidakis et al.): a good order puts the vertices that
// intersect the most shortest cycles first, so every BFS prunes earlier
// and every label stays shorter. Degree is the paper's heuristic; the
// strategies here estimate cycle centrality directly from a sample of
// shortest-cycle BFS trees and consistently produce smaller labels on
// graphs where degree is uninformative (near-regular topologies).
//
// Every strategy breaks ties on ascending vertex id as the final key, so
// repeated builds over the same graph are byte-identical.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Strategy names a total-order heuristic. The numeric values are a wire
// format (the v4 index serialization tags each shard with the strategy
// that produced its order) — never renumber, only append.
type Strategy uint8

const (
	// Degree ranks by descending total degree — the paper's Example 4
	// ordering and the zero value, so existing call sites keep their
	// behavior.
	Degree Strategy = iota
	// ID ranks by ascending vertex id (deterministic tests).
	ID
	// Random is a seeded uniform permutation (ablation baseline).
	Random
	// Betweenness ranks by sampled shortest-cycle betweenness: the
	// expected number of sampled shortest cycles running through each
	// vertex.
	Betweenness
	// Coverage ranks by greedy set cover over materialized sampled
	// shortest cycles: each pick covers the most yet-uncovered cycles.
	Coverage
	// Hits marks an order produced online from live per-hub hit
	// counters (ByWeights). It is a provenance tag, not recomputable
	// offline: Compute falls back to degree.
	Hits

	numStrategies // sentinel for validation
)

// String returns the strategy's canonical flag/wire name.
func (s Strategy) String() string {
	switch s {
	case Degree:
		return "degree"
	case ID:
		return "id"
	case Random:
		return "random"
	case Betweenness:
		return "betweenness"
	case Coverage:
		return "coverage"
	case Hits:
		return "hits"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// Valid reports whether s is a known strategy value (wire validation).
func (s Strategy) Valid() bool { return s < numStrategies }

// ParseStrategy resolves a canonical name back to its Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for s := Degree; s < numStrategies; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("order: unknown strategy %q", name)
}

// DefaultSamples is the shortest-cycle sample size Compute uses for the
// sampling strategies: enough for stable ranks at shard scale, cheap
// enough to run inside a build.
func DefaultSamples(n int) int {
	const limit = 64
	if n < limit {
		return n
	}
	return limit
}

// Compute builds an order for g under the named strategy. The seed feeds
// the sampling strategies (and Random); fixed seed means deterministic
// output. Hits is online-only and falls back to degree — an offline
// rebuild has no live hit counters to consult.
func Compute(g *graph.Digraph, s Strategy, seed int64) (*Order, error) {
	switch s {
	case Degree, Hits:
		return ByDegree(g), nil
	case ID:
		return ByID(g.NumVertices()), nil
	case Random:
		return ByRandom(g.NumVertices(), seed), nil
	case Betweenness:
		return ByBetweenness(g, DefaultSamples(g.NumVertices()), seed), nil
	case Coverage:
		return ByCoverage(g, DefaultSamples(g.NumVertices()), seed), nil
	}
	return nil, fmt.Errorf("order: cannot compute %v", s)
}

// sampleVertices picks up to k distinct vertices of g, seeded and
// deterministic.
func sampleVertices(n, k int, seed int64) []int {
	if k >= n {
		vs := make([]int, n)
		for i := range vs {
			vs[i] = i
		}
		return vs
	}
	return rand.New(rand.NewSource(seed)).Perm(n)[:k]
}

// cycleBFS runs the Algorithm-1 shortest-cycle BFS from vq, returning the
// dist/cnt arrays, the BFS queue (dequeue order), and the cycle length
// (NoCycle when vq lies on no cycle). dist and cnt are caller-provided
// scratch of length n with dist primed to -1; the queue returned has every
// enqueued vertex, dequeued prefix in FIFO order. Mirrors
// bfscount.CycleCount but keeps the tree, which the strategies consume.
func cycleBFS(g *graph.Digraph, vq int, dist []int32, cnt []float64, queue []int32) (int, []int32) {
	queue = queue[:0]
	for _, u := range g.Out(vq) {
		if dist[u] == -1 {
			dist[u] = 1
			cnt[u] = 1
			queue = append(queue, u)
		}
	}
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		if int(w) == vq {
			return int(dist[w]), queue
		}
		for _, wn := range g.Out(int(w)) {
			switch {
			case dist[wn] == -1:
				dist[wn] = dist[w] + 1
				cnt[wn] = cnt[w]
				queue = append(queue, wn)
			case dist[wn] == dist[w]+1:
				cnt[wn] += cnt[w]
			}
		}
	}
	return -1, queue
}

// ByBetweenness ranks vertices by sampled shortest-cycle betweenness.
// For each of up to `samples` seeded sample vertices vq it runs the
// shortest-cycle BFS, then a backward pass over the shortest-path DAG
// counting, for every vertex w, forward·backward path products — the
// number of shortest cycles through vq that contain w. Credits accumulate
// across samples; rank is descending credit, then descending degree, then
// ascending id.
func ByBetweenness(g *graph.Digraph, samples int, seed int64) *Order {
	n := g.NumVertices()
	credit := make([]float64, n)
	dist := make([]int32, n)
	cnt := make([]float64, n)
	back := make([]float64, n)
	var queue []int32
	for i := range dist {
		dist[i] = -1
	}
	for _, vq := range sampleVertices(n, samples, seed) {
		var l int
		l, queue = cycleBFS(g, vq, dist, cnt, queue)
		if l >= 0 {
			// Backward pass: back[w] = #shortest w→vq paths of length
			// l-dist[w]. Reverse dequeue order visits non-increasing
			// distance, so every successor is final before its
			// predecessors read it. Vertices at distance l other than vq
			// cannot lie on a shortest cycle and keep back = 0.
			for _, w := range queue {
				back[w] = 0
			}
			back[vq] = 1
			for i := len(queue) - 1; i >= 0; i-- {
				w := queue[i]
				if int(w) == vq || int(dist[w]) >= l {
					continue
				}
				for _, x := range g.Out(int(w)) {
					if dist[x] == dist[w]+1 {
						back[w] += back[x]
					}
				}
			}
			total := cnt[vq] // #shortest cycles through vq
			for _, w := range queue {
				if int(dist[w]) < l {
					credit[w] += cnt[w] * back[w]
				}
			}
			credit[vq] += total
		}
		// Reset only what the BFS touched.
		for _, w := range queue {
			dist[w] = -1
		}
		dist[vq] = -1 // cycleBFS sets it when the cycle closes
	}
	return byScore(g, credit)
}

// ByCoverage ranks vertices by greedy cover over sampled shortest
// cycles: for each seeded sample vertex one concrete shortest cycle is
// materialized (deterministic parent pointers), then vertices are picked
// greedily to cover the most yet-uncovered cycles. Vertices on no sampled
// cycle follow, by degree. Ties break on descending degree then ascending
// id everywhere.
func ByCoverage(g *graph.Digraph, samples int, seed int64) *Order {
	n := g.NumVertices()
	dist := make([]int32, n)
	parent := make([]int32, n)
	var queue []int32
	for i := range dist {
		dist[i] = -1
	}
	// cyclesOf[v] = indices of sampled cycles containing v.
	var cycles [][]int32
	cyclesOf := make([][]int32, n)
	for _, vq := range sampleVertices(n, samples, seed) {
		queue = queue[:0]
		for _, u := range g.Out(vq) {
			if dist[u] == -1 {
				dist[u] = 1
				parent[u] = int32(vq)
				queue = append(queue, u)
			}
		}
		closed := false
		for head := 0; head < len(queue) && !closed; head++ {
			w := queue[head]
			if int(w) == vq {
				closed = true
				break
			}
			for _, wn := range g.Out(int(w)) {
				if dist[wn] == -1 {
					dist[wn] = dist[w] + 1
					parent[wn] = w
					queue = append(queue, wn)
				}
			}
		}
		if closed {
			// Backtrack one deterministic shortest cycle: vq was enqueued
			// with a parent at distance l-1, whose parent chain runs back
			// to a distance-1 seed (first-parent pointers are BFS-order
			// deterministic). A self-loop is the one cycle with no chain.
			members := []int32{int32(vq)}
			if dist[vq] > 1 {
				for v := parent[vq]; ; v = parent[v] {
					members = append(members, v)
					if dist[v] == 1 {
						break
					}
				}
			}
			ci := int32(len(cycles))
			for _, m := range members {
				cyclesOf[m] = append(cyclesOf[m], ci)
			}
			cycles = append(cycles, members)
		}
		for _, w := range queue {
			dist[w] = -1
		}
		dist[vq] = -1
	}
	// Greedy cover: repeatedly take the vertex on the most uncovered
	// cycles (ties: degree desc, id asc).
	covered := make([]bool, len(cycles))
	gain := make([]int, n)
	for v := 0; v < n; v++ {
		gain[v] = len(cyclesOf[v])
	}
	picked := make([]bool, n)
	var head []int
	remaining := len(cycles)
	for remaining > 0 {
		best := -1
		for v := 0; v < n; v++ {
			if picked[v] || gain[v] == 0 {
				continue
			}
			if best == -1 || gain[v] > gain[best] ||
				(gain[v] == gain[best] && g.Degree(v) > g.Degree(best)) {
				best = v
			}
		}
		if best == -1 {
			break
		}
		picked[best] = true
		head = append(head, best)
		for _, ci := range cyclesOf[best] {
			if covered[ci] {
				continue
			}
			covered[ci] = true
			remaining--
			for _, m := range cycles[ci] {
				if !picked[m] {
					gain[m]--
				}
			}
		}
	}
	// Tail: everything unpicked, by degree desc then id asc.
	tail := make([]int, 0, n-len(head))
	for v := 0; v < n; v++ {
		if !picked[v] {
			tail = append(tail, v)
		}
	}
	sort.Slice(tail, func(a, b int) bool {
		da, db := g.Degree(tail[a]), g.Degree(tail[b])
		if da != db {
			return da > db
		}
		return tail[a] < tail[b]
	})
	o, err := FromVertexList(append(head, tail...))
	if err != nil {
		panic(err) // unreachable: head+tail is a permutation by construction
	}
	return o
}

// ByWeights ranks vertices by descending weight — the online re-ranker
// feeds per-hub hit counters through this. Ties break on descending
// degree, then ascending id, so a uniformly-hit shard degenerates to the
// degree order rather than an arbitrary one.
func ByWeights(g *graph.Digraph, weights []float64) *Order {
	if len(weights) != g.NumVertices() {
		panic(fmt.Sprintf("order: ByWeights got %d weights for %d vertices",
			len(weights), g.NumVertices()))
	}
	return byScore(g, weights)
}

// byScore ranks by descending score, then descending degree, then
// ascending id.
func byScore(g *graph.Digraph, score []float64) *Order {
	n := g.NumVertices()
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	sort.Slice(vs, func(a, b int) bool {
		sa, sb := score[vs[a]], score[vs[b]]
		if sa != sb {
			return sa > sb
		}
		da, db := g.Degree(vs[a]), g.Degree(vs[b])
		if da != db {
			return da > db
		}
		return vs[a] < vs[b]
	})
	o, err := FromVertexList(vs)
	if err != nil {
		panic(err) // unreachable: vs is a permutation by construction
	}
	return o
}

// VertexList returns the order as an explicit highest-to-lowest vertex
// list — the inverse of FromVertexList, used by serialization and tests.
func (o *Order) VertexList() []int {
	vs := make([]int, len(o.vertexAt))
	for r, v := range o.vertexAt {
		vs[r] = int(v)
	}
	return vs
}
