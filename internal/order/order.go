// Package order computes total vertex orderings for hub labeling. The
// paper ranks vertices by degree (Example 4): higher degree means higher
// rank, i.e. the vertex is processed earlier and is eligible to be a hub
// for more vertices. Ties break on vertex id so orderings are deterministic.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Order is a total ordering over vertices 0..n-1. Rank 0 is the highest
// rank (the paper writes v ≺ w when v ranks above w).
type Order struct {
	rank     []int32 // rank[v] = position of v, 0 = highest
	vertexAt []int32 // vertexAt[r] = vertex with rank r
}

// Len returns the number of ordered vertices.
func (o *Order) Len() int { return len(o.rank) }

// Rank returns the rank position of v (0 is highest).
func (o *Order) Rank(v int) int { return int(o.rank[v]) }

// VertexAt returns the vertex holding rank r.
func (o *Order) VertexAt(r int) int { return int(o.vertexAt[r]) }

// Above reports whether u ≺ w, i.e. u ranks strictly higher than w.
func (o *Order) Above(u, w int) bool { return o.rank[u] < o.rank[w] }

// FromVertexList builds an Order from an explicit highest-to-lowest vertex
// list. It validates that the list is a permutation of 0..n-1.
func FromVertexList(vertices []int) (*Order, error) {
	n := len(vertices)
	o := &Order{
		rank:     make([]int32, n),
		vertexAt: make([]int32, n),
	}
	seen := make([]bool, n)
	for r, v := range vertices {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("order: vertex %d out of range [0,%d)", v, n)
		}
		if seen[v] {
			return nil, fmt.Errorf("order: vertex %d appears twice", v)
		}
		seen[v] = true
		o.rank[v] = int32(r)
		o.vertexAt[r] = int32(v)
	}
	return o, nil
}

// ByDegree ranks vertices by total degree, descending; ties break on lower
// vertex id first. This is the ordering the paper uses throughout.
func ByDegree(g *graph.Digraph) *Order {
	n := g.NumVertices()
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	sort.Slice(vs, func(a, b int) bool {
		da, db := g.Degree(vs[a]), g.Degree(vs[b])
		if da != db {
			return da > db
		}
		return vs[a] < vs[b]
	})
	o, err := FromVertexList(vs)
	if err != nil {
		// Unreachable: vs is a permutation by construction.
		panic(err)
	}
	return o
}

// Extend appends a newly created vertex at the lowest rank. The vertex id
// must be exactly the current length (dense ids); anything else is a
// programming error and panics. It returns the new rank.
func (o *Order) Extend(v int) int {
	if v != len(o.rank) {
		panic(fmt.Sprintf("order: Extend(%d) on order of length %d", v, len(o.rank)))
	}
	r := len(o.vertexAt)
	o.rank = append(o.rank, int32(r))
	o.vertexAt = append(o.vertexAt, int32(v))
	return r
}

// ByRandom ranks vertices uniformly at random (seeded); used by the
// ordering ablation to show how much the degree heuristic buys.
func ByRandom(n int, seed int64) *Order {
	vs := rand.New(rand.NewSource(seed)).Perm(n)
	o, _ := FromVertexList(vs)
	return o
}

// ByID ranks vertices by ascending id. Useful for deterministic tests.
func ByID(n int) *Order {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	o, _ := FromVertexList(vs)
	return o
}
