package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/testgraphs"
)

func TestFromVertexList(t *testing.T) {
	o, err := FromVertexList([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Rank(2) != 0 || o.Rank(0) != 1 || o.Rank(1) != 2 {
		t.Fatalf("ranks wrong: %d %d %d", o.Rank(2), o.Rank(0), o.Rank(1))
	}
	if o.VertexAt(0) != 2 || o.VertexAt(2) != 1 {
		t.Fatal("VertexAt wrong")
	}
	if !o.Above(2, 1) || o.Above(1, 2) {
		t.Fatal("Above wrong")
	}
}

func TestFromVertexListRejectsBadInput(t *testing.T) {
	if _, err := FromVertexList([]int{0, 0, 1}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := FromVertexList([]int{0, 3}); err == nil {
		t.Error("out of range accepted")
	}
	if _, err := FromVertexList([]int{0, -1}); err == nil {
		t.Error("negative accepted")
	}
}

func TestByDegreeMatchesPaperExample4(t *testing.T) {
	// Figure 2 graph; Example 4's degree order is
	// v1 ≺ v7 ≺ v4 ≺ v10 ≺ v2 ≺ v3 ≺ v5 ≺ v6 ≺ v8 ≺ v9 (1-based).
	g := testgraphs.Figure2()
	o := ByDegree(g)
	want := []int{0, 6, 3, 9, 1, 2, 4, 5, 7, 8} // zero-based
	for r, v := range want {
		if o.VertexAt(r) != v {
			t.Fatalf("rank %d: got v%d, want v%d (full order %v)",
				r, o.VertexAt(r)+1, v+1, dump(o))
		}
	}
}

func dump(o *Order) []int {
	out := make([]int, o.Len())
	for r := range out {
		out[r] = o.VertexAt(r) + 1
	}
	return out
}

func TestByIDOrder(t *testing.T) {
	o := ByID(5)
	for v := 0; v < 5; v++ {
		if o.Rank(v) != v {
			t.Fatalf("ByID rank(%d) = %d", v, o.Rank(v))
		}
	}
}

// Property: ByDegree always yields a permutation with degrees non-increasing
// along ranks.
func TestByDegreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		g := graph.New(n)
		for i := 0; i < n*2; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		o := ByDegree(g)
		seen := make([]bool, n)
		prev := int(^uint(0) >> 1)
		for rk := 0; rk < n; rk++ {
			v := o.VertexAt(rk)
			if seen[v] {
				return false
			}
			seen[v] = true
			d := g.Degree(v)
			if d > prev {
				return false
			}
			prev = d
			if o.Rank(v) != rk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
