// Package bfscount implements the paper's index-free baselines: the
// BFS-CYCLE algorithm (Algorithm 1) answering SCCnt(v) in O(n+m), and a
// shortest-path-counting BFS used both by the HP-SPC baseline's ground
// truth and as the reference oracle the index implementations are tested
// against.
//
// Counts saturate at bitpack.MaxCount so oracle answers are comparable to
// index answers bit-for-bit even on pathological graphs.
package bfscount

import (
	"repro/internal/bitpack"
	"repro/internal/graph"
)

// NoCycle is the distance reported when no cycle (or path) exists.
const NoCycle = -1

// CycleCount answers SCCnt(vq) by the paper's Algorithm 1: a BFS over
// out-edges seeded with vq's out-neighbors at distance 1, accumulating
// shortest-path counts, terminating as soon as vq itself is dequeued.
// It returns the shortest cycle length through vq and the number of such
// cycles, or (NoCycle, 0) when vq lies on no cycle.
func CycleCount(g *graph.Digraph, vq int) (length int, count uint64) {
	n := g.NumVertices()
	dist := make([]int32, n)
	cnt := make([]uint64, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 16)
	for _, u := range g.Out(vq) {
		dist[u] = 1
		cnt[u] = 1
		queue = append(queue, u)
	}
	// vq itself is "unvisited" so the BFS can close the cycle back into it.
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		if int(w) == vq {
			return int(dist[w]), cnt[w]
		}
		for _, wn := range g.Out(int(w)) {
			switch {
			case dist[wn] == -1:
				dist[wn] = dist[w] + 1
				cnt[wn] = cnt[w]
				queue = append(queue, wn)
			case dist[wn] == dist[w]+1:
				cnt[wn] = bitpack.SatAdd(cnt[wn], cnt[w])
			}
		}
	}
	return NoCycle, 0
}

// SPCount returns the shortest distance from s to t and the number of
// shortest paths, or (NoCycle, 0) if t is unreachable from s. SPCount(s,s)
// is (0,1) by the convention of the labeling schemes (the empty path).
func SPCount(g *graph.Digraph, s, t int) (dist int, count uint64) {
	if s == t {
		return 0, 1
	}
	n := g.NumVertices()
	d := make([]int32, n)
	c := make([]uint64, n)
	for i := range d {
		d[i] = -1
	}
	d[s] = 0
	c[s] = 1
	queue := []int32{int32(s)}
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		if int(w) == t {
			// FIFO order means every vertex of the previous level already
			// relaxed its edges, so c[t] is final when t is dequeued.
			return int(d[w]), c[w]
		}
		for _, u := range g.Out(int(w)) {
			switch {
			case d[u] == -1:
				d[u] = d[w] + 1
				c[u] = c[w]
				queue = append(queue, u)
			case d[u] == d[w]+1:
				c[u] = bitpack.SatAdd(c[u], c[w])
			}
		}
	}
	if d[t] == -1 {
		return NoCycle, 0
	}
	return int(d[t]), c[t]
}

// AllCycleCounts runs CycleCount for every vertex; used to build oracle
// tables in tests and the case study.
func AllCycleCounts(g *graph.Digraph) (lengths []int, counts []uint64) {
	n := g.NumVertices()
	lengths = make([]int, n)
	counts = make([]uint64, n)
	for v := 0; v < n; v++ {
		lengths[v], counts[v] = CycleCount(g, v)
	}
	return lengths, counts
}
