package bfscount

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/testgraphs"
)

func TestPaperExample1(t *testing.T) {
	// Example 1: three shortest cycles of length 6 through v7 (vertex 6).
	g := testgraphs.Figure2()
	length, count := CycleCount(g, 6)
	if length != 6 || count != 3 {
		t.Fatalf("SCCnt(v7) = (len %d, cnt %d), want (6, 3)", length, count)
	}
}

func TestFigure2AllVertices(t *testing.T) {
	// Every vertex of Figure 2 lies on the single big 6-cycle structure;
	// derived by hand from the edge list.
	g := testgraphs.Figure2()
	want := map[int]struct {
		length int
		count  uint64
	}{
		0: {6, 2}, // v1: v1→{v4,v5}→v7→v8→v9→v10→v1
		1: {6, 1}, // v2: v2→v4→v7→v8→v9→v10→v2
		3: {6, 3}, // v4: all three 6-cycles pass v4? no — see below
		6: {6, 3}, // v7 (Example 1)
	}
	// v4 lies on cycles v1→v4→v7→v8→v9→v10→v1 and v2-cycle: 2 cycles.
	want[3] = struct {
		length int
		count  uint64
	}{6, 2}
	for v, w := range want {
		l, c := CycleCount(g, v)
		if l != w.length || c != w.count {
			t.Errorf("SCCnt(v%d) = (%d,%d), want (%d,%d)", v+1, l, c, w.length, w.count)
		}
	}
	// v3 and v6 (zero-based 2 and 5): v3→v6→v7→v8→v9→v10→v1→v3, length 7.
	for _, v := range []int{2, 5} {
		l, _ := CycleCount(g, v)
		if l != 7 {
			t.Errorf("SCCnt(v%d) length = %d, want 7", v+1, l)
		}
	}
	// v5 (zero-based 4): v5→v7→v8→v9→v10→v1→v5, length 6, unique.
	if l, c := CycleCount(g, 4); l != 6 || c != 1 {
		t.Errorf("SCCnt(v5) = (%d,%d), want (6,1)", l, c)
	}
}

func TestSmallFixtures(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Digraph
		v      int
		length int
		count  uint64
	}{
		{"triangle", testgraphs.Triangle(), 0, 3, 1},
		{"triangle-v2", testgraphs.Triangle(), 2, 3, 1},
		{"two-cycle", testgraphs.TwoCycle(), 0, 2, 1},
		{"diamond", testgraphs.DiamondCycles(), 0, 3, 2},
		{"diamond-join", testgraphs.DiamondCycles(), 3, 3, 2},
		{"dag", testgraphs.DAG(), 0, NoCycle, 0},
		{"dag-mid", testgraphs.DAG(), 3, NoCycle, 0},
	}
	for _, c := range cases {
		l, cnt := CycleCount(c.g, c.v)
		if l != c.length || cnt != c.count {
			t.Errorf("%s: SCCnt(%d) = (%d,%d), want (%d,%d)",
				c.name, c.v, l, cnt, c.length, c.count)
		}
	}
}

func TestSPCount(t *testing.T) {
	g := testgraphs.Figure2()
	cases := []struct {
		s, t, d int
		c       uint64
	}{
		{9, 7, 4, 3}, // Example 2: SPCnt(v10, v8) = 3 at distance 4
		{0, 6, 2, 2}, // sd(v1,v7)=2, two paths (Table II Lin(v7))
		{6, 3, 5, 2}, // Example 3: SPCnt(v7,v4)
		{6, 4, 5, 1}, // Example 3: SPCnt(v7,v5)
		{6, 5, 6, 1}, // Example 3: SPCnt(v7,v6)
		{0, 0, 0, 1}, // trivial self path
		{7, 2, 4, 1}, // v8→v9→v10→v1→v3
	}
	for _, c := range cases {
		d, cnt := SPCount(g, c.s, c.t)
		if d != c.d || cnt != c.c {
			t.Errorf("SPCnt(v%d,v%d) = (%d,%d), want (%d,%d)",
				c.s+1, c.t+1, d, cnt, c.d, c.c)
		}
	}
}

func TestSPCountUnreachable(t *testing.T) {
	g := testgraphs.DAG()
	if d, c := SPCount(g, 5, 0); d != NoCycle || c != 0 {
		t.Fatalf("unreachable = (%d,%d)", d, c)
	}
}

// Property: SCCnt(v) computed by Algorithm 1 equals the neighbor reduction
// of Equation (3)-(4) evaluated with the SPCount oracle, on random graphs.
func TestCycleCountMatchesNeighborReduction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		g := graph.New(n)
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		for v := 0; v < n; v++ {
			gotLen, gotCnt := CycleCount(g, v)
			// Equation (3)/(4) over out-neighbors.
			bestD := -1
			var total uint64
			for _, w := range g.Out(v) {
				d, c := SPCount(g, int(w), v)
				if d < 0 {
					continue
				}
				switch {
				case bestD == -1 || d < bestD:
					bestD, total = d, c
				case d == bestD:
					total += c
				}
			}
			wantLen, wantCnt := NoCycle, uint64(0)
			if bestD >= 0 {
				wantLen, wantCnt = bestD+1, total
			}
			if gotLen != wantLen || gotCnt != wantCnt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllCycleCounts(t *testing.T) {
	g := testgraphs.Triangle()
	ls, cs := AllCycleCounts(g)
	for v := 0; v < 3; v++ {
		if ls[v] != 3 || cs[v] != 1 {
			t.Fatalf("vertex %d: (%d,%d)", v, ls[v], cs[v])
		}
	}
}
