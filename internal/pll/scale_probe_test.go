package pll

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/order"
)

func TestProbeDeletionAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale probe")
	}
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 300, 1200)
	idx, _ := Build(g, order.ByDegree(g), Options{})
	edges := g.Edges()
	for k := 0; k < 5; k++ {
		e := edges[r.Intn(len(edges))]
		if !g.HasEdge(e[0], e[1]) {
			continue
		}
		if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	fresh, _ := Build(g.Clone(), idx.Ord, Options{})
	t.Logf("maintained=%d fresh=%d diff=%+d", idx.EntryCount(), fresh.EntryCount(), idx.EntryCount()-fresh.EntryCount())
	bad := 0
	for s := 0; s < 300 && bad < 5; s++ {
		for u := 0; u < 300; u++ {
			d, c := idx.CountPaths(s, u)
			od, oc := bfscount.SPCount(g, s, u)
			if od == bfscount.NoCycle {
				od = Unreachable
				oc = 0
			}
			if d != od || c != oc {
				t.Errorf("pair (%d,%d): index (%d,%d) oracle (%d,%d)", s, u, d, c, od, oc)
				bad++
				if bad >= 5 {
					break
				}
			}
		}
	}
}
