package pll

import "repro/internal/bitpack"

// The inverted indexes inv_in(·) and inv_out(·) of §V-A locate, for a hub
// h, the vertices whose in-label (out-label) contains h. They are needed
// only by the minimality strategy's CLEAN LABEL pass, so they are built
// lazily on first use and kept in sync by the label-mutation helpers from
// then on.

// ensureInverted builds both inverted indexes from the current labels.
func (idx *Index) ensureInverted() {
	if idx.invIn != nil {
		return
	}
	n := len(idx.In)
	idx.invIn = make([]map[int32]struct{}, n)
	idx.invOut = make([]map[int32]struct{}, n)
	for v := range idx.In {
		idx.In[v].Each(func(e bitpack.Entry) bool { idx.addInvIn(e.Hub(), v); return true })
		idx.Out[v].Each(func(e bitpack.Entry) bool { idx.addInvOut(e.Hub(), v); return true })
	}
}

func (idx *Index) addInvIn(hubRank, v int) {
	if idx.invIn == nil {
		return
	}
	m := idx.invIn[hubRank]
	if m == nil {
		m = make(map[int32]struct{})
		idx.invIn[hubRank] = m
	}
	m[int32(v)] = struct{}{}
}

func (idx *Index) addInvOut(hubRank, v int) {
	if idx.invOut == nil {
		return
	}
	m := idx.invOut[hubRank]
	if m == nil {
		m = make(map[int32]struct{})
		idx.invOut[hubRank] = m
	}
	m[int32(v)] = struct{}{}
}

func (idx *Index) delInvIn(hubRank, v int) {
	if idx.invIn == nil || idx.invIn[hubRank] == nil {
		return
	}
	delete(idx.invIn[hubRank], int32(v))
}

func (idx *Index) delInvOut(hubRank, v int) {
	if idx.invOut == nil || idx.invOut[hubRank] == nil {
		return
	}
	delete(idx.invOut[hubRank], int32(v))
}

// removeInEntry removes hub hubRank from In[v] keeping the inverted index
// consistent; reports whether an entry existed.
func (idx *Index) removeInEntry(v, hubRank int) bool {
	if !idx.In[v].Remove(hubRank) {
		return false
	}
	idx.entries--
	idx.delInvIn(hubRank, v)
	return true
}

// removeOutEntry is the out-label counterpart of removeInEntry.
func (idx *Index) removeOutEntry(v, hubRank int) bool {
	if !idx.Out[v].Remove(hubRank) {
		return false
	}
	idx.entries--
	idx.delInvOut(hubRank, v)
	return true
}
