package pll

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/label"
)

// Scheme describes one rank-ordered hub-labeling construction so the
// batched driver can run it. Both the generic engine (genericScheme) and
// the couple-vertex-skipping construction in internal/csc implement it:
// a hub runs exactly two BFS passes (forward/in then backward/out), each
// expressible as a speculative pass that stages its appends.
type Scheme interface {
	// IsHub reports whether the vertex at rank r runs hub BFSes. Non-hub
	// ranks only receive self labels.
	IsHub(r int) bool
	// SelfLabels commits the self labels of the non-hub vertex at rank r.
	SelfLabels(r int)
	// RunPass runs pass 0 or 1 of the hub at rank r speculatively against
	// the current labels, with private scratch, staging every append.
	RunPass(r, pass int, s *Scratch, st *Stage)
	// Anchor returns the hub-side list the pass's prune test scatters —
	// used to re-validate staged entries against the merged labels.
	Anchor(r, pass int) *label.List
}

// hubPasses is the number of BFS passes per hub in both schemes.
const hubPasses = 2

// Batching knobs. The first seqPrefixRanks hubs run sequentially: the
// top-ranked hubs generate the labels everything below prunes on, so
// speculating on them mostly produces reruns. After the prefix, batch
// sizes start at the worker count and double up to maxBatchFactor×workers,
// amortizing the per-batch barrier as interference tails off down-rank.
const (
	seqPrefixRanks = 16
	maxBatchFactor = 8
)

// RunConstruction executes the scheme over all ranks in rank order.
// workers ≤ 1 runs fully sequentially; otherwise hubs are processed in
// rank-ordered batches: workers run the passes of a batch speculatively
// with private scratch, then a deterministic merge walks the batch in rank
// order, re-validating each stage against the merged labels and committing
// it — or discarding it and re-running the pass sequentially when an
// in-batch label would have changed the pass's pruning. Either way the
// committed labels are byte-identical to a sequential construction.
func (idx *Index) RunConstruction(sch Scheme, workers int) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := idx.Ord.Len()
	var st Stage
	scr := idx.scratch()
	if workers <= 1 || n <= seqPrefixRanks {
		for r := 0; r < n; r++ {
			idx.buildRank(sch, r, scr, &st)
		}
		return
	}

	for r := 0; r < seqPrefixRanks; r++ {
		idx.buildRank(sch, r, scr, &st)
	}

	scratches := make([]*Scratch, workers)
	for i := range scratches {
		scratches[i] = GetScratch(n)
	}
	defer func() {
		for _, s := range scratches {
			PutScratch(s)
		}
	}()
	var stages []Stage

	lo, batch := seqPrefixRanks, workers
	for lo < n {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		tasks := (hi - lo) * hubPasses
		if cap(stages) < tasks {
			grown := make([]Stage, tasks)
			copy(grown, stages) // keep the ops buffers already allocated
			stages = grown
		}
		stages = stages[:tasks]

		// Speculation phase: workers drain the batch's (rank, pass) tasks.
		// Labels are frozen for the whole phase — stages are the only
		// writes — so concurrent reads are race-free.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *Scratch) {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= tasks {
						return
					}
					r, pass := lo+t/hubPasses, t%hubPasses
					if !sch.IsHub(r) {
						continue
					}
					sch.RunPass(r, pass, s, &stages[t])
				}
			}(scratches[w])
		}
		wg.Wait()

		// Deterministic merge in rank order.
		for r := lo; r < hi; r++ {
			if !sch.IsHub(r) {
				sch.SelfLabels(r)
				continue
			}
			for pass := 0; pass < hubPasses; pass++ {
				spec := &stages[(r-lo)*hubPasses+pass]
				if idx.validateCommit(sch.Anchor(r, pass), spec, scr) {
					continue
				}
				// An in-batch label invalidated the speculation: rebuild
				// this pass against the merged (exact) label state.
				idx.reruns++
				sch.RunPass(r, pass, scr, spec)
				idx.commitTrusted(spec)
			}
		}

		lo = hi
		if batch < maxBatchFactor*workers {
			batch *= 2
		}
	}
}

// buildRank processes one rank sequentially: self labels for non-hubs,
// both passes (staged against live labels, then committed) for hubs.
func (idx *Index) buildRank(sch Scheme, r int, scr *Scratch, st *Stage) {
	if !sch.IsHub(r) {
		sch.SelfLabels(r)
		return
	}
	for pass := 0; pass < hubPasses; pass++ {
		sch.RunPass(r, pass, scr, st)
		idx.commitTrusted(st)
	}
}
