package pll

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// The parallel builder's contract is byte-identity: whatever the worker
// count, the committed labels (and the classification counters derived
// from them) must equal the sequential construction's exactly. The graphs
// here are big enough that batching engages past the sequential prefix
// and reruns occur.
func TestParallelBuildMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Digraph{
		"figure2": testgraphs.Figure2(),
		"er800":   gen.ErdosRenyi(gen.Config{N: 800, M: 3200, Seed: 5}),
		"power":   gen.PowerLaw(gen.Config{N: 600, M: 3000, Seed: 9}, 2.0, 2.1),
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		n := 50 + r.Intn(200)
		graphs[fmt.Sprintf("rand%d", i)] = gen.ErdosRenyi(gen.Config{N: n, M: 4 * n, Seed: int64(i)})
	}

	for name, g := range graphs {
		ord := order.ByDegree(g)
		seq, seqStats := Build(g.Clone(), ord, Options{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			par, parStats := Build(g.Clone(), ord, Options{Workers: workers})
			assertSameLabels(t, fmt.Sprintf("%s/workers=%d", name, workers), seq, par)
			if seqStats.Entries != parStats.Entries ||
				seqStats.Canonical != parStats.Canonical ||
				seqStats.NonCanonical != parStats.NonCanonical {
				t.Errorf("%s/workers=%d: stats diverge: seq %+v par %+v",
					name, workers, seqStats, parStats)
			}
		}
	}
}

// A hub filter must parallelize identically too (the CSC configuration).
func TestParallelBuildMatchesSequentialFiltered(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 400, M: 1600, Seed: 21})
	ord := order.ByDegree(g)
	even := func(v int) bool { return v%2 == 0 }
	seq, _ := Build(g.Clone(), ord, Options{Workers: 1, HubFilter: even})
	par, _ := Build(g.Clone(), ord, Options{Workers: 4, HubFilter: even})
	assertSameLabels(t, "filtered", seq, par)
}

func assertSameLabels(t *testing.T, name string, a, b *Index) {
	t.Helper()
	n := a.G.NumVertices()
	if bn := b.G.NumVertices(); bn != n {
		t.Fatalf("%s: vertex counts differ: %d vs %d", name, n, bn)
	}
	for v := 0; v < n; v++ {
		ae, be := a.In[v].Entries(), b.In[v].Entries()
		if !entriesEqual(ae, be) {
			t.Fatalf("%s: Lin(%d) differs:\n  a=%v\n  b=%v", name, v, ae, be)
		}
		ae, be = a.Out[v].Entries(), b.Out[v].Entries()
		if !entriesEqual(ae, be) {
			t.Fatalf("%s: Lout(%d) differs:\n  a=%v\n  b=%v", name, v, ae, be)
		}
	}
}

// The CSR arena must hold every entry contiguously in list order, with
// each list a view of its padded span, and the index must stay fully
// dynamic afterwards: in-pad inserts stay in the arena, overflowing lists
// migrate out transparently.
func TestArenaFreezeLayoutAndDynamics(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 200, M: 800, Seed: 13})
	ord := order.ByDegree(g)
	idx, st := Build(g, ord, Options{})

	a := idx.Arena()
	if a == nil {
		t.Fatal("Build did not freeze the arena")
	}
	if got, want := a.Lists(), 2*200; got != want {
		t.Fatalf("arena lists = %d, want %d", got, want)
	}
	if got := a.FrozenEntries(); got != st.Entries {
		t.Fatalf("arena frozen entries = %d, want %d", got, st.Entries)
	}
	// Spans must be monotone, disjoint, and sized len+pad.
	pos := 0
	for i := 0; i < a.Lists(); i++ {
		start, end := a.Span(i)
		if start != pos {
			t.Fatalf("span %d starts at %d, want %d", i, start, pos)
		}
		pos = end
	}
	if pos != a.Cap() {
		t.Fatalf("spans cover %d slots, arena cap %d", pos, a.Cap())
	}

	// Dynamic maintenance on the frozen index must agree with a rebuild.
	r := rand.New(rand.NewSource(99))
	for k := 0; k < 30; k++ {
		u, v := r.Intn(200), r.Intn(200)
		if u == v {
			continue
		}
		if idx.G.HasEdge(u, v) {
			if _, err := idx.DeleteEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := idx.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh, _ := Build(idx.G.Clone(), ord, Options{Workers: 1})
	for s := 0; s < 200; s++ {
		for tt := 0; tt < 200; tt++ {
			wd, wc := fresh.CountPaths(s, tt)
			gd, gc := idx.CountPaths(s, tt)
			if wd != gd || (wd != Unreachable && wc != gc) {
				t.Fatalf("post-freeze updates: CountPaths(%d,%d) = (%d,%d), want (%d,%d)",
					s, tt, gd, gc, wd, wc)
			}
		}
	}
}

// Regression: growing the graph through AddVertex must grow every scratch
// array — the tentative distance/count arrays indexed by vertex id and the
// hub scatter indexed by rank — before the next update pass runs. The
// fresh vertex lands at the lowest rank, so a maintained insertion that
// seeds a BFS at it indexes all three at the new size.
func TestAddVertexGrowsScratch(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 40, M: 160, Seed: 7})
	idx, _ := Build(g, order.ByDegree(g), Options{})
	for k := 0; k < 5; k++ {
		v, err := idx.AddVertex()
		if err != nil {
			t.Fatal(err)
		}
		// Wire the new vertex into the graph immediately: these passes
		// index the scratch at the grown size and must not panic.
		if _, err := idx.InsertEdge(v, k); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.InsertEdge(k+1, v); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.DeleteEdge(v, k); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.InsertEdge(v, k); err != nil {
			t.Fatal(err)
		}
	}
	fresh, _ := Build(idx.G.Clone(), idx.Ord, Options{Workers: 1})
	assertSameLabelsByQuery(t, fresh, idx)
}

func assertSameLabelsByQuery(t *testing.T, want, got *Index) {
	t.Helper()
	n := want.G.NumVertices()
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			wd, wc := want.CountPaths(s, tt)
			gd, gc := got.CountPaths(s, tt)
			if wd != gd || (wd != Unreachable && wc != gc) {
				t.Fatalf("CountPaths(%d,%d) = (%d,%d), want (%d,%d)", s, tt, gd, gc, wd, wc)
			}
		}
	}
}

// The entry counter must track every mutation path exactly — builds,
// inserts, deletes, vertex growth — so EntryCount stays O(1) truthful.
func TestEntryCountStaysExact(t *testing.T) {
	recount := func(idx *Index) int {
		total := 0
		for v := range idx.In {
			total += idx.In[v].Len() + idx.Out[v].Len()
		}
		return total
	}
	for _, strat := range []Strategy{Redundancy, Minimality} {
		g := gen.ErdosRenyi(gen.Config{N: 60, M: 240, Seed: 31})
		idx, _ := Build(g, order.ByDegree(g), Options{Strategy: strat})
		if got, want := idx.EntryCount(), recount(idx); got != want {
			t.Fatalf("%v: after build: EntryCount = %d, recount = %d", strat, got, want)
		}
		r := rand.New(rand.NewSource(17))
		for k := 0; k < 60; k++ {
			u, v := r.Intn(60), r.Intn(60)
			if u == v {
				continue
			}
			if idx.G.HasEdge(u, v) {
				if _, err := idx.DeleteEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := idx.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := idx.EntryCount(), recount(idx); got != want {
				t.Fatalf("%v: step %d: EntryCount = %d, recount = %d", strat, k, got, want)
			}
		}
		if _, err := idx.AddVertex(); err != nil {
			t.Fatal(err)
		}
		if got, want := idx.EntryCount(), recount(idx); got != want {
			t.Fatalf("%v: after AddVertex: EntryCount = %d, recount = %d", strat, got, want)
		}
	}
}

func entriesEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
