package pll

import (
	"sort"
	"time"

	"repro/internal/bitpack"
	"repro/internal/label"
)

// InsertEdge adds edge (a,b) to the graph and repairs the index with the
// INCCNT algorithm (Algorithm 5): resumed pruned BFSes from every affected
// hub — the hubs of Lin(a) in the forward direction and the hubs of
// Lout(b) in the reverse direction — processed in descending rank order,
// each seeded with the *label* count of the hub's entry (Theorem V.1).
func (idx *Index) InsertEdge(a, b int) (UpdateStats, error) {
	start := time.Now()
	var st UpdateStats
	if err := idx.G.AddEdge(a, b); err != nil {
		return st, err
	}
	idx.scratch()

	// Affected hubs and their seed (distance, count), captured up front.
	// Inserting (a,b) cannot shorten paths *into* a nor *out of* b (such a
	// path would repeat a vertex), so these seeds stay valid throughout.
	type seed struct {
		d int
		c uint64
	}
	hubA := make(map[int]seed, idx.In[a].Len())
	idx.In[a].Each(func(e bitpack.Entry) bool {
		hubA[e.Hub()] = seed{e.Dist(), e.Count()}
		return true
	})
	hubB := make(map[int]seed, idx.Out[b].Len())
	idx.Out[b].Each(func(e bitpack.Entry) bool {
		hubB[e.Hub()] = seed{e.Dist(), e.Count()}
		return true
	})
	ranks := make([]int, 0, len(hubA)+len(hubB))
	for r := range hubA {
		ranks = append(ranks, r)
	}
	for r := range hubB {
		if _, dup := hubA[r]; !dup {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks) // ascending rank position = descending rank
	st.AffectedHubs = len(ranks)

	ra, rb := idx.Ord.Rank(a), idx.Ord.Rank(b)
	for _, rk := range ranks {
		if idx.HubFilter != nil && !idx.HubFilter(idx.Ord.VertexAt(rk)) {
			continue // never a hub; a pass could only create unneeded entries
		}
		if s, ok := hubA[rk]; ok && rk < rb { // vk ≺ b
			idx.updatePass(rk, b, s.d+1, s.c, true, &st)
		}
		if s, ok := hubB[rk]; ok && rk < ra { // vk ≺ a
			idx.updatePass(rk, a, s.d+1, s.c, false, &st)
		}
	}
	st.Duration = time.Since(start)
	return st, nil
}

// updatePass is FORWARD PASS / BACKWARD PASS (Algorithm 6): a resumed BFS
// from one endpoint of the new edge on behalf of affected hub rank vkRank,
// seeded at distance d0 with count c0. forward walks out-edges updating
// in-labels; !forward walks in-edges updating out-labels.
//
// Under the redundancy strategy the prune test uses the hub-indexed
// scatter: the hub's anchor list cannot change mid-pass (the BFS never
// reaches vk, and no cleaning runs), so the scatter stays valid. Under
// minimality, CLEAN LABEL may remove entries from the anchor list while
// the pass runs, so the test falls back to the live merge-join.
func (idx *Index) updatePass(vkRank, start, d0 int, c0 uint64, forward bool, st *UpdateStats) {
	vk := idx.Ord.VertexAt(vkRank)
	s := idx.scratch()

	var anchor *label.List
	if idx.Strategy == Redundancy {
		if forward {
			anchor = &idx.Out[vk]
		} else {
			anchor = &idx.In[vk]
		}
		s.Scatter(anchor)
		defer s.Unscatter(anchor)
	}
	defer s.Reset()

	s.Visit(start, int32(d0), c0)
	s.Queue = append(s.Queue, int32(start))

	for head := 0; head < len(s.Queue); head++ {
		w := int(s.Queue[head])
		st.Visited++
		var dG int
		switch {
		case anchor != nil && forward:
			dG = s.Probe(&idx.In[w], int(s.Dist[w]))
		case anchor != nil:
			dG = s.Probe(&idx.Out[w], int(s.Dist[w]))
		case forward:
			dG = label.JoinDist(&idx.Out[vk], &idx.In[w])
		default:
			dG = label.JoinDist(&idx.Out[w], &idx.In[vk])
		}
		if int(s.Dist[w]) > dG {
			continue // Case 1: the new edge does not improve vk↔w
		}
		idx.updateLabel(vkRank, w, int(s.Dist[w]), s.Cnt[w], forward, st)
		for _, u := range idx.neighbors(w, forward) {
			switch {
			case s.Dist[u] == -1:
				if idx.Ord.Rank(int(u)) > vkRank { // vk ≺ u
					s.Visit(int(u), s.Dist[w]+1, s.Cnt[w])
					s.Queue = append(s.Queue, u)
				}
			case s.Dist[u] == s.Dist[w]+1:
				s.Cnt[u] = bitpack.SatAdd(s.Cnt[u], s.Cnt[w]) // Case 2 propagation
			}
		}
	}
}

// updateLabel is UPDATE LABEL (Algorithm 7) applied to In[w] (forward) or
// Out[w] (!forward): replace on shorter distance, accumulate on equal
// distance, insert when the hub is new. Under the minimality strategy a
// replacement or insertion triggers CLEAN LABEL (Algorithm 8).
func (idx *Index) updateLabel(hubRank, w, dNew int, cNew uint64, inSide bool, st *UpdateStats) {
	lst := &idx.Out[w]
	if inSide {
		lst = &idx.In[w]
	}
	if e, ok := lst.Lookup(hubRank); ok {
		switch {
		case dNew < e.Dist():
			lst.Set(bitpack.Pack(hubRank, dNew, cNew))
			st.EntriesChanged++
			st.touch(w)
			if idx.Strategy == Minimality {
				idx.cleanLabel(w, inSide, st)
			}
		case dNew == e.Dist():
			lst.Set(bitpack.Pack(hubRank, dNew, bitpack.SatAdd(e.Count(), cNew)))
			st.EntriesChanged++
			st.touch(w)
		}
		// dNew > e.Dist() cannot occur: the BFS only reaches w when its
		// tentative distance is at most the index distance, which is at
		// most the entry's. Nothing to do if it somehow did.
		return
	}
	lst.Set(bitpack.Pack(hubRank, dNew, cNew))
	idx.entries++
	st.EntriesAdded++
	st.touch(w)
	if inSide {
		idx.addInvIn(hubRank, w)
	} else {
		idx.addInvOut(hubRank, w)
	}
	if idx.Strategy == Minimality {
		idx.cleanLabel(w, inSide, st)
	}
}

// cleanLabel is CLEAN LABEL (Algorithm 8). For the in-side it removes
// redundant entries from Lin(w) and redundant hub-w entries from other
// vertices' out-labels (located through inv_out(w)); the out-side is
// symmetric. An entry is redundant when its recorded distance exceeds the
// true index distance (Definition V.2).
func (idx *Index) cleanLabel(w int, inSide bool, st *UpdateStats) {
	idx.ensureInverted()
	wRank := idx.Ord.Rank(w)

	if inSide {
		var drop []int
		idx.In[w].Each(func(e bitpack.Entry) bool {
			if e.Hub() == wRank {
				return true // self entry is never redundant
			}
			h := idx.Ord.VertexAt(e.Hub())
			if e.Dist() > idx.Dist(h, w) {
				drop = append(drop, e.Hub())
			}
			return true
		})
		for _, h := range drop {
			if idx.removeInEntry(w, h) {
				st.EntriesRemoved++
				st.touch(w)
			}
		}
		if m := idx.invOut[wRank]; m != nil {
			vs := make([]int32, 0, len(m))
			for v := range m {
				vs = append(vs, v)
			}
			for _, v32 := range vs {
				v := int(v32)
				if v == w {
					continue
				}
				e, ok := idx.Out[v].Lookup(wRank)
				if !ok {
					idx.delInvOut(wRank, v)
					continue
				}
				if e.Dist() > idx.Dist(v, w) {
					if idx.removeOutEntry(v, wRank) {
						st.EntriesRemoved++
						st.touch(v)
					}
				}
			}
		}
		return
	}

	var drop []int
	idx.Out[w].Each(func(e bitpack.Entry) bool {
		if e.Hub() == wRank {
			return true
		}
		h := idx.Ord.VertexAt(e.Hub())
		if e.Dist() > idx.Dist(w, h) {
			drop = append(drop, e.Hub())
		}
		return true
	})
	for _, h := range drop {
		if idx.removeOutEntry(w, h) {
			st.EntriesRemoved++
			st.touch(w)
		}
	}
	if m := idx.invIn[wRank]; m != nil {
		vs := make([]int32, 0, len(m))
		for v := range m {
			vs = append(vs, v)
		}
		for _, v32 := range vs {
			v := int(v32)
			if v == w {
				continue
			}
			e, ok := idx.In[v].Lookup(wRank)
			if !ok {
				idx.delInvIn(wRank, v)
				continue
			}
			if e.Dist() > idx.Dist(w, v) {
				if idx.removeInEntry(v, wRank) {
					st.EntriesRemoved++
					st.touch(v)
				}
			}
		}
	}
}
