package pll

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// Binary index format (little endian):
//
//	magic   [8]byte  "CSCIDX01"
//	n       uint32   vertex count
//	m       uint32   edge count
//	strategy uint8
//	edges   m × (uint32, uint32)
//	order   n × uint32            vertexAt, highest rank first
//	labels  n × { inLen uint32, inLen × uint64,
//	              outLen uint32, outLen × uint64 }
//
// The format is self-contained: the graph travels with the labels so a
// loaded index supports queries and dynamic maintenance immediately.

var indexMagic = [8]byte{'C', 'S', 'C', 'I', 'D', 'X', '0', '1'}

// ErrBadFormat reports a corrupt or foreign index stream.
var ErrBadFormat = errors.New("pll: bad index format")

// WriteTo serializes the index. It implements io.WriterTo.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if err := write(indexMagic); err != nil {
		return cw.n, err
	}
	n := idx.G.NumVertices()
	if err := write(uint32(n)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(idx.G.NumEdges())); err != nil {
		return cw.n, err
	}
	if err := write(uint8(idx.Strategy)); err != nil {
		return cw.n, err
	}
	for u := 0; u < n; u++ {
		for _, v := range idx.G.Out(u) {
			if err := write(uint32(u)); err != nil {
				return cw.n, err
			}
			if err := write(uint32(v)); err != nil {
				return cw.n, err
			}
		}
	}
	for r := 0; r < n; r++ {
		if err := write(uint32(idx.Ord.VertexAt(r))); err != nil {
			return cw.n, err
		}
	}
	for v := 0; v < n; v++ {
		for _, lst := range []*label.List{&idx.In[v], &idx.Out[v]} {
			if err := write(uint32(lst.Len())); err != nil {
				return cw.n, err
			}
			var werr error
			lst.Each(func(e bitpack.Entry) bool {
				werr = write(uint64(e))
				return werr == nil
			})
			if werr != nil {
				return cw.n, werr
			}
		}
	}
	// Flush before reading the count — the order of a plain operand read
	// against a call in one return list is unspecified.
	err := cw.w.(*bufio.Writer).Flush()
	return cw.n, err
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	return ReadIndexFrom(bufio.NewReader(r))
}

// ReadIndexFrom is ReadIndex reading through a caller-owned bufio.Reader.
// Container formats that embed index blobs back-to-back (the sharded CSC
// serialization) must use it: reading exactly through the caller's
// buffered reader never prefetches bytes that belong to the next section,
// which a privately wrapped bufio would swallow.
func ReadIndexFrom(br *bufio.Reader) (*Index, error) {
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
	}
	var n32, m32 uint32
	var strat uint8
	if err := read(&n32); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if err := read(&m32); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if err := read(&strat); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	n, m := int(n32), int(m32)
	if n > bitpack.MaxHub+1 {
		return nil, fmt.Errorf("%w: vertex count %d exceeds encoding limit", ErrBadFormat, n)
	}
	if Strategy(strat) != Redundancy && Strategy(strat) != Minimality {
		return nil, fmt.Errorf("%w: unknown strategy %d", ErrBadFormat, strat)
	}
	// A digraph on n vertices holds at most n(n-1) edges; a larger claimed
	// count is corrupt, and rejecting it here keeps a hostile header from
	// driving a multi-gigabyte read loop.
	if int64(m32) > int64(n)*int64(n-1) {
		return nil, fmt.Errorf("%w: edge count %d impossible for %d vertices", ErrBadFormat, m, n)
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		var u, v uint32
		if err := read(&u); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadFormat, err)
		}
		if err := read(&v); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadFormat, err)
		}
		if err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, fmt.Errorf("%w: edge (%d,%d): %v", ErrBadFormat, u, v, err)
		}
	}
	vertexAt := make([]int, n)
	for r := 0; r < n; r++ {
		var v uint32
		if err := read(&v); err != nil {
			return nil, fmt.Errorf("%w: truncated order: %v", ErrBadFormat, err)
		}
		if int(v) >= n {
			return nil, fmt.Errorf("%w: order vertex %d out of range", ErrBadFormat, v)
		}
		vertexAt[r] = int(v)
	}
	ord, err := order.FromVertexList(vertexAt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	idx := NewEmpty(g, ord)
	idx.Strategy = Strategy(strat)
	for v := 0; v < n; v++ {
		for _, lst := range []*label.List{&idx.In[v], &idx.Out[v]} {
			var ln uint32
			if err := read(&ln); err != nil {
				return nil, fmt.Errorf("%w: truncated labels: %v", ErrBadFormat, err)
			}
			// Hubs are strictly increasing ranks below n, so no list can
			// legitimately exceed n entries.
			if int64(ln) > int64(n) {
				return nil, fmt.Errorf("%w: label list of %d entries for %d vertices", ErrBadFormat, ln, n)
			}
			prevHub := -1
			for i := 0; i < int(ln); i++ {
				var e uint64
				if err := read(&e); err != nil {
					return nil, fmt.Errorf("%w: truncated labels: %v", ErrBadFormat, err)
				}
				ent := bitpack.Entry(e)
				if ent.Hub() <= prevHub || ent.Hub() >= n {
					return nil, fmt.Errorf("%w: label hub order violated", ErrBadFormat)
				}
				prevHub = ent.Hub()
				lst.Append(ent)
				idx.entries++
			}
		}
	}
	// A loaded index serves the same hot paths as a built one: freeze the
	// lists into the CSR arena for locality.
	idx.FreezeArena()
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
