package pll

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/testgraphs"
)

func TestSerializeRoundtrip(t *testing.T) {
	g := testgraphs.Figure2()
	idx, _ := Build(g, order.ByDegree(g), Options{Strategy: Minimality})
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy != Minimality {
		t.Fatal("strategy lost")
	}
	for v := 0; v < 10; v++ {
		for u := 0; u < 10; u++ {
			d1, c1 := idx.CountPaths(v, u)
			d2, c2 := got.CountPaths(v, u)
			if d1 != d2 || c1 != c2 {
				t.Fatalf("pair (%d,%d): (%d,%d) != (%d,%d)", v, u, d1, c1, d2, c2)
			}
		}
	}
	// The loaded index stays maintainable.
	if _, err := got.InsertEdge(1, 5); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRandomRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := randomGraph(r, 30, 90)
	idx, _ := Build(g, order.ByDegree(g), Options{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 30; v++ {
		if !listsEqual(idx.In[v].Entries(), got.In[v].Entries()) ||
			!listsEqual(idx.Out[v].Entries(), got.Out[v].Entries()) {
			t.Fatalf("labels differ at %d", v)
		}
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	g := testgraphs.Figure2()
	idx, _ := Build(g, order.ByDegree(g), Options{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTANIDX"), full[8:]...),
		"truncated": full[:len(full)/2],
		"tiny":      full[:4],
	}
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}
