package pll

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
)

// These tests verify the deep ESPC label invariant — stronger than query
// correctness, which stale-dominated entries can mask:
//
//   - entry (h,d,c) ∈ Lin(w) exists with d = sd(h,w) and c = (number of
//     shortest h→w paths on which h is the top-ranked vertex) exactly when
//     at least one such h-max shortest path exists;
//   - any other entry must be dominated (distance strictly above sd), so
//     it can never contribute to a query;
//
// and symmetrically for out-labels.

// restrictedCounts computes, via BFS from s that only traverses vertices
// ranked below s, the length and count of s-max paths from s to every
// vertex. forward=false walks in-edges (paths *to* s).
func restrictedCounts(g *graph.Digraph, ord *order.Order, s int, forward bool) ([]int32, []uint64) {
	n := g.NumVertices()
	d := make([]int32, n)
	c := make([]uint64, n)
	for i := range d {
		d[i] = -1
	}
	d[s] = 0
	c[s] = 1
	q := []int32{int32(s)}
	rs := ord.Rank(s)
	for h := 0; h < len(q); h++ {
		w := int(q[h])
		var nbrs []int32
		if forward {
			nbrs = g.Out(w)
		} else {
			nbrs = g.In(w)
		}
		for _, u := range nbrs {
			if ord.Rank(int(u)) <= rs {
				continue
			}
			if d[u] == -1 {
				d[u] = d[w] + 1
				c[u] = c[w]
				q = append(q, u)
			} else if d[u] == d[w]+1 {
				c[u] += c[w]
			}
		}
	}
	return d, c
}

func plainDistances(g *graph.Digraph, s int, forward bool) []int32 {
	n := g.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = -1
	}
	d[s] = 0
	q := []int32{int32(s)}
	for h := 0; h < len(q); h++ {
		w := int(q[h])
		var nbrs []int32
		if forward {
			nbrs = g.Out(w)
		} else {
			nbrs = g.In(w)
		}
		for _, u := range nbrs {
			if d[u] == -1 {
				d[u] = d[w] + 1
				q = append(q, u)
			}
		}
	}
	return d
}

// checkESPCInvariant asserts the invariant on both label sides.
func checkESPCInvariant(t *testing.T, idx *Index, g *graph.Digraph, ctx string) {
	t.Helper()
	n := g.NumVertices()
	for _, side := range []struct {
		name    string
		forward bool
	}{{"Lin", true}, {"Lout", false}} {
		for s := 0; s < n; s++ {
			sd := plainDistances(g, s, side.forward)
			dR, cR := restrictedCounts(g, idx.Ord, s, side.forward)
			rs := idx.Ord.Rank(s)
			for w := 0; w < n; w++ {
				if w == s {
					continue
				}
				lst := &idx.In[w]
				if !side.forward {
					lst = &idx.Out[w]
				}
				e, ok := lst.Lookup(rs)
				if sd[w] >= 0 && dR[w] == sd[w] {
					if !ok {
						t.Fatalf("%s: missing %s(%d) entry for hub %d (want d=%d c=%d)",
							ctx, side.name, w, s, dR[w], cR[w])
					}
					if e.Dist() != int(dR[w]) || e.Count() != cR[w] {
						t.Fatalf("%s: %s(%d) hub %d = (%d,%d), want (%d,%d)",
							ctx, side.name, w, s, e.Dist(), e.Count(), dR[w], cR[w])
					}
				} else if ok && sd[w] >= 0 && e.Dist() <= int(sd[w]) {
					t.Fatalf("%s: %s(%d) hub %d entry (%d,%d) not dominated (sd=%d)",
						ctx, side.name, w, s, e.Dist(), e.Count(), sd[w])
				}
			}
		}
	}
}

func TestESPCInvariantUnderMixedUpdates(t *testing.T) {
	for _, strat := range []Strategy{Redundancy, Minimality} {
		for seed := int64(0); seed < 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 8 + r.Intn(8)
			g := randomGraph(r, n, n*2)
			idx, _ := Build(g, order.ByDegree(g), Options{Strategy: strat})
			checkESPCInvariant(t, idx, g, fmt.Sprintf("%v seed %d build", strat, seed))
			for k := 0; k < 40; k++ {
				u, v := r.Intn(n), r.Intn(n)
				if u == v {
					continue
				}
				var op string
				if g.HasEdge(u, v) {
					op = "del"
					if _, err := idx.DeleteEdge(u, v); err != nil {
						t.Fatal(err)
					}
				} else {
					op = "ins"
					if _, err := idx.InsertEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
				checkESPCInvariant(t, idx, g,
					fmt.Sprintf("%v seed %d step %d %s (%d,%d)", strat, seed, k, op, u, v))
			}
		}
	}
}

// Under minimality, a third clause holds: no entry is dominated at all.
func TestMinimalityLeavesNoDominatedEntries(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 12
	g := randomGraph(r, n, n*2)
	idx, _ := Build(g, order.ByDegree(g), Options{Strategy: Minimality})
	for k := 0; k < 30; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			_, _ = idx.DeleteEdge(u, v)
		} else {
			_, _ = idx.InsertEdge(u, v)
		}
	}
	for w := 0; w < n; w++ {
		for _, e := range idx.In[w].Entries() {
			h := idx.Ord.VertexAt(e.Hub())
			if d := idx.Dist(h, w); e.Dist() > d {
				t.Fatalf("dominated entry survived minimality: Lin(%d) hub %d d=%d sd=%d",
					w, h, e.Dist(), d)
			}
		}
		for _, e := range idx.Out[w].Entries() {
			h := idx.Ord.VertexAt(e.Hub())
			if d := idx.Dist(w, h); e.Dist() > d {
				t.Fatalf("dominated entry survived minimality: Lout(%d) hub %d d=%d sd=%d",
					w, h, e.Dist(), d)
			}
		}
	}
}
