package pll

import (
	"repro/internal/label"
)

// Unreachable is returned by Dist when no path exists under the index.
const Unreachable = label.Unreachable

// Dist returns the shortest distance from s to t under the index, or
// Unreachable. Dist(v,v) is 0 via the self labels.
func (idx *Index) Dist(s, t int) int {
	return label.JoinDist(&idx.Out[s], &idx.In[t])
}

// CountPaths evaluates SPCnt(s,t) (Equations 1-2): the shortest distance
// from s to t and the number of shortest paths. Unreachable pairs return
// (Unreachable, 0). Counts saturate at bitpack.MaxCount. With hit
// counters enabled the join also attributes the answer to its winning
// hub (identical distance and count either way).
func (idx *Index) CountPaths(s, t int) (dist int, count uint64) {
	if idx.hubHits != nil {
		d, c, hub := label.JoinBest(&idx.Out[s], &idx.In[t])
		if hub >= 0 {
			idx.hubHits[hub].n.Add(1)
		}
		return d, c
	}
	return label.Join(&idx.Out[s], &idx.In[t])
}

// CountPathsBounded is CountPaths restricted to distances ≤ maxDist: it
// returns (Unreachable, 0) when the true distance exceeds the bound,
// without paying any count arithmetic for over-bound hub pairs.
func (idx *Index) CountPathsBounded(s, t, maxDist int) (dist int, count uint64) {
	return label.JoinBounded(&idx.Out[s], &idx.In[t], maxDist)
}

// InLabel exposes v's in-label list (read-only use).
func (idx *Index) InLabel(v int) *label.List { return &idx.In[v] }

// OutLabel exposes v's out-label list (read-only use).
func (idx *Index) OutLabel(v int) *label.List { return &idx.Out[v] }
