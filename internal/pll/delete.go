package pll

import (
	"sort"
	"time"

	"repro/internal/bitpack"
	"repro/internal/label"
)

// DeleteEdge removes edge (a,b) from the graph and repairs the index with
// the paper's three-step decremental algorithm (§V-C):
//
//  1. identify the affected vertex sets using *pre-deletion* distances —
//     SA = {v : sd(v,a)+1 = sd(v,b)} on the a side and
//     SB = {u : sd(b,u)+1 = sd(a,u)} on the b side. Every pair whose
//     distance the deletion grows — including pairs whose only record is a
//     stale dominated entry left behind by an earlier redundancy-mode
//     update — links an SA vertex to an SB vertex;
//  2. delete every label entry linking an SA hub to an SB owner and an SB
//     hub to an SA owner — a superset of the out-of-date entries;
//  3. re-run construction-style pruned counting BFSes forward from every
//     SA vertex and backward from every SB vertex on G−, in descending
//     rank order, re-inserting labels only for the affected counterpart
//     set. (See the step-3 comment for why the repair set must be wider
//     than the label hubs of a and b.)
func (idx *Index) DeleteEdge(a, b int) (UpdateStats, error) {
	start := time.Now()
	var st UpdateStats

	// Step 1 must see pre-deletion distances, so validate the edge first.
	if !idx.G.HasEdge(a, b) {
		return st, idx.G.RemoveEdge(a, b) // yields the canonical error
	}
	idx.scratch()

	distToA := idx.bfsDistances(a, false)
	distToB := idx.bfsDistances(b, false)
	distFromA := idx.bfsDistances(a, true)
	distFromB := idx.bfsDistances(b, true)

	n := idx.G.NumVertices()
	inSA := make([]bool, n)
	inSB := make([]bool, n)
	var sa, sb []int32
	for v := 0; v < n; v++ {
		if distToA[v] >= 0 && distToA[v]+1 == distToB[v] {
			inSA[v] = true
			sa = append(sa, int32(v))
		}
		if distFromB[v] >= 0 && distFromB[v]+1 == distFromA[v] {
			inSB[v] = true
			sb = append(sb, int32(v))
		}
	}

	if err := idx.G.RemoveEdge(a, b); err != nil {
		return st, err
	}

	// Step 2: scan the labels of affected vertices and drop every entry
	// linking an SA hub to an SB owner (in-side) or an SB hub to an SA
	// owner (out-side). Self entries are never dropped — no edge deletion
	// can invalidate the empty path.
	//
	// The drop must cover the full SA × SB rectangle, not just the hubs
	// currently listed in Lin(a)/Lout(b): under the redundancy strategy a
	// dominated entry left behind by an earlier update keeps a distance
	// larger than the (then) shortest one, so its path prefix through a is
	// no longer a shortest path and its hub has no reason to still appear
	// in Lin(a) — yet this deletion can raise the pair's true distance
	// past the stale entry's, at which point it would start answering
	// queries. Any such pair's distance grows, which places (hub, owner)
	// in SA × SB, so the rectangle drop catches it; step 3 re-inserts
	// whatever was still valid.
	var drop []int
	for _, y32 := range sb {
		y := int(y32)
		yRank := idx.Ord.Rank(y)
		drop = drop[:0]
		idx.In[y].Each(func(e bitpack.Entry) bool {
			if e.Hub() != yRank && inSA[idx.Ord.VertexAt(e.Hub())] {
				drop = append(drop, e.Hub())
			}
			return true
		})
		for _, h := range drop {
			if idx.removeInEntry(y, h) {
				st.EntriesRemoved++
				st.touch(y)
			}
		}
	}
	for _, x32 := range sa {
		x := int(x32)
		xRank := idx.Ord.Rank(x)
		drop = drop[:0]
		idx.Out[x].Each(func(e bitpack.Entry) bool {
			if e.Hub() != xRank && inSB[idx.Ord.VertexAt(e.Hub())] {
				drop = append(drop, e.Hub())
			}
			return true
		})
		for _, h := range drop {
			if idx.removeOutEntry(x, h) {
				st.EntriesRemoved++
				st.touch(x)
			}
		}
	}

	// Step 3: repair in descending rank order so lower hubs' pruning
	// queries see already-repaired higher entries, as in construction.
	//
	// The repair passes must run from *every* SA vertex forward and every
	// SB vertex backward, not just from the label hubs of a and b: when a
	// pair's distance grows, the new (longer) shortest paths can have a
	// top-ranked vertex that had no pre-deletion label relationship with
	// a or b — only the distance conditions defining SA/SB are guaranteed
	// for it. Most passes die immediately under rank and distance pruning.
	// A pass can only insert entries at counterpart vertices ranked below
	// its hub, so hubs ranked below every counterpart are skipped.
	lowestSA, lowestSB := -1, -1 // numerically largest rank in each set
	repairA := make(map[int]bool, len(sa))
	for _, v := range sa {
		r := idx.Ord.Rank(int(v))
		if r > lowestSA {
			lowestSA = r
		}
		if idx.HubFilter != nil && !idx.HubFilter(int(v)) {
			continue // never a hub; nothing of its could need repair
		}
		repairA[r] = true
	}
	repairB := make(map[int]bool, len(sb))
	for _, v := range sb {
		r := idx.Ord.Rank(int(v))
		if r > lowestSB {
			lowestSB = r
		}
		if idx.HubFilter != nil && !idx.HubFilter(int(v)) {
			continue
		}
		repairB[r] = true
	}
	ranks := make([]int, 0, len(repairA)+len(repairB))
	for r := range repairA {
		ranks = append(ranks, r)
	}
	for r := range repairB {
		if !repairA[r] {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	st.AffectedHubs = len(ranks)
	for _, rk := range ranks {
		if repairA[rk] && rk < lowestSB {
			idx.repairPass(rk, true, inSB, &st)
		}
		if repairB[rk] && rk < lowestSA {
			idx.repairPass(rk, false, inSA, &st)
		}
	}
	st.Duration = time.Since(start)
	return st, nil
}

// bfsDistances runs a plain BFS from src over out-edges (forward) or
// in-edges (!forward) and returns the distance array (-1 = unreachable).
func (idx *Index) bfsDistances(src int, forward bool) []int32 {
	n := idx.G.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		w := int(queue[head])
		for _, u := range idx.neighbors(w, forward) {
			if d[u] == -1 {
				d[u] = d[w] + 1
				queue = append(queue, u)
			}
		}
	}
	return d
}

// repairPass re-runs a construction-style pruned counting BFS from the hub
// with rank vkRank on the post-deletion graph, inserting labels only for
// vertices in the targets set. forward repairs in-labels over out-edges;
// !forward repairs out-labels over in-edges. The prune test probes the
// hub-indexed scatter of the anchor list, which no repair write can touch
// mid-pass (the BFS never revisits the hub and repair never cleans).
func (idx *Index) repairPass(vkRank int, forward bool, targets []bool, st *UpdateStats) {
	vk := idx.Ord.VertexAt(vkRank)
	s := idx.scratch()

	var anchor *label.List
	if forward {
		anchor = &idx.Out[vk]
	} else {
		anchor = &idx.In[vk]
	}
	s.Scatter(anchor)
	defer s.Unscatter(anchor)
	defer s.Reset()

	s.Visit(vk, 0, 1)
	for _, u := range idx.neighbors(vk, forward) {
		if idx.Ord.Rank(int(u)) > vkRank {
			s.Visit(int(u), 1, 1)
			s.Queue = append(s.Queue, u)
		}
	}

	for head := 0; head < len(s.Queue); head++ {
		w := int(s.Queue[head])
		st.Visited++
		dw := int(s.Dist[w])
		var dq int
		if forward {
			dq = s.Probe(&idx.In[w], dw)
		} else {
			dq = s.Probe(&idx.Out[w], dw)
		}
		if dq < dw {
			continue // vk is not the highest rank on any shortest path
		}
		if targets[w] {
			e := bitpack.Pack(vkRank, int(s.Dist[w]), s.Cnt[w])
			st.touch(w)
			if forward {
				if idx.In[w].Set(e) {
					idx.entries++
					st.EntriesAdded++
					idx.addInvIn(vkRank, w)
				} else {
					st.EntriesChanged++
				}
			} else {
				if idx.Out[w].Set(e) {
					idx.entries++
					st.EntriesAdded++
					idx.addInvOut(vkRank, w)
				} else {
					st.EntriesChanged++
				}
			}
		}
		for _, u := range idx.neighbors(w, forward) {
			switch {
			case s.Dist[u] == -1:
				if idx.Ord.Rank(int(u)) > vkRank {
					s.Visit(int(u), s.Dist[w]+1, s.Cnt[w])
					s.Queue = append(s.Queue, u)
				}
			case s.Dist[u] == s.Dist[w]+1:
				s.Cnt[u] = bitpack.SatAdd(s.Cnt[u], s.Cnt[w])
			}
		}
	}
}
