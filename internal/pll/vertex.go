package pll

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/label"
)

// AddVertex grows the graph by one isolated vertex, assigns it the lowest
// rank, and gives it its self labels. Adding at the bottom of the order
// cannot disturb any existing label: an isolated vertex lies on no path,
// and once edges arrive the normal InsertEdge maintenance covers it. The
// paper treats vertex updates as a sequence of edge updates (§II, §V);
// this is the missing first step of that sequence.
func (idx *Index) AddVertex() (int, error) {
	n := idx.G.NumVertices()
	if n > bitpack.MaxHub {
		return 0, fmt.Errorf("pll: vertex limit %d reached (23-bit hub encoding)", bitpack.MaxHub+1)
	}
	v := idx.G.AddVertex()
	r := idx.Ord.Extend(v)
	idx.In = append(idx.In, label.List{})
	idx.Out = append(idx.Out, label.List{})
	if idx.invIn != nil {
		idx.invIn = append(idx.invIn, nil)
		idx.invOut = append(idx.invOut, nil)
	}
	self := bitpack.Pack(r, 0, 1)
	idx.AppendIn(v, self)
	idx.AppendOut(v, self)
	idx.canonical += 2
	// Grow the scratch before any update pass can run: the update BFSes
	// index Dist/Cnt by the new vertex id and the hub scatter by its rank.
	idx.scratch()
	return v, nil
}

// SetInEntry force-sets an in-label entry, keeping the inverted index
// consistent. Reserved for structural growth (the CSC couple rule); the
// dynamic algorithms go through updateLabel.
func (idx *Index) SetInEntry(v, hubRank, dist int, count uint64) {
	if idx.In[v].Set(bitpack.Pack(hubRank, dist, count)) {
		idx.entries++
		idx.addInvIn(hubRank, v)
	}
}

// DetachVertex removes every incident edge of v through the maintained
// DeleteEdge path, leaving v isolated (dense ids are never compacted).
// It returns the number of edges removed.
func (idx *Index) DetachVertex(v int) (int, error) {
	removed := 0
	// Copy the adjacency before mutating it.
	out := append([]int32(nil), idx.G.Out(v)...)
	for _, w := range out {
		if _, err := idx.DeleteEdge(v, int(w)); err != nil {
			return removed, err
		}
		removed++
	}
	in := append([]int32(nil), idx.G.In(v)...)
	for _, w := range in {
		if _, err := idx.DeleteEdge(int(w), v); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
