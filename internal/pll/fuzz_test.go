package pll_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pll"
)

// validIndexBytes serializes a small real index for use as a fuzz seed
// and truncation corpus.
func validIndexBytes(tb testing.TB, seed int64) []byte {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	n := 12
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	idx, _ := pll.Build(g, order.ByDegree(g), pll.Options{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// The recovery path (engine snapshots) feeds ReadIndex whatever survived
// a crash: arbitrary prefixes and bit-flipped bytes must never panic, and
// whatever parses must re-serialize stably. csc.Read layers the bipartite
// reconstruction on top and gets the same treatment.
func FuzzReadIndex(f *testing.F) {
	valid := validIndexBytes(f, 1)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("CSCIDX01"))
	f.Add([]byte{})
	// A couple of deterministic corruptions as seeds.
	for _, off := range []int{8, 12, 16, len(valid) - 5} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x41
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := pll.ReadIndex(bytes.NewReader(data))
		if err != nil {
			if idx != nil {
				t.Fatal("non-nil index returned with error")
			}
			if !errors.Is(err, pll.ErrBadFormat) {
				t.Fatalf("error does not wrap ErrBadFormat: %v", err)
			}
		} else {
			// Whatever parsed must be usable and roundtrip-stable.
			n := idx.G.NumVertices()
			for v := 0; v < n && v < 4; v++ {
				idx.Dist(v, 0)
				idx.CountPaths(0, v)
			}
			var out bytes.Buffer
			if _, err := idx.WriteTo(&out); err != nil {
				t.Fatalf("re-serialize: %v", err)
			}
			if _, err := pll.ReadIndex(bytes.NewReader(out.Bytes())); err != nil {
				t.Fatalf("roundtrip of parsed index failed: %v", err)
			}
		}
		// The CSC layer must be exactly as robust (it wraps ReadIndex and
		// reconstructs the original graph from the conversion).
		if x, err := csc.Read(bytes.NewReader(data)); err == nil && x.Graph().NumVertices() > 0 {
			x.CycleCount(0)
		}
	})
}

// No silent short reads: every strict prefix of a valid stream must fail
// with a descriptive error, never parse as a smaller index.
func TestReadIndexTruncationsAllFail(t *testing.T) {
	valid := validIndexBytes(t, 2)
	if _, err := pll.ReadIndex(bytes.NewReader(valid)); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut++ {
		idx, err := pll.ReadIndex(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed silently", cut, len(valid))
		}
		if idx != nil {
			t.Fatalf("prefix of %d bytes returned an index with its error", cut)
		}
		if !errors.Is(err, pll.ErrBadFormat) {
			t.Fatalf("prefix of %d bytes: error %v does not wrap ErrBadFormat", cut, err)
		}
	}
}

// Hostile headers must be rejected up front, not drive huge loops or
// allocations.
func TestReadIndexHostileHeaders(t *testing.T) {
	le := func(b []byte, vals ...uint32) []byte {
		for _, v := range vals {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return b
	}
	cases := map[string][]byte{
		"edge count beyond n(n-1)": le([]byte("CSCIDX01"), 4, 4000000000, 0),
		"unknown strategy":         append(le([]byte("CSCIDX01"), 2, 0), 99),
		"huge label list": append(append(
			le([]byte("CSCIDX01"), 1, 0), 0), // n=1, m=0, strategy 0
			le(nil, 0 /* order: vertex 0 */, 4000000000 /* inLen */)...),
	}
	for name, data := range cases {
		if _, err := pll.ReadIndex(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: parsed without error", name)
		} else if !errors.Is(err, pll.ErrBadFormat) {
			t.Errorf("%s: %v does not wrap ErrBadFormat", name, err)
		}
	}
}
