package pll

import (
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/testgraphs"
)

func TestAddVertexIsolatedThenConnected(t *testing.T) {
	g := testgraphs.Triangle()
	idx, _ := Build(g, order.ByDegree(g), Options{})
	v, err := idx.AddVertex()
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("id = %d", v)
	}
	// Fresh vertex: reachable only from itself.
	if d, c := idx.CountPaths(v, v); d != 0 || c != 1 {
		t.Fatalf("self = (%d,%d)", d, c)
	}
	if d, _ := idx.CountPaths(0, v); d != Unreachable {
		t.Fatalf("phantom path to fresh vertex: %d", d)
	}
	// Wire it in through maintained insertions and verify.
	if _, err := idx.InsertEdge(0, v); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertEdge(v, 2); err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, idx, g, "after AddVertex wiring")
}

func TestAddVertexRepeatedUnderMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	g := testgraphs.DiamondCycles()
	idx, _ := Build(g, order.ByDegree(g), Options{Strategy: Minimality})
	for k := 0; k < 10; k++ {
		v, err := idx.AddVertex()
		if err != nil {
			t.Fatal(err)
		}
		u := r.Intn(v)
		if !g.HasEdge(u, v) {
			if _, err := idx.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertMatchesOracle(t, idx, g, "grown under minimality")
}

func TestDetachVertexEngine(t *testing.T) {
	g := testgraphs.Figure2()
	idx, _ := Build(g, order.ByDegree(g), Options{})
	removed, err := idx.DetachVertex(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 { // v1: out {v3,v4,v5}, in {v10}
		t.Fatalf("removed %d", removed)
	}
	if g.Degree(0) != 0 {
		t.Fatal("vertex not isolated")
	}
	assertMatchesOracle(t, idx, g, "after detach")
}
