package pll

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// entry is an unpacked label entry in paper notation for test tables.
type entry struct {
	hub  int // vertex id (zero-based), not rank
	dist int
	cnt  uint64
}

// tableII is the paper's Table II — the complete HP-SPC labeling of the
// Figure 2 graph under the Example 4 degree order — zero-based.
var tableII = map[int]struct{ in, out []entry }{
	0: {in: []entry{{0, 0, 1}}, out: []entry{{0, 0, 1}}},
	1: {in: []entry{{0, 6, 2}, {6, 4, 1}, {9, 1, 1}, {1, 0, 1}},
		out: []entry{{0, 6, 1}, {6, 2, 1}, {3, 1, 1}, {1, 0, 1}}},
	2: {in: []entry{{0, 1, 1}, {2, 0, 1}},
		out: []entry{{0, 6, 1}, {6, 2, 1}, {2, 0, 1}}},
	3: {in: []entry{{0, 1, 1}, {6, 5, 1}, {3, 0, 1}},
		out: []entry{{0, 5, 1}, {6, 1, 1}, {3, 0, 1}}},
	4: {in: []entry{{0, 1, 1}, {4, 0, 1}},
		out: []entry{{0, 5, 1}, {6, 1, 1}, {4, 0, 1}}},
	5: {in: []entry{{0, 2, 1}, {2, 1, 1}, {5, 0, 1}},
		out: []entry{{0, 5, 1}, {6, 1, 1}, {5, 0, 1}}},
	6: {in: []entry{{0, 2, 2}, {6, 0, 1}},
		out: []entry{{0, 4, 1}, {6, 0, 1}}},
	7: {in: []entry{{0, 3, 2}, {6, 1, 1}, {7, 0, 1}},
		out: []entry{{0, 3, 1}, {6, 5, 1}, {3, 4, 1}, {9, 2, 1}, {7, 0, 1}}},
	8: {in: []entry{{0, 4, 2}, {6, 2, 1}, {7, 1, 1}, {8, 0, 1}},
		out: []entry{{0, 2, 1}, {6, 4, 1}, {3, 3, 1}, {9, 1, 1}, {8, 0, 1}}},
	9: {in: []entry{{0, 5, 2}, {6, 3, 1}, {9, 0, 1}},
		out: []entry{{0, 1, 1}, {6, 3, 1}, {3, 2, 1}, {9, 0, 1}}},
}

func buildFigure2(t testing.TB, strategy Strategy) *Index {
	t.Helper()
	g := testgraphs.Figure2()
	idx, _ := Build(g, order.ByDegree(g), Options{Strategy: strategy})
	return idx
}

func TestBuildReproducesTableII(t *testing.T) {
	idx := buildFigure2(t, Redundancy)
	for v, want := range tableII {
		checkList(t, idx, v, "Lin", idx.In[v].Entries(), want.in)
		checkList(t, idx, v, "Lout", idx.Out[v].Entries(), want.out)
	}
}

func checkList(t *testing.T, idx *Index, v int, side string, got interface {
	// bitpack entries
}, want []entry) {
	t.Helper()
	lst := idx.In[v]
	if side == "Lout" {
		lst = idx.Out[v]
	}
	if lst.Len() != len(want) {
		t.Errorf("v%d %s: %d entries, want %d", v+1, side, lst.Len(), len(want))
		return
	}
	for _, w := range want {
		e, ok := lst.Lookup(idx.Ord.Rank(w.hub))
		if !ok {
			t.Errorf("v%d %s: missing hub v%d", v+1, side, w.hub+1)
			continue
		}
		if e.Dist() != w.dist || e.Count() != w.cnt {
			t.Errorf("v%d %s hub v%d: (%d,%d), want (%d,%d)",
				v+1, side, w.hub+1, e.Dist(), e.Count(), w.dist, w.cnt)
		}
	}
}

func TestQueryPaperExample2(t *testing.T) {
	idx := buildFigure2(t, Redundancy)
	// SPCnt(v10, v8) = 3 with distance 4 (Example 2).
	d, c := idx.CountPaths(9, 7)
	if d != 4 || c != 3 {
		t.Fatalf("SPCnt(v10,v8) = (%d,%d), want (4,3)", d, c)
	}
}

func TestSelfAndUnreachableQueries(t *testing.T) {
	idx := buildFigure2(t, Redundancy)
	if d, c := idx.CountPaths(3, 3); d != 0 || c != 1 {
		t.Fatalf("self query = (%d,%d)", d, c)
	}
	g := testgraphs.DAG()
	dag, _ := Build(g, order.ByDegree(g), Options{})
	if d, c := dag.CountPaths(5, 0); d != Unreachable || c != 0 {
		t.Fatalf("unreachable = (%d,%d)", d, c)
	}
}

func randomGraph(r *rand.Rand, n, m int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// assertMatchesOracle compares every pair's CountPaths against the BFS
// oracle, and bails with context on the first mismatch.
func assertMatchesOracle(t *testing.T, idx *Index, g *graph.Digraph, ctx string) {
	t.Helper()
	n := g.NumVertices()
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			d, c := idx.CountPaths(s, u)
			od, oc := bfscount.SPCount(g, s, u)
			if od == bfscount.NoCycle {
				if d != Unreachable || c != 0 {
					t.Fatalf("%s: pair (%d,%d) index=(%d,%d), oracle unreachable", ctx, s, u, d, c)
				}
				continue
			}
			if d != od || c != oc {
				t.Fatalf("%s: pair (%d,%d) index=(%d,%d), oracle=(%d,%d)", ctx, s, u, d, c, od, oc)
			}
		}
	}
}

func TestBuildMatchesOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(18)
		g := randomGraph(r, n, n*3)
		idx, st := Build(g, order.ByDegree(g), Options{})
		assertMatchesOracle(t, idx, g, "build")
		if st.Entries != idx.EntryCount() || st.Bytes != idx.Bytes() {
			t.Fatalf("stats inconsistent: %+v vs %d", st, idx.EntryCount())
		}
	}
}

func TestInsertEdgeMatchesOracle(t *testing.T) {
	for _, strat := range []Strategy{Redundancy, Minimality} {
		for seed := int64(0); seed < 15; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 4 + r.Intn(14)
			g := randomGraph(r, n, n*2)
			idx, _ := Build(g, order.ByDegree(g), Options{Strategy: strat})
			for k := 0; k < 8; k++ {
				u, v := r.Intn(n), r.Intn(n)
				if u == v || g.HasEdge(u, v) {
					continue
				}
				if _, err := idx.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
				assertMatchesOracle(t, idx, g, strat.String()+" insert")
			}
		}
	}
}

func TestDeleteEdgeMatchesOracle(t *testing.T) {
	for _, strat := range []Strategy{Redundancy, Minimality} {
		for seed := int64(100); seed < 115; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 4 + r.Intn(14)
			g := randomGraph(r, n, n*3)
			idx, _ := Build(g, order.ByDegree(g), Options{Strategy: strat})
			for k := 0; k < 8; k++ {
				edges := g.Edges()
				if len(edges) == 0 {
					break
				}
				e := edges[r.Intn(len(edges))]
				if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
					t.Fatal(err)
				}
				assertMatchesOracle(t, idx, g, strat.String()+" delete")
			}
		}
	}
}

func TestMixedUpdateSequence(t *testing.T) {
	for _, strat := range []Strategy{Redundancy, Minimality} {
		r := rand.New(rand.NewSource(7))
		n := 14
		g := randomGraph(r, n, n*2)
		idx, _ := Build(g, order.ByDegree(g), Options{Strategy: strat})
		for k := 0; k < 60; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				if _, err := idx.DeleteEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := idx.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			if k%10 == 9 {
				assertMatchesOracle(t, idx, g, strat.String()+" mixed")
			}
		}
		assertMatchesOracle(t, idx, g, strat.String()+" mixed-final")
	}
}

// Under the minimality strategy the maintained index must be *identical*
// to a from-scratch rebuild: the minimal ESPC label set is unique —
// entry (h,d,c) ∈ Lin(w) exists iff h is the top-ranked vertex on some
// shortest h→w path, with d and c fully determined (Theorem V.3).
func TestMinimalityEqualsRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 12
	g := randomGraph(r, n, n*2)
	idx, _ := Build(g, order.ByDegree(g), Options{Strategy: Minimality})
	ord := idx.Ord
	for k := 0; k < 30; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if _, err := idx.DeleteEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := idx.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		fresh, _ := Build(g.Clone(), ord, Options{})
		for w := 0; w < n; w++ {
			if !listsEqual(idx.In[w].Entries(), fresh.In[w].Entries()) {
				t.Fatalf("step %d: Lin(%d) maintained %v != rebuilt %v",
					k, w, idx.In[w].Entries(), fresh.In[w].Entries())
			}
			if !listsEqual(idx.Out[w].Entries(), fresh.Out[w].Entries()) {
				t.Fatalf("step %d: Lout(%d) maintained %v != rebuilt %v",
					k, w, idx.Out[w].Entries(), fresh.Out[w].Entries())
			}
		}
	}
}

func listsEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertDeleteRoundtripQueries(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 12
	g := randomGraph(r, n, n*2)
	idx, _ := Build(g, order.ByDegree(g), Options{})
	type pq struct {
		d int
		c uint64
	}
	before := make(map[[2]int]pq)
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			d, c := idx.CountPaths(s, u)
			before[[2]int{s, u}] = pq{d, c}
		}
	}
	// Insert a batch of fresh edges, then delete them in reverse.
	var added [][2]int
	for k := 0; k < 6; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if _, err := idx.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
		added = append(added, [2]int{u, v})
	}
	for i := len(added) - 1; i >= 0; i-- {
		if _, err := idx.DeleteEdge(added[i][0], added[i][1]); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			d, c := idx.CountPaths(s, u)
			w := before[[2]int{s, u}]
			if d != w.d || c != w.c {
				t.Fatalf("pair (%d,%d): (%d,%d) after roundtrip, want (%d,%d)", s, u, d, c, w.d, w.c)
			}
		}
	}
}

func TestUpdateErrors(t *testing.T) {
	idx := buildFigure2(t, Redundancy)
	if _, err := idx.InsertEdge(0, 2); err == nil {
		t.Error("duplicate insert accepted")
	}
	if _, err := idx.InsertEdge(0, 0); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := idx.DeleteEdge(0, 7); err == nil {
		t.Error("missing delete accepted")
	}
}

func TestHubFilterSelfLabelsOnly(t *testing.T) {
	g := testgraphs.Triangle()
	idx, _ := Build(g, order.ByID(3), Options{HubFilter: func(v int) bool { return v == 0 }})
	// Vertices 1 and 2 must still carry self labels.
	for v := 1; v <= 2; v++ {
		if _, ok := idx.In[v].Lookup(idx.Ord.Rank(v)); !ok {
			t.Fatalf("vertex %d missing in self label", v)
		}
		if _, ok := idx.Out[v].Lookup(idx.Ord.Rank(v)); !ok {
			t.Fatalf("vertex %d missing out self label", v)
		}
	}
	// Only vertex 0 may appear as a foreign hub.
	for v := 0; v < 3; v++ {
		for _, e := range idx.In[v].Entries() {
			h := idx.Ord.VertexAt(e.Hub())
			if h != v && h != 0 {
				t.Fatalf("unexpected hub %d in Lin(%d)", h, v)
			}
		}
	}
}

func TestUpdateStatsPopulated(t *testing.T) {
	g := testgraphs.Figure2()
	g2 := g.Clone()
	if err := g2.RemoveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	idx, _ := Build(g2, order.ByDegree(g), Options{})
	st, err := idx.InsertEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.AffectedHubs == 0 || st.Visited == 0 || st.EntriesAdded+st.EntriesChanged == 0 {
		t.Fatalf("insert stats empty: %+v", st)
	}
	st, err = idx.DeleteEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.AffectedHubs == 0 {
		t.Fatalf("delete stats empty: %+v", st)
	}
}
