// Package pll implements the generic pruned-landmark counting-label engine
// that both indexes in the paper are instances of:
//
//   - the HP-SPC baseline (Zhang & Yu, SIGMOD'20; paper §II-B) is the
//     engine applied to the original graph G with every vertex as a hub;
//   - the CSC index (§IV) is the engine applied to the bipartite
//     conversion Gb with only incoming vertices serving as hubs (the
//     couple-vertex-skipping construction in internal/csc produces labels
//     identical to this engine's — a property the tests assert).
//
// The engine covers construction under the Exact Shortest Path Covering
// constraint with canonical and non-canonical labels, SPCnt queries
// (Equations 1-2), the INCCNT incremental update (Algorithms 5-8) and the
// three-step decremental repair (§V-C), under either the redundancy or the
// minimality maintenance strategy (§V-B).
//
// Construction runs on the fast-path label pipeline: hub-indexed pruning
// (the prune test probes a rank-indexed scatter of the hub's own label
// instead of merge-joining two lists), rank-batched parallel hub BFSes
// whose stages are merged deterministically in rank order (labels are
// byte-identical to a sequential build), and a post-construction freeze of
// all label lists into one contiguous CSR arena (label.Arena).
//
// An Index is not safe for concurrent mutation. Queries do not mutate and
// may run concurrently with each other, but not with updates.
package pll

import (
	"sync/atomic"
	"time"

	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// Strategy selects how aggressively updates keep the label minimal (§V-B).
type Strategy uint8

const (
	// Redundancy leaves dominated (out-of-date) label entries in place
	// after updates. Queries stay correct because dominated entries never
	// realize the minimum distance; updates are much faster. This is the
	// strategy the paper recommends and uses for its largest graphs.
	Redundancy Strategy = iota
	// Minimality runs CLEAN LABEL (Algorithm 8) after label improvements,
	// removing every redundant entry so Theorem V.3's minimality holds.
	Minimality
)

func (s Strategy) String() string {
	if s == Minimality {
		return "minimality"
	}
	return "redundancy"
}

// Options configures Build.
type Options struct {
	// Strategy chooses the dynamic maintenance strategy.
	Strategy Strategy
	// HubFilter, when non-nil, restricts which vertices run hub BFSes.
	// Filtered-out vertices still receive their own self labels. The CSC
	// scheme uses this to make only V_in vertices hubs.
	HubFilter func(v int) bool
	// Workers sets the construction parallelism: 0 uses every core
	// (runtime.GOMAXPROCS), 1 forces the sequential path. Parallel builds
	// produce labels byte-identical to sequential ones.
	Workers int
}

// BuildStats summarizes a construction run.
type BuildStats struct {
	Entries      int           // total label entries across all lists
	Canonical    int           // entries whose count is |SP(v,w)|
	NonCanonical int           // entries counting a proper subset
	Bytes        int           // 8 bytes per entry (64-bit packed encoding)
	Duration     time.Duration // wall-clock construction time
}

// UpdateStats summarizes one InsertEdge/DeleteEdge maintenance run.
type UpdateStats struct {
	AffectedHubs   int // |hubA ∪ hubB|
	Visited        int // vertices dequeued across all resumed BFSes
	EntriesAdded   int // label entries newly inserted
	EntriesChanged int // label entries replaced or count-accumulated
	EntriesRemoved int // label entries deleted (step 2 + cleaning)
	Duration       time.Duration

	// PlanDuration and BuildDuration split Duration for batch entry
	// points: planning/reconciling the batch vs running the per-shard
	// maintenance and component rebuilds. Zero for single-edge updates.
	PlanDuration  time.Duration
	BuildDuration time.Duration

	// TouchedOwners lists the vertices whose label lists were mutated
	// (with duplicates). Everything a query could answer differently
	// after the update involves at least one touched owner, so consumers
	// like the top-K monitor re-score only these.
	TouchedOwners []int32
}

func (st *UpdateStats) touch(v int) {
	st.TouchedOwners = append(st.TouchedOwners, int32(v))
}

// Index is a 2-hop counting label over a directed graph.
type Index struct {
	G   *graph.Digraph
	Ord *order.Order

	// In[v] holds entries (h, sd(h,v), θ) — paths from hub h to v.
	// Out[v] holds entries (h, sd(v,h), θ) — paths from v to hub h.
	// Hub fields store rank positions under Ord.
	In  []label.List
	Out []label.List

	Strategy Strategy

	// HubFilter, when non-nil, marks which vertices may serve as hubs.
	// Construction honors it via Options; the dynamic algorithms skip
	// maintenance passes from filtered-out vertices, which keeps the label
	// set aligned with what a fresh construction would produce. The CSC
	// scheme filters to V_in: every covered pair's top-ranked vertex is a
	// V_in vertex, so passes from V_out vertices could only ever create
	// entries no query and no cover needs. Not serialized — the owner
	// re-installs it after ReadIndex (see internal/csc.Read).
	HubFilter func(v int) bool

	// Inverted indexes for minimality cleaning (§V-A): invIn[h] lists the
	// vertices whose in-label contains hub rank h; invOut[h] likewise for
	// out-labels. Built lazily; nil until first needed.
	invIn  []map[int32]struct{}
	invOut []map[int32]struct{}

	canonical    int
	nonCanonical int

	// entries caches the total label entry count; every mutation path
	// maintains it so EntryCount/Stats are O(1) instead of walking 2n
	// lists (the top-k monitor and cscbench call them in loops).
	entries int

	// arena is the frozen CSR label store, set once construction (or
	// deserialization) freezes the lists; nil while labels are still
	// per-vertex allocations.
	arena *label.Arena

	// frozen is the compressed delta+varint arena, set by FreezeCompressed
	// (construction opt-in, or a v3 deserialization). Updates thaw only the
	// lists they touch; Refreeze re-packs after a quiesce.
	frozen *label.Frozen

	// reruns counts parallel-construction stages that failed merge-time
	// validation and were rebuilt sequentially (diagnostics only).
	reruns int

	// scr is the engine-owned scratch for sequential construction and the
	// dynamic update passes. It is pooled and lazily materialized (see
	// scratch), so idle indexes — deserialized shards, shards between
	// update batches — pin no scratch memory.
	scr *Scratch

	// hubHits, when non-nil, counts per rank how often the join kernel
	// answered a CountPaths query through that hub — the online
	// re-ranker's drift signal. Increments are atomic (concurrent
	// readers); enabling/disabling must happen where index mutations are
	// serialized, since queries race on the slice header itself.
	hubHits []hitCounter
}

// hitCounter is one per-rank hub-hit cell.
type hitCounter struct{ n atomic.Uint64 }

// EnableHitCounters allocates the per-rank hub-hit counters (idempotent;
// one cell per rank). Call only where index mutations are serialized —
// the engine enables counters on its writer goroutine under the grace
// period, never concurrently with queries.
func (idx *Index) EnableHitCounters() {
	if idx.hubHits == nil {
		idx.hubHits = make([]hitCounter, idx.G.NumVertices())
	}
}

// HitCountersEnabled reports whether hub-hit recording is on.
func (idx *Index) HitCountersEnabled() bool { return idx.hubHits != nil }

// HubHits snapshots the per-rank hit counters (nil when disabled). Safe
// concurrently with queries; each cell is read atomically, the snapshot
// as a whole is only as consistent as a running workload allows.
func (idx *Index) HubHits() []uint64 {
	if idx.hubHits == nil {
		return nil
	}
	out := make([]uint64, len(idx.hubHits))
	for i := range idx.hubHits {
		out[i] = idx.hubHits[i].n.Load()
	}
	return out
}

// NewEmpty allocates an index shell with self-label-free empty lists;
// internal/csc uses it to run its own specialized construction.
func NewEmpty(g *graph.Digraph, ord *order.Order) *Index {
	n := g.NumVertices()
	return &Index{
		G:   g,
		Ord: ord,
		In:  make([]label.List, n),
		Out: make([]label.List, n),
	}
}

// Build constructs the full index with pruned counting BFSes in descending
// rank order (the HP-SPC construction of §II-B generalized with a hub
// filter), using opts.Workers parallel hub batches, and freezes the labels
// into the CSR arena.
func Build(g *graph.Digraph, ord *order.Order, opts Options) (*Index, BuildStats) {
	start := time.Now()
	idx := NewEmpty(g, ord)
	idx.Strategy = opts.Strategy
	idx.HubFilter = opts.HubFilter
	idx.RunConstruction(genericScheme{idx: idx}, opts.Workers)
	idx.FreezeArena()
	st := idx.Stats()
	st.Duration = time.Since(start)
	return idx, st
}

// genericScheme adapts the engine's own construction (one forward and one
// backward pass per hub) to the rank-batched driver.
type genericScheme struct{ idx *Index }

func (s genericScheme) IsHub(r int) bool {
	idx := s.idx
	return idx.HubFilter == nil || idx.HubFilter(idx.Ord.VertexAt(r))
}

func (s genericScheme) SelfLabels(r int) {
	idx := s.idx
	v := idx.Ord.VertexAt(r)
	self := bitpack.Pack(r, 0, 1)
	idx.AppendIn(v, self)
	idx.AppendOut(v, self)
	idx.canonical += 2
}

func (s genericScheme) RunPass(r, pass int, sc *Scratch, st *Stage) {
	s.idx.specPass(s.idx.Ord.VertexAt(r), r, pass == 0, sc, st)
}

func (s genericScheme) Anchor(r, pass int) *label.List {
	v := s.idx.Ord.VertexAt(r)
	if pass == 0 {
		return &s.idx.Out[v] // forward prune test joins Out[v] with In[w]
	}
	return &s.idx.In[v]
}

// Stats reports size statistics from the maintained counters.
func (idx *Index) Stats() BuildStats {
	return BuildStats{
		Entries:      idx.entries,
		Bytes:        8 * idx.entries,
		Canonical:    idx.canonical,
		NonCanonical: idx.nonCanonical,
	}
}

// specPass runs one pruned counting BFS from hub v (rank r) against the
// current labels, staging every append instead of writing it. forward
// stages in-labels over out-edges; !forward stages out-labels over
// in-edges (the reverse graph). The prune test probes the rank-indexed
// scatter of the hub's own anchor list — Out[v] forward, In[v] backward —
// against the candidate's list, replacing the per-dequeue merge-join.
//
// Mid-pass appends can never influence the pass's own prune tests (each
// vertex is dequeued exactly once, and its probe happens before its
// append), so staging is observationally identical to writing through.
func (idx *Index) specPass(v, r int, forward bool, s *Scratch, st *Stage) {
	st.Reset(forward, true)
	anchor := &idx.Out[v]
	if !forward {
		anchor = &idx.In[v]
	}
	s.Scatter(anchor)
	defer s.Unscatter(anchor)
	defer s.Reset()

	// Self label first (Alg 3's first dequeue): never pruned, since any
	// alternative distance through a higher hub is a cycle of length ≥ 1.
	st.Add(v, false, bitpack.Pack(r, 0, 1))
	st.Canonical(true)
	s.Visit(v, 0, 1)
	for _, u := range idx.neighbors(v, forward) {
		if idx.Ord.Rank(int(u)) > r { // v ≺ u: only lower-ranked vertices join
			s.Visit(int(u), 1, 1)
			s.Queue = append(s.Queue, u)
		}
	}

	for head := 0; head < len(s.Queue); head++ {
		w := int(s.Queue[head])
		dw := int(s.Dist[w])
		// Distance from v to w (or w to v in reverse) via higher hubs.
		var dq int
		if forward {
			dq = s.Probe(&idx.In[w], dw)
		} else {
			dq = s.Probe(&idx.Out[w], dw)
		}
		if dq < dw {
			continue // v is not the highest rank on any shortest path
		}
		st.Add(w, true, bitpack.Pack(r, dw, s.Cnt[w]))
		// dq == dw: some shortest paths run via higher hubs (non-canonical).
		st.Canonical(dq != dw)
		for _, u := range idx.neighbors(w, forward) {
			switch {
			case s.Dist[u] == -1:
				if idx.Ord.Rank(int(u)) > r {
					s.Visit(int(u), s.Dist[w]+1, s.Cnt[w])
					s.Queue = append(s.Queue, u)
				}
			case s.Dist[u] == s.Dist[w]+1:
				s.Cnt[u] = bitpack.SatAdd(s.Cnt[u], s.Cnt[w])
			}
		}
	}
}

// AppendIn appends an entry to In[v], maintaining the entry counter and
// the lazy inverted index. Construction-side use only: the entry's hub
// must be new to the list.
func (idx *Index) AppendIn(v int, e bitpack.Entry) {
	idx.In[v].Append(e)
	idx.entries++
	idx.addInvIn(e.Hub(), v)
}

// AppendOut is the out-side counterpart of AppendIn.
func (idx *Index) AppendOut(v int, e bitpack.Entry) {
	idx.Out[v].Append(e)
	idx.entries++
	idx.addInvOut(e.Hub(), v)
}

// commitTrusted appends every staged entry verbatim, trusting the stage's
// own classification — valid when the pass observed the exact label state
// a sequential build would have (sequential passes and validated reruns).
func (idx *Index) commitTrusted(st *Stage) {
	idx.appendStage(st)
	idx.canonical += st.canonical
	idx.nonCanonical += st.nonCanonical
}

// appendStage appends every staged entry in emission order.
func (idx *Index) appendStage(st *Stage) {
	if st.inSide {
		for _, op := range st.ops {
			idx.AppendIn(int(op.v), op.e)
		}
	} else {
		for _, op := range st.ops {
			idx.AppendOut(int(op.v), op.e)
		}
	}
}

// validateCommit re-runs the prune test for every checked staged entry
// against the *merged* labels (scattering the hub's live anchor list) and
// commits the stage when all pass. A single failure means an in-batch
// label would have pruned this BFS mid-flight, so the staged suffix is
// untrustworthy: the caller must rerun the pass sequentially. Entries that
// pass re-validation are provably byte-identical to what the sequential
// pass would emit, because speculative pruning is sound (a snapshot can
// only under-prune) and BFS expansion is a function of the prune outcomes.
func (idx *Index) validateCommit(anchor *label.List, st *Stage, s *Scratch) bool {
	s.Scatter(anchor)
	defer s.Unscatter(anchor)
	canonical, nonCanonical := 0, 0
	for _, op := range st.ops {
		if !op.checked {
			if st.classify {
				canonical++ // self labels are always canonical
			}
			continue
		}
		d := op.e.Dist()
		var dq int
		if st.inSide {
			dq = s.Probe(&idx.In[op.v], d)
		} else {
			dq = s.Probe(&idx.Out[op.v], d)
		}
		if dq < d {
			return false // merged labels prune this entry: stage is stale
		}
		if st.classify {
			if dq != d {
				canonical++
			} else {
				nonCanonical++
			}
		}
	}
	idx.appendStage(st)
	idx.canonical += canonical
	idx.nonCanonical += nonCanonical
	return true
}

func (idx *Index) neighbors(w int, forward bool) []int32 {
	if forward {
		return idx.G.Out(w)
	}
	return idx.G.In(w)
}

// scratch returns the index's working scratch, materializing it from the
// pool on first use and re-sizing it after the graph grew. Every
// vertex-growth, construction and update entry point must go through it
// before running a pass: the BFSes index Dist/Cnt by vertex id and the
// hub scatter by rank, so a stale size turns the first post-growth pass
// into an out-of-bounds access.
func (idx *Index) scratch() *Scratch {
	if idx.scr == nil {
		idx.scr = GetScratch(idx.G.NumVertices())
	} else {
		idx.scr.Grow(idx.G.NumVertices())
	}
	return idx.scr
}

// ReleaseScratch returns the index's scratch to the shared pool. Call it
// when no update is imminent — after a scoped shard rebuild, or at the
// end of a batch's per-shard update stream — so concurrent streams over
// many shards recycle a few scratches instead of pinning one per shard.
// The next update materializes a fresh one transparently.
func (idx *Index) ReleaseScratch() {
	PutScratch(idx.scr)
	idx.scr = nil
}

// FreezeArena packs all label lists into one contiguous CSR arena
// (label.Arena). Queries and dynamic maintenance keep working unchanged:
// each list becomes a view of its padded span, growing in place until the
// pad is exhausted and migrating out transparently afterwards.
func (idx *Index) FreezeArena() {
	idx.arena = label.Freeze(idx.In, idx.Out)
}

// Arena exposes the frozen CSR store, or nil before FreezeArena ran.
func (idx *Index) Arena() *label.Arena { return idx.arena }

// FreezeCompressed re-packs every label list from its current form (CSR
// arena spans or private slices) into one delta+varint compressed arena
// (label.Frozen). Queries stream the compressed sections — bloom
// pre-screens, sync-block seeks — and dynamic maintenance thaws only the
// lists it touches. The CSR arena, now shadowed, is released.
func (idx *Index) FreezeCompressed() {
	idx.frozen = label.FreezeCompressed(idx.In, idx.Out)
	idx.arena = nil
}

// Refreeze re-packs the compressed arena when updates have thawed lists
// since the last freeze, returning how many lists re-encoded (0 when not
// compressed or nothing thawed). Untouched sections copy verbatim, so
// the cost scales with the update footprint, not the index size.
func (idx *Index) Refreeze() int {
	if idx.frozen == nil || idx.frozen.ThawedLists() == 0 {
		return 0
	}
	n := idx.frozen.ThawedLists()
	idx.frozen = label.FreezeCompressed(idx.In, idx.Out)
	return n
}

// Compressed reports whether the labels live in the compressed arena.
func (idx *Index) Compressed() bool { return idx.frozen != nil }

// CompressedBytes returns the physical footprint of the compressed arena
// (0 when not compressed). Thawed lists' private slices are not counted.
func (idx *Index) CompressedBytes() int {
	if idx.frozen == nil {
		return 0
	}
	return idx.frozen.Bytes()
}

// FrozenArena exposes the compressed arena for serialization, or nil.
func (idx *Index) FrozenArena() *label.Frozen { return idx.frozen }

// AttachFrozen points the index's label lists at a deserialized
// compressed arena (the v3 load path): no entries decode, the lists
// stream their sections on demand.
func (idx *Index) AttachFrozen(f *label.Frozen) error {
	if err := label.AttachFrozen(f, idx.In, idx.Out); err != nil {
		return err
	}
	idx.frozen = f
	idx.arena = nil
	idx.entries = f.Entries()
	return nil
}

// Reruns reports how many parallel-construction stages failed merge-time
// validation and were rebuilt sequentially (0 for sequential builds).
func (idx *Index) Reruns() int { return idx.reruns }

// EntryCount returns the total number of label entries (O(1); the counter
// is maintained by every mutation path).
func (idx *Index) EntryCount() int { return idx.entries }

// Bytes returns the label storage footprint in bytes (8 per entry).
func (idx *Index) Bytes() int { return 8 * idx.entries }
