// Package pll implements the generic pruned-landmark counting-label engine
// that both indexes in the paper are instances of:
//
//   - the HP-SPC baseline (Zhang & Yu, SIGMOD'20; paper §II-B) is the
//     engine applied to the original graph G with every vertex as a hub;
//   - the CSC index (§IV) is the engine applied to the bipartite
//     conversion Gb with only incoming vertices serving as hubs (the
//     couple-vertex-skipping construction in internal/csc produces labels
//     identical to this engine's — a property the tests assert).
//
// The engine covers construction under the Exact Shortest Path Covering
// constraint with canonical and non-canonical labels, SPCnt queries
// (Equations 1-2), the INCCNT incremental update (Algorithms 5-8) and the
// three-step decremental repair (§V-C), under either the redundancy or the
// minimality maintenance strategy (§V-B).
//
// An Index is not safe for concurrent mutation. Queries do not mutate and
// may run concurrently with each other, but not with updates.
package pll

import (
	"time"

	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// Strategy selects how aggressively updates keep the label minimal (§V-B).
type Strategy uint8

const (
	// Redundancy leaves dominated (out-of-date) label entries in place
	// after updates. Queries stay correct because dominated entries never
	// realize the minimum distance; updates are much faster. This is the
	// strategy the paper recommends and uses for its largest graphs.
	Redundancy Strategy = iota
	// Minimality runs CLEAN LABEL (Algorithm 8) after label improvements,
	// removing every redundant entry so Theorem V.3's minimality holds.
	Minimality
)

func (s Strategy) String() string {
	if s == Minimality {
		return "minimality"
	}
	return "redundancy"
}

// Options configures Build.
type Options struct {
	// Strategy chooses the dynamic maintenance strategy.
	Strategy Strategy
	// HubFilter, when non-nil, restricts which vertices run hub BFSes.
	// Filtered-out vertices still receive their own self labels. The CSC
	// scheme uses this to make only V_in vertices hubs.
	HubFilter func(v int) bool
}

// BuildStats summarizes a construction run.
type BuildStats struct {
	Entries      int           // total label entries across all lists
	Canonical    int           // entries whose count is |SP(v,w)|
	NonCanonical int           // entries counting a proper subset
	Bytes        int           // 8 bytes per entry (64-bit packed encoding)
	Duration     time.Duration // wall-clock construction time
}

// UpdateStats summarizes one InsertEdge/DeleteEdge maintenance run.
type UpdateStats struct {
	AffectedHubs   int // |hubA ∪ hubB|
	Visited        int // vertices dequeued across all resumed BFSes
	EntriesAdded   int // label entries newly inserted
	EntriesChanged int // label entries replaced or count-accumulated
	EntriesRemoved int // label entries deleted (step 2 + cleaning)
	Duration       time.Duration

	// TouchedOwners lists the vertices whose label lists were mutated
	// (with duplicates). Everything a query could answer differently
	// after the update involves at least one touched owner, so consumers
	// like the top-K monitor re-score only these.
	TouchedOwners []int32
}

func (st *UpdateStats) touch(v int) {
	st.TouchedOwners = append(st.TouchedOwners, int32(v))
}

// Index is a 2-hop counting label over a directed graph.
type Index struct {
	G   *graph.Digraph
	Ord *order.Order

	// In[v] holds entries (h, sd(h,v), θ) — paths from hub h to v.
	// Out[v] holds entries (h, sd(v,h), θ) — paths from v to hub h.
	// Hub fields store rank positions under Ord.
	In  []label.List
	Out []label.List

	Strategy Strategy

	// HubFilter, when non-nil, marks which vertices may serve as hubs.
	// Construction honors it via Options; the dynamic algorithms skip
	// maintenance passes from filtered-out vertices, which keeps the label
	// set aligned with what a fresh construction would produce. The CSC
	// scheme filters to V_in: every covered pair's top-ranked vertex is a
	// V_in vertex, so passes from V_out vertices could only ever create
	// entries no query and no cover needs. Not serialized — the owner
	// re-installs it after ReadIndex (see internal/csc.Read).
	HubFilter func(v int) bool

	// Inverted indexes for minimality cleaning (§V-A): invIn[h] lists the
	// vertices whose in-label contains hub rank h; invOut[h] likewise for
	// out-labels. Built lazily; nil until first needed.
	invIn  []map[int32]struct{}
	invOut []map[int32]struct{}

	canonical    int
	nonCanonical int

	// Scratch state shared by all BFS passes.
	dist    []int32
	cnt     []uint64
	queue   []int32
	touched []int32
}

// NewEmpty allocates an index shell with self-label-free empty lists;
// internal/csc uses it to run its own specialized construction.
func NewEmpty(g *graph.Digraph, ord *order.Order) *Index {
	n := g.NumVertices()
	idx := &Index{
		G:    g,
		Ord:  ord,
		In:   make([]label.List, n),
		Out:  make([]label.List, n),
		dist: make([]int32, n),
		cnt:  make([]uint64, n),
	}
	for i := range idx.dist {
		idx.dist[i] = -1
	}
	return idx
}

// Build constructs the full index with pruned counting BFSes in descending
// rank order (the HP-SPC construction of §II-B generalized with a hub
// filter).
func Build(g *graph.Digraph, ord *order.Order, opts Options) (*Index, BuildStats) {
	start := time.Now()
	idx := NewEmpty(g, ord)
	idx.Strategy = opts.Strategy
	idx.HubFilter = opts.HubFilter
	n := g.NumVertices()
	for r := 0; r < n; r++ {
		v := ord.VertexAt(r)
		if opts.HubFilter != nil && !opts.HubFilter(v) {
			self := bitpack.Pack(r, 0, 1)
			idx.In[v].Append(self)
			idx.Out[v].Append(self)
			idx.canonical += 2
			continue
		}
		idx.buildPass(v, r, true)
		idx.buildPass(v, r, false)
	}
	st := idx.Stats()
	st.Duration = time.Since(start)
	return idx, st
}

// Stats recomputes size statistics from the current label lists.
func (idx *Index) Stats() BuildStats {
	var st BuildStats
	for v := range idx.In {
		st.Entries += idx.In[v].Len() + idx.Out[v].Len()
	}
	st.Bytes = 8 * st.Entries
	st.Canonical = idx.canonical
	st.NonCanonical = idx.nonCanonical
	return st
}

// buildPass runs one pruned counting BFS from hub v (rank r). forward
// labels in-labels over out-edges; !forward labels out-labels over
// in-edges (the reverse graph).
func (idx *Index) buildPass(v, r int, forward bool) {
	d, c := idx.dist, idx.cnt
	queue := idx.queue[:0]
	touched := idx.touched[:0]

	// Self label first (Alg 3's first dequeue): never pruned, since any
	// alternative distance through a higher hub is a cycle of length ≥ 1.
	self := bitpack.Pack(r, 0, 1)
	if forward {
		idx.In[v].Append(self)
		idx.addInvIn(r, v)
	} else {
		idx.Out[v].Append(self)
		idx.addInvOut(r, v)
	}
	idx.canonical++
	d[v] = 0
	c[v] = 1
	touched = append(touched, int32(v))
	for _, u := range idx.neighbors(v, forward) {
		if idx.Ord.Rank(int(u)) > r { // v ≺ u: only lower-ranked vertices join
			d[u] = 1
			c[u] = 1
			queue = append(queue, u)
			touched = append(touched, u)
		}
	}

	for head := 0; head < len(queue); head++ {
		w := int(queue[head])
		// Distance from v to w (or w to v in reverse) via higher hubs.
		var dq int
		if forward {
			dq = label.JoinDist(&idx.Out[v], &idx.In[w])
		} else {
			dq = label.JoinDist(&idx.Out[w], &idx.In[v])
		}
		if dq < int(d[w]) {
			continue // v is not the highest rank on any shortest path
		}
		e := bitpack.Pack(r, int(d[w]), c[w])
		if forward {
			idx.In[w].Append(e)
			idx.addInvIn(r, w)
		} else {
			idx.Out[w].Append(e)
			idx.addInvOut(r, w)
		}
		if dq == int(d[w]) {
			idx.nonCanonical++ // some shortest paths run via higher hubs
		} else {
			idx.canonical++
		}
		for _, u := range idx.neighbors(w, forward) {
			switch {
			case d[u] == -1:
				if idx.Ord.Rank(int(u)) > r {
					d[u] = d[w] + 1
					c[u] = c[w]
					queue = append(queue, u)
					touched = append(touched, u)
				}
			case d[u] == d[w]+1:
				c[u] = bitpack.SatAdd(c[u], c[w])
			}
		}
	}

	for _, t := range touched {
		d[t] = -1
		c[t] = 0
	}
	idx.queue = queue[:0]
	idx.touched = touched[:0]
}

func (idx *Index) neighbors(w int, forward bool) []int32 {
	if forward {
		return idx.G.Out(w)
	}
	return idx.G.In(w)
}

// ensureScratch re-sizes scratch arrays after the graph grew (not used by
// the current fixed-n workloads but keeps the engine honest).
func (idx *Index) ensureScratch() {
	n := idx.G.NumVertices()
	for len(idx.dist) < n {
		idx.dist = append(idx.dist, -1)
		idx.cnt = append(idx.cnt, 0)
	}
}

// EntryCount returns the total number of label entries.
func (idx *Index) EntryCount() int {
	total := 0
	for v := range idx.In {
		total += idx.In[v].Len() + idx.Out[v].Len()
	}
	return total
}

// Bytes returns the label storage footprint in bytes (8 per entry).
func (idx *Index) Bytes() int { return 8 * idx.EntryCount() }
