package pll

import (
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
	"repro/internal/order"
)

// Regression: a redundancy-mode update sequence used to leave a stale
// dominated entry whose hub had vanished from Lin(a)/Lout(b), so the
// hub-restricted decremental step 2 skipped it; a later deletion then
// raised the pair's true distance past the stale entry's and the garbage
// started answering queries. Step 2 must drop the full SA × SB rectangle.
//
// Sequence (found by FuzzShardedUpdateStream, shrunk): insert closes a
// 3-cycle, a second insert closes a dominating 2-cycle, deleting the
// 3-cycle edge leaves its entries dominated-but-dead, deleting the
// 2-cycle edge exposed them.
func TestDeleteDropsStaleDominatedEntries(t *testing.T) {
	g, err := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 4}, {5, 0}, {5, 2}, {5, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := Build(g, order.ByDegree(g), Options{Strategy: Redundancy})
	steps := []struct {
		ins  bool
		u, v int
	}{
		{true, 4, 0},  // closes 0→1→4→0
		{true, 0, 5},  // closes 0⇄5, dominating the 3-cycle
		{false, 4, 0}, // 3-cycle entries die but stay dominated
		{false, 0, 5}, // 2-cycle gone: nothing may expose the dead entries
	}
	for _, s := range steps {
		var err error
		if s.ins {
			_, err = idx.InsertEdge(s.u, s.v)
		} else {
			_, err = idx.DeleteEdge(s.u, s.v)
		}
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < g.NumVertices(); x++ {
			for y := 0; y < g.NumVertices(); y++ {
				gd, gc := idx.CountPaths(x, y)
				wd, wc := bfscount.SPCount(g, x, y)
				if wd == bfscount.NoCycle {
					if gd != Unreachable {
						t.Fatalf("after %+v: (%d,%d) index %d, truth unreachable", s, x, y, gd)
					}
					continue
				}
				if gd != wd || gc != wc {
					t.Fatalf("after %+v: (%d,%d) index (%d,%d), truth (%d,%d)", s, x, y, gd, gc, wd, wc)
				}
			}
		}
	}
}
