package pll

import (
	"sync"

	"repro/internal/bitpack"
	"repro/internal/label"
)

// unreachScatter is the sentinel in the rank-indexed hub scatter. Any sum
// involving it is ≥ MaxDist, which no tentative BFS distance ever reaches,
// so probes need no sentinel branch.
const unreachScatter = int32(bitpack.MaxDist)

// Scratch is the private working state of one BFS pass: tentative
// distance/count arrays, the FIFO queue, the touched list used for O(pass)
// resets, and the rank-indexed hub scatter that turns the prune test from
// a two-list merge-join into a linear probe of the candidate's own list.
// The engine owns one Scratch for sequential construction and updates;
// the parallel builder gives each worker its own.
type Scratch struct {
	Dist    []int32
	Cnt     []uint64
	Queue   []int32
	Touched []int32

	// hub[r] holds the scattered distance of the anchor list's entry with
	// hub rank r, or unreachScatter when absent. maxHub is the anchor's
	// largest scattered rank (-1 for an empty anchor): lists are
	// rank-ascending, so probes stop once a candidate entry's hub exceeds
	// it — no later entry can share a hub with the anchor.
	hub    []int32
	maxHub int32
}

// NewScratch allocates a scratch sized for n vertices/ranks.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.Grow(n)
	return s
}

// scratchPool recycles Scratch allocations across indexes. With the
// SCC-sharded index, every shard is its own Index and batch-parallel
// updates run many per-shard streams and scoped rebuilds concurrently:
// pooling lets those streams share a handful of scratches (Grow only ever
// appends, so a scratch sized for one shard upgrades in place for a
// bigger one) instead of every shard pinning its own arrays for life.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch returns a pooled scratch grown for n vertices/ranks. The
// caller owns it exclusively until PutScratch.
func GetScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Grow(n)
	return s
}

// PutScratch returns a scratch to the pool. The scratch must be clean —
// every Visit reset, every Scatter unscattered — which is the state every
// construction and update pass leaves it in.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// Grow re-sizes every scratch array for n vertices/ranks, preserving the
// sentinel invariants. It must run whenever the indexed graph gains
// vertices: the update passes index Dist/Cnt by vertex id and the hub
// scatter by rank, so a stale size turns the first post-growth update into
// an out-of-bounds access.
func (s *Scratch) Grow(n int) {
	for len(s.Dist) < n {
		s.Dist = append(s.Dist, -1)
		s.Cnt = append(s.Cnt, 0)
	}
	for len(s.hub) < n {
		s.hub = append(s.hub, unreachScatter)
	}
}

// Visit stamps a tentative distance and count, recording the cell for the
// end-of-pass reset.
func (s *Scratch) Visit(u int, d int32, c uint64) {
	s.Dist[u] = d
	s.Cnt[u] = c
	s.Touched = append(s.Touched, int32(u))
}

// Reset restores the Dist/Cnt cells touched since the last reset and
// empties the queue, keeping capacity.
func (s *Scratch) Reset() {
	for _, t := range s.Touched {
		s.Dist[t] = -1
		s.Cnt[t] = 0
	}
	s.Queue = s.Queue[:0]
	s.Touched = s.Touched[:0]
}

// Scatter loads the anchor list into the rank-indexed hub array. Every
// Scatter must be paired with an Unscatter of the same list before the
// scratch is reused. Streaming through Each keeps a compressed-frozen
// anchor frozen; hubs ascend, so the last entry seen carries maxHub.
func (s *Scratch) Scatter(l *label.List) {
	s.maxHub = -1
	l.Each(func(e bitpack.Entry) bool {
		h := e.Hub()
		s.hub[h] = int32(e.Dist())
		s.maxHub = int32(h)
		return true
	})
}

// Unscatter clears the cells Scatter loaded.
func (s *Scratch) Unscatter(l *label.List) {
	l.Each(func(e bitpack.Entry) bool {
		s.hub[e.Hub()] = unreachScatter
		return true
	})
}

// Probe evaluates the prune test against the scattered anchor: the minimum
// of anchor(h)+dist over the candidate list's entries — label.JoinDist with
// the anchor side turned into an O(1) array lookup. Values ≥ MaxDist mean
// "no common hub" and compare like JoinDist's Unreachable.
//
// below is the caller's prune threshold (the tentative BFS distance): the
// scan stops at the first sum strictly under it, since any such sum
// already decides the prune. The running minimum can never drop below the
// threshold without returning, so when the scan completes the result is
// the exact minimum — which is all the classification test (dq == d)
// needs.
func (s *Scratch) Probe(l *label.List, below int) int {
	min := int32(bitpack.MaxDist)
	b := int32(below)
	if l.Frozen() {
		// Stream the compressed list without thawing; the early-stop rules
		// are identical to the slice loop below.
		l.Each(func(e bitpack.Entry) bool {
			h := int32(e.Hub())
			if h > s.maxHub {
				return false // rank-ascending: no further shared hub possible
			}
			if d := s.hub[h] + int32(e.Dist()); d < min {
				min = d
				if d < b {
					return false
				}
			}
			return true
		})
		return int(min)
	}
	for _, e := range l.Entries() {
		h := int32(e.Hub())
		if h > s.maxHub {
			break // rank-ascending: no further entry shares an anchor hub
		}
		if d := s.hub[h] + int32(e.Dist()); d < min {
			if d < b {
				return int(d)
			}
			min = d
		}
	}
	return int(min)
}

// stagedEntry is one label append produced by a speculative pass.
type stagedEntry struct {
	v       int32 // owner vertex
	checked bool  // survived a prune test; re-validated at merge time
	e       bitpack.Entry
}

// Stage buffers the appends of one hub BFS pass in emission order. The
// sequential builder commits stages as-is; the parallel builder re-validates
// the checked entries against the merged labels first, falling back to a
// rerun when an in-batch label would have pruned the pass differently.
type Stage struct {
	inSide bool // appends target In lists (else Out lists)
	ops    []stagedEntry

	// classification under the labels the pass observed; only the generic
	// engine tracks these (the skipping construction never did).
	classify     bool
	canonical    int
	nonCanonical int
}

// Reset empties the stage for a new pass targeting the given side.
func (st *Stage) Reset(inSide, classify bool) {
	st.inSide = inSide
	st.ops = st.ops[:0]
	st.classify = classify
	st.canonical = 0
	st.nonCanonical = 0
}

// Add records one append. checked marks entries that passed a prune test;
// unchecked entries (self labels, couple labels) are committed verbatim.
func (st *Stage) Add(v int, checked bool, e bitpack.Entry) {
	st.ops = append(st.ops, stagedEntry{v: int32(v), checked: checked, e: e})
}

// Canonical classifies the last added entry as canonical (dq > d) or not.
func (st *Stage) Canonical(canonical bool) {
	if !st.classify {
		return
	}
	if canonical {
		st.canonical++
	} else {
		st.nonCanonical++
	}
}
