package label

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitpack"
)

func mk(hub, dist int, count uint64) bitpack.Entry {
	return bitpack.Pack(hub, dist, count)
}

func TestAppendKeepsOrder(t *testing.T) {
	var l List
	l.Append(mk(1, 2, 1))
	l.Append(mk(5, 1, 2))
	l.Append(mk(9, 0, 1))
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	for i := 1; i < l.Len(); i++ {
		if l.At(i-1).Hub() >= l.At(i).Hub() {
			t.Fatal("not sorted")
		}
	}
	// Out-of-order append falls back to sorted insert.
	l.Append(mk(3, 7, 4))
	if got := l.Hubs(); !equalInts(got, []int{1, 3, 5, 9}) {
		t.Fatalf("hubs = %v", got)
	}
	// Appending existing hub replaces.
	l.Append(mk(3, 2, 9))
	e, ok := l.Lookup(3)
	if !ok || e.Dist() != 2 || e.Count() != 9 {
		t.Fatalf("replace failed: %v %v", e, ok)
	}
	if l.Len() != 4 {
		t.Fatalf("len after replace = %d", l.Len())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSetRemoveLookup(t *testing.T) {
	var l List
	if ins := l.Set(mk(4, 1, 1)); !ins {
		t.Fatal("Set on empty should insert")
	}
	if ins := l.Set(mk(4, 2, 2)); ins {
		t.Fatal("Set existing should replace")
	}
	if _, ok := l.Lookup(5); ok {
		t.Fatal("phantom lookup")
	}
	if !l.Remove(4) || l.Remove(4) {
		t.Fatal("Remove semantics")
	}
	if l.Len() != 0 {
		t.Fatal("not empty after remove")
	}
}

func TestJoinPaperExample2(t *testing.T) {
	// Example 2: SPCnt(v10, v8) via Lout(v10) and Lin(v8).
	// Rank positions (Example 4): v1=0, v7=1, v4=2, v10=3, v8=8.
	var out, in List
	out.Append(mk(0, 1, 1)) // (v1,1,1)
	out.Append(mk(1, 3, 1)) // (v7,3,1)
	out.Append(mk(2, 2, 1)) // (v4,2,1)
	out.Append(mk(3, 0, 1)) // (v10,0,1)
	in.Append(mk(0, 3, 2))  // (v1,3,2)
	in.Append(mk(1, 1, 1))  // (v7,1,1)
	in.Append(mk(8, 0, 1))  // (v8,0,1)
	d, c := Join(&out, &in)
	if d != 4 || c != 3 {
		t.Fatalf("Join = (%d,%d), want (4,3)", d, c)
	}
	if jd := JoinDist(&out, &in); jd != 4 {
		t.Fatalf("JoinDist = %d", jd)
	}
}

func TestJoinDisjoint(t *testing.T) {
	var out, in List
	out.Append(mk(0, 1, 1))
	in.Append(mk(1, 1, 1))
	if d, c := Join(&out, &in); d != Unreachable || c != 0 {
		t.Fatalf("disjoint join = (%d,%d)", d, c)
	}
	var empty List
	if d, _ := Join(&empty, &in); d != Unreachable {
		t.Fatal("empty join should be unreachable")
	}
}

func TestJoinSaturates(t *testing.T) {
	var out, in List
	out.Append(mk(0, 1, bitpack.MaxCount))
	in.Append(mk(0, 1, bitpack.MaxCount))
	if _, c := Join(&out, &in); c != bitpack.MaxCount {
		t.Fatalf("count = %d, want saturation", c)
	}
}

func TestClone(t *testing.T) {
	var l List
	l.Append(mk(1, 1, 1))
	c := l.Clone()
	c.Set(mk(2, 2, 2))
	if l.Len() != 1 {
		t.Fatal("clone aliases original")
	}
	if l.Bytes() != 8 || c.Bytes() != 16 {
		t.Fatalf("Bytes = %d/%d", l.Bytes(), c.Bytes())
	}
}

// Property: a List built by random Set/Remove matches a reference map and
// stays sorted.
func TestListMatchesReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var l List
		ref := map[int]bitpack.Entry{}
		for op := 0; op < 300; op++ {
			hub := r.Intn(40)
			if r.Intn(3) == 0 {
				l.Remove(hub)
				delete(ref, hub)
			} else {
				e := mk(hub, r.Intn(100), uint64(r.Intn(1000)))
				l.Set(e)
				ref[hub] = e
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		for i := 1; i < l.Len(); i++ {
			if l.At(i-1).Hub() >= l.At(i).Hub() {
				return false
			}
		}
		for hub, want := range ref {
			got, ok := l.Lookup(hub)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Join equals a naive nested-loop evaluation of Equations (1)-(2).
func TestJoinMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var out, in List
		for _, l := range []*List{&out, &in} {
			hubs := r.Perm(30)[:r.Intn(12)]
			sort.Ints(hubs)
			for _, h := range hubs {
				l.Append(mk(h, 1+r.Intn(20), uint64(1+r.Intn(50))))
			}
		}
		gotD, gotC := Join(&out, &in)
		wantD, wantC := Unreachable, uint64(0)
		for _, oe := range out.Entries() {
			for _, ie := range in.Entries() {
				if oe.Hub() != ie.Hub() {
					continue
				}
				d := oe.Dist() + ie.Dist()
				if d < wantD {
					wantD, wantC = d, oe.Count()*ie.Count()
				} else if d == wantD {
					wantC += oe.Count() * ie.Count()
				}
			}
		}
		if wantD == Unreachable {
			wantC = 0
		}
		return gotD == wantD && gotC == wantC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
