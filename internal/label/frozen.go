package label

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/bitpack"
)

// Frozen is the compressed, immutable form of a set of label lists: one
// delta+varint blob (bitpack's block codec) plus a raw little-endian
// uint32 offset table marking each list's section. Hubs are rank
// positions, so gaps are small and a typical entry costs 3-4 bytes
// against the arena's 8 (plus ArenaPad slots per list).
//
// Each list section is:
//
//	uvarint n                 entry count; an empty list is just "0"
//	byte    flags             bit0 = sig present, bit1 = sync present
//	8 bytes sig               hub-membership bloom signature (LE), when
//	                          n ≥ sigMinEntries
//	uvarint nsync             when n > bitpack.DeltaBlock
//	nsync × (u32 hub, u32 off)  per-block sync records: the block's
//	                          starting hub and its byte offset relative
//	                          to the entry stream — fixed width, binary
//	                          searchable, offsets list-relative so a
//	                          section copies verbatim between arenas
//	entry stream              bitpack.AppendDeltaBlocks encoding
//
// Queries read sections through cursors without materializing entries;
// the sync records keep the join kernels' seeks sub-linear. A dynamic
// update thaws only the touched list back to its mutable slice form
// (marking the section dead here); FreezeCompressed re-freezes a group
// by copying still-frozen sections verbatim and re-encoding only the
// thawed ones.
//
// The blob and offset table may alias a read-only mmap'd file: nothing
// here ever writes through them. Decoding arbitrary (corrupt) bytes is
// panic-free — cursors stop at the first malformed varint; Validate
// performs the strict full-decode check used by the trusted-load path.
type Frozen struct {
	blob []byte
	off  []byte // raw LE uint32 × (lists+1); section i is blob[off[i]:off[i+1]]

	lists   int
	entries int // live entries at freeze time

	thawed  []bool // sections re-materialized as mutable lists
	nthawed int
}

const (
	flagSig  = 1 << 0
	flagSync = 1 << 1

	// sigMinEntries is the list length at which a bloom signature pays
	// for its 8 bytes: shorter lists join in a handful of comparisons
	// anyway, and on gap-compressed small lists the signature would
	// dominate the section size.
	sigMinEntries = 4

	// maxFrozenList bounds a decoded list length so a corrupt header
	// cannot drive a huge allocation.
	maxFrozenList = 1 << 27
)

// sigBit hashes a hub rank to one of the signature's 64 bits
// (Fibonacci multiplicative hashing on the top 6 bits).
func sigBit(hub int) uint64 {
	return 1 << ((uint64(hub) * 0x9E3779B97F4A7C15) >> 58)
}

// Bloom pre-screen telemetry: checks counts label-pair joins where both
// sides carried a signature, rejects how many of those were answered
// Unreachable from the signatures alone (no entry decoded).
var bloomChecks, bloomRejects atomic.Uint64

// BloomStats returns the cumulative bloom pre-screen counters.
func BloomStats() (checks, rejects uint64) {
	return bloomChecks.Load(), bloomRejects.Load()
}

// FreezeCompressed packs every list of the given groups into a fresh
// compressed arena and re-points each list at its section. Lists that
// are already frozen copy their sections verbatim (no decode); mutable
// lists — fresh ones, or lists thawed by updates since the last freeze —
// are re-encoded. The lists remain fully usable afterwards: queries
// stream the compressed form, mutations thaw the touched list first.
func FreezeCompressed(groups ...[]List) *Frozen {
	lists, approx := 0, 0
	for _, g := range groups {
		lists += len(g)
		for i := range g {
			approx += 4 * g[i].Len()
		}
	}
	f := &Frozen{
		blob:   make([]byte, 0, approx+lists),
		off:    make([]byte, 0, 4*(lists+1)),
		thawed: make([]bool, lists),
		lists:  lists,
	}
	idx := int32(0)
	for _, g := range groups {
		for i := range g {
			l := &g[i]
			f.off = binary.LittleEndian.AppendUint32(f.off, uint32(len(f.blob)))
			f.entries += l.Len()
			if l.fz != nil {
				f.blob = append(f.blob, l.fz.section(l.fi)...)
			} else {
				f.blob = appendSection(f.blob, l.e)
			}
			*l = List{fz: f, fi: idx}
			idx++
		}
	}
	f.off = binary.LittleEndian.AppendUint32(f.off, uint32(len(f.blob)))
	return f
}

// appendSection encodes one list's section onto dst.
func appendSection(dst []byte, es []bitpack.Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(es)))
	if len(es) == 0 {
		return dst
	}
	var flags byte
	if len(es) >= sigMinEntries {
		flags |= flagSig
	}
	if len(es) > bitpack.DeltaBlock {
		flags |= flagSync
	}
	dst = append(dst, flags)
	if flags&flagSig != 0 {
		var sig uint64
		for _, e := range es {
			sig |= sigBit(e.Hub())
		}
		dst = binary.LittleEndian.AppendUint64(dst, sig)
	}
	if flags&flagSync == 0 {
		return bitpack.AppendDeltaBlocks(dst, es, nil)
	}
	var sync []byte
	stream := bitpack.AppendDeltaBlocks(nil, es, func(hub, off uint32) {
		sync = binary.LittleEndian.AppendUint32(sync, hub)
		sync = binary.LittleEndian.AppendUint32(sync, off)
	})
	dst = binary.AppendUvarint(dst, uint64(len(sync)/8))
	dst = append(dst, sync...)
	return append(dst, stream...)
}

// NewFrozen wraps deserialized section bytes — the v3 load path. off
// and blob may alias a read-only mapping; only the structural offset
// invariants are checked here (cheap, O(lists)), so a cold mmap'd
// daemon serves before label pages fault in. Call Validate for the full
// strict decode used on trusted (stream) loads.
func NewFrozen(off, blob []byte) (*Frozen, error) {
	if len(off) < 8 || len(off)%4 != 0 {
		return nil, fmt.Errorf("label: frozen offset table of %d bytes", len(off))
	}
	lists := len(off)/4 - 1
	prev := binary.LittleEndian.Uint32(off)
	if prev != 0 {
		return nil, fmt.Errorf("label: frozen offsets start at %d", prev)
	}
	for i := 1; i <= lists; i++ {
		o := binary.LittleEndian.Uint32(off[4*i:])
		if o < prev || int(o) > len(blob) {
			return nil, fmt.Errorf("label: frozen offset %d of %d out of order", i, lists)
		}
		prev = o
	}
	if int(prev) != len(blob) {
		return nil, fmt.Errorf("label: frozen blob is %d bytes, offsets end at %d", len(blob), prev)
	}
	f := &Frozen{blob: blob, off: off, lists: lists, thawed: make([]bool, lists)}
	for i := int32(0); i < int32(lists); i++ {
		f.entries += f.listLen(i)
	}
	return f, nil
}

// AttachFrozen points each list of the given groups at its section of
// f, in the same group order FreezeCompressed walks. The v3 reader uses
// this to bring deserialized lists up without decoding anything.
func AttachFrozen(f *Frozen, groups ...[]List) error {
	idx := int32(0)
	for _, g := range groups {
		for i := range g {
			if int(idx) >= f.lists {
				break
			}
			g[i] = List{fz: f, fi: idx}
			idx++
		}
	}
	if int(idx) != f.lists {
		return fmt.Errorf("label: frozen arena has %d sections for %d lists", f.lists, idx)
	}
	return nil
}

// Lists returns the number of sections.
func (f *Frozen) Lists() int { return f.lists }

// Entries returns the number of live entries at freeze (or load) time.
func (f *Frozen) Entries() int { return f.entries }

// Bytes returns the compressed footprint: blob plus offset table.
func (f *Frozen) Bytes() int { return len(f.blob) + len(f.off) }

// ArenaBytes returns what the same lists cost in the uncompressed CSR
// arena form: 8 bytes per entry plus 8×ArenaPad per list.
func (f *Frozen) ArenaBytes() int { return 8 * (f.entries + ArenaPad*f.lists) }

// ThawedLists returns how many sections updates have thawed back to
// mutable form since the freeze — the re-freeze trigger.
func (f *Frozen) ThawedLists() int { return f.nthawed }

// Raw exposes the arena's backing bytes for serialization: the raw
// little-endian offset table and the section blob. Callers must not
// write through them, and must re-freeze first if any list has thawed
// (the thawed sections here are stale).
func (f *Frozen) Raw() (off, blob []byte) { return f.off, f.blob }

func (f *Frozen) offAt(i int32) int {
	return int(binary.LittleEndian.Uint32(f.off[4*i:]))
}

func (f *Frozen) section(i int32) []byte {
	return f.blob[f.offAt(i):f.offAt(i+1)]
}

func (f *Frozen) markThawed(i int32) {
	if !f.thawed[i] {
		f.thawed[i] = true
		f.nthawed++
	}
}

// header parses list i's section header. Corrupt headers parse as empty
// — cursors and thaws degrade gracefully; Validate rejects them loudly.
func (f *Frozen) header(i int32) (n int, sig uint64, hasSig bool, sync, ent []byte) {
	sp := f.section(i)
	v, w := binary.Uvarint(sp)
	if w <= 0 || v == 0 || v > maxFrozenList || int(v) > 3*len(sp) {
		return 0, 0, false, nil, nil
	}
	n = int(v)
	pos := w
	if pos >= len(sp) {
		return 0, 0, false, nil, nil
	}
	flags := sp[pos]
	pos++
	if flags&flagSig != 0 {
		if pos+8 > len(sp) {
			return 0, 0, false, nil, nil
		}
		sig = binary.LittleEndian.Uint64(sp[pos:])
		hasSig = true
		pos += 8
	}
	if flags&flagSync != 0 {
		ns, w := binary.Uvarint(sp[pos:])
		if w <= 0 {
			return 0, 0, false, nil, nil
		}
		pos += w
		if ns > uint64(len(sp)/8)+1 || pos+int(ns)*8 > len(sp) {
			return 0, 0, false, nil, nil
		}
		sync = sp[pos : pos+int(ns)*8]
		pos += int(ns) * 8
	}
	return n, sig, hasSig, sync, sp[pos:]
}

// listLen returns list i's entry count without decoding entries.
func (f *Frozen) listLen(i int32) int {
	n, _, _, _, _ := f.header(i)
	return n
}

// listSig returns list i's bloom signature, if the section carries one.
func (f *Frozen) listSig(i int32) (uint64, bool) {
	_, sig, ok, _, _ := f.header(i)
	return sig, ok
}

// decode materializes list i's entries into dst (grown as needed).
func (f *Frozen) decode(i int32, dst []bitpack.Entry) []bitpack.Entry {
	n, _, _, _, ent := f.header(i)
	if cap(dst) < n {
		dst = make([]bitpack.Entry, 0, n+ArenaPad)
	} else {
		dst = dst[:0]
	}
	bitpack.DecodeDeltaBlocks(ent, n, func(e bitpack.Entry) bool {
		dst = append(dst, e)
		return true
	})
	return dst
}

// Validate fully decodes every section and re-encodes it, rejecting
// anything that is truncated, non-canonical, out of hub range, or
// carries flags inconsistent with its length. The stream-load path runs
// this so a frozen index on the trusted path is exactly what
// FreezeCompressed would have produced.
func (f *Frozen) Validate(maxHub int) error {
	var scratch []bitpack.Entry
	for i := int32(0); i < int32(f.lists); i++ {
		sp := f.section(i)
		if len(sp) == 0 {
			return fmt.Errorf("label: frozen list %d: empty section", i)
		}
		v, w := binary.Uvarint(sp)
		if w <= 0 || v > maxFrozenList || int(v) > 3*len(sp) {
			return fmt.Errorf("label: frozen list %d: bad count", i)
		}
		if v == 0 {
			if len(sp) != w {
				return fmt.Errorf("label: frozen list %d: trailing bytes on empty list", i)
			}
			continue
		}
		n, _, _, _, ent := f.header(i)
		if n == 0 {
			return fmt.Errorf("label: frozen list %d: malformed header", i)
		}
		scratch = scratch[:0]
		consumed, ok := bitpack.DecodeDeltaBlocks(ent, n, func(e bitpack.Entry) bool {
			scratch = append(scratch, e)
			return true
		})
		if !ok || consumed != len(ent) {
			return fmt.Errorf("label: frozen list %d: truncated or trailing entry stream", i)
		}
		if last := scratch[len(scratch)-1].Hub(); last >= maxHub && maxHub >= 0 {
			return fmt.Errorf("label: frozen list %d: hub %d out of range [0,%d)", i, last, maxHub)
		}
		// Canonical check: the section must be byte-identical to a fresh
		// encoding — this pins sig and sync correctness in one shot and
		// guarantees re-serialization stability.
		want := appendSection(nil, scratch)
		if len(want) != len(sp) || string(want) != string(sp) {
			return fmt.Errorf("label: frozen list %d: non-canonical section", i)
		}
	}
	return nil
}

// fcursor streams one frozen section in hub order without materializing
// it. The zero value is exhausted; init with cursor().
type fcursor struct {
	ent  []byte // entry stream
	sync []byte // per-block records, nil for short lists
	n    int    // total entries
	idx  int    // entries consumed (cur is entry idx-1)
	pos  int    // byte position of the next entry
	hub  int    // cur's hub (delta base)
	cur  bitpack.Entry
	ok   bool
}

// cursor opens a streaming cursor over list i, positioned on the first
// entry (ok is false for an empty list).
func (f *Frozen) cursor(i int32) fcursor {
	var c fcursor
	c.n, _, _, c.sync, c.ent = f.header(i)
	c.next()
	return c
}

// next advances to the following entry. A malformed stream exhausts the
// cursor instead of panicking.
func (c *fcursor) next() {
	if c.idx >= c.n {
		c.ok = false
		return
	}
	v, w := binary.Uvarint(c.ent[c.pos:])
	if w <= 0 || v > bitpack.MaxHub {
		c.ok = false
		return
	}
	c.pos += w
	if c.idx%bitpack.DeltaBlock == 0 {
		c.hub = int(v)
	} else {
		if v == 0 {
			c.ok = false
			return
		}
		c.hub += int(v)
	}
	if c.hub > bitpack.MaxHub {
		c.ok = false
		return
	}
	d, w := binary.Uvarint(c.ent[c.pos:])
	if w <= 0 || d > bitpack.MaxDist {
		c.ok = false
		return
	}
	c.pos += w
	cnt, w := binary.Uvarint(c.ent[c.pos:])
	if w <= 0 || cnt > bitpack.MaxCount {
		c.ok = false
		return
	}
	c.pos += w
	c.cur = bitpack.Pack(c.hub, int(d), cnt)
	c.idx++
	c.ok = true
}

// seekGE advances the cursor to the first entry with hub ≥ target. With
// sync records it binary-searches the remaining blocks and decodes at
// most one block linearly; without them the list is at most one block
// long anyway.
func (c *fcursor) seekGE(target int) {
	if !c.ok || c.cur.Hub() >= target {
		return
	}
	if c.sync != nil {
		curBlk := (c.idx - 1) / bitpack.DeltaBlock
		// Find the last block whose starting hub is ≤ target; only a
		// forward jump is useful.
		lo, hi := curBlk, len(c.sync)/8 // invariant: blkHub(lo) ≤ target < blkHub(hi)
		for lo+1 < hi {
			mid := int(uint(lo+hi) >> 1)
			if int(binary.LittleEndian.Uint32(c.sync[8*mid:])) <= target {
				lo = mid
			} else {
				hi = mid
			}
		}
		if lo > curBlk {
			c.pos = int(binary.LittleEndian.Uint32(c.sync[8*lo+4:]))
			c.idx = lo * bitpack.DeltaBlock
			c.next()
		}
	}
	for c.ok && c.cur.Hub() < target {
		c.next()
	}
}
