package label

import (
	"math/rand"
	"testing"

	"repro/internal/bitpack"
)

// The BenchmarkJoin* suite measures the join kernel shapes the read path
// cares about: balanced merges (typical vertex-vertex queries), skewed
// merges (a leaf's short list against a hub vertex's long one — the shape
// the galloping path exists for), and the bounded early-exit variant.
// EXPERIMENTS.md records representative numbers.

// benchLists builds an out/in pair with the given lengths over a shared
// hub space sized so roughly half the shorter list's hubs match.
func benchLists(nOut, nIn int) (oe, ie []bitpack.Entry) {
	r := rand.New(rand.NewSource(int64(nOut)*1_000_003 + int64(nIn)))
	space := 2 * (nOut + nIn)
	return randList(r, nOut, space, 12), randList(r, nIn, space, 12)
}

// joinMergeOnly is the pre-gallop linear merge, kept as the benchmark
// baseline so the gallop crossover stays measurable.
func joinMergeOnly(oe, ie []bitpack.Entry) (dist int, count uint64) {
	dist = Unreachable
	i, j := 0, 0
	for i < len(oe) && j < len(ie) {
		a, b := oe[i], ie[j]
		ha, hb := a.Hub(), b.Hub()
		if ha == hb {
			d := a.Dist() + b.Dist()
			if d < dist {
				dist = d
				count = bitpack.SatMul(a.Count(), b.Count())
			} else if d == dist {
				count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
			}
			i++
			j++
			continue
		}
		if ha < hb {
			i++
		} else {
			j++
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}

var sinkDist int
var sinkCount uint64

func benchJoin(b *testing.B, nOut, nIn int, f func(oe, ie []bitpack.Entry) (int, uint64)) {
	oe, ie := benchLists(nOut, nIn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist, sinkCount = f(oe, ie)
	}
}

func BenchmarkJoinBalanced32(b *testing.B)  { benchJoin(b, 32, 32, JoinEntries) }
func BenchmarkJoinBalanced256(b *testing.B) { benchJoin(b, 256, 256, JoinEntries) }

// The skewed pair: the same lists through the plain merge and through
// JoinEntries (which takes the gallop path at this skew).
func BenchmarkJoinSkewMerge4x1024(b *testing.B)  { benchJoin(b, 4, 1024, joinMergeOnly) }
func BenchmarkJoinSkewGallop4x1024(b *testing.B) { benchJoin(b, 4, 1024, JoinEntries) }
func BenchmarkJoinSkewMerge16x4096(b *testing.B) { benchJoin(b, 16, 4096, joinMergeOnly) }
func BenchmarkJoinSkewGallop16x4096(b *testing.B) {
	benchJoin(b, 16, 4096, JoinEntries)
}

func BenchmarkJoinDistBalanced256(b *testing.B) {
	oe, ie := benchLists(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist = JoinDistEntries(oe, ie)
	}
}

func BenchmarkJoinBoundedTight256(b *testing.B) {
	oe, ie := benchLists(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist, sinkCount = JoinBoundedEntries(oe, ie, 2)
	}
}

func BenchmarkJoinBoundedLoose256(b *testing.B) {
	oe, ie := benchLists(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist, sinkCount = JoinBoundedEntries(oe, ie, Unreachable)
	}
}

func BenchmarkJoinBoundedSkew16x4096(b *testing.B) {
	oe, ie := benchLists(16, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist, sinkCount = JoinBoundedEntries(oe, ie, 6)
	}
}
