package label

import (
	"math/rand"
	"testing"

	"repro/internal/bitpack"
)

// refJoin is the obviously-correct reference: hash the out side, probe
// every in entry, track the minimum and its saturating count sum.
func refJoin(oe, ie []bitpack.Entry, maxDist int) (int, uint64) {
	byHub := make(map[int]bitpack.Entry, len(oe))
	for _, e := range oe {
		byHub[e.Hub()] = e
	}
	dist, count := Unreachable, uint64(0)
	for _, b := range ie {
		a, ok := byHub[b.Hub()]
		if !ok {
			continue
		}
		d := a.Dist() + b.Dist()
		if d > maxDist {
			continue
		}
		if d < dist {
			dist = d
			count = bitpack.SatMul(a.Count(), b.Count())
		} else if d == dist {
			count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}

// randList draws n distinct hubs from [0, hubSpace) in ascending order
// with random distances and counts.
func randList(r *rand.Rand, n, hubSpace, maxD int) []bitpack.Entry {
	if n > hubSpace {
		n = hubSpace
	}
	hubs := r.Perm(hubSpace)[:n]
	out := make([]bitpack.Entry, 0, n)
	seen := make(map[int]bool, n)
	for _, h := range hubs {
		seen[h] = true
	}
	for h := 0; h < hubSpace; h++ {
		if seen[h] {
			out = append(out, bitpack.Pack(h, r.Intn(maxD), uint64(1+r.Intn(200))))
		}
	}
	return out
}

// Every kernel variant must agree with the reference on random lists at
// every skew — including the shapes that trip the galloping path on
// either side — and JoinDist must report the same distance.
func TestJoinKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shapes := [][2]int{
		{0, 0}, {0, 40}, {40, 0}, {1, 1},
		{5, 5}, {30, 30}, {64, 64},
		{1, 200}, {200, 1}, {3, 500}, {500, 3}, // gallop on each side
		{15, 16 * 15}, {16 * 15, 15}, // right at the ratio boundary
	}
	for trial := 0; trial < 200; trial++ {
		shape := shapes[trial%len(shapes)]
		hubSpace := shape[0] + shape[1] + 1 + r.Intn(100)
		oe := randList(r, shape[0], hubSpace, 30)
		ie := randList(r, shape[1], hubSpace, 30)

		wd, wc := refJoin(oe, ie, Unreachable)
		if d, c := JoinEntries(oe, ie); d != wd || c != wc {
			t.Fatalf("trial %d shape %v: JoinEntries = (%d,%d), want (%d,%d)", trial, shape, d, c, wd, wc)
		}
		if d := JoinDistEntries(oe, ie); d != wd {
			t.Fatalf("trial %d shape %v: JoinDistEntries = %d, want %d", trial, shape, d, wd)
		}
		for _, bound := range []int{-1, 0, 3, wd, wd + 1, 100} {
			bd, bc := refJoin(oe, ie, bound)
			if d, c := JoinBoundedEntries(oe, ie, bound); d != bd || c != bc {
				t.Fatalf("trial %d shape %v bound %d: JoinBoundedEntries = (%d,%d), want (%d,%d)",
					trial, shape, bound, d, c, bd, bc)
			}
		}
	}
}

// The List wrappers must stay views over the same kernels.
func TestJoinWrappers(t *testing.T) {
	var out, in List
	out.Append(bitpack.Pack(1, 2, 3))
	out.Append(bitpack.Pack(4, 1, 2))
	in.Append(bitpack.Pack(1, 1, 5))
	in.Append(bitpack.Pack(4, 2, 7))
	d, c := Join(&out, &in)
	if d != 3 || c != 15+14 {
		t.Fatalf("Join = (%d,%d)", d, c)
	}
	if jd := JoinDist(&out, &in); jd != 3 {
		t.Fatalf("JoinDist = %d", jd)
	}
	if d, c := JoinBounded(&out, &in, 2); d != Unreachable || c != 0 {
		t.Fatalf("JoinBounded(2) = (%d,%d), want unreachable", d, c)
	}
	if d, c := JoinBounded(&out, &in, 3); d != 3 || c != 29 {
		t.Fatalf("JoinBounded(3) = (%d,%d)", d, c)
	}
}

// seekHub is the gallop's pivot; pin its boundary behavior directly.
func TestSeekHub(t *testing.T) {
	var l []bitpack.Entry
	for _, h := range []int{2, 5, 9, 14, 30, 31, 90} {
		l = append(l, bitpack.Pack(h, 1, 1))
	}
	for _, tc := range [][3]int{
		{0, 0, 0},  // before the first hub
		{0, 2, 0},  // exact first
		{0, 3, 1},  // between
		{0, 91, 7}, // past the end
		{3, 14, 3}, // from its own index
		{2, 31, 5}, // gallop over a run
		{7, 5, 7},  // from == len
	} {
		if got := seekHub(l, tc[0], tc[1]); got != tc[2] {
			t.Fatalf("seekHub(from=%d, hub=%d) = %d, want %d", tc[0], tc[1], got, tc[2])
		}
	}
}
