package label

import (
	"repro/internal/bitpack"
)

// Arena is the frozen CSR form of a set of label lists: every list's
// entries live back-to-back in one contiguous allocation, with an offset
// array marking the spans. Freezing replaces thousands of small per-vertex
// allocations with a single slab, which removes GC pressure and makes the
// merge-join queries walk sequential memory.
//
// Each span is padded with a small mutable tail (cap > len), so dynamic
// inserts first grow in place inside the arena; only a list that outgrows
// its span is copied out by the runtime's append, detaching that one list
// while the rest stay packed. Deletes and in-place replacements always
// stay inside the span. The arena therefore never needs re-freezing for
// correctness — it is a layout optimization, not an ownership change.
type Arena struct {
	entries []bitpack.Entry
	off     []int32 // len = lists+1; span i is entries[off[i]:off[i+1]]
	frozen  int     // live entries at freeze time
}

// ArenaPad is the spare capacity reserved per list so post-freeze inserts
// stay inside the arena. Two entries absorb the common case (a couple of
// maintained insertions) while costing 16 bytes per list.
const ArenaPad = 2

// Freeze packs every list of the given groups into a fresh arena and
// re-points each list at its span. The lists remain fully functional for
// queries and dynamic maintenance afterwards.
func Freeze(groups ...[]List) *Arena {
	lists, total := 0, 0
	for _, g := range groups {
		lists += len(g)
		for i := range g {
			total += len(g[i].e) + ArenaPad
		}
	}
	a := &Arena{
		entries: make([]bitpack.Entry, total),
		off:     make([]int32, 0, lists+1),
	}
	pos := 0
	for _, g := range groups {
		for i := range g {
			l := &g[i]
			n := len(l.e)
			span := a.entries[pos : pos+n : pos+n+ArenaPad]
			copy(span, l.e)
			l.e = span
			a.off = append(a.off, int32(pos))
			a.frozen += n
			pos += n + ArenaPad
		}
	}
	a.off = append(a.off, int32(pos))
	return a
}

// Lists returns the number of frozen lists.
func (a *Arena) Lists() int { return len(a.off) - 1 }

// FrozenEntries returns the number of live entries at freeze time.
func (a *Arena) FrozenEntries() int { return a.frozen }

// Cap returns the arena's total slot count including per-list pads.
func (a *Arena) Cap() int { return len(a.entries) }

// Bytes returns the arena allocation size (8 bytes per slot).
func (a *Arena) Bytes() int { return 8 * len(a.entries) }

// Span returns the i-th list's slot range [start, end) inside the arena,
// pad included.
func (a *Arena) Span(i int) (start, end int) {
	return int(a.off[i]), int(a.off[i+1])
}
