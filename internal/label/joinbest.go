package label

import (
	"repro/internal/bitpack"
)

// JoinBest is Join with hub attribution: alongside the distance and
// count it reports which hub answered — the lowest-ranked common hub
// achieving the minimal distance, or -1 when the lists share no hub.
// The online re-ranker samples these winners into per-hub hit counters;
// a well-ordered shard resolves most joins at its top ranks, so the
// winner's rank is the drift signal. Same dispatch as Join: slice merge
// (with galloping on skew) when both lists are mutable, bloom screen
// plus leapfrog cursors when either is frozen. Distance and count are
// byte-identical to Join's.
func JoinBest(out, in *List) (dist int, count uint64, hub int) {
	if out.fz == nil && in.fz == nil {
		return joinBestEntries(out.e, in.e)
	}
	if sigReject(out, in) {
		return Unreachable, 0, -1
	}
	return joinBestCursor(out, in)
}

// joinBestEntries mirrors JoinEntries, recording the first hub that set
// the final minimal distance (hubs arrive in ascending rank, so it is
// the lowest-ranked winner).
func joinBestEntries(oe, ie []bitpack.Entry) (dist int, count uint64, hub int) {
	if len(oe) >= gallopRatio*len(ie) {
		return joinBestGallop(ie, oe)
	}
	if len(ie) >= gallopRatio*len(oe) {
		return joinBestGallop(oe, ie)
	}
	dist, hub = Unreachable, -1
	i, j := 0, 0
	for i < len(oe) && j < len(ie) {
		a, b := oe[i], ie[j]
		ha, hb := a.Hub(), b.Hub()
		if ha == hb {
			d := a.Dist() + b.Dist()
			if d < dist {
				dist = d
				count = bitpack.SatMul(a.Count(), b.Count())
				hub = ha
			} else if d == dist {
				count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
			}
			i++
			j++
			continue
		}
		if ha < hb {
			i++
		} else {
			j++
		}
	}
	if dist == Unreachable {
		return Unreachable, 0, -1
	}
	return dist, count, hub
}

func joinBestGallop(short, long []bitpack.Entry) (dist int, count uint64, hub int) {
	dist, hub = Unreachable, -1
	j := 0
	for _, a := range short {
		h := a.Hub()
		j = seekHub(long, j, h)
		if j == len(long) {
			break
		}
		b := long[j]
		if b.Hub() != h {
			continue
		}
		j++
		d := a.Dist() + b.Dist()
		if d < dist {
			dist = d
			count = bitpack.SatMul(a.Count(), b.Count())
			hub = h
		} else if d == dist {
			count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
		}
	}
	if dist == Unreachable {
		return Unreachable, 0, -1
	}
	return dist, count, hub
}

// joinBestCursor is joinBestEntries in leapfrog-cursor form.
func joinBestCursor(out, in *List) (dist int, count uint64, hub int) {
	var a, b lcur
	a.init(out)
	b.init(in)
	dist, hub = Unreachable, -1
	for a.ok() && b.ok() {
		ea, eb := a.cur(), b.cur()
		ha, hb := ea.Hub(), eb.Hub()
		switch {
		case ha == hb:
			d := ea.Dist() + eb.Dist()
			if d < dist {
				dist = d
				count = bitpack.SatMul(ea.Count(), eb.Count())
				hub = ha
			} else if d == dist {
				count = bitpack.SatAdd(count, bitpack.SatMul(ea.Count(), eb.Count()))
			}
			a.next()
			b.next()
		case ha < hb:
			a.seekGE(hb)
		default:
			b.seekGE(ha)
		}
	}
	if dist == Unreachable {
		return Unreachable, 0, -1
	}
	return dist, count, hub
}
