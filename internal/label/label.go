// Package label provides the hub-label lists used by both the HP-SPC
// baseline and the CSC index: slices of 64-bit packed entries kept sorted
// by hub rank, so the SPCnt query (Equations 1-2 of the paper) is a single
// linear merge-join of an out-list and an in-list.
package label

import (
	"sort"

	"repro/internal/bitpack"
)

// Unreachable is the distance returned by Join when the two lists share no
// hub (no path exists under the index).
const Unreachable = int(bitpack.MaxDist)

// List is a label list: packed entries in strictly ascending hub-rank
// order. The zero value is an empty, ready-to-use list.
type List struct {
	e []bitpack.Entry
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.e) }

// At returns the i-th entry in rank order.
func (l *List) At(i int) bitpack.Entry { return l.e[i] }

// Entries exposes the backing slice for read-only iteration.
func (l *List) Entries() []bitpack.Entry { return l.e }

// Lookup finds the entry with the given hub rank.
func (l *List) Lookup(hub int) (bitpack.Entry, bool) {
	i := l.search(hub)
	if i < len(l.e) && l.e[i].Hub() == hub {
		return l.e[i], true
	}
	return 0, false
}

func (l *List) search(hub int) int {
	return sort.Search(len(l.e), func(i int) bool { return l.e[i].Hub() >= hub })
}

// Append adds an entry. Construction emits hubs in descending rank
// priority, which is ascending rank *position*, so the common case is a
// plain append; out-of-order hubs fall back to a sorted insert. Appending
// an existing hub replaces its entry.
func (l *List) Append(e bitpack.Entry) {
	if n := len(l.e); n == 0 || l.e[n-1].Hub() < e.Hub() {
		l.e = append(l.e, e)
		return
	}
	l.Set(e)
}

// Set inserts e at its sorted position, replacing any entry with the same
// hub. It reports whether a new entry was inserted (vs. replaced).
func (l *List) Set(e bitpack.Entry) bool {
	i := l.search(e.Hub())
	if i < len(l.e) && l.e[i].Hub() == e.Hub() {
		l.e[i] = e
		return false
	}
	l.e = append(l.e, 0)
	copy(l.e[i+1:], l.e[i:])
	l.e[i] = e
	return true
}

// Remove deletes the entry with the given hub rank, reporting whether one
// existed.
func (l *List) Remove(hub int) bool {
	i := l.search(hub)
	if i >= len(l.e) || l.e[i].Hub() != hub {
		return false
	}
	l.e = append(l.e[:i], l.e[i+1:]...)
	return true
}

// Clone returns an independent copy.
func (l *List) Clone() List {
	return List{e: append([]bitpack.Entry(nil), l.e...)}
}

// Reset empties the list, keeping capacity.
func (l *List) Reset() { l.e = l.e[:0] }

// Hubs returns the hub ranks present in the list.
func (l *List) Hubs() []int {
	hs := make([]int, len(l.e))
	for i, e := range l.e {
		hs[i] = e.Hub()
	}
	return hs
}

// Bytes returns the storage footprint of the list payload (8 bytes per
// entry, the paper's 64-bit label encoding).
func (l *List) Bytes() int { return 8 * len(l.e) }

// Join evaluates Equations (1)-(2): it merge-joins an out-label list of s
// and an in-label list of t over common hubs, returning the minimum
// sd(s,h)+sd(h,t) and the saturating sum of count products at that
// distance. When the lists share no hub it returns (Unreachable, 0).
// After a Freeze, the two lists are views into the CSR arena, so the scan
// walks two contiguous spans of one allocation. Badly skewed list lengths
// take the galloping path (join.go).
func Join(out, in *List) (dist int, count uint64) {
	return JoinEntries(out.e, in.e)
}

// JoinDist is Join restricted to the distance; it still visits every
// common hub (the minimum can appear anywhere) but skips count
// arithmetic.
func JoinDist(out, in *List) int {
	return JoinDistEntries(out.e, in.e)
}
