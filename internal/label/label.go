// Package label provides the hub-label lists used by both the HP-SPC
// baseline and the CSC index: slices of 64-bit packed entries kept sorted
// by hub rank, so the SPCnt query (Equations 1-2 of the paper) is a single
// linear merge-join of an out-list and an in-list.
package label

import (
	"sort"

	"repro/internal/bitpack"
)

// Unreachable is the distance returned by Join when the two lists share no
// hub (no path exists under the index).
const Unreachable = int(bitpack.MaxDist)

// List is a label list: packed entries in strictly ascending hub-rank
// order. The zero value is an empty, ready-to-use list.
//
// A list lives in one of two forms. The mutable form backs entries with a
// plain slice (possibly a span of the CSR Arena). After FreezeCompressed
// the slice is released and the list reads its section of a compressed
// Frozen arena through streaming cursors — Each, Lookup, and the Join
// family never materialize entries. Any mutation (or an explicit Entries /
// At call) thaws the list first: the section decodes back into a private
// slice and the list detaches from the arena until the next freeze.
type List struct {
	e  []bitpack.Entry
	fz *Frozen // non-nil while frozen; thawing detaches
	fi int32   // section index within fz
}

// Frozen reports whether the list currently reads from a compressed
// arena.
func (l *List) Frozen() bool { return l.fz != nil }

// thaw decodes the frozen section back into a private mutable slice and
// detaches the list from the arena. Thawing is driven by the single
// writer (updates); concurrent readers are the caller's concern, exactly
// as for slice mutation.
func (l *List) thaw() {
	if l.fz == nil {
		return
	}
	l.e = l.fz.decode(l.fi, l.e)
	l.fz.markThawed(l.fi)
	l.fz = nil
}

// Len returns the number of entries.
func (l *List) Len() int {
	if l.fz != nil {
		return l.fz.listLen(l.fi)
	}
	return len(l.e)
}

// At returns the i-th entry in rank order, thawing a frozen list (random
// access wants the materialized form; hot read paths use Each).
func (l *List) At(i int) bitpack.Entry {
	l.thaw()
	return l.e[i]
}

// Entries exposes the backing slice for read-only iteration, thawing a
// frozen list first. Read paths that must not thaw use Each.
func (l *List) Entries() []bitpack.Entry {
	l.thaw()
	return l.e
}

// Each calls fn for every entry in ascending hub order, stopping early
// when fn returns false. On a frozen list this streams the compressed
// section without materializing it; on a mutable list it is a plain
// range loop.
func (l *List) Each(fn func(bitpack.Entry) bool) {
	if l.fz == nil {
		for _, e := range l.e {
			if !fn(e) {
				return
			}
		}
		return
	}
	for c := l.fz.cursor(l.fi); c.ok; c.next() {
		if !fn(c.cur) {
			return
		}
	}
}

// Lookup finds the entry with the given hub rank. Frozen lists seek
// through the sync records without thawing.
func (l *List) Lookup(hub int) (bitpack.Entry, bool) {
	if l.fz != nil {
		c := l.fz.cursor(l.fi)
		c.seekGE(hub)
		if c.ok && c.cur.Hub() == hub {
			return c.cur, true
		}
		return 0, false
	}
	i := l.search(hub)
	if i < len(l.e) && l.e[i].Hub() == hub {
		return l.e[i], true
	}
	return 0, false
}

func (l *List) search(hub int) int {
	return sort.Search(len(l.e), func(i int) bool { return l.e[i].Hub() >= hub })
}

// Append adds an entry. Construction emits hubs in descending rank
// priority, which is ascending rank *position*, so the common case is a
// plain append; out-of-order hubs fall back to a sorted insert. Appending
// an existing hub replaces its entry.
func (l *List) Append(e bitpack.Entry) {
	l.thaw()
	if n := len(l.e); n == 0 || l.e[n-1].Hub() < e.Hub() {
		l.e = append(l.e, e)
		return
	}
	l.Set(e)
}

// Set inserts e at its sorted position, replacing any entry with the same
// hub. It reports whether a new entry was inserted (vs. replaced).
func (l *List) Set(e bitpack.Entry) bool {
	l.thaw()
	i := l.search(e.Hub())
	if i < len(l.e) && l.e[i].Hub() == e.Hub() {
		l.e[i] = e
		return false
	}
	l.e = append(l.e, 0)
	copy(l.e[i+1:], l.e[i:])
	l.e[i] = e
	return true
}

// Remove deletes the entry with the given hub rank, reporting whether one
// existed.
func (l *List) Remove(hub int) bool {
	l.thaw()
	i := l.search(hub)
	if i >= len(l.e) || l.e[i].Hub() != hub {
		return false
	}
	l.e = append(l.e[:i], l.e[i+1:]...)
	return true
}

// Clone returns an independent mutable copy. Cloning a frozen list
// decodes its section without thawing the original.
func (l *List) Clone() List {
	if l.fz != nil {
		return List{e: l.fz.decode(l.fi, nil)}
	}
	return List{e: append([]bitpack.Entry(nil), l.e...)}
}

// Reset empties the list, keeping capacity. A frozen list just detaches
// (nothing to decode).
func (l *List) Reset() {
	if l.fz != nil {
		l.fz.markThawed(l.fi)
		l.fz = nil
		l.e = nil
		return
	}
	l.e = l.e[:0]
}

// Hubs returns the hub ranks present in the list.
func (l *List) Hubs() []int {
	hs := make([]int, 0, l.Len())
	l.Each(func(e bitpack.Entry) bool {
		hs = append(hs, e.Hub())
		return true
	})
	return hs
}

// Bytes returns the logical storage footprint of the list payload
// (8 bytes per entry, the paper's 64-bit label encoding) regardless of
// form — compressed physical bytes are reported by Frozen.Bytes.
func (l *List) Bytes() int { return 8 * l.Len() }

// sig returns the list's bloom signature of hub membership, when it has
// one (frozen, and long enough to carry a signature).
func (l *List) sig() (uint64, bool) {
	if l.fz == nil {
		return 0, false
	}
	return l.fz.listSig(l.fi)
}

// sigReject reports whether the bloom signatures prove the two lists
// share no hub. Only pairs where both sides carry a signature count as
// checks.
func sigReject(out, in *List) bool {
	so, ok := out.sig()
	if !ok {
		return false
	}
	si, ok := in.sig()
	if !ok {
		return false
	}
	bloomChecks.Add(1)
	if so&si != 0 {
		return false
	}
	bloomRejects.Add(1)
	return true
}

// Join evaluates Equations (1)-(2): it merge-joins an out-label list of s
// and an in-label list of t over common hubs, returning the minimum
// sd(s,h)+sd(h,t) and the saturating sum of count products at that
// distance. When the lists share no hub it returns (Unreachable, 0).
// Mutable lists (post-Freeze: views into the CSR arena) take the slice
// kernels, with galloping on badly skewed lengths (join.go). When either
// side is frozen, the bloom signatures screen out non-intersecting pairs
// in O(words) before any entry decodes; survivors stream through
// compressed cursors with sync-record seeks.
func Join(out, in *List) (dist int, count uint64) {
	if out.fz == nil && in.fz == nil {
		return JoinEntries(out.e, in.e)
	}
	if sigReject(out, in) {
		return Unreachable, 0
	}
	return joinCursor(out, in)
}

// JoinDist is Join restricted to the distance; it still visits every
// common hub (the minimum can appear anywhere) but skips count
// arithmetic.
func JoinDist(out, in *List) int {
	if out.fz == nil && in.fz == nil {
		return JoinDistEntries(out.e, in.e)
	}
	if sigReject(out, in) {
		return Unreachable
	}
	return joinDistCursor(out, in)
}

// JoinBounded is JoinBoundedEntries over two Lists, with the same frozen
// dispatch as Join.
func JoinBounded(out, in *List, maxDist int) (dist int, count uint64) {
	if out.fz == nil && in.fz == nil {
		return JoinBoundedEntries(out.e, in.e, maxDist)
	}
	if maxDist < 0 {
		return Unreachable, 0
	}
	if sigReject(out, in) {
		return Unreachable, 0
	}
	return joinBoundedCursor(out, in, maxDist)
}
