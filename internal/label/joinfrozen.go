package label

import (
	"repro/internal/bitpack"
)

// Cursor-form join kernels: the compressed-arena counterpart of join.go.
// When one or both lists are frozen the entries live as delta+varint
// streams, so the kernels walk lcur cursors in a leapfrog merge — each
// side seeks to the other's hub, which gallops (seekHub) on a mutable
// side and binary-searches the sync records on a frozen side. Semantics
// mirror JoinEntries / JoinDistEntries / JoinBoundedEntries exactly:
// identical distance, identical saturating count arithmetic in identical
// ascending-hub order, so answers are byte-identical across forms.

// lcur walks one list in ascending hub order regardless of its form.
type lcur struct {
	es     []bitpack.Entry // mutable backing
	i      int
	fc     fcursor // frozen backing
	frozen bool
}

func (c *lcur) init(l *List) {
	if l.fz != nil {
		c.frozen = true
		c.fc = l.fz.cursor(l.fi)
		return
	}
	c.es = l.e
}

func (c *lcur) ok() bool {
	if c.frozen {
		return c.fc.ok
	}
	return c.i < len(c.es)
}

func (c *lcur) cur() bitpack.Entry {
	if c.frozen {
		return c.fc.cur
	}
	return c.es[c.i]
}

func (c *lcur) next() {
	if c.frozen {
		c.fc.next()
		return
	}
	c.i++
}

// seekGE advances to the first entry with hub ≥ target: galloping on a
// slice, sync-record search plus at most one block decode on a frozen
// stream.
func (c *lcur) seekGE(target int) {
	if c.frozen {
		c.fc.seekGE(target)
		return
	}
	c.i = seekHub(c.es, c.i, target)
}

// joinCursor is JoinEntries in leapfrog-cursor form.
func joinCursor(out, in *List) (dist int, count uint64) {
	var a, b lcur
	a.init(out)
	b.init(in)
	dist = Unreachable
	for a.ok() && b.ok() {
		ea, eb := a.cur(), b.cur()
		ha, hb := ea.Hub(), eb.Hub()
		switch {
		case ha == hb:
			d := ea.Dist() + eb.Dist()
			if d < dist {
				dist = d
				count = bitpack.SatMul(ea.Count(), eb.Count())
			} else if d == dist {
				count = bitpack.SatAdd(count, bitpack.SatMul(ea.Count(), eb.Count()))
			}
			a.next()
			b.next()
		case ha < hb:
			a.seekGE(hb)
		default:
			b.seekGE(ha)
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}

// joinDistCursor is JoinDistEntries in leapfrog-cursor form.
func joinDistCursor(out, in *List) int {
	var a, b lcur
	a.init(out)
	b.init(in)
	dist := Unreachable
	for a.ok() && b.ok() {
		ea, eb := a.cur(), b.cur()
		ha, hb := ea.Hub(), eb.Hub()
		switch {
		case ha == hb:
			if d := ea.Dist() + eb.Dist(); d < dist {
				dist = d
			}
			a.next()
			b.next()
		case ha < hb:
			a.seekGE(hb)
		default:
			b.seekGE(ha)
		}
	}
	return dist
}

// joinBoundedCursor is JoinBoundedEntries in leapfrog-cursor form: the
// running bound tightens to the best distance found, and pairs above it
// never enter the count arithmetic.
func joinBoundedCursor(out, in *List, maxDist int) (dist int, count uint64) {
	var a, b lcur
	a.init(out)
	b.init(in)
	dist = Unreachable
	bound := maxDist
	for a.ok() && b.ok() {
		ea, eb := a.cur(), b.cur()
		ha, hb := ea.Hub(), eb.Hub()
		switch {
		case ha == hb:
			a.next()
			b.next()
			da := ea.Dist()
			if da > bound {
				continue
			}
			d := da + eb.Dist()
			if d > bound {
				continue
			}
			if d < dist {
				dist = d
				count = bitpack.SatMul(ea.Count(), eb.Count())
				bound = d
			} else { // d == dist: the bound pinned d ≤ dist already
				count = bitpack.SatAdd(count, bitpack.SatMul(ea.Count(), eb.Count()))
			}
		case ha < hb:
			a.seekGE(hb)
		default:
			b.seekGE(ha)
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}
