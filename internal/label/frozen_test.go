package label

import (
	"math/rand"
	"testing"

	"repro/internal/bitpack"
)

func listOf(es []bitpack.Entry) List {
	return List{e: append([]bitpack.Entry(nil), es...)}
}

func entriesEqual(t *testing.T, tag string, got, want []bitpack.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %x, want %x", tag, i, got[i], want[i])
		}
	}
}

// Frozen lists must answer byte-identically to their mutable originals
// across every kernel variant and every form mix (frozen×frozen,
// frozen×mutable, mutable×frozen), including the bloom-screened pairs.
func TestFrozenJoinMatchesMutable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	shapes := [][2]int{
		{0, 0}, {0, 40}, {1, 1}, {2, 3}, {3, 2}, // below sigMinEntries
		{5, 5}, {30, 30}, {64, 64}, {200, 1}, {1, 200},
		{40, 700}, {700, 40}, // sync blocks on one side
	}
	for trial := 0; trial < 120; trial++ {
		shape := shapes[trial%len(shapes)]
		hubSpace := shape[0] + shape[1] + 1 + r.Intn(900)
		oe := randList(r, shape[0], hubSpace, 30)
		ie := randList(r, shape[1], hubSpace, 30)

		mo, mi := listOf(oe), listOf(ie)
		fo, fi := listOf(oe), listOf(ie)
		group := []List{fo, fi}
		FreezeCompressed(group)
		fo, fi = group[0], group[1]
		if shape[0] > 0 && !fo.Frozen() {
			t.Fatalf("trial %d: out list not frozen", trial)
		}

		wd, wc := Join(&mo, &mi)
		wdd := JoinDist(&mo, &mi)
		pairs := [][2]*List{{&fo, &fi}, {&fo, &mi}, {&mo, &fi}}
		for p, pr := range pairs {
			if d, c := Join(pr[0], pr[1]); d != wd || c != wc {
				t.Fatalf("trial %d pair %d: Join = (%d,%d), want (%d,%d)", trial, p, d, c, wd, wc)
			}
			if d := JoinDist(pr[0], pr[1]); d != wdd {
				t.Fatalf("trial %d pair %d: JoinDist = %d, want %d", trial, p, d, wdd)
			}
			for _, bound := range []int{-1, 0, 3, wd, wd + 1, 100} {
				bd, bc := JoinBounded(&mo, &mi, bound)
				if d, c := JoinBounded(pr[0], pr[1], bound); d != bd || c != bc {
					t.Fatalf("trial %d pair %d bound %d: JoinBounded = (%d,%d), want (%d,%d)",
						trial, p, bound, d, c, bd, bc)
				}
			}
		}
	}
}

// Freezing must preserve every accessor, thawing must restore the exact
// mutable contents, and a mutation after thaw must leave other lists of
// the arena untouched.
func TestFreezeThawPreserves(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	lists := make([]List, 6)
	want := make([][]bitpack.Entry, 6)
	for i := range lists {
		want[i] = randList(r, []int{0, 1, 3, 10, 40, 90}[i], 400, 25)
		lists[i] = listOf(want[i])
	}
	f := FreezeCompressed(lists)
	if f.Entries() != 0+1+3+10+40+90 {
		t.Fatalf("frozen entries = %d", f.Entries())
	}
	if f.Bytes() >= f.ArenaBytes() {
		t.Fatalf("compressed %d bytes not smaller than arena %d", f.Bytes(), f.ArenaBytes())
	}
	for i := range lists {
		l := &lists[i]
		if l.Len() != len(want[i]) {
			t.Fatalf("list %d: Len = %d, want %d", i, l.Len(), len(want[i]))
		}
		if l.Bytes() != 8*len(want[i]) {
			t.Fatalf("list %d: Bytes = %d", i, l.Bytes())
		}
		var got []bitpack.Entry
		l.Each(func(e bitpack.Entry) bool { got = append(got, e); return true })
		entriesEqual(t, "Each", got, want[i])
		if l.Frozen() != (len(want[i]) > 0) {
			// Empty lists still point at the arena; only content matters.
			_ = l
		}
		cl := l.Clone()
		entriesEqual(t, "Clone", cl.Entries(), want[i])
		if l.Frozen() != (l.fz != nil) {
			t.Fatal("Frozen() out of sync")
		}
		for _, e := range want[i] {
			got, ok := l.Lookup(e.Hub())
			if !ok || got != e {
				t.Fatalf("list %d: Lookup(%d) = (%x,%v), want %x", i, e.Hub(), got, ok, e)
			}
		}
		if _, ok := l.Lookup(401); ok {
			t.Fatalf("list %d: Lookup past the end succeeded", i)
		}
	}
	// Thaw list 4 via mutation; the others stay frozen and intact.
	lists[4].Set(bitpack.Pack(500, 1, 1))
	if lists[4].Frozen() {
		t.Fatal("mutated list still frozen")
	}
	if f.ThawedLists() != 1 {
		t.Fatalf("ThawedLists = %d", f.ThawedLists())
	}
	entriesEqual(t, "thawed", lists[4].Entries()[:len(want[4])], want[4])
	var got []bitpack.Entry
	lists[5].Each(func(e bitpack.Entry) bool { got = append(got, e); return true })
	entriesEqual(t, "sibling after thaw", got, want[5])

	// Refreeze: the untouched sections copy verbatim, the thawed one
	// re-encodes; everything still reads back exactly.
	f2 := FreezeCompressed(lists)
	if f2.ThawedLists() != 0 {
		t.Fatalf("fresh arena reports %d thawed", f2.ThawedLists())
	}
	want[4] = append(want[4], bitpack.Pack(500, 1, 1))
	for i := range lists {
		got = got[:0]
		lists[i].Each(func(e bitpack.Entry) bool { got = append(got, e); return true })
		entriesEqual(t, "refrozen", got, want[i])
	}
	if err := f2.Validate(bitpack.MaxHub + 1); err != nil {
		t.Fatalf("Validate(refrozen): %v", err)
	}
}

// The serialization path: raw (off, blob) bytes round-trip through
// NewFrozen + AttachFrozen into lists that answer identically, and
// Validate accepts exactly the canonical encoding.
func TestFrozenRawRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := make([]List, 4)
	out := make([]List, 4)
	want := make(map[string][]bitpack.Entry)
	for i := range in {
		es := randList(r, 5+r.Intn(60), 300, 20)
		in[i] = listOf(es)
		want["in"+string(rune('0'+i))] = es
		es = randList(r, 5+r.Intn(60), 300, 20)
		out[i] = listOf(es)
		want["out"+string(rune('0'+i))] = es
	}
	f := FreezeCompressed(in, out)
	if err := f.Validate(300); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	blob := append([]byte(nil), f.blob...)
	off := append([]byte(nil), f.off...)
	f2, err := NewFrozen(off, blob)
	if err != nil {
		t.Fatalf("NewFrozen: %v", err)
	}
	if f2.Entries() != f.Entries() || f2.Lists() != f.Lists() {
		t.Fatalf("reloaded arena: %d lists %d entries, want %d/%d",
			f2.Lists(), f2.Entries(), f.Lists(), f.Entries())
	}
	in2 := make([]List, 4)
	out2 := make([]List, 4)
	if err := AttachFrozen(f2, in2, out2); err != nil {
		t.Fatalf("AttachFrozen: %v", err)
	}
	for i := range in2 {
		var got []bitpack.Entry
		in2[i].Each(func(e bitpack.Entry) bool { got = append(got, e); return true })
		entriesEqual(t, "reloaded in", got, want["in"+string(rune('0'+i))])
		got = got[:0]
		out2[i].Each(func(e bitpack.Entry) bool { got = append(got, e); return true })
		entriesEqual(t, "reloaded out", got, want["out"+string(rune('0'+i))])
	}
	if err := AttachFrozen(f2, in2); err == nil {
		t.Fatal("AttachFrozen with too few lists succeeded")
	}

	// Structural rejects.
	if _, err := NewFrozen(off[:len(off)-4], blob); err == nil {
		t.Fatal("short offset table accepted")
	}
	if _, err := NewFrozen(off, blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	// Corruption rejects under Validate: shrink list 0's count byte so
	// its entry stream has trailing bytes the decode never consumes.
	bad := append([]byte(nil), blob...)
	bad[0]-- // lists here have 5-64 entries: a one-byte uvarint
	f3, err := NewFrozen(off, bad)
	if err != nil {
		t.Fatalf("NewFrozen(corrupt count): %v", err)
	}
	if err := f3.Validate(300); err == nil {
		t.Fatal("corrupt blob validated cleanly")
	}
}

// Bloom signatures must reject disjoint pairs without decoding and must
// never reject intersecting ones (no false negatives by construction:
// the signature is an OR over exact hub bits).
func TestBloomSignatures(t *testing.T) {
	disjointA := listOf([]bitpack.Entry{
		bitpack.Pack(1, 1, 1), bitpack.Pack(2, 1, 1), bitpack.Pack(3, 1, 1), bitpack.Pack(4, 1, 1),
	})
	disjointB := listOf([]bitpack.Entry{
		bitpack.Pack(100, 1, 1), bitpack.Pack(200, 1, 1), bitpack.Pack(300, 1, 1), bitpack.Pack(400, 1, 1),
	})
	group := []List{disjointA, disjointB}
	FreezeCompressed(group)
	c0, r0 := BloomStats()
	if d, c := Join(&group[0], &group[1]); d != Unreachable || c != 0 {
		t.Fatalf("disjoint Join = (%d,%d)", d, c)
	}
	c1, r1 := BloomStats()
	if c1 != c0+1 {
		t.Fatalf("bloom checks %d -> %d, want +1", c0, c1)
	}
	if r1 != r0+1 {
		t.Fatalf("disjoint sig pair not rejected (rejects %d -> %d); hubs collide in the signature", r0, r1)
	}

	// Short lists carry no signature: joining them is never a "check".
	shortA := listOf([]bitpack.Entry{bitpack.Pack(1, 1, 1)})
	shortB := listOf([]bitpack.Entry{bitpack.Pack(9, 1, 1)})
	sg := []List{shortA, shortB}
	FreezeCompressed(sg)
	c2, _ := BloomStats()
	Join(&sg[0], &sg[1])
	if c3, _ := BloomStats(); c3 != c2 {
		t.Fatal("sig-less pair counted as a bloom check")
	}
}
