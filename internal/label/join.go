package label

import (
	"repro/internal/bitpack"
)

// This file is the read path's join kernel: the merge-join of an out-list
// and an in-list over common hubs (Equations 1-2) operating on raw
// bitpack.Entry slices straight out of the CSR arena. Three variants
// exist:
//
//   - JoinEntries / JoinDistEntries: the exact kernels behind Join and
//     JoinDist, a tight two-pointer merge that switches to galloping
//     (exponential + binary search) skips through the longer list when
//     the lengths are badly skewed — the hub-vertex-vs-leaf shape where
//     a linear merge wastes almost all of its comparisons;
//   - JoinBoundedEntries: the early-exit variant used for bounded
//     queries (top-k screening, /cycle?maxlen): distances above the
//     bound never enter the count arithmetic, and the running bound
//     tightens to the best distance found so far.
//
// All variants are pure reads and safe under any concurrency the caller
// arranges for the lists themselves.

// gallopRatio is the length skew at which the join switches from the
// linear merge to galloping through the longer list. Below it the merge's
// sequential scan wins on locality; above it the short side's entries are
// rare enough that O(short · log(long)) beats O(short + long). The
// crossover is flat around 8-32 on the BenchmarkJoin* suite; 16 sits in
// the middle.
const gallopRatio = 16

// JoinEntries evaluates Equations (1)-(2) on raw entry slices: the
// minimum sd over common hubs and the saturating sum of count products at
// that distance. Both slices must be in strictly ascending hub order (the
// List invariant). When the lists share no hub it returns
// (Unreachable, 0).
func JoinEntries(oe, ie []bitpack.Entry) (dist int, count uint64) {
	// The combine step is symmetric in the two sides, so the gallop path
	// only needs "short" and "long".
	if len(oe) >= gallopRatio*len(ie) {
		return joinGallop(ie, oe)
	}
	if len(ie) >= gallopRatio*len(oe) {
		return joinGallop(oe, ie)
	}
	dist = Unreachable
	i, j := 0, 0
	for i < len(oe) && j < len(ie) {
		a, b := oe[i], ie[j]
		ha, hb := a.Hub(), b.Hub()
		if ha == hb {
			d := a.Dist() + b.Dist()
			if d < dist {
				dist = d
				count = bitpack.SatMul(a.Count(), b.Count())
			} else if d == dist {
				count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
			}
			i++
			j++
			continue
		}
		if ha < hb {
			i++
		} else {
			j++
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}

// joinGallop joins a short list against a much longer one: every short
// entry seeks its hub in the long list with an exponential bracket plus a
// binary search, so runs of long-list hubs absent from the short list are
// skipped in O(log run) instead of O(run).
func joinGallop(short, long []bitpack.Entry) (dist int, count uint64) {
	dist = Unreachable
	j := 0
	for _, a := range short {
		h := a.Hub()
		j = seekHub(long, j, h)
		if j == len(long) {
			break
		}
		b := long[j]
		if b.Hub() != h {
			continue
		}
		j++
		d := a.Dist() + b.Dist()
		if d < dist {
			dist = d
			count = bitpack.SatMul(a.Count(), b.Count())
		} else if d == dist {
			count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}

// seekHub returns the first index i ≥ from with l[i].Hub() ≥ hub (len(l)
// when none), galloping: doubling steps bracket the position, a binary
// search pins it. Cost is O(log distance-moved), so a full pass over a
// short list moves through the long list in O(short · log(long)) total.
func seekHub(l []bitpack.Entry, from, hub int) int {
	if from >= len(l) || l[from].Hub() >= hub {
		return from
	}
	// Invariant below: l[lo].Hub() < hub.
	lo, step := from, 1
	for lo+step < len(l) && l[lo+step].Hub() < hub {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(l) {
		hi = len(l)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].Hub() < hub {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// JoinDistEntries is JoinEntries restricted to the distance: it still
// visits every common hub (the minimum can appear anywhere in rank order)
// but skips all count arithmetic.
func JoinDistEntries(oe, ie []bitpack.Entry) int {
	if len(oe) >= gallopRatio*len(ie) {
		return joinDistGallop(ie, oe)
	}
	if len(ie) >= gallopRatio*len(oe) {
		return joinDistGallop(oe, ie)
	}
	dist := Unreachable
	i, j := 0, 0
	for i < len(oe) && j < len(ie) {
		a, b := oe[i], ie[j]
		ha, hb := a.Hub(), b.Hub()
		if ha == hb {
			if d := a.Dist() + b.Dist(); d < dist {
				dist = d
			}
			i++
			j++
			continue
		}
		if ha < hb {
			i++
		} else {
			j++
		}
	}
	return dist
}

func joinDistGallop(short, long []bitpack.Entry) int {
	dist := Unreachable
	j := 0
	for _, a := range short {
		h := a.Hub()
		j = seekHub(long, j, h)
		if j == len(long) {
			break
		}
		if b := long[j]; b.Hub() == h {
			j++
			if d := a.Dist() + b.Dist(); d < dist {
				dist = d
			}
		}
	}
	return dist
}

// JoinBoundedEntries is JoinEntries restricted to distances ≤ maxDist:
// pairs above the bound never enter the count arithmetic, the running
// bound tightens to the best distance found (larger sums can no longer
// matter), and entries whose own distance already exceeds the bound are
// skipped outright. Skewed lengths take the same galloping path as the
// full join. When no common hub meets the bound it returns
// (Unreachable, 0) — callers read that as "nothing within the bound", not
// as global unreachability.
func JoinBoundedEntries(oe, ie []bitpack.Entry, maxDist int) (dist int, count uint64) {
	if maxDist < 0 {
		return Unreachable, 0
	}
	if len(oe) >= gallopRatio*len(ie) {
		return joinBoundedGallop(ie, oe, maxDist)
	}
	if len(ie) >= gallopRatio*len(oe) {
		return joinBoundedGallop(oe, ie, maxDist)
	}
	dist = Unreachable
	bound := maxDist
	i, j := 0, 0
	for i < len(oe) && j < len(ie) {
		a, b := oe[i], ie[j]
		ha, hb := a.Hub(), b.Hub()
		if ha == hb {
			i++
			j++
			da := a.Dist()
			if da > bound {
				continue
			}
			d := da + b.Dist()
			if d > bound {
				continue
			}
			if d < dist {
				dist = d
				count = bitpack.SatMul(a.Count(), b.Count())
				bound = d
			} else { // d == dist: the bound pinned d ≤ dist already
				count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
			}
			continue
		}
		if ha < hb {
			i++
		} else {
			j++
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}

// joinBoundedGallop is the bounded join's skew path. A short entry whose
// own distance already exceeds the bound skips without seeking — hub
// order in the short list is ascending, so the long-side cursor stays
// valid.
func joinBoundedGallop(short, long []bitpack.Entry, maxDist int) (dist int, count uint64) {
	dist = Unreachable
	bound := maxDist
	j := 0
	for _, a := range short {
		da := a.Dist()
		if da > bound {
			continue
		}
		j = seekHub(long, j, a.Hub())
		if j == len(long) {
			break
		}
		b := long[j]
		if b.Hub() != a.Hub() {
			continue
		}
		j++
		d := da + b.Dist()
		if d > bound {
			continue
		}
		if d < dist {
			dist = d
			count = bitpack.SatMul(a.Count(), b.Count())
			bound = d
		} else { // d == dist
			count = bitpack.SatAdd(count, bitpack.SatMul(a.Count(), b.Count()))
		}
	}
	if dist == Unreachable {
		return Unreachable, 0
	}
	return dist, count
}
