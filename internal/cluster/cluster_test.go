package cluster

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestVerticesPartition(t *testing.T) {
	g := gen.PowerLaw(gen.Config{N: 300, M: 1500, Seed: 1}, 2.0, 2.0)
	vs := make([]int, g.NumVertices())
	for i := range vs {
		vs[i] = i
	}
	cs := Vertices(g, vs)
	total := 0
	for _, c := range cs {
		total += len(c)
	}
	if total != len(vs) {
		t.Fatalf("clusters hold %d vertices, want %d", total, len(vs))
	}
	// Every High vertex must have min-in-out degree ≥ every Bottom vertex.
	if len(cs[0]) > 0 && len(cs[4]) > 0 {
		minHigh := g.MinInOutDegree(cs[0][0])
		for _, v := range cs[0] {
			if d := g.MinInOutDegree(v); d < minHigh {
				minHigh = d
			}
		}
		for _, v := range cs[4] {
			if g.MinInOutDegree(v) > minHigh {
				t.Fatalf("Bottom vertex %d outdegrees High's minimum", v)
			}
		}
	}
}

func TestUniformDegreesAllBottom(t *testing.T) {
	// A directed 3-cycle: all vertices share min-in-out degree 1.
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cs := Vertices(g, []int{0, 1, 2})
	if len(cs[4]) != 3 {
		t.Fatalf("uniform degrees should land in Bottom: %v", cs)
	}
}

func TestEdgesPartition(t *testing.T) {
	g := gen.PowerLaw(gen.Config{N: 200, M: 1000, Seed: 2}, 2.0, 2.0)
	es := g.Edges()
	cs := Edges(g, es)
	total := 0
	for _, c := range cs {
		total += len(c)
	}
	if total != len(es) {
		t.Fatalf("edge clusters hold %d, want %d", total, len(es))
	}
	for _, e := range cs[0] {
		dHigh := g.InDegree(e[0]) + g.OutDegree(e[1])
		for _, f := range cs[4] {
			if g.InDegree(f[0])+g.OutDegree(f[1]) > dHigh {
				t.Fatalf("Bottom edge beats High edge degree")
			}
		}
		break // one representative suffices
	}
}

func TestEmptyInput(t *testing.T) {
	g := graph.New(3)
	cs := Vertices(g, nil)
	for _, c := range cs {
		if len(c) != 0 {
			t.Fatal("empty input produced clusters")
		}
	}
}
