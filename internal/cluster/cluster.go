// Package cluster reproduces the workload grouping of the paper's
// evaluation (§VI-A): query vertices are clustered by their min-in-out
// degree into five equal-width ranges between the lowest and highest
// degree observed — High, Mid-high, Mid-low, Low and Bottom — and
// deletion workloads are clustered the same way by edge degree, defined
// for edge (v,w) as indeg(v)+outdeg(w) (§VI-C).
package cluster

import "repro/internal/graph"

// Names lists the five clusters from highest to lowest.
var Names = [5]string{"High", "Mid-high", "Mid-low", "Low", "Bottom"}

// Vertices splits the given vertices into the five degree clusters by
// min-in-out degree. Result[0] is High, result[4] is Bottom.
func Vertices(g *graph.Digraph, vs []int) [5][]int {
	degrees := make([]int, len(vs))
	for i, v := range vs {
		degrees[i] = g.MinInOutDegree(v)
	}
	lo, hi := minMax(degrees)
	var out [5][]int
	for i, v := range vs {
		out[bucket(lo, hi, degrees[i])] = append(out[bucket(lo, hi, degrees[i])], v)
	}
	return out
}

// Edges splits edges into five clusters by edge degree.
func Edges(g *graph.Digraph, es [][2]int) [5][][2]int {
	degrees := make([]int, len(es))
	for i, e := range es {
		degrees[i] = g.InDegree(e[0]) + g.OutDegree(e[1])
	}
	lo, hi := minMax(degrees)
	var out [5][][2]int
	for i, e := range es {
		b := bucket(lo, hi, degrees[i])
		out[b] = append(out[b], e)
	}
	return out
}

func minMax(xs []int) (lo, hi int) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// bucket maps a degree within [lo,hi] to its cluster index; the range is
// divided evenly into five and index 0 is the highest fifth.
func bucket(lo, hi, d int) int {
	if hi == lo {
		return 4 // single degree value: everything is Bottom
	}
	pos := (d - lo) * 5 / (hi - lo + 1)
	return 4 - pos
}
