package csc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pll"
)

// mixedGraph: two disjoint cycles bridged one-way, hanging DAG tails, and
// isolated vertices — every partition case at once.
//
//	{0,1,2} triangle   {4,5} 2-cycle   2→4 bridge   5→6→7 tail   3,8,9 extra
func mixedGraph(t *testing.T) *graph.Digraph {
	t.Helper()
	g, err := graph.FromEdges(10, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{4, 5}, {5, 4},
		{2, 4},
		{5, 6}, {6, 7},
		{8, 0}, {3, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertAgreesWithMono(t *testing.T, x *Sharded) {
	t.Helper()
	if err := x.checkConsistent(); err != nil {
		t.Fatal(err)
	}
	g := x.Graph()
	mono, _ := Build(g.Clone(), order.ByDegree(g), Options{})
	for v := 0; v < g.NumVertices(); v++ {
		sl, sc := x.CycleCount(v)
		ml, mc := mono.CycleCount(v)
		if sl != ml || sc != mc {
			t.Fatalf("vertex %d: sharded (%d,%d) != monolithic (%d,%d)", v, sl, sc, ml, mc)
		}
		ol, oc := bfscount.CycleCount(g, v)
		if sl != ol || sc != oc {
			t.Fatalf("vertex %d: sharded (%d,%d) != oracle (%d,%d)", v, sl, sc, ol, oc)
		}
	}
}

func TestShardedBuildPartition(t *testing.T) {
	x, st := BuildSharded(mixedGraph(t), Options{})
	if n := x.NumShards(); n != 2 {
		t.Fatalf("NumShards = %d, want 2", n)
	}
	if n := x.TrivialVertices(); n != 5 {
		t.Fatalf("TrivialVertices = %d, want 5 (3,6,7,8,9)", n)
	}
	if st.Entries != x.EntryCount() || st.Entries == 0 {
		t.Fatalf("build stats entries %d vs index %d", st.Entries, x.EntryCount())
	}
	// Same shard for triangle members, none for tail vertices.
	if x.ShardOf(0) != x.ShardOf(1) || x.ShardOf(0) != x.ShardOf(2) {
		t.Fatal("triangle split across shards")
	}
	if x.ShardOf(6) != -1 || x.ShardOf(9) != -1 {
		t.Fatal("trivial vertex assigned a shard")
	}
	assertAgreesWithMono(t, x)
}

// The sharded index must be strictly smaller than the monolithic one on a
// graph with any acyclic region: trivial vertices carry zero entries.
func TestShardedSkipsTrivialLabels(t *testing.T) {
	g := mixedGraph(t)
	mono, _ := Build(g.Clone(), order.ByDegree(g), Options{})
	x, _ := BuildSharded(g, Options{})
	if x.EntryCount() >= mono.EntryCount() {
		t.Fatalf("sharded %d entries, monolithic %d — no reduction", x.EntryCount(), mono.EntryCount())
	}
	if x.Bytes() != 8*x.EntryCount() || x.ReducedBytes() >= x.Bytes() {
		t.Fatalf("size accounting: bytes %d reduced %d", x.Bytes(), x.ReducedBytes())
	}
}

func TestShardedIntraShardUpdates(t *testing.T) {
	x, _ := BuildSharded(mixedGraph(t), Options{})
	// 0→2 adds a second triangle chord inside shard {0,1,2}: INCCNT path.
	st, err := x.InsertEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m, s := x.Rebuilds(); m != 0 || s != 0 {
		t.Fatalf("intra-shard insert rebuilt: merges=%d splits=%d", m, s)
	}
	// Touched owners must be global-graph Gb vertices.
	for _, o := range st.TouchedOwners {
		if v := bipartite.Original(int(o)); v < 0 || v > 2 {
			t.Fatalf("touched owner %d maps to vertex %d outside shard {0,1,2}", o, v)
		}
	}
	assertAgreesWithMono(t, x)
	// Deleting the chord keeps the component intact: decremental path.
	if _, err := x.DeleteEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if m, s := x.Rebuilds(); m != 0 || s != 0 {
		t.Fatalf("intact delete rebuilt: merges=%d splits=%d", m, s)
	}
	assertAgreesWithMono(t, x)
}

func TestShardedMergeAndSplit(t *testing.T) {
	x, _ := BuildSharded(mixedGraph(t), Options{})
	// 9→3 is a recorded cross edge: nothing reaches back to 9, so no
	// cycle closes and no rebuild runs.
	if _, err := x.InsertEdge(9, 3); err != nil {
		t.Fatal(err)
	}
	if m, _ := x.Rebuilds(); m != 0 {
		t.Fatal("cycle-free cross insert triggered a merge")
	}
	// 7→0 closes 0…2→4⇄5→6→7→0: both shards and the path vertices merge
	// into one component.
	if _, err := x.InsertEdge(7, 0); err != nil {
		t.Fatal(err)
	}
	if m, _ := x.Rebuilds(); m != 1 {
		t.Fatal("merge not triggered")
	}
	if n := x.NumShards(); n != 1 {
		t.Fatalf("NumShards after merge = %d, want 1", n)
	}
	assertAgreesWithMono(t, x)
	// Deleting the bridge 2→4 splits the merged component back apart.
	if _, err := x.DeleteEdge(2, 4); err != nil {
		t.Fatal(err)
	}
	if _, s := x.Rebuilds(); s != 1 {
		t.Fatal("split not triggered")
	}
	if n := x.NumShards(); n != 2 {
		t.Fatalf("NumShards after split = %d, want 2", n)
	}
	assertAgreesWithMono(t, x)
	// Deleting a recorded cross edge is label-free.
	if _, err := x.DeleteEdge(9, 3); err != nil {
		t.Fatal(err)
	}
	assertAgreesWithMono(t, x)
}

func TestShardedVertexOps(t *testing.T) {
	x, _ := BuildSharded(mixedGraph(t), Options{})
	v, err := x.AddVertex()
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := x.CycleCount(v); l != bfscount.NoCycle {
		t.Fatal("fresh vertex on a cycle")
	}
	if _, err := x.InsertEdge(2, v); err != nil {
		t.Fatal(err)
	}
	if _, err := x.InsertEdge(v, 0); err != nil {
		t.Fatal(err)
	}
	if l, c := x.CycleCount(v); l != 4 || c != 1 {
		t.Fatalf("new vertex cycle = (%d,%d), want (4,1)", l, c)
	}
	assertAgreesWithMono(t, x)
	removed, err := x.DetachVertex(v)
	if err != nil || removed != 2 {
		t.Fatalf("DetachVertex = (%d, %v)", removed, err)
	}
	if x.ShardOf(v) != -1 {
		t.Fatal("detached vertex still sharded")
	}
	assertAgreesWithMono(t, x)
}

func TestShardedCycleCountAll(t *testing.T) {
	x, _ := BuildSharded(mixedGraph(t), Options{})
	l1, c1 := x.CycleCountAll(1)
	l8, c8 := x.CycleCountAll(8)
	for v := range l1 {
		if l1[v] != l8[v] || c1[v] != c8[v] {
			t.Fatalf("vertex %d: sequential (%d,%d) != parallel (%d,%d)", v, l1[v], c1[v], l8[v], c8[v])
		}
		wl, wc := x.CycleCount(v)
		if l1[v] != wl || c1[v] != wc {
			t.Fatalf("vertex %d: all (%d,%d) != single (%d,%d)", v, l1[v], c1[v], wl, wc)
		}
	}
	// Out-of-range queries answer no-cycle instead of panicking (the
	// serving surface passes client ids through).
	if l, _ := x.CycleCount(-1); l != bfscount.NoCycle {
		t.Fatal("negative vertex")
	}
	if l, _ := x.CycleCount(1 << 20); l != bfscount.NoCycle {
		t.Fatal("huge vertex")
	}
}

func TestShardedSerializeRoundtrip(t *testing.T) {
	x, _ := BuildSharded(mixedGraph(t), Options{})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	y, ok := loaded.(*Sharded)
	if !ok {
		t.Fatalf("v2 stream loaded as %T", loaded)
	}
	if !graph.Equal(x.Graph(), y.Graph()) {
		t.Fatal("graph lost in roundtrip")
	}
	for v := 0; v < x.Graph().NumVertices(); v++ {
		al, ac := x.CycleCount(v)
		bl, bc := y.CycleCount(v)
		if al != bl || ac != bc {
			t.Fatalf("vertex %d differs after roundtrip", v)
		}
	}
	// Re-serialization is byte-stable.
	var buf2 bytes.Buffer
	if _, err := y.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("v2 serialization not byte-stable across a roundtrip")
	}
	// The loaded index stays dynamic, including scoped rebuilds.
	if _, err := y.InsertEdge(7, 0); err != nil {
		t.Fatal(err)
	}
	if m, _ := y.Rebuilds(); m != 1 {
		t.Fatal("loaded index did not merge")
	}
	assertAgreesWithMono(t, y)
}

func TestReadDispatchesV1(t *testing.T) {
	g := mixedGraph(t)
	mono, _ := Build(g.Clone(), order.ByDegree(g), Options{})
	var buf bytes.Buffer
	if _, err := mono.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := loaded.(*Index)
	if !ok {
		t.Fatalf("v1 stream loaded as %T", loaded)
	}
	for v := 0; v < g.NumVertices(); v++ {
		al, ac := mono.CycleCount(v)
		bl, bc := ix.CycleCount(v)
		if al != bl || ac != bc {
			t.Fatalf("vertex %d differs after v1 roundtrip", v)
		}
	}
}

// A crafted v2 stream whose shard table omits a cyclic component (so its
// vertices would silently answer 0) must be rejected by the decomposition
// check.
func TestShardedReadRejectsBadShardTable(t *testing.T) {
	g, err := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 3}, {5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := BuildSharded(g, Options{})
	// Forge a stream claiming only the triangle shard exists by retiring
	// the 2-cycle shard before writing.
	forged := &Sharded{
		g:       x.g,
		opts:    x.opts,
		shards:  []*shard{x.shards[x.shardOf[0]]},
		shardOf: x.shardOf,
		localID: x.localID,
	}
	var buf bytes.Buffer
	if _, err := forged.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shard table missing a cyclic component was accepted")
	}
}

func TestShardedParallelBuildMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	n := 120
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	seq, _ := BuildSharded(g.Clone(), Options{Workers: 1})
	par, _ := BuildSharded(g.Clone(), Options{Workers: 8})
	var bs, bp bytes.Buffer
	if _, err := seq.WriteTo(&bs); err != nil {
		t.Fatal(err)
	}
	if _, err := par.WriteTo(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatal("parallel sharded build not byte-identical to sequential")
	}
}

func TestShardedStrategyPropagates(t *testing.T) {
	x, _ := BuildSharded(mixedGraph(t), Options{Strategy: pll.Minimality})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	y := loaded.(*Sharded)
	if y.opts.Strategy != pll.Minimality {
		t.Fatal("strategy lost in roundtrip")
	}
	// Updates after the roundtrip still maintain correct counts.
	if _, err := y.InsertEdge(7, 0); err != nil {
		t.Fatal(err)
	}
	assertAgreesWithMono(t, y)
}
