package csc

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pll"
	"repro/internal/testgraphs"
)

func buildFig2(t testing.TB, opts Options) *Index {
	t.Helper()
	g := testgraphs.Figure2()
	x, _ := Build(g, order.ByDegree(g), opts)
	return x
}

func TestPaperExample1And6(t *testing.T) {
	x := buildFig2(t, Options{})
	// Example 1/6: SCCnt(v7) = 3, shortest cycle length 6 ((11+1)/2).
	l, c := x.CycleCount(6)
	if l != 6 || c != 3 {
		t.Fatalf("SCCnt(v7) = (%d,%d), want (6,3)", l, c)
	}
}

func TestPaperTableIII(t *testing.T) {
	// Table III: Lin(v7_in) = {(v1_in,4,2),(v7_in,0,1)} and
	// Lout(v7_out) = {(v1_in,7,1),(v7_in,11,1),(v7_out,0,1)}.
	x := buildFig2(t, Options{})
	eng := x.Engine()
	v7i := bipartite.InVertex(6)
	v7o := bipartite.OutVertex(6)
	r := func(b int) int { return eng.Ord.Rank(b) }

	in := eng.In[v7i]
	if in.Len() != 2 {
		t.Fatalf("Lin(v7i) has %d entries: %v", in.Len(), in.Entries())
	}
	if e, ok := in.Lookup(r(bipartite.InVertex(0))); !ok || e.Dist() != 4 || e.Count() != 2 {
		t.Fatalf("Lin(v7i) hub v1i = %v %v, want (4,2)", e, ok)
	}
	if e, ok := in.Lookup(r(v7i)); !ok || e.Dist() != 0 || e.Count() != 1 {
		t.Fatalf("Lin(v7i) self = %v %v", e, ok)
	}

	out := eng.Out[v7o]
	if out.Len() != 3 {
		t.Fatalf("Lout(v7o) has %d entries: %v", out.Len(), out.Entries())
	}
	if e, ok := out.Lookup(r(bipartite.InVertex(0))); !ok || e.Dist() != 7 || e.Count() != 1 {
		t.Fatalf("Lout(v7o) hub v1i = %v %v, want (7,1)", e, ok)
	}
	if e, ok := out.Lookup(r(v7i)); !ok || e.Dist() != 11 || e.Count() != 1 {
		t.Fatalf("Lout(v7o) hub v7i = %v %v, want (11,1)", e, ok)
	}
	if e, ok := out.Lookup(r(v7o)); !ok || e.Dist() != 0 || e.Count() != 1 {
		t.Fatalf("Lout(v7o) self = %v %v", e, ok)
	}
}

// The couple-vertex-skipping construction must produce labels identical to
// the generic engine restricted to V_in hubs — entry for entry.
func TestSkippingEqualsGenericConstruction(t *testing.T) {
	graphs := []*graph.Digraph{
		testgraphs.Figure2(),
		testgraphs.Triangle(),
		testgraphs.TwoCycle(),
		testgraphs.DiamondCycles(),
		testgraphs.DAG(),
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 12; i++ {
		graphs = append(graphs, randomGraph(r, 4+r.Intn(16), 3))
	}
	for gi, g := range graphs {
		ord := order.ByDegree(g)
		a, _ := Build(g.Clone(), ord, Options{})
		b, _ := Build(g.Clone(), ord, Options{GenericConstruction: true})
		ea, eb := a.Engine(), b.Engine()
		for v := 0; v < 2*g.NumVertices(); v++ {
			if !entriesEqual(ea.In[v].Entries(), eb.In[v].Entries()) {
				t.Fatalf("graph %d: Lin(%d): skipping %v != generic %v",
					gi, v, ea.In[v].Entries(), eb.In[v].Entries())
			}
			if !entriesEqual(ea.Out[v].Entries(), eb.Out[v].Entries()) {
				t.Fatalf("graph %d: Lout(%d): skipping %v != generic %v",
					gi, v, ea.Out[v].Entries(), eb.Out[v].Entries())
			}
		}
	}
}

func entriesEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomGraph(r *rand.Rand, n, avgDeg int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < n*avgDeg; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

func assertAllCycleCounts(t *testing.T, x *Index, g *graph.Digraph, ctx string) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		wl, wc := bfscount.CycleCount(g, v)
		gl, gc := x.CycleCount(v)
		if gl != wl || gc != wc {
			t.Fatalf("%s: SCCnt(%d) = (%d,%d), want (%d,%d)", ctx, v, gl, gc, wl, wc)
		}
	}
}

func TestCycleCountMatchesBFSOnFixturesAndRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for seed := 0; seed < 20; seed++ {
		g := randomGraph(r, 3+r.Intn(20), 1+r.Intn(4))
		x, _ := Build(g, order.ByDegree(g), Options{})
		assertAllCycleCounts(t, x, g, "random")
	}
	for _, g := range []*graph.Digraph{
		testgraphs.Figure2(), testgraphs.Triangle(), testgraphs.TwoCycle(),
		testgraphs.DiamondCycles(), testgraphs.DAG(),
	} {
		x, _ := Build(g, order.ByDegree(g), Options{})
		assertAllCycleCounts(t, x, g, "fixture")
	}
}

func TestDynamicMaintenance(t *testing.T) {
	for _, strat := range []pll.Strategy{pll.Redundancy, pll.Minimality} {
		for seed := int64(0); seed < 6; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 8 + r.Intn(10)
			g := randomGraph(r, n, 2)
			x, _ := Build(g, order.ByDegree(g), Options{Strategy: strat})
			for k := 0; k < 30; k++ {
				u, v := r.Intn(n), r.Intn(n)
				if u == v {
					continue
				}
				if g.HasEdge(u, v) {
					if _, err := x.DeleteEdge(u, v); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := x.InsertEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
				assertAllCycleCounts(t, x, g, strat.String())
			}
		}
	}
}

func TestUpdateErrorsPropagate(t *testing.T) {
	x := buildFig2(t, Options{})
	if _, err := x.InsertEdge(0, 2); err == nil {
		t.Error("duplicate insert accepted")
	}
	if _, err := x.DeleteEdge(0, 7); err == nil {
		t.Error("missing delete accepted")
	}
	if _, err := x.InsertEdge(0, 0); err == nil {
		t.Error("self loop accepted")
	}
	// Failed updates must leave answers intact.
	if l, c := x.CycleCount(6); l != 6 || c != 3 {
		t.Fatalf("index disturbed by failed updates: (%d,%d)", l, c)
	}
}

func TestReducedIndex(t *testing.T) {
	g := testgraphs.Figure2()
	x, _ := Build(g, order.ByDegree(g), Options{})
	compact := Reduce(x)
	for v := 0; v < g.NumVertices(); v++ {
		fl, fc := x.CycleCount(v)
		cl, cc := compact.CycleCount(v)
		if fl != cl || fc != cc {
			t.Fatalf("compact SCCnt(%d) = (%d,%d), full (%d,%d)", v, cl, cc, fl, fc)
		}
	}
	if compact.EntryCount() != x.ReducedEntryCount() {
		t.Fatalf("Reduce size %d != ReducedEntryCount %d",
			compact.EntryCount(), x.ReducedEntryCount())
	}
	if x.ReducedBytes() >= x.Bytes() {
		t.Fatalf("reduction did not shrink: %d >= %d", x.ReducedBytes(), x.Bytes())
	}
	if compact.Bytes() != 8*compact.EntryCount() {
		t.Fatal("compact Bytes inconsistent")
	}
}

func TestBuildStatsDuration(t *testing.T) {
	g := testgraphs.Figure2()
	_, st := Build(g, order.ByDegree(g), Options{})
	if st.Entries == 0 || st.Duration <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestDAGHasNoCycles(t *testing.T) {
	g := testgraphs.DAG()
	x, _ := Build(g, order.ByDegree(g), Options{})
	for v := 0; v < g.NumVertices(); v++ {
		if l, c := x.CycleCount(v); l != bfscount.NoCycle || c != 0 {
			t.Fatalf("SCCnt(%d) = (%d,%d) on a DAG", v, l, c)
		}
	}
}
