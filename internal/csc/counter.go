package csc

import (
	"io"

	"repro/internal/graph"
	"repro/internal/pll"
)

// Counter is the query-and-maintenance surface shared by the monolithic
// Index and the SCC-sharded Sharded index. The serving engine, the top-k
// monitor and the cyclehub facade program against it, so either form
// serves transparently — including through WAL/snapshot recovery, whose
// snapshots dispatch on the serialization magic (Read).
//
// Implementations are not safe for concurrent mutation; queries may run
// concurrently with each other but not with updates (the serving engine
// provides that synchronization).
type Counter interface {
	// CycleCount answers SCCnt(v): shortest cycle length through v
	// (bfscount.NoCycle when none) and the number of such cycles.
	CycleCount(v int) (length int, count uint64)
	// CycleCountAll evaluates SCCnt for every vertex with the given
	// parallelism (0 = all cores, clamped to the vertex count).
	CycleCountAll(workers int) (lengths []int, counts []uint64)

	// InsertEdge and DeleteEdge apply a maintained edge update. The
	// returned stats' TouchedOwners are Gb vertices of the *original*
	// graph's conversion (bipartite.Original maps them back), whichever
	// implementation produced them.
	InsertEdge(a, b int) (pll.UpdateStats, error)
	DeleteEdge(a, b int) (pll.UpdateStats, error)

	// AddVertex appends one isolated vertex; DetachVertex removes every
	// incident edge of v through maintained deletions.
	AddVertex() (int, error)
	DetachVertex(v int) (int, error)

	// Graph returns the indexed original graph. Callers must not mutate
	// it directly.
	Graph() *graph.Digraph

	// EntryCount, Bytes and ReducedBytes describe the label footprint.
	EntryCount() int
	Bytes() int
	ReducedBytes() int

	// WriteTo serializes the index in a format Read can load.
	WriteTo(w io.Writer) (int64, error)
}

var (
	_ Counter = (*Index)(nil)
	_ Counter = (*Sharded)(nil)
)
