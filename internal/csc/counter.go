package csc

import (
	"io"

	"repro/internal/graph"
	"repro/internal/pll"
)

// Counter is the query-and-maintenance surface shared by the monolithic
// Index and the SCC-sharded Sharded index. The serving engine, the top-k
// monitor and the cyclehub facade program against it, so either form
// serves transparently — including through WAL/snapshot recovery, whose
// snapshots dispatch on the serialization magic (Read).
//
// Implementations are not safe for concurrent mutation; queries may run
// concurrently with each other but not with updates (the serving engine
// provides that synchronization).
type Counter interface {
	// CycleCount answers SCCnt(v): shortest cycle length through v
	// (bfscount.NoCycle when none) and the number of such cycles.
	CycleCount(v int) (length int, count uint64)
	// CycleCountBounded is CycleCount restricted to cycle lengths ≤
	// maxLen, answered through the bounded join kernel: it reports
	// (bfscount.NoCycle, 0) when the shortest cycles are longer, without
	// paying count arithmetic for over-bound hub pairs.
	CycleCountBounded(v, maxLen int) (length int, count uint64)
	// CycleCountAll evaluates SCCnt for every vertex with the given
	// parallelism (0 = all cores, clamped to the vertex count).
	CycleCountAll(workers int) (lengths []int, counts []uint64)

	// InsertEdge and DeleteEdge apply a maintained edge update. The
	// returned stats' TouchedOwners are Gb vertices of the *original*
	// graph's conversion (bipartite.Original maps them back), whichever
	// implementation produced them. TouchedOwners is the exact dirty
	// surface of every update path — INCCNT, decremental repair, scoped
	// and batch rebuilds: SCCnt answers are a pure function of the
	// labels, so any vertex whose answer an update changed appears in
	// it (DirtyVertices maps the owners to original-graph vertices).
	// Read-path caches and the top-k monitor invalidate exactly that
	// set.
	InsertEdge(a, b int) (pll.UpdateStats, error)
	DeleteEdge(a, b int) (pll.UpdateStats, error)

	// ApplyBatch applies an ordered sequence of edge operations as one
	// maintenance unit, answering every query afterwards exactly as if
	// they had gone through InsertEdge/DeleteEdge one at a time. The
	// batch is first reduced to its net effect against the live graph
	// (an insert+delete pair of the same edge cancels), so only the
	// net ops are maintained and reflected in the stats. The batch must
	// be a valid sequence against the live graph (no duplicate inserts,
	// no missing deletes, net of earlier ops in the same batch); an
	// invalid batch is rejected up front with nothing applied. The sharded index plans the batch per
	// shard and applies independent shard streams on workers goroutines
	// (0 = all cores, 1 = sequential); the monolithic index applies
	// sequentially regardless. Stats are aggregated over the batch with
	// TouchedOwners in the same Gb convention as InsertEdge.
	ApplyBatch(batch []EdgeOp, workers int) (pll.UpdateStats, error)

	// AddVertex appends one isolated vertex; DetachVertex removes every
	// incident edge of v through maintained deletions.
	AddVertex() (int, error)
	DetachVertex(v int) (int, error)

	// Graph returns the indexed original graph. Callers must not mutate
	// it directly.
	Graph() *graph.Digraph

	// EntryCount, Bytes and ReducedBytes describe the label footprint.
	EntryCount() int
	Bytes() int
	ReducedBytes() int

	// WriteTo serializes the index in a format Read can load.
	WriteTo(w io.Writer) (int64, error)
}

var (
	_ Counter = (*Index)(nil)
	_ Counter = (*Sharded)(nil)
)
