package csc

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// batchWorkerCounts is the worker sweep the metamorphic suite asserts
// byte-identical query results across (the acceptance gate's {1, 2, 8}).
var batchWorkerCounts = []int{1, 2, 8}

// countsOf snapshots every vertex's query answer.
func countsOf(c Counter) ([]int, []uint64) {
	return c.CycleCountAll(1)
}

// assertSameCounts fails unless two full query snapshots are identical.
func assertSameCounts(t *testing.T, tag string, wantL []int, wantC []uint64, gotL []int, gotC []uint64) {
	t.Helper()
	if len(wantL) != len(gotL) {
		t.Fatalf("%s: %d vs %d vertices", tag, len(wantL), len(gotL))
	}
	for v := range wantL {
		if wantL[v] != gotL[v] || wantC[v] != gotC[v] {
			t.Fatalf("%s: vertex %d got (%d,%d), want (%d,%d)", tag, v, gotL[v], gotC[v], wantL[v], wantC[v])
		}
	}
}

// randomBatches generates a sequence of valid op batches by toggling
// random vertex pairs against a mirror of the evolving graph. Every
// produced sequence is valid both per batch and across batches.
func randomBatches(r *rand.Rand, g *graph.Digraph, batches, perBatch int) [][]EdgeOp {
	mirror := g.Clone()
	n := mirror.NumVertices()
	out := make([][]EdgeOp, 0, batches)
	for b := 0; b < batches; b++ {
		var batch []EdgeOp
		for k := 0; k < perBatch; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if mirror.HasEdge(u, v) {
				_ = mirror.RemoveEdge(u, v)
				batch = append(batch, Del(u, v))
			} else {
				_ = mirror.AddEdge(u, v)
				batch = append(batch, Ins(u, v))
			}
		}
		out = append(out, batch)
	}
	return out
}

// shuffleKeepEdgeOrder reorders a batch while preserving the relative
// order of ops on the same edge (the only order validity and semantics
// depend on): ops of different shards interleave arbitrarily. ApplyBatch
// must answer identically for any such interleaving.
func shuffleKeepEdgeOrder(r *rand.Rand, batch []EdgeOp) []EdgeOp {
	type key = [2]int32
	var keys []key
	groups := make(map[key][]EdgeOp)
	for _, op := range batch {
		k := key{op.A, op.B}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], op)
	}
	out := make([]EdgeOp, 0, len(batch))
	for len(keys) > 0 {
		i := r.Intn(len(keys))
		k := keys[i]
		out = append(out, groups[k][0])
		if groups[k] = groups[k][1:]; len(groups[k]) == 0 {
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}
	}
	return out
}

// TestBatchEquivalenceMetamorphic is the batch-update acceptance suite:
// over the testgraphs corpus families and random graphs, random batches
// applied through Sharded.ApplyBatch — at every worker count, and under
// shard-interleaving shuffles of the op order — must produce cycle counts
// identical on every vertex to sequential per-edge application, to the
// monolithic ApplyBatch fallback, and to a fresh build of the final
// graph.
func TestBatchEquivalenceMetamorphic(t *testing.T) {
	type trial struct {
		name string
		g    *graph.Digraph
	}
	var trials []trial
	for _, ng := range testgraphs.Corpus() {
		trials = append(trials, trial{ng.Name, ng.G})
	}
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 3; i++ {
		n := 10 + r.Intn(25)
		g := graph.New(n)
		for k := 0; k < 3*n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		trials = append(trials, trial{name: "random", g: g})
	}

	for _, tr := range trials {
		batches := randomBatches(r, tr.g, 4, 12)

		// Reference: sequential per-edge application on a sharded index.
		ref, _ := BuildSharded(tr.g.Clone(), Options{})
		var refL [][]int
		var refC [][]uint64
		for _, batch := range batches {
			for _, op := range batch {
				var err error
				if op.Kind == OpInsert {
					_, err = ref.InsertEdge(int(op.A), int(op.B))
				} else {
					_, err = ref.DeleteEdge(int(op.A), int(op.B))
				}
				if err != nil {
					t.Fatalf("%s: reference op %+v: %v", tr.name, op, err)
				}
			}
			l, c := countsOf(ref)
			refL, refC = append(refL, l), append(refC, c)
		}

		for _, w := range batchWorkerCounts {
			x, _ := BuildSharded(tr.g.Clone(), Options{})
			for bi, batch := range batches {
				if _, err := x.ApplyBatch(batch, w); err != nil {
					t.Fatalf("%s workers=%d batch %d: %v", tr.name, w, bi, err)
				}
				if err := x.checkConsistent(); err != nil {
					t.Fatalf("%s workers=%d batch %d: %v", tr.name, w, bi, err)
				}
				l, c := countsOf(x)
				assertSameCounts(t, tr.name+"/batch-vs-seq", refL[bi], refC[bi], l, c)
			}
			if !graph.Equal(x.Graph(), ref.Graph()) {
				t.Fatalf("%s workers=%d: graphs diverged", tr.name, w)
			}
		}

		// Shard-interleaving shuffle at the highest worker count.
		xs, _ := BuildSharded(tr.g.Clone(), Options{})
		for bi, batch := range batches {
			if _, err := xs.ApplyBatch(shuffleKeepEdgeOrder(r, batch), 8); err != nil {
				t.Fatalf("%s shuffled batch %d: %v", tr.name, bi, err)
			}
			l, c := countsOf(xs)
			assertSameCounts(t, tr.name+"/shuffled-vs-seq", refL[bi], refC[bi], l, c)
		}

		// Monolithic fallback and a fresh build of the final graph.
		mono, _ := Build(tr.g.Clone(), order.ByDegree(tr.g), Options{})
		for bi, batch := range batches {
			if _, err := mono.ApplyBatch(batch, 0); err != nil {
				t.Fatalf("%s mono batch %d: %v", tr.name, bi, err)
			}
		}
		l, c := countsOf(mono)
		assertSameCounts(t, tr.name+"/mono-vs-seq", refL[len(refL)-1], refC[len(refC)-1], l, c)

		fresh, _ := BuildSharded(ref.Graph().Clone(), Options{})
		l, c = countsOf(fresh)
		assertSameCounts(t, tr.name+"/fresh-vs-seq", refL[len(refL)-1], refC[len(refC)-1], l, c)
	}
}

// TestApplyBatchPlanner pins the planner's structural guarantees on a
// hand-built graph: label-free short circuits, at-most-one rebuild per
// merged component, and intact-shard streams that never trigger rebuilds.
func TestApplyBatchPlanner(t *testing.T) {
	// Two triangles (0,1,2) and (3,4,5) plus trivial vertices 6,7.
	build := func() *Sharded {
		g := graph.New(8)
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
			_ = g.AddEdge(e[0], e[1])
		}
		x, _ := BuildSharded(g, Options{})
		return x
	}

	t.Run("trivial ops touch no labels", func(t *testing.T) {
		x := build()
		// DAG edges among trivial vertices and into/out of shards close no
		// cycles: no rebuilds, no label churn.
		st, err := x.ApplyBatch([]EdgeOp{Ins(6, 7), Ins(6, 0), Ins(2, 7)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.EntriesAdded != 0 || st.EntriesRemoved != 0 || x.BatchRebuilds() != 0 {
			t.Fatalf("label-free batch churned: %+v, rebuilds %d", st, x.BatchRebuilds())
		}
	})

	t.Run("merge rebuilds once per component", func(t *testing.T) {
		x := build()
		// Close one big cycle through both triangles and vertex 6 with
		// three structural inserts: exactly one merged-component rebuild.
		if _, err := x.ApplyBatch([]EdgeOp{Ins(0, 3), Ins(5, 6), Ins(6, 1)}, 2); err != nil {
			t.Fatal(err)
		}
		if got := x.BatchRebuilds(); got != 1 {
			t.Fatalf("merged batch did %d rebuilds, want 1", got)
		}
		if x.NumShards() != 1 {
			t.Fatalf("expected one merged shard, have %d", x.NumShards())
		}
		if l, _ := x.CycleCount(6); l != 7 {
			t.Fatalf("vertex 6 shortest cycle %d, want 7", l)
		}
	})

	t.Run("cross-shard insert+delete pair is free", func(t *testing.T) {
		x := build()
		st, err := x.ApplyBatch([]EdgeOp{Ins(0, 3), Del(0, 3)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.EntriesAdded != 0 || x.BatchRebuilds() != 0 {
			t.Fatalf("net-zero structural pair churned: %+v, rebuilds %d", st, x.BatchRebuilds())
		}
	})

	t.Run("flap pair coalesces to nothing", func(t *testing.T) {
		x := build()
		// Delete and reinsert the same intra-shard edge in one batch: the
		// net effect is empty, so no maintenance runs at all — where
		// per-edge application would split and re-merge the component.
		st, err := x.ApplyBatch([]EdgeOp{Del(0, 1), Ins(0, 1)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.EntriesAdded+st.EntriesChanged+st.EntriesRemoved != 0 || x.BatchRebuilds() != 0 {
			t.Fatalf("flap pair did work: %+v, rebuilds %d", st, x.BatchRebuilds())
		}
		if l, c := x.CycleCount(0); l != 3 || c != 1 {
			t.Fatalf("triangle answer (%d,%d) after flap pair", l, c)
		}
	})

	t.Run("intact shard stream avoids rebuilds", func(t *testing.T) {
		// Ring 0→1→2→3→0 with chord 0→2: one shard. Deleting the chord
		// and inserting chord 1→3 in one batch leaves the ring — and so
		// the component — intact: both net ops stream through incremental
		// maintenance, no rebuild.
		g := graph.New(4)
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
			_ = g.AddEdge(e[0], e[1])
		}
		x, _ := BuildSharded(g, Options{})
		st, err := x.ApplyBatch([]EdgeOp{Del(0, 2), Ins(1, 3)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := x.BatchRebuilds(); got != 0 {
			t.Fatalf("intact shard stream did %d rebuilds, want 0", got)
		}
		if st.EntriesAdded+st.EntriesChanged+st.EntriesRemoved == 0 {
			t.Fatalf("net stream ops did no label maintenance: %+v", st)
		}
		// 1→3→0→1 is now the shortest cycle through 0, 1 and 3.
		if l, _ := x.CycleCount(1); l != 3 {
			t.Fatalf("vertex 1 shortest cycle %d, want 3", l)
		}
	})

	t.Run("split with partial merge rebuilds every survivor", func(t *testing.T) {
		// One SCC of two bridged rings (as in the split case), plus a
		// trivial vertex 6. The batch splits the component and merges one
		// survivor with vertex 6 — the other survivor must keep its
		// labels through a rebuild of its own.
		g := graph.New(7)
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}, {5, 0}} {
			_ = g.AddEdge(e[0], e[1])
		}
		x, _ := BuildSharded(g, Options{})
		if x.NumShards() != 1 {
			t.Fatalf("setup: want one SCC, have %d shards", x.NumShards())
		}
		batch := []EdgeOp{Del(2, 3), Del(5, 0), Ins(0, 6), Ins(6, 1)}
		if _, err := x.ApplyBatch(batch, 2); err != nil {
			t.Fatal(err)
		}
		if err := x.checkConsistent(); err != nil {
			t.Fatal(err)
		}
		if x.NumShards() != 2 {
			t.Fatalf("want 2 shards after split+partial merge, have %d", x.NumShards())
		}
		// Ring 3→4→5 survives untouched; 0,1,2,6 ride the enlarged ring.
		if l, c := x.CycleCount(4); l != 3 || c != 1 {
			t.Fatalf("vertex 4 answer (%d,%d), want (3,1)", l, c)
		}
		if l, _ := x.CycleCount(6); l != 4 {
			t.Fatalf("vertex 6 shortest cycle %d, want 4 (0→6→1→2→0)", l)
		}
	})

	t.Run("many structural inserts take the global pass", func(t *testing.T) {
		// Six trivial vertices closed into a ring in one batch: more
		// structural inserts than the scoped threshold, one merged
		// component, one rebuild.
		g := graph.New(6)
		x, _ := BuildSharded(g, Options{})
		batch := []EdgeOp{Ins(0, 1), Ins(1, 2), Ins(2, 3), Ins(3, 4), Ins(4, 5), Ins(5, 0)}
		if _, err := x.ApplyBatch(batch, 2); err != nil {
			t.Fatal(err)
		}
		if x.NumShards() != 1 || x.BatchRebuilds() != 1 {
			t.Fatalf("ring batch: %d shards, %d rebuilds; want 1 and 1", x.NumShards(), x.BatchRebuilds())
		}
		for v := 0; v < 6; v++ {
			if l, c := x.CycleCount(v); l != 6 || c != 1 {
				t.Fatalf("vertex %d answer (%d,%d), want (6,1)", v, l, c)
			}
		}
	})

	t.Run("split rebuilds survivors only", func(t *testing.T) {
		g := graph.New(6)
		// Two rings sharing no vertices, bridged into one SCC:
		// 0→1→2→0 and 3→4→5→3 with 2→3 and 5→0.
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}, {5, 0}} {
			_ = g.AddEdge(e[0], e[1])
		}
		x, _ := BuildSharded(g, Options{})
		if x.NumShards() != 1 {
			t.Fatalf("setup: want one SCC, have %d shards", x.NumShards())
		}
		// Dropping both bridges splits the giant component back into the
		// two rings: one batch, two survivor rebuilds.
		if _, err := x.ApplyBatch([]EdgeOp{Del(2, 3), Del(5, 0)}, 2); err != nil {
			t.Fatal(err)
		}
		if x.NumShards() != 2 || x.BatchRebuilds() != 2 {
			t.Fatalf("split: %d shards, %d rebuilds; want 2 and 2", x.NumShards(), x.BatchRebuilds())
		}
		for v := 0; v < 6; v++ {
			if l, c := x.CycleCount(v); l != 3 || c != 1 {
				t.Fatalf("vertex %d answer (%d,%d) after split", v, l, c)
			}
		}
	})
}

// TestValidateBatch pins the batch validation contract: rejected batches
// leave the index untouched, and validity is judged net of earlier ops in
// the same batch against the live graph.
func TestValidateBatch(t *testing.T) {
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	cases := []struct {
		name  string
		batch []EdgeOp
		ok    bool
	}{
		{"empty", nil, true},
		{"insert absent", []EdgeOp{Ins(1, 2)}, true},
		{"insert present", []EdgeOp{Ins(0, 1)}, false},
		{"delete present", []EdgeOp{Del(0, 1)}, true},
		{"delete absent", []EdgeOp{Del(1, 2)}, false},
		{"insert twice", []EdgeOp{Ins(1, 2), Ins(1, 2)}, false},
		{"insert then delete", []EdgeOp{Ins(1, 2), Del(1, 2)}, true},
		{"delete then reinsert", []EdgeOp{Del(0, 1), Ins(0, 1)}, true},
		{"self loop", []EdgeOp{Ins(2, 2)}, false},
		{"out of range", []EdgeOp{Ins(0, 9)}, false},
		{"unknown kind", []EdgeOp{{Kind: 7, A: 0, B: 1}}, false},
	}
	for _, tc := range cases {
		if err := ValidateBatch(g, tc.batch); (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}

	// A rejected batch must leave both index forms untouched.
	x, _ := BuildSharded(g.Clone(), Options{})
	before := x.EntryCount()
	if _, err := x.ApplyBatch([]EdgeOp{Ins(1, 2), Ins(0, 1)}, 2); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if x.EntryCount() != before || x.Graph().HasEdge(1, 2) {
		t.Fatal("rejected batch mutated the sharded index")
	}
	m, _ := Build(g.Clone(), order.ByDegree(g), Options{})
	if _, err := m.ApplyBatch([]EdgeOp{Del(0, 1), Del(0, 1)}, 0); err == nil {
		t.Fatal("invalid batch accepted by monolithic index")
	}
	if m.Graph().HasEdge(0, 1) != true {
		t.Fatal("rejected batch mutated the monolithic graph")
	}
}
