//go:build linux

package csc

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The mapping is deliberately never
// unmapped: ReadFile hands its bytes to live label sections that must
// stay valid for the process lifetime.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, fmt.Errorf("csc: mmap of empty file %s", path)
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("csc: %s too large to map", path)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
}
