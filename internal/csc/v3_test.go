package csc

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// assertCountersAgree compares two Counter forms over every vertex and a
// spread of bounds — the byte-identical-answers contract between the
// mutable, compressed, and mmap'd index forms.
func assertCountersAgree(t *testing.T, ctx string, a, b Counter, n int) {
	t.Helper()
	for v := 0; v < n; v++ {
		al, ac := a.CycleCount(v)
		bl, bc := b.CycleCount(v)
		if al != bl || ac != bc {
			t.Fatalf("%s: CycleCount(%d) = (%d,%d) vs (%d,%d)", ctx, v, al, ac, bl, bc)
		}
		for _, maxLen := range []int{1, 2, 3, al, al + 1, 50} {
			al2, ac2 := a.CycleCountBounded(v, maxLen)
			bl2, bc2 := b.CycleCountBounded(v, maxLen)
			if al2 != bl2 || ac2 != bc2 {
				t.Fatalf("%s: CycleCountBounded(%d,%d) = (%d,%d) vs (%d,%d)",
					ctx, v, maxLen, al2, ac2, bl2, bc2)
			}
		}
	}
}

// Compressed indexes must answer byte-identically to uncompressed ones —
// at build time, through dynamic updates (which thaw touched lists), and
// after an explicit refreeze.
func TestCompressedMatchesUncompressed(t *testing.T) {
	graphs := []*graph.Digraph{
		testgraphs.Figure2(), testgraphs.DiamondCycles(), testgraphs.DAG(),
		testgraphs.DAGHeavy(200, 600, 4, 7),
		testgraphs.ManySmallSCC(8, 4, 40, 8),
	}
	r := rand.New(rand.NewSource(41))
	for seed := 0; seed < 6; seed++ {
		graphs = append(graphs, randomGraph(r, 8+r.Intn(16), 2))
	}
	for gi, g := range graphs {
		plain, _ := BuildSharded(g.Clone(), Options{Workers: 1})
		comp, _ := BuildSharded(g.Clone(), Options{Workers: 1, CompressLabels: true})
		if comp.CompressedBytes() == 0 && comp.EntryCount() > 0 {
			t.Fatalf("graph %d: compressed index reports 0 compressed bytes", gi)
		}
		n := g.NumVertices()
		assertCountersAgree(t, "built", plain, comp, n)

		// Monolithic compressed form too.
		mono, _ := Build(g.Clone(), order.ByDegree(g), Options{CompressLabels: true})
		assertCountersAgree(t, "monolithic", plain, mono, n)

		// Updates thaw only what they touch; answers must track exactly.
		for step := 0; step < 12; step++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if plain.Graph().HasEdge(u, v) {
				_, err1 := plain.DeleteEdge(u, v)
				_, err2 := comp.DeleteEdge(u, v)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("graph %d step %d: delete divergence", gi, step)
				}
			} else {
				_, err1 := plain.InsertEdge(u, v)
				_, err2 := comp.InsertEdge(u, v)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("graph %d step %d: insert divergence", gi, step)
				}
			}
		}
		assertCountersAgree(t, "after updates", plain, comp, n)
		comp.RefreezeLabels()
		assertCountersAgree(t, "after refreeze", plain, comp, n)
	}
}

// The v3 format must round-trip through the strict stream reader and the
// lazy mmap reader with identical answers, and re-serialize
// byte-identically.
func TestV3RoundTrip(t *testing.T) {
	graphs := []*graph.Digraph{
		testgraphs.Figure2(),
		testgraphs.DAGHeavy(120, 360, 4, 9),
		testgraphs.ManySmallSCC(6, 4, 30, 10),
		testgraphs.GiantSCC(24, 90, 11),
	}
	for gi, g := range graphs {
		n := g.NumVertices()
		x, _ := BuildSharded(g.Clone(), Options{Workers: 1, CompressLabels: true})

		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatalf("graph %d: WriteTo: %v", gi, err)
		}
		raw := buf.Bytes()
		if string(raw[:8]) != v3Magic {
			t.Fatalf("graph %d: compressed index wrote magic %q", gi, raw[:8])
		}

		got, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("graph %d: Read(v3): %v", gi, err)
		}
		sx, ok := got.(*Sharded)
		if !ok {
			t.Fatalf("graph %d: v3 loaded as %T", gi, got)
		}
		if !sx.opts.CompressLabels {
			t.Fatalf("graph %d: v3 load lost CompressLabels", gi)
		}
		assertCountersAgree(t, "stream reload", x, got, n)

		// Re-serialization is byte-stable: nothing thawed on the read side.
		var buf2 bytes.Buffer
		if _, err := sx.WriteTo(&buf2); err != nil {
			t.Fatalf("graph %d: re-serialize: %v", gi, err)
		}
		if !bytes.Equal(raw, buf2.Bytes()) {
			t.Fatalf("graph %d: v3 re-serialization not byte-identical (%d vs %d bytes)",
				gi, len(raw), len(buf2.Bytes()))
		}

		// The mmap path: lazy structural load from a file.
		path := filepath.Join(t.TempDir(), "index.csc")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		mm, err := ReadFile(path, true)
		if err != nil {
			t.Fatalf("graph %d: ReadFile(mmap): %v", gi, err)
		}
		assertCountersAgree(t, "mmap reload", x, mm, n)

		// ReadFile without mmap takes the strict path and agrees too.
		plain, err := ReadFile(path, false)
		if err != nil {
			t.Fatalf("graph %d: ReadFile: %v", gi, err)
		}
		assertCountersAgree(t, "file reload", x, plain, n)

		// A loaded v3 index keeps serving through updates.
	insert:
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && !sx.Graph().HasEdge(u, v) {
					if _, err := sx.InsertEdge(u, v); err != nil {
						t.Fatalf("graph %d: insert on reloaded index: %v", gi, err)
					}
					break insert
				}
			}
		}
		if sx.RefreezeLabels() < 0 {
			t.Fatal("negative refreeze")
		}
	}
}

// ReadFile with mmap on a non-v3 file must still load it (strict parse
// of the mapped image).
func TestReadFileMmapFallsBackOnV2(t *testing.T) {
	g := testgraphs.ManySmallSCC(4, 3, 20, 12)
	x, _ := BuildSharded(g, Options{Workers: 1})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v2.csc")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, true)
	if err != nil {
		t.Fatalf("ReadFile(v2, mmap): %v", err)
	}
	assertCountersAgree(t, "v2 via mmap path", x, got, g.NumVertices())
}
