package csc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pll"
)

// Sharded binary format v2 (little endian):
//
//	magic    [8]byte  "CSCIDX02"
//	n        uint32   global vertex count
//	m        uint32   global edge count (including cross-component edges)
//	strategy uint8
//	edges    m × (uint32, uint32)
//	shards   uint32   number of non-trivial components
//	per shard, ordered by smallest member vertex:
//	  size   uint32   member count (≥ 2)
//	  verts  size × uint32, strictly increasing (position = local id)
//	  blob   the shard's Gb labeling, a complete embedded v1 stream
//
// The global graph is authoritative for the edge set; each shard blob
// carries the component's converted subgraph with its labels. Loading
// validates the whole structure — every shard's reconstructed subgraph
// must equal the induced subgraph of the global graph, and the shard
// table must be exactly the SCC decomposition's non-trivial components —
// so a corrupt shard table is rejected rather than silently serving
// wrong counts.

const shardedMagic = "CSCIDX02"

// maxShardedVertices bounds the v2/v3 header's global vertex count. The
// loader allocates ~56 bytes of adjacency and shard-map state per claimed
// vertex and validates the shard table with a full SCC pass, both before
// the body proves itself — so the bound is calibrated to keep a hostile
// 25-byte header (huge n, zero edges, zero shards) to ~120MB and a
// fraction of a second rather than gigabytes and minutes. It still sits
// far above the per-shard hub encoding limit's practical reach for this
// codebase; a graph beyond it needs a format revision, not a bigger
// constant.
const maxShardedVertices = 1 << 21

// WriteTo serializes the sharded index: the compressed v3/v4 format
// when the index was built with Options.CompressLabels (v4 exactly when
// a non-degree ordering strategy needs recording), the v2 format
// otherwise.
func (x *Sharded) WriteTo(w io.Writer) (int64, error) {
	if x.opts.CompressLabels {
		return x.writeV34(w)
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }

	if _, err := bw.WriteString(shardedMagic); err != nil {
		return cw.n, err
	}
	n := x.g.NumVertices()
	if err := write(uint32(n)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(x.g.NumEdges())); err != nil {
		return cw.n, err
	}
	if err := write(uint8(x.opts.Strategy)); err != nil {
		return cw.n, err
	}
	for u := 0; u < n; u++ {
		for _, v := range x.g.Out(u) {
			if err := write(uint32(u)); err != nil {
				return cw.n, err
			}
			if err := write(uint32(v)); err != nil {
				return cw.n, err
			}
		}
	}
	live := x.liveShards()
	if err := write(uint32(len(live))); err != nil {
		return cw.n, err
	}
	for _, sh := range live {
		if err := write(uint32(len(sh.verts))); err != nil {
			return cw.n, err
		}
		for _, v := range sh.verts {
			if err := write(uint32(v)); err != nil {
				return cw.n, err
			}
		}
		// The blob writer buffers privately; flush our buffer first so the
		// bytes interleave in stream order.
		if err := bw.Flush(); err != nil {
			return cw.n, err
		}
		if _, err := sh.idx.eng.WriteTo(cw); err != nil {
			return cw.n, err
		}
	}
	// Flush before reading the count: the header and edge stream may still
	// be buffered (always, on a shard-free graph), and the evaluation order
	// of a plain operand against a call in one return list is unspecified.
	err := bw.Flush()
	return cw.n, err
}

// readSharded loads a v2 stream, validating the shard table against the
// global graph's actual SCC decomposition.
func readSharded(br *bufio.Reader) (*Sharded, error) {
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", pll.ErrBadFormat, fmt.Sprintf(format, args...))
	}

	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, bad("%v", err)
	}
	if string(magic[:]) != shardedMagic {
		return nil, bad("bad magic %q", magic[:])
	}
	var n32, m32 uint32
	var strat uint8
	if err := read(&n32); err != nil {
		return nil, bad("%v", err)
	}
	if err := read(&m32); err != nil {
		return nil, bad("%v", err)
	}
	if err := read(&strat); err != nil {
		return nil, bad("%v", err)
	}
	n, m := int(n32), int(m32)
	// The global graph carries no labeling, so the per-shard hub encoding
	// limit does not apply here — each embedded blob enforces it for its
	// own 2·|C| vertices. The header bound only keeps a hostile count from
	// driving a multi-gigabyte allocation.
	if n > maxShardedVertices {
		return nil, bad("vertex count %d exceeds limit %d", n, maxShardedVertices)
	}
	if pll.Strategy(strat) != pll.Redundancy && pll.Strategy(strat) != pll.Minimality {
		return nil, bad("unknown strategy %d", strat)
	}
	if int64(m32) > int64(n)*int64(n-1) {
		return nil, bad("edge count %d impossible for %d vertices", m, n)
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		var u, v uint32
		if err := read(&u); err != nil {
			return nil, bad("truncated edges: %v", err)
		}
		if err := read(&v); err != nil {
			return nil, bad("truncated edges: %v", err)
		}
		if err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, bad("edge (%d,%d): %v", u, v, err)
		}
	}
	var shardCount uint32
	if err := read(&shardCount); err != nil {
		return nil, bad("truncated shard table: %v", err)
	}
	if int(shardCount) > n/2 {
		return nil, bad("%d shards impossible for %d vertices", shardCount, n)
	}

	x := &Sharded{
		g:       g,
		opts:    Options{Strategy: pll.Strategy(strat)},
		shardOf: make([]int32, n),
		localID: make([]int32, n),
	}
	for v := range x.shardOf {
		x.shardOf[v] = -1
		x.localID[v] = -1
	}
	for sid := 0; sid < int(shardCount); sid++ {
		var size uint32
		if err := read(&size); err != nil {
			return nil, bad("truncated shard %d header: %v", sid, err)
		}
		if size < 2 || int(size) > n {
			return nil, bad("shard %d has %d vertices", sid, size)
		}
		verts := make([]int32, size)
		prev := int32(-1)
		for i := range verts {
			var v uint32
			if err := read(&v); err != nil {
				return nil, bad("truncated shard %d members: %v", sid, err)
			}
			if int(v) >= n || int32(v) <= prev {
				return nil, bad("shard %d member %d out of order or range", sid, v)
			}
			if x.shardOf[v] != -1 {
				return nil, bad("vertex %d claimed by two shards", v)
			}
			prev = int32(v)
			verts[i] = int32(v)
			x.shardOf[v] = int32(sid)
			x.localID[v] = int32(i)
		}
		eng, err := pll.ReadIndexFrom(br)
		if err != nil {
			return nil, fmt.Errorf("shard %d labeling: %w", sid, err)
		}
		if eng.Strategy != pll.Strategy(strat) {
			return nil, bad("shard %d strategy %d != header %d", sid, eng.Strategy, strat)
		}
		eng.HubFilter = bipartite.IsIn
		sub, err := originalFromGb(eng.G)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sid, err)
		}
		if sub.NumVertices() != int(size) {
			return nil, bad("shard %d labeling covers %d vertices, table says %d", sid, sub.NumVertices(), size)
		}
		if !graph.Equal(sub, partition.Induced(g, verts)) {
			return nil, bad("shard %d subgraph does not match the global graph", sid)
		}
		x.shards = append(x.shards, &shard{verts: verts, idx: &Index{g: sub, eng: eng}})
	}
	// The shard table must be exactly the graph's non-trivial SCCs — a
	// table that omits a cyclic region (which would silently answer 0) or
	// invents a non-component shard is corrupt.
	comps := partition.SCC(g).NonTrivial()
	live := x.liveShards()
	if len(comps) != len(live) {
		return nil, bad("shard table has %d components, graph has %d", len(live), len(comps))
	}
	for i, comp := range comps {
		sv := live[i].verts
		if len(comp) != len(sv) {
			return nil, bad("shard %d size mismatch with SCC decomposition", i)
		}
		for j := range comp {
			if comp[j] != sv[j] {
				return nil, bad("shard %d member mismatch with SCC decomposition", i)
			}
		}
	}
	return x, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
