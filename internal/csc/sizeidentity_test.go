package csc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/hpspc"
	"repro/internal/order"
	"repro/internal/pll"
	"repro/internal/testgraphs"
)

// The structural fact behind Figure 9(b): paths h→v in G biject with
// paths h_in→v_in in Gb, preserving shortest-ness, counts, and the
// top-ranked vertex under the lifted order. Hence the reduced CSC label
// (one list per couple per side, §IV-E) equals the HP-SPC label entry for
// entry — with distances doubled — plus one extra cycle entry in
// Lout(v_out) for exactly those vertices that are themselves the
// top-ranked vertex on one of their shortest cycles (otherwise a higher
// hub already covers the cycle). That is why the paper reports CSC index
// sizes at parity with HP-SPC despite Gb doubling the vertex count.
func TestReducedSizeIdentityWithHPSPC(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cases := map[string]*graph.Digraph{
		"figure2":  testgraphs.Figure2(),
		"triangle": testgraphs.Triangle(),
		"dag":      testgraphs.DAG(),
	}
	for i := 0; i < 10; i++ {
		cases[fmt.Sprintf("random%d", i)] = randomGraph(r, 5+r.Intn(20), 1+r.Intn(4))
	}

	run := func(name string, g *graph.Digraph) {
		ord := order.ByDegree(g)
		hp, _ := hpspc.Build(g.Clone(), ord, pll.Redundancy)
		x, _ := Build(g.Clone(), ord, Options{})

		cycleEntries := 0
		for v := 0; v < g.NumVertices(); v++ {
			if selfMaxCycle(g, ord, v) {
				cycleEntries++
			}
		}
		want := hp.EntryCount() + cycleEntries
		if got := x.ReducedEntryCount(); got != want {
			t.Errorf("%s: reduced CSC entries = %d, want HP-SPC %d + %d self-max cycles = %d",
				name, got, hp.EntryCount(), cycleEntries, want)
		}

		// Entry-for-entry on the in side: Lin(v_in) mirrors HP-SPC's
		// Lin(v) with doubled distances and identical counts.
		for v := 0; v < g.NumVertices(); v++ {
			hpIn := hp.Engine().InLabel(v)
			cscIn := x.Engine().InLabel(bipartite.InVertex(v))
			if hpIn.Len() != cscIn.Len() {
				t.Errorf("%s: Lin(%d) length %d vs %d", name, v, hpIn.Len(), cscIn.Len())
				continue
			}
			for i := 0; i < hpIn.Len(); i++ {
				he, ce := hpIn.At(i), cscIn.At(i)
				if ce.Dist() != 2*he.Dist() || ce.Count() != he.Count() {
					t.Errorf("%s: Lin(%d)[%d]: csc (d=%d,c=%d) vs hp (d=%d,c=%d)",
						name, v, i, ce.Dist(), ce.Count(), he.Dist(), he.Count())
				}
			}
		}
	}
	for name, g := range cases {
		run(name, g)
	}
}

// selfMaxCycle reports whether v is the top-ranked vertex on at least one
// of its shortest cycles: a BFS from v restricted to lower-ranked
// intermediates must close a cycle of the globally shortest length.
func selfMaxCycle(g *graph.Digraph, ord *order.Order, v int) bool {
	shortest, _ := bfscount.CycleCount(g, v)
	if shortest == bfscount.NoCycle {
		return false
	}
	n := g.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = -1
	}
	var queue []int32
	for _, u := range g.Out(v) {
		if ord.Above(v, int(u)) {
			d[u] = 1
			queue = append(queue, u)
		}
	}
	for head := 0; head < len(queue); head++ {
		w := int(queue[head])
		for _, u := range g.Out(w) {
			if int(u) == v {
				return int(d[w])+1 == shortest
			}
			if d[u] == -1 && ord.Above(v, int(u)) {
				d[u] = d[w] + 1
				queue = append(queue, u)
			}
		}
	}
	return false
}
