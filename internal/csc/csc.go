// Package csc implements the paper's contribution: the Counting Shortest
// Cycle index (§IV). A directed graph G is reshaped by the bipartite
// conversion into Gb, a counting hub labeling is built over Gb with the
// couple-vertex-skipping construction (Algorithms 3-4), and SCCnt(v) is
// answered as SPCnt(v_out, v_in) in Gb — a single merge-join of two label
// lists, independent of v's degree. Edge insertions and deletions on G
// are maintained by the INCCNT and decremental algorithms of §V running
// on the Gb labeling.
//
// Construction runs on the engine's fast-path pipeline: the skipping
// BFSes prune through the hub-indexed scatter instead of per-dequeue
// merge-joins, hubs are processed in rank-batched parallel speculation
// with a deterministic rank-order merge (labels stay byte-identical to a
// sequential build), and the finished labels freeze into the CSR arena.
//
// Two index forms share the Counter surface: the monolithic Index below
// (one labeling over the whole graph) and the SCC-sharded Sharded index
// (sharded.go), which partitions by condensation, keeps the acyclic share
// label-free, and scopes dynamic rebuilds to merged/split components.
package csc

import (
	"time"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/pll"
)

// Index is a CSC shortest-cycle-counting index.
type Index struct {
	g   *graph.Digraph // the original graph (kept live for updates)
	eng *pll.Index     // counting labels over the bipartite conversion
}

// Options configures Build.
type Options struct {
	// Strategy selects the dynamic maintenance strategy (§V-B).
	Strategy pll.Strategy
	// GenericConstruction builds the Gb labeling with the generic engine
	// (hub-filtered to V_in) instead of the couple-vertex-skipping
	// construction. Both produce identical labels — this knob exists for
	// the ablation benchmark and as a cross-check in tests.
	GenericConstruction bool
	// Workers sets construction parallelism: 0 uses every core, 1 forces
	// the sequential path. Labels are identical either way.
	Workers int
	// CompressLabels freezes finished labels into the delta+varint
	// compressed arena (label.Frozen): queries stream compressed sections
	// behind bloom pre-screens, updates thaw only the lists they touch,
	// and the engine re-freezes on quiesce. Sharded indexes built with it
	// serialize as the mmap-able v3 format.
	CompressLabels bool
	// Order selects the hub-ordering strategy every shard build and
	// scoped rebuild uses (order.Compute over the component's induced
	// subgraph). The zero value is order.Degree — the paper's ordering —
	// so existing builds are unchanged. Indexes carrying a non-degree
	// order serialize as the v4 format.
	Order order.Strategy
	// OrderSeed seeds the sampling strategies (betweenness, coverage,
	// random). Builds are deterministic for a fixed seed.
	OrderSeed int64
}

// Build converts g, lifts the ordering, and constructs the CSC labeling.
// The original graph g is retained (not copied) and subsequently owned by
// the index: callers must mutate it only through InsertEdge/DeleteEdge.
func Build(g *graph.Digraph, ord *order.Order, opts Options) (*Index, pll.BuildStats) {
	start := time.Now()
	gb := bipartite.Convert(g)
	lifted := bipartite.LiftOrder(ord)
	var eng *pll.Index
	if opts.GenericConstruction {
		eng, _ = pll.Build(gb, lifted, pll.Options{
			Strategy:  opts.Strategy,
			HubFilter: bipartite.IsIn,
			Workers:   opts.Workers,
		})
	} else {
		eng = buildSkipping(gb, lifted, opts.Workers)
		eng.Strategy = opts.Strategy
		eng.HubFilter = bipartite.IsIn
	}
	if opts.CompressLabels {
		// Every build path — monolithic, per-shard, scoped rebuilds — funnels
		// through here, so compression survives any dynamic reconstruction.
		eng.FreezeCompressed()
	}
	idx := &Index{g: g, eng: eng}
	st := eng.Stats()
	st.Duration = time.Since(start)
	return idx, st
}

// buildSkipping is the couple-vertex-skipping construction (Algorithm 3):
// only V_in vertices run hub BFSes; each labeled vertex also labels its
// couple one step further, so the queue only ever holds one vertex per
// couple and half the join queries are skipped. The passes run on the
// engine's rank-batched driver, so they parallelize like the generic
// construction while producing the same bytes.
func buildSkipping(gb *graph.Digraph, ord *order.Order, workers int) *pll.Index {
	eng := pll.NewEmpty(gb, ord)
	eng.RunConstruction(&skipScheme{eng: eng, gb: gb, ord: ord}, workers)
	eng.FreezeArena()
	return eng
}

// skipScheme adapts the couple-vertex-skipping construction to the
// engine's rank-batched driver.
type skipScheme struct {
	eng *pll.Index
	gb  *graph.Digraph
	ord *order.Order
}

func (sc *skipScheme) IsHub(r int) bool { return bipartite.IsIn(sc.ord.VertexAt(r)) }

// SelfLabels gives a V_out vertex its self labels (Alg 3 l.6-8).
func (sc *skipScheme) SelfLabels(r int) {
	v := sc.ord.VertexAt(r)
	self := bitpack.Pack(r, 0, 1)
	sc.eng.AppendIn(v, self)
	sc.eng.AppendOut(v, self)
}

func (sc *skipScheme) RunPass(r, pass int, s *pll.Scratch, st *pll.Stage) {
	v := sc.ord.VertexAt(r)
	if pass == 0 {
		sc.inSpecPass(v, r, s, st)
	} else {
		sc.outSpecPass(v, r, s, st)
	}
}

func (sc *skipScheme) Anchor(r, pass int) *label.List {
	v := sc.ord.VertexAt(r)
	if pass == 0 {
		return &sc.eng.Out[v] // Alg 3 l.14: Query joins Lout(v) with Lin(w)
	}
	return &sc.eng.In[v]
}

// inSpecPass generates in-labels with hub v_in = v (rank r). The queue
// holds V_in vertices only; each popped w also stamps its couple w_out at
// distance D[w]+1 (couple-vertex skipping). The prune test probes the
// rank-indexed scatter of Lout(v) against Lin(w); appends are staged, and
// mid-pass appends can never feed a probe (V_in lists are probed only at
// their single dequeue, couple appends target V_out lists).
func (sc *skipScheme) inSpecPass(v, r int, s *pll.Scratch, st *pll.Stage) {
	eng, gb, ord := sc.eng, sc.gb, sc.ord
	st.Reset(true, false)
	s.Scatter(&eng.Out[v])
	defer s.Unscatter(&eng.Out[v])
	defer s.Reset()

	s.Visit(v, 0, 1)
	s.Queue = append(s.Queue, int32(v))
	for head := 0; head < len(s.Queue); head++ {
		w := int(s.Queue[head])
		dw := int(s.Dist[w])
		if w != v {
			if dq := s.Probe(&eng.In[w], dw); dq < dw {
				continue // Alg 3 l.14-15: v not top-ranked on any path
			}
		}
		// INSERT LABEL (Algorithm 4): label w and its couple at +1.
		wo := bipartite.Couple(w)
		cw := s.Cnt[w]
		st.Add(w, w != v, bitpack.Pack(r, dw, cw))
		st.Add(wo, false, bitpack.Pack(r, dw+1, cw))
		s.Visit(wo, int32(dw+1), cw)
		for _, wn := range gb.Out(wo) {
			switch {
			case s.Dist[wn] == -1:
				if ord.Rank(int(wn)) > r { // v ≺ wn
					s.Visit(int(wn), int32(dw+2), cw)
					s.Queue = append(s.Queue, wn)
				}
			case int(s.Dist[wn]) == dw+2:
				s.Cnt[wn] = bitpack.SatAdd(s.Cnt[wn], cw)
			}
		}
	}
}

// outSpecPass generates out-labels with hub v_in = v (rank r), walking the
// reverse direction. After the first dequeue the queue holds V_out
// vertices only; reaching the hub's own couple v_out yields the cycle
// entry in Lout(v_out) and prunes (§IV-C distinction 4). The prune test
// probes the scatter of Lin(v) against Lout(w).
func (sc *skipScheme) outSpecPass(v, r int, s *pll.Scratch, st *pll.Stage) {
	eng, gb, ord := sc.eng, sc.gb, sc.ord
	st.Reset(false, false)
	s.Scatter(&eng.In[v])
	defer s.Unscatter(&eng.In[v])
	defer s.Reset()

	// First dequeue (distinction 3): self label only, then expand v's
	// in-neighbors, which are V_out vertices.
	st.Add(v, false, bitpack.Pack(r, 0, 1))
	s.Visit(v, 0, 1)
	for _, u := range gb.In(v) {
		if ord.Rank(int(u)) > r {
			s.Visit(int(u), 1, 1)
			s.Queue = append(s.Queue, u)
		}
	}
	for head := 0; head < len(s.Queue); head++ {
		w := int(s.Queue[head])
		dw := int(s.Dist[w])
		if dq := s.Probe(&eng.Out[w], dw); dq < dw {
			continue
		}
		cw := s.Cnt[w]
		st.Add(w, true, bitpack.Pack(r, dw, cw))
		if w == bipartite.Couple(v) {
			// Distinction 4: the cycle entry. Label only Lout(v_out); the
			// couple is the hub itself, and no shortest path to the hub
			// can continue through it.
			continue
		}
		wi := bipartite.Couple(w)
		st.Add(wi, false, bitpack.Pack(r, dw+1, cw))
		s.Visit(wi, int32(dw+1), cw)
		for _, wn := range gb.In(wi) {
			switch {
			case s.Dist[wn] == -1:
				if ord.Rank(int(wn)) > r {
					s.Visit(int(wn), int32(dw+2), cw)
					s.Queue = append(s.Queue, wn)
				}
			case int(s.Dist[wn]) == dw+2:
				s.Cnt[wn] = bitpack.SatAdd(s.Cnt[wn], cw)
			}
		}
	}
}

// CycleCount answers SCCnt(v): the length of the shortest cycles through v
// in the original graph and their number, or (bfscount.NoCycle, 0) when v
// lies on no cycle. The evaluation is a single merge-join of Lout(v_out)
// and Lin(v_in) (§IV-D); the Gb distance d maps to cycle length (d+1)/2.
func (x *Index) CycleCount(v int) (length int, count uint64) {
	d, c := x.eng.CountPaths(bipartite.OutVertex(v), bipartite.InVertex(v))
	if d == pll.Unreachable {
		return bfscount.NoCycle, 0
	}
	return bipartite.CycleLength(d), c
}

// CycleCountBounded is CycleCount restricted to cycle lengths ≤ maxLen:
// it answers exactly like CycleCount when the shortest cycles through v
// are that short, and (bfscount.NoCycle, 0) otherwise, via the bounded
// join kernel (over-bound hub pairs never enter the count arithmetic). A
// cycle of length L is a Gb path of length 2L-1.
func (x *Index) CycleCountBounded(v, maxLen int) (length int, count uint64) {
	if maxLen < 2 { // no directed cycle is shorter than 2
		return bfscount.NoCycle, 0
	}
	// Any representable Gb distance is < bitpack.MaxDist (the unreachable
	// sentinel), so bounds at or past it are effectively unbounded — and
	// clamping keeps a huge client-supplied maxLen from overflowing the
	// 2L-1 mapping into a negative bound.
	if maxLen > (bitpack.MaxDist+1)/2 {
		maxLen = (bitpack.MaxDist + 1) / 2
	}
	d, c := x.eng.CountPathsBounded(bipartite.OutVertex(v), bipartite.InVertex(v), 2*maxLen-1)
	if d == pll.Unreachable {
		return bfscount.NoCycle, 0
	}
	return bipartite.CycleLength(d), c
}

// InsertEdge applies an edge insertion on the original graph and maintains
// the Gb labeling with INCCNT.
func (x *Index) InsertEdge(a, b int) (pll.UpdateStats, error) {
	if err := x.g.AddEdge(a, b); err != nil {
		return pll.UpdateStats{}, err
	}
	ga, gbv := bipartite.ConvertEdge(a, b)
	return x.eng.InsertEdge(ga, gbv)
}

// DeleteEdge applies an edge deletion on the original graph and repairs
// the Gb labeling.
func (x *Index) DeleteEdge(a, b int) (pll.UpdateStats, error) {
	if err := x.g.RemoveEdge(a, b); err != nil {
		return pll.UpdateStats{}, err
	}
	ga, gbv := bipartite.ConvertEdge(a, b)
	return x.eng.DeleteEdge(ga, gbv)
}

// Graph returns the original graph. Callers must not mutate it directly.
func (x *Index) Graph() *graph.Digraph { return x.g }

// Engine exposes the underlying Gb labeling (tests, serialization, stats).
func (x *Index) Engine() *pll.Index { return x.eng }

// EntryCount returns the total number of label entries over Gb (O(1)).
func (x *Index) EntryCount() int { return x.eng.EntryCount() }

// Bytes returns the unreduced label footprint (8 bytes per entry).
func (x *Index) Bytes() int { return x.eng.Bytes() }

// RefreezeLabels re-packs label lists thawed by updates back into the
// compressed arena, returning how many lists re-encoded (0 when labels
// are uncompressed or nothing thawed). The engine calls it on quiesce.
func (x *Index) RefreezeLabels() int { return x.eng.Refreeze() }

// CompressedBytes is the physical compressed label footprint, or 0 when
// labels live uncompressed.
func (x *Index) CompressedBytes() int { return x.eng.CompressedBytes() }
