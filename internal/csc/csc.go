// Package csc implements the paper's contribution: the Counting Shortest
// Cycle index (§IV). A directed graph G is reshaped by the bipartite
// conversion into Gb, a counting hub labeling is built over Gb with the
// couple-vertex-skipping construction (Algorithms 3-4), and SCCnt(v) is
// answered as SPCnt(v_out, v_in) in Gb — a single merge-join of two label
// lists, independent of v's degree. Edge insertions and deletions on G
// are maintained by the INCCNT and decremental algorithms of §V running
// on the Gb labeling.
package csc

import (
	"time"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/pll"
)

// Index is a CSC shortest-cycle-counting index.
type Index struct {
	g   *graph.Digraph // the original graph (kept live for updates)
	eng *pll.Index     // counting labels over the bipartite conversion
}

// Options configures Build.
type Options struct {
	// Strategy selects the dynamic maintenance strategy (§V-B).
	Strategy pll.Strategy
	// GenericConstruction builds the Gb labeling with the generic engine
	// (hub-filtered to V_in) instead of the couple-vertex-skipping
	// construction. Both produce identical labels — this knob exists for
	// the ablation benchmark and as a cross-check in tests.
	GenericConstruction bool
}

// Build converts g, lifts the ordering, and constructs the CSC labeling.
// The original graph g is retained (not copied) and subsequently owned by
// the index: callers must mutate it only through InsertEdge/DeleteEdge.
func Build(g *graph.Digraph, ord *order.Order, opts Options) (*Index, pll.BuildStats) {
	start := time.Now()
	gb := bipartite.Convert(g)
	lifted := bipartite.LiftOrder(ord)
	var eng *pll.Index
	if opts.GenericConstruction {
		eng, _ = pll.Build(gb, lifted, pll.Options{
			Strategy:  opts.Strategy,
			HubFilter: bipartite.IsIn,
		})
	} else {
		eng = buildSkipping(gb, lifted)
		eng.Strategy = opts.Strategy
		eng.HubFilter = bipartite.IsIn
	}
	idx := &Index{g: g, eng: eng}
	st := eng.Stats()
	st.Duration = time.Since(start)
	return idx, st
}

// buildSkipping is the couple-vertex-skipping construction (Algorithm 3):
// only V_in vertices run hub BFSes; each labeled vertex also labels its
// couple one step further, so the queue only ever holds one vertex per
// couple and half the join queries are skipped.
func buildSkipping(gb *graph.Digraph, ord *order.Order) *pll.Index {
	eng := pll.NewEmpty(gb, ord)
	n2 := gb.NumVertices()
	s := &skipScratch{
		d: make([]int32, n2),
		c: make([]uint64, n2),
	}
	for i := range s.d {
		s.d[i] = -1
	}
	for r := 0; r < n2; r++ {
		v := ord.VertexAt(r)
		if !bipartite.IsIn(v) {
			// V_out vertices only receive their self labels (Alg 3 l.6-8).
			self := bitpack.Pack(r, 0, 1)
			eng.In[v].Append(self)
			eng.Out[v].Append(self)
			continue
		}
		inLabelBFS(eng, gb, ord, v, r, s)
		outLabelBFS(eng, gb, ord, v, r, s)
	}
	return eng
}

// skipScratch carries the tentative distance/count arrays (D[·], C[·] of
// Algorithm 3) across hub BFSes; only touched cells are reset.
type skipScratch struct {
	d       []int32
	c       []uint64
	queue   []int32
	touched []int32
}

func (s *skipScratch) reset() {
	for _, t := range s.touched {
		s.d[t] = -1
		s.c[t] = 0
	}
	s.queue = s.queue[:0]
	s.touched = s.touched[:0]
}

func (s *skipScratch) visit(u int, d int32, c uint64) {
	s.d[u] = d
	s.c[u] = c
	s.touched = append(s.touched, int32(u))
}

// inLabelBFS generates in-labels with hub v_in = v (rank r). The queue
// holds V_in vertices only; each popped w also stamps its couple w_out at
// distance D[w]+1 (couple-vertex skipping).
func inLabelBFS(eng *pll.Index, gb *graph.Digraph, ord *order.Order, v, r int, s *skipScratch) {
	defer s.reset()
	s.visit(v, 0, 1)
	s.queue = append(s.queue, int32(v))
	for head := 0; head < len(s.queue); head++ {
		w := int(s.queue[head])
		dw := int(s.d[w])
		if w != v {
			if dq := label.JoinDist(&eng.Out[v], &eng.In[w]); dq < dw {
				continue // Alg 3 l.14-15: v not top-ranked on any path
			}
		}
		// INSERT LABEL (Algorithm 4): label w and its couple at +1.
		wo := bipartite.Couple(w)
		eng.In[w].Append(bitpack.Pack(r, dw, s.c[w]))
		eng.In[wo].Append(bitpack.Pack(r, dw+1, s.c[w]))
		s.visit(wo, int32(dw+1), s.c[w])
		for _, wn := range gb.Out(wo) {
			switch {
			case s.d[wn] == -1:
				if ord.Rank(int(wn)) > r { // v ≺ wn
					s.visit(int(wn), int32(dw+2), s.c[wo])
					s.queue = append(s.queue, wn)
				}
			case int(s.d[wn]) == dw+2:
				s.c[wn] = bitpack.SatAdd(s.c[wn], s.c[wo])
			}
		}
	}
}

// outLabelBFS generates out-labels with hub v_in = v (rank r), walking the
// reverse direction. After the first dequeue the queue holds V_out
// vertices only; reaching the hub's own couple v_out yields the cycle
// entry in Lout(v_out) and prunes (§IV-C distinction 4).
func outLabelBFS(eng *pll.Index, gb *graph.Digraph, ord *order.Order, v, r int, s *skipScratch) {
	defer s.reset()
	// First dequeue (distinction 3): self label only, then expand v's
	// in-neighbors, which are V_out vertices.
	eng.Out[v].Append(bitpack.Pack(r, 0, 1))
	s.visit(v, 0, 1)
	for _, u := range gb.In(v) {
		if ord.Rank(int(u)) > r {
			s.visit(int(u), 1, 1)
			s.queue = append(s.queue, u)
		}
	}
	for head := 0; head < len(s.queue); head++ {
		w := int(s.queue[head])
		dw := int(s.d[w])
		if dq := label.JoinDist(&eng.Out[w], &eng.In[v]); dq < dw {
			continue
		}
		eng.Out[w].Append(bitpack.Pack(r, dw, s.c[w]))
		if w == bipartite.Couple(v) {
			// Distinction 4: the cycle entry. Label only Lout(v_out); the
			// couple is the hub itself, and no shortest path to the hub
			// can continue through it.
			continue
		}
		wi := bipartite.Couple(w)
		eng.Out[wi].Append(bitpack.Pack(r, dw+1, s.c[w]))
		s.visit(wi, int32(dw+1), s.c[w])
		for _, wn := range gb.In(wi) {
			switch {
			case s.d[wn] == -1:
				if ord.Rank(int(wn)) > r {
					s.visit(int(wn), int32(dw+2), s.c[wi])
					s.queue = append(s.queue, wn)
				}
			case int(s.d[wn]) == dw+2:
				s.c[wn] = bitpack.SatAdd(s.c[wn], s.c[wi])
			}
		}
	}
}

// CycleCount answers SCCnt(v): the length of the shortest cycles through v
// in the original graph and their number, or (bfscount.NoCycle, 0) when v
// lies on no cycle. The evaluation is a single merge-join of Lout(v_out)
// and Lin(v_in) (§IV-D); the Gb distance d maps to cycle length (d+1)/2.
func (x *Index) CycleCount(v int) (length int, count uint64) {
	d, c := x.eng.CountPaths(bipartite.OutVertex(v), bipartite.InVertex(v))
	if d == pll.Unreachable {
		return bfscount.NoCycle, 0
	}
	return bipartite.CycleLength(d), c
}

// InsertEdge applies an edge insertion on the original graph and maintains
// the Gb labeling with INCCNT.
func (x *Index) InsertEdge(a, b int) (pll.UpdateStats, error) {
	if err := x.g.AddEdge(a, b); err != nil {
		return pll.UpdateStats{}, err
	}
	ga, gbv := bipartite.ConvertEdge(a, b)
	return x.eng.InsertEdge(ga, gbv)
}

// DeleteEdge applies an edge deletion on the original graph and repairs
// the Gb labeling.
func (x *Index) DeleteEdge(a, b int) (pll.UpdateStats, error) {
	if err := x.g.RemoveEdge(a, b); err != nil {
		return pll.UpdateStats{}, err
	}
	ga, gbv := bipartite.ConvertEdge(a, b)
	return x.eng.DeleteEdge(ga, gbv)
}

// Graph returns the original graph. Callers must not mutate it directly.
func (x *Index) Graph() *graph.Digraph { return x.g }

// Engine exposes the underlying Gb labeling (tests, serialization, stats).
func (x *Index) Engine() *pll.Index { return x.eng }

// EntryCount returns the total number of label entries over Gb.
func (x *Index) EntryCount() int { return x.eng.EntryCount() }

// Bytes returns the unreduced label footprint (8 bytes per entry).
func (x *Index) Bytes() int { return x.eng.Bytes() }
