package csc

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/pll"
)

// Out-of-band rebuilds: the sharded index's answer to the structural
// cliff. A structural batch on a giant SCC normally rebuilds the whole
// merged or split component inline — the caller (and, in the engine,
// every reader behind the grace period) stalls for the full build. The
// deferred path instead freezes the affected shards: they keep serving
// their pre-batch answers (each shard owns an induced-subgraph copy, so
// the frozen sub-index is self-contained), the batch commits its cheap
// intra-shard work immediately, and the expensive component builds run
// later — typically on a background goroutine — from induced-subgraph
// snapshots captured at plan time. CompleteRebuild swaps the finished
// shards in atomically under the caller's grace period.
//
// Consistency contract: a frozen shard's sub-index receives no ops
// after its freeze point, so its answers are exactly the answers as of
// the last batch before it froze — well-defined staleness, never a
// half-applied state. Ops landing on a frozen shard are dropped from
// streaming (the rebuild, built from the current graph, owns them), and
// any later batch that could move the pending region recomputes the
// whole deferral from the final partition — including un-freezing a
// shard whose subgraph churned back to its frozen state, which makes a
// transient structural flap (bridge down, bridge back up) cost zero
// rebuilds instead of two.

// Rebuild is one pending out-of-band rebuild: the frozen shard slots,
// the final components to build, and induced-subgraph snapshots to
// build them from. Run may execute on any goroutine — it touches only
// the snapshots. CompleteRebuild must run wherever index mutations are
// serialized (the engine's writer goroutine, under its grace period).
type Rebuild struct {
	gen    uint64
	stale  []int32            // frozen shard slots, ascending
	comps  [][]int32          // final components to build (sorted members)
	subs   []*graph.Digraph   // induced snapshots, aligned with comps
	region map[int32]struct{} // every vertex the deferral covers
	opts   Options
	built  []*shard // filled by Run

	// ords carries explicit per-component hub orders (aligned with comps;
	// nil or a nil entry means Run computes the order from strats). The
	// online re-ranker uses it to rebuild a shard under a hit-derived
	// order no strategy could recompute offline.
	ords   []*order.Order
	strats []order.Strategy // per-component strategy tags, aligned with comps

	// frozenAt is when the deferral's shards froze — inherited across
	// supersessions, so it anchors the full stale window a reader could
	// have observed, not just the latest recomputation's.
	frozenAt time.Time
}

// FrozenAt is when the deferral's shards began serving stale answers
// (the start of the freeze→swap window observability reports).
func (r *Rebuild) FrozenAt() time.Time { return r.frozenAt }

// Gen is the deferral generation this rebuild belongs to (diagnostics;
// superseding is decided by identity, not generation).
func (r *Rebuild) Gen() uint64 { return r.gen }

// Components is the number of deferred component builds.
func (r *Rebuild) Components() int { return len(r.comps) }

// Vertices is the total vertex count across deferred components.
func (r *Rebuild) Vertices() int {
	n := 0
	for _, c := range r.comps {
		n += len(c)
	}
	return n
}

// StaleSlots returns the frozen shard slots (ascending).
func (r *Rebuild) StaleSlots() []int {
	out := make([]int, len(r.stale))
	for i, s := range r.stale {
		out[i] = int(s)
	}
	return out
}

// Run builds every deferred component from its snapshot. It is safe on
// any goroutine — it reads only the rebuild's own snapshots — and
// idempotent. workers bounds the build parallelism (0 = all cores): one
// component keeps intra-build parallelism, several parallelize across
// components with sequential inner builds, mirroring BuildSharded.
func (r *Rebuild) Run(workers int) {
	if r.built != nil {
		return
	}
	built := make([]*shard, len(r.comps))
	if len(r.comps) > 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		inner := r.opts
		if len(r.comps) > 1 {
			inner.Workers = 1
		} else {
			inner.Workers = workers
		}
		build := func(i int) {
			opts := inner
			strat := opts.Order
			if i < len(r.strats) {
				strat = r.strats[i]
			}
			ord := (*order.Order)(nil)
			if i < len(r.ords) {
				ord = r.ords[i]
			}
			if ord == nil {
				opts.Order = strat
				ord = orderFor(r.subs[i], opts)
			}
			idx, _ := Build(r.subs[i], ord, inner)
			idx.eng.ReleaseScratch()
			built[i] = &shard{verts: r.comps[i], idx: idx, strat: strat}
		}
		if len(r.comps) == 1 || workers == 1 {
			for i := range r.comps {
				build(i)
			}
		} else {
			// comps are emitted largest-first, so a simple counter pool keeps
			// the tail short.
			if workers > len(r.comps) {
				workers = len(r.comps)
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(r.comps) {
							return
						}
						build(i)
					}
				}()
			}
			wg.Wait()
		}
	}
	r.built = built
}

// ApplyBatchDeferred is ApplyBatch with a deferral threshold: any final
// component of at least threshold vertices that would need a fresh build
// is deferred instead — its contributing shards freeze at their
// pre-batch answers — and returned as part of the pending Rebuild. The
// returned *Rebuild is the pending deferral AFTER this batch: nil when
// nothing is deferred, a new object whenever the pending set changed
// (superseding any previously returned one — decided by pointer
// identity in CompleteRebuild), or the unchanged previous object when
// the batch did not touch it. threshold <= 0 never defers new work but
// still maintains (and may dissolve or inline-complete) an existing
// deferral. The index must not be serialized while a deferral is
// pending — complete or supersede it first.
func (x *Sharded) ApplyBatchDeferred(batch []EdgeOp, workers, threshold int) (pll.UpdateStats, *Rebuild, error) {
	x.deferThreshold = threshold
	if threshold <= 0 && x.pendingReb == nil {
		st, err := x.ApplyBatch(batch, workers)
		return st, nil, err
	}
	return x.applyBatchDeferred(batch, workers, threshold)
}

func (x *Sharded) applyBatchDeferred(batch []EdgeOp, workers, threshold int) (pll.UpdateStats, *Rebuild, error) {
	var agg pll.UpdateStats
	if len(batch) == 0 {
		return agg, x.pendingReb, nil
	}
	if err := ValidateBatch(x.g, batch); err != nil {
		return agg, x.pendingReb, err
	}
	start := time.Now()
	if batch = coalesceBatch(x.g, batch); len(batch) == 0 {
		agg.Duration = time.Since(start)
		return agg, x.pendingReb, nil
	}

	planStart := time.Now()
	plan := x.planBatchDeferred(batch)
	for _, op := range batch {
		var err error
		if op.Kind == OpInsert {
			err = x.g.AddEdge(int(op.A), int(op.B))
		} else {
			err = x.g.RemoveEdge(int(op.A), int(op.B))
		}
		if err != nil {
			panic(err) // unreachable: ValidateBatch simulated this sequence
		}
	}

	tasks, pending := x.reconcileDeferred(plan, &agg, threshold)
	agg.PlanDuration = time.Since(planStart)
	buildStart := time.Now()
	x.runBatchTasks(tasks, workers)
	x.installTasks(tasks, &agg)
	agg.BuildDuration = time.Since(buildStart)
	agg.Duration = time.Since(start)
	return agg, pending, nil
}

// planBatchDeferred is planBatch aware of frozen shards: an op confined
// to a frozen shard is dropped from streaming — the pending rebuild,
// built from the final graph, owns its effect — and any op touching the
// pending region forces the partition branch so the deferral is
// recomputed against the new final edge set.
func (x *Sharded) planBatchDeferred(batch []EdgeOp) batchPlan {
	p := batchPlan{streams: make(map[int32][]EdgeOp), dirty: make(map[int32]bool)}
	var region map[int32]struct{}
	if x.pendingReb != nil {
		region = x.pendingReb.region
	}
	for _, op := range batch {
		if region != nil {
			_, inA := region[op.A]
			_, inB := region[op.B]
			if inA || inB {
				p.touchedPending = true
			}
		}
		s := x.shardOf[op.A]
		if s >= 0 && s == x.shardOf[op.B] {
			if x.stale[s] {
				continue // frozen: the rebuild owns this op's effect
			}
			if _, ok := p.streams[s]; !ok {
				p.order = append(p.order, s)
			}
			p.streams[s] = append(p.streams[s], op)
			if op.Kind == OpDelete {
				p.dirty[s] = true
			}
		} else {
			p.structural = append(p.structural, op)
		}
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	return p
}

// reconcileDeferred turns the plan into runnable tasks plus the new
// pending deferral. Structural ops, dirty streams, and anything touching
// the pending region route through one global partition pass (an
// insertion anywhere can merge an outside component into the region, so
// scoped per-edge checks cannot preserve a deferral soundly); pure
// intra-shard insertions stream and leave the deferral untouched.
func (x *Sharded) reconcileDeferred(plan batchPlan, agg *pll.UpdateStats, threshold int) ([]*batchTask, *Rebuild) {
	var tasks []*batchTask
	if len(plan.structural) == 0 && len(plan.dirty) == 0 && !plan.touchedPending {
		for _, s := range plan.order {
			tasks = append(tasks, &batchTask{sh: x.shards[s], ops: plan.streams[s]})
		}
		return tasks, x.pendingReb
	}

	final := partition.SCC(x.g)

	// Pass 1: shards that survive as-is. A live shard whose member set is
	// exactly its final component is intact. A frozen shard additionally
	// needs its current induced subgraph to equal the frozen one — then
	// the structural churn since its freeze cancelled out and it unfreezes
	// with zero work (its dropped ops are exactly that cancelled diff).
	intact := make(map[int32]bool)
	unfreeze := make(map[int32]bool)
	covered := make(map[int32]bool) // final comp id → served without a build
	for si, sh := range x.shards {
		if sh == nil {
			continue
		}
		s := int32(si)
		c := final.Comp[sh.verts[0]]
		if !sameVerts(final.Comps[c], sh.verts) {
			continue
		}
		if !x.stale[s] {
			intact[s] = true
			covered[c] = true
		} else if frozenMatches(sh, x.g) {
			unfreeze[s] = true
			covered[c] = true
		}
	}

	// Pass 2: components needing a build, and which of them defer. A
	// deferral is contagious within a shard — a shard either serves all
	// its members (frozen) or none (retired) — so freezing closes over
	// the shard↔component incidence until it reaches a fixed point.
	deferred := make(map[int32]bool)  // final comp id
	staleKept := make(map[int32]bool) // shard slot stays (or becomes) frozen
	var work []int32
	for ci, comp := range final.Comps {
		c := int32(ci)
		if len(comp) < 2 || covered[c] {
			continue
		}
		if threshold > 0 && len(comp) >= threshold {
			deferred[c] = true
			work = append(work, c)
		}
	}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range final.Comps[c] {
			s := x.shardOf[v]
			if s < 0 || staleKept[s] {
				continue
			}
			staleKept[s] = true
			for _, w := range x.shards[s].verts {
				c2 := final.Comp[w]
				if len(final.Comps[c2]) < 2 || covered[c2] || deferred[c2] {
					continue
				}
				deferred[c2] = true
				work = append(work, c2)
			}
		}
	}

	// Pass 3: dispositions. Frozen-kept shards keep their mapping (their
	// answers do not change at this commit, so they contribute nothing to
	// the dirty set); intact shards stream; everything else — including a
	// previously frozen shard all of whose components build inline, which
	// is the cheap catch-up path — retires now.
	if len(staleKept) > 0 && x.stale == nil {
		x.stale = make(map[int32]bool)
	}
	for si, sh := range x.shards {
		if sh == nil {
			continue
		}
		s := int32(si)
		switch {
		case staleKept[s]:
			x.stale[s] = true
		case intact[s]:
			if ops, ok := plan.streams[s]; ok {
				tasks = append(tasks, &batchTask{sh: sh, ops: ops})
			}
		case unfreeze[s]:
			delete(x.stale, s)
		default:
			c := final.Comp[sh.verts[0]]
			agg.EntriesRemoved += sh.idx.EntryCount()
			agg.TouchedOwners = append(agg.TouchedOwners, touchAll(sh.verts)...)
			delete(x.stale, s)
			x.retire(s)
			if len(final.Comps[c]) > len(sh.verts) {
				x.merges++
			} else {
				x.splits++
			}
		}
	}
	for ci, comp := range final.Comps {
		c := int32(ci)
		if len(comp) < 2 || covered[c] || deferred[c] {
			continue
		}
		tasks = append(tasks, &batchTask{build: comp})
	}

	// Pass 4: the new pending deferral (or none). Any previous one is
	// superseded wholesale — its snapshots describe an edge set this
	// batch may have changed.
	if x.pendingReb != nil {
		x.oobSuperseded++
	}
	if len(deferred) == 0 {
		x.pendingReb = nil
		return tasks, nil
	}
	x.gen++
	frozenAt := time.Now()
	if x.pendingReb != nil && !x.pendingReb.frozenAt.IsZero() {
		frozenAt = x.pendingReb.frozenAt
	}
	reb := &Rebuild{gen: x.gen, opts: x.opts, region: make(map[int32]struct{}), frozenAt: frozenAt}
	var ids []int32
	for c := range deferred {
		ids = append(ids, c)
	}
	// Largest component first: Run's worker pool drains heaviest-first.
	sort.Slice(ids, func(i, j int) bool {
		a, b := final.Comps[ids[i]], final.Comps[ids[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a[0] < b[0]
	})
	for _, c := range ids {
		comp := final.Comps[c]
		reb.comps = append(reb.comps, comp)
		reb.subs = append(reb.subs, partition.Induced(x.g, comp))
		for _, v := range comp {
			reb.region[v] = struct{}{}
		}
	}
	for s := range staleKept {
		reb.stale = append(reb.stale, s)
	}
	sort.Slice(reb.stale, func(i, j int) bool { return reb.stale[i] < reb.stale[j] })
	for _, s := range reb.stale {
		for _, v := range x.shards[s].verts {
			reb.region[v] = struct{}{}
		}
	}
	x.pendingReb = reb
	return tasks, reb
}

// CompleteRebuild swaps a finished rebuild in: frozen shards retire and
// the freshly built components install, atomically from the caller's
// point of view (the engine runs it under the grace period). A rebuild
// superseded by a later batch reports ok=false and swaps nothing — run
// the current PendingRebuild instead. The returned stats carry the swap's
// dirty set: every vertex of every frozen shard (its answer moves from
// frozen to current) and of every installed component.
func (x *Sharded) CompleteRebuild(r *Rebuild) (pll.UpdateStats, bool) {
	var st pll.UpdateStats
	if r == nil || r != x.pendingReb {
		x.oobSuperseded++
		return st, false
	}
	if r.built == nil {
		panic("csc: CompleteRebuild before Run")
	}
	start := time.Now()
	for _, s := range r.stale {
		sh := x.shards[s]
		st.EntriesRemoved += sh.idx.EntryCount()
		st.TouchedOwners = append(st.TouchedOwners, touchAll(sh.verts)...)
		delete(x.stale, s)
		x.retire(s)
	}
	for _, sh := range r.built {
		x.install(sh)
		st.EntriesAdded += sh.idx.EntryCount()
		st.Visited += len(sh.verts)
		st.TouchedOwners = append(st.TouchedOwners, touchAll(sh.verts)...)
		x.batchRebuilds++
	}
	x.oobCompleted += len(r.built)
	x.pendingReb = nil
	st.Duration = time.Since(start)
	return st, true
}

// frozenMatches reports whether a frozen shard's sub-index still encodes
// the current induced subgraph of its member set — true exactly when the
// structural churn since its freeze cancelled out.
func frozenMatches(sh *shard, g *graph.Digraph) bool {
	sub := sh.idx.Graph()
	m := 0
	for lv, v := range sh.verts {
		for _, w := range g.Out(int(v)) {
			lw := localIndex(sh.verts, w)
			if lw < 0 {
				continue // cross edge: not part of the induced subgraph
			}
			if !sub.HasEdge(lv, lw) {
				return false
			}
			m++
		}
	}
	return m == sub.NumEdges()
}

// localIndex finds v's position in a sorted member list, -1 when absent.
func localIndex(verts []int32, v int32) int {
	i := sort.Search(len(verts), func(i int) bool { return verts[i] >= v })
	if i < len(verts) && verts[i] == v {
		return i
	}
	return -1
}

// PendingRebuild returns the current deferral, nil when none. The caller
// owns scheduling: Run it (any goroutine), then CompleteRebuild it where
// mutations are serialized.
func (x *Sharded) PendingRebuild() *Rebuild { return x.pendingReb }

// StaleShards lists the frozen shard slots (ascending) — the shards
// serving stale answers until the pending rebuild completes. Empty means
// every answer is current.
func (x *Sharded) StaleShards() []int {
	if len(x.stale) == 0 {
		return nil
	}
	out := make([]int, 0, len(x.stale))
	for s := range x.stale {
		out = append(out, int(s))
	}
	sort.Ints(out)
	return out
}

// OOBRebuilds reports the deferred-rebuild counters: components completed
// out-of-band, and deferrals superseded before completing (including
// those dissolved by cancelling churn).
func (x *Sharded) OOBRebuilds() (completed, superseded int) {
	return x.oobCompleted, x.oobSuperseded
}
