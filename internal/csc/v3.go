package csc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/bipartite"
	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/pll"
)

// Sharded binary format v3 (little endian): the compressed-label form of
// v2. The structural layout is flat — no embedded self-delimiting blobs —
// so a single parse over one byte slice computes every section's offsets
// without copying, which is what lets the label bytes alias a read-only
// mmap of the file: a cold daemon validates the (small) graph and shard
// table up front and serves queries while label pages fault in on demand.
//
//	magic    [8]byte  "CSCIDX03"
//	n        uint32   global vertex count
//	m        uint32   global edge count
//	strategy uint8
//	edges    m × (uint32, uint32)
//	shards   uint32   number of non-trivial components
//	per shard, ordered by smallest member vertex:
//	  size    uint32  member count (≥ 2)
//	  verts   size × uint32, strictly increasing (position = local id)
//	  nb      uint32  Gb vertex count of the converted subgraph (= 2·size)
//	  mb      uint32  Gb edge count
//	  gbedges mb × (uint32, uint32)
//	  order   nb × uint32           vertexAt, highest rank first
//	  entries uint64                total label entries (cross-check)
//	  off     4·(2·nb+1) bytes      label.Frozen offset table, raw LE
//	  bloblen uint64
//	  blob    bloblen bytes         label.Frozen section blob
//
// Label lists are ordered In[0..nb) then Out[0..nb) — the order
// pll.Index.FreezeCompressed packs and AttachFrozen expects. Stream loads
// (csc.Read) run the strict full decode over every label section; mmap
// loads check only the structural invariants so label pages stay cold.
//
// Format v4 ("CSCIDX04") is v3 plus ordering-strategy provenance: one
// global order-strategy byte after the maintenance strategy byte, and
// one per-shard order-strategy byte immediately before each shard's
// order vector — so a loaded index knows which strategy produced each
// shard's hub order (the order itself always round-trips explicitly).
// The writer emits v3 whenever every strategy is degree, so indexes
// built with the defaults stay byte-identical to pre-v4 files; readers
// accept both.

const (
	v3Magic = "CSCIDX03"
	v4Magic = "CSCIDX04"
)

// needsV4 reports whether any ordering provenance would be lost in v3 —
// a non-degree build default, or any live shard carrying a non-degree
// order tag.
func (x *Sharded) needsV4() bool {
	if x.opts.Order != order.Degree {
		return true
	}
	for _, sh := range x.shards {
		if sh != nil && sh.strat != order.Degree {
			return true
		}
	}
	return false
}

// writeV34 serializes the sharded index with compressed label arenas, as
// v4 when ordering provenance needs recording and byte-stable v3
// otherwise. Shards whose updates thawed lists re-freeze first (verbatim
// section copies for the untouched lists), so the written arena is
// current.
func (x *Sharded) writeV34(w io.Writer) (int64, error) {
	v4 := x.needsV4()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }

	magic := v3Magic
	if v4 {
		magic = v4Magic
	}
	if _, err := bw.WriteString(magic); err != nil {
		return cw.n, err
	}
	n := x.g.NumVertices()
	if err := write(uint32(n)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(x.g.NumEdges())); err != nil {
		return cw.n, err
	}
	if err := write(uint8(x.opts.Strategy)); err != nil {
		return cw.n, err
	}
	if v4 {
		if err := write(uint8(x.opts.Order)); err != nil {
			return cw.n, err
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range x.g.Out(u) {
			if err := write(uint32(u)); err != nil {
				return cw.n, err
			}
			if err := write(uint32(v)); err != nil {
				return cw.n, err
			}
		}
	}
	live := x.liveShards()
	if err := write(uint32(len(live))); err != nil {
		return cw.n, err
	}
	for _, sh := range live {
		if err := write(uint32(len(sh.verts))); err != nil {
			return cw.n, err
		}
		for _, v := range sh.verts {
			if err := write(uint32(v)); err != nil {
				return cw.n, err
			}
		}
		eng := sh.idx.eng
		if !eng.Compressed() {
			eng.FreezeCompressed()
		}
		eng.Refreeze()
		gb := eng.G
		nb := gb.NumVertices()
		if err := write(uint32(nb)); err != nil {
			return cw.n, err
		}
		if err := write(uint32(gb.NumEdges())); err != nil {
			return cw.n, err
		}
		for u := 0; u < nb; u++ {
			for _, v := range gb.Out(u) {
				if err := write(uint32(u)); err != nil {
					return cw.n, err
				}
				if err := write(uint32(v)); err != nil {
					return cw.n, err
				}
			}
		}
		if v4 {
			if err := write(uint8(sh.strat)); err != nil {
				return cw.n, err
			}
		}
		for r := 0; r < nb; r++ {
			if err := write(uint32(eng.Ord.VertexAt(r))); err != nil {
				return cw.n, err
			}
		}
		f := eng.FrozenArena()
		off, blob := f.Raw()
		if err := write(uint64(f.Entries())); err != nil {
			return cw.n, err
		}
		if _, err := bw.Write(off); err != nil {
			return cw.n, err
		}
		if err := write(uint64(len(blob))); err != nil {
			return cw.n, err
		}
		if _, err := bw.Write(blob); err != nil {
			return cw.n, err
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// v3parser walks a v3 byte image with bounds-checked reads; take slices
// alias the image (zero-copy — the point of the flat layout).
type v3parser struct {
	data []byte
	pos  int
}

func (p *v3parser) take(n int) ([]byte, error) {
	if n < 0 || p.pos+n > len(p.data) || p.pos+n < p.pos {
		return nil, fmt.Errorf("%w: truncated at byte %d", pll.ErrBadFormat, p.pos)
	}
	b := p.data[p.pos : p.pos+n]
	p.pos += n
	return b, nil
}

func (p *v3parser) u32() (uint32, error) {
	b, err := p.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (p *v3parser) u64() (uint64, error) {
	b, err := p.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// parseV34 loads a complete v3 or v4 image (dispatching on the magic).
// With lazyLabels the label sections are only structurally checked
// (offset-table invariants), never decoded — the mmap cold-start path;
// stream loads pass false and get the full strict per-entry validation.
func parseV34(data []byte, lazyLabels bool) (*Sharded, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", pll.ErrBadFormat, fmt.Sprintf(format, args...))
	}
	p := &v3parser{data: data}
	magic, err := p.take(8)
	if err != nil {
		return nil, err
	}
	v4 := string(magic) == v4Magic
	if !v4 && string(magic) != v3Magic {
		return nil, bad("bad magic %q", magic)
	}
	n32, err := p.u32()
	if err != nil {
		return nil, err
	}
	m32, err := p.u32()
	if err != nil {
		return nil, err
	}
	sb, err := p.take(1)
	if err != nil {
		return nil, err
	}
	strat := pll.Strategy(sb[0])
	ostrat := order.Degree
	if v4 {
		ob, err := p.take(1)
		if err != nil {
			return nil, err
		}
		ostrat = order.Strategy(ob[0])
		if !ostrat.Valid() {
			return nil, bad("unknown order strategy %d", ob[0])
		}
	}
	n, m := int(n32), int(m32)
	if n > maxShardedVertices {
		return nil, bad("vertex count %d exceeds limit %d", n, maxShardedVertices)
	}
	if strat != pll.Redundancy && strat != pll.Minimality {
		return nil, bad("unknown strategy %d", sb[0])
	}
	if int64(m32) > int64(n)*int64(n-1) {
		return nil, bad("edge count %d impossible for %d vertices", m, n)
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, err := p.u32()
		if err != nil {
			return nil, bad("truncated edges")
		}
		v, err := p.u32()
		if err != nil {
			return nil, bad("truncated edges")
		}
		if err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, bad("edge (%d,%d): %v", u, v, err)
		}
	}
	shardCount, err := p.u32()
	if err != nil {
		return nil, bad("truncated shard table")
	}
	if int(shardCount) > n/2 {
		return nil, bad("%d shards impossible for %d vertices", shardCount, n)
	}

	x := &Sharded{
		g:       g,
		opts:    Options{Strategy: strat, CompressLabels: true, Order: ostrat},
		shardOf: make([]int32, n),
		localID: make([]int32, n),
	}
	for v := range x.shardOf {
		x.shardOf[v] = -1
		x.localID[v] = -1
	}
	for sid := 0; sid < int(shardCount); sid++ {
		size32, err := p.u32()
		if err != nil {
			return nil, bad("truncated shard %d header", sid)
		}
		size := int(size32)
		if size < 2 || size > n {
			return nil, bad("shard %d has %d vertices", sid, size)
		}
		verts := make([]int32, size)
		prev := int32(-1)
		for i := range verts {
			v, err := p.u32()
			if err != nil {
				return nil, bad("truncated shard %d members", sid)
			}
			if int(v) >= n || int32(v) <= prev {
				return nil, bad("shard %d member %d out of order or range", sid, v)
			}
			if x.shardOf[v] != -1 {
				return nil, bad("vertex %d claimed by two shards", v)
			}
			prev = int32(v)
			verts[i] = int32(v)
			x.shardOf[v] = int32(sid)
			x.localID[v] = int32(i)
		}
		nb32, err := p.u32()
		if err != nil {
			return nil, bad("truncated shard %d body", sid)
		}
		nb := int(nb32)
		if nb != 2*size {
			return nil, bad("shard %d Gb has %d vertices for %d members", sid, nb, size)
		}
		if nb > bitpack.MaxHub+1 {
			return nil, bad("shard %d Gb vertex count %d exceeds encoding limit", sid, nb)
		}
		mb32, err := p.u32()
		if err != nil {
			return nil, bad("truncated shard %d body", sid)
		}
		if int64(mb32) > int64(nb)*int64(nb-1) {
			return nil, bad("shard %d Gb edge count %d impossible", sid, mb32)
		}
		gb := graph.New(nb)
		for i := 0; i < int(mb32); i++ {
			u, err := p.u32()
			if err != nil {
				return nil, bad("truncated shard %d Gb edges", sid)
			}
			v, err := p.u32()
			if err != nil {
				return nil, bad("truncated shard %d Gb edges", sid)
			}
			if err := gb.AddEdge(int(u), int(v)); err != nil {
				return nil, bad("shard %d Gb edge (%d,%d): %v", sid, u, v, err)
			}
		}
		shardStrat := order.Degree
		if v4 {
			ob, err := p.take(1)
			if err != nil {
				return nil, bad("truncated shard %d order strategy", sid)
			}
			shardStrat = order.Strategy(ob[0])
			if !shardStrat.Valid() {
				return nil, bad("shard %d unknown order strategy %d", sid, ob[0])
			}
		}
		vertexAt := make([]int, nb)
		for r := range vertexAt {
			v, err := p.u32()
			if err != nil {
				return nil, bad("truncated shard %d order", sid)
			}
			if int(v) >= nb {
				return nil, bad("shard %d order vertex %d out of range", sid, v)
			}
			vertexAt[r] = int(v)
		}
		ord, err := order.FromVertexList(vertexAt)
		if err != nil {
			return nil, bad("shard %d order: %v", sid, err)
		}
		entries, err := p.u64()
		if err != nil {
			return nil, bad("truncated shard %d label header", sid)
		}
		off, err := p.take(4 * (2*nb + 1))
		if err != nil {
			return nil, bad("truncated shard %d offset table", sid)
		}
		blobLen, err := p.u64()
		if err != nil {
			return nil, bad("truncated shard %d label header", sid)
		}
		if blobLen > uint64(len(data)) {
			return nil, bad("shard %d blob of %d bytes overruns the file", sid, blobLen)
		}
		blob, err := p.take(int(blobLen))
		if err != nil {
			return nil, bad("truncated shard %d label blob", sid)
		}
		f, err := label.NewFrozen(off, blob)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", pll.ErrBadFormat, sid, err)
		}
		if uint64(f.Entries()) != entries {
			return nil, bad("shard %d arena holds %d entries, header says %d", sid, f.Entries(), entries)
		}
		if !lazyLabels {
			if err := f.Validate(nb); err != nil {
				return nil, fmt.Errorf("%w: shard %d: %v", pll.ErrBadFormat, sid, err)
			}
		}
		eng := pll.NewEmpty(gb, ord)
		eng.Strategy = strat
		eng.HubFilter = bipartite.IsIn
		if err := eng.AttachFrozen(f); err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", pll.ErrBadFormat, sid, err)
		}
		sub, err := originalFromGb(gb)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sid, err)
		}
		if sub.NumVertices() != size {
			return nil, bad("shard %d labeling covers %d vertices, table says %d", sid, sub.NumVertices(), size)
		}
		if !graph.Equal(sub, partition.Induced(g, verts)) {
			return nil, bad("shard %d subgraph does not match the global graph", sid)
		}
		x.shards = append(x.shards, &shard{verts: verts, idx: &Index{g: sub, eng: eng}, strat: shardStrat})
	}
	if p.pos != len(data) {
		return nil, bad("%d trailing bytes", len(data)-p.pos)
	}
	// The shard table must be exactly the graph's non-trivial SCCs, the
	// same invariant readSharded enforces.
	comps := partition.SCC(g).NonTrivial()
	live := x.liveShards()
	if len(comps) != len(live) {
		return nil, bad("shard table has %d components, graph has %d", len(live), len(comps))
	}
	for i, comp := range comps {
		sv := live[i].verts
		if len(comp) != len(sv) {
			return nil, bad("shard %d size mismatch with SCC decomposition", i)
		}
		for j := range comp {
			if comp[j] != sv[j] {
				return nil, bad("shard %d member mismatch with SCC decomposition", i)
			}
		}
	}
	return x, nil
}

// readV34 loads a v3/v4 stream: the image is read fully and labels are
// strictly validated (the trusted path — use ReadFile with mmap for the
// lazy form).
func readV34(br *bufio.Reader) (*Sharded, error) {
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pll.ErrBadFormat, err)
	}
	return parseV34(data, false)
}

// ReadFile loads an index file. With useMmap and a v3/v4 file, the label
// sections alias a read-only mapping of the file and are only
// structurally checked: queries serve immediately and label pages fault
// in on first touch. The mapping lives for the process lifetime (it backs
// live label sections) and is deliberately never unmapped. Other formats
// and platforms without mmap support fall back to a normal strict read.
func ReadFile(path string, useMmap bool) (Counter, error) {
	if useMmap {
		if data, err := mmapFile(path); err == nil {
			if len(data) >= 8 && (string(data[:8]) == v3Magic || string(data[:8]) == v4Magic) {
				return parseV34(data, true)
			}
			// Not a flat image: every byte decodes on load anyway, so parse
			// the mapping as a plain stream.
			return Read(bytes.NewReader(data))
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
