package csc

import (
	"testing"

	"repro/internal/bfscount"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// queryAll drives every vertex through the hit-counting join path.
func queryAll(x *Sharded) {
	for v := 0; v < len(x.shardOf); v++ {
		x.CycleCount(v)
	}
}

func TestShardDriftAndHitCounters(t *testing.T) {
	g := testgraphs.GiantSCC(30, 90, 9)
	x, _ := BuildSharded(g.Clone(), Options{Workers: 1})

	// Before counters: no drift signal.
	if _, _, ok := x.ShardDrift(0); ok {
		t.Fatal("drift reported before counters enabled")
	}
	x.EnableHitCounters()
	if d, hits, ok := x.ShardDrift(0); !ok || hits != 0 || d != 0 {
		t.Fatalf("fresh counters: drift=%v hits=%d ok=%v", d, hits, ok)
	}
	queryAll(x)
	d, hits, ok := x.ShardDrift(0)
	if !ok || hits == 0 {
		t.Fatalf("no hits recorded: drift=%v hits=%d ok=%v", d, hits, ok)
	}
	// A chorded giant SCC answers from many distinct hubs, so the
	// hit-weighted mean rank sits strictly inside (0,1).
	if d <= 0 || d >= 1 {
		t.Fatalf("drift %v outside (0,1)", d)
	}
	// Dead/out-of-range slots answer not-ok.
	if _, _, ok := x.ShardDrift(-1); ok {
		t.Fatal("negative slot ok")
	}
	if _, _, ok := x.ShardDrift(99); ok {
		t.Fatal("out-of-range slot ok")
	}
}

// ReorderShardByHits must rebuild the shard under the hit-weighted order
// through the out-of-band path with answers exactly preserved — the
// graph never changed — and tag the swapped shard's provenance as Hits.
func TestReorderShardByHitsPreservesAnswers(t *testing.T) {
	g := testgraphs.GiantSCC(30, 90, 9)
	x, _ := BuildSharded(g.Clone(), Options{Workers: 1})
	oracleL, oracleC := bfscount.AllCycleCounts(g)

	if _, err := x.ReorderShardByHits(0); err == nil {
		t.Fatal("re-rank accepted without counters")
	}
	x.EnableHitCounters()
	if _, err := x.ReorderShardByHits(0); err == nil {
		t.Fatal("re-rank accepted with zero hits")
	}
	queryAll(x)

	reb, err := x.ReorderShardByHits(0)
	if err != nil {
		t.Fatal(err)
	}
	// Frozen window: the shard still serves exact answers (nothing about
	// the graph changed), and a second re-rank is refused while the first
	// is pending.
	for v := range oracleL {
		if l, c := x.CycleCount(v); l != oracleL[v] || c != oracleC[v] {
			t.Fatalf("frozen vertex %d: (%d,%d), oracle (%d,%d)", v, l, c, oracleL[v], oracleC[v])
		}
	}
	if _, err := x.ReorderShardByHits(0); err == nil {
		t.Fatal("second re-rank accepted while one is pending")
	}
	if len(x.StaleShards()) != 1 {
		t.Fatalf("StaleShards = %v, want one frozen slot", x.StaleShards())
	}

	reb.Run(1)
	if _, installed := x.CompleteRebuild(reb); !installed {
		t.Fatal("re-rank rebuild not installed")
	}
	for v := range oracleL {
		if l, c := x.CycleCount(v); l != oracleL[v] || c != oracleC[v] {
			t.Fatalf("post-swap vertex %d: (%d,%d), oracle (%d,%d)", v, l, c, oracleL[v], oracleC[v])
		}
	}
	st := x.ShardStats()
	if len(st) != 1 || st[0].Order != order.Hits {
		t.Fatalf("swapped shard stats %+v, want Order=hits", st)
	}
	if len(x.StaleShards()) != 0 {
		t.Fatalf("StaleShards = %v after swap", x.StaleShards())
	}
	// The fresh shard starts with counters off; re-enabling works.
	if _, _, ok := x.ShardDrift(0); ok {
		t.Fatal("swapped-in shard kept old counters")
	}
	x.EnableHitCounters()
	queryAll(x)
	if _, hits, ok := x.ShardDrift(0); !ok || hits == 0 {
		t.Fatal("re-enabled counters record nothing")
	}
}

func TestReorderShardValidation(t *testing.T) {
	g := testgraphs.GiantSCC(20, 60, 9)
	x, _ := BuildSharded(g, Options{Workers: 1})
	sub := x.liveShards()[0].idx.Graph()

	if _, err := x.ReorderShard(5, order.ByDegree(sub), order.Degree); err == nil {
		t.Fatal("bad slot accepted")
	}
	short, _ := order.FromVertexList([]int{1, 0})
	if _, err := x.ReorderShard(0, short, order.Degree); err == nil {
		t.Fatal("wrong-length order accepted")
	}
	reb, err := x.ReorderShard(0, order.ByRandom(sub.NumVertices(), 3), order.Random)
	if err != nil {
		t.Fatal(err)
	}
	reb.Run(1)
	if _, installed := x.CompleteRebuild(reb); !installed {
		t.Fatal("explicit-order rebuild not installed")
	}
	if st := x.ShardStats(); st[0].Order != order.Random {
		t.Fatalf("shard order tag %s, want random", st[0].Order)
	}
	// The random order changed label shape, never answers.
	for v := 0; v < g.NumVertices(); v++ {
		wl, wc := bfscount.CycleCount(x.Graph(), v)
		if l, c := x.CycleCount(v); l != wl || c != wc {
			t.Fatalf("vertex %d: (%d,%d), oracle (%d,%d)", v, l, c, wl, wc)
		}
	}
}

// A structural batch arriving while a re-rank deferral is pending must
// win: the re-rank dissolves into (or is superseded by) the structural
// rebuild, and the final index reflects the batch.
func TestReRankSupersededByStructuralBatch(t *testing.T) {
	g := testgraphs.GiantSCC(24, 72, 9)
	x, _ := BuildSharded(g.Clone(), Options{Workers: 1})
	x.EnableHitCounters()
	queryAll(x)

	if _, err := x.ReorderShardByHits(0); err != nil {
		t.Fatal(err)
	}
	// Never run the re-rank: a structural edge toggle on the frozen shard
	// lands first, through the deferral-aware path.
	var ops []EdgeOp
	u := 0
	for v := 2; v < g.NumVertices(); v++ {
		if !g.HasEdge(u, v) {
			ops = append(ops, Ins(u, v))
			break
		}
	}
	if len(ops) == 0 {
		t.Fatal("no insertable edge found")
	}
	_, pending, err := x.ApplyBatchDeferred(ops, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pending != nil {
		pending.Run(1)
		if _, installed := x.CompleteRebuild(pending); !installed {
			t.Fatal("superseding rebuild not installed")
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		wl, wc := bfscount.CycleCount(x.Graph(), v)
		if l, c := x.CycleCount(v); l != wl || c != wc {
			t.Fatalf("vertex %d after supersession: (%d,%d), oracle (%d,%d)", v, l, c, wl, wc)
		}
	}
	if len(x.StaleShards()) != 0 {
		t.Fatalf("StaleShards = %v after structural batch resolved", x.StaleShards())
	}
}
