package csc

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pll"
	"repro/internal/testgraphs"
)

// dirtyStream drives a random update stream (per-op and batched, with
// merge/split-inducing deletes and reinserts) through one Counter and
// asserts dirty-set exactness after every applied unit: any vertex whose
// SCCnt answer changed must be in DirtyVertices of the stats that unit
// returned. The pre/post answers come from the index itself — the
// conformance suites already pin those against the BFS oracle — so this
// test isolates the dirty-tracking claim.
func dirtyStream(t *testing.T, name string, x Counter, seed int64, batched bool) {
	t.Helper()
	g := x.Graph()
	n := g.NumVertices()
	r := rand.New(rand.NewSource(seed))

	before, cBefore := x.CycleCountAll(1)

	check := func(step int, dirty []int) {
		after, cAfter := x.CycleCountAll(1)
		inDirty := make(map[int]bool, len(dirty))
		for _, v := range dirty {
			inDirty[v] = true
		}
		for v := 0; v < n; v++ {
			if (before[v] != after[v] || cBefore[v] != cAfter[v]) && !inDirty[v] {
				t.Fatalf("%s step %d: vertex %d changed (%d,%d)->(%d,%d) but is not in the dirty set %v",
					name, step, v, before[v], cBefore[v], after[v], cAfter[v], dirty)
			}
		}
		before, cBefore = after, cAfter
	}

	randOp := func() EdgeOp {
		for {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				return Del(u, v)
			}
			return Ins(u, v)
		}
	}

	// Steps scale down with graph size: large corpus members pay a
	// component rebuild per merging insert, and the point — covering
	// every update path — is made in a few steps there.
	steps := 30
	if n > 100 {
		steps = 12
	}

	if batched {
		// Tiny fixtures cannot fill a batch with distinct pairs; clamp
		// the batch size to half the ordered-pair budget.
		target := 6
		if pairs := n * (n - 1); pairs < 2*target {
			target = pairs / 2
		}
		if target < 1 {
			return
		}
		for step := 0; step < (steps+1)/2; step++ {
			var batch []EdgeOp
			pending := make(map[[2]int32]bool)
			for len(batch) < target {
				op := randOp()
				k := [2]int32{op.A, op.B}
				if pending[k] {
					continue // keep the sequence trivially valid
				}
				pending[k] = true
				batch = append(batch, op)
			}
			st, err := x.ApplyBatch(batch, 2)
			if err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
			check(step, DirtyVertices(st))
		}
		return
	}
	for step := 0; step < steps; step++ {
		op := randOp()
		var (
			st  pll.UpdateStats
			err error
		)
		if op.Kind == OpInsert {
			st, err = x.InsertEdge(int(op.A), int(op.B))
		} else {
			st, err = x.DeleteEdge(int(op.A), int(op.B))
		}
		if err != nil {
			t.Fatalf("%s step %d: %v", name, step, err)
		}
		check(step, DirtyVertices(st))
	}
}

// TestDirtySetExactness runs the dirty-tracking oracle over the whole
// corpus, on both Counter forms, per-op and batched. Rings losing an
// edge split their component and regaining it merges it back, so the
// stream exercises scoped rebuilds, INCCNT, and decremental repair.
func TestDirtySetExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not -short")
	}
	for _, ng := range testgraphs.Corpus() {
		ng := ng
		t.Run(ng.Name, func(t *testing.T) {
			t.Parallel()
			mono, _ := Build(ng.G.Clone(), order.ByDegree(ng.G), Options{Workers: 1})
			dirtyStream(t, "mono", mono, 101, false)
			sh, _ := BuildSharded(ng.G.Clone(), Options{Workers: 1})
			dirtyStream(t, "sharded", sh, 102, false)
			shb, _ := BuildSharded(ng.G.Clone(), Options{Workers: 1})
			dirtyStream(t, "sharded-batch", shb, 103, true)
		})
	}
}

// DirtyVertices must dedupe, sort, and map couple ids onto one original
// vertex.
func TestDirtyVerticesShape(t *testing.T) {
	g := graph.New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	x, _ := Build(g, order.ByDegree(g), Options{Workers: 1})
	st, err := x.InsertEdge(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirty := DirtyVertices(st)
	if len(dirty) == 0 {
		t.Fatal("closing a cycle produced an empty dirty set")
	}
	for i, v := range dirty {
		if v < 0 || v >= 3 {
			t.Fatalf("dirty vertex %d out of original-graph range", v)
		}
		if i > 0 && dirty[i-1] >= v {
			t.Fatalf("dirty set not strictly sorted: %v", dirty)
		}
	}
	if DirtyVertices(pll.UpdateStats{}) != nil {
		t.Fatal("empty stats must map to a nil dirty set")
	}
}
