package csc

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pll"
)

// OpKind discriminates batch edge operations.
type OpKind uint8

const (
	// OpInsert inserts a directed edge.
	OpInsert OpKind = 1
	// OpDelete deletes a directed edge.
	OpDelete OpKind = 2
)

// EdgeOp is one edge operation of an update batch.
type EdgeOp struct {
	Kind OpKind
	A, B int32
}

// Ins and Del are EdgeOp constructors (tests and batch builders).
func Ins(a, b int) EdgeOp { return EdgeOp{Kind: OpInsert, A: int32(a), B: int32(b)} }
func Del(a, b int) EdgeOp { return EdgeOp{Kind: OpDelete, A: int32(a), B: int32(b)} }

var errUnknownOp = errors.New("csc: unknown batch op kind")

// ValidateBatch checks that batch is a valid op sequence against g by
// simulating edge presence: every insert must add an absent edge and
// every delete must remove a present one, net of earlier ops in the same
// batch. ApplyBatch calls it before touching anything, so a rejected
// batch leaves the index untouched.
func ValidateBatch(g *graph.Digraph, batch []EdgeOp) error {
	n := g.NumVertices()
	present := make(map[[2]int32]bool, len(batch))
	for i, op := range batch {
		a, b := int(op.A), int(op.B)
		if op.Kind != OpInsert && op.Kind != OpDelete {
			return fmt.Errorf("%w (op %d)", errUnknownOp, i)
		}
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("op %d (%d,%d): %w", i, a, b, graph.ErrVertexRange)
		}
		if a == b {
			return fmt.Errorf("op %d (%d,%d): %w", i, a, b, graph.ErrSelfLoop)
		}
		k := [2]int32{op.A, op.B}
		cur, seen := present[k]
		if !seen {
			cur = g.HasEdge(a, b)
		}
		if op.Kind == OpInsert {
			if cur {
				return fmt.Errorf("op %d (%d,%d): %w", i, a, b, graph.ErrDuplicateEdge)
			}
			present[k] = true
		} else {
			if !cur {
				return fmt.Errorf("op %d (%d,%d): %w", i, a, b, graph.ErrMissingEdge)
			}
			present[k] = false
		}
	}
	return nil
}

// coalesceBatch reduces a validated batch to its net effect against the
// live graph: an insert+delete pair of the same edge cancels (whichever
// order it arrived in), leaving one op per edge whose final state differs
// from the live graph, in first-touch order. This mirrors the engine's
// mailbox coalescing, so direct ApplyBatch callers get the same
// semantics; query answers depend only on the final edge set, so the net
// batch is observationally equivalent to the full sequence.
func coalesceBatch(g *graph.Digraph, batch []EdgeOp) []EdgeOp {
	base := make(map[[2]int32]bool, len(batch))
	eff := make(map[[2]int32]bool, len(batch))
	var touch [][2]int32
	for _, op := range batch {
		k := [2]int32{op.A, op.B}
		if _, seen := eff[k]; !seen {
			base[k] = g.HasEdge(int(op.A), int(op.B))
			touch = append(touch, k)
		}
		// The batch is validated, so every op strictly toggles its edge.
		eff[k] = op.Kind == OpInsert
	}
	out := make([]EdgeOp, 0, len(touch))
	for _, k := range touch {
		if eff[k] == base[k] {
			continue
		}
		kind := OpDelete
		if eff[k] {
			kind = OpInsert
		}
		out = append(out, EdgeOp{Kind: kind, A: k[0], B: k[1]})
	}
	return out
}

// accumulate folds one op's stats into a batch aggregate.
func accumulate(agg *pll.UpdateStats, st pll.UpdateStats) {
	agg.AffectedHubs += st.AffectedHubs
	agg.Visited += st.Visited
	agg.EntriesAdded += st.EntriesAdded
	agg.EntriesChanged += st.EntriesChanged
	agg.EntriesRemoved += st.EntriesRemoved
	agg.TouchedOwners = append(agg.TouchedOwners, st.TouchedOwners...)
}

// ApplyBatch applies the batch's net effect through the monolithic
// index's own INCCNT/decremental maintenance, one op at a time — the
// sequential fallback of the Counter batch contract. workers is ignored.
func (x *Index) ApplyBatch(batch []EdgeOp, workers int) (pll.UpdateStats, error) {
	_ = workers
	var agg pll.UpdateStats
	if len(batch) == 0 {
		return agg, nil
	}
	if err := ValidateBatch(x.g, batch); err != nil {
		return agg, err
	}
	start := time.Now()
	batch = coalesceBatch(x.g, batch)
	for _, op := range batch {
		var st pll.UpdateStats
		var err error
		if op.Kind == OpInsert {
			st, err = x.InsertEdge(int(op.A), int(op.B))
		} else {
			st, err = x.DeleteEdge(int(op.A), int(op.B))
		}
		if err != nil {
			// Unreachable: ValidateBatch simulated the exact sequence.
			return agg, err
		}
		accumulate(&agg, st)
	}
	agg.Duration = time.Since(start)
	return agg, nil
}

// batchPlan classifies a batch against the pre-batch shard table.
type batchPlan struct {
	order      []int32            // stream shard slots, ascending
	streams    map[int32][]EdgeOp // shard slot → its intra-shard ops, in batch order
	dirty      map[int32]bool     // stream shards holding at least one delete
	structural []EdgeOp           // ops crossing shards or touching trivial vertices
	// touchedPending marks an op landing inside the pending deferral's
	// region (set by planBatchDeferred only): the deferral must be
	// recomputed against the batch's final edge set.
	touchedPending bool
}

// planBatch groups the batch's ops by shard. An op whose endpoints sit in
// the same live shard joins that shard's ordered stream; everything else
// — cross-shard edges, edges touching trivial vertices — is structural
// and can only matter through the partition reconciliation.
func (x *Sharded) planBatch(batch []EdgeOp) batchPlan {
	p := batchPlan{streams: make(map[int32][]EdgeOp), dirty: make(map[int32]bool)}
	for _, op := range batch {
		s := x.shardOf[op.A]
		if s >= 0 && s == x.shardOf[op.B] {
			if _, ok := p.streams[s]; !ok {
				p.order = append(p.order, s)
			}
			p.streams[s] = append(p.streams[s], op)
			if op.Kind == OpDelete {
				p.dirty[s] = true
			}
		} else {
			p.structural = append(p.structural, op)
		}
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	return p
}

// batchTask is one unit of per-shard batch work: either an ordered update
// stream against an intact shard, or a fresh build of one final
// component. Tasks touch disjoint shards, so a worker pool runs them
// concurrently.
type batchTask struct {
	sh    *shard   // stream target; also receives the built shard
	ops   []EdgeOp // stream ops in batch order (global vertex ids)
	build []int32  // when non-nil, build a fresh shard over these vertices
	st    pll.UpdateStats
	err   error
}

// ApplyBatch applies the batch through the sharded index's batch planner:
// ops are grouped by shard, merge/split effects are computed once for the
// whole batch (the final partition is a pure function of the final edge
// set), and the resulting per-shard work — ordered intra-shard update
// streams on intact shards, at-most-one fresh build per merged or split
// component — runs concurrently on workers goroutines (0 = all cores).
// Ops confined to trivial components that close no cycle touch no labels
// at all.
func (x *Sharded) ApplyBatch(batch []EdgeOp, workers int) (pll.UpdateStats, error) {
	if x.pendingReb != nil {
		// A deferral is pending: the plain planner would stream into frozen
		// shards. Route through the deferral-aware path, which keeps (or
		// recomputes) the pending rebuild.
		st, _, err := x.applyBatchDeferred(batch, workers, x.deferThreshold)
		return st, err
	}
	var agg pll.UpdateStats
	if len(batch) == 0 {
		return agg, nil
	}
	if err := ValidateBatch(x.g, batch); err != nil {
		return agg, err
	}
	start := time.Now()
	// Net-coalesce first: churn that cancels inside the batch window — an
	// edge flapping down and back up — costs nothing at all, where
	// per-edge application would pay a split rebuild and a merge rebuild.
	if batch = coalesceBatch(x.g, batch); len(batch) == 0 {
		agg.Duration = time.Since(start)
		return agg, nil
	}

	// Classify against the pre-batch table, then move the global graph to
	// its final state up front: every partition question below is asked of
	// the final edge set, once, instead of once per edge.
	planStart := time.Now()
	plan := x.planBatch(batch)
	for _, op := range batch {
		var err error
		if op.Kind == OpInsert {
			err = x.g.AddEdge(int(op.A), int(op.B))
		} else {
			err = x.g.RemoveEdge(int(op.A), int(op.B))
		}
		if err != nil {
			panic(err) // unreachable: ValidateBatch simulated this sequence
		}
	}

	tasks := x.reconcile(plan, &agg)
	agg.PlanDuration = time.Since(planStart)
	buildStart := time.Now()
	x.runBatchTasks(tasks, workers)
	x.installTasks(tasks, &agg)
	agg.BuildDuration = time.Since(buildStart)
	agg.Duration = time.Since(start)
	return agg, nil
}

// installTasks installs fresh shards and folds per-task stats; a stream
// that failed (unreachable short of index corruption) self-heals by
// rebuilding its shard's final components from the global graph.
func (x *Sharded) installTasks(tasks []*batchTask, agg *pll.UpdateStats) {
	for _, t := range tasks {
		if t.err != nil {
			agg.EntriesRemoved += t.sh.idx.EntryCount()
			verts := t.sh.verts
			x.retire(x.shardOf[verts[0]])
			for _, comp := range partition.SCCWithin(x.g, verts) {
				if len(comp) < 2 {
					continue
				}
				sh := buildShard(x.g, comp, x.opts)
				sh.idx.eng.ReleaseScratch()
				x.install(sh)
				x.batchRebuilds++
				agg.EntriesAdded += sh.idx.EntryCount()
			}
			agg.TouchedOwners = append(agg.TouchedOwners, touchAll(verts)...)
			continue
		}
		if t.build != nil {
			x.install(t.sh)
			x.batchRebuilds++
		}
		accumulate(agg, t.st)
	}
}

// batchGlobalSCCInserts bounds the per-edge scoped merge detection: up to
// this many surviving structural inserts are checked individually (an
// early-exit reachability probe each, plus one ComponentOf per actual
// merge); past it, one global Tarjan pass answers every merge and split
// question of the batch at once — cheaper than per-edge reach sets as
// soon as a handful of edges would each walk the graph.
const batchGlobalSCCInserts = 4

// reconcile turns the plan into runnable tasks, retiring every shard the
// batch's final partition invalidates. Only two kinds of ops can move the
// partition: intra-shard deletions can split their own shard (components
// shrink only by losing an internal edge — mutual-reachability paths
// never leave an SCC), and structural inserts still present in the final
// graph can merge components (a grown component must run a new cycle
// through a surviving new edge; intra-shard inserts change no
// reachability at all). Everything else streams through incremental
// maintenance or short-circuits label-free.
func (x *Sharded) reconcile(plan batchPlan, agg *pll.UpdateStats) []*batchTask {
	var tasks []*batchTask
	stream := func(s int32) {
		tasks = append(tasks, &batchTask{sh: x.shards[s], ops: plan.streams[s]})
	}
	retire := func(s int32, grew bool) {
		agg.EntriesRemoved += x.shards[s].idx.EntryCount()
		agg.TouchedOwners = append(agg.TouchedOwners, touchAll(x.shards[s].verts)...)
		x.retire(s)
		if grew {
			x.merges++
		} else {
			x.splits++
		}
	}

	var inserts []EdgeOp
	for _, op := range plan.structural {
		if op.Kind == OpInsert && x.g.HasEdge(int(op.A), int(op.B)) {
			inserts = append(inserts, op)
		}
	}

	if len(inserts) > batchGlobalSCCInserts {
		// Ask the final graph for its whole partition — once per batch.
		final := partition.SCC(x.g)
		covered := make(map[int32]bool) // final comp id → served by an intact shard
		intact := make(map[int32]bool)  // shard slot → survived unchanged
		for si, sh := range x.shards {
			if sh == nil {
				continue
			}
			c := final.Comp[sh.verts[0]]
			if sameVerts(final.Comps[c], sh.verts) {
				covered[c] = true
				intact[int32(si)] = true
				continue
			}
			retire(int32(si), len(final.Comps[c]) > len(sh.verts))
		}
		for _, s := range plan.order {
			if intact[s] {
				stream(s) // dropped streams are covered by rebuilds below
			}
		}
		for ci, comp := range final.Comps {
			if len(comp) < 2 || covered[int32(ci)] {
				continue
			}
			tasks = append(tasks, &batchTask{build: comp})
		}
		return tasks
	}

	// Scoped reconciliation. Merges first: a surviving structural insert
	// (a,b) merges components exactly when b reaches a in the final graph,
	// and the merged component is then a's final SCC. Distinct merged
	// components are disjoint, so an endpoint already absorbed needs no
	// second look (an edge between two different final components lies on
	// no cycle and contributes nothing).
	var merged [][]int32
	inComp := make(map[int32]bool)
	for _, op := range inserts {
		if inComp[op.A] || inComp[op.B] {
			continue
		}
		if !partition.Reachable(x.g, int(op.B), int(op.A)) {
			continue
		}
		comp := partition.ComponentOf(x.g, int(op.A))
		for _, v := range comp {
			inComp[v] = true
		}
		merged = append(merged, comp)
	}
	for _, comp := range merged {
		for _, v := range comp {
			s := x.shardOf[v]
			if s < 0 {
				continue // trivial vertex, or its shard already retired
			}
			sh := x.shards[s]
			retire(s, true)
			// Members the merge did not absorb (the shard was split by a
			// deletion and only part of it merged away) re-partition
			// locally: their final components cannot extend beyond the old
			// member set, or a surviving structural insert would have
			// seeded them above.
			var leftover []int32
			for _, w := range sh.verts {
				if !inComp[w] {
					leftover = append(leftover, w)
				}
			}
			for _, sub := range partition.SCCWithin(x.g, leftover) {
				if len(sub) >= 2 {
					tasks = append(tasks, &batchTask{build: sub})
				}
			}
		}
		tasks = append(tasks, &batchTask{build: comp})
	}

	// Splits next: every dirty shard a merge did not absorb re-checks its
	// own partition locally — no structural edge touched it, so its final
	// components are subsets of its member set.
	for _, s := range plan.order {
		if x.shards[s] == nil {
			continue // retired by a merge above; its rebuild covers the ops
		}
		if !plan.dirty[s] {
			stream(s)
			continue
		}
		verts := x.shards[s].verts
		comps := partition.SCCWithin(x.g, verts)
		if len(comps) == 1 && len(comps[0]) == len(verts) {
			stream(s) // survived every deletion: still one component
			continue
		}
		retire(s, false)
		for _, comp := range comps {
			if len(comp) >= 2 {
				tasks = append(tasks, &batchTask{build: comp})
			}
		}
	}
	return tasks
}

// sameVerts reports whether two sorted-ascending vertex lists are equal.
func sameVerts(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runBatchTasks drains the tasks on a worker pool, heaviest first so the
// pool's tail stays short. Single-task batches keep intra-build
// parallelism; multi-task batches parallelize across shards with
// sequential inner builds, mirroring BuildSharded.
func (x *Sharded) runBatchTasks(tasks []*batchTask, workers int) {
	if len(tasks) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	inner := x.opts
	if len(tasks) > 1 {
		inner.Workers = 1
	}
	weight := func(t *batchTask) int { return 4*len(t.build) + len(t.ops) }
	sort.SliceStable(tasks, func(i, j int) bool { return weight(tasks[i]) > weight(tasks[j]) })
	if workers <= 1 {
		for _, t := range tasks {
			x.runBatchTask(t, inner)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				x.runBatchTask(tasks[i], inner)
			}
		}()
	}
	wg.Wait()
}

// runBatchTask executes one task: a fresh component build, or an ordered
// intra-shard update stream through the shard's own INCCNT/decremental
// maintenance. Each task touches only its own shard's sub-index (plus
// read-only global state), so tasks are data-race-free by construction;
// scratches go back to the shared pool so concurrent streams recycle a
// few allocations across the whole batch.
func (x *Sharded) runBatchTask(t *batchTask, inner Options) {
	if t.build != nil {
		t.sh = buildShard(x.g, t.build, inner)
		t.sh.idx.eng.ReleaseScratch()
		t.st.EntriesAdded = t.sh.idx.EntryCount()
		t.st.Visited = len(t.build)
		t.st.TouchedOwners = touchAll(t.build)
		return
	}
	sh := t.sh
	defer sh.idx.eng.ReleaseScratch()
	for _, op := range t.ops {
		la, lb := int(x.localID[op.A]), int(x.localID[op.B])
		var st pll.UpdateStats
		var err error
		if op.Kind == OpInsert {
			st, err = sh.idx.InsertEdge(la, lb)
		} else {
			st, err = sh.idx.DeleteEdge(la, lb)
		}
		if err != nil {
			t.err = err // unreachable short of corruption; caller self-heals
			return
		}
		x.translateOwners(sh, &st)
		accumulate(&t.st, st)
	}
}

// BatchRebuilds reports how many scoped component rebuilds ApplyBatch has
// performed — at most one per merged or split component per batch.
func (x *Sharded) BatchRebuilds() int { return x.batchRebuilds }
