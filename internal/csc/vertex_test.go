package csc

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

func TestAddVertexThenWire(t *testing.T) {
	g := testgraphs.Triangle()
	x, _ := Build(g, order.ByDegree(g), Options{})
	v, err := x.AddVertex()
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("new vertex id %d, want 3", v)
	}
	if r, c := x.CycleCount(v); r != bfscount.NoCycle || c != 0 {
		t.Fatalf("fresh vertex on a cycle: (%d,%d)", r, c)
	}
	// Wire it into the triangle: 2→3, 3→0 puts it on a 4-cycle.
	if _, err := x.InsertEdge(2, v); err != nil {
		t.Fatal(err)
	}
	if _, err := x.InsertEdge(v, 0); err != nil {
		t.Fatal(err)
	}
	assertAllCycleCounts(t, x, g, "after wiring new vertex")
	if l, c := x.CycleCount(v); l != 4 || c != 1 {
		t.Fatalf("SCCnt(new) = (%d,%d), want (4,1)", l, c)
	}
}

func TestAddManyVerticesInterleaved(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	g := graph.New(6)
	for i := 0; i < 12; i++ {
		u, v := r.Intn(6), r.Intn(6)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	x, _ := Build(g, order.ByDegree(g), Options{})
	for step := 0; step < 25; step++ {
		n := g.NumVertices()
		switch r.Intn(3) {
		case 0:
			if _, err := x.AddVertex(); err != nil {
				t.Fatal(err)
			}
		default:
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				if _, err := x.DeleteEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := x.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		assertAllCycleCounts(t, x, g, "interleaved growth")
	}
}

func TestDetachVertex(t *testing.T) {
	g := testgraphs.Figure2()
	x, _ := Build(g, order.ByDegree(g), Options{})
	// Detaching v7 (vertex 6) kills every cycle in Figure 2 except none —
	// all cycles pass v7, so everything becomes acyclic.
	removed, err := x.DetachVertex(6)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 { // in: v4,v5,v6; out: v8
		t.Fatalf("removed %d edges, want 4", removed)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if l, _ := x.CycleCount(v); l != bfscount.NoCycle {
			t.Fatalf("cycle survived detaching v7: vertex %d length %d", v, l)
		}
	}
	assertAllCycleCounts(t, x, g, "after detach")
}
