//go:build !linux

package csc

import "os"

// mmapFile falls back to a full read where the mmap path is not wired
// up; ReadFile still gets a valid byte image, just an eagerly loaded one.
func mmapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
