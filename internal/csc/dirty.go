package csc

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/pll"
)

// DirtyVertices maps an update's touched label owners (Gb vertices, the
// convention every Counter update method reports) to the sorted,
// deduplicated original-graph vertices whose SCCnt answer the update may
// have changed — the dirty set.
//
// The set is exact in the direction read-path caches need: SCCnt(v) is a
// pure function of Lout(v_out) and Lin(v_in), every label mutation is
// recorded against its owner, and rebuilt components are marked wholly
// touched — so a vertex absent from the dirty set answers exactly what
// it answered before the update. (The converse is deliberately loose: a
// label entry can be rewritten with its old value, or mutated on the
// side a query does not read, without changing any answer.) The
// dirty-set-exactness suite in dirty_test.go verifies the containment
// against a fresh-index oracle over the whole corpus.
func DirtyVertices(st pll.UpdateStats) []int {
	if len(st.TouchedOwners) == 0 {
		return nil
	}
	seen := make(map[int]struct{}, len(st.TouchedOwners))
	out := make([]int, 0, len(st.TouchedOwners))
	for _, o := range st.TouchedOwners {
		v := bipartite.Original(int(o))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
