package csc

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/pll"
)

// AddVertex grows the indexed graph by one isolated vertex and returns its
// id. In the bipartite conversion this appends the couple (v_in, v_out) at
// the two lowest ranks with the couple edge and the labels the
// construction would have produced for an isolated couple:
//
//	Lin(v_in)  = {(v_in,0,1)}        Lout(v_in)  = {(v_in,0,1)}
//	Lin(v_out) = {(v_in,1,1), self}  Lout(v_out) = {(v_out,0,1)}
func (x *Index) AddVertex() (int, error) {
	v := x.g.AddVertex()
	vi, err := x.eng.AddVertex()
	if err != nil {
		return 0, err
	}
	vo, err := x.eng.AddVertex()
	if err != nil {
		return 0, err
	}
	if vi != bipartite.InVertex(v) || vo != bipartite.OutVertex(v) {
		return 0, fmt.Errorf("csc: bipartite id drift for vertex %d", v)
	}
	if err := x.eng.G.AddEdge(vi, vo); err != nil {
		return 0, err
	}
	// Couple rule: (v_in, 1, 1) ∈ Lin(v_out). The couple edge is the only
	// path touching the fresh couple, so no other label changes.
	x.eng.SetInEntry(vo, x.eng.Ord.Rank(vi), 1, 1)
	return v, nil
}

// DetachVertex removes every incident edge of v (both directions) through
// maintained deletions, leaving v isolated. Vertex ids stay dense and are
// never recycled — the paper models vertex removal exactly this way, as a
// series of edge deletions.
func (x *Index) DetachVertex(v int) (int, error) {
	return detachVertex(x.g, v, x.DeleteEdge)
}

// detachVertex is the shared detach loop behind both Counter
// implementations: copy the adjacency before mutating it, then route
// every incident edge through the maintained deletion path.
func detachVertex(g *graph.Digraph, v int, del func(a, b int) (pll.UpdateStats, error)) (int, error) {
	removed := 0
	out := append([]int32(nil), g.Out(v)...)
	for _, w := range out {
		if _, err := del(v, int(w)); err != nil {
			return removed, err
		}
		removed++
	}
	in := append([]int32(nil), g.In(v)...)
	for _, w := range in {
		if _, err := del(int(w), v); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
