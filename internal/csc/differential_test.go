package csc

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/gen"
	"repro/internal/order"
)

// Differential property test: the generic hub-filtered construction, the
// sequential couple-vertex-skipping construction, and the parallel
// skipping construction must produce identical labels on the same graph,
// and must keep answering CycleCount identically (and correctly, against
// the BFS baseline) under a random stream of maintained insertions and
// deletions. This pins the whole fast-path pipeline — hub-indexed
// pruning, rank-batched speculation, and the CSR arena — to the seed
// semantics.
func TestDifferentialConstructionAndUpdateStream(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		differentialRun(t, seed)
	}
}

// FuzzDifferentialConstruction lets `go test -fuzz` explore more seeds;
// the checked-in corpus keeps `go test` fast.
func FuzzDifferentialConstruction(f *testing.F) {
	f.Add(int64(42))
	f.Add(int64(7))
	f.Fuzz(func(t *testing.T, seed int64) {
		differentialRun(t, seed)
	})
}

func differentialRun(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n := 10 + r.Intn(25)
	m := n + r.Intn(3*n)
	g := gen.ErdosRenyi(gen.Config{N: n, M: m, Seed: seed})
	ord := order.ByDegree(g)

	generic, _ := Build(g.Clone(), ord, Options{GenericConstruction: true, Workers: 1})
	skipping, _ := Build(g.Clone(), ord, Options{Workers: 1})
	parallel, _ := Build(g.Clone(), ord, Options{Workers: 4})

	assertEngineLabelsEqual(t, seed, -1, "generic vs skipping", generic, skipping)
	assertEngineLabelsEqual(t, seed, -1, "skipping vs parallel", skipping, parallel)

	// Random update stream applied to all three; answers must agree with
	// each other and with the BFS ground truth after every step.
	indexes := []*Index{generic, skipping, parallel}
	for step := 0; step < 30; step++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
			for _, x := range indexes {
				if _, err := x.DeleteEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: delete(%d,%d): %v", seed, step, u, v, err)
				}
			}
		} else {
			g.AddEdge(u, v)
			for _, x := range indexes {
				if _, err := x.InsertEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: insert(%d,%d): %v", seed, step, u, v, err)
				}
			}
		}
		assertEngineLabelsEqual(t, seed, step, "generic vs parallel", generic, parallel)
		for w := 0; w < n; w++ {
			wantL, wantC := bfscount.CycleCount(g, w)
			for _, x := range indexes {
				gotL, gotC := x.CycleCount(w)
				if gotL != wantL || gotC != wantC {
					t.Fatalf("seed %d step %d: CycleCount(%d) = (%d,%d), want BFS (%d,%d)",
						seed, step, w, gotL, gotC, wantL, wantC)
				}
			}
		}
	}
}

func assertEngineLabelsEqual(t *testing.T, seed int64, step int, what string, a, b *Index) {
	t.Helper()
	ae, be := a.Engine(), b.Engine()
	n2 := ae.G.NumVertices()
	for v := 0; v < n2; v++ {
		if !entriesEqual(ae.In[v].Entries(), be.In[v].Entries()) {
			t.Fatalf("seed %d step %d: %s: Lin(%d): %v != %v",
				seed, step, what, v, ae.In[v].Entries(), be.In[v].Entries())
		}
		if !entriesEqual(ae.Out[v].Entries(), be.Out[v].Entries()) {
			t.Fatalf("seed %d step %d: %s: Lout(%d): %v != %v",
				seed, step, what, v, ae.Out[v].Entries(), be.Out[v].Entries())
		}
	}
	if ae.EntryCount() != be.EntryCount() {
		t.Fatalf("seed %d step %d: %s: entry counts %d != %d",
			seed, step, what, ae.EntryCount(), be.EntryCount())
	}
}
