package csc

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/testgraphs"
)

// twoRingsBridged builds ring A over 0..5, ring B over 6..11, and the
// bridges 5→6 and 11→0, which tie everything into one 12-vertex SCC.
func twoRingsBridged(t *testing.T) *graph.Digraph {
	t.Helper()
	g := graph.New(12)
	for k := 0; k < 6; k++ {
		if err := g.AddEdge(k, (k+1)%6); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(6+k, 6+(k+1)%6); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(11, 0); err != nil {
		t.Fatal(err)
	}
	return g
}

// drainRebuild completes a pending rebuild the way the engine does:
// run, swap, and assert the swap was accepted.
func drainRebuild(t *testing.T, x *Sharded, r *Rebuild) {
	t.Helper()
	if r == nil {
		return
	}
	r.Run(2)
	if _, ok := x.CompleteRebuild(r); !ok {
		t.Fatal("CompleteRebuild rejected the current pending rebuild")
	}
}

func mustConsistent(t *testing.T, x *Sharded, tag string) {
	t.Helper()
	if err := x.checkConsistent(); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
}

// TestDeferredEquivalenceMetamorphic is the out-of-band acceptance
// suite: random batches applied through ApplyBatchDeferred — with
// rebuilds completed at random points, superseded by later batches, or
// left pending across many batches — must, once drained, answer
// identically on every vertex to inline ApplyBatch on a twin index.
func TestDeferredEquivalenceMetamorphic(t *testing.T) {
	trials := []struct {
		name string
		g    *graph.Digraph
	}{
		{"giant-scc", testgraphs.GiantSCC(60, 200, 3)},
		{"many-small", testgraphs.ManySmallSCC(8, 5, 10, 4)},
		{"dag-heavy", testgraphs.DAGHeavy(80, 220, 6, 5)},
	}
	for _, tr := range trials {
		t.Run(tr.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(77))
			inline, _ := BuildSharded(tr.g.Clone(), Options{})
			deferred, _ := BuildSharded(tr.g.Clone(), Options{})
			batches := randomBatches(r, tr.g, 12, 6)
			for i, batch := range batches {
				if _, err := inline.ApplyBatch(batch, 1); err != nil {
					t.Fatalf("batch %d inline: %v", i, err)
				}
				_, pending, err := deferred.ApplyBatchDeferred(batch, 2, 5)
				if err != nil {
					t.Fatalf("batch %d deferred: %v", i, err)
				}
				// Complete the rebuild only sometimes: left-pending
				// deferrals must survive (and stay correct through) later
				// batches that drop ops into their frozen shards.
				if pending != nil && r.Intn(3) == 0 {
					drainRebuild(t, deferred, pending)
				}
				mustConsistent(t, deferred, "mid-run")
			}
			drainRebuild(t, deferred, deferred.PendingRebuild())
			mustConsistent(t, deferred, "drained")
			if got := deferred.StaleShards(); len(got) != 0 {
				t.Fatalf("stale shards %v after draining every rebuild", got)
			}
			wantL, wantC := countsOf(inline)
			gotL, gotC := countsOf(deferred)
			assertSameCounts(t, "deferred vs inline", wantL, wantC, gotL, gotC)
		})
	}
}

// A deferring batch must commit immediately while the affected shards
// keep serving their exact pre-batch answers, and the swap must bring
// them to the exact post-batch answers — with a dirty set covering the
// whole region, since that is what the engine's cache invalidation and
// top-k rescore hang off.
func TestDeferredStaleWindowServesPreBatchAnswers(t *testing.T) {
	g := graph.New(12)
	for k := 0; k < 6; k++ {
		if err := g.AddEdge(k, (k+1)%6); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(6+k, 6+(k+1)%6); err != nil {
			t.Fatal(err)
		}
	}
	x, _ := BuildSharded(g, Options{})
	preL, preC := countsOf(x)

	// One batch: break ring A and bridge the two rings into a single
	// 12-cycle. The merged component is ≥ threshold, so it defers.
	batch := []EdgeOp{Del(0, 1), Ins(0, 6), Ins(11, 1)}
	_, pending, err := x.ApplyBatchDeferred(batch, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pending == nil {
		t.Fatal("merge of 12 vertices under threshold 8 did not defer")
	}
	if got := x.StaleShards(); len(got) != 2 {
		t.Fatalf("stale shards %v, want both ring shards frozen", got)
	}
	// The graph already moved; the frozen shards still answer as of the
	// pre-batch state: every vertex on its 6-ring.
	mustConsistent(t, x, "stale window")
	for v := 0; v < 12; v++ {
		l, c := x.CycleCount(v)
		if l != preL[v] || c != preC[v] {
			t.Fatalf("stale window vertex %d: got (%d,%d), want pre-batch (%d,%d)", v, l, c, preL[v], preC[v])
		}
	}

	// Swap in: answers snap to the post-batch truth, dirty set covers
	// every vertex of the region.
	pending.Run(2)
	st, ok := x.CompleteRebuild(pending)
	if !ok {
		t.Fatal("CompleteRebuild rejected the pending rebuild")
	}
	dirty := DirtyVertices(st)
	if len(dirty) != 12 {
		t.Fatalf("swap dirty set %v, want all 12 region vertices", dirty)
	}
	if !sort.IntsAreSorted(dirty) {
		t.Fatalf("dirty set not sorted: %v", dirty)
	}
	mustConsistent(t, x, "after swap")
	fresh, _ := BuildSharded(x.g.Clone(), Options{})
	wantL, wantC := countsOf(fresh)
	gotL, gotC := countsOf(x)
	assertSameCounts(t, "after swap", wantL, wantC, gotL, gotC)
	if got := x.StaleShards(); len(got) != 0 {
		t.Fatalf("stale shards %v after swap", got)
	}
	if done, _ := x.OOBRebuilds(); done != 1 {
		t.Fatalf("completed rebuilds %d, want 1", done)
	}
}

// A flapped structural edge — deleted, deferral taken, re-inserted
// before the rebuild ran — must dissolve the deferral with zero
// rebuilds: the frozen shard's subgraph matches the graph again, so it
// unfreezes owing nothing. This is the cliff the out-of-band design
// exists for: churn at a component boundary costs the inline engine a
// full rebuild per flap and costs the deferred engine nothing.
func TestDeferredFlapDissolves(t *testing.T) {
	x, _ := BuildSharded(twoRingsBridged(t), Options{})
	preL, preC := countsOf(x)

	// Deleting a bridge splits the 12-SCC into the two 6-rings: both
	// halves are ≥ threshold 4, so the split defers and the shard freezes.
	_, pending, err := x.ApplyBatchDeferred([]EdgeOp{Del(5, 6)}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pending == nil {
		t.Fatal("split did not defer")
	}
	if got := x.StaleShards(); len(got) != 1 {
		t.Fatalf("stale shards %v, want the one 12-vertex shard", got)
	}
	mustConsistent(t, x, "deferred split")

	// Re-insert: the graph is back to the frozen state, the deferral
	// dissolves, and nothing was ever rebuilt.
	if _, err := x.InsertEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	if r := x.PendingRebuild(); r != nil {
		t.Fatalf("deferral did not dissolve on flap: %+v", r.Components())
	}
	if got := x.StaleShards(); len(got) != 0 {
		t.Fatalf("stale shards %v after flap", got)
	}
	if done, _ := x.OOBRebuilds(); done != 0 {
		t.Fatalf("flap cost %d rebuilds, want 0", done)
	}
	mustConsistent(t, x, "after flap")
	gotL, gotC := countsOf(x)
	assertSameCounts(t, "after flap", preL, preC, gotL, gotC)
}

// A rebuild that finishes after a later batch changed its region must
// be discarded, and the replacement deferral must swap in cleanly.
func TestDeferredSupersededRebuildDiscarded(t *testing.T) {
	x, _ := BuildSharded(twoRingsBridged(t), Options{})

	_, r1, err := x.ApplyBatchDeferred([]EdgeOp{Del(5, 6)}, 2, 4) // split defers: rebuild r1
	if err != nil {
		t.Fatal(err)
	}
	if r1 == nil {
		t.Fatal("split did not defer")
	}

	// A second structural batch inside the region: r1 is superseded by a
	// fresh deferral computed against the new edge set.
	if _, err := x.DeleteEdge(11, 0); err != nil {
		t.Fatal(err)
	}
	r2 := x.PendingRebuild()
	if r2 == r1 {
		t.Fatal("region-touching batch did not supersede the pending rebuild")
	}

	// The stale rebuild completes late and must be rejected wholesale.
	r1.Run(1)
	if _, ok := x.CompleteRebuild(r1); ok {
		t.Fatal("superseded rebuild was swapped in")
	}
	if _, superseded := x.OOBRebuilds(); superseded == 0 {
		t.Fatal("superseded counter never moved")
	}
	drainRebuild(t, x, x.PendingRebuild())
	mustConsistent(t, x, "after supersede")

	fresh, _ := BuildSharded(x.g.Clone(), Options{})
	wantL, wantC := countsOf(fresh)
	gotL, gotC := countsOf(x)
	assertSameCounts(t, "after supersede", wantL, wantC, gotL, gotC)
}
