package csc

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/order"
	"repro/internal/testgraphs"
)

// orderedStrategies is every strategy a build can be configured with
// (Hits is provenance-only: it tags re-ranked shards, never a build).
func orderedStrategies() []order.Strategy {
	return []order.Strategy{order.Degree, order.ID, order.Random, order.Betweenness, order.Coverage}
}

// A non-degree build must write the v4 magic and round-trip its ordering
// provenance exactly: the global strategy, every per-shard strategy tag,
// every per-shard hub order, and the answers — through both the strict
// stream reader and the lazy mmap reader — then re-serialize
// byte-identically.
func TestV4RoundTrip(t *testing.T) {
	g := testgraphs.ManySmallSCC(6, 4, 30, 10)
	n := g.NumVertices()
	for _, strat := range []order.Strategy{order.Random, order.Betweenness, order.Coverage} {
		x, _ := BuildSharded(g.Clone(), Options{Workers: 1, CompressLabels: true, Order: strat, OrderSeed: 5})

		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", strat, err)
		}
		raw := buf.Bytes()
		if string(raw[:8]) != v4Magic {
			t.Fatalf("%s: non-degree build wrote magic %q, want v4", strat, raw[:8])
		}

		got, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: Read(v4): %v", strat, err)
		}
		sx := got.(*Sharded)
		if sx.opts.Order != strat {
			t.Fatalf("%s: global strategy loaded as %s", strat, sx.opts.Order)
		}
		for _, st := range sx.ShardStats() {
			if st.Order != strat {
				t.Fatalf("%s: shard %d strategy loaded as %s", strat, st.Slot, st.Order)
			}
		}
		for si, sh := range x.liveShards() {
			lsh := sx.liveShards()[si]
			a, b := sh.idx.eng.Ord, lsh.idx.eng.Ord
			if a.Len() != b.Len() {
				t.Fatalf("%s: shard %d order length differs", strat, si)
			}
			for r := 0; r < a.Len(); r++ {
				if a.VertexAt(r) != b.VertexAt(r) {
					t.Fatalf("%s: shard %d order differs at rank %d", strat, si, r)
				}
			}
		}
		assertCountersAgree(t, "v4 stream reload", x, got, n)

		var buf2 bytes.Buffer
		if _, err := sx.WriteTo(&buf2); err != nil {
			t.Fatalf("%s: re-serialize: %v", strat, err)
		}
		if !bytes.Equal(raw, buf2.Bytes()) {
			t.Fatalf("%s: v4 re-serialization not byte-identical", strat)
		}

		path := filepath.Join(t.TempDir(), "index.csc")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		mm, err := ReadFile(path, true)
		if err != nil {
			t.Fatalf("%s: ReadFile(mmap): %v", strat, err)
		}
		assertCountersAgree(t, "v4 mmap reload", x, mm, n)
		if ms := mm.(*Sharded); ms.opts.Order != strat {
			t.Fatalf("%s: mmap load lost strategy (got %s)", strat, ms.opts.Order)
		}
	}
}

// A degree build carries no provenance worth a format bump: it must keep
// emitting byte-stable v3, so files written before v4 existed and the
// golden fixtures stay valid.
func TestDegreeBuildStaysV3(t *testing.T) {
	g := testgraphs.ManySmallSCC(6, 4, 30, 10)
	x, _ := BuildSharded(g, Options{Workers: 1, CompressLabels: true})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Bytes()[:8]) != v3Magic {
		t.Fatalf("degree build wrote magic %q, want v3", buf.Bytes()[:8])
	}
}

// The v2 format predates strategy tags, but the hub orders themselves
// ride in the embedded v1 blobs — a v2 round-trip of a non-degree build
// loses only the tag (reloading as Degree), never the order or the
// answers.
func TestV2RoundTripKeepsOrders(t *testing.T) {
	g := testgraphs.ManySmallSCC(6, 4, 30, 10)
	x, _ := BuildSharded(g.Clone(), Options{Workers: 1, Order: order.Coverage, OrderSeed: 5})
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Bytes()[:8]) != shardedMagic {
		t.Fatalf("uncompressed build wrote magic %q, want v2", buf.Bytes()[:8])
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sx := got.(*Sharded)
	for si, sh := range x.liveShards() {
		lsh := sx.liveShards()[si]
		a, b := sh.idx.eng.Ord, lsh.idx.eng.Ord
		for r := 0; r < a.Len(); r++ {
			if a.VertexAt(r) != b.VertexAt(r) {
				t.Fatalf("shard %d order differs at rank %d after v2 round-trip", si, r)
			}
		}
	}
	assertCountersAgree(t, "v2 reload", x, got, g.NumVertices())
}

// Two builds under the same options must serialize byte-identically for
// every strategy — the whole-index form of the tie-breaking determinism
// the order package promises.
func TestRepeatedBuildsByteIdentical(t *testing.T) {
	g := testgraphs.DAGHeavy(150, 450, 4, 9)
	for _, strat := range orderedStrategies() {
		opts := Options{Workers: 1, CompressLabels: true, Order: strat, OrderSeed: 11}
		var a, b bytes.Buffer
		x1, _ := BuildSharded(g.Clone(), opts)
		if _, err := x1.WriteTo(&a); err != nil {
			t.Fatal(err)
		}
		x2, _ := BuildSharded(g.Clone(), opts)
		if _, err := x2.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: repeated builds serialize differently (%d vs %d bytes)",
				strat, a.Len(), b.Len())
		}
	}
}
