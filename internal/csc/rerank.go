package csc

import (
	"fmt"
	"time"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/partition"
)

// Online re-ranking: the sharded index can rebuild one shard under a new
// hub order without any structural change — the graph is untouched, only
// the labels reshape. The rebuild rides the out-of-band deferral
// machinery (deferred.go): the shard freezes at its current answers
// (which stay exact — the graph does not change), the replacement builds
// on a background goroutine from an induced-subgraph snapshot, and
// CompleteRebuild swaps it in atomically under the caller's grace
// period. A structural batch arriving mid-rebuild supersedes the
// deferral through the normal reconcile pass, so a re-rank can never
// mask a real update; the engine simply retries at the next tick.
//
// The drift signal is per-hub hit counters on the join kernel
// (pll.Index.EnableHitCounters): each answered query attributes itself
// to the winning hub's rank. A well-ordered shard answers at its top
// ranks; a hit mass sitting in the rank tail means the order no longer
// matches the workload, and re-ranking by hit weight pulls the hot hubs
// forward.

// EnableHitCounters turns on per-hub hit recording for every live shard
// (idempotent; freshly installed shards start with counters off, so
// callers re-invoke after swaps). Must run where index mutations are
// serialized — enabling races with concurrent queries otherwise.
func (x *Sharded) EnableHitCounters() {
	for _, sh := range x.shards {
		if sh != nil {
			sh.idx.eng.EnableHitCounters()
		}
	}
}

// ShardDrift reports one live shard's order drift: the hit-weighted mean
// normalized rank of its winning hubs (0 = every answer at the top rank,
// 1 = everything at the bottom), and the total recorded hits. ok is
// false for dead slots or shards without counters.
func (x *Sharded) ShardDrift(slot int) (drift float64, hits uint64, ok bool) {
	if slot < 0 || slot >= len(x.shards) || x.shards[slot] == nil {
		return 0, 0, false
	}
	hh := x.shards[slot].idx.eng.HubHits()
	if hh == nil {
		return 0, 0, false
	}
	var mass float64
	for r, n := range hh {
		hits += n
		mass += float64(n) * float64(r)
	}
	if hits == 0 || len(hh) < 2 {
		return 0, hits, true
	}
	return mass / (float64(hits) * float64(len(hh)-1)), hits, true
}

// ReorderShard defers an order-only rebuild of one live shard under an
// explicit hub order (over the shard's induced subgraph, one rank per
// member vertex). The shard freezes — still serving exact answers, since
// the graph is unchanged — and the returned Rebuild follows the normal
// out-of-band path: Run on any goroutine, CompleteRebuild where
// mutations are serialized. Refused while another deferral is pending:
// structural work always outranks cosmetic relabeling.
func (x *Sharded) ReorderShard(slot int, ord *order.Order, strat order.Strategy) (*Rebuild, error) {
	if x.pendingReb != nil {
		return nil, fmt.Errorf("csc: a rebuild is already pending")
	}
	if slot < 0 || slot >= len(x.shards) || x.shards[slot] == nil {
		return nil, fmt.Errorf("csc: no live shard at slot %d", slot)
	}
	sh := x.shards[slot]
	if ord.Len() != len(sh.verts) {
		return nil, fmt.Errorf("csc: order covers %d vertices, shard has %d", ord.Len(), len(sh.verts))
	}
	x.gen++
	reb := &Rebuild{
		gen:      x.gen,
		stale:    []int32{int32(slot)},
		comps:    [][]int32{sh.verts},
		subs:     []*graph.Digraph{partition.Induced(x.g, sh.verts)},
		region:   make(map[int32]struct{}, len(sh.verts)),
		opts:     x.opts,
		ords:     []*order.Order{ord},
		strats:   []order.Strategy{strat},
		frozenAt: time.Now(),
	}
	for _, v := range sh.verts {
		reb.region[v] = struct{}{}
	}
	if x.stale == nil {
		x.stale = make(map[int32]bool)
	}
	x.stale[int32(slot)] = true
	x.pendingReb = reb
	return reb, nil
}

// ReorderShardByHits is ReorderShard with the order derived from the
// shard's own hit counters: each member vertex's weight is the hit mass
// of its two Gb ranks, and order.ByWeights ranks hot vertices first
// (degree, then id, breaking ties — a uniformly hit shard degenerates to
// the degree order). Fails when the shard has no counters or no hits.
func (x *Sharded) ReorderShardByHits(slot int) (*Rebuild, error) {
	if slot < 0 || slot >= len(x.shards) || x.shards[slot] == nil {
		return nil, fmt.Errorf("csc: no live shard at slot %d", slot)
	}
	sh := x.shards[slot]
	eng := sh.idx.eng
	hh := eng.HubHits()
	if hh == nil {
		return nil, fmt.Errorf("csc: shard %d has no hit counters", slot)
	}
	sub := sh.idx.Graph()
	weights := make([]float64, sub.NumVertices())
	var total uint64
	for r, n := range hh {
		if n == 0 {
			continue
		}
		total += n
		// Ranks index the shard's Gb order; fold both sides of each couple
		// onto the original member vertex.
		weights[bipartite.Original(eng.Ord.VertexAt(r))] += float64(n)
	}
	if total == 0 {
		return nil, fmt.Errorf("csc: shard %d has no recorded hits", slot)
	}
	return x.ReorderShard(slot, order.ByWeights(sub, weights), order.Hits)
}
