package csc

import (
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/pll"
)

// Maintained CSC labels must stay aligned with construction semantics:
// maintenance passes never run from V_out vertices (they are not hubs),
// so under the minimality strategy the maintained index is identical to a
// from-scratch rebuild after any update sequence. Without the hub filter
// in the dynamic algorithms, deletions on Gb would accrete V_out-hub
// entries — harmless for queries but inflating the index by double-digit
// percentages (this is a regression test for exactly that).
func TestMaintainedLabelsEqualRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 14
	g := randomGraph(r, n, 3)
	baseOrd := order.ByDegree(g)
	x, _ := Build(g, baseOrd, Options{Strategy: pll.Minimality})
	for k := 0; k < 40; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if _, err := x.DeleteEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := x.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		fresh, _ := Build(g.Clone(), baseOrd, Options{})
		fe, me := fresh.Engine(), x.Engine()
		for b := 0; b < 2*n; b++ {
			if !entriesEqual(me.In[b].Entries(), fe.In[b].Entries()) {
				t.Fatalf("step %d: Lin(%d): maintained %v != fresh %v",
					k, b, me.In[b].Entries(), fe.In[b].Entries())
			}
			if !entriesEqual(me.Out[b].Entries(), fe.Out[b].Entries()) {
				t.Fatalf("step %d: Lout(%d): maintained %v != fresh %v",
					k, b, me.Out[b].Entries(), fe.Out[b].Entries())
			}
		}
	}
}

// Under redundancy, deletions must not inflate the index beyond the fresh
// size by more than the stale remnants of the deleted pairs themselves —
// in particular, no V_out-hub accretion.
func TestRedundancyDeletionsDoNotAccrete(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 60
	g := randomGraph(r, n, 4)
	baseOrd := order.ByDegree(g)
	x, _ := Build(g, baseOrd, Options{})
	edges := g.Edges()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges[:20] {
		if _, err := x.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	fresh, _ := Build(g.Clone(), baseOrd, Options{})
	got, want := x.EntryCount(), fresh.EntryCount()
	if got > want+want/20 { // ≤5% slack for stale-but-dominated remnants
		t.Fatalf("maintained index accreted: %d entries vs fresh %d", got, want)
	}
}
