package csc

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/order"
)

// Regression test for V_out-hub accretion: a single high-degree deletion
// on the G04 analog must leave the maintained index *identical in size*
// to a fresh rebuild (the dynamic algorithms honor the hub filter).
// Skipped in -short mode — it builds a 2500-vertex index twice.
func TestDeletionMatchesRebuildAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full G04-analog indexes")
	}
	g := gen.ErdosRenyi(gen.Config{N: 2500, M: 10000, Seed: 104, NoReciprocal: true})
	edges := g.Edges()
	groups := cluster.Edges(g, edges)
	var e [2]int
	for ci := 0; ci < 5; ci++ {
		if len(groups[ci]) > 0 {
			e = groups[ci][0] // a highest-cluster edge
			break
		}
	}
	ord := order.ByDegree(g)
	x, _ := Build(g.Clone(), ord, Options{})
	if _, err := x.DeleteEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	if err := g2.RemoveEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	fresh, _ := Build(g2, ord, Options{})
	if got, want := x.EntryCount(), fresh.EntryCount(); got != want {
		t.Fatalf("maintained %d entries vs fresh %d (drift %+d)", got, want, got-want)
	}
}
