package csc

import (
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
)

// FuzzBatchUpdate drives interleaved insert/delete batches across
// merge/split boundaries. The input encodes a sequence of batches —
// a length byte followed by that many op bytes, each byte one endpoint
// pair — and every op toggles its edge against a mirror graph, so any
// byte string decodes into a valid batch sequence. After every batch the
// sharded index must agree with the BFS oracle on every vertex, across a
// rotating worker count, and the shard table must stay consistent.
//
// testdata/fuzz/FuzzBatchUpdate checks in the known-nasty seeds: an
// insert closing a path back to its tail (cross-batch and within-batch
// merges) and a delete splitting a giant SCC.
func FuzzBatchUpdate(f *testing.F) {
	// A 4-ring built in one batch: a within-batch merge.
	f.Add([]byte{4, 0x01, 0x12, 0x23, 0x30})
	// A path grown in one batch, closed back to its tail in the next.
	f.Add([]byte{3, 0x01, 0x12, 0x23, 1, 0x30})
	// A giant 8-ring, then a single delete that splits it.
	f.Add([]byte{8, 0x01, 0x12, 0x23, 0x34, 0x45, 0x56, 0x67, 0x70, 1, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		if len(data) > 96 {
			data = data[:96]
		}
		x, _ := BuildSharded(graph.New(n), Options{})
		mirror := graph.New(n)
		for i, bi := 0, 0; i < len(data); bi++ {
			batchLen := int(data[i]) % 13
			i++
			var batch []EdgeOp
			for k := 0; k < batchLen && i < len(data); k++ {
				b := data[i]
				i++
				u, v := int(b>>4)%n, int(b&0xf)%n
				if u == v {
					continue
				}
				if mirror.HasEdge(u, v) {
					_ = mirror.RemoveEdge(u, v)
					batch = append(batch, Del(u, v))
				} else {
					_ = mirror.AddEdge(u, v)
					batch = append(batch, Ins(u, v))
				}
			}
			workers := []int{1, 2, 4}[bi%3]
			if _, err := x.ApplyBatch(batch, workers); err != nil {
				t.Fatalf("batch %d (workers %d): %v", bi, workers, err)
			}
			if err := x.checkConsistent(); err != nil {
				t.Fatalf("batch %d: %v", bi, err)
			}
			for v := 0; v < n; v++ {
				sl, sc := x.CycleCount(v)
				ol, oc := bfscount.CycleCount(mirror, v)
				if sl != ol || sc != oc {
					t.Fatalf("batch %d vertex %d: sharded (%d,%d) != oracle (%d,%d)", bi, v, sl, sc, ol, oc)
				}
			}
		}
		if !graph.Equal(x.Graph(), mirror) {
			t.Fatal("index graph diverged from mirror")
		}
	})
}
