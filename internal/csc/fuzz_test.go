package csc

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the serialization golden files")

// goldenGraph is the fixed graph behind both golden files: two components
// plus trivial vertices, so the v2 file exercises a multi-shard table.
func goldenGraph() *graph.Digraph {
	g, err := graph.FromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, // triangle
		{4, 5}, {5, 4}, // 2-cycle
		{2, 4}, {5, 6}, {7, 0}, // cross edges and tails
	})
	if err != nil {
		panic(err)
	}
	return g
}

func goldenBytes(t *testing.T, version int) []byte {
	t.Helper()
	g := goldenGraph()
	var buf bytes.Buffer
	switch version {
	case 1:
		x, _ := Build(g, order.ByDegree(g), Options{Workers: 1})
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	case 2:
		x, _ := BuildSharded(g, Options{Workers: 1})
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	case 3:
		x, _ := BuildSharded(g, Options{Workers: 1, CompressLabels: true})
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	case 4:
		// A non-degree strategy forces the order-provenance tag, and with
		// it the v4 magic (a degree build emits byte-identical v3).
		x, _ := BuildSharded(g, Options{Workers: 1, CompressLabels: true, Order: order.Coverage, OrderSeed: 7})
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGoldenFiles pins all four on-disk formats: the checked-in v1, v2,
// v3, and v4 files must load, answer exactly the oracle counts, and
// re-serialize to the stored bytes. A failure means the format changed —
// bump the magic and keep the old reader instead of breaking deployed
// index files.
func TestGoldenFiles(t *testing.T) {
	for _, tc := range []struct {
		file    string
		version int
	}{
		{"golden_v1.csc", 1},
		{"golden_v2.csc", 2},
		{"golden_v3.csc", 3},
		{"golden_v4.csc", 4},
	} {
		path := filepath.Join("testdata", tc.file)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, goldenBytes(t, tc.version), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", tc.file, err)
		}
		if want := goldenBytes(t, tc.version); !bytes.Equal(data, want) {
			t.Fatalf("%s: stored bytes differ from a fresh sequential build's serialization", tc.file)
		}
		loaded, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		wantCounts := map[int][2]int{ // vertex → (length, count); others no-cycle
			0: {3, 1}, 1: {3, 1}, 2: {3, 1}, 4: {2, 1}, 5: {2, 1},
		}
		for v := 0; v < loaded.Graph().NumVertices(); v++ {
			l, c := loaded.CycleCount(v)
			if want, ok := wantCounts[v]; ok {
				if l != want[0] || uint64(want[1]) != c {
					t.Fatalf("%s: vertex %d = (%d,%d), want %v", tc.file, v, l, c, want)
				}
			} else if c != 0 {
				t.Fatalf("%s: vertex %d = (%d,%d), want no cycle", tc.file, v, l, c)
			}
		}
	}
}

// FuzzRead throws arbitrary bytes at the format dispatcher: no input may
// panic or hang, and anything that parses must re-serialize stably and
// answer queries in range. Seeds cover all three formats plus targeted
// corruptions of the v2 shard table and the v3 label arena.
func FuzzRead(f *testing.F) {
	g := goldenGraph()
	var v1, v2, v3, v4 bytes.Buffer
	mono, _ := Build(g.Clone(), order.ByDegree(g), Options{Workers: 1})
	if _, err := mono.WriteTo(&v1); err != nil {
		f.Fatal(err)
	}
	sh, _ := BuildSharded(g.Clone(), Options{Workers: 1})
	if _, err := sh.WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	comp, _ := BuildSharded(g.Clone(), Options{Workers: 1, CompressLabels: true})
	if _, err := comp.WriteTo(&v3); err != nil {
		f.Fatal(err)
	}
	ordered, _ := BuildSharded(g.Clone(), Options{Workers: 1, CompressLabels: true, Order: order.Coverage, OrderSeed: 7})
	if _, err := ordered.WriteTo(&v4); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v3.Bytes())
	f.Add(v4.Bytes())
	// Truncations: every prefix of a valid file is invalid, and the loader
	// must say so rather than crash.
	for _, cut := range []int{1, 8, 9, 13, 21, v2.Len() / 2, v2.Len() - 1} {
		if cut < v2.Len() {
			f.Add(v2.Bytes()[:cut])
		}
	}
	for _, cut := range []int{9, 21, v3.Len() / 2, v3.Len() - 1} {
		if cut < v3.Len() {
			f.Add(v3.Bytes()[:cut])
		}
	}
	// Shard-table corruptions: flip bytes around the table region.
	for _, off := range []int{17, 25, 40, 60} {
		if off < v2.Len() {
			mut := append([]byte(nil), v2.Bytes()...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	// v3 corruptions: the shard table up front, then the back half of the
	// file, which is where the frozen label arenas (offsets + delta blobs)
	// live — the strict reader's per-list validation must catch these.
	for _, off := range []int{17, 25, v3.Len() / 2, 3 * v3.Len() / 4, v3.Len() - 2} {
		if off >= 0 && off < v3.Len() {
			mut := append([]byte(nil), v3.Bytes()...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	// v4 corruptions, aimed at the order-provenance section: offset 17 is
	// the global order-strategy byte (right after the pll strategy byte),
	// the early offsets hit the per-shard strategy tags and order vectors,
	// and the truncations cut inside them. A cross-format attack — a v4
	// body relabeled with the v3 magic (so strategy bytes get parsed as
	// order-vector data) — rides along.
	for _, off := range []int{17, 18, 30, 45, 60, v4.Len() / 2, v4.Len() - 2} {
		if off >= 0 && off < v4.Len() {
			mut := append([]byte(nil), v4.Bytes()...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	for _, cut := range []int{9, 17, 18, 40, v4.Len() / 2, v4.Len() - 1} {
		if cut < v4.Len() {
			f.Add(v4.Bytes()[:cut])
		}
	}
	relabeled := append([]byte(nil), v4.Bytes()...)
	copy(relabeled, []byte(v3Magic))
	f.Add(relabeled)
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := x.Graph().NumVertices()
		for v := -1; v <= n && v < 64; v++ {
			if v >= 0 && v < n {
				x.CycleCount(v)
			}
		}
		var out bytes.Buffer
		if _, err := x.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		y, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		for v := 0; v < n && v < 64; v++ {
			xl, xc := x.CycleCount(v)
			yl, yc := y.CycleCount(v)
			if xl != yl || xc != yc {
				t.Fatalf("vertex %d unstable across roundtrip: (%d,%d) vs (%d,%d)", v, xl, xc, yl, yc)
			}
		}
	})
}

// Every strict prefix of a valid v2, v3, or v4 file must fail to parse —
// the loader may never silently accept a truncated shard section, label
// arena, or order-strategy tag. The flat v3/v4 parsers also reject
// trailing garbage, so extensions of a valid file fail too.
func TestShardedReadAllPrefixesFail(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		full := goldenBytes(t, version)
		for cut := 0; cut < len(full); cut++ {
			if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
				t.Fatalf("v%d: prefix of %d/%d bytes parsed successfully", version, cut, len(full))
			}
		}
	}
	for _, version := range []int{3, 4} {
		full := goldenBytes(t, version)
		for _, extra := range [][]byte{{0}, {0xff}, {1, 2, 3, 4}} {
			ext := append(append([]byte(nil), full...), extra...)
			if _, err := Read(bytes.NewReader(ext)); err == nil {
				t.Fatalf("v%d file with %d trailing bytes parsed successfully", version, len(extra))
			}
		}
	}
}
