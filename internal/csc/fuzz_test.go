package csc

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the serialization golden files")

// goldenGraph is the fixed graph behind both golden files: two components
// plus trivial vertices, so the v2 file exercises a multi-shard table.
func goldenGraph() *graph.Digraph {
	g, err := graph.FromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, // triangle
		{4, 5}, {5, 4}, // 2-cycle
		{2, 4}, {5, 6}, {7, 0}, // cross edges and tails
	})
	if err != nil {
		panic(err)
	}
	return g
}

func goldenBytes(t *testing.T, sharded bool) []byte {
	t.Helper()
	g := goldenGraph()
	var buf bytes.Buffer
	if sharded {
		x, _ := BuildSharded(g, Options{Workers: 1})
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	} else {
		x, _ := Build(g, order.ByDegree(g), Options{Workers: 1})
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGoldenFiles pins both on-disk formats: the checked-in v1 and v2
// files must load, answer exactly the oracle counts, and re-serialize to
// the stored bytes. A failure means the format changed — bump the magic
// and keep the old reader instead of breaking deployed index files.
func TestGoldenFiles(t *testing.T) {
	for _, tc := range []struct {
		file    string
		sharded bool
	}{
		{"golden_v1.csc", false},
		{"golden_v2.csc", true},
	} {
		path := filepath.Join("testdata", tc.file)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, goldenBytes(t, tc.sharded), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", tc.file, err)
		}
		if want := goldenBytes(t, tc.sharded); !bytes.Equal(data, want) {
			t.Fatalf("%s: stored bytes differ from a fresh sequential build's serialization", tc.file)
		}
		loaded, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		wantCounts := map[int][2]int{ // vertex → (length, count); others no-cycle
			0: {3, 1}, 1: {3, 1}, 2: {3, 1}, 4: {2, 1}, 5: {2, 1},
		}
		for v := 0; v < loaded.Graph().NumVertices(); v++ {
			l, c := loaded.CycleCount(v)
			if want, ok := wantCounts[v]; ok {
				if l != want[0] || uint64(want[1]) != c {
					t.Fatalf("%s: vertex %d = (%d,%d), want %v", tc.file, v, l, c, want)
				}
			} else if c != 0 {
				t.Fatalf("%s: vertex %d = (%d,%d), want no cycle", tc.file, v, l, c)
			}
		}
	}
}

// FuzzRead throws arbitrary bytes at the format dispatcher: no input may
// panic or hang, and anything that parses must re-serialize stably and
// answer queries in range. Seeds cover both formats plus targeted
// corruptions of the v2 shard table.
func FuzzRead(f *testing.F) {
	g := goldenGraph()
	var v1, v2 bytes.Buffer
	mono, _ := Build(g.Clone(), order.ByDegree(g), Options{Workers: 1})
	if _, err := mono.WriteTo(&v1); err != nil {
		f.Fatal(err)
	}
	sh, _ := BuildSharded(g.Clone(), Options{Workers: 1})
	if _, err := sh.WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	// Truncations: every prefix of a valid file is invalid, and the loader
	// must say so rather than crash.
	for _, cut := range []int{1, 8, 9, 13, 21, v2.Len() / 2, v2.Len() - 1} {
		if cut < v2.Len() {
			f.Add(v2.Bytes()[:cut])
		}
	}
	// Shard-table corruptions: flip bytes around the table region.
	for _, off := range []int{17, 25, 40, 60} {
		if off < v2.Len() {
			mut := append([]byte(nil), v2.Bytes()...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := x.Graph().NumVertices()
		for v := -1; v <= n && v < 64; v++ {
			if v >= 0 && v < n {
				x.CycleCount(v)
			}
		}
		var out bytes.Buffer
		if _, err := x.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		y, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		for v := 0; v < n && v < 64; v++ {
			xl, xc := x.CycleCount(v)
			yl, yc := y.CycleCount(v)
			if xl != yl || xc != yc {
				t.Fatalf("vertex %d unstable across roundtrip: (%d,%d) vs (%d,%d)", v, xl, xc, yl, yc)
			}
		}
	})
}

// Every strict prefix of a valid v2 file must fail to parse — the loader
// may never silently accept a truncated shard section.
func TestShardedReadAllPrefixesFail(t *testing.T) {
	full := goldenBytes(t, true)
	for cut := 0; cut < len(full); cut++ {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed successfully", cut, len(full))
		}
	}
}
