package csc

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
	"repro/internal/order"
)

// assertStreamState cross-checks the sharded index against a freshly
// built monolithic index and the BFS oracle on every vertex, plus the
// shard-table invariants.
func assertStreamState(t testing.TB, x *Sharded, tag string) {
	t.Helper()
	if err := x.checkConsistent(); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	g := x.Graph()
	mono, _ := Build(g.Clone(), order.ByDegree(g), Options{})
	for v := 0; v < g.NumVertices(); v++ {
		sl, sc := x.CycleCount(v)
		ml, mc := mono.CycleCount(v)
		if sl != ml || sc != mc {
			t.Fatalf("%s: vertex %d sharded (%d,%d) != fresh monolithic (%d,%d)", tag, v, sl, sc, ml, mc)
		}
		ol, oc := bfscount.CycleCount(g, v)
		if sl != ol || sc != oc {
			t.Fatalf("%s: vertex %d sharded (%d,%d) != oracle (%d,%d)", tag, v, sl, sc, ol, oc)
		}
	}
}

// applyStreamOp decodes one (u, v, kind) triple into a maintained update:
// insert when the edge is absent, delete when present — so a random
// stream keeps exercising both directions and deliberately merges and
// splits components as cycles form and break.
func applyStreamOp(t testing.TB, x *Sharded, u, v int) {
	t.Helper()
	if u == v {
		return
	}
	if x.Graph().HasEdge(u, v) {
		if _, err := x.DeleteEdge(u, v); err != nil {
			t.Fatalf("delete (%d,%d): %v", u, v, err)
		}
	} else {
		if _, err := x.InsertEdge(u, v); err != nil {
			t.Fatalf("insert (%d,%d): %v", u, v, err)
		}
	}
}

// TestShardedUpdateStream drives randomized insert/delete streams that
// repeatedly merge and split components, asserting after every batch that
// the maintained sharded index matches a freshly built monolithic index
// and the BFS oracle on every vertex.
func TestShardedUpdateStream(t *testing.T) {
	const (
		n       = 14
		trials  = 8
		batches = 12
		perOp   = 6
	)
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		g := graph.New(n)
		// Seed with a sparse random graph so the first batches already
		// have components to split.
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		x, _ := BuildSharded(g, Options{})
		assertStreamState(t, x, "seed")
		for b := 0; b < batches; b++ {
			for k := 0; k < perOp; k++ {
				applyStreamOp(t, x, r.Intn(n), r.Intn(n))
			}
			assertStreamState(t, x, "batch")
		}
		if m, s := x.Rebuilds(); m == 0 && s == 0 && t.Failed() == false && trial == 0 {
			t.Logf("warning: trial %d exercised no merges/splits", trial)
		}
	}
}

// FuzzShardedUpdateStream feeds an arbitrary byte string as an update
// stream over a small graph: each byte pair is one endpoint pair, applied
// as insert-or-toggle-delete. After the stream, the sharded index must
// match the oracle everywhere and survive a serialization roundtrip.
func FuzzShardedUpdateStream(f *testing.F) {
	f.Add([]byte{0x01, 0x23, 0x31, 0x10, 0x02, 0x20})
	f.Add([]byte{0x01, 0x12, 0x20, 0x01, 0x34, 0x45, 0x53, 0x30})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 8
		if len(ops) > 64 {
			ops = ops[:64]
		}
		g := graph.New(n)
		x, _ := BuildSharded(g, Options{})
		for _, b := range ops {
			u, v := int(b>>4)%n, int(b&0xf)%n
			applyStreamOp(t, x, u, v)
		}
		if err := x.checkConsistent(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			sl, sc := x.CycleCount(v)
			ol, oc := bfscount.CycleCount(x.Graph(), v)
			if sl != ol || sc != oc {
				t.Fatalf("vertex %d: sharded (%d,%d) != oracle (%d,%d)", v, sl, sc, ol, oc)
			}
		}
	})
}
