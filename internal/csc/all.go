package csc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CycleCountAll evaluates SCCnt(v) for every vertex and returns the
// per-vertex lengths (bfscount.NoCycle for cycle-free vertices) and
// counts. workers sets the parallelism: 0 uses every core, and any value
// is clamped to the vertex count so tiny graphs never spawn idle
// goroutines. Queries are read-only, so this is safe as long as no update
// runs concurrently — the serving engine calls it for its startup warm
// pass before any batch applies, and the top-k monitor for its initial
// scoreboard.
func (x *Index) CycleCountAll(workers int) (lengths []int, counts []uint64) {
	return cycleCountAll(x.g.NumVertices(), workers, x.CycleCount)
}

// cycleCountAll is the shared per-vertex fan-out behind both Counter
// implementations' CycleCountAll.
func cycleCountAll(n, workers int, count func(v int) (int, uint64)) (lengths []int, counts []uint64) {
	lengths = make([]int, n)
	counts = make([]uint64, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			lengths[v], counts[v] = count(v)
		}
		return lengths, counts
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := int(next.Add(1)) - 1
				if v >= n {
					return
				}
				lengths[v], counts[v] = count(v)
			}
		}()
	}
	wg.Wait()
	return lengths, counts
}
