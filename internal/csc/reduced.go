package csc

import (
	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/label"
	"repro/internal/pll"
)

// Compact is the reduced, read-only form of a CSC index (§IV-E). The
// consecutive couple ranks guarantee Lin(v_out) mirrors Lin(v_in) shifted
// by +1 (v_out's only in-edge comes from v_in) and Lout(v_in) mirrors
// Lout(v_out) shifted by +1 — except for self entries and the cycle entry.
// SCCnt queries only ever touch Lin(v_in) and Lout(v_out), so the compact
// store keeps exactly one list per couple per side: half the label
// entries, which is why the paper reports CSC index sizes on par with
// HP-SPC despite Gb doubling the vertex count.
//
// Compact serves static queries only; dynamic maintenance requires the
// full Index.
type Compact struct {
	in  []label.List // in[v] = Lin(v_in)
	out []label.List // out[v] = Lout(v_out)
}

// Reduce builds the compact form from a full index by cloning the two
// lists each couple's query needs.
func Reduce(x *Index) *Compact {
	n := x.g.NumVertices()
	c := &Compact{
		in:  make([]label.List, n),
		out: make([]label.List, n),
	}
	for v := 0; v < n; v++ {
		c.in[v] = x.eng.In[bipartite.InVertex(v)].Clone()
		c.out[v] = x.eng.Out[bipartite.OutVertex(v)].Clone()
	}
	return c
}

// CycleCount answers SCCnt(v) from the compact store.
func (c *Compact) CycleCount(v int) (length int, count uint64) {
	d, cnt := label.Join(&c.out[v], &c.in[v])
	if d == pll.Unreachable {
		return bfscount.NoCycle, 0
	}
	return bipartite.CycleLength(d), cnt
}

// EntryCount returns the number of stored label entries.
func (c *Compact) EntryCount() int {
	total := 0
	for v := range c.in {
		total += c.in[v].Len() + c.out[v].Len()
	}
	return total
}

// Bytes returns the storage footprint (8 bytes per entry).
func (c *Compact) Bytes() int { return 8 * c.EntryCount() }

// ReducedEntryCount reports the couple-merged label size of a full index
// without materializing the compact store — the quantity Figure 9(b)
// compares against HP-SPC.
func (x *Index) ReducedEntryCount() int {
	n := x.g.NumVertices()
	total := 0
	for v := 0; v < n; v++ {
		total += x.eng.In[bipartite.InVertex(v)].Len() +
			x.eng.Out[bipartite.OutVertex(v)].Len()
	}
	return total
}

// ReducedBytes is ReducedEntryCount in bytes.
func (x *Index) ReducedBytes() int { return 8 * x.ReducedEntryCount() }
