package csc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/pll"
)

// Sharded is the SCC-partitioned form of the CSC index. Every directed
// cycle lies inside one strongly connected component, so the condensation
// is a free decomposition: trivial (single-vertex) components answer
// CycleCount = 0 with no labels at all, each non-trivial component gets
// an independent monolithic Index over its induced subgraph, and queries
// route through a vertex→shard table. Cross-component edges are kept in
// the graph but carry no labels.
//
// Dynamic updates keep the partition correct. An intra-shard edge goes
// through the shard's own INCCNT/decremental maintenance. An insertion
// that merges components (the new edge closes a path back to its tail)
// triggers a scoped rebuild of exactly the merged component; a deletion
// that splits a component rebuilds only that component's surviving
// sub-components. Everything else — cross-component inserts that close no
// cycle, deletes of label-free edges — is O(reachability check) or free.
type Sharded struct {
	g    *graph.Digraph
	opts Options

	// shards holds the live sub-indexes; slots become nil when a merge or
	// split retires a shard and are reused for new ones.
	shards []*shard
	free   []int32 // retired slot ids available for reuse

	shardOf []int32 // vertex → shard slot, -1 for trivial components
	localID []int32 // vertex → id inside its shard's subgraph

	merges, splits int // scoped-rebuild counters (diagnostics)
	batchRebuilds  int // fresh component builds performed by ApplyBatch

	// slotRebuilds counts fresh installs per shard slot (grown lazily —
	// slots past its length have seen none). Slot reuse is deliberate:
	// the per-shard gauge tracks churn at the serving slot, which is the
	// granularity /metrics exposes.
	slotRebuilds []uint64

	// Out-of-band rebuild state (deferred.go). stale marks shard slots
	// frozen at their pre-deferral answers; pendingReb is the deferral
	// that will replace them; deferThreshold remembers the last deferral
	// threshold so per-op and plain-batch entry points stay sound while a
	// deferral is pending.
	stale                       map[int32]bool
	pendingReb                  *Rebuild
	gen                         uint64
	deferThreshold              int
	oobCompleted, oobSuperseded int
}

// shard is one non-trivial SCC: its member vertices (sorted ascending —
// position is the local id), the monolithic index over the induced
// subgraph, and the ordering strategy that produced the index's hub
// order (provenance — the order itself lives in the index).
type shard struct {
	verts []int32
	idx   *Index
	strat order.Strategy
}

// BuildSharded partitions g by condensation and builds one monolithic CSC
// index per non-trivial component, in parallel across components (the
// rank-batched parallel construction is used inside a component when it
// is the only one). The index takes ownership of g.
func BuildSharded(g *graph.Digraph, opts Options) (*Sharded, pll.BuildStats) {
	start := time.Now()
	n := g.NumVertices()
	x := &Sharded{
		g:       g,
		opts:    opts,
		shardOf: make([]int32, n),
		localID: make([]int32, n),
	}
	for v := range x.shardOf {
		x.shardOf[v] = -1
		x.localID[v] = -1
	}
	comps := partition.SCC(g).NonTrivial()
	x.shards = make([]*shard, len(comps))
	for sid, verts := range comps {
		for li, v := range verts {
			x.shardOf[v] = int32(sid)
			x.localID[v] = int32(li)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One big component keeps the intra-build parallelism; many components
	// parallelize across shards with sequential inner builds instead.
	inner := opts
	outer := 1
	if len(comps) > 1 {
		inner.Workers = 1
		outer = workers
		if outer > len(comps) {
			outer = len(comps)
		}
	}
	// Schedule largest components first so the tail of the pool is short.
	sched := make([]int, len(comps))
	for i := range sched {
		sched[i] = i
	}
	sort.Slice(sched, func(a, b int) bool { return len(comps[sched[a]]) > len(comps[sched[b]]) })

	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sched) {
					return
				}
				sid := sched[i]
				x.shards[sid] = buildShard(g, comps[sid], inner)
			}
		}()
	}
	wg.Wait()

	st := x.stats()
	st.Duration = time.Since(start)
	return x, st
}

// buildShard constructs one component's sub-index over its induced
// subgraph with the component's own order under the configured strategy.
func buildShard(g *graph.Digraph, verts []int32, opts Options) *shard {
	sub := partition.Induced(g, verts)
	idx, _ := Build(sub, orderFor(sub, opts), opts)
	return &shard{verts: verts, idx: idx, strat: opts.Order}
}

// orderFor computes the hub order for one component's induced subgraph
// under the configured strategy, falling back to degree on an
// uncomputable strategy value (Hits, or an unknown byte from a hostile
// file — the order vector itself always round-trips explicitly).
func orderFor(sub *graph.Digraph, opts Options) *order.Order {
	ord, err := order.Compute(sub, opts.Order, opts.OrderSeed)
	if err != nil {
		return order.ByDegree(sub)
	}
	return ord
}

func (x *Sharded) stats() pll.BuildStats {
	var st pll.BuildStats
	for _, sh := range x.shards {
		if sh == nil {
			continue
		}
		s := sh.idx.eng.Stats()
		st.Entries += s.Entries
		st.Canonical += s.Canonical
		st.NonCanonical += s.NonCanonical
	}
	st.Bytes = 8 * st.Entries
	return st
}

// CycleCount answers SCCnt(v). Vertices in trivial components — and
// out-of-range ids — report no cycle without touching any labels.
func (x *Sharded) CycleCount(v int) (length int, count uint64) {
	if v < 0 || v >= len(x.shardOf) {
		return bfscount.NoCycle, 0
	}
	s := x.shardOf[v]
	if s < 0 {
		return bfscount.NoCycle, 0
	}
	return x.shards[s].idx.CycleCount(int(x.localID[v]))
}

// CycleCountBounded is CycleCount restricted to cycle lengths ≤ maxLen
// (same contract as Index.CycleCountBounded). Trivial-component vertices
// short-circuit without touching any labels.
func (x *Sharded) CycleCountBounded(v, maxLen int) (length int, count uint64) {
	if v < 0 || v >= len(x.shardOf) {
		return bfscount.NoCycle, 0
	}
	s := x.shardOf[v]
	if s < 0 {
		return bfscount.NoCycle, 0
	}
	return x.shards[s].idx.CycleCountBounded(int(x.localID[v]), maxLen)
}

// CycleCountAll evaluates SCCnt for every vertex (same contract as
// Index.CycleCountAll: workers 0 = all cores, clamped to the vertex
// count; read-only, so safe without concurrent updates).
func (x *Sharded) CycleCountAll(workers int) (lengths []int, counts []uint64) {
	return cycleCountAll(len(x.shardOf), workers, x.CycleCount)
}

// InsertEdge applies an edge insertion. Intra-shard edges run the shard's
// INCCNT maintenance; a cross-component edge that closes a path back to
// its tail merges components and rebuilds exactly the merged one; any
// other cross-component edge is recorded label-free.
func (x *Sharded) InsertEdge(a, b int) (pll.UpdateStats, error) {
	if x.pendingReb != nil {
		// A deferral is pending: route through the deferral-aware batch
		// path so frozen shards stay frozen and the pending region tracks
		// this edge.
		st, _, err := x.applyBatchDeferred([]EdgeOp{Ins(a, b)}, 1, x.deferThreshold)
		return st, err
	}
	if err := x.g.AddEdge(a, b); err != nil {
		return pll.UpdateStats{}, err
	}
	start := time.Now()
	if s := x.shardOf[a]; s >= 0 && s == x.shardOf[b] {
		sh := x.shards[s]
		st, err := sh.idx.InsertEdge(int(x.localID[a]), int(x.localID[b]))
		x.translateOwners(sh, &st)
		return st, err
	}
	// The new edge a→b lies on a cycle — and therefore merges components —
	// exactly when b already reaches a.
	if !partition.Reachable(x.g, b, a) {
		return pll.UpdateStats{Duration: time.Since(start)}, nil
	}
	return x.mergeRebuild(a, start), nil
}

// DeleteEdge applies an edge deletion. Cross-component and trivial edges
// are label-free; an intra-shard deletion either repairs the shard's
// labels decrementally (component intact) or rebuilds the component's
// surviving sub-components (component split).
func (x *Sharded) DeleteEdge(a, b int) (pll.UpdateStats, error) {
	if x.pendingReb != nil {
		st, _, err := x.applyBatchDeferred([]EdgeOp{Del(a, b)}, 1, x.deferThreshold)
		return st, err
	}
	if err := x.g.RemoveEdge(a, b); err != nil {
		return pll.UpdateStats{}, err
	}
	start := time.Now()
	s := x.shardOf[a]
	if s < 0 || s != x.shardOf[b] {
		return pll.UpdateStats{Duration: time.Since(start)}, nil
	}
	sh := x.shards[s]
	la, lb := int(x.localID[a]), int(x.localID[b])
	// The component survives iff a still reaches b without the removed
	// edge: every path that used a→b reroutes through the a⇝b detour, so
	// all mutual reachability is preserved. (The shard subgraph still
	// holds the edge — the shard's own DeleteEdge removes it below.)
	if partition.ReachableSkip(sh.idx.Graph(), la, lb, la, lb) {
		st, err := sh.idx.DeleteEdge(la, lb)
		x.translateOwners(sh, &st)
		return st, err
	}
	return x.splitRebuild(s, start), nil
}

// mergeRebuild replaces every component absorbed by a's new strongly
// connected component with one freshly built shard. Old shards are
// strictly nested inside the merged component (SCCs only grow under
// insertions), so the affected set is exactly the shards intersecting it.
func (x *Sharded) mergeRebuild(a int, start time.Time) pll.UpdateStats {
	merged := partition.ComponentOf(x.g, a)
	var st pll.UpdateStats
	retired := make(map[int32]struct{})
	for _, v := range merged {
		if s := x.shardOf[v]; s >= 0 {
			retired[s] = struct{}{}
		}
	}
	for s := range retired {
		st.EntriesRemoved += x.shards[s].idx.EntryCount()
		x.retire(s)
	}
	sh := buildShard(x.g, merged, x.opts)
	x.install(sh)
	x.merges++
	st.EntriesAdded = sh.idx.EntryCount()
	st.Visited = len(merged)
	st.TouchedOwners = touchAll(merged)
	st.Duration = time.Since(start)
	return st
}

// splitRebuild re-partitions one shard after a deletion disconnected it:
// every surviving non-trivial sub-component gets a fresh sub-index, and
// vertices falling out into trivial components drop their labels
// entirely.
func (x *Sharded) splitRebuild(s int32, start time.Time) pll.UpdateStats {
	old := x.shards[s]
	var st pll.UpdateStats
	st.EntriesRemoved = old.idx.EntryCount()
	x.retire(s)
	// The global graph already dropped the edge, so the partition of the
	// old member set within it is the post-delete decomposition.
	for _, comp := range partition.SCCWithin(x.g, old.verts) {
		if len(comp) < 2 {
			continue
		}
		sh := buildShard(x.g, comp, x.opts)
		x.install(sh)
		st.EntriesAdded += sh.idx.EntryCount()
	}
	x.splits++
	st.Visited = len(old.verts)
	st.TouchedOwners = touchAll(old.verts)
	st.Duration = time.Since(start)
	return st
}

// retire clears a shard slot and unmaps its vertices (they are either
// re-installed into a new shard or left trivial by the caller).
func (x *Sharded) retire(s int32) {
	for _, v := range x.shards[s].verts {
		x.shardOf[v] = -1
		x.localID[v] = -1
	}
	x.shards[s] = nil
	x.free = append(x.free, s)
}

// install places a freshly built shard into a free slot (or a new one)
// and points its vertices at it.
func (x *Sharded) install(sh *shard) {
	var s int32
	if len(x.free) > 0 {
		s = x.free[len(x.free)-1]
		x.free = x.free[:len(x.free)-1]
		x.shards[s] = sh
	} else {
		s = int32(len(x.shards))
		x.shards = append(x.shards, sh)
	}
	for li, v := range sh.verts {
		x.shardOf[v] = s
		x.localID[v] = int32(li)
	}
	for int(s) >= len(x.slotRebuilds) {
		x.slotRebuilds = append(x.slotRebuilds, 0)
	}
	x.slotRebuilds[s]++
}

// translateOwners rewrites a shard-local update's touched owners (Gb
// vertices of the shard's conversion) into Gb vertices of the global
// graph's conversion, preserving the in/out side, so consumers like the
// top-k monitor keep applying bipartite.Original unchanged.
func (x *Sharded) translateOwners(sh *shard, st *pll.UpdateStats) {
	for i, o := range st.TouchedOwners {
		gv := int(sh.verts[bipartite.Original(int(o))])
		if bipartite.IsIn(int(o)) {
			st.TouchedOwners[i] = int32(bipartite.InVertex(gv))
		} else {
			st.TouchedOwners[i] = int32(bipartite.OutVertex(gv))
		}
	}
}

// touchAll marks every vertex of a rebuilt component as touched (its
// v_in Gb id stands for the couple).
func touchAll(verts []int32) []int32 {
	out := make([]int32, len(verts))
	for i, v := range verts {
		out[i] = int32(bipartite.InVertex(int(v)))
	}
	return out
}

// AddVertex grows the graph by one isolated vertex — a fresh trivial
// component, so no shard changes.
func (x *Sharded) AddVertex() (int, error) {
	v := x.g.AddVertex()
	x.shardOf = append(x.shardOf, -1)
	x.localID = append(x.localID, -1)
	return v, nil
}

// DetachVertex removes every incident edge of v through maintained
// deletions, leaving v isolated (and trivial).
func (x *Sharded) DetachVertex(v int) (int, error) {
	return detachVertex(x.g, v, x.DeleteEdge)
}

// Graph returns the original graph. Callers must not mutate it directly.
func (x *Sharded) Graph() *graph.Digraph { return x.g }

// EntryCount sums label entries across live shards.
func (x *Sharded) EntryCount() int {
	total := 0
	for _, sh := range x.shards {
		if sh != nil {
			total += sh.idx.EntryCount()
		}
	}
	return total
}

// Bytes is the label footprint (8 bytes per entry).
func (x *Sharded) Bytes() int { return 8 * x.EntryCount() }

// RefreezeLabels re-packs every shard's thawed label lists back into
// its compressed arena, returning the total lists re-encoded.
func (x *Sharded) RefreezeLabels() int {
	total := 0
	for _, sh := range x.shards {
		if sh != nil {
			total += sh.idx.RefreezeLabels()
		}
	}
	return total
}

// CompressedBytes sums the physical compressed label footprint across
// shards (0 when labels are uncompressed).
func (x *Sharded) CompressedBytes() int {
	total := 0
	for _, sh := range x.shards {
		if sh != nil {
			total += sh.idx.CompressedBytes()
		}
	}
	return total
}

// ReducedBytes sums the couple-merged footprint across shards.
func (x *Sharded) ReducedBytes() int {
	total := 0
	for _, sh := range x.shards {
		if sh != nil {
			total += sh.idx.ReducedBytes()
		}
	}
	return total
}

// NumShards counts the live non-trivial components.
func (x *Sharded) NumShards() int {
	n := 0
	for _, sh := range x.shards {
		if sh != nil {
			n++
		}
	}
	return n
}

// TrivialVertices counts vertices outside every shard — the label-free
// share of the graph.
func (x *Sharded) TrivialVertices() int {
	n := 0
	for _, s := range x.shardOf {
		if s < 0 {
			n++
		}
	}
	return n
}

// Rebuilds reports how many scoped rebuilds dynamic updates triggered:
// component merges (insertions) and splits (deletions).
func (x *Sharded) Rebuilds() (merges, splits int) { return x.merges, x.splits }

// ShardStat is one live shard's footprint for per-shard gauges.
type ShardStat struct {
	Slot       int            // serving slot id
	Vertices   int            // member vertices
	Entries    int            // label entries
	LabelBytes int            // label footprint (8 bytes per entry)
	Rebuilds   uint64         // fresh installs this slot has served
	Stale      bool           // frozen, serving pre-deferral answers
	Order      order.Strategy // strategy that produced the shard's hub order
}

// ShardStats reports every live shard's footprint, ordered by slot —
// the scrape-time source for per-shard metrics.
func (x *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, 0, len(x.shards))
	for si, sh := range x.shards {
		if sh == nil {
			continue
		}
		entries := sh.idx.EntryCount()
		st := ShardStat{
			Slot:       si,
			Vertices:   len(sh.verts),
			Entries:    entries,
			LabelBytes: 8 * entries,
			Stale:      x.stale[int32(si)],
			Order:      sh.strat,
		}
		if si < len(x.slotRebuilds) {
			st.Rebuilds = x.slotRebuilds[si]
		}
		out = append(out, st)
	}
	return out
}

// ShardOf returns the shard slot serving v, or -1 for trivial vertices
// (tests and diagnostics).
func (x *Sharded) ShardOf(v int) int { return int(x.shardOf[v]) }

// ShardMap returns a copy of the full vertex→shard-slot table (-1 for
// trivial vertices) — the routing-table source for a cluster deployment.
func (x *Sharded) ShardMap() []int32 {
	out := make([]int32, len(x.shardOf))
	copy(out, x.shardOf)
	return out
}

// liveShards returns the live shards sorted by smallest member vertex —
// the stable order serialization and validation walk them in.
func (x *Sharded) liveShards() []*shard {
	var out []*shard
	for _, sh := range x.shards {
		if sh != nil {
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].verts[0] < out[j].verts[0] })
	return out
}

// checkConsistent validates the vertex→shard table against the shards
// (tests only).
func (x *Sharded) checkConsistent() error {
	for _, sh := range x.shards {
		if sh == nil {
			continue
		}
		for li, v := range sh.verts {
			s := x.shardOf[v]
			if s < 0 || x.shards[s] != sh || int(x.localID[v]) != li {
				return fmt.Errorf("csc: vertex %d maps to shard %d/local %d, expected %d", v, s, x.localID[v], li)
			}
		}
	}
	return nil
}
