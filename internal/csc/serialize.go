package csc

import (
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/pll"
)

// WriteTo serializes the index (the Gb labeling is self-contained; the
// original graph is reconstructed on load from the conversion structure).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	return x.eng.WriteTo(w)
}

// Read deserializes an index written by WriteTo and reconstructs the
// original graph from the bipartite conversion.
func Read(r io.Reader) (*Index, error) {
	eng, err := pll.ReadIndex(r)
	if err != nil {
		return nil, err
	}
	eng.HubFilter = bipartite.IsIn // functions do not serialize; re-install
	gb := eng.G
	if gb.NumVertices()%2 != 0 {
		return nil, fmt.Errorf("%w: odd vertex count, not a bipartite conversion", pll.ErrBadFormat)
	}
	n := gb.NumVertices() / 2
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if !gb.HasEdge(bipartite.InVertex(v), bipartite.OutVertex(v)) {
			return nil, fmt.Errorf("%w: missing couple edge for %d", pll.ErrBadFormat, v)
		}
		for _, w := range gb.Out(bipartite.OutVertex(v)) {
			if !bipartite.IsIn(int(w)) {
				return nil, fmt.Errorf("%w: V_out vertex links to V_out", pll.ErrBadFormat)
			}
			if err := g.AddEdge(v, bipartite.Original(int(w))); err != nil {
				return nil, fmt.Errorf("%w: %v", pll.ErrBadFormat, err)
			}
		}
	}
	return &Index{g: g, eng: eng}, nil
}
