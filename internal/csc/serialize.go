package csc

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/pll"
)

// Four on-disk forms exist. A monolithic Index serializes as the v1
// format ("CSCIDX01"): its Gb labeling, self-contained, with the original
// graph reconstructed from the conversion structure on load. A Sharded
// index serializes as the v2 format ("CSCIDX02", sharded_serialize.go):
// the global graph plus the shard table and one embedded v1 labeling blob
// per shard — or, when built with Options.CompressLabels, as the v3
// format ("CSCIDX03", v3.go): the same structure with each shard's labels
// as a compressed frozen arena in a flat, mmap-able layout. The v4 format
// ("CSCIDX04") is v3 plus per-shard ordering-strategy provenance, emitted
// only when a non-degree hub order needs recording (the hub orders
// themselves round-trip explicitly in every format). Read dispatches on
// the magic, so consumers — cyclehub.ReadIndex, the engine's WAL/snapshot
// recovery, the csc CLI — load any form transparently, and files written
// before sharding or compression existed keep loading.

// WriteTo serializes the index (the Gb labeling is self-contained; the
// original graph is reconstructed on load from the conversion structure).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	return x.eng.WriteTo(w)
}

// Read deserializes an index written by Index.WriteTo (v1) or
// Sharded.WriteTo (v2), dispatching on the leading magic bytes.
func Read(r io.Reader) (Counter, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pll.ErrBadFormat, err)
	}
	if string(magic) == shardedMagic {
		return readSharded(br)
	}
	if string(magic) == v3Magic || string(magic) == v4Magic {
		return readV34(br)
	}
	return readMonolithic(br)
}

// readMonolithic loads a v1 stream and reconstructs the original graph
// from the bipartite conversion.
func readMonolithic(br *bufio.Reader) (*Index, error) {
	eng, err := pll.ReadIndexFrom(br)
	if err != nil {
		return nil, err
	}
	eng.HubFilter = bipartite.IsIn // functions do not serialize; re-install
	g, err := originalFromGb(eng.G)
	if err != nil {
		return nil, err
	}
	return &Index{g: g, eng: eng}, nil
}

// originalFromGb inverts the bipartite conversion: couple edges are
// checked and dropped, every (v_out → w_in) edge becomes (v, w). It
// rejects graphs that are not a valid conversion image.
func originalFromGb(gb *graph.Digraph) (*graph.Digraph, error) {
	if gb.NumVertices()%2 != 0 {
		return nil, fmt.Errorf("%w: odd vertex count, not a bipartite conversion", pll.ErrBadFormat)
	}
	n := gb.NumVertices() / 2
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if !gb.HasEdge(bipartite.InVertex(v), bipartite.OutVertex(v)) {
			return nil, fmt.Errorf("%w: missing couple edge for %d", pll.ErrBadFormat, v)
		}
		for _, w := range gb.Out(bipartite.OutVertex(v)) {
			if !bipartite.IsIn(int(w)) {
				return nil, fmt.Errorf("%w: V_out vertex links to V_out", pll.ErrBadFormat)
			}
			if err := g.AddEdge(v, bipartite.Original(int(w))); err != nil {
				return nil, fmt.Errorf("%w: %v", pll.ErrBadFormat, err)
			}
		}
	}
	return g, nil
}
