package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// GroupConfig names one worker group's endpoints: the primary cscd and
// its optional follower (base URLs, no trailing slash).
type GroupConfig struct {
	Primary  string `json:"primary"`
	Follower string `json:"follower,omitempty"`
}

// RouterOptions configures NewRouter. The zero value gives serving
// defaults.
type RouterOptions struct {
	// ProbeInterval is the health-probe cadence per group (default
	// 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 1s).
	ProbeTimeout time.Duration
	// ProbeMisses is how many consecutive failed probes of a group's
	// active endpoint trigger failover to its follower (default 3).
	ProbeMisses int
	// RequestTimeout bounds one proxied attempt (default 2s).
	RequestTimeout time.Duration
	// RetryMax is how many extra attempts each endpoint gets after its
	// first fails with a network error or 5xx (default 1).
	RetryMax int
	// RetryBackoff is the pause before each retry, doubling per attempt
	// (default 25ms).
	RetryBackoff time.Duration
	// TableRefresh is how often the router re-fetches the shard table
	// from a live worker (default 2s). Writes can merge components and
	// turn boot-time-trivial vertices cyclic; the refresh bounds how long
	// the router's local zero-cycle answers for them can lag, the same
	// way follower reads are bounded-stale.
	TableRefresh time.Duration
	// Client performs proxied requests and probes (default: dedicated;
	// deadlines come from the timeouts above).
	Client *http.Client
	// Metrics registers the cscd_router_* families (nil: none).
	Metrics *obs.Registry
}

func (o *RouterOptions) fill() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.ProbeMisses <= 0 {
		o.ProbeMisses = 3
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.RetryMax < 0 {
		o.RetryMax = 0
	} else if o.RetryMax == 0 {
		o.RetryMax = 1
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.TableRefresh <= 0 {
		o.TableRefresh = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
}

// group is one worker group's routing state. active flips from primary
// (0) to follower (1) exactly once, at failover — the old primary is
// never failed back to automatically, since it stopped at an unknown
// sequence number and would serve a silently rewound graph.
type group struct {
	cfg         GroupConfig
	active      atomic.Int32
	primaryUp   atomic.Bool
	followerUp  atomic.Bool
	primarySeq  atomic.Uint64
	followerSeq atomic.Uint64
	misses      int // probe goroutine only
}

func (g *group) endpoints() []string {
	if g.active.Load() == 1 {
		return []string{g.cfg.Follower}
	}
	if g.cfg.Follower != "" {
		// Primary first; an unpromoted follower still answers stale reads
		// when the primary hiccups.
		return []string{g.cfg.Primary, g.cfg.Follower}
	}
	return []string{g.cfg.Primary}
}

// activeURL is the endpoint probes watch and writes target.
func (g *group) activeURL() string {
	if g.active.Load() == 1 {
		return g.cfg.Follower
	}
	return g.cfg.Primary
}

// Router fans reads to the worker group owning each vertex's shard and
// broadcasts writes to every group, with per-request deadlines, bounded
// retries with backoff, and probe-driven failover to followers. It is
// deliberately thin: no index, no labels — just the routing table, the
// group health state, and an HTTP client.
type Router struct {
	table  atomic.Pointer[Table]
	groups []*group
	opts   RouterOptions
	mux    *http.ServeMux
	start  time.Time

	requests  *obs.Counter
	trivial   *obs.Counter
	retries   *obs.Counter
	failovers *obs.Counter
	noReplica *obs.Counter
	proxyNS   *obs.Histogram

	stopOnce  func()
	stop      chan struct{}
	probeDone chan struct{}
}

// NewRouter builds a router over a placement table and the worker groups
// it references, and starts the health-probe loop. The table must have
// been built for exactly len(groups) groups.
func NewRouter(table *Table, groups []GroupConfig, opts RouterOptions) (*Router, error) {
	if table == nil {
		return nil, fmt.Errorf("dist: router needs a routing table")
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("dist: router needs at least one worker group")
	}
	if table.Groups != len(groups) {
		return nil, fmt.Errorf("dist: table placed %d groups but %d configured", table.Groups, len(groups))
	}
	opts.fill()
	r := &Router{
		opts: opts, start: time.Now(),
		requests: &obs.Counter{}, trivial: &obs.Counter{},
		retries: &obs.Counter{}, failovers: &obs.Counter{},
		noReplica: &obs.Counter{},
		proxyNS:   obs.NewHistogram(),
		stop:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	r.table.Store(table)
	for _, cfg := range groups {
		r.groups = append(r.groups, &group{cfg: cfg})
	}
	var once atomic.Bool
	r.stopOnce = func() {
		if once.CompareAndSwap(false, true) {
			close(r.stop)
		}
	}
	if reg := opts.Metrics; reg != nil {
		reg.CounterFunc("cscd_router_requests_total", "requests proxied to workers", r.requests.Load)
		reg.CounterFunc("cscd_router_trivial_local_total", "trivial-vertex reads answered locally without a proxy hop", r.trivial.Load)
		reg.CounterFunc("cscd_router_retries_total", "proxied attempts retried after a network error or 5xx", r.retries.Load)
		reg.CounterFunc("cscd_router_failovers_total", "groups failed over from primary to promoted follower", r.failovers.Load)
		reg.CounterFunc("cscd_router_no_replica_total", "requests failed because no replica of the owning group was reachable", r.noReplica.Load)
		r.proxyNS = reg.Histogram("cscd_router_proxy_seconds", "proxied request latency including retries")
		reg.Collect("cscd_router_worker_up", "1 when the worker endpoint answered the last health probe", "worker", func(emit func(string, float64)) {
			for i, g := range r.groups {
				emit(strconv.Itoa(i)+"/primary", boolGauge(g.primaryUp.Load()))
				if g.cfg.Follower != "" {
					emit(strconv.Itoa(i)+"/follower", boolGauge(g.followerUp.Load()))
				}
			}
		})
		reg.Collect("cscd_router_replication_lag_batches", "batches the group's follower trails its primary by", "group", func(emit func(string, float64)) {
			for i, g := range r.groups {
				if g.cfg.Follower == "" {
					continue
				}
				p, f := g.primarySeq.Load(), g.followerSeq.Load()
				lag := 0.0
				if p > f {
					lag = float64(p - f)
				}
				emit(strconv.Itoa(i), lag)
			}
		})
		reg.Collect("cscd_router_group_failed_over", "1 after the group failed over to its follower", "group", func(emit func(string, float64)) {
			for i, g := range r.groups {
				emit(strconv.Itoa(i), float64(g.active.Load()))
			}
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cycle/{v}", r.cycle)
	mux.HandleFunc("POST /edges", r.edges)
	mux.HandleFunc("DELETE /edges", r.edges)
	mux.HandleFunc("GET /top", r.top)
	mux.HandleFunc("GET /stats", r.stats)
	mux.HandleFunc("GET /healthz", r.healthz)
	mux.HandleFunc("GET /cluster/table", r.clusterTable)
	mux.HandleFunc("GET /metrics", r.metrics)
	r.mux = mux
	go r.probeLoop()
	return r, nil
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Handler returns the router's HTTP surface.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the probe loop.
func (r *Router) Close() error {
	r.stopOnce()
	<-r.probeDone
	return nil
}

// Failovers reports how many groups have failed over.
func (r *Router) Failovers() uint64 { return r.failovers.Load() }

// probeLoop watches every group: the active endpoint's liveness decides
// failover, and both endpoints' sequence numbers feed the replication
// lag gauge. One goroutine probes all groups each tick — cluster sizes
// here are small and a hung worker costs one bounded ProbeTimeout.
func (r *Router) probeLoop() {
	defer close(r.probeDone)
	tick := time.NewTicker(r.opts.ProbeInterval)
	defer tick.Stop()
	lastRefresh := time.Now()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			for gi, g := range r.groups {
				r.probeGroup(gi, g)
			}
			if time.Since(lastRefresh) >= r.opts.TableRefresh {
				lastRefresh = time.Now()
				r.refreshTable()
			}
		}
	}
}

// refreshTable re-fetches the shard table from the first live active
// endpoint (every group holds the full index, so any one is
// authoritative) and swaps it in atomically. Failure keeps the current
// table — routing degrades to bounded staleness, never to no table.
func (r *Router) refreshTable() {
	for _, g := range r.groups {
		up := g.primaryUp.Load()
		if g.active.Load() == 1 {
			up = g.followerUp.Load()
		}
		if !up {
			continue
		}
		tbl, err := FetchTable(g.activeURL(), len(r.groups), nil)
		if err != nil {
			continue
		}
		r.table.Store(tbl)
		return
	}
}

func (r *Router) probeGroup(gi int, g *group) {
	if seq, ok := r.probe(g.cfg.Primary + "/stats"); ok {
		g.primaryUp.Store(true)
		g.primarySeq.Store(seq)
	} else {
		g.primaryUp.Store(false)
	}
	if g.cfg.Follower != "" {
		if seq, ok := r.probe(g.cfg.Follower + "/repl/status"); ok {
			g.followerUp.Store(true)
			g.followerSeq.Store(seq)
		} else {
			g.followerUp.Store(false)
		}
	}
	activeUp := g.primaryUp.Load()
	if g.active.Load() == 1 {
		activeUp = g.followerUp.Load()
	}
	if activeUp {
		g.misses = 0
		return
	}
	g.misses++
	if g.active.Load() != 0 || g.misses < r.opts.ProbeMisses ||
		g.cfg.Follower == "" || !g.followerUp.Load() {
		return
	}
	// Primary missed ProbeMisses consecutive probes and the follower is
	// alive: promote it (replay-to-tip on the follower side) and repoint
	// the group. The promote call gets a generous deadline — it covers
	// the replay.
	ctx, cancel := context.WithTimeout(context.Background(), 10*r.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.cfg.Follower+"/repl/promote", nil)
	if err != nil {
		return
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	g.active.Store(1)
	g.misses = 0
	r.failovers.Add(1)
}

// probe fetches a JSON endpoint and extracts its "seq" field.
func (r *Router) probe(url string) (seq uint64, ok bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, false
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var st struct {
		Seq uint64 `json:"seq"`
	}
	_ = json.Unmarshal(body, &st)
	return st.Seq, true
}

// forward proxies one request body/method/path to the group's endpoints
// in order, retrying each RetryMax times with doubling backoff on
// network errors and 5xx. A non-5xx response — including a worker's 4xx
// or 429 — is the answer and is copied through verbatim. Returns false
// when every endpoint and retry failed.
func (r *Router) forward(w http.ResponseWriter, g *group, method, pathAndQuery string, body []byte) bool {
	t0 := time.Now()
	defer func() { r.proxyNS.ObserveSince(t0) }()
	r.requests.Add(1)
	for _, base := range g.endpoints() {
		backoff := r.opts.RetryBackoff
		for attempt := 0; attempt <= r.opts.RetryMax; attempt++ {
			if attempt > 0 {
				r.retries.Add(1)
				time.Sleep(backoff)
				backoff *= 2
			}
			status, hdr, respBody, err := r.attempt(base, method, pathAndQuery, body)
			if err != nil || status >= 500 {
				continue
			}
			if ct := hdr.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			if ra := hdr.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			w.WriteHeader(status)
			_, _ = w.Write(respBody)
			return true
		}
	}
	return false
}

func (r *Router) attempt(base, method, pathAndQuery string, body []byte) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+pathAndQuery, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func (r *Router) cycle(w http.ResponseWriter, req *http.Request) {
	v, err := strconv.Atoi(req.PathValue("v"))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadVertex, 0, "vertex %q is not an integer", req.PathValue("v"))
		return
	}
	t := r.table.Load()
	if v < 0 || v >= t.Vertices {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadVertex, 0, "vertex %d out of range [0,%d)", v, t.Vertices)
		return
	}
	gid, trivial := t.GroupFor(v)
	if trivial {
		// Trivial vertices have no labels on any worker: the answer is
		// structurally zero cycles, served from the routing tier itself.
		r.trivial.Add(1)
		writeJSON(w, http.StatusOK, serve.CycleJSON{Vertex: v})
		return
	}
	if gid < 0 {
		r.noReplica.Add(1)
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeNoReplica, 1, "vertex %d's shard has no assigned worker group", v)
		return
	}
	path := "/cycle/" + strconv.Itoa(v)
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	if !r.forward(w, r.groups[gid], http.MethodGet, path, nil) {
		r.noReplica.Add(1)
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeNoReplica, 1, "no replica of worker group %d reachable", gid)
	}
}

// edges broadcasts the batch to every worker group: all groups hold the
// full index, so every group must see every edge. The response is the
// last group's on success. A group answering 4xx/429/503 short-circuits
// with that response — the client fixes or retries the whole broadcast,
// which is idempotent because workers coalesce redundant ops. A group
// with no reachable replica yields 503 no_replica.
func (r *Router) edges(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 16<<20))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadBody, 0, "bad body: %v", err)
		return
	}
	path := "/edges"
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	for gi, g := range r.groups {
		last := gi == len(r.groups)-1
		if last {
			if !r.forward(w, g, req.Method, path, body) {
				r.noReplica.Add(1)
				serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeNoReplica, 1, "no replica of worker group %d reachable", gi)
			}
			return
		}
		status, _, respBody, ferr := r.broadcastOne(g, req.Method, path, body)
		if ferr != nil {
			r.noReplica.Add(1)
			serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeNoReplica, 1, "no replica of worker group %d reachable", gi)
			return
		}
		if status >= 400 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write(respBody)
			return
		}
	}
}

// broadcastOne delivers a write to one group with the same
// endpoint/retry schedule forward uses, returning the response instead
// of copying it out.
func (r *Router) broadcastOne(g *group, method, pathAndQuery string, body []byte) (int, http.Header, []byte, error) {
	r.requests.Add(1)
	var lastErr error = fmt.Errorf("no endpoints")
	for _, base := range g.endpoints() {
		backoff := r.opts.RetryBackoff
		for attempt := 0; attempt <= r.opts.RetryMax; attempt++ {
			if attempt > 0 {
				r.retries.Add(1)
				time.Sleep(backoff)
				backoff *= 2
			}
			status, hdr, respBody, err := r.attempt(base, method, pathAndQuery, body)
			if err != nil || status >= 500 {
				if err == nil {
					err = fmt.Errorf("status %d", status)
				}
				lastErr = err
				continue
			}
			return status, hdr, respBody, nil
		}
	}
	return 0, nil, nil, lastErr
}

// top forwards to group 0's active endpoint — every group applies every
// write, so any worker's top-k is the global one.
func (r *Router) top(w http.ResponseWriter, req *http.Request) {
	if !r.forward(w, r.groups[0], http.MethodGet, "/top", nil) {
		r.noReplica.Add(1)
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeNoReplica, 1, "no replica of worker group 0 reachable")
	}
}

// RouterGroupJSON is one group's health in /stats, /healthz and
// /cluster/table responses.
type RouterGroupJSON struct {
	Group       int    `json:"group"`
	Primary     string `json:"primary"`
	Follower    string `json:"follower,omitempty"`
	Active      string `json:"active"` // "primary" | "follower"
	PrimaryUp   bool   `json:"primary_up"`
	FollowerUp  bool   `json:"follower_up,omitempty"`
	PrimarySeq  uint64 `json:"primary_seq"`
	FollowerSeq uint64 `json:"follower_seq,omitempty"`
	LagBatches  uint64 `json:"lag_batches"`
}

func (r *Router) groupsJSON() []RouterGroupJSON {
	out := make([]RouterGroupJSON, 0, len(r.groups))
	for i, g := range r.groups {
		gj := RouterGroupJSON{
			Group: i, Primary: g.cfg.Primary, Follower: g.cfg.Follower,
			Active:     "primary",
			PrimaryUp:  g.primaryUp.Load(),
			FollowerUp: g.followerUp.Load(),
			PrimarySeq: g.primarySeq.Load(), FollowerSeq: g.followerSeq.Load(),
		}
		if g.active.Load() == 1 {
			gj.Active = "follower"
		}
		if gj.PrimarySeq > gj.FollowerSeq {
			gj.LagBatches = gj.PrimarySeq - gj.FollowerSeq
		}
		out = append(out, gj)
	}
	return out
}

func (r *Router) stats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"router":         true,
		"groups":         r.groupsJSON(),
		"requests":       r.requests.Load(),
		"trivial_local":  r.trivial.Load(),
		"retries":        r.retries.Load(),
		"failovers":      r.failovers.Load(),
		"no_replica":     r.noReplica.Load(),
		"uptime_seconds": time.Since(r.start).Seconds(),
	})
}

// healthz reports the router's view of the cluster: ok when every group
// has a reachable active endpoint, degraded otherwise. ?ready=1 turns
// degraded into 503 so load balancers drain a router that cannot answer
// for part of the vertex space.
func (r *Router) healthz(w http.ResponseWriter, req *http.Request) {
	status := "ok"
	for _, g := range r.groups {
		up := g.primaryUp.Load()
		if g.active.Load() == 1 {
			up = g.followerUp.Load()
		} else if !up && g.followerUp.Load() {
			// Primary down but follower still answering stale reads.
			status = "degraded"
			continue
		}
		if !up {
			status = "degraded"
		}
	}
	code := http.StatusOK
	if ready, _ := strconv.ParseBool(req.URL.Query().Get("ready")); ready && status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "groups": r.groupsJSON()})
}

func (r *Router) clusterTable(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"table":  r.table.Load(),
		"groups": r.groupsJSON(),
	})
}

func (r *Router) metrics(w http.ResponseWriter, req *http.Request) {
	reg := r.opts.Metrics
	if reg == nil {
		serve.WriteError(w, http.StatusNotFound, serve.CodeNotFound, 0, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}
