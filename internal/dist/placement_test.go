package dist

import (
	"reflect"
	"testing"

	"repro/internal/csc"
)

func stats(labelBytes ...int) []csc.ShardStat {
	out := make([]csc.ShardStat, len(labelBytes))
	for i, b := range labelBytes {
		out[i] = csc.ShardStat{Slot: i, LabelBytes: b}
	}
	return out
}

// Every slot lands in exactly one group, and the LPT greedy keeps the
// heaviest group within a sane bound of the mean.
func TestPlanCoversAndBalances(t *testing.T) {
	st := stats(1000, 900, 10, 10, 10, 800, 50, 40)
	plan := Plan(st, 3)
	if len(plan) != 3 {
		t.Fatalf("got %d groups, want 3", len(plan))
	}
	seen := map[int]int{}
	loads := make([]int, 3)
	for g, slots := range plan {
		for _, s := range slots {
			seen[s]++
			loads[g] += st[s].LabelBytes
		}
	}
	if len(seen) != len(st) {
		t.Fatalf("placed %d slots, want %d", len(seen), len(st))
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("slot %d placed %d times", s, n)
		}
	}
	// The three heavy shards (1000, 900, 800) dominate: LPT must put them
	// in three different groups.
	var total, max int
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if max >= 1000+800 {
		t.Fatalf("two heavy shards share a group: loads %v", loads)
	}
	if got := Plan(st, 3); !reflect.DeepEqual(got, plan) {
		t.Fatal("placement is not deterministic")
	}
}

func TestPlanDegenerateInputs(t *testing.T) {
	if got := Plan(nil, 3); len(got) != 3 {
		t.Fatalf("empty stats: got %d groups", len(got))
	}
	// More groups than shards: extra groups stay empty, shards spread.
	plan := Plan(stats(5, 5), 4)
	nonEmpty := 0
	for _, slots := range plan {
		if len(slots) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("2 shards over 4 groups: %d non-empty groups, want 2", nonEmpty)
	}
	// Zero-byte shards still spread rather than all landing on group 0.
	plan = Plan(stats(0, 0, 0, 0), 2)
	if len(plan[0]) != 2 || len(plan[1]) != 2 {
		t.Fatalf("zero-byte shards did not spread: %v", plan)
	}
}

func TestBuildTableAndGroupFor(t *testing.T) {
	// Vertices: 0,1 → slot 0; 2 → slot 1; 3 trivial; 4 → slot 2 (no
	// stats row → unowned).
	shardOf := []int32{0, 0, 1, -1, 2}
	tbl := BuildTable(shardOf, stats(100, 50), 2)
	if tbl.Vertices != 5 || tbl.Groups != 2 {
		t.Fatalf("table header %d/%d", tbl.Vertices, tbl.Groups)
	}
	if g, trivial := tbl.GroupFor(3); !trivial || g != -1 {
		t.Fatalf("trivial vertex: got (%d,%v)", g, trivial)
	}
	if g, trivial := tbl.GroupFor(4); trivial || g != -1 {
		t.Fatalf("unowned slot: got (%d,%v)", g, trivial)
	}
	if g, _ := tbl.GroupFor(-1); g != -1 {
		t.Fatal("negative vertex routed")
	}
	if g, _ := tbl.GroupFor(5); g != -1 {
		t.Fatal("out-of-range vertex routed")
	}
	g0, _ := tbl.GroupFor(0)
	g1, _ := tbl.GroupFor(1)
	g2, _ := tbl.GroupFor(2)
	if g0 != g1 {
		t.Fatal("same shard routed to different groups")
	}
	if g0 == g2 {
		t.Fatal("the two shards should spread over the two groups")
	}
}
