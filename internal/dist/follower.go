package dist

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ErrPromoted is returned by replication appends after the follower was
// promoted: the stream is severed, and a zombie primary that keeps
// shipping must learn its records are no longer being accepted.
var ErrPromoted = errors.New("dist: follower promoted, replication stream severed")

// ErrPromoting is returned while a promotion's replay-to-tip is still
// running.
var ErrPromoting = errors.New("dist: promotion in progress")

// FollowerOptions configures OpenFollower.
type FollowerOptions struct {
	// SnapshotEvery writes a follower snapshot after that many applied
	// records (default 256; negative disables). Frequent snapshots keep
	// the promotion replay short — promotion is replay-to-tip, so the
	// snapshot cadence bounds the failover blackout window.
	SnapshotEvery int
	// Metrics registers the cscd_repl_follower_* families (nil: none).
	Metrics *obs.Registry
}

// Follower is the receiving end of WAL shipping: it owns a store
// directory of its own, appends every shipped record to its local WAL
// before replaying it into an in-memory index, snapshots periodically,
// and serves flagged stale reads meanwhile. Promote closes the store and
// reopens the directory through engine.Open — the existing recovery path
// (snapshot + WAL replay, torn-tail repair included) brings the new
// engine to the follower's durable tip.
type Follower struct {
	dir       string
	bootstrap func() (csc.Counter, error)
	opts      FollowerOptions

	mu        sync.RWMutex
	st        *engine.Store
	ix        csc.Counter
	n         int
	seq       uint64
	sinceSnap int
	promoting bool
	promoted  bool
	eng       *engine.Engine

	applied *obs.Counter // records replayed
	appends *obs.Counter // /repl/append requests accepted
	skipped *obs.Counter // duplicate records skipped (idempotent re-ships)
	snaps   *obs.Counter
}

// OpenFollower opens (or recovers) a follower over its own store
// directory. bootstrap must be deterministic and produce the same
// initial index as the primary's bootstrap — the shipped WAL records are
// deltas against it. It is retained for promotion, where engine.Open
// replays the follower's durable state through the same function.
func OpenFollower(dir string, bootstrap func() (csc.Counter, error), opts FollowerOptions) (*Follower, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 256
	}
	st, err := engine.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	ix, seq, err := st.Recover(bootstrap)
	if err != nil {
		st.Close()
		return nil, err
	}
	f := &Follower{
		dir: dir, bootstrap: bootstrap, opts: opts,
		st: st, ix: ix, n: ix.Graph().NumVertices(), seq: seq,
		applied: &obs.Counter{}, appends: &obs.Counter{},
		skipped: &obs.Counter{}, snaps: &obs.Counter{},
	}
	if reg := opts.Metrics; reg != nil {
		reg.GaugeFunc("cscd_repl_follower_seq", "sequence number the follower has replayed through", func() float64 {
			return float64(f.Seq())
		})
		reg.GaugeFunc("cscd_repl_follower_promoted", "1 after this follower was promoted to primary", func() float64 {
			if f.Promoted() {
				return 1
			}
			return 0
		})
		reg.CounterFunc("cscd_repl_records_applied_total", "shipped WAL records replayed into the follower index", f.applied.Load)
		reg.CounterFunc("cscd_repl_records_skipped_total", "duplicate shipped records skipped (idempotent re-delivery)", f.skipped.Load)
		reg.CounterFunc("cscd_repl_appends_total", "replication append requests accepted", f.appends.Load)
		reg.CounterFunc("cscd_repl_follower_snapshots_total", "follower snapshots written", f.snaps.Load)
	}
	return f, nil
}

// Seq returns the last replayed sequence number.
func (f *Follower) Seq() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.seq
}

// Promoted reports whether Promote has completed.
func (f *Follower) Promoted() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.promoted
}

// NumVertices returns the follower index's vertex count.
func (f *Follower) NumVertices() int { return f.n }

// CycleCount answers SCCnt(v) from the follower's replayed state — a
// stale read: correct as of Seq, which may trail the primary's tip.
func (f *Follower) CycleCount(v int) (length int, count uint64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if v < 0 || v >= f.n {
		return bfscount.NoCycle, 0
	}
	return f.ix.CycleCount(v)
}

// ApplyStream decodes and replays a stream of concatenated WAL records —
// the /repl/append request body. Records at or below the current
// sequence number are skipped, which makes whole-buffer re-delivery
// after a failed ship idempotent. Each new record is appended to the
// follower's own WAL before it mutates the index, so the follower's
// durable state is always a replayable prefix. Returns the sequence
// number replayed through and the count of newly applied records; a
// decode failure or an unknown op kind rejects the remainder without
// touching it.
func (f *Follower) ApplyStream(data []byte) (seq uint64, applied int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted || f.promoting {
		return f.seq, 0, ErrPromoted
	}
	off := 0
	for off < len(data) {
		recSeq, ops, recLen, ok := engine.DecodeWALRecord(data[off:])
		if !ok {
			return f.seq, applied, fmt.Errorf("dist: malformed replication record at offset %d", off)
		}
		off += recLen
		if recSeq <= f.seq {
			f.skipped.Add(1)
			continue
		}
		batch, cerr := edgeOps(ops)
		if cerr != nil {
			return f.seq, applied, cerr
		}
		if aerr := f.st.Append(recSeq, ops); aerr != nil {
			return f.seq, applied, fmt.Errorf("dist: follower WAL append: %w", aerr)
		}
		if _, berr := f.ix.ApplyBatch(batch, 1); berr != nil {
			// A batch the primary applied cannot fail wholesale unless the
			// follower diverged; apply per-op so one bad op cannot wedge the
			// stream, mirroring the engine's own degraded path.
			for _, op := range ops {
				if op.Kind == engine.OpInsert {
					_, _ = f.ix.InsertEdge(int(op.A), int(op.B))
				} else {
					_, _ = f.ix.DeleteEdge(int(op.A), int(op.B))
				}
			}
		}
		f.seq = recSeq
		applied++
		f.applied.Add(1)
		f.maybeSnapshotLocked()
	}
	if applied > 0 || off > 0 {
		f.appends.Add(1)
	}
	return f.seq, applied, nil
}

// maybeSnapshotLocked writes a follower snapshot on the SnapshotEvery
// cadence. Failure is tolerated: the WAL already holds every record, so
// a missed snapshot only lengthens the next recovery.
func (f *Follower) maybeSnapshotLocked() {
	f.sinceSnap++
	if f.opts.SnapshotEvery <= 0 || f.sinceSnap < f.opts.SnapshotEvery {
		return
	}
	if err := f.st.WriteSnapshot(f.seq, f.ix); err == nil {
		f.snaps.Add(1)
	}
	f.sinceSnap = 0
}

// Promote turns the follower into a serving primary: the replication
// stream is severed (appends return ErrPromoted from here on), the
// store's WAL lock is released, and the directory is reopened through
// engine.Open — replay-to-tip through the standard recovery path, torn
// tails repaired. Reads keep serving the follower's flagged stale
// answers throughout the replay; only when the engine is up does the
// caller swap its handler. opts configures the promoted engine
// (typically the follower's metrics registry, so one scrape covers both
// lives). Idempotent: a second call returns the already-promoted engine.
func (f *Follower) Promote(opts engine.Options) (*engine.Engine, error) {
	f.mu.Lock()
	if f.promoted {
		eng := f.eng
		f.mu.Unlock()
		return eng, nil
	}
	if f.promoting {
		f.mu.Unlock()
		return nil, ErrPromoting
	}
	f.promoting = true
	// Snapshot before closing: promotion replay then starts at the tip,
	// making the blackout window the snapshot write plus process spin-up
	// instead of a full WAL replay. Best-effort — failure just replays
	// more WAL.
	if f.sinceSnap > 0 && f.opts.SnapshotEvery >= 0 {
		if err := f.st.WriteSnapshot(f.seq, f.ix); err == nil {
			f.snaps.Add(1)
			f.sinceSnap = 0
		}
	}
	err := f.st.Close() // releases the WAL flock for engine.Open
	f.mu.Unlock()
	if err != nil {
		f.mu.Lock()
		f.promoting = false
		f.mu.Unlock()
		return nil, fmt.Errorf("dist: promote: close follower store: %w", err)
	}
	// No lock held: stale reads keep answering from f.ix while the new
	// engine recovers from disk (it builds its own index; f.ix is not
	// touched).
	eng, err := engine.Open(f.dir, f.bootstrap, opts)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.promoting = false
	if err != nil {
		return nil, fmt.Errorf("dist: promote: reopen %s: %w", f.dir, err)
	}
	f.promoted = true
	f.eng = eng
	return eng, nil
}

// Engine returns the promoted engine (nil before Promote succeeds).
func (f *Follower) Engine() *engine.Engine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eng
}

// Close shuts the follower down. Before promotion it closes the store
// (flushing nothing — every accepted record is already WAL-durable);
// after promotion it closes the promoted engine.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.eng != nil {
		eng := f.eng
		f.eng = nil
		return eng.Close()
	}
	if f.promoted || f.promoting {
		return nil
	}
	f.promoted = true // reject further appends
	return f.st.Close()
}

// edgeOps converts wire ops to the index's batch representation,
// rejecting unknown kinds — a corrupt kind byte must fail the stream,
// not replay as a silent insert.
func edgeOps(ops []engine.Op) ([]csc.EdgeOp, error) {
	out := make([]csc.EdgeOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case engine.OpInsert:
			out[i] = csc.EdgeOp{Kind: csc.OpInsert, A: op.A, B: op.B}
		case engine.OpDelete:
			out[i] = csc.EdgeOp{Kind: csc.OpDelete, A: op.A, B: op.B}
		default:
			return nil, fmt.Errorf("dist: unknown op kind %d in shipped record", op.Kind)
		}
	}
	return out, nil
}
