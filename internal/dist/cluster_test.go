package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/faultstore"
	"repro/internal/graph"
	"repro/internal/serve"
)

// clusterBase is the deterministic bootstrap graph every node of the
// test cluster (and the BFS oracle) starts from: a triangle, a 2-cycle,
// and trivial tail vertices the router must answer locally.
func clusterBase() *graph.Digraph {
	g := graph.New(12)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g
}

func clusterBoot() (csc.Counter, error) {
	x, _ := csc.BuildSharded(clusterBase(), csc.Options{})
	return x, nil
}

// postEdge sends one insert through the router with flush=1 (applied,
// WAL-durable, and shipped before the 200 comes back).
func postEdge(t *testing.T, url string, a, b int) int {
	t.Helper()
	body, _ := json.Marshal(serve.EdgesRequest{Edges: [][2]int{{a, b}}})
	resp, err := http.Post(url+"/edges?flush=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var out serve.EdgesResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode == http.StatusOK && out.Enqueued != 1 {
		t.Fatalf("insert (%d,%d): 200 but enqueued %d", a, b, out.Enqueued)
	}
	return resp.StatusCode
}

// TestClusterSurvivesWorkerKill is the kill-a-worker drill: a primary
// with WAL shipping, its follower, and a router in front. The primary's
// store crashes mid-batch (faultstore freezes all its I/O) and its HTTP
// surface goes dark; the router must keep answering reads through the
// follower during the blackout, promote it, resume taking writes, and —
// at quiesce — agree exactly with a BFS oracle replaying every
// acknowledged write. The batch poisoned by the crash was never
// acknowledged as applied durably and must be absent everywhere.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	// --- primary: engine over a fault-injecting store, shipping to the follower
	fio := faultstore.New()
	f, err := OpenFollower(t.TempDir(), clusterBoot, FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs := NewFollowerServer(f, engine.Options{FlushInterval: -1}, serve.Options{}, nil)
	fsrv := httptest.NewServer(fs)
	defer fsrv.Close()

	ship := NewShipper(fsrv.URL, ShipperOptions{RetryInterval: 10 * time.Millisecond})
	prim, err := engine.OpenIO(t.TempDir(), fio, clusterBoot, engine.Options{
		FlushInterval: -1,
		WALRetry:      0,
		Replication:   ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	var primDown atomic.Bool
	primHandler := serve.Handler(prim, nil, 0)
	psrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if primDown.Load() {
			// The process is dead: connections go nowhere.
			panic(http.ErrAbortHandler)
		}
		primHandler.ServeHTTP(w, r)
	}))
	defer psrv.Close()

	// --- router over the one group, probing fast
	shardOf, stats, ok := prim.ShardTable()
	if !ok {
		t.Fatal("primary index is not sharded")
	}
	table := BuildTable(shardOf, stats, 1)
	r, err := NewRouter(table, []GroupConfig{{Primary: psrv.URL, Follower: fsrv.URL}}, RouterOptions{
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		ProbeMisses:   2,
		RetryBackoff:  time.Millisecond,
		TableRefresh:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()

	// The oracle replays every acknowledged write on a plain graph.
	oracle := clusterBase()
	ack := func(a, b int) {
		if err := oracle.AddEdge(a, b); err != nil {
			t.Fatalf("oracle insert (%d,%d): %v", a, b, err)
		}
	}

	// --- phase A: writes through the router while everything is healthy.
	// Close a 4-cycle 5→6→7→8→5 and chord the triangle.
	phaseA := [][2]int{{5, 6}, {6, 7}, {7, 8}, {8, 5}, {1, 0}}
	for _, e := range phaseA {
		if code := postEdge(t, rsrv.URL, e[0], e[1]); code != http.StatusOK {
			t.Fatalf("healthy write %v: status %d", e, code)
		}
		ack(e[0], e[1])
	}
	waitFor(t, "replication to be current", func() bool { return ship.Lag() == 0 && f.Seq() == prim.Seq() })
	// Vertices 5–8 were trivial at boot; the router's periodic table
	// refresh must absorb the merge before it can route reads for them.
	waitFor(t, "table refresh to absorb the new 4-cycle", func() bool {
		g, _ := r.table.Load().GroupFor(5)
		return g == 0
	})

	// --- kill: the next WAL write crashes the store mid-batch (a torn
	// half-record on disk), the batch is dropped un-acked, and the
	// process goes dark.
	fio.Inject(faultstore.Fault{Point: faultstore.WALWrite, Crash: true, TornBytes: 7})
	poisonedCode := postEdge(t, rsrv.URL, 9, 10)
	// Whatever the wire said, the batch was not durably applied: it is
	// excluded from the oracle. It must never surface on the follower.
	t.Logf("poisoned write answered %d", poisonedCode)
	killedAt := time.Now()
	primDown.Store(true)

	// --- blackout: reads must keep answering (stale, via the follower).
	for _, v := range []int{0, 5, 11} {
		status, out := getCycle(t, rsrv.URL, v)
		if status != http.StatusOK {
			t.Fatalf("read of %d during blackout: status %d", v, status)
		}
		if v == 5 && (!out.Exists || out.Length != 4) {
			t.Fatalf("blackout read of 5: %+v, want the 4-cycle", out)
		}
	}

	// --- failover: the router promotes the follower and repoints.
	waitFor(t, "failover", func() bool { return r.Failovers() == 1 })
	if !f.Promoted() {
		t.Fatal("router failed over without promoting the follower")
	}

	// --- phase B: writes flow again, now to the promoted follower.
	var blackout time.Duration
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := postEdge(t, rsrv.URL, 10, 11); code == http.StatusOK {
			blackout = time.Since(killedAt)
			ack(10, 11)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never resumed after failover")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("write blackout window: %s", blackout)
	if !raceEnabled && blackout > 5*time.Second {
		t.Fatalf("blackout window %s, want < 5s", blackout)
	}
	for _, e := range [][2]int{{11, 9}, {9, 10}} { // close 9→10→11→9
		if code := postEdge(t, rsrv.URL, e[0], e[1]); code != http.StatusOK {
			t.Fatalf("post-failover write %v: status %d", e, code)
		}
		ack(e[0], e[1])
	}

	// The 9→10→11 component is new since the boot-time table; wait for a
	// refresh (now sourced from the promoted follower) to route it.
	waitFor(t, "table refresh to absorb the 9→10→11 component", func() bool {
		g, _ := r.table.Load().GroupFor(9)
		return g == 0
	})

	// --- reconcile at quiesce: every vertex answers exactly what a BFS
	// over the acknowledged-writes oracle computes. No acked write lost,
	// no un-acked write resurrected.
	for v := 0; v < oracle.NumVertices(); v++ {
		wantL, wantC := bfscount.CycleCount(oracle, v)
		status, out := getCycle(t, rsrv.URL, v)
		if status != http.StatusOK {
			t.Fatalf("reconcile read of %d: status %d", v, status)
		}
		gotL, gotC := -1, uint64(0)
		if out.Exists {
			gotL, gotC = out.Length, out.Count
		}
		if wantL == bfscount.NoCycle {
			if out.Exists {
				t.Fatalf("vertex %d: cluster reports a cycle (%d,%d), oracle none", v, gotL, gotC)
			}
			continue
		}
		if gotL != wantL || gotC != wantC {
			t.Fatalf("vertex %d: cluster (%d,%d), oracle (%d,%d)", v, gotL, gotC, wantL, wantC)
		}
	}

	// The dead primary's shutdown barrier reports its injected error; the
	// store is already broken, so just make sure it terminates.
	_ = prim.Close()
	_ = fmt.Sprintf("%v", poisonedCode)
}
