// Package dist is the clustering layer over the serving engine: shard
// placement, the vertex→shard→worker routing table, WAL shipping from a
// primary to its follower, follower replay/promotion, and the
// failover-aware router that fronts a multi-process cscd deployment.
//
// The SCC-sharded index makes components fully independent, so the unit
// of distribution is the shard slot. A coordinator computes a
// size-balanced placement of slots onto worker groups (Plan), the router
// fans GET /cycle/{v} to the group owning v's slot (trivial vertices —
// no slot, zero cycles — answer locally), and every worker group is a
// primary plus an optional follower kept current by synchronous WAL
// shipping (Shipper → Follower). When a primary stops answering health
// probes the router promotes the follower — replay-to-tip through the
// engine's existing recovery path — and repoints the group, so failover
// is a replay-and-repoint, never a rebuild.
//
// Writes are broadcast: every worker group holds the full index and
// applies every edge batch, so an edge whose endpoints' components merge
// across groups stays correct everywhere, and placement only governs
// which group answers reads for which vertices. Broadcast retries are
// safe because the engine coalesces redundant ops (inserting a present
// edge is a no-op). True write partitioning with cross-group two-phase
// commit remains future work (ROADMAP).
package dist

import (
	"sort"

	"repro/internal/csc"
)

// Plan assigns shard slots to nGroups worker groups, balancing the
// per-shard label-byte footprint with the LPT greedy rule: heaviest
// shard first, each onto the currently lightest group. Deterministic —
// ties break toward the lower slot id and the lower group id — so every
// node that sees the same ShardStats computes the same placement.
func Plan(stats []csc.ShardStat, nGroups int) [][]int {
	if nGroups < 1 {
		nGroups = 1
	}
	ordered := make([]csc.ShardStat, len(stats))
	copy(ordered, stats)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].LabelBytes != ordered[j].LabelBytes {
			return ordered[i].LabelBytes > ordered[j].LabelBytes
		}
		return ordered[i].Slot < ordered[j].Slot
	})
	groups := make([][]int, nGroups)
	load := make([]int64, nGroups)
	for _, st := range ordered {
		best := 0
		for g := 1; g < nGroups; g++ {
			if load[g] < load[best] {
				best = g
			}
		}
		groups[best] = append(groups[best], st.Slot)
		// The +1 spreads zero-byte shards round-robin instead of piling
		// them all onto one group.
		load[best] += int64(st.LabelBytes) + 1
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}
