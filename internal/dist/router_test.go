package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker is a scripted cscd stand-in: it answers /cycle/{v} with its
// own name, /stats with a fixed seq, and records request paths.
type fakeWorker struct {
	name     string
	seq      uint64
	srv      *httptest.Server
	hits     atomic.Int64
	edgeHits atomic.Int64
	fail     atomic.Bool // 500 every request when set
}

func newFakeWorker(name string, seq uint64) *fakeWorker {
	w := &fakeWorker{name: name, seq: seq}
	w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w.fail.Load() {
			http.Error(rw, "boom", http.StatusInternalServerError)
			return
		}
		switch {
		case strings.HasPrefix(r.URL.Path, "/cycle/"):
			w.hits.Add(1)
			rw.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(rw, `{"vertex":%s,"worker":%q}`, strings.TrimPrefix(r.URL.Path, "/cycle/"), w.name)
		case r.URL.Path == "/edges":
			w.edgeHits.Add(1)
			io.Copy(io.Discard, r.Body)
			fmt.Fprintf(rw, `{"enqueued":1,"worker":%q}`, w.name)
		case r.URL.Path == "/stats" || r.URL.Path == "/repl/status":
			fmt.Fprintf(rw, `{"seq":%d}`, w.seq)
		default:
			http.NotFound(rw, r)
		}
	}))
	return w
}

func (w *fakeWorker) Close() { w.srv.Close() }

// testTable: vertices 0,1 → slot 0 → group 0; vertex 2 → slot 1 →
// group 1; vertex 3 trivial.
func testTable(groups int) *Table {
	return BuildTable([]int32{0, 0, 1, -1}, stats(100, 50), groups)
}

func routerGet(t *testing.T, r *Router, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var body map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	return rec.Code, body
}

// Reads route to the group owning the vertex's shard, trivial vertices
// answer locally with zero proxy hops, out-of-range is a 400, and writes
// broadcast to every group.
func TestRouterRoutesAndBroadcasts(t *testing.T) {
	w0 := newFakeWorker("w0", 5)
	defer w0.Close()
	w1 := newFakeWorker("w1", 5)
	defer w1.Close()

	tbl := testTable(2)
	r, err := NewRouter(tbl, []GroupConfig{{Primary: w0.srv.URL}, {Primary: w1.srv.URL}}, RouterOptions{
		ProbeInterval: time.Hour, // probes irrelevant here
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Vertices 0 and 2 live in different groups: each read must land on
	// its owner, whichever group that is.
	_, b0 := routerGet(t, r, "/cycle/0")
	_, b2 := routerGet(t, r, "/cycle/2")
	if b0["worker"] == nil || b2["worker"] == nil || b0["worker"] == b2["worker"] {
		t.Fatalf("reads not partitioned: %v vs %v", b0["worker"], b2["worker"])
	}

	status, body := routerGet(t, r, "/cycle/3")
	if status != http.StatusOK || body["exists"] == true {
		t.Fatalf("trivial vertex: status %d body %v", status, body)
	}
	if got := w0.hits.Load() + w1.hits.Load(); got != 2 {
		t.Fatalf("trivial vertex hit a worker: %d proxied reads, want 2", got)
	}

	status, body = routerGet(t, r, "/cycle/99")
	if status != http.StatusBadRequest || body["code"] != "bad_vertex" {
		t.Fatalf("out-of-range: status %d body %v", status, body)
	}
	status, body = routerGet(t, r, "/cycle/zzz")
	if status != http.StatusBadRequest || body["code"] != "bad_vertex" {
		t.Fatalf("non-integer: status %d body %v", status, body)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/edges", strings.NewReader(`{"edges":[[0,1]]}`))
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("broadcast write: status %d body %s", rec.Code, rec.Body)
	}
	if w0.edgeHits.Load() != 1 || w1.edgeHits.Load() != 1 {
		t.Fatalf("write not broadcast: w0=%d w1=%d", w0.edgeHits.Load(), w1.edgeHits.Load())
	}
}

// A failing primary falls through to the follower within the same
// request (bounded retries, then next endpoint); with every replica
// down the router answers 503 with the machine-readable no_replica code.
func TestRouterRetryFallbackAndNoReplica(t *testing.T) {
	prim := newFakeWorker("prim", 9)
	defer prim.Close()
	fol := newFakeWorker("fol", 9)
	defer fol.Close()
	prim.fail.Store(true)

	r, err := NewRouter(testTable(1), []GroupConfig{{Primary: prim.srv.URL, Follower: fol.srv.URL}}, RouterOptions{
		ProbeInterval:  time.Hour,
		RequestTimeout: time.Second,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	status, body := routerGet(t, r, "/cycle/0")
	if status != http.StatusOK || body["worker"] != "fol" {
		t.Fatalf("fallback read: status %d body %v", status, body)
	}

	fol.fail.Store(true)
	status, body = routerGet(t, r, "/cycle/0")
	if status != http.StatusServiceUnavailable || body["code"] != "no_replica" {
		t.Fatalf("all replicas down: status %d body %v", status, body)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/edges", strings.NewReader(`{"edges":[[0,1]]}`)))
	var ebody map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &ebody)
	if rec.Code != http.StatusServiceUnavailable || ebody["code"] != "no_replica" {
		t.Fatalf("broadcast with group down: status %d body %v", rec.Code, ebody)
	}
}

// Probe-driven failover: when the primary stops answering probes and the
// follower is alive, the router promotes the follower, repoints the
// group, counts the failover, and keeps answering reads.
func TestRouterFailsOverToFollower(t *testing.T) {
	prim := newFakeWorker("prim", 3)
	fol := newFakeWorker("fol", 3)
	defer fol.Close()

	var promotes atomic.Int64
	folFront := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/repl/promote" {
			promotes.Add(1)
			fmt.Fprint(rw, `{"seq":3,"promoted":true}`)
			return
		}
		fol.srv.Config.Handler.ServeHTTP(rw, r)
	}))
	defer folFront.Close()

	r, err := NewRouter(testTable(1), []GroupConfig{{Primary: prim.srv.URL, Follower: folFront.URL}}, RouterOptions{
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		ProbeMisses:   2,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	waitFor(t, "probes to see both endpoints up", func() bool {
		_, body := routerGet(t, r, "/healthz")
		return body["status"] == "ok"
	})

	prim.Close() // the primary dies
	waitFor(t, "failover", func() bool { return r.Failovers() == 1 })
	if promotes.Load() == 0 {
		t.Fatal("failover without a promote call")
	}

	status, body := routerGet(t, r, "/cycle/0")
	if status != http.StatusOK || body["worker"] != "fol" {
		t.Fatalf("post-failover read: status %d body %v", status, body)
	}
	// No auto-failback, and no second failover.
	time.Sleep(30 * time.Millisecond)
	if r.Failovers() != 1 {
		t.Fatalf("failovers %d, want exactly 1", r.Failovers())
	}
	status, body = routerGet(t, r, "/healthz?ready=1")
	if status != http.StatusOK {
		t.Fatalf("cluster should be ready on the promoted follower: %d %v", status, body)
	}
}
