package dist

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/serve"
)

// emptySharded bootstraps a deterministic empty sharded index — the
// same function the primary and its follower must share.
func emptySharded(n int) func() (csc.Counter, error) {
	return func() (csc.Counter, error) {
		x, _ := csc.BuildSharded(graph.New(n), csc.Options{})
		return x, nil
	}
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getCycle(t *testing.T, base string, v int) (int, serve.CycleJSON) {
	t.Helper()
	resp, err := http.Get(base + "/cycle/" + strconv.Itoa(v))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.CycleJSON
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// The full replication pipeline: a primary engine ships every committed
// batch to a follower over HTTP, the follower replays and serves flagged
// stale reads, promotion replays to tip and swaps the full engine
// surface in, and a zombie primary's appends get 409 afterwards.
func TestShipperFollowerRoundtripAndPromotion(t *testing.T) {
	boot := emptySharded(8)
	f, err := OpenFollower(t.TempDir(), boot, FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFollowerServer(f, engine.Options{FlushInterval: -1}, serve.Options{}, nil)
	fsrv := httptest.NewServer(fs)
	defer fsrv.Close()

	ship := NewShipper(fsrv.URL, ShipperOptions{})
	prim, err := engine.Open(t.TempDir(), boot, engine.Options{FlushInterval: -1, Replication: ship})
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := prim.Insert(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
		prim.Flush()
	}
	waitFor(t, "follower to catch up", func() bool { return f.Seq() == prim.Seq() })

	// Stale reads answer from the replayed state, flagged.
	status, out := getCycle(t, fsrv.URL, 0)
	if status != http.StatusOK || !out.Stale || !out.Exists || out.Length != 3 {
		t.Fatalf("follower stale read: status %d, %+v", status, out)
	}
	if ship.Lag() != 0 {
		t.Fatalf("lag %d after synchronous catch-up, want 0", ship.Lag())
	}

	// Promote: replay-to-tip, then the full engine handler serves.
	resp, err := http.Post(fsrv.URL+"/repl/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	status, out = getCycle(t, fsrv.URL, 0)
	if status != http.StatusOK || out.Stale || !out.Exists || out.Length != 3 {
		t.Fatalf("promoted read: status %d, %+v", status, out)
	}
	// Promotion is idempotent.
	resp, _ = http.Post(fsrv.URL+"/repl/promote", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat promote: status %d", resp.StatusCode)
	}

	// The zombie primary's stream is severed: new batches buffer locally,
	// never ack, and the shutdown barrier reports them.
	if err := prim.Insert(3, 4); err != nil {
		t.Fatal(err)
	}
	prim.Flush()
	waitFor(t, "shipper to observe the severed stream", func() bool { return ship.Lag() > 0 })
	if err := prim.Close(); err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("zombie primary close: err %v, want undelivered-batches barrier error", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// A dead follower never stalls the writer: batches buffer, the lag gauge
// grows, and the background retry loop drains the backlog as soon as the
// follower answers again — including idempotent re-delivery of records
// the follower already holds.
func TestShipperBuffersWhileFollowerDown(t *testing.T) {
	boot := emptySharded(8)
	f, err := OpenFollower(t.TempDir(), boot, FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs := NewFollowerServer(f, engine.Options{}, serve.Options{}, nil)
	var down atomic.Bool
	down.Store(true)
	fsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fs.ServeHTTP(w, r)
	}))
	defer fsrv.Close()

	ship := NewShipper(fsrv.URL, ShipperOptions{RetryInterval: 10 * time.Millisecond})
	prim, err := engine.Open(t.TempDir(), boot, engine.Options{FlushInterval: -1, Replication: ship})
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range [][2]int{{0, 1}, {1, 0}, {2, 3}} {
		if err := prim.Insert(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
		prim.Flush()
	}
	if ship.Lag() == 0 {
		t.Fatal("lag should be non-zero while the follower is down")
	}
	if f.Seq() != 0 {
		t.Fatalf("follower applied %d batches while down", f.Seq())
	}

	down.Store(false)
	waitFor(t, "backlog to drain", func() bool { return ship.Lag() == 0 && f.Seq() == prim.Seq() })
	if l, c := f.CycleCount(0); l != 2 || c != 1 {
		t.Fatalf("follower state after catch-up: (%d,%d), want (2,1)", l, c)
	}
	if err := prim.Close(); err != nil {
		t.Fatal(err)
	}
}

// A restarted follower recovers its replayed state from its own store:
// replication survives follower crashes without re-shipping history the
// follower already persisted.
func TestFollowerRecoversOwnStore(t *testing.T) {
	boot := emptySharded(6)
	dir := t.TempDir()
	f, err := OpenFollower(dir, boot, FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := engine.EncodeWALRecord(nil, 1, []engine.Op{{Kind: engine.OpInsert, A: 0, B: 1}, {Kind: engine.OpInsert, A: 1, B: 0}})
	if _, _, err := f.ApplyStream(rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFollower(dir, boot, FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Seq() != 1 {
		t.Fatalf("recovered seq %d, want 1", f2.Seq())
	}
	if l, _ := f2.CycleCount(0); l != 2 {
		t.Fatalf("recovered follower lost the 2-cycle: length %d", l)
	}
	// Re-delivery of an already-persisted record is skipped, not
	// double-applied.
	if _, applied, err := f2.ApplyStream(rec); err != nil || applied != 0 {
		t.Fatalf("re-delivery: applied %d (err %v), want 0", applied, err)
	}
}
