package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/csc"
	"repro/internal/serve"
)

// Table is the cluster routing state: vertex → shard slot → owning
// worker group. Tables are immutable once built — the router swaps whole
// tables atomically — and JSON-serializable, so the placement a
// coordinator computed can be inspected at GET /cluster/table.
type Table struct {
	Vertices int `json:"vertices"`
	Groups   int `json:"groups"`
	// ShardOf maps vertex → shard slot; -1 marks a trivial vertex (no
	// labels anywhere — the router answers zero cycles locally).
	ShardOf []int32 `json:"shard_of"`
	// OwnerOf maps shard slot → group id; -1 marks a slot with no live
	// shard.
	OwnerOf []int32 `json:"owner_of"`
}

// BuildTable computes a routing table from a shard snapshot (local via
// engine.ShardTable or fetched via FetchTable) by running the
// size-balanced placement over the per-shard stats.
func BuildTable(shardOf []int32, stats []csc.ShardStat, nGroups int) *Table {
	maxSlot := -1
	for _, st := range stats {
		if st.Slot > maxSlot {
			maxSlot = st.Slot
		}
	}
	for _, s := range shardOf {
		if int(s) > maxSlot {
			maxSlot = int(s)
		}
	}
	owner := make([]int32, maxSlot+1)
	for i := range owner {
		owner[i] = -1
	}
	for g, slots := range Plan(stats, nGroups) {
		for _, slot := range slots {
			owner[slot] = int32(g)
		}
	}
	return &Table{Vertices: len(shardOf), Groups: nGroups, ShardOf: shardOf, OwnerOf: owner}
}

// GroupFor routes one vertex. trivial reports a vertex with no shard —
// the answer is locally known (no cycle) and needs no proxy hop. group
// is -1 when v is out of range or its slot has no owner.
func (t *Table) GroupFor(v int) (group int, trivial bool) {
	if v < 0 || v >= len(t.ShardOf) {
		return -1, false
	}
	s := t.ShardOf[v]
	if s < 0 {
		return -1, true
	}
	if int(s) >= len(t.OwnerOf) {
		return -1, false
	}
	g := t.OwnerOf[s]
	if g < 0 {
		return -1, false
	}
	return int(g), false
}

// FetchTable builds a routing table by asking a running worker for its
// shard snapshot (GET /cluster/shards) — how a router boots without
// access to the index file itself. A nil client gets a 5s timeout.
func FetchTable(workerURL string, nGroups int, c *http.Client) (*Table, error) {
	if c == nil {
		c = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := c.Get(workerURL + "/cluster/shards")
	if err != nil {
		return nil, fmt.Errorf("dist: fetch shard table from %s: %w", workerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: fetch shard table from %s: status %d", workerURL, resp.StatusCode)
	}
	var tbl serve.ShardTableJSON
	if err := json.NewDecoder(resp.Body).Decode(&tbl); err != nil {
		return nil, fmt.Errorf("dist: decode shard table: %w", err)
	}
	stats := make([]csc.ShardStat, 0, len(tbl.Shards))
	for _, sh := range tbl.Shards {
		stats = append(stats, csc.ShardStat{
			Slot:       sh.Slot,
			Vertices:   sh.Vertices,
			Entries:    sh.Entries,
			LabelBytes: sh.LabelBytes,
			Stale:      sh.Stale,
		})
	}
	return BuildTable(tbl.ShardOf, stats, nGroups), nil
}
