//go:build race

package dist

// raceEnabled reports whether this test binary runs under the race
// detector, which serializes goroutines and distorts wall-clock bounds.
const raceEnabled = true
