package dist

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/bfscount"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ReplStatusJSON is the GET /repl/status response — the router's lag and
// liveness probe for followers (it keeps answering after promotion, so
// one probe URL covers both lives).
type ReplStatusJSON struct {
	Seq      uint64 `json:"seq"`
	Promoted bool   `json:"promoted"`
	Vertices int    `json:"vertices"`
}

// ReplAppendJSON is the POST /repl/append response: the sequence number
// the follower has replayed through and how many records this request
// newly applied.
type ReplAppendJSON struct {
	Seq     uint64 `json:"seq"`
	Applied int    `json:"applied"`
}

// FollowerServer is the follower's HTTP surface. Before promotion it
// serves the replication protocol plus flagged stale reads; POST
// /repl/promote replays to tip and atomically swaps the whole serving
// surface to the full engine handler, while /repl/* stays owned here so
// a zombie primary's appends keep getting 409s.
type FollowerServer struct {
	f           *Follower
	promoteOpts engine.Options
	serveOpts   serve.Options
	reg         *obs.Registry
	promoted    atomic.Pointer[http.Handler]
	mux         *http.ServeMux
}

// NewFollowerServer builds the follower's HTTP surface. promoteOpts
// configures the engine a successful /repl/promote opens — pass the same
// metrics registry the follower uses so one /metrics scrape spans the
// promotion. reg may be nil.
func NewFollowerServer(f *Follower, promoteOpts engine.Options, serveOpts serve.Options, reg *obs.Registry) *FollowerServer {
	fs := &FollowerServer{f: f, promoteOpts: promoteOpts, serveOpts: serveOpts, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /repl/append", fs.replAppend)
	mux.HandleFunc("GET /repl/status", fs.replStatus)
	mux.HandleFunc("POST /repl/promote", fs.replPromote)
	mux.HandleFunc("GET /cycle/{v}", fs.cycle)
	mux.HandleFunc("GET /healthz", fs.healthz)
	mux.HandleFunc("GET /stats", fs.stats)
	mux.HandleFunc("GET /metrics", fs.metrics)
	fs.mux = mux
	return fs
}

// ServeHTTP routes /repl/* here always; everything else goes to the
// promoted engine handler once promotion lands.
func (fs *FollowerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := fs.promoted.Load(); h != nil && !strings.HasPrefix(r.URL.Path, "/repl/") {
		(*h).ServeHTTP(w, r)
		return
	}
	fs.mux.ServeHTTP(w, r)
}

func (fs *FollowerServer) replAppend(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadBody, 0, "bad replication body: %v", err)
		return
	}
	seq, applied, err := fs.f.ApplyStream(body)
	switch {
	case errors.Is(err, ErrPromoted):
		serve.WriteError(w, http.StatusConflict, serve.CodePromoted, 0, "%v", err)
	case err != nil:
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadBody, 0, "%v", err)
	default:
		writeJSON(w, http.StatusOK, ReplAppendJSON{Seq: seq, Applied: applied})
	}
}

func (fs *FollowerServer) replStatus(w http.ResponseWriter, r *http.Request) {
	st := ReplStatusJSON{Seq: fs.f.Seq(), Promoted: fs.f.Promoted(), Vertices: fs.f.NumVertices()}
	if eng := fs.f.Engine(); eng != nil {
		st.Seq = eng.Seq()
	}
	writeJSON(w, http.StatusOK, st)
}

func (fs *FollowerServer) replPromote(w http.ResponseWriter, r *http.Request) {
	eng, err := fs.f.Promote(fs.promoteOpts)
	switch {
	case errors.Is(err, ErrPromoting):
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodePromoted, 1, "%v", err)
		return
	case err != nil:
		serve.WriteError(w, http.StatusInternalServerError, serve.CodePromoted, 0, "promotion failed: %v", err)
		return
	}
	// First successful promote swaps the serving surface; repeats are
	// idempotent acks.
	if fs.promoted.Load() == nil {
		h := serve.NewHandler(eng, nil, 0, fs.serveOpts)
		fs.promoted.Store(&h)
	}
	writeJSON(w, http.StatusOK, ReplStatusJSON{Seq: eng.Seq(), Promoted: true, Vertices: fs.f.NumVertices()})
}

// cycle serves flagged stale reads from the replayed state — the
// follower's answer is correct as of its last shipped batch, which can
// trail the primary's tip, so every body carries "stale":true.
func (fs *FollowerServer) cycle(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadVertex, 0, "vertex %q is not an integer", r.PathValue("v"))
		return
	}
	if v < 0 || v >= fs.f.NumVertices() {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadVertex, 0, "vertex %d out of range [0,%d)", v, fs.f.NumVertices())
		return
	}
	l, c := fs.f.CycleCount(v)
	out := serve.CycleJSON{Vertex: v, Stale: true}
	if l != bfscount.NoCycle {
		out.Exists = true
		out.Length = l
		out.Count = c
	}
	writeJSON(w, http.StatusOK, out)
}

func (fs *FollowerServer) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "follower", "seq": fs.f.Seq(), "promoted": fs.f.Promoted(),
	})
}

func (fs *FollowerServer) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"follower": true, "seq": fs.f.Seq(), "vertices": fs.f.NumVertices(),
		"promoted": fs.f.Promoted(),
	})
}

func (fs *FollowerServer) metrics(w http.ResponseWriter, r *http.Request) {
	if fs.reg == nil {
		serve.WriteError(w, http.StatusNotFound, serve.CodeNotFound, 0, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = fs.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
