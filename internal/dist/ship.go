package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// ShipperOptions configures NewShipper. The zero value gives serving
// defaults.
type ShipperOptions struct {
	// Client performs the /repl/append POSTs (default: a dedicated
	// client; per-attempt deadlines come from AttemptTimeout).
	Client *http.Client
	// AttemptTimeout bounds one delivery attempt (default 2s). The
	// engine's writer waits at most this long per batch while the
	// follower is reachable; an unreachable follower costs one timeout,
	// after which shipping goes async until the follower answers again.
	AttemptTimeout time.Duration
	// RetryInterval is the background catch-up cadence while batches are
	// buffered undelivered (default 100ms). The synchronous path also
	// skips its attempt when the last failure is fresher than this, so a
	// dead follower never stalls the writer by a timeout per batch.
	RetryInterval time.Duration
	// CloseTimeout bounds the shutdown barrier's final delivery attempt
	// (default 5s).
	CloseTimeout time.Duration
	// Metrics registers the cscd_repl_* shipping families (nil: none).
	Metrics *obs.Registry
}

func (o *ShipperOptions) fill() {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 2 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 100 * time.Millisecond
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
}

// Shipper implements engine.ReplSink over HTTP: every batch the engine
// commits is encoded in the exact WAL record wire format
// (engine.EncodeWALRecord) and POSTed to the follower's /repl/append.
// Delivery is synchronous on the happy path — the batch is on the
// follower before the engine acknowledges a Flush — and degrades to
// buffered background catch-up while the follower is unreachable, with
// the backlog surfaced as the replication lag gauge. Close is the
// engine's shutdown barrier: it makes a final bounded delivery attempt
// and reports any batches it must abandon.
type Shipper struct {
	url  string
	opts ShipperOptions

	mu      sync.Mutex
	pending []byte // encoded records not yet acked by the follower
	backlog int    // batches in pending

	// flightMu serializes delivery attempts (writer-synchronous vs
	// background retry) so records never ship out of order.
	flightMu sync.Mutex

	shipped, acked *obs.Counter
	errors         *obs.Counter
	lastSeq        atomic.Uint64 // highest seq handed to ShipBatch
	ackSeq         atomic.Uint64 // highest seq the follower acknowledged
	lastFailNS     atomic.Int64  // unix nanos of the last failed attempt

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{}
}

// NewShipper starts a shipper streaming to the follower at baseURL
// (e.g. "http://127.0.0.1:8440"). Pass it as engine.Options.Replication.
func NewShipper(baseURL string, opts ShipperOptions) *Shipper {
	opts.fill()
	s := &Shipper{
		url:     baseURL,
		opts:    opts,
		shipped: &obs.Counter{},
		acked:   &obs.Counter{},
		errors:  &obs.Counter{},
		closed:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	if reg := opts.Metrics; reg != nil {
		reg.CounterFunc("cscd_repl_batches_shipped_total", "batches handed to the WAL shipper", s.shipped.Load)
		reg.CounterFunc("cscd_repl_batches_acked_total", "shipped batches the follower acknowledged", s.acked.Load)
		reg.CounterFunc("cscd_repl_ship_errors_total", "failed replication delivery attempts", s.errors.Load)
		reg.GaugeFunc("cscd_repl_lag_batches", "batches committed locally but not yet acknowledged by the follower", func() float64 {
			return float64(s.Lag())
		})
		reg.GaugeFunc("cscd_repl_last_seq", "sequence number of the last batch handed to the shipper", func() float64 {
			return float64(s.lastSeq.Load())
		})
		reg.GaugeFunc("cscd_repl_acked_seq", "sequence number the follower has acknowledged through", func() float64 {
			return float64(s.ackSeq.Load())
		})
	}
	go s.retryLoop()
	return s
}

// Lag reports the batches committed locally but not yet acknowledged by
// the follower — zero while replication is current.
func (s *Shipper) Lag() uint64 { return s.shipped.Load() - s.acked.Load() }

// AckedSeq reports the sequence number the follower acknowledged
// through.
func (s *Shipper) AckedSeq() uint64 { return s.ackSeq.Load() }

// ShipBatch implements engine.ReplSink. It runs on the engine's writer
// goroutine: the record is buffered, then delivered synchronously unless
// the follower failed an attempt within RetryInterval — in that case the
// background loop owns catch-up and the writer moves on immediately.
func (s *Shipper) ShipBatch(seq uint64, ops []engine.Op) {
	rec := engine.EncodeWALRecord(nil, seq, ops)
	s.mu.Lock()
	s.pending = append(s.pending, rec...)
	s.backlog++
	s.mu.Unlock()
	s.lastSeq.Store(seq)
	s.shipped.Add(1)
	if time.Now().UnixNano()-s.lastFailNS.Load() < s.opts.RetryInterval.Nanoseconds() {
		return // follower known-bad moments ago: don't stall the writer
	}
	s.flush(s.opts.AttemptTimeout)
}

// retryLoop is the background catch-up: while batches are buffered it
// retries delivery every RetryInterval.
func (s *Shipper) retryLoop() {
	defer close(s.done)
	tick := time.NewTicker(s.opts.RetryInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-tick.C:
			s.mu.Lock()
			n := s.backlog
			s.mu.Unlock()
			if n > 0 {
				s.flush(s.opts.AttemptTimeout)
			}
		}
	}
}

// flush makes one delivery attempt of the whole pending buffer. Returns
// true when the buffer drained (or was already empty).
func (s *Shipper) flush(timeout time.Duration) bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return true
	}
	buf := make([]byte, len(s.pending))
	copy(buf, s.pending)
	batches := s.backlog
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url+"/repl/append", bytes.NewReader(buf))
	if err != nil {
		s.fail()
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		s.fail()
		return false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		// 409 means the follower was promoted and severed the stream — a
		// zombie primary must not keep acknowledging writes as replicated.
		// The backlog stays buffered (it is locally durable) and the lag
		// gauge keeps growing, which is the operator's signal.
		s.fail()
		return false
	}
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	_ = json.Unmarshal(body, &ack)

	// Only ShipBatch appends to pending, so the delivered bytes are still
	// its prefix: drop exactly them.
	s.mu.Lock()
	s.pending = append(s.pending[:0], s.pending[len(buf):]...)
	s.backlog -= batches
	s.mu.Unlock()
	s.acked.Add(uint64(batches))
	if ack.Seq > s.ackSeq.Load() {
		s.ackSeq.Store(ack.Seq)
	}
	s.lastFailNS.Store(0)
	return true
}

func (s *Shipper) fail() {
	s.errors.Add(1)
	s.lastFailNS.Store(time.Now().UnixNano())
}

// Close implements the engine's shutdown barrier: it stops the retry
// loop, makes a final delivery attempt bounded by CloseTimeout, and
// reports the batches it had to abandon (the follower keeps exactly the
// acknowledged prefix; a restarted primary re-ships from its WAL replay
// is NOT automatic — the abandoned suffix is only on the primary's
// disk).
func (s *Shipper) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.done
	if s.flush(s.opts.CloseTimeout) {
		return nil
	}
	s.mu.Lock()
	n := s.backlog
	s.mu.Unlock()
	return fmt.Errorf("dist: shipper closed with %d batches undelivered to %s", n, s.url)
}
