// Package monitor maintains a continuously correct SCCnt scoreboard over
// a dynamic graph — the fraud-detection loop from the paper's
// introduction turned into a primitive. The scoreboard re-scores only the
// vertices an update touched (the label engine reports them), so the
// per-update monitoring cost is a handful of microsecond queries rather
// than a full scan.
//
// Two wirings exist. Under the serving engine (internal/engine), the
// monitor rides the engine's post-batch hook: the engine applies batches
// and hands the touched vertices to Rescore, and Score/Top stay safe for
// concurrent readers while batches apply. Standalone, the monitor owns
// the index: route updates through InsertEdge/DeleteEdge.
package monitor

import (
	"sort"
	"sync"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/csc"
	"repro/internal/pll"
)

// Score is one vertex's standing.
type Score struct {
	Vertex int
	// Exists reports whether any cycle passes through the vertex.
	Exists bool
	// Length is the shortest cycle length when Exists.
	Length int
	// Count is the number of shortest cycles when Exists.
	Count uint64
}

// rankBefore orders scores the way the case study reads Figure 13: higher
// counts first, shorter cycles break ties, vertex id stabilizes.
func rankBefore(a, b Score) bool {
	if a.Exists != b.Exists {
		return a.Exists
	}
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	if a.Length != b.Length {
		return a.Length < b.Length
	}
	return a.Vertex < b.Vertex
}

// TopK watches every vertex's SCCnt under updates. Score and Top may run
// concurrently with Rescore (the scoreboard is mutex-guarded); index
// queries themselves are synchronized by whoever applies the updates.
type TopK struct {
	x csc.Counter
	k int

	mu     sync.RWMutex
	scores []Score
}

// New wraps an index and scores every vertex once, using every core for
// the warm pass. In standalone use the monitor owns the index from here
// on: route updates through TopK's methods.
func New(x csc.Counter, k int) *TopK { return NewParallel(x, k, 0) }

// NewParallel is New with explicit warm-pass parallelism (0 = all cores;
// csc.CycleCountAll clamps workers to the vertex count either way).
func NewParallel(x csc.Counter, k, workers int) *TopK {
	n := x.Graph().NumVertices()
	m := &TopK{x: x, k: k, scores: make([]Score, n)}
	m.RescoreAll(workers)
	return m
}

// Index exposes the underlying index for queries.
func (m *TopK) Index() csc.Counter { return m.x }

// RescoreAll refreshes every vertex with the given query parallelism —
// the warm pass. The index must be quiescent for the duration.
func (m *TopK) RescoreAll(workers int) {
	lengths, counts := m.x.CycleCountAll(workers)
	m.mu.Lock()
	defer m.mu.Unlock()
	for v := range m.scores {
		m.scores[v] = mkScore(v, lengths[v], counts[v])
	}
}

// Rescore refreshes exactly the given vertices — the engine's post-batch
// hook calls this with the touched set after each applied batch.
func (m *TopK) Rescore(vertices []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range vertices {
		l, c := m.x.CycleCount(v)
		m.scores[v] = mkScore(v, l, c)
	}
}

func mkScore(v, l int, c uint64) Score {
	s := Score{Vertex: v}
	if l != bfscount.NoCycle {
		s.Exists = true
		s.Length = l
		s.Count = c
	}
	return s
}

// InsertEdge applies a maintained insertion and refreshes exactly the
// vertices whose labels changed (standalone, index-owning mode).
func (m *TopK) InsertEdge(a, b int) error {
	st, err := m.x.InsertEdge(a, b)
	if err != nil {
		return err
	}
	m.Rescore(touchedVertices(a, b, st))
	return nil
}

// DeleteEdge applies a maintained deletion and refreshes touched vertices.
func (m *TopK) DeleteEdge(a, b int) error {
	st, err := m.x.DeleteEdge(a, b)
	if err != nil {
		return err
	}
	m.Rescore(touchedVertices(a, b, st))
	return nil
}

// touchedVertices maps an update's touched label owners (Gb vertices)
// back to the original-graph vertices whose scores may have changed.
func touchedVertices(a, b int, st pll.UpdateStats) []int {
	seen := map[int]struct{}{a: {}, b: {}}
	for _, owner := range st.TouchedOwners {
		seen[bipartite.Original(int(owner))] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Score returns the current standing of one vertex. Out-of-range
// vertices report a non-existent score rather than panicking — the
// serving surface passes client-supplied ids through here.
func (m *TopK) Score(v int) Score {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if v < 0 || v >= len(m.scores) {
		return Score{Vertex: v}
	}
	return m.scores[v]
}

// Top returns the current top-k scores among cycle-carrying vertices,
// highest count first. The selection scans the in-memory scoreboard
// (nanoseconds per vertex); the expensive part — the SCCnt queries — was
// already paid incrementally.
func (m *TopK) Top() []Score {
	m.mu.RLock()
	defer m.mu.RUnlock()
	top := make([]Score, 0, m.k+1)
	for _, s := range m.scores {
		if !s.Exists {
			continue
		}
		i := sort.Search(len(top), func(i int) bool { return rankBefore(s, top[i]) })
		if i >= m.k {
			continue
		}
		top = append(top, Score{})
		copy(top[i+1:], top[i:])
		top[i] = s
		if len(top) > m.k {
			top = top[:m.k]
		}
	}
	return top
}
