// Package monitor maintains a continuously correct SCCnt scoreboard over
// a dynamic graph — the fraud-detection loop from the paper's
// introduction turned into a primitive. It owns a CSC index, routes every
// edge update through the index's maintenance, and re-scores only the
// vertices whose labels the update touched (the engine reports them), so
// the per-update monitoring cost is a handful of microsecond queries
// rather than a full scan.
package monitor

import (
	"sort"

	"repro/internal/bfscount"
	"repro/internal/bipartite"
	"repro/internal/csc"
	"repro/internal/pll"
)

// Score is one vertex's standing.
type Score struct {
	Vertex int
	// Exists reports whether any cycle passes through the vertex.
	Exists bool
	// Length is the shortest cycle length when Exists.
	Length int
	// Count is the number of shortest cycles when Exists.
	Count uint64
}

// rankBefore orders scores the way the case study reads Figure 13: higher
// counts first, shorter cycles break ties, vertex id stabilizes.
func rankBefore(a, b Score) bool {
	if a.Exists != b.Exists {
		return a.Exists
	}
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	if a.Length != b.Length {
		return a.Length < b.Length
	}
	return a.Vertex < b.Vertex
}

// TopK watches every vertex's SCCnt under updates.
type TopK struct {
	x      *csc.Index
	k      int
	scores []Score
}

// New wraps an index and scores every vertex once. The monitor owns the
// index from here on: route updates through TopK's methods.
func New(x *csc.Index, k int) *TopK {
	n := x.Graph().NumVertices()
	m := &TopK{x: x, k: k, scores: make([]Score, n)}
	for v := 0; v < n; v++ {
		m.rescore(v)
	}
	return m
}

// Index exposes the underlying index for queries.
func (m *TopK) Index() *csc.Index { return m.x }

func (m *TopK) rescore(v int) {
	l, c := m.x.CycleCount(v)
	s := Score{Vertex: v}
	if l != bfscount.NoCycle {
		s.Exists = true
		s.Length = l
		s.Count = c
	}
	m.scores[v] = s
}

// InsertEdge applies a maintained insertion and refreshes exactly the
// vertices whose labels changed.
func (m *TopK) InsertEdge(a, b int) error {
	st, err := m.x.InsertEdge(a, b)
	if err != nil {
		return err
	}
	m.refresh(a, b, st)
	return nil
}

// DeleteEdge applies a maintained deletion and refreshes touched vertices.
func (m *TopK) DeleteEdge(a, b int) error {
	st, err := m.x.DeleteEdge(a, b)
	if err != nil {
		return err
	}
	m.refresh(a, b, st)
	return nil
}

func (m *TopK) refresh(a, b int, st pll.UpdateStats) {
	seen := map[int]struct{}{a: {}, b: {}}
	for _, owner := range st.TouchedOwners {
		seen[bipartite.Original(int(owner))] = struct{}{}
	}
	for v := range seen {
		m.rescore(v)
	}
}

// Score returns the current standing of one vertex.
func (m *TopK) Score(v int) Score { return m.scores[v] }

// Top returns the current top-k scores among cycle-carrying vertices,
// highest count first. The selection scans the in-memory scoreboard
// (nanoseconds per vertex); the expensive part — the SCCnt queries — was
// already paid incrementally.
func (m *TopK) Top() []Score {
	top := make([]Score, 0, m.k+1)
	for _, s := range m.scores {
		if !s.Exists {
			continue
		}
		i := sort.Search(len(top), func(i int) bool { return rankBefore(s, top[i]) })
		if i >= m.k {
			continue
		}
		top = append(top, Score{})
		copy(top[i+1:], top[i:])
		top[i] = s
		if len(top) > m.k {
			top = top[:m.k]
		}
	}
	return top
}
