// Package monitor maintains a continuously correct SCCnt scoreboard over
// a dynamic graph — the fraud-detection loop from the paper's
// introduction turned into a primitive. The scoreboard re-scores only the
// dirty set of each update (the label engine reports exactly the vertices
// whose answers can have changed), so the per-update monitoring cost is a
// handful of microsecond queries rather than a full scan.
//
// Two wirings exist. Under the serving engine (internal/engine), the
// monitor rides the engine's post-batch hook: the engine applies batches
// and hands the dirty set to RescoreDirty — served through the engine's
// epoch-tagged result cache, so each rescore also re-warms exactly the
// slots the batch expired — and Score/Top stay safe for concurrent
// readers while batches apply. Standalone, the monitor owns the index:
// route updates through InsertEdge/DeleteEdge.
//
// All rescore passes share the monitor's persistent result buffers and
// the batched CycleCountMany read, so steady-state rescoring allocates
// nothing.
package monitor

import (
	"errors"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bfscount"
	"repro/internal/csc"
)

// Querier is the read surface the scoreboard needs. csc.Counter
// implementations satisfy it through the counterQuerier adapter; the
// serving engine implements it directly (cached, epoch-protected reads).
type Querier interface {
	// NumVertices bounds the scoreboard.
	NumVertices() int
	// CycleCount answers SCCnt(v) (bfscount.NoCycle when none).
	CycleCount(v int) (length int, count uint64)
	// CycleCountMany evaluates SCCnt for every vertex of vs into the
	// caller's buffers — the allocation-free batch read every rescore
	// pass uses.
	CycleCountMany(vs []int, lengths []int, counts []uint64)
}

// counterQuerier adapts a csc.Counter to the Querier surface. The batch
// read is a plain loop — the Counter has nothing to amortize across a
// batch; the contract's point is that results land in caller buffers
// (the serving engine's implementation additionally reads each vertex
// through its cache inside its own epoch).
type counterQuerier struct{ csc.Counter }

func (q counterQuerier) NumVertices() int { return q.Graph().NumVertices() }

func (q counterQuerier) CycleCountMany(vs []int, lengths []int, counts []uint64) {
	for i, v := range vs {
		lengths[i], counts[i] = q.CycleCount(v)
	}
}

// Score is one vertex's standing.
type Score struct {
	Vertex int
	// Exists reports whether any cycle passes through the vertex.
	Exists bool
	// Length is the shortest cycle length when Exists.
	Length int
	// Count is the number of shortest cycles when Exists.
	Count uint64
}

// rankBefore orders scores the way the case study reads Figure 13: higher
// counts first, shorter cycles break ties, vertex id stabilizes.
func rankBefore(a, b Score) bool {
	if a.Exists != b.Exists {
		return a.Exists
	}
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	if a.Length != b.Length {
		return a.Length < b.Length
	}
	return a.Vertex < b.Vertex
}

// TopK watches every vertex's SCCnt under updates. Score and Top may run
// concurrently with rescores (the scoreboard is mutex-guarded); index
// queries themselves are synchronized by whoever applies the updates (or
// by the engine's reader epochs, in engine wiring).
type TopK struct {
	q Querier
	x csc.Counter // standalone (index-owning) mode only; nil under Watch
	k int

	mu     sync.RWMutex
	scores []Score // fixed length; only the mu-guarded contents change

	// Persistent rescore state under its own lock: the identity list for
	// full scans, the result buffers every CycleCountMany lands in, and
	// the filtered vertex list for dirty sets carrying out-of-range ids
	// — so steady-state rescoring allocates nothing. bufMu serializes
	// rescore passes against each other; mu is taken only for the brief
	// scoreboard writeback, so Score/Top readers never wait out a full
	// board scan. Lock order: bufMu before mu.
	bufMu  sync.Mutex
	allVs  []int
	lenBuf []int
	cntBuf []uint64
	vsBuf  []int
}

// errReadOnly is returned by the update methods of an engine-attached
// (Watch-constructed) monitor: the engine owns the index there.
var errReadOnly = errors.New("monitor: read-only wiring — apply updates through the engine, not the monitor")

// New wraps an index and scores every vertex once, using every core for
// the warm pass. In standalone use the monitor owns the index from here
// on: route updates through TopK's methods.
func New(x csc.Counter, k int) *TopK { return NewParallel(x, k, 0) }

// NewParallel is New with explicit warm-pass parallelism (0 = all cores,
// clamped to the vertex count).
func NewParallel(x csc.Counter, k, workers int) *TopK {
	m := Watch(counterQuerier{x}, k, workers)
	m.x = x
	return m
}

// Watch wraps a bare read surface — the serving engine, in the wiring
// engine.WatchTopK sets up — and scores every vertex once. The returned
// monitor is read-only: updates flow through whoever owns the Querier,
// which reports each batch's dirty set to RescoreDirty.
func Watch(q Querier, k, workers int) *TopK {
	n := q.NumVertices()
	m := &TopK{q: q, k: k, scores: make([]Score, n)}
	m.RescoreAll(workers)
	return m
}

// Index exposes the underlying index for queries (nil for an
// engine-attached monitor, which has no index of its own).
func (m *TopK) Index() csc.Counter { return m.x }

// RescoreAll refreshes every vertex — the warm pass. The given
// parallelism (0 = all cores) splits the scan into chunks that land in
// disjoint ranges of the persistent buffers; no per-pass allocation
// remains after the first call. The scan runs under the rescore lock —
// serializing against a concurrent RescoreDirty (the engine's
// post-batch hook) on the shared buffers — while the scoreboard lock is
// taken only for the writeback, so Score/Top readers never wait out a
// full board scan. In standalone wiring the index itself must still be
// quiescent.
func (m *TopK) RescoreAll(workers int) {
	n := len(m.scores)
	if n == 0 {
		return
	}
	m.bufMu.Lock()
	defer m.bufMu.Unlock()
	m.growBuffers(n)
	if m.allVs == nil {
		m.allVs = make([]int, n)
		for v := range m.allVs {
			m.allVs[v] = v
		}
	}
	scanAll(n, workers, func(lo, hi int) {
		m.q.CycleCountMany(m.allVs[lo:hi], m.lenBuf[lo:hi], m.cntBuf[lo:hi])
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	for v := 0; v < n; v++ {
		m.scores[v] = mkScore(v, m.lenBuf[v], m.cntBuf[v])
	}
}

// RescoreDirty refreshes exactly the given vertices — the engine's
// post-batch hook calls this with each batch's dirty set, and the
// standalone update methods with each update's. One batched
// CycleCountMany read into the persistent buffers, then a scoreboard
// write under the lock.
func (m *TopK) RescoreDirty(dirty []int) {
	if len(dirty) == 0 {
		return
	}
	m.bufMu.Lock()
	defer m.bufMu.Unlock()
	// Drop out-of-range ids before the batched query: not every Querier
	// tolerates them (the monolithic index does not bounds-check), and a
	// scoreboard has no row for them anyway. The common all-in-range case
	// touches nothing.
	n := len(m.scores)
	for i, v := range dirty {
		if v < 0 || v >= n {
			m.vsBuf = append(m.vsBuf[:0], dirty[:i]...)
			for _, w := range dirty[i+1:] {
				if w >= 0 && w < n {
					m.vsBuf = append(m.vsBuf, w)
				}
			}
			dirty = m.vsBuf
			break
		}
	}
	if len(dirty) == 0 {
		return
	}
	m.growBuffers(len(dirty))
	m.q.CycleCountMany(dirty, m.lenBuf, m.cntBuf)
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range dirty {
		m.scores[v] = mkScore(v, m.lenBuf[i], m.cntBuf[i])
	}
}

// Rescore is the historical name of RescoreDirty.
func (m *TopK) Rescore(vertices []int) { m.RescoreDirty(vertices) }

// growBuffers sizes the shared result buffers for n results.
func (m *TopK) growBuffers(n int) {
	if cap(m.lenBuf) < n {
		m.lenBuf = make([]int, n)
		m.cntBuf = make([]uint64, n)
	}
	m.lenBuf = m.lenBuf[:n]
	m.cntBuf = m.cntBuf[:n]
}

// scanAll splits [0,n) into one chunk per worker and runs f on each.
func scanAll(n, workers int, f func(lo, hi int)) {
	workers = clampWorkers(workers, n)
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func mkScore(v, l int, c uint64) Score {
	s := Score{Vertex: v}
	if l != bfscount.NoCycle {
		s.Exists = true
		s.Length = l
		s.Count = c
	}
	return s
}

// InsertEdge applies a maintained insertion and refreshes exactly the
// vertices whose labels changed (standalone, index-owning mode).
func (m *TopK) InsertEdge(a, b int) error {
	if m.x == nil {
		return errReadOnly
	}
	st, err := m.x.InsertEdge(a, b)
	if err != nil {
		return err
	}
	m.RescoreDirty(csc.DirtyVertices(st))
	return nil
}

// DeleteEdge applies a maintained deletion and refreshes touched vertices.
func (m *TopK) DeleteEdge(a, b int) error {
	if m.x == nil {
		return errReadOnly
	}
	st, err := m.x.DeleteEdge(a, b)
	if err != nil {
		return err
	}
	m.RescoreDirty(csc.DirtyVertices(st))
	return nil
}

// Score returns the current standing of one vertex. Out-of-range
// vertices report a non-existent score rather than panicking — the
// serving surface passes client-supplied ids through here.
func (m *TopK) Score(v int) Score {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if v < 0 || v >= len(m.scores) {
		return Score{Vertex: v}
	}
	return m.scores[v]
}

// Top returns the current top-k scores among cycle-carrying vertices,
// highest count first. The selection scans the in-memory scoreboard
// (nanoseconds per vertex); the expensive part — the SCCnt queries — was
// already paid incrementally.
func (m *TopK) Top() []Score {
	m.mu.RLock()
	defer m.mu.RUnlock()
	top := make([]Score, 0, m.k+1)
	for _, s := range m.scores {
		if !s.Exists {
			continue
		}
		i := sort.Search(len(top), func(i int) bool { return rankBefore(s, top[i]) })
		if i >= m.k {
			continue
		}
		top = append(top, Score{})
		copy(top[i+1:], top[i:])
		top[i] = s
		if len(top) > m.k {
			top = top[:m.k]
		}
	}
	return top
}

func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}
