package monitor

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
)

func build(t *testing.T, g *graph.Digraph, k int) *TopK {
	t.Helper()
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	return New(x, k)
}

// The scoreboard must equal a full re-query of every vertex after every
// update — this is the test that proves the touched-owner set from the
// engine covers all query changes.
func TestScoreboardStaysExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(15)
		g := graph.New(n)
		for i := 0; i < n*2; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		m := build(t, g, 5)
		for step := 0; step < 40; step++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			var err error
			if g.HasEdge(u, v) {
				err = m.DeleteEdge(u, v)
			} else {
				err = m.InsertEdge(u, v)
			}
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < n; w++ {
				wl, wc := bfscount.CycleCount(g, w)
				s := m.Score(w)
				if wl == bfscount.NoCycle {
					if s.Exists {
						t.Fatalf("seed %d step %d: vertex %d stale score %+v, no cycle",
							seed, step, w, s)
					}
					continue
				}
				if !s.Exists || s.Length != wl || s.Count != wc {
					t.Fatalf("seed %d step %d: vertex %d score %+v, want (%d,%d)",
						seed, step, w, s, wl, wc)
				}
			}
		}
	}
}

func TestTopMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 30
	g := graph.New(n)
	for i := 0; i < n*3; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	m := build(t, g, 4)
	for step := 0; step < 15; step++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if err := m.DeleteEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		top := m.Top()
		if len(top) > 4 {
			t.Fatalf("Top returned %d > k", len(top))
		}
		// Brute force: all scores, fully ordered.
		var all []Score
		for w := 0; w < n; w++ {
			if s := m.Score(w); s.Exists {
				all = append(all, s)
			}
		}
		for i := range top {
			best := all[0]
			for _, s := range all[1:] {
				if rankBefore(s, best) {
					best = s
				}
			}
			if top[i] != best {
				t.Fatalf("step %d: Top[%d] = %+v, want %+v", step, i, top[i], best)
			}
			for j, s := range all {
				if s == best {
					all = append(all[:j], all[j+1:]...)
					break
				}
			}
		}
	}
}

// RescoreAll and RescoreDirty share the monitor's persistent result
// buffers, so they must serialize on the scoreboard lock. Regression
// for a review finding: a full rescore running concurrently with a
// post-batch dirty rescore raced on the resized buffers and panicked.
// Run with -race.
func TestConcurrentRescoreAllAndDirty(t *testing.T) {
	g := graph.New(24)
	for v := 0; v < 24; v++ {
		_ = g.AddEdge(v, (v+1)%24)
	}
	m := build(t, g, 5)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.RescoreAll(2)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			m.RescoreDirty([]int{i % 24, (i + 7) % 24})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			m.Top()
			m.Score(i % 24)
		}
	}()
	wg.Wait()
	if s := m.Score(0); !s.Exists || s.Length != 24 {
		t.Fatalf("scoreboard corrupted: %+v", s)
	}
}

// Out-of-range ids in a dirty set must be dropped before the batched
// query — the monolithic index does not bounds-check — while in-range
// ids around them still rescore. Regression for a review finding.
func TestRescoreDirtyOutOfRange(t *testing.T) {
	g := graph.New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{Workers: 1})
	m := New(x, 2) // monolithic wiring: the strict Querier
	if _, err := x.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	m.RescoreDirty([]int{-1, 0, 3, 1, 99, 2})
	for v := 0; v < 3; v++ {
		if s := m.Score(v); !s.Exists || s.Length != 3 {
			t.Fatalf("vertex %d not rescored around out-of-range ids: %+v", v, s)
		}
	}
	m.RescoreDirty([]int{-5, 42}) // nothing in range: a no-op, not a panic
}

func TestTopOnAcyclicGraph(t *testing.T) {
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	m := build(t, g, 3)
	if top := m.Top(); len(top) != 0 {
		t.Fatalf("acyclic Top = %v", top)
	}
	if err := m.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	top := m.Top()
	if len(top) != 3 || !top[0].Exists || top[0].Length != 3 {
		t.Fatalf("after closing cycle: %v", top)
	}
}
