// Package partition computes the condensation of a directed graph — its
// strongly connected components — and the helpers the SCC-sharded CSC
// index routes through. Every directed cycle lies entirely inside one
// SCC, so the index never needs labels that cross component boundaries:
// trivial (single-vertex) components answer SCCnt = 0 with no labels at
// all, and non-trivial components get independent sub-indexes over their
// induced subgraphs.
//
// Component ids are stable: components are numbered by their smallest
// vertex id and each component's vertex list is sorted ascending, so the
// decomposition — and everything built on top of it, including the
// sharded serialization — is a pure function of the edge set, independent
// of adjacency order or traversal luck.
package partition

import (
	"sort"

	"repro/internal/graph"
)

// Partition is the SCC decomposition of a digraph under the stable
// numbering described in the package comment.
type Partition struct {
	// Comp[v] is the component id of vertex v.
	Comp []int32
	// Comps[c] lists component c's vertices, sorted ascending. Components
	// are ordered by their smallest vertex.
	Comps [][]int32
}

// SCC computes the strongly connected components of g with an iterative
// Tarjan walk (explicit stack — no recursion, so deep chains cannot
// overflow the goroutine stack).
func SCC(g *graph.Digraph) *Partition {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for v := range index {
		index[v] = unvisited
		comp[v] = -1
	}
	stack := make([]int32, 0, n)
	var next int32

	// frame is one suspended DFS call: vertex v, and how many of its
	// out-edges were already expanded.
	type frame struct {
		v    int32
		edge int32
	}
	var frames []frame
	var raw [][]int32

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			out := g.Out(int(v))
			if int(f.edge) < len(out) {
				w := out[f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] { // v is a component root
				var members []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == v {
						break
					}
				}
				raw = append(raw, members)
			}
		}
	}

	// Stable renumbering: sort members ascending, components by first
	// member.
	for _, members := range raw {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i][0] < raw[j][0] })
	for c, members := range raw {
		for _, v := range members {
			comp[v] = int32(c)
		}
	}
	return &Partition{Comp: comp, Comps: raw}
}

// NonTrivial returns the components with at least two vertices — the only
// ones that can host a directed cycle (the graph substrate rejects
// self-loops, so a single vertex is never cyclic).
func (p *Partition) NonTrivial() [][]int32 {
	var out [][]int32
	for _, c := range p.Comps {
		if len(c) >= 2 {
			out = append(out, c)
		}
	}
	return out
}

// SCCWithin computes the strongly connected components of the subgraph of
// g induced by verts, without materializing the subgraph. Components come
// back in global vertex ids under the same stable numbering as SCC:
// members sorted ascending, components ordered by smallest member. The
// batch update planner uses it to re-check one dirty shard's partition
// after a batch of deletions instead of re-running Tarjan over the whole
// graph.
func SCCWithin(g *graph.Digraph, verts []int32) [][]int32 {
	n := len(verts)
	local := make(map[int32]int32, n)
	for li, v := range verts {
		local[v] = int32(li)
	}
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for v := range index {
		index[v] = unvisited
	}
	stack := make([]int32, 0, n)
	var next int32

	type frame struct {
		v    int32 // local id
		edge int32
	}
	var frames []frame
	var raw [][]int32

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			out := g.Out(int(verts[v]))
			if int(f.edge) < len(out) {
				gw := out[f.edge]
				f.edge++
				w, ok := local[gw]
				if !ok {
					continue // edge leaves the induced vertex set
				}
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, verts[w]) // back to global ids
					if w == v {
						break
					}
				}
				raw = append(raw, members)
			}
		}
	}

	for _, members := range raw {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i][0] < raw[j][0] })
	return raw
}

// Induced builds the subgraph of g induced by verts, with local ids
// assigned by position in verts. Edges leaving the vertex set are
// dropped — exactly the cross-component edges the sharded index keeps
// label-free.
func Induced(g *graph.Digraph, verts []int32) *graph.Digraph {
	local := make(map[int32]int32, len(verts))
	for li, v := range verts {
		local[v] = int32(li)
	}
	sub := graph.New(len(verts))
	for li, v := range verts {
		for _, w := range g.Out(int(v)) {
			lw, ok := local[w]
			if !ok {
				continue
			}
			if err := sub.AddEdge(li, int(lw)); err != nil {
				panic(err) // unreachable: g has no duplicates or self-loops
			}
		}
	}
	return sub
}

// Reachable reports whether to is reachable from from (BFS over
// out-edges). Reachable(g, v, v) is true via the empty path.
func Reachable(g *graph.Digraph, from, to int) bool {
	return reachable(g, from, to, -1, -1)
}

// ReachableSkip is Reachable with one edge (skipU → skipV) excluded from
// the walk — the split test for a deletion asks whether the removed
// edge's tail still reaches its head some other way.
func ReachableSkip(g *graph.Digraph, from, to, skipU, skipV int) bool {
	return reachable(g, from, to, skipU, skipV)
}

func reachable(g *graph.Digraph, from, to, skipU, skipV int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.NumVertices())
	seen[from] = true
	queue := []int32{int32(from)}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		for _, w := range g.Out(v) {
			if v == skipU && int(w) == skipV {
				continue
			}
			if int(w) == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// ComponentOf returns the strongly connected component containing v as a
// sorted vertex list: the intersection of v's forward and backward
// reachability sets. The sharded index calls it after an insertion merged
// components, when only v's component — not the whole decomposition — is
// stale.
func ComponentOf(g *graph.Digraph, v int) []int32 {
	fwd := reachSet(g, v, false)
	bwd := reachSet(g, v, true)
	var members []int32
	for w, ok := range fwd {
		if ok && bwd[w] {
			members = append(members, int32(w))
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

func reachSet(g *graph.Digraph, from int, reverse bool) []bool {
	seen := make([]bool, g.NumVertices())
	seen[from] = true
	queue := []int32{int32(from)}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		nbrs := g.Out(v)
		if reverse {
			nbrs = g.In(v)
		}
		for _, w := range nbrs {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}
