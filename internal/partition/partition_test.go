package partition

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *graph.Digraph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSCCBasics(t *testing.T) {
	// Two triangles joined by a one-way bridge, plus an isolated vertex
	// and a dangling tail.
	g := mustGraph(t, 8, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, // comp {0,1,2}
		{2, 3},                 // bridge
		{3, 4}, {4, 5}, {5, 3}, // comp {3,4,5}
		{5, 6}, // tail
	})
	p := SCC(g)
	want := map[int][]int32{
		0: {0, 1, 2}, 1: {3, 4, 5}, 2: {6}, 3: {7},
	}
	if len(p.Comps) != len(want) {
		t.Fatalf("got %d comps: %v", len(p.Comps), p.Comps)
	}
	for c, verts := range want {
		got := p.Comps[c]
		if len(got) != len(verts) {
			t.Fatalf("comp %d = %v, want %v", c, got, verts)
		}
		for i := range verts {
			if got[i] != verts[i] {
				t.Fatalf("comp %d = %v, want %v", c, got, verts)
			}
		}
		for _, v := range verts {
			if p.Comp[v] != int32(c) {
				t.Fatalf("Comp[%d] = %d, want %d", v, p.Comp[v], c)
			}
		}
	}
	nt := p.NonTrivial()
	if len(nt) != 2 || nt[0][0] != 0 || nt[1][0] != 3 {
		t.Fatalf("NonTrivial = %v", nt)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-vertex path would blow a recursive Tarjan's goroutine stack.
	n := 200_000
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	p := SCC(g)
	if len(p.Comps) != n {
		t.Fatalf("path graph: %d comps, want %d", len(p.Comps), n)
	}
}

// SCC agrees with the O(n·(n+m)) mutual-reachability definition on random
// graphs, and the numbering is stable under adjacency-order shuffles.
func TestSCCMatchesReachabilityOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(14)
		g := graph.New(n)
		m := r.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		p := SCC(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := Reachable(g, u, v) && Reachable(g, v, u)
				if same != (p.Comp[u] == p.Comp[v]) {
					t.Fatalf("trial %d: vertices %d,%d same-comp=%v but Comp %d,%d",
						trial, u, v, same, p.Comp[u], p.Comp[v])
				}
			}
		}
		// Rebuild the same edge set in a different insertion order: the
		// decomposition must be identical.
		edges := g.Edges()
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		g2, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		p2 := SCC(g2)
		for v := 0; v < n; v++ {
			if p.Comp[v] != p2.Comp[v] {
				t.Fatalf("trial %d: unstable numbering at vertex %d", trial, v)
			}
		}
	}
}

func TestInduced(t *testing.T) {
	g := mustGraph(t, 6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {2, 3}, {4, 0}, {1, 5},
	})
	sub := Induced(g, []int32{0, 1, 2})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced: %d vertices, %d edges", sub.NumVertices(), sub.NumEdges())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if !sub.HasEdge(e[0], e[1]) {
			t.Fatalf("induced missing edge %v", e)
		}
	}
}

func TestReachableSkip(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 2}})
	if !Reachable(g, 0, 2) {
		t.Fatal("0 should reach 2")
	}
	// Skipping the direct edge 0→2 leaves 0→1→2.
	if !ReachableSkip(g, 0, 2, 0, 2) {
		t.Fatal("0 should reach 2 without the direct edge")
	}
	// Skipping 0→1 with the direct edge also removed from the graph: gone.
	if err := g.RemoveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if ReachableSkip(g, 0, 2, 0, 1) {
		t.Fatal("0 must not reach 2 when both routes are cut")
	}
}

func TestComponentOf(t *testing.T) {
	g := mustGraph(t, 6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}, {5, 0},
	})
	got := ComponentOf(g, 1)
	want := []int32{0, 1, 2}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("unsorted: %v", got)
	}
	if len(got) != len(want) {
		t.Fatalf("ComponentOf(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ComponentOf(1) = %v, want %v", got, want)
		}
	}
	if solo := ComponentOf(g, 5); len(solo) != 1 || solo[0] != 5 {
		t.Fatalf("ComponentOf(5) = %v", solo)
	}
}

func TestSCCWithinMatchesInducedSCC(t *testing.T) {
	// SCCWithin must equal SCC over the materialized induced subgraph
	// (translated back to global ids) for random graphs and subsets.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(30)
		g := graph.New(n)
		for k := 0; k < 3*n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		var verts []int32
		for v := 0; v < n; v++ {
			if r.Intn(3) > 0 {
				verts = append(verts, int32(v))
			}
		}
		got := SCCWithin(g, verts)

		sub := Induced(g, verts)
		var want [][]int32
		for _, comp := range SCC(sub).Comps {
			global := make([]int32, len(comp))
			for i, lv := range comp {
				global[i] = verts[lv]
			}
			sort.Slice(global, func(i, j int) bool { return global[i] < global[j] })
			want = append(want, global)
		}
		sort.Slice(want, func(i, j int) bool { return want[i][0] < want[j][0] })

		if len(got) != len(want) {
			t.Fatalf("trial %d: %d comps, want %d", trial, len(got), len(want))
		}
		for c := range want {
			if len(got[c]) != len(want[c]) {
				t.Fatalf("trial %d comp %d: %v, want %v", trial, c, got[c], want[c])
			}
			for i := range want[c] {
				if got[c][i] != want[c][i] {
					t.Fatalf("trial %d comp %d: %v, want %v", trial, c, got[c], want[c])
				}
			}
		}
	}
	if comps := SCCWithin(graph.New(3), nil); len(comps) != 0 {
		t.Fatalf("empty vertex set produced %v", comps)
	}
}
