package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
)

// The batch-parallel concurrent acceptance test (run it with -race): the
// engine serves an SCC-sharded index and applies every coalesced batch
// through ApplyBatch with a multi-goroutine worker pool — concurrent
// per-shard update streams and scoped rebuilds — while reader goroutines
// hammer CycleCount and the top-k watch. At every quiesce point the
// engine must answer exactly like a monolithic oracle that applied the
// same stream sequentially, edge by edge. This extends the PR 2 stress
// harness to the batch-parallel update path.
func TestConcurrentBatchStress(t *testing.T) {
	const (
		n       = 60
		m       = 150
		readers = 4
		rounds  = 8
		perRnd  = 40
	)
	if testing.Short() {
		t.Skip("concurrent stress is not -short")
	}

	g := randomGraph(n, m, 43)
	ex, _ := csc.BuildSharded(g.Clone(), csc.Options{})
	ox, _ := csc.Build(g, order.ByDegree(g), csc.Options{})

	e := New(ex, Options{MaxBatch: 16, FlushInterval: -1, UpdateWorkers: 4})
	defer e.Close()
	watch := e.WatchTopK(5)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				v := r.Intn(n)
				l, c := e.CycleCount(v)
				if l == 0 || (l < 0 && c != 0) {
					t.Errorf("reader saw impossible answer (%d,%d) for %d", l, c, v)
					return
				}
				if r.Intn(8) == 0 {
					watch.Top()
				}
				if r.Intn(8) == 0 {
					e.Stats()
				}
			}
		}(int64(2000 + rdr))
	}

	r := rand.New(rand.NewSource(17))
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRnd; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			kind := OpInsert
			if r.Intn(2) == 0 {
				kind = OpDelete
			}
			if err := e.Enqueue(Op{Kind: kind, A: int32(u), B: int32(v)}); err != nil {
				t.Fatal(err)
			}
			var err error
			if kind == OpInsert {
				_, err = ox.InsertEdge(u, v)
			} else {
				_, err = ox.DeleteEdge(u, v)
			}
			if err != nil && err != graph.ErrDuplicateEdge && err != graph.ErrMissingEdge {
				t.Fatal(err)
			}
		}
		e.Flush()

		// Quiesce point: the writer is idle (Flush returned, this
		// goroutine is the only enqueuer), readers keep running.
		if !graph.Equal(e.Index().Graph(), ox.Graph()) {
			t.Fatalf("round %d: engine graph diverged from oracle", round)
		}
		for v := 0; v < n; v++ {
			gl, gc := e.CycleCount(v)
			wl, wc := ox.CycleCount(v)
			if gl != wl || gc != wc {
				t.Fatalf("round %d vertex %d: engine (%d,%d), oracle (%d,%d)",
					round, v, gl, gc, wl, wc)
			}
			s := watch.Score(v)
			if s.Exists != (wl != -1) || (s.Exists && (s.Length != wl || s.Count != wc)) {
				t.Fatalf("round %d vertex %d: watch %+v, oracle (%d,%d)", round, v, s, wl, wc)
			}
		}
	}
	if st := e.Stats(); st.OpsRejected != 0 {
		t.Fatalf("writer rejected %d ops — a batch failed validation", st.OpsRejected)
	}
	stop.Store(true)
	wg.Wait()
}
