package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
)

func emptyIndex(n int) func() (csc.Counter, error) {
	return func() (csc.Counter, error) {
		g := graph.New(n)
		x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
		return x, nil
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix, seq, err := s.Recover(emptyIndex(5))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Fatalf("fresh store seq %d", seq)
	}
	batches := [][]Op{
		{{OpInsert, 0, 1}, {OpInsert, 1, 2}},
		{{OpInsert, 2, 0}},
		{{OpDelete, 1, 2}, {OpInsert, 1, 3}},
	}
	for i, b := range batches {
		if err := s.Append(uint64(i+1), b); err != nil {
			t.Fatal(err)
		}
		if _, err := applyBatch(ix, b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ix2, seq2, err := s2.Recover(emptyIndex(5))
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != 3 {
		t.Fatalf("recovered seq %d, want 3", seq2)
	}
	if !graph.Equal(ix.Graph(), ix2.Graph()) {
		t.Fatal("recovered graph differs")
	}
	assertLabelsEqual(t, ix, ix2)
}

func applyBatch(ix csc.Counter, b []Op) (int, error) {
	for _, op := range b {
		var err error
		if op.Kind == OpInsert {
			_, err = ix.InsertEdge(int(op.A), int(op.B))
		} else {
			_, err = ix.DeleteEdge(int(op.A), int(op.B))
		}
		if err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// assertLabelsEqual asserts byte-identical serialized state (graph,
// ordering and every label list — for either index form).
func assertLabelsEqual(t *testing.T, a, b csc.Counter) {
	t.Helper()
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("serialized state differs: %d vs %d bytes", ba.Len(), bb.Len())
	}
}

// Torn tail: a crash mid-append must lose only the torn record.
func TestStoreTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Recover(emptyIndex(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []Op{{OpInsert, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(2, []Op{{OpInsert, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-recordFixed-opBytes; cut-- {
		if err := os.WriteFile(walPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		ix, seq, err := s2.Recover(emptyIndex(4))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if seq != 1 {
			t.Fatalf("cut %d: recovered seq %d, want 1 (torn second record)", cut, seq)
		}
		if !ix.Graph().HasEdge(0, 1) || ix.Graph().HasEdge(1, 2) {
			t.Fatalf("cut %d: wrong recovered graph", cut)
		}
		// The repaired WAL must accept appends again.
		if err := s2.Append(2, []Op{{OpInsert, 1, 2}}); err != nil {
			t.Fatal(err)
		}
		s2.Close()
	}
}

// A flipped byte in a record's payload fails the CRC and truncates from
// that record on.
func TestStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	if _, _, err := s.Recover(emptyIndex(4)); err != nil {
		t.Fatal(err)
	}
	_ = s.Append(1, []Op{{OpInsert, 0, 1}})
	_ = s.Append(2, []Op{{OpInsert, 1, 2}})
	s.Close()

	walPath := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(walPath)
	// Flip a byte inside the first record's ops.
	data[walHeaderLen+13] ^= 0xff
	_ = os.WriteFile(walPath, data, 0o644)

	s2, _ := OpenStore(dir)
	defer s2.Close()
	ix, seq, err := s2.Recover(emptyIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 || ix.Graph().NumEdges() != 0 {
		t.Fatalf("corrupt first record should truncate everything: seq %d, edges %d",
			seq, ix.Graph().NumEdges())
	}
}

// A foreign file where the WAL should be must fail loudly, not be wiped.
func TestStoreForeignWAL(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Recover(emptyIndex(4)); err == nil {
		t.Fatal("foreign WAL recovered silently")
	}
}

// Snapshot rotation: the WAL truncates, and recovery from
// snapshot+later-records equals the live state.
func TestStoreSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	ix, _, err := s.Recover(emptyIndex(6))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Append(1, []Op{{OpInsert, 0, 1}, {OpInsert, 1, 0}})
	_, _ = applyBatch(ix, []Op{{OpInsert, 0, 1}, {OpInsert, 1, 0}})
	before := s.WALBytes()
	if err := s.WriteSnapshot(1, ix); err != nil {
		t.Fatal(err)
	}
	if s.WALBytes() >= before {
		t.Fatalf("WAL did not truncate: %d -> %d", before, s.WALBytes())
	}
	_ = s.Append(2, []Op{{OpInsert, 2, 3}})
	_, _ = applyBatch(ix, []Op{{OpInsert, 2, 3}})
	s.Close()

	s2, _ := OpenStore(dir)
	defer s2.Close()
	ix2, seq, err := s2.Recover(nil) // snapshot present: bootstrap not needed
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq %d, want 2", seq)
	}
	if !graph.Equal(ix.Graph(), ix2.Graph()) {
		t.Fatal("recovered graph differs after rotation")
	}
	assertLabelsEqual(t, ix, ix2)
}

// Stale WAL records below the snapshot seq (crash between snapshot
// rename and WAL truncation) are skipped.
func TestStoreStaleRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	ix, _, err := s.Recover(emptyIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Append(1, []Op{{OpInsert, 0, 1}})
	_, _ = applyBatch(ix, []Op{{OpInsert, 0, 1}})
	// Snapshot without the truncation half (simulated crash): write the
	// snapshot file directly.
	walData, _ := os.ReadFile(filepath.Join(dir, walFile))
	if err := s.WriteSnapshot(1, ix); err != nil {
		t.Fatal(err)
	}
	// Restore the pre-truncation WAL, as if truncation never happened.
	if err := os.WriteFile(filepath.Join(dir, walFile), walData, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, _ := OpenStore(dir)
	defer s2.Close()
	ix2, seq, err := s2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq %d, want 1", seq)
	}
	if !graph.Equal(ix.Graph(), ix2.Graph()) {
		t.Fatal("stale replay diverged")
	}
}

// Two processes (or two engines) must never share a store directory:
// the second open fails instead of interleaving WAL writes.
func TestStoreLockExclusive(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Fatal("second OpenStore on a held store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}

func TestStoreEmptyNoBootstrap(t *testing.T) {
	s, _ := OpenStore(t.TempDir())
	defer s.Close()
	if _, _, err := s.Recover(nil); err == nil {
		t.Fatal("empty store without bootstrap must error")
	}
}

func TestDecodeRecordBounds(t *testing.T) {
	// A record claiming a huge op count must not allocate.
	var buf bytes.Buffer
	buf.Write(make([]byte, 8))                // seq
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // count = 2^32-1
	buf.Write(make([]byte, 64))               // some bytes
	if _, _, ok := decodeRecord(buf.Bytes()); ok {
		t.Fatal("absurd op count decoded")
	}
}

// Replay must reject a WAL record holding an unknown op kind as
// corruption instead of normalizing it into an insert — regression pin
// for the batch-replay path, which converts ops before validation.
func TestReplayRejectsUnknownOpKind(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Recover(emptyIndex(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []Op{{Kind: 7, A: 0, B: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, err := s2.Recover(emptyIndex(4)); err == nil {
		t.Fatal("recovery accepted a WAL record with an unknown op kind")
	} else if g := s2.Close(); g != nil && g != err {
		t.Logf("close after failed recover: %v", g)
	}
}
