package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/csc"
	"repro/internal/obs"
)

// Durability layout: a store directory holds at most two files.
//
//	snapshot.csc  "CSCSNAP1" + seq uint64 + index WriteTo bytes (v1 or v2)
//	wal.log       "CSCWAL01" + a sequence of batch records
//
// One WAL record (little endian):
//
//	seq   uint64   batch sequence number, strictly increasing
//	count uint32   number of ops
//	ops   count ×  { kind uint8, a uint32, b uint32 }
//	crc   uint32   CRC-32C over the record bytes from seq through ops
//
// Every applied batch is appended and fsynced before the batch mutates
// the index (write-ahead), so a killed process recovers its exact state
// by loading the snapshot and replaying the records with larger sequence
// numbers. A torn final record (crash mid-append) is detected by the CRC
// and truncated away; records at or below the snapshot's sequence number
// (crash between snapshot rename and WAL truncation) are skipped.

const (
	snapshotFile = "snapshot.csc"
	walFile      = "wal.log"
	walHeaderLen = 8
	recordFixed  = 8 + 4 + 4 // seq + count + crc
	opBytes      = 9         // kind + a + b
	// maxBatchOps bounds a decoded record's op count so a corrupt length
	// field cannot drive a huge allocation.
	maxBatchOps = 1 << 22
)

var (
	walMagic  = [8]byte{'C', 'S', 'C', 'W', 'A', 'L', '0', '1'}
	snapMagic = [8]byte{'C', 'S', 'C', 'S', 'N', 'A', 'P', '1'}

	crcTable = crc32.MakeTable(crc32.Castagnoli)

	// ErrCorruptStore reports a store directory whose snapshot or WAL
	// cannot be trusted (beyond an ordinary torn tail, which is repaired
	// silently).
	ErrCorruptStore = errors.New("engine: corrupt store")
)

// Store is the engine's durability directory: one snapshot plus the WAL
// of batches applied since. All methods are called from the engine's
// writer goroutine only.
type Store struct {
	dir      string
	io       StoreIO
	wal      StoreFile
	walBytes int64
	scratch  []byte

	// appendNS/fsyncNS time WAL appends (whole record, write+fsync) and
	// the fsync alone. Set by the owning engine when metrics are enabled;
	// nil histograms record nothing.
	appendNS *obs.Histogram
	fsyncNS  *obs.Histogram
}

// OpenStore opens (creating if needed) a store directory and takes an
// exclusive advisory lock on the WAL: two processes appending to and
// replaying the same log would interleave bytes mid-record and the
// second's acknowledged batches would read as a torn tail. The lock is
// released when the file closes — including by process death, which is
// what makes kill-and-restart safe. Call Recover to load the state.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreIO(dir, OSIO)
}

// OpenStoreIO is OpenStore with the filesystem behind an explicit StoreIO
// — the injection point for the fault-injection harness.
func OpenStoreIO(dir string, sio StoreIO) (*Store, error) {
	if err := sio.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := sio.OpenFile(filepath.Join(dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: store %s is locked by another process: %w", dir, err)
	}
	return &Store{dir: dir, io: sio, wal: f}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// WALBytes returns the current WAL file size.
func (s *Store) WALBytes() int64 { return s.walBytes }

// Recover loads the snapshot (or bootstraps a fresh index when none
// exists) and replays every WAL batch past the snapshot's sequence
// number, returning the recovered index and the last applied sequence
// number. A torn WAL tail is truncated; the WAL is left positioned for
// appending.
func (s *Store) Recover(bootstrap func() (csc.Counter, error)) (csc.Counter, uint64, error) {
	ix, seq, err := s.loadSnapshot()
	if err != nil {
		return nil, 0, err
	}
	if ix == nil {
		if bootstrap == nil {
			return nil, 0, fmt.Errorf("%w: no snapshot in %s and no bootstrap", ErrCorruptStore, s.dir)
		}
		if ix, err = bootstrap(); err != nil {
			return nil, 0, fmt.Errorf("engine: bootstrap: %w", err)
		}
	}
	seq, err = s.replay(ix, seq)
	if err != nil {
		return nil, 0, err
	}
	return ix, seq, nil
}

// loadSnapshot returns (nil, 0, nil) when no snapshot file exists.
func (s *Store) loadSnapshot() (csc.Counter, uint64, error) {
	f, err := s.io.Open(filepath.Join(s.dir, snapshotFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var hdr [walHeaderLen + 8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: snapshot header: %v", ErrCorruptStore, err)
	}
	if !bytes.Equal(hdr[:8], snapMagic[:]) {
		return nil, 0, fmt.Errorf("%w: snapshot magic %q", ErrCorruptStore, hdr[:8])
	}
	seq := binary.LittleEndian.Uint64(hdr[8:])
	ix, err := csc.Read(f)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: snapshot body: %v", ErrCorruptStore, err)
	}
	return ix, seq, nil
}

// replay applies WAL records with sequence numbers beyond snapSeq to ix
// and repairs the WAL file (header creation, torn-tail truncation).
func (s *Store) replay(ix csc.Counter, snapSeq uint64) (uint64, error) {
	data, err := io.ReadAll(s.wal)
	if err != nil {
		return 0, err
	}
	if len(data) < walHeaderLen {
		// Empty or torn header: records are only ever appended after the
		// header was synced, so nothing can be lost — start fresh.
		return snapSeq, s.resetWAL()
	}
	if !bytes.Equal(data[:walHeaderLen], walMagic[:]) {
		return 0, fmt.Errorf("%w: WAL magic %q", ErrCorruptStore, data[:walHeaderLen])
	}
	seq := snapSeq
	off := walHeaderLen
	for off < len(data) {
		rec, recLen, ok := decodeRecord(data[off:])
		if !ok {
			break // torn or corrupt tail: truncate from here
		}
		if rec.seq > seq {
			if err := applyRecord(ix, rec); err != nil {
				return 0, fmt.Errorf("%w: replay batch seq %d: %v", ErrCorruptStore, rec.seq, err)
			}
			seq = rec.seq
		}
		off += recLen
	}
	if off < len(data) {
		if err := s.wal.Truncate(int64(off)); err != nil {
			return 0, err
		}
	}
	if _, err := s.wal.Seek(int64(off), io.SeekStart); err != nil {
		return 0, err
	}
	s.walBytes = int64(off)
	return seq, nil
}

func (s *Store) resetWAL() error {
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := s.wal.Write(walMagic[:]); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.walBytes = walHeaderLen
	return nil
}

type walRecord struct {
	seq uint64
	ops []Op
}

// EncodeWALRecord appends one batch record — the exact bytes Append
// writes to disk — to dst and returns the extended slice. The record
// format doubles as the cluster replication wire format: a primary ships
// the same bytes it logged, and a follower replays them through
// DecodeWALRecord, so the two paths cannot drift.
func EncodeWALRecord(dst []byte, seq uint64, ops []Op) []byte {
	start := len(dst)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], seq)
	dst = append(dst, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(ops)))
	dst = append(dst, tmp[:4]...)
	for _, op := range ops {
		dst = append(dst, byte(op.Kind))
		binary.LittleEndian.PutUint32(tmp[:4], uint32(op.A))
		dst = append(dst, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(op.B))
		dst = append(dst, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(dst[start:], crcTable))
	return append(dst, tmp[:4]...)
}

// DecodeWALRecord parses one record from the front of data. ok is false
// when the bytes are truncated or fail the CRC — a WAL reader treats both
// as the torn tail of a crashed append; a replication receiver treats
// them as a malformed ship.
func DecodeWALRecord(data []byte) (seq uint64, ops []Op, recLen int, ok bool) {
	rec, recLen, ok := decodeRecord(data)
	return rec.seq, rec.ops, recLen, ok
}

// decodeRecord parses one record from the front of data. ok is false when
// the bytes are truncated or fail the CRC — the reader treats both as the
// torn tail of a crashed append.
func decodeRecord(data []byte) (rec walRecord, recLen int, ok bool) {
	if len(data) < recordFixed {
		return rec, 0, false
	}
	rec.seq = binary.LittleEndian.Uint64(data)
	count := binary.LittleEndian.Uint32(data[8:])
	if count > maxBatchOps {
		return rec, 0, false
	}
	payload := 12 + int(count)*opBytes
	if len(data) < payload+4 {
		return rec, 0, false
	}
	if crc32.Checksum(data[:payload], crcTable) != binary.LittleEndian.Uint32(data[payload:]) {
		return rec, 0, false
	}
	rec.ops = make([]Op, count)
	for i := range rec.ops {
		o := data[12+i*opBytes:]
		rec.ops[i] = Op{
			Kind: OpKind(o[0]),
			A:    int32(binary.LittleEndian.Uint32(o[1:])),
			B:    int32(binary.LittleEndian.Uint32(o[5:])),
		}
	}
	return rec, payload + 4, true
}

func applyRecord(ix csc.Counter, rec walRecord) error {
	// An unknown kind byte must fail recovery as corruption — the batch
	// conversion below would otherwise normalize it to an insert and
	// replay silently wrong state.
	for i, op := range rec.ops {
		if op.Kind != OpInsert && op.Kind != OpDelete {
			return fmt.Errorf("op %d (%d,%d): unknown op kind %d", i, op.A, op.B, op.Kind)
		}
	}
	// Replay goes through the same batch path live serving uses: every
	// logged record was one applied batch, so it replays as one batch —
	// sequentially here (recovery predates the engine's worker options).
	if _, err := ix.ApplyBatch(batchOps(rec.ops), 1); err != nil {
		return err
	}
	return nil
}

// Append writes one batch record and fsyncs it. The engine calls this
// before mutating the index (write-ahead).
func (s *Store) Append(seq uint64, batch []Op) error {
	s.scratch = EncodeWALRecord(s.scratch[:0], seq, batch)
	start := time.Now()
	n, err := s.wal.Write(s.scratch)
	s.walBytes += int64(n)
	if err != nil {
		return err
	}
	syncStart := time.Now()
	err = s.wal.Sync()
	if err == nil {
		s.fsyncNS.ObserveSince(syncStart)
		s.appendNS.ObserveSince(start)
	}
	return err
}

// truncateTo rolls the WAL back to off bytes — the rollback between
// Append retries. A failed append may have left a partial record on
// disk; retrying after it would put a torn record mid-WAL, and replay
// would silently truncate every acknowledged batch behind it.
func (s *Store) truncateTo(off int64) error {
	if err := s.wal.Truncate(off); err != nil {
		return err
	}
	if _, err := s.wal.Seek(off, io.SeekStart); err != nil {
		return err
	}
	s.walBytes = off
	return nil
}

// WriteSnapshot persists the full index at the given sequence number
// (atomically, via a temp file and rename) and then truncates the WAL:
// recovery from the new snapshot no longer needs the logged batches. A
// crash between the rename and the truncation is benign — replay skips
// records at or below the snapshot's sequence number.
func (s *Store) WriteSnapshot(seq uint64, ix csc.Counter) error {
	path := filepath.Join(s.dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := s.io.Create(tmp)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.io.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := s.io.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return s.resetWAL()
}

// Close closes the WAL file.
func (s *Store) Close() error { return s.wal.Close() }
