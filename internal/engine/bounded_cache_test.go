package engine

import (
	"testing"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/testgraphs"
)

// TestBoundedReadCacheConsistency is the metamorphic regression for the
// bounded read path: a cache hit filters the cached unbounded answer
// against maxLen in O(1), a miss runs the bounded join kernel — the two
// paths must agree at every maxLen, whether it undercuts, equals, or
// exceeds the shortest cycle length. The cached engine is warmed with
// unbounded reads first so every bounded read hits; the fresh engine has
// no cache, so every bounded read goes through the kernel.
func TestBoundedReadCacheConsistency(t *testing.T) {
	graphs := []*graph.Digraph{
		testgraphs.Figure2(),
		testgraphs.DiamondCycles(),
		testgraphs.DAGHeavy(120, 360, 4, 3),
		randomGraph(40, 120, 5),
	}
	for gi, g := range graphs {
		x1, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: 1})
		x2, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: 1})
		cached := New(x1, Options{})
		fresh := New(x2, Options{NoCache: true})

		check := func(stage string) {
			t.Helper()
			n := cached.NumVertices()
			// Warm the cache so the bounded reads below are all hits.
			for v := 0; v < n; v++ {
				cached.CycleCount(v)
			}
			for v := 0; v < n; v++ {
				ul, _ := fresh.CycleCount(v)
				bounds := []int{-1, 0, 1, 2, 3, bfscount.NoCycle}
				if ul != bfscount.NoCycle {
					bounds = append(bounds, ul-1, ul, ul+1)
				}
				for _, maxLen := range bounds {
					cl, cc := cached.CycleCountBounded(v, maxLen)
					fl, fc := fresh.CycleCountBounded(v, maxLen)
					if cl != fl || cc != fc {
						t.Fatalf("graph %d %s: vertex %d maxLen %d: cached (%d,%d) vs fresh (%d,%d)",
							gi, stage, v, maxLen, cl, cc, fl, fc)
					}
				}
			}
		}
		check("built")

		// Mutations invalidate exactly the dirty vertices; the surviving
		// cache slots must keep agreeing with the kernel too.
		n := cached.NumVertices()
		steps := 0
		for u := 0; u < n && steps < 8; u++ {
			v := (u*7 + 3) % n
			if u == v || cached.Index().Graph().HasEdge(u, v) {
				continue
			}
			if err := cached.Insert(u, v); err != nil {
				t.Fatal(err)
			}
			if err := fresh.Insert(u, v); err != nil {
				t.Fatal(err)
			}
			steps++
		}
		cached.Flush()
		fresh.Flush()
		check("after updates")

		cached.Close()
		fresh.Close()
	}
}

// A compressed index served by the engine must refreeze thawed lists at
// writer quiesce, keep reporting a nonzero compressed footprint, and
// answer identically to an uncompressed engine throughout.
func TestEngineRefreezesCompressedLabels(t *testing.T) {
	g := testgraphs.DAGHeavy(150, 450, 4, 13)
	plain, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: 1})
	comp, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: 1, CompressLabels: true})
	pe := New(plain, Options{NoCache: true})
	ce := New(comp, Options{NoCache: true})
	defer pe.Close()
	defer ce.Close()

	if st := ce.Stats(); st.CompressedBytes == 0 {
		t.Fatal("compressed engine reports zero compressed bytes")
	}
	if st := pe.Stats(); st.CompressedBytes != 0 {
		t.Fatalf("uncompressed engine reports %d compressed bytes", st.CompressedBytes)
	}

	// Insert edges whose endpoints share an SCC: cross-shard inserts
	// trigger merge rebuilds (which freeze fresh arenas, thawing nothing),
	// while a within-SCC insert takes the incremental label update path
	// that thaws the touched lists — the case the quiesce hook exists for.
	// Candidate pairs come from the original graph, not the engine-owned
	// index, so nothing races the writer.
	n := ce.NumVertices()
	scc := make([]int, n)
	for i := range scc {
		scc[i] = -1
	}
	for ci, members := range partition.SCC(g).NonTrivial() {
		for _, v := range members {
			scc[v] = ci
		}
	}
	inserted := 0
	for u := 0; u < n && inserted < 6; u++ {
		for v := 0; v < n; v++ {
			if u == v || scc[u] < 0 || scc[u] != scc[v] || g.HasEdge(u, v) {
				continue
			}
			if err := ce.Insert(u, v); err != nil {
				t.Fatal(err)
			}
			if err := pe.Insert(u, v); err != nil {
				t.Fatal(err)
			}
			inserted++
			break
		}
	}
	if inserted == 0 {
		t.Fatal("no within-SCC edge available to insert")
	}
	ce.Flush()
	pe.Flush()

	// Flush drains the mailbox and hits the quiesce hook; updates on a
	// DAG-heavy graph touch at least one label list, so something must
	// have thawed and been folded back.
	deadline := time.Now().Add(2 * time.Second)
	for ce.Stats().LabelsRefrozen == 0 && time.Now().Before(deadline) {
		ce.Flush()
		time.Sleep(time.Millisecond)
	}
	if st := ce.Stats(); st.LabelsRefrozen == 0 {
		t.Fatal("no labels refrozen after updates and quiesce")
	}
	if st := ce.Stats(); st.CompressedBytes == 0 {
		t.Fatal("compressed bytes dropped to zero after refreeze")
	}

	for v := 0; v < n; v++ {
		pl, pc := pe.CycleCount(v)
		cl, cc := ce.CycleCount(v)
		if pl != cl || pc != cc {
			t.Fatalf("vertex %d: plain (%d,%d) vs compressed (%d,%d)", v, pl, pc, cl, cc)
		}
		for _, maxLen := range []int{1, 2, 3, pl} {
			pl2, pc2 := pe.CycleCountBounded(v, maxLen)
			cl2, cc2 := ce.CycleCountBounded(v, maxLen)
			if pl2 != cl2 || pc2 != cc2 {
				t.Fatalf("vertex %d maxLen %d: plain (%d,%d) vs compressed (%d,%d)",
					v, maxLen, pl2, pc2, cl2, cc2)
			}
		}
	}
}

// The monolithic engine path exercises the same hook through csc.Index.
func TestEngineRefreezesMonolithic(t *testing.T) {
	g := testgraphs.GiantSCC(20, 70, 17)
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{CompressLabels: true})
	e := New(x, Options{NoCache: true})
	defer e.Close()
	if st := e.Stats(); st.CompressedBytes == 0 {
		t.Fatal("compressed monolithic engine reports zero compressed bytes")
	}
	n := e.NumVertices()
insert:
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && !e.Index().Graph().HasEdge(u, v) {
				if err := e.Insert(u, v); err != nil {
					t.Fatal(err)
				}
				break insert
			}
		}
	}
	e.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().LabelsRefrozen == 0 && time.Now().Before(deadline) {
		e.Flush()
		time.Sleep(time.Millisecond)
	}
	if st := e.Stats(); st.LabelsRefrozen == 0 {
		t.Fatal("no labels refrozen on the monolithic engine")
	}
}
