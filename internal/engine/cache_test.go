package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// The metamorphic cache-consistency suite: over the whole corpus, an
// engine with the result cache serves random update streams (including
// batches that merge and split components), and after every flushed
// round each vertex is read twice through the cached path — a fill and a
// hit — and both answers must equal an uncached index built fresh from
// the mirrored graph. On top of that, every vertex whose answer changed
// across the round must appear in the union of the round's dirty sets
// (the hook payload), which is what the cache invalidated — dirty-set
// exactness observed end to end through the serving surface.
func TestCacheConsistencyCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not -short")
	}
	for _, ng := range testgraphs.Corpus() {
		ng := ng
		t.Run(ng.Name, func(t *testing.T) {
			t.Parallel()
			mirror := ng.G.Clone()
			n := mirror.NumVertices()
			if n < 2 {
				t.Skip("no edges to churn")
			}
			ex, _ := csc.BuildSharded(ng.G.Clone(), csc.Options{Workers: 1})
			e := New(ex, Options{FlushInterval: -1, MaxBatch: 8, UpdateWorkers: 2})
			defer e.Close()

			// Dirty sets, one slice per applied batch. The hook runs on
			// the writer goroutine; reads below happen after Flush, which
			// synchronizes with it.
			var dirtySets [][]int
			e.OnBatch(func(_ []Op, dirty []int) {
				dirtySets = append(dirtySets, append([]int(nil), dirty...))
			})

			prevLen := make([]int, n)
			prevCnt := make([]uint64, n)
			fresh := func() *csc.Index {
				x, _ := csc.Build(mirror.Clone(), order.ByDegree(mirror), csc.Options{Workers: 1})
				return x
			}
			f := fresh()
			for v := 0; v < n; v++ {
				prevLen[v], prevCnt[v] = f.CycleCount(v)
			}

			r := rand.New(rand.NewSource(77))
			rounds := 6
			if n > 100 {
				rounds = 3
			}
			for round := 0; round < rounds; round++ {
				dirtySets = dirtySets[:0]
				for i := 0; i < 10; i++ {
					u, v := r.Intn(n), r.Intn(n)
					if u == v {
						continue
					}
					if mirror.HasEdge(u, v) {
						if err := mirror.RemoveEdge(u, v); err != nil {
							t.Fatal(err)
						}
						if err := e.Delete(u, v); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := mirror.AddEdge(u, v); err != nil {
							t.Fatal(err)
						}
						if err := e.Insert(u, v); err != nil {
							t.Fatal(err)
						}
					}
				}
				e.Flush()

				union := make(map[int]bool)
				for _, ds := range dirtySets {
					for _, v := range ds {
						union[v] = true
					}
				}
				f := fresh()
				for v := 0; v < n; v++ {
					wl, wc := f.CycleCount(v)
					l1, c1 := e.CycleCount(v) // fill (or earlier-round hit)
					l2, c2 := e.CycleCount(v) // hit
					if l1 != wl || c1 != wc || l2 != wl || c2 != wc {
						t.Fatalf("round %d vertex %d: cached (%d,%d)/(%d,%d), fresh (%d,%d)",
							round, v, l1, c1, l2, c2, wl, wc)
					}
					if (prevLen[v] != wl || prevCnt[v] != wc) && !union[v] {
						t.Fatalf("round %d vertex %d: answer changed (%d,%d)->(%d,%d) outside the dirty sets",
							round, v, prevLen[v], prevCnt[v], wl, wc)
					}
					prevLen[v], prevCnt[v] = wl, wc
				}
			}
			if st := e.Stats(); st.CacheHits == 0 {
				t.Fatal("cache never hit across the whole stream")
			}
		})
	}
}

// With NoCache the engine must answer identically and report zero hits.
func TestCacheDisabled(t *testing.T) {
	g := testgraphs.ManySmallSCC(8, 4, 10, 3)
	n := g.NumVertices()
	ex, _ := csc.BuildSharded(g.Clone(), csc.Options{Workers: 1})
	ox, _ := csc.Build(g, order.ByDegree(g), csc.Options{Workers: 1})
	e := New(ex, Options{FlushInterval: -1, NoCache: true})
	defer e.Close()
	for v := 0; v < n; v++ {
		e.CycleCount(v)
		l, c := e.CycleCount(v)
		wl, wc := ox.CycleCount(v)
		if l != wl || c != wc {
			t.Fatalf("vertex %d: (%d,%d), want (%d,%d)", v, l, c, wl, wc)
		}
	}
	if st := e.Stats(); st.CacheHits != 0 || st.Queries == 0 {
		t.Fatalf("NoCache stats: %+v", st)
	}
}

// CycleCountBounded must agree with the unbounded answer filtered by the
// bound, on both the cached path (second read) and the miss path (first
// read after an invalidating batch), and for out-of-range vertices.
func TestCycleCountBounded(t *testing.T) {
	g := testgraphs.ManySmallSCC(6, 5, 8, 9)
	n := g.NumVertices()
	ex, _ := csc.BuildSharded(g, csc.Options{Workers: 1})
	e := New(ex, Options{FlushInterval: -1})
	defer e.Close()
	check := func() {
		t.Helper()
		for v := 0; v < n; v++ {
			wl, wc := e.CycleCount(v)
			for _, bound := range []int{2, 4, 5, 100} {
				l, c := e.CycleCountBounded(v, bound)
				if wl != -1 && wl <= bound {
					if l != wl || c != wc {
						t.Fatalf("vertex %d bound %d: (%d,%d), want (%d,%d)", v, bound, l, c, wl, wc)
					}
				} else if l != -1 || c != 0 {
					t.Fatalf("vertex %d bound %d: (%d,%d), want no cycle", v, bound, l, c)
				}
			}
		}
	}
	check()
	// Invalidate a ring, then re-check straight from the miss path.
	if err := e.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	check()
	if l, c := e.CycleCountBounded(-1, 10); l != -1 || c != 0 {
		t.Fatalf("out-of-range bounded read = (%d,%d)", l, c)
	}
	if l, c := e.CycleCountBounded(n, 10); l != -1 || c != 0 {
		t.Fatalf("out-of-range bounded read = (%d,%d)", l, c)
	}
}

// CycleCountMany must match per-vertex reads, including out-of-range
// slots, and reuse the caller's buffers without allocating.
func TestCycleCountMany(t *testing.T) {
	g := testgraphs.ManySmallSCC(5, 4, 6, 4)
	n := g.NumVertices()
	ex, _ := csc.BuildSharded(g, csc.Options{Workers: 1})
	e := New(ex, Options{FlushInterval: -1})
	defer e.Close()
	vs := []int{-1, 0, 3, n - 1, n, 7, 3}
	lens := make([]int, len(vs))
	cnts := make([]uint64, len(vs))
	e.CycleCountMany(vs, lens, cnts)
	for i, v := range vs {
		wl, wc := e.CycleCount(v)
		if lens[i] != wl || cnts[i] != wc {
			t.Fatalf("vs[%d]=%d: many (%d,%d), single (%d,%d)", i, v, lens[i], cnts[i], wl, wc)
		}
	}
}

// The top-k watch reads through the cache without inflating the client
// stats: Queries/CacheHits stay zero across the warm pass and hook
// rescores, yet the warm pass fills the cache so the very first client
// read is already a hit.
func TestWatchReadsUncounted(t *testing.T) {
	g := testgraphs.ManySmallSCC(6, 4, 6, 5)
	ex, _ := csc.BuildSharded(g, csc.Options{Workers: 1})
	e := New(ex, Options{FlushInterval: -1, MaxBatch: 8})
	defer e.Close()
	watch := e.WatchTopK(3)
	if st := e.Stats(); st.Queries != 0 || st.CacheHits != 0 {
		t.Fatalf("warm pass counted as client traffic: %+v", st)
	}
	if l, _ := e.CycleCount(0); l != 4 {
		t.Fatalf("CycleCount(0) length %d, want the ring", l)
	}
	if st := e.Stats(); st.Queries != 1 || st.CacheHits != 1 {
		t.Fatalf("first client read should be the only counted query and hit the warm slot: %+v", st)
	}
	if err := e.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush() // hook rescores the dirty ring, uncounted
	if st := e.Stats(); st.Queries != 1 {
		t.Fatalf("hook rescore counted as client traffic: %+v", st)
	}
	if s := watch.Score(0); s.Exists {
		t.Fatalf("broken ring still scored: %+v", s)
	}
}

// The race-gated stress of cached reads during batch-parallel writes:
// readers hammer a small hot set — the shape that maximizes hit-path
// traffic racing invalidation — while the writer applies multi-op
// batches through the parallel planner. At every quiesce point the
// cached answers must match a sequential oracle, and the run must
// actually exercise both hits and invalidations. Run it with -race.
func TestConcurrentCachedReadStress(t *testing.T) {
	const (
		n       = 48
		m       = 120
		readers = 4
		rounds  = 6
		perRnd  = 30
	)
	if testing.Short() {
		t.Skip("concurrent stress is not -short")
	}
	g := randomGraph(n, m, 91)
	ex, _ := csc.BuildSharded(g.Clone(), csc.Options{})
	ox, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	e := New(ex, Options{MaxBatch: 16, FlushInterval: -1, UpdateWorkers: 4})
	defer e.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			hot := [4]int{r.Intn(n), r.Intn(n), r.Intn(n), r.Intn(n)}
			for !stop.Load() {
				v := hot[r.Intn(len(hot))]
				if l, c := e.CycleCount(v); l == 0 || (l < 0 && c != 0) {
					t.Errorf("impossible cached answer (%d,%d) for %d", l, c, v)
					return
				}
			}
		}(int64(9000 + rdr))
	}

	r := rand.New(rand.NewSource(23))
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRnd; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			kind := OpInsert
			if r.Intn(2) == 0 {
				kind = OpDelete
			}
			if err := e.Enqueue(Op{Kind: kind, A: int32(u), B: int32(v)}); err != nil {
				t.Fatal(err)
			}
			var err error
			if kind == OpInsert {
				_, err = ox.InsertEdge(u, v)
			} else {
				_, err = ox.DeleteEdge(u, v)
			}
			if err != nil && err != graph.ErrDuplicateEdge && err != graph.ErrMissingEdge {
				t.Fatal(err)
			}
		}
		e.Flush()
		for v := 0; v < n; v++ {
			gl, gc := e.CycleCount(v)
			wl, wc := ox.CycleCount(v)
			if gl != wl || gc != wc {
				t.Fatalf("round %d vertex %d: cached (%d,%d), oracle (%d,%d)", round, v, gl, gc, wl, wc)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	st := e.Stats()
	if st.CacheHits == 0 {
		t.Fatal("hot-set readers never hit the cache")
	}
	if st.Batches == 0 {
		t.Fatal("no batches applied — the stress never invalidated anything")
	}
}
