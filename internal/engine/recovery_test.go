package engine

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
)

// The acceptance test for the serving subsystem's durability: a killed
// engine, reopened from its store, recovers to the exact pre-kill state
// — graph equal and label lists byte-identical — via snapshot load plus
// WAL replay. The recovery path never sees anything written at shutdown
// (no final snapshot exists; Close persists nothing new), so what it
// replays is exactly what a SIGKILL would have left.
func TestKilledEngineRecoversByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		dir := t.TempDir()
		bootstrap := func() (csc.Counter, error) {
			g := randomGraph(40, 90, 100+seed)
			x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
			return x, nil
		}
		e, err := Open(dir, bootstrap, Options{
			MaxBatch:      8,
			FlushInterval: -1, // apply as soon as the mailbox drains
			SnapshotEvery: 4,  // force several snapshot rotations mid-stream
		})
		if err != nil {
			t.Fatal(err)
		}

		r := rand.New(rand.NewSource(200 + seed))
		n := e.NumVertices()
		for round := 0; round < 10; round++ {
			for i := 0; i < 15; i++ {
				u, v := r.Intn(n), r.Intn(n)
				if u == v {
					continue
				}
				var err error
				if r.Intn(2) == 0 {
					err = e.Insert(u, v)
				} else {
					err = e.Delete(u, v)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			e.Flush()
		}
		if st := e.Stats(); st.Snapshots == 0 {
			t.Fatal("test never exercised a snapshot rotation")
		}

		// "Kill" the engine. Close at quiesce is exactly what SIGKILL
		// leaves behind: it persists nothing new — no final snapshot, and
		// the WAL was already fsynced before each batch applied — it only
		// releases the store lock, which process death would release too.
		// Crashes *mid-write* (torn records) are covered by the WAL
		// truncation tests.
		want := e.Index()
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		e2, err := Open(dir, func() (csc.Counter, error) {
			t.Fatal("bootstrap called: snapshot was not found")
			return nil, nil
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := e2.Index()
		if !graph.Equal(want.Graph(), got.Graph()) {
			t.Fatalf("seed %d: recovered graph differs", seed)
		}
		assertLabelsEqual(t, want, got)
		if e.Seq() != e2.Seq() {
			t.Fatalf("seed %d: seq %d recovered as %d", seed, e.Seq(), e2.Seq())
		}

		// The recovered engine keeps serving and keeps its durability:
		// apply more, close cleanly, reopen, compare again.
		a, b := -1, -1
	pick:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && !got.Graph().HasEdge(i, j) {
					a, b = i, j
					break pick
				}
			}
		}
		if err := e2.Insert(a, b); err != nil {
			t.Fatal(err)
		}
		e2.Flush()
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
		e3, err := Open(dir, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(got.Graph(), e3.Index().Graph()) {
			t.Fatalf("seed %d: post-close recovery differs", seed)
		}
		assertLabelsEqual(t, got, e3.Index())
		if err := e3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// A clean Snapshot call makes the next Open start from the snapshot with
// an empty WAL.
func TestSnapshotThenReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, emptyIndex(8), Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := e.Insert(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.WALBytes != walHeaderLen {
		t.Fatalf("WAL not truncated after snapshot: %d bytes", st.WALBytes)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if l, _ := e2.CycleCount(0); l != 3 {
		t.Fatalf("triangle lost across snapshot reopen: length %d", l)
	}
}

// Durability must hold under the default timer-driven batching too, not
// just explicit flushes.
func TestTimerFlushIsDurable(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, emptyIndex(5), Options{FlushInterval: time.Millisecond, MaxBatch: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int{{0, 1}, {1, 0}} {
		if err := e.Insert(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Seq() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	// Kill (Close persists nothing new; see above) and recover — no
	// snapshot was written yet, so recovery is bootstrap + WAL replay.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, emptyIndex(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if l, _ := e2.CycleCount(0); l != 2 {
		t.Fatalf("2-cycle lost: length %d", l)
	}
}

// A failed WAL append degrades the engine to read-only instead of
// letting served state run ahead of the log: the failing batch is
// dropped, later enqueues fail with ErrReadOnly, reads keep serving the
// durable prefix, and what is on disk stays a valid prefix of history.
func TestWALFailureDegradesReadOnly(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, emptyIndex(6), Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	// Simulate the disk going away mid-flight.
	if err := e.store.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(1, 2); err != nil {
		t.Fatal(err) // enqueue itself still succeeds; the flush fails
	}
	e.Flush()
	if e.Err() == nil {
		t.Fatal("failed append did not surface via Err")
	}
	if !e.ReadOnly() {
		t.Fatal("failed append did not enter read-only mode")
	}
	// The unloggable batch was dropped, not applied in memory: served
	// state must stay equal to what recovery can reconstruct.
	if e.Index().Graph().HasEdge(1, 2) {
		t.Fatal("unlogged batch applied in memory")
	}
	if got := e.Stats().OpsRejected; got != 1 {
		t.Fatalf("dropped op not counted rejected: got %d, want 1", got)
	}
	// Later enqueues are refused outright; reads keep serving.
	if err := e.Insert(2, 3); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("enqueue in read-only mode: err %v, want ErrReadOnly", err)
	}
	if l, _ := e.CycleCount(0); l != bfscount.NoCycle {
		t.Fatalf("read in read-only mode: length %d", l)
	}
	_ = e.Close() // store already broken; the error is expected

	// The disk state is the valid prefix up to the failure, not a gapped
	// log: recovery sees exactly batch 1.
	e2, err := Open(dir, emptyIndex(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	g := e2.Index().Graph()
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) || g.HasEdge(2, 3) {
		t.Fatalf("recovered state is not the pre-failure prefix: %v", g.Edges())
	}
	if e2.Seq() != 1 {
		t.Fatalf("recovered seq %d, want 1", e2.Seq())
	}
}
