package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// rerankEngine builds a sharded engine with aggressive online re-ranking:
// sub-millisecond ticks, a one-hit eligibility floor, and a near-zero
// drift threshold, with the read cache off so every query exercises the
// hit-counting join kernel.
func rerankEngine(g *graph.Digraph) *Engine {
	x, _ := csc.BuildSharded(g, csc.Options{})
	return New(x, Options{
		FlushInterval:       -1,
		UpdateWorkers:       1,
		NoCache:             true,
		OOBRebuildThreshold: 8,
		ReRankInterval:      500 * time.Microsecond,
		ReRankMinHits:       1,
		ReRankDrift:         1e-9,
	})
}

// The online re-rank loop end to end: queries accumulate hub hits, the
// ticker picks the drifting shard, the rebuild runs out of band, and the
// swapped shard serves identical answers under its hit-weighted order.
func TestOnlineReRankFiresAndPreservesAnswers(t *testing.T) {
	g := testgraphs.GiantSCC(30, 90, 9)
	e := rerankEngine(g.Clone())
	defer e.Close()

	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().ReRanks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no re-rank fired within deadline")
		}
		// Keep feeding the drift signal; the first tick after queries
		// lands the counters, a later one fires the re-rank.
		for v := 0; v < e.NumVertices(); v++ {
			e.CycleCount(v)
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.WaitRebuilds(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, "post-re-rank", e)

	// The swapped shard carries Hits provenance (read under a reader
	// epoch, like the metrics collectors do).
	sx := e.Index().(*csc.Sharded)
	m := e.lock.rlock(0)
	stats := sx.ShardStats()
	m.RUnlock()
	tagged := false
	for _, st := range stats {
		if st.Order == order.Hits {
			tagged = true
		}
	}
	if !tagged {
		t.Fatalf("no shard tagged with hits provenance after re-rank: %+v", stats)
	}
	if st := e.Stats(); len(st.Degraded) != 0 {
		t.Fatalf("Degraded = %v after re-rank quiesce", st.Degraded)
	}
}

// A monolithic index must simply never re-rank, whatever the options say.
func TestReRankIgnoredOnMonolithicIndex(t *testing.T) {
	g := testgraphs.GiantSCC(12, 36, 9)
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	e := New(x, Options{
		FlushInterval:  -1,
		NoCache:        true,
		ReRankInterval: 200 * time.Microsecond,
		ReRankMinHits:  1,
		ReRankDrift:    1e-9,
	})
	defer e.Close()
	for i := 0; i < 50; i++ {
		for v := 0; v < e.NumVertices(); v++ {
			e.CycleCount(v)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if n := e.Stats().ReRanks; n != 0 {
		t.Fatalf("monolithic engine re-ranked %d times", n)
	}
}

// The race-gated swap stress (run with -race): re-rank swaps fire
// repeatedly while reader goroutines hammer the very shard being
// re-ranked and a batch writer toggles edges through it. Readers must
// never observe a stale or torn answer across a swap epoch — during a
// frozen window the exact pre-freeze answers, after a structural quiesce
// exactly the sequential oracle.
func TestReRankSwapStress(t *testing.T) {
	if testing.Short() {
		t.Skip("re-rank swap stress is not -short")
	}
	const (
		n       = 40
		m       = 120
		readers = 4
		rounds  = 6
	)
	g := testgraphs.GiantSCC(n, m, 9)
	e := rerankEngine(g.Clone())
	defer e.Close()
	ox, _ := csc.BuildSharded(g.Clone(), csc.Options{})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				v := r.Intn(n)
				l, c := e.CycleCount(v)
				// Torn-read screen: a giant-SCC member always lies on some
				// cycle, whichever epoch answers.
				if l == 0 || (l > 0 && c == 0) {
					t.Errorf("reader saw impossible answer (%d,%d) for %d", l, c, v)
					return
				}
				if r.Intn(16) == 0 {
					e.Stats()
				}
			}
		}(int64(2000 + rdr))
	}

	r := rand.New(rand.NewSource(13))
	for round := 0; round < rounds; round++ {
		// Let several re-rank ticks fire against a hot read stream.
		hot := time.Now().Add(15 * time.Millisecond)
		for time.Now().Before(hot) {
			for v := 0; v < n; v++ {
				e.CycleCount(v)
			}
		}
		// Structural churn through the same shard, mirrored to the oracle.
		for i := 0; i < 10; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			kind := OpInsert
			if r.Intn(2) == 0 {
				kind = OpDelete
			}
			if err := e.Enqueue(Op{Kind: kind, A: int32(u), B: int32(v)}); err != nil {
				t.Fatal(err)
			}
			var err error
			if kind == OpInsert {
				_, err = ox.InsertEdge(u, v)
			} else {
				_, err = ox.DeleteEdge(u, v)
			}
			if err != nil && err != graph.ErrDuplicateEdge && err != graph.ErrMissingEdge {
				t.Fatal(err)
			}
		}
		e.Flush()
		if err := e.WaitRebuilds(); err != nil {
			t.Fatal(err)
		}
		// Quiesce: whatever mix of re-rank and structural swaps landed,
		// answers equal the sequential oracle exactly.
		if !graph.Equal(e.Index().Graph(), ox.Graph()) {
			t.Fatalf("round %d: engine graph diverged from oracle", round)
		}
		for v := 0; v < n; v++ {
			gl, gc := e.CycleCount(v)
			wl, wc := ox.CycleCount(v)
			if gl != wl || gc != wc {
				t.Fatalf("round %d vertex %d: engine (%d,%d), oracle (%d,%d)", round, v, gl, gc, wl, wc)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if st := e.Stats(); st.OpsRejected != 0 {
		t.Fatalf("writer rejected %d ops", st.OpsRejected)
	}
}
