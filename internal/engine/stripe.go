package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// stripedRW is the engine's reader-epoch primitive: a set of
// cache-line-padded RWMutex shards. A reader enters its epoch by
// read-locking a single shard (picked from the query vertex, so readers
// for different vertices touch different cache lines); the writer's grace
// period is write-locking every shard in ascending order, which waits out
// every in-flight reader and blocks new ones until the batch is applied.
//
// This is the "sharded RWMutex" arm of the serving-engine design.
// BenchmarkEpochRead / BenchmarkSingleRWMutexRead in engine_test.go
// measure it against a single sync.RWMutex: on one core the two are
// within noise (an uncontended RLock is an uncontended RLock), and with
// GOMAXPROCS readers the single lock serializes every reader on one
// shared reader-count cache line while shards keep readers on their own
// lines — run the pair with -cpu to see the gap on your box.
type stripedRW struct {
	shards []paddedRW
	mask   uint32
}

type paddedRW struct {
	sync.RWMutex
	_ [128 - unsafe.Sizeof(sync.RWMutex{})%128]byte
}

// paddedCount is a cache-line-padded counter, striped like the lock
// shards: the hot read path bumps its own shard's counter so the query
// tally never puts all readers back on one shared cache line (which
// would undo what the lock striping buys).
type paddedCount struct {
	n atomic.Uint64
	_ [128 - 8]byte
}

// newStripedRW sizes the stripe to the core count, rounded up to a power
// of two and clamped to [1, 64]: more shards than cores buys nothing and
// only lengthens the writer's lock sweep.
func newStripedRW() *stripedRW {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return &stripedRW{shards: make([]paddedRW, n), mask: uint32(n - 1)}
}

// rlock enters a reader epoch on the shard h hashes to and returns the
// shard so the caller can leave it.
func (l *stripedRW) rlock(h uint32) *sync.RWMutex {
	m := &l.shards[h&l.mask].RWMutex
	m.RLock()
	return m
}

// rlockCtx is rlock bounded by a context: a reader that would otherwise
// wait out a long writer grace period (a wedged store stalling the
// writer mid-lockAll) gives up when its deadline passes. RWMutex has no
// native timed acquire, so this spins on TryRLock with a short sleep —
// the lock is only ever held against readers for the duration of a
// batch apply, so the poll loop is cold in practice.
func (l *stripedRW) rlockCtx(ctx context.Context, h uint32) (*sync.RWMutex, error) {
	m := &l.shards[h&l.mask].RWMutex
	if m.TryRLock() {
		return m, nil
	}
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		if m.TryRLock() {
			return m, nil
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// lockAll begins the writer's grace period: after it returns, every
// reader that entered before the call has left and none can enter.
func (l *stripedRW) lockAll() {
	for i := range l.shards {
		l.shards[i].Lock()
	}
}

// unlockAll ends the grace period, releasing shards in reverse order.
func (l *stripedRW) unlockAll() {
	for i := len(l.shards) - 1; i >= 0; i-- {
		l.shards[i].Unlock()
	}
}
