package engine

import (
	"sync/atomic"

	"repro/internal/bfscount"
	"repro/internal/bitpack"
)

// readCache is the engine's epoch-tagged per-vertex cycle-count cache:
// one packed (length, count) slot and one fill-epoch word per vertex,
// plus a per-vertex dirty epoch the writer bumps at batch commit. A
// cached answer serves a /cycle read in O(1) — no label join at all —
// and stays valid until a batch dirties exactly that vertex.
//
// Concurrency protocol (the correctness argument, not just a lock list):
//
//   - Readers call get/put only while holding their vertex's stripe
//     read-lock. A fill's value is therefore computed and stored inside
//     one reader epoch, during which no batch can apply — a stored value
//     is always current as of the last applied batch, never a stale
//     value stored late.
//   - The writer bumps dirtyAt under the full grace period (every stripe
//     write-locked), so readers observe it with the stripe lock's
//     happens-before edge; no atomics needed on dirtyAt.
//   - A slot hits when its fill epoch postdates the vertex's dirty
//     epoch. Invalidation is one plain word write per dirty vertex —
//     the value slot itself is never cleared, its epoch just expires.
//   - Concurrent fills of the same vertex race only against fills of
//     the same epoch interval, which all carry identical values (the
//     answer is a pure function of the labels, and labels only change
//     under the grace period); the atomics are for the race detector
//     and torn-word safety, not for ordering between different values.
//
// Epochs are engine batch sequence numbers, full 64-bit — no wrap.
type readCache struct {
	// fillAt[v] = seq+1 of the last applied batch at fill time; 0 =
	// never filled.
	fillAt []atomic.Uint64
	// val[v] = packed (length+1)<<24 | count; length+1 == 0 encodes "no
	// cycle". Lengths are at most (bitpack.MaxDist+1)/2 and counts at
	// most bitpack.MaxCount, so the pair fits comfortably under 64 bits.
	val []atomic.Uint64
	// dirtyAt[v] = sequence number of the last batch that dirtied v.
	// Writer-owned: written only under the grace period.
	dirtyAt []uint64
}

func newReadCache(n int) *readCache {
	return &readCache{
		fillAt:  make([]atomic.Uint64, n),
		val:     make([]atomic.Uint64, n),
		dirtyAt: make([]uint64, n),
	}
}

// get returns the cached answer for v, valid only while the caller holds
// v's stripe read-lock.
func (c *readCache) get(v int) (length int, count uint64, ok bool) {
	f := c.fillAt[v].Load()
	if f == 0 || f-1 < c.dirtyAt[v] {
		return 0, 0, false
	}
	packed := c.val[v].Load()
	lp := packed >> bitpack.CountBits
	if lp == 0 {
		return bfscount.NoCycle, 0, true
	}
	return int(lp) - 1, packed & bitpack.MaxCount, true
}

// put stores the answer computed for v under the stripe read-lock, tagged
// with the fill epoch (the last applied batch's sequence number). The
// value is stored before the epoch so a concurrent get that observes the
// epoch observes a value of the same epoch interval.
func (c *readCache) put(v int, seq uint64, length int, count uint64) {
	var packed uint64
	if length != bfscount.NoCycle {
		packed = uint64(length+1)<<bitpack.CountBits | count
	}
	c.val[v].Store(packed)
	c.fillAt[v].Store(seq + 1)
}

// invalidate expires every dirty vertex's slot as of batch seq. Must run
// under the grace period (all stripes locked).
func (c *readCache) invalidate(dirty []int, seq uint64) {
	for _, v := range dirty {
		c.dirtyAt[v] = seq
	}
}
