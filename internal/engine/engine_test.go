package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
)

// randomGraph builds a deterministic pseudo-random digraph.
func randomGraph(n, m int, seed int64) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

func buildIndex(n, m int, seed int64) *csc.Index {
	g := randomGraph(n, m, seed)
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	return x
}

func TestEngineBasicFlow(t *testing.T) {
	x := buildIndex(30, 60, 1)
	e := New(x, Options{})
	defer e.Close()

	// A triangle on vertices the random graph may not have connected.
	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if e.Index().Graph().HasEdge(p[0], p[1]) {
			continue
		}
		if err := e.Insert(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	l, _ := e.CycleCount(0)
	if l < 2 {
		t.Fatalf("vertex 0 should sit on a cycle after closing the triangle, got length %d", l)
	}

	// Queries agree with a direct index query at quiesce.
	for v := 0; v < e.NumVertices(); v++ {
		gl, gc := e.CycleCount(v)
		wl, wc := e.Index().CycleCount(v)
		if gl != wl || gc != wc {
			t.Fatalf("vertex %d: engine (%d,%d) vs index (%d,%d)", v, gl, gc, wl, wc)
		}
	}
}

func TestEngineRejectsBadOps(t *testing.T) {
	x := buildIndex(10, 20, 2)
	e := New(x, Options{})
	defer e.Close()

	if err := e.Insert(3, 3); err != graph.ErrSelfLoop {
		t.Fatalf("self-loop: got %v", err)
	}
	if err := e.Insert(-1, 3); err != graph.ErrVertexRange {
		t.Fatalf("negative vertex: got %v", err)
	}
	if err := e.Delete(3, 10); err != graph.ErrVertexRange {
		t.Fatalf("out-of-range vertex: got %v", err)
	}
	if l, c := e.CycleCount(99); l != -1 || c != 0 {
		// bfscount.NoCycle == -1
		t.Fatalf("out-of-range query: got (%d,%d)", l, c)
	}
	// A full-width id beyond int32 must be rejected, not wrap onto a
	// small valid vertex (1<<32+2 truncates to 2).
	if err := e.Insert(1<<32+2, 3); err != graph.ErrVertexRange {
		t.Fatalf("wrapping vertex id: got %v", err)
	}
	if e.Index().Graph().HasEdge(2, 3) {
		t.Fatal("wrapped id mutated the wrong edge")
	}
}

// Coalescing: duplicate inserts dedupe, insert+delete of the same edge
// cancels, and ops that are redundant against the live graph drop — the
// applied batch is the net effect.
func TestEngineCoalescesBatch(t *testing.T) {
	g := graph.New(6)
	_ = g.AddEdge(0, 1) // pre-existing edge
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	e := New(x, Options{FlushInterval: time.Hour}) // nothing applies until Flush
	defer e.Close()

	ops := []Op{
		{OpInsert, 0, 1},                   // duplicate of a live edge: drops
		{OpInsert, 1, 2},                   // survives
		{OpInsert, 2, 3}, {OpDelete, 2, 3}, // cancels
		{OpDelete, 0, 1}, {OpInsert, 0, 1}, // cancels back to the live edge
		{OpInsert, 3, 4}, {OpInsert, 3, 4}, // dedupes to one insert
		{OpDelete, 4, 5}, // deleting an absent edge: drops
	}
	for _, op := range ops {
		if err := e.Enqueue(op); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	st := e.Stats()
	if st.OpsEnqueued != uint64(len(ops)) {
		t.Fatalf("enqueued %d, want %d", st.OpsEnqueued, len(ops))
	}
	if st.OpsApplied != 2 { // (1,2) and (3,4)
		t.Fatalf("applied %d ops, want 2", st.OpsApplied)
	}
	if st.OpsCoalesced != uint64(len(ops)-2) {
		t.Fatalf("coalesced %d ops, want %d", st.OpsCoalesced, len(ops)-2)
	}
	if st.OpsRejected != 0 {
		t.Fatalf("rejected %d ops, want 0", st.OpsRejected)
	}
	gr := e.Index().Graph()
	for _, want := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if !gr.HasEdge(want[0], want[1]) {
			t.Fatalf("edge %v missing after flush", want)
		}
	}
	if gr.HasEdge(2, 3) || gr.HasEdge(4, 5) {
		t.Fatal("cancelled/dropped edge was applied")
	}
}

func TestEngineOnBatchHook(t *testing.T) {
	x := buildIndex(20, 40, 3)
	e := New(x, Options{})
	defer e.Close()

	var mu sync.Mutex
	var batches [][]Op
	var touched [][]int
	e.OnBatch(func(applied []Op, tv []int) {
		mu.Lock()
		batches = append(batches, append([]Op(nil), applied...))
		touched = append(touched, append([]int(nil), tv...))
		mu.Unlock()
	})

	g := e.Index().Graph()
	var a, b int
	for a, b = 0, 1; g.HasEdge(a, b); b++ {
	}
	if err := e.Insert(a, b); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("hook saw batches %v", batches)
	}
	if got := batches[0][0]; got.Kind != OpInsert || int(got.A) != a || int(got.B) != b {
		t.Fatalf("hook op %+v, want insert (%d,%d)", got, a, b)
	}
	// The endpoints are always in the touched set.
	seen := map[int]bool{}
	for _, v := range touched[0] {
		seen[v] = true
	}
	if !seen[a] || !seen[b] {
		t.Fatalf("touched %v misses endpoints (%d,%d)", touched[0], a, b)
	}
}

// WatchTopK's hook-driven scoreboard must agree with full re-query after
// every flushed batch.
func TestWatchTopKStaysExact(t *testing.T) {
	x := buildIndex(25, 50, 4)
	e := New(x, Options{MaxBatch: 4, FlushInterval: -1})
	defer e.Close()
	w := e.WatchTopK(5)

	r := rand.New(rand.NewSource(7))
	n := e.NumVertices()
	for step := 0; step < 30; step++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		var err error
		if e.Index().Graph().HasEdge(u, v) {
			err = e.Delete(u, v)
		} else {
			err = e.Insert(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
		e.Flush()
		for q := 0; q < n; q++ {
			wl, wc := e.Index().CycleCount(q)
			s := w.Score(q)
			if s.Exists != (wl != -1) || (s.Exists && (s.Length != wl || s.Count != wc)) {
				t.Fatalf("step %d vertex %d: score %+v, want (%d,%d)", step, q, s, wl, wc)
			}
		}
	}
}

func TestEngineClosedErrors(t *testing.T) {
	x := buildIndex(10, 20, 5)
	e := New(x, Options{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, 1); err != ErrClosed {
		t.Fatalf("insert after close: %v", err)
	}
	if err := e.Snapshot(); err != ErrClosed {
		t.Fatalf("snapshot after close: %v", err)
	}
	// Close is idempotent.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Queries still work on the frozen state.
	if l, _ := e.CycleCount(0); l == 0 {
		t.Fatal("query after close broke")
	}
}

// The measurement behind the striped-RWMutex design decision: readers on
// a single RWMutex serialize on the shared reader count, shards don't.
func BenchmarkEpochRead(b *testing.B) {
	x := buildIndex(500, 1500, 6)
	e := New(x, Options{})
	defer e.Close()
	b.RunParallel(func(pb *testing.PB) {
		v := rand.Intn(500)
		for pb.Next() {
			e.CycleCount(v)
			v++
			if v >= 500 {
				v = 0
			}
		}
	})
}

func BenchmarkSingleRWMutexRead(b *testing.B) {
	x := buildIndex(500, 1500, 6)
	var mu sync.RWMutex
	b.RunParallel(func(pb *testing.PB) {
		v := rand.Intn(500)
		for pb.Next() {
			mu.RLock()
			x.CycleCount(v)
			mu.RUnlock()
			v++
			if v >= 500 {
				v = 0
			}
		}
	})
}
