package engine

import (
	"testing"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
)

// twoSixRings builds ring A over 0..5 and ring B over 6..11, plus the
// given extra edges — two shards when built sharded.
func twoSixRings(t *testing.T, extra ...[2]int) *graph.Digraph {
	t.Helper()
	g := graph.New(12)
	for k := 0; k < 6; k++ {
		if err := g.AddEdge(k, (k+1)%6); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(6+k, 6+(k+1)%6); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range extra {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func oobEngine(g *graph.Digraph, threshold int) *Engine {
	x, _ := csc.BuildSharded(g, csc.Options{})
	return New(x, Options{
		FlushInterval:       -1,
		UpdateWorkers:       1,
		OOBRebuildThreshold: threshold,
	})
}

// assertOracle checks every vertex against the indexless BFS oracle on
// the engine's own (quiesced) graph.
func assertOracle(t *testing.T, tag string, e *Engine) {
	t.Helper()
	fg := e.Index().Graph()
	for v := 0; v < e.NumVertices(); v++ {
		wl, wc := bfscount.CycleCount(fg, v)
		gl, gc := e.CycleCount(v)
		if gl != wl || gc != wc {
			t.Fatalf("%s: vertex %d: engine (%d,%d) != oracle (%d,%d)", tag, v, gl, gc, wl, wc)
		}
	}
}

// A batch that merges two shards into a component above the threshold
// must commit without an inline rebuild: during the out-of-band window
// every read is either the exact pre-batch answer (stale shard) or the
// exact post-batch one (swap landed), never garbage — and after
// WaitRebuilds the swap has invalidated the read cache, refreshed the
// top-k scoreboard through the post-swap hook, and cleared Degraded.
func TestOOBRebuildStaleWindowThenSwap(t *testing.T) {
	e := oobEngine(twoSixRings(t), 8)
	defer e.Close()
	watch := e.WatchTopK(3)

	// Merge batch: break both rings and splice them into one 12-cycle.
	for _, del := range [][2]int{{0, 1}, {11, 6}} {
		if err := e.Delete(del[0], del[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, ins := range [][2]int{{0, 6}, {11, 1}} {
		if err := e.Insert(ins[0], ins[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	// The out-of-band window: the swap may or may not have landed yet,
	// but every answer must be one of the two consistent states. Reading
	// here also primes the read cache, so the post-wait reads below prove
	// the swap invalidated it.
	for v := 0; v < 12; v++ {
		l, c := e.CycleCount(v)
		if !(l == 6 && c == 1) && !(l == 12 && c == 1) {
			t.Fatalf("stale window vertex %d: (%d,%d) is neither pre-batch (6,1) nor post-batch (12,1)", v, l, c)
		}
	}

	if err := e.WaitRebuilds(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		if l, c := e.CycleCount(v); l != 12 || c != 1 {
			t.Fatalf("post-swap vertex %d: (%d,%d), want (12,1)", v, l, c)
		}
	}
	assertOracle(t, "post-swap", e)

	st := e.Stats()
	if len(st.Degraded) != 0 {
		t.Fatalf("Degraded = %v after WaitRebuilds", st.Degraded)
	}
	if st.OOBRebuilds != 1 {
		t.Fatalf("OOBRebuilds = %d, want 1", st.OOBRebuilds)
	}
	top := watch.Top()
	if len(top) == 0 {
		t.Fatal("top-k empty after swap")
	}
	for _, sc := range top {
		if sc.Length != 12 || sc.Count != 1 {
			t.Fatalf("top-k vertex %d scored (%d,%d) — swap hook did not rescore", sc.Vertex, sc.Length, sc.Count)
		}
	}
}

// A flapped bridge — split deferred, then the edge re-inserted — must
// leave the engine fully fresh at quiesce with the original answers,
// whether the flap dissolved the deferral (zero rebuilds) or the first
// rebuild won the race and a second one restored the merge.
func TestOOBFlapQuiesces(t *testing.T) {
	e := oobEngine(twoSixRings(t, [2]int{5, 6}, [2]int{11, 0}), 4)
	defer e.Close()

	if err := e.Delete(5, 6); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Insert(5, 6); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.WaitRebuilds(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if len(st.Degraded) != 0 {
		t.Fatalf("Degraded = %v after flap quiesce", st.Degraded)
	}
	assertOracle(t, "after flap", e)
}

// The durability barrier: snapshots and serialization must never
// capture a stale shard. A snapshot taken immediately after a deferring
// batch must recover — in a fresh engine — to the exact post-batch
// answers.
func TestOOBSnapshotBarrierAndRecovery(t *testing.T) {
	dir := t.TempDir()
	boot := func() (csc.Counter, error) {
		x, _ := csc.BuildSharded(twoSixRings(t), csc.Options{})
		return x, nil
	}
	opts := Options{FlushInterval: -1, UpdateWorkers: 1, OOBRebuildThreshold: 8}
	e, err := Open(dir, boot, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, del := range [][2]int{{0, 1}, {11, 6}} {
		if err := e.Delete(del[0], del[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, ins := range [][2]int{{0, 6}, {11, 1}} {
		if err := e.Insert(ins[0], ins[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	// No WaitRebuilds: Snapshot itself must await the pending swap
	// rather than serialize a frozen shard.
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, boot, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for v := 0; v < 12; v++ {
		if l, c := e2.CycleCount(v); l != 12 || c != 1 {
			t.Fatalf("recovered vertex %d: (%d,%d), want (12,1)", v, l, c)
		}
	}
	if st := e2.Stats(); len(st.Degraded) != 0 {
		t.Fatalf("recovered engine Degraded = %v", st.Degraded)
	}
}
