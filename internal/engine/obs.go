package engine

import (
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/csc"
	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/pll"
)

// Engine observability: every counter the engine keeps is an obs.Counter
// (standalone atomic words — a zero-value Counter works without any
// registry, so /stats is always live), and when Options.Metrics is set
// initObs registers the whole surface into it func-backed: the scrape
// reads the very same words /stats reads, so the two endpoints cannot
// drift. Latency histograms and the batch-lifecycle trace ring only
// exist with a registry; recording into their nil zero forms is a no-op,
// so the instrumented code paths carry no branches.

// stageHists caches the per-stage children of the batch-stage histogram
// vec, resolved once at startup so the writer never takes the vec's map
// lock.
type stageHists struct {
	coalesce, wal, ship, plan, apply, rebuild, hooks *obs.Histogram
}

// rebuildDone carries a finished out-of-band rebuild back to the writer
// goroutine, with how long the background Run took (the trace's rebuild
// stage — the writer never observed that time itself).
type rebuildDone struct {
	r     *csc.Rebuild
	runNS int64
}

// initObs wires the engine's observability: the trace ring (on whenever
// metrics are, or explicitly sized), and — with a registry — the full
// metric surface. One registry serves one engine; a second engine needs
// its own (registration panics on duplicate names by design).
func (e *Engine) initObs() {
	ring := e.opts.TraceRingSize
	if ring == 0 && e.opts.Metrics != nil {
		ring = defaultTraceRing
	}
	if ring > 0 {
		e.trace = obs.NewRing(ring)
	}
	reg := e.opts.Metrics
	if reg == nil {
		return
	}

	reg.CounterFunc("cscd_queries_total", "client cycle-count queries served", func() uint64 {
		var q uint64
		for i := range e.queries {
			q += e.queries[i].n.Load()
		}
		return q
	})
	reg.CounterFunc("cscd_cache_hits_total", "client queries answered from the result cache", func() uint64 {
		var h uint64
		for i := range e.hits {
			h += e.hits[i].n.Load()
		}
		return h
	})
	reg.CounterFunc("cscd_ops_enqueued_total", "edge ops accepted into the mailbox", e.enqueued.Load)
	reg.CounterFunc("cscd_ops_applied_total", "edge ops applied to the index", e.applied.Load)
	reg.CounterFunc("cscd_ops_coalesced_total", "edge ops cancelled by batch coalescing", e.coalesced.Load)
	reg.CounterFunc("cscd_ops_rejected_total", "edge ops dropped after admission", e.rejected.Load)
	reg.CounterFunc("cscd_ops_shed_total", "edge ops shed by the shed admission policy", e.shed.Load)
	reg.CounterFunc("cscd_ops_overload_total", "enqueues refused or abandoned on a full mailbox", e.overload.Load)
	reg.CounterFunc("cscd_batches_total", "update batches applied", e.batches.Load)
	reg.CounterFunc("cscd_snapshots_total", "full snapshots written", e.snaps.Load)
	reg.CounterFunc("cscd_wal_retries_total", "WAL appends retried after an error", e.walRetries.Load)

	reg.GaugeFunc("cscd_seq", "sequence number of the last applied batch", func() float64 { return float64(e.seq.Load()) })
	reg.GaugeFunc("cscd_queue_depth", "ops waiting in the update mailbox", func() float64 { return float64(len(e.mail)) })
	reg.GaugeFunc("cscd_mailbox_cap", "update mailbox capacity", func() float64 { return float64(cap(e.mail)) })
	reg.GaugeFunc("cscd_read_only", "1 while durability-lost read-only mode is engaged", func() float64 {
		if e.readOnly.Load() {
			return 1
		}
		return 0
	})
	if e.store != nil {
		reg.GaugeFunc("cscd_wal_bytes", "write-ahead log size in bytes", func() float64 { return float64(e.walBytes.Load()) })
	}
	reg.GaugeFunc("cscd_vertices", "vertices served", func() float64 { return float64(e.n) })
	reg.GaugeFunc("cscd_graph_edges", "edges in the served graph", func() float64 {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		return float64(e.ix.Graph().NumEdges())
	})
	reg.GaugeFunc("cscd_label_entries", "hub label entries in the index", func() float64 {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		return float64(e.ix.EntryCount())
	})
	reg.GaugeFunc("cscd_label_bytes", "hub label footprint in bytes", func() float64 {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		return float64(e.ix.Bytes())
	})
	if cx, ok := e.ix.(interface{ CompressedBytes() int }); ok {
		reg.GaugeFunc("cscd_label_compressed_bytes", "compressed frozen-arena label footprint in bytes (0 when labels are uncompressed)", func() float64 {
			m := e.lock.rlock(0)
			defer m.RUnlock()
			return float64(cx.CompressedBytes())
		})
		reg.GaugeFunc("cscd_label_bytes_per_entry", "compressed label bytes per entry (0 when labels are uncompressed)", func() float64 {
			m := e.lock.rlock(0)
			defer m.RUnlock()
			n := e.ix.EntryCount()
			b := cx.CompressedBytes()
			if n == 0 || b == 0 {
				return 0
			}
			return float64(b) / float64(n)
		})
	}
	reg.CounterFunc("cscd_labels_refrozen_total", "thawed label lists folded back into the compressed arena at quiesce", e.refrozen.Load)
	reg.CounterFunc("cscd_bloom_checks_total", "join calls screened by label bloom signatures", func() uint64 {
		c, _ := label.BloomStats()
		return c
	})
	reg.CounterFunc("cscd_bloom_rejects_total", "join calls rejected by bloom signatures without decoding an entry", func() uint64 {
		_, r := label.BloomStats()
		return r
	})
	reg.GaugeFunc("cscd_heap_inuse_bytes", "Go heap bytes in live spans (mmap'd label arenas are file-backed and excluded)", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	})

	e.joinNS = reg.Histogram("cscd_query_join_seconds", "cache-miss label-join latency")
	e.boundedNS = reg.Histogram("cscd_query_bounded_seconds", "cache-miss bounded-query kernel latency")
	e.batchNS = reg.Histogram("cscd_batch_seconds", "whole-batch writer latency, coalesce through hooks")
	e.snapNS = reg.Histogram("cscd_snapshot_seconds", "full snapshot write latency")
	stages := reg.HistogramVec("cscd_batch_stage_seconds", "per-stage batch latency", "stage")
	e.stageNS = stageHists{
		coalesce: stages.With("coalesce"),
		wal:      stages.With("wal"),
		ship:     stages.With("ship"),
		plan:     stages.With("plan"),
		apply:    stages.With("apply"),
		rebuild:  stages.With("rebuild"),
		hooks:    stages.With("hooks"),
	}
	if e.store != nil {
		e.store.appendNS = reg.Histogram("cscd_wal_append_seconds", "WAL record append latency including fsync")
		e.store.fsyncNS = reg.Histogram("cscd_wal_fsync_seconds", "WAL fsync latency")
	}

	sx, sharded := e.ix.(*csc.Sharded)
	if !sharded {
		return
	}
	e.staleHist = reg.Histogram("cscd_oob_stale_seconds", "out-of-band rebuild freeze-to-swap stale window")
	e.oobRunNS = reg.Histogram("cscd_oob_rebuild_seconds", "out-of-band background rebuild run time")
	reg.GaugeFunc("cscd_degraded_shards", "shard slots currently serving stale answers", func() float64 {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		return float64(len(sx.StaleShards()))
	})
	reg.CounterFunc("cscd_oob_rebuilds_total", "out-of-band rebuild components completed", func() uint64 {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		c, _ := sx.OOBRebuilds()
		return uint64(c)
	})
	reg.CounterFunc("cscd_oob_superseded_total", "out-of-band rebuilds superseded before completing", func() uint64 {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		_, s := sx.OOBRebuilds()
		return uint64(s)
	})
	reg.CounterFunc("cscd_reranks_total", "online hub re-rank rebuilds initiated", e.reranks.Load)
	// Per-shard footprint, one sample per live slot. Each collector takes
	// one shard-stats pass under a reader epoch — scrape-time only.
	shardStats := func() []csc.ShardStat {
		m := e.lock.rlock(0)
		defer m.RUnlock()
		return sx.ShardStats()
	}
	reg.Collect("cscd_shard_entries", "label entries per shard slot", "shard", func(emit func(string, float64)) {
		for _, s := range shardStats() {
			emit(strconv.Itoa(s.Slot), float64(s.Entries))
		}
	})
	reg.Collect("cscd_shard_label_bytes", "label bytes per shard slot", "shard", func(emit func(string, float64)) {
		for _, s := range shardStats() {
			emit(strconv.Itoa(s.Slot), float64(s.LabelBytes))
		}
	})
	reg.Collect("cscd_shard_vertices", "member vertices per shard slot", "shard", func(emit func(string, float64)) {
		for _, s := range shardStats() {
			emit(strconv.Itoa(s.Slot), float64(s.Vertices))
		}
	})
	reg.Collect("cscd_shard_rebuilds", "fresh index installs per shard slot", "shard", func(emit func(string, float64)) {
		for _, s := range shardStats() {
			emit(strconv.Itoa(s.Slot), float64(s.Rebuilds))
		}
	})
	reg.Collect("cscd_shard_order", "hub-order strategy wire id serving at each shard slot", "shard", func(emit func(string, float64)) {
		for _, s := range shardStats() {
			emit(strconv.Itoa(s.Slot), float64(s.Order))
		}
	})
	reg.Collect("cscd_shard_stale", "1 while the shard slot serves stale answers", "shard", func(emit func(string, float64)) {
		for _, s := range shardStats() {
			v := 0.0
			if s.Stale {
				v = 1
			}
			emit(strconv.Itoa(s.Slot), v)
		}
	})
}

// defaultTraceRing is the trace ring depth when metrics are enabled and
// Options.TraceRingSize is zero.
const defaultTraceRing = 64

// Metrics returns the engine's registry (nil when Options.Metrics was
// nil). The serve layer mounts /metrics over it.
func (e *Engine) Metrics() *obs.Registry { return e.opts.Metrics }

// Traces returns the recent batch-lifecycle traces, oldest first (nil
// without a trace ring). The serve layer's /debug/trace source.
func (e *Engine) Traces() []obs.BatchTrace { return e.trace.Snapshot() }

// recordBatch lands one applied batch in the stage histograms and the
// trace ring. Runs on the writer goroutine after the hooks; everything
// here is nil-safe, so the uninstrumented engine pays only the
// time.Now() reads in applyPending.
func (e *Engine) recordBatch(seq uint64, start time.Time, raw int, batch []Op, dirty []int,
	st pll.UpdateStats, deferred bool, waitNS, coalesceNS, walNS, shipNS, applyNS, hooksNS int64) {
	planNS := st.PlanDuration.Nanoseconds()
	rebuildNS := st.BuildDuration.Nanoseconds()
	e.stageNS.coalesce.Observe(coalesceNS)
	if e.store != nil {
		e.stageNS.wal.Observe(walNS)
	}
	if e.opts.Replication != nil {
		e.stageNS.ship.Observe(shipNS)
	}
	e.stageNS.plan.Observe(planNS)
	e.stageNS.apply.Observe(applyNS)
	e.stageNS.rebuild.Observe(rebuildNS)
	e.stageNS.hooks.Observe(hooksNS)
	e.batchNS.ObserveSince(start)
	if e.trace == nil {
		return
	}
	stages := []obs.Stage{
		{Name: "coalesce", DurNS: coalesceNS},
		{Name: "wal", DurNS: walNS},
	}
	// The ship stage appears only when a replication sink is attached, so
	// unreplicated deployments keep their six-stage traces.
	if e.opts.Replication != nil {
		stages = append(stages, obs.Stage{Name: "ship", DurNS: shipNS})
	}
	stages = append(stages,
		obs.Stage{Name: "plan", DurNS: planNS},
		obs.Stage{Name: "apply", DurNS: applyNS},
		obs.Stage{Name: "rebuild", DurNS: rebuildNS},
		obs.Stage{Name: "hooks", DurNS: hooksNS},
	)
	e.trace.Add(obs.BatchTrace{
		Seq:      seq,
		Kind:     "batch",
		Start:    start,
		Raw:      raw,
		Ops:      len(batch),
		Shards:   e.dirtyShards(dirty),
		Deferred: deferred,
		WaitNS:   waitNS,
		Stages:   stages,
		TotalNS:  time.Since(start).Nanoseconds(),
	})
}

// dirtyShards maps a batch's dirty vertices to the sorted shard slots
// they live in (nil for the monolithic index). Writer goroutine only.
func (e *Engine) dirtyShards(dirty []int) []int {
	sx, ok := e.ix.(*csc.Sharded)
	if !ok {
		return nil
	}
	seen := make(map[int]struct{})
	var out []int
	for _, v := range dirty {
		s := sx.ShardOf(v)
		if s < 0 {
			continue
		}
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
