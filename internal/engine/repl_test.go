package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/obs"
)

// recSink records every shipped batch and Close call.
type recSink struct {
	mu         sync.Mutex
	seqs       []uint64
	ops        [][]Op
	closes     int
	errOnClose error
}

func (s *recSink) ShipBatch(seq uint64, ops []Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]Op, len(ops))
	copy(cp, ops)
	s.seqs = append(s.seqs, seq)
	s.ops = append(s.ops, cp)
}

func (s *recSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closes++
	return s.errOnClose
}

func (s *recSink) snapshot() ([]uint64, [][]Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.seqs...), append([][]Op(nil), s.ops...)
}

// Every committed batch reaches the sink exactly once, in sequence
// order, carrying the coalesced ops — and Close runs the sink's barrier
// exactly once, before the engine reports done.
func TestReplSinkReceivesCommittedBatches(t *testing.T) {
	dir := t.TempDir()
	sink := &recSink{}
	e, err := Open(dir, emptyIndex(6), Options{FlushInterval: -1, Replication: sink})
	if err != nil {
		t.Fatal(err)
	}

	batches := [][][2]int{{{0, 1}, {1, 0}}, {{1, 2}}, {{2, 0}}}
	for _, b := range batches {
		for _, p := range b {
			if err := e.Insert(p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
	}

	seqs, ops := sink.snapshot()
	if len(seqs) == 0 {
		t.Fatal("no batches shipped")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("shipped seqs not consecutive: %v", seqs)
		}
	}
	if seqs[len(seqs)-1] != e.Seq() {
		t.Fatalf("last shipped seq %d, engine at %d", seqs[len(seqs)-1], e.Seq())
	}
	var shippedOps int
	for _, b := range ops {
		shippedOps += len(b)
	}
	if want := int(e.Stats().OpsApplied); shippedOps != want {
		t.Fatalf("shipped %d ops, applied %d", shippedOps, want)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes)
	}
}

// A batch the WAL could not persist is dropped, not shipped: the
// follower must never hold a record the primary's own recovery would
// lose.
func TestReplSinkSkipsDroppedBatches(t *testing.T) {
	dir := t.TempDir()
	sink := &recSink{}
	e, err := Open(dir, emptyIndex(6), Options{FlushInterval: -1, Replication: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	// Disk goes away: the next batch fails its WAL append and is dropped.
	if err := e.store.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if !e.ReadOnly() {
		t.Fatal("failed append did not enter read-only mode")
	}
	seqs, _ := sink.snapshot()
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("shipped seqs %v, want exactly [1]", seqs)
	}
	_ = e.Close() // store already broken; error expected
}

// A replication barrier that cannot deliver its backlog surfaces on
// Close — a clean shutdown must not silently abandon acked writes the
// follower never saw.
func TestReplSinkCloseErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	wantErr := errors.New("follower unreachable, 3 batches undelivered")
	sink := &recSink{errOnClose: wantErr}
	e, err := Open(dir, emptyIndex(4), Options{FlushInterval: -1, Replication: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close err %v, want the sink's barrier error", err)
	}
}

// The ship stage is observable: with metrics on, committed batches show
// a "ship" stage in the batch trace.
func TestReplShipStageTraced(t *testing.T) {
	sink := &recSink{}
	ix, err := emptyIndex(4)()
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, Options{FlushInterval: -1, Replication: sink, Metrics: obs.New()})
	defer e.Close()
	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	found := false
	for _, tr := range e.Traces() {
		for _, st := range tr.Stages {
			if st.Name == "ship" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no ship stage in batch traces")
	}
}
