package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestMetricsExposition: the /metrics families are served and agree with
// Stats — the scrape reads the same counter words, so the values must
// match exactly once the engine is quiescent.
func TestMetricsExposition(t *testing.T) {
	reg := obs.New()
	x, _ := csc.BuildSharded(twoSixRings(t), csc.Options{})
	e := New(x, Options{FlushInterval: -1, Metrics: reg})
	defer e.Close()

	if err := e.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	for v := 0; v < 5; v++ {
		e.CycleCount(v)
		e.CycleCount(v) // second read is a cache hit
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	st := e.Stats()
	for _, want := range []string{
		fmt.Sprintf("cscd_queries_total %d", st.Queries),
		fmt.Sprintf("cscd_cache_hits_total %d", st.CacheHits),
		fmt.Sprintf("cscd_ops_applied_total %d", st.OpsApplied),
		fmt.Sprintf("cscd_batches_total %d", st.Batches),
		fmt.Sprintf("cscd_seq %d", st.Seq),
		"cscd_query_join_seconds_count",
		"cscd_batch_stage_seconds_bucket{stage=\"plan\"",
		`cscd_shard_entries{shard="0"}`,
		`cscd_shard_rebuilds{shard="`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if st.Queries != 10 || st.CacheHits < 5 {
		t.Fatalf("unexpected query stats: %+v", st)
	}
	// The miss-path join histogram saw exactly the cold reads.
	if got := e.joinNS.Snapshot().Count; got != st.Queries-st.CacheHits {
		t.Fatalf("join histogram count %d != cold reads %d", got, st.Queries-st.CacheHits)
	}
}

// TestBatchLifecycleTrace: an applied batch leaves one complete trace
// entry — all six stages in order, the committed sequence number, and
// the shard slots it touched.
func TestBatchLifecycleTrace(t *testing.T) {
	reg := obs.New()
	x, _ := csc.BuildSharded(twoSixRings(t), csc.Options{})
	e := New(x, Options{FlushInterval: -1, Metrics: reg})
	defer e.Close()

	// A chord inside ring A: an intra-shard insert that closes new cycles,
	// so the dirty set stays inside a live shard.
	if err := e.Insert(2, 0); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	traces := e.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	tr := traces[len(traces)-1]
	if tr.Kind != "batch" || tr.Seq != e.Seq() || tr.Ops != 1 || tr.Raw != 1 {
		t.Fatalf("unexpected trace: %+v", tr)
	}
	wantStages := []string{"coalesce", "wal", "plan", "apply", "rebuild", "hooks"}
	if len(tr.Stages) != len(wantStages) {
		t.Fatalf("stages %v", tr.Stages)
	}
	for i, s := range tr.Stages {
		if s.Name != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
	}
	if tr.TotalNS <= 0 || tr.WaitNS < 0 {
		t.Fatalf("degenerate timings: %+v", tr)
	}
	// Deleting a ring edge splits the shard: the rebuilt slots are listed.
	if len(tr.Shards) == 0 {
		t.Fatalf("no shards recorded: %+v", tr)
	}
}

// TestOOBSwapTrace: a deferring batch marks itself Deferred, and the
// background rebuild's swap lands as its own trace entry carrying the
// freeze→swap stale window.
func TestOOBSwapTrace(t *testing.T) {
	reg := obs.New()
	x, _ := csc.BuildSharded(twoSixRings(t), csc.Options{})
	e := New(x, Options{FlushInterval: -1, UpdateWorkers: 1, OOBRebuildThreshold: 8, Metrics: reg})
	defer e.Close()

	for _, del := range [][2]int{{0, 1}, {11, 6}} {
		if err := e.Delete(del[0], del[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, ins := range [][2]int{{0, 6}, {11, 1}} {
		if err := e.Insert(ins[0], ins[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	if err := e.WaitRebuilds(); err != nil {
		t.Fatal(err)
	}

	var deferredBatch, swap *obs.BatchTrace
	traces := e.Traces()
	for i := range traces {
		switch {
		case traces[i].Kind == "batch" && traces[i].Deferred:
			deferredBatch = &traces[i]
		case traces[i].Kind == "oob-swap":
			swap = &traces[i]
		}
	}
	if deferredBatch == nil {
		t.Fatalf("no deferred batch trace in %+v", traces)
	}
	if swap == nil {
		t.Fatalf("no oob-swap trace in %+v", traces)
	}
	if swap.StaleNS <= 0 {
		t.Fatalf("swap has no stale window: %+v", swap)
	}
	if len(swap.Stages) != 2 || swap.Stages[0].Name != "rebuild" || swap.Stages[1].Name != "swap" {
		t.Fatalf("swap stages: %+v", swap.Stages)
	}
	if len(swap.Shards) == 0 {
		t.Fatalf("swap lists no shards: %+v", swap)
	}
	if got := e.staleHist.Snapshot().Count; got != 1 {
		t.Fatalf("stale-window histogram count %d, want 1", got)
	}
	assertOracle(t, "post-swap", e)
}

// BenchmarkObsOverhead measures the cache-hit read path with and without
// metrics enabled. A hit executes no instrumentation at all — no clock
// reads, no histogram writes — so the two arms must sit within noise of
// each other; only the per-query striped counter (present in both) runs.
func BenchmarkObsOverhead(b *testing.B) {
	ring := func() *graph.Digraph {
		g := graph.New(64)
		for k := 0; k < 64; k++ {
			if err := g.AddEdge(k, (k+1)%64); err != nil {
				b.Fatal(err)
			}
		}
		return g
	}
	for _, arm := range []struct {
		name string
		reg  func() *obs.Registry
	}{
		{"noop", func() *obs.Registry { return nil }},
		{"instrumented", obs.New},
	} {
		b.Run(arm.name, func(b *testing.B) {
			x, _ := csc.BuildSharded(ring(), csc.Options{})
			e := New(x, Options{FlushInterval: -1, Metrics: arm.reg()})
			defer e.Close()
			for v := 0; v < 64; v++ {
				e.CycleCount(v) // warm the cache: the benchmark loop is all hits
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.CycleCount(i & 63)
			}
		})
	}
}
