package engine

import (
	"testing"

	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
)

// Regression pin for mailbox coalescing: the net effect of a batch must
// be computed against the live graph state, never within-batch only. The
// dangerous case is an insert+delete pair of the same edge when the edge
// pre-existed — within-batch-only cancellation would drop the pair to a
// no-op and leave the deleted edge's labels alive; the correct net effect
// is a single delete.
func TestCoalesceNetEffectAgainstLiveGraph(t *testing.T) {
	pair := func(kinds ...OpKind) []Op {
		var ops []Op
		for _, k := range kinds {
			ops = append(ops, Op{Kind: k, A: 0, B: 1})
		}
		return ops
	}
	cases := []struct {
		name     string
		preExist bool
		pending  []Op
		want     []Op // net batch coalesce must emit
	}{
		{"insert+delete of pre-existing edge nets to delete", true,
			pair(OpInsert, OpDelete), pair(OpDelete)},
		{"delete+insert of pre-existing edge nets to nothing", true,
			pair(OpDelete, OpInsert), nil},
		{"insert+delete of absent edge nets to nothing", false,
			pair(OpInsert, OpDelete), nil},
		{"delete+insert of absent edge nets to insert", false,
			pair(OpDelete, OpInsert), pair(OpInsert)},
		{"insert+delete+insert of pre-existing edge nets to nothing", true,
			pair(OpInsert, OpDelete, OpInsert), nil},
		{"delete+insert+delete of pre-existing edge nets to delete", true,
			pair(OpDelete, OpInsert, OpDelete), pair(OpDelete)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.New(3)
			if tc.preExist {
				_ = g.AddEdge(0, 1)
			}
			_ = g.AddEdge(1, 2)
			_ = g.AddEdge(2, 0)
			ix, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
			e := New(ix, Options{FlushInterval: -1})
			defer e.Close()
			e.pending = append(e.pending, tc.pending...)
			got := e.coalesce()
			if len(got) != len(tc.want) {
				t.Fatalf("coalesce emitted %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("coalesce emitted %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// End-to-end pin: an insert+delete pair of a pre-existing edge, enqueued
// into one batch, must actually delete the edge — the engine's answers
// and graph must match an oracle that applied the pair sequentially.
func TestCoalescePreexistingPairAppliesDelete(t *testing.T) {
	g := graph.New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 0)
	ix, _ := csc.Build(g.Clone(), order.ByDegree(g), csc.Options{})
	ox, _ := csc.Build(g, order.ByDegree(g), csc.Options{})

	// A long flush interval parks the writer until Flush, so both ops
	// land in the same drained batch.
	e := New(ix, Options{FlushInterval: 1 << 30})
	defer e.Close()
	if err := e.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	if _, err := ox.InsertEdge(0, 1); err != graph.ErrDuplicateEdge {
		t.Fatalf("oracle insert: %v", err)
	}
	if _, err := ox.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if e.Index().Graph().HasEdge(0, 1) {
		t.Fatal("edge survived an insert+delete pair over a pre-existing edge")
	}
	for v := 0; v < 3; v++ {
		gl, gc := e.CycleCount(v)
		wl, wc := ox.CycleCount(v)
		if gl != wl || gc != wc {
			t.Fatalf("vertex %d: engine (%d,%d), oracle (%d,%d)", v, gl, gc, wl, wc)
		}
	}
	st := e.Stats()
	if st.OpsApplied != 1 || st.OpsCoalesced != 1 {
		t.Fatalf("applied %d / coalesced %d, want 1 / 1", st.OpsApplied, st.OpsCoalesced)
	}
}
