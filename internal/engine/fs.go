package engine

import (
	"io"
	"os"
	"syscall"
)

// StoreIO is the filesystem seam under the Store: every byte the
// durability path reads or writes goes through one of these methods.
// Production uses OSIO (thin os wrappers); tests substitute a
// fault-injecting implementation (internal/faultstore) to script write
// errors, torn tails, fsync latency, and crash points into the exact
// WAL/snapshot boundary they target. Implementations must be safe for
// use from the engine's writer goroutine plus Recover at open time —
// the Store itself never calls them concurrently.
type StoreIO interface {
	// MkdirAll creates the store directory (os.MkdirAll semantics).
	MkdirAll(dir string, perm os.FileMode) error
	// OpenFile opens the WAL for read/write, creating it if absent.
	OpenFile(name string, flag int, perm os.FileMode) (StoreFile, error)
	// Create truncate-creates a file (snapshot temp files).
	Create(name string) (StoreFile, error)
	// Open opens a file (or directory, for dir fsync) read-only.
	Open(name string) (StoreFile, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
}

// StoreFile is the file handle surface the Store needs. *os.File
// satisfies it directly.
type StoreFile interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Fd() uintptr
}

// OSIO is the production StoreIO: direct os calls.
var OSIO StoreIO = osIO{}

type osIO struct{}

func (osIO) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osIO) OpenFile(name string, flag int, perm os.FileMode) (StoreFile, error) {
	return os.OpenFile(name, flag, perm)
}

func (osIO) Create(name string) (StoreFile, error) { return os.Create(name) }

func (osIO) Open(name string) (StoreFile, error) { return os.Open(name) }

func (osIO) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// flockExclusive takes the non-blocking exclusive advisory lock OpenStore
// relies on for single-writer stores. Split out so wrapped files (fault
// injection) lock the same underlying descriptor.
func flockExclusive(f StoreFile) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
