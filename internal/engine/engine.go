// Package engine turns a csc.Counter — the monolithic or the SCC-sharded
// CSC index — into a concurrent serving system: any
// number of reader goroutines answer SCCnt queries while one writer
// goroutine drains a batched update mailbox, coalesces redundant edge
// operations against the live graph, applies each batch inside a short
// grace period, and — when a store directory is configured — appends
// every applied batch to a write-ahead log with periodic full snapshots,
// so a killed process recovers its exact pre-crash labels by replaying
// WAL-over-snapshot (wal.go documents the on-disk format).
//
// Reads enter cheap epochs by read-locking one shard of a cache-line
// padded striped RWMutex (stripe.go); the writer's grace period locks
// every shard. Consumers that must follow updates (the top-k monitor)
// ride the post-batch hook: it runs on the writer goroutine after the
// grace period ends, so it reads a quiescent index without blocking
// readers.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/pll"
)

// OpKind discriminates mailbox operations.
type OpKind uint8

const (
	// OpInsert inserts a directed edge.
	OpInsert OpKind = 1
	// OpDelete deletes a directed edge.
	OpDelete OpKind = 2
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "?"
}

// Op is one edge operation in the update mailbox.
type Op struct {
	Kind OpKind
	A, B int32
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("engine: closed")

// ErrOverloaded is returned by enqueues under the reject admission
// policy when the mailbox is full: the writer is saturated and the
// caller should back off and retry (the HTTP layer maps it to 429 +
// Retry-After).
var ErrOverloaded = errors.New("engine: overloaded: update mailbox full")

// ErrReadOnly is returned by enqueues while the engine is in read-only
// degraded mode: a WAL append failed past its retry budget (or a
// snapshot failed), so accepting updates would let served state run
// ahead of what recovery can reconstruct. Reads keep serving; a
// successful Snapshot heals the store and re-enables updates.
var ErrReadOnly = errors.New("engine: read-only: durability lost, updates disabled until a successful snapshot")

// ReplSink receives every batch the engine commits, in order, on the
// writer goroutine — the seam a cluster deployment hangs WAL shipping on
// (internal/dist.Shipper). ShipBatch is called after the batch is locally
// WAL-durable and must not fail the batch: a sink that cannot reach its
// follower buffers and retries on its own, surfacing the backlog as
// replication lag. Close is the shutdown barrier — it runs on the writer
// goroutine during Engine.Close, after the final flush, and should block
// until in-flight shipments are delivered (or a bounded timeout passes),
// so a SIGTERM drain never abandons acknowledged batches mid-stream.
type ReplSink interface {
	ShipBatch(seq uint64, ops []Op)
	Close() error
}

// AdmissionPolicy selects what an enqueue does when the update mailbox
// is full.
type AdmissionPolicy uint8

const (
	// AdmitBlock (the default) applies backpressure: the enqueue waits
	// for mailbox space, bounded by its context's deadline/cancellation
	// (plain Enqueue/Insert wait indefinitely, as before).
	AdmitBlock AdmissionPolicy = iota
	// AdmitReject fails fast with ErrOverloaded, leaving the retry
	// decision to the caller.
	AdmitReject
	// AdmitShed drops the op, counts it in Stats.OpsShed, and reports
	// success — for fire-and-forget telemetry streams where a lost
	// transient update is cheaper than a stalled producer.
	AdmitShed
)

func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitBlock:
		return "block"
	case AdmitReject:
		return "reject"
	case AdmitShed:
		return "shed"
	}
	return "?"
}

// ParseAdmission maps a flag string (block | reject | shed) to a policy.
func ParseAdmission(s string) (AdmissionPolicy, error) {
	switch s {
	case "", "block":
		return AdmitBlock, nil
	case "reject":
		return AdmitReject, nil
	case "shed":
		return AdmitShed, nil
	}
	return AdmitBlock, fmt.Errorf("engine: unknown admission policy %q (want block, reject, or shed)", s)
}

// Options configures New/Open. The zero value gives serving defaults.
type Options struct {
	// MailboxSize is the update channel's buffer (default 4096). A full
	// mailbox applies backpressure: enqueues block.
	MailboxSize int
	// MaxBatch caps how many ops one grace period applies (default 256).
	MaxBatch int
	// FlushInterval bounds how long a partial batch may wait for more ops
	// before applying (default 2ms). Negative means apply as soon as the
	// mailbox drains, without waiting at all.
	FlushInterval time.Duration
	// SnapshotEvery writes a full snapshot (and truncates the WAL) every
	// that many applied batches (default 64; negative disables periodic
	// snapshots, leaving the WAL as the only durability). Only meaningful
	// with a store.
	SnapshotEvery int
	// Workers bounds the warm/rescore parallelism of WatchTopK (0 = all
	// cores; always clamped to the vertex count).
	Workers int
	// UpdateWorkers bounds the batch-apply parallelism: each coalesced
	// batch is handed to the index's ApplyBatch, which the sharded form
	// plans per shard and applies as concurrent per-shard update streams
	// (0 = all cores, 1 = sequential; the monolithic index is always
	// sequential). Readers are unaffected either way — batches still
	// apply inside the grace period.
	UpdateWorkers int
	// NoCache disables the epoch-tagged per-vertex result cache, making
	// every CycleCount redo its label join. Queries stay correct either
	// way; the knob exists for the cold-vs-cached benchmark ablation and
	// as an escape hatch (the cache costs 24 bytes per vertex).
	NoCache bool
	// Admission selects the full-mailbox behavior of every enqueue:
	// block (backpressure, bounded by the caller's context), reject
	// (ErrOverloaded), or shed (drop and count).
	Admission AdmissionPolicy
	// WALRetry bounds how many times a failed WAL append is retried —
	// with doubling backoff from 1ms and a truncate-rollback between
	// attempts, so a torn partial write never precedes the retried
	// record — before the engine drops the batch and enters read-only
	// degraded mode (ErrReadOnly on enqueues, reads unaffected). 0 means
	// fail on the first error; read-only mode engages either way, and a
	// successful Snapshot heals it.
	WALRetry int
	// Metrics is the observability registry the engine registers its
	// metric surface into (obs.go): counters and gauges func-backed over
	// the same words /stats reads, plus query/batch/WAL latency
	// histograms. Nil disables registration — the engine still counts
	// (Stats works), but serves no /metrics families and records no
	// latencies. One registry serves one engine.
	Metrics *obs.Registry
	// TraceRingSize bounds the batch-lifecycle trace ring behind
	// /debug/trace: 0 keeps the default (64 entries, only when Metrics is
	// set), > 0 forces a ring of that depth even without metrics, < 0
	// disables tracing.
	TraceRingSize int
	// OOBRebuildThreshold moves structural component rebuilds of at
	// least this many vertices out of the writer's grace period: the
	// batch commits its cheap intra-shard work immediately, affected
	// shards keep serving their pre-batch (stale) answers, and the
	// rebuild runs on a background goroutine and swaps in atomically
	// when done (Stats.Degraded lists the stale shards meanwhile). 0
	// disables deferral: every rebuild is inline, blocking the batch.
	// Only the sharded index defers; the monolithic index ignores this.
	OOBRebuildThreshold int
	// ReRankInterval enables online per-shard hub re-ranking on the
	// sharded index: every interval the writer turns on per-hub hit
	// counters, measures each shard's order drift (the hit-weighted mean
	// normalized rank of the winning hubs), and when one shard has
	// accumulated at least ReRankMinHits hits with drift at least
	// ReRankDrift, rebuilds that shard under a hit-weighted hub order
	// through the out-of-band path — readers never pause, the swap is
	// atomic. 0 (the default) disables re-ranking entirely. Structural
	// work always wins: a tick is skipped while any batch or rebuild is
	// pending, and a structural batch arriving mid-re-rank supersedes it.
	ReRankInterval time.Duration
	// ReRankMinHits is the minimum recorded hits before a shard is
	// eligible for re-ranking (default 256 when ReRankInterval is set) —
	// drift over a handful of queries is noise, not workload shape.
	ReRankMinHits uint64
	// ReRankDrift is the drift threshold in [0,1] at or above which an
	// eligible shard re-ranks (default 0.25). 0 means the top-ranked hub
	// answers everything (never re-rank); higher values mean answers come
	// from deeper in the order.
	ReRankDrift float64
	// Replication, when set, receives every committed batch in order on
	// the writer goroutine (after the local WAL append succeeds, before
	// the grace period applies it), and is Closed — the in-flight shipment
	// barrier — during Engine.Close after the final flush. Batches dropped
	// in read-only degraded mode are never shipped: the follower tracks
	// exactly the durable prefix.
	Replication ReplSink
}

func (o *Options) fill() {
	if o.MailboxSize <= 0 {
		o.MailboxSize = 4096
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	// The WAL record decoder rejects batches above maxBatchOps as corrupt,
	// and replay would then silently truncate acknowledged data as a torn
	// tail — never allow a batch that large to be written in the first
	// place.
	if o.MaxBatch > maxBatchOps {
		o.MaxBatch = maxBatchOps
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 64
	}
	if o.ReRankInterval > 0 {
		if o.ReRankMinHits == 0 {
			o.ReRankMinHits = 256
		}
		if o.ReRankDrift == 0 {
			o.ReRankDrift = 0.25
		}
	}
}

// Stats is a point-in-time engine counter snapshot, JSON-ready for the
// daemon's /stats endpoint.
type Stats struct {
	Vertices     int    `json:"vertices"`
	Edges        int    `json:"edges"`
	Entries      int    `json:"entries"`
	LabelBytes   int    `json:"label_bytes"`
	Queries      uint64 `json:"queries"`
	CacheHits    uint64 `json:"cache_hits"`
	OpsEnqueued  uint64 `json:"ops_enqueued"`
	OpsApplied   uint64 `json:"ops_applied"`
	OpsCoalesced uint64 `json:"ops_coalesced"`
	OpsRejected  uint64 `json:"ops_rejected"`
	Batches      uint64 `json:"batches"`
	Seq          uint64 `json:"seq"`
	Snapshots    uint64 `json:"snapshots"`
	WALBytes     int64  `json:"wal_bytes,omitempty"`
	Err          string `json:"error,omitempty"`
	// QueueDepth/MailboxCap describe writer saturation at snapshot time;
	// OpsShed counts shed-policy drops, OpsOverload reject-policy
	// rejections.
	QueueDepth  int    `json:"queue_depth"`
	MailboxCap  int    `json:"mailbox_cap"`
	OpsShed     uint64 `json:"ops_shed,omitempty"`
	OpsOverload uint64 `json:"ops_overload,omitempty"`
	// WALRetries counts retried WAL appends; ReadOnly reports the
	// durability-lost degraded mode (heals on a successful snapshot).
	WALRetries uint64 `json:"wal_retries,omitempty"`
	ReadOnly   bool   `json:"read_only,omitempty"`
	// CompressedBytes is the frozen-arena label footprint (zero when the
	// index was not built with compressed labels); LabelsRefrozen counts
	// thawed lists folded back into the arena at writer quiesce.
	CompressedBytes int    `json:"compressed_bytes,omitempty"`
	LabelsRefrozen  uint64 `json:"labels_refrozen,omitempty"`
	// Degraded lists shard slots currently serving stale answers while an
	// out-of-band rebuild is pending; OOBRebuilds counts completed
	// background swaps, OOBSuperseded rebuilds discarded because later
	// batches changed the pending region first.
	Degraded      []int  `json:"degraded,omitempty"`
	OOBRebuilds   uint64 `json:"oob_rebuilds,omitempty"`
	OOBSuperseded uint64 `json:"oob_superseded,omitempty"`
	// ReRanks counts online hub re-rank rebuilds the writer has initiated
	// (Options.ReRankInterval).
	ReRanks uint64 `json:"reranks,omitempty"`
}

// Engine serves one csc.Counter under the single-writer / many-reader
// protocol.
type Engine struct {
	ix   csc.Counter
	n    int
	lock *stripedRW
	opts Options

	mail chan Op
	ctl  chan ctlReq
	quit chan struct{}
	done chan struct{}

	closed    atomic.Bool
	closeOnce sync.Once

	store *Store
	seq   atomic.Uint64

	hookMu sync.Mutex
	hooks  []func(applied []Op, touched []int)

	// cache is the epoch-tagged per-vertex result cache (cache.go), nil
	// with Options.NoCache. Batch commits expire exactly the dirty
	// vertices; every other slot keeps serving O(1) reads.
	cache *readCache

	// Engine counters are obs.Counters — standalone atomic words that
	// need no registry (Stats always works) and double as the func-backed
	// source of the /metrics families, so the two surfaces read the same
	// words and cannot drift (obs.go).
	queries, hits       []paddedCount // striped like the lock shards
	enqueued, applied   *obs.Counter
	coalesced, rejected *obs.Counter
	batches, snaps      *obs.Counter
	shed, overload      *obs.Counter
	walRetries          *obs.Counter
	refrozen            *obs.Counter
	reranks             *obs.Counter
	walBytes            atomic.Int64

	// Latency histograms and the trace ring, nil without Options.Metrics
	// (recording into nil is a no-op). joinNS/boundedNS time only the
	// cache-miss kernels — a cache hit executes zero instrumentation.
	joinNS, boundedNS *obs.Histogram
	batchNS, snapNS   *obs.Histogram
	staleHist         *obs.Histogram
	oobRunNS          *obs.Histogram
	stageNS           stageHists
	trace             *obs.Ring

	// readOnly is the durability-lost degraded mode: enqueues fail with
	// ErrReadOnly, already-mailed ops are dropped (counted as rejected),
	// reads keep serving. Set by the writer when a WAL append fails past
	// its retry budget; cleared by a successful snapshot.
	readOnly atomic.Bool

	errMu sync.Mutex
	errv  error // first durability error; nil again after a clean snapshot

	// rebuilt carries finished out-of-band rebuilds back to the writer
	// goroutine. Buffered one deep: at most one rebuild is ever running,
	// so the background goroutine's send never blocks.
	rebuilt chan rebuildDone

	// Writer-goroutine state.
	pending   []Op
	sinceSnap int
	// firstOpAt is when the oldest op of the pending batch entered the
	// writer's hands — the trace's enqueue-wait stage.
	firstOpAt time.Time
	// oobInflight is the rebuild currently running on the background
	// goroutine; oobNext the one queued behind it (a newer deferral
	// supersedes anything queued, so one slot suffices).
	oobInflight *csc.Rebuild
	oobNext     *csc.Rebuild
}

type ctlReq struct {
	fn  func() error
	ack chan error
}

// New wraps an index in an in-memory engine (no durability) and starts
// its writer goroutine. The engine owns the index from here on: mutate it
// only through Insert/Delete, query it through CycleCount.
func New(ix csc.Counter, opts Options) *Engine {
	return start(ix, nil, 0, opts)
}

// Open recovers (or bootstraps) an engine from a store directory: the
// snapshot is loaded if one exists — bootstrap is only called for a fresh
// store — and WAL batches beyond it are replayed before serving starts.
// Every batch the returned engine applies is WAL-logged before it
// mutates the index.
func Open(dir string, bootstrap func() (csc.Counter, error), opts Options) (*Engine, error) {
	return OpenIO(dir, OSIO, bootstrap, opts)
}

// OpenIO is Open with the store's filesystem behind an explicit StoreIO
// — the injection point for the fault-injection harness, which wraps the
// real filesystem to return errors, tear writes, and stall syncs on the
// durability path.
func OpenIO(dir string, sio StoreIO, bootstrap func() (csc.Counter, error), opts Options) (*Engine, error) {
	st, err := OpenStoreIO(dir, sio)
	if err != nil {
		return nil, err
	}
	ix, seq, err := st.Recover(bootstrap)
	if err != nil {
		st.Close()
		return nil, err
	}
	return start(ix, st, seq, opts), nil
}

func start(ix csc.Counter, st *Store, seq uint64, opts Options) *Engine {
	opts.fill()
	lock := newStripedRW()
	e := &Engine{
		ix:       ix,
		n:        ix.Graph().NumVertices(),
		lock:     lock,
		opts:     opts,
		mail:     make(chan Op, opts.MailboxSize),
		ctl:      make(chan ctlReq),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		store:    st,
		queries:  make([]paddedCount, len(lock.shards)),
		hits:     make([]paddedCount, len(lock.shards)),
		rebuilt:  make(chan rebuildDone, 1),
		enqueued: &obs.Counter{}, applied: &obs.Counter{},
		coalesced: &obs.Counter{}, rejected: &obs.Counter{},
		batches: &obs.Counter{}, snaps: &obs.Counter{},
		shed: &obs.Counter{}, overload: &obs.Counter{},
		walRetries: &obs.Counter{}, refrozen: &obs.Counter{},
		reranks: &obs.Counter{},
	}
	if !opts.NoCache {
		e.cache = newReadCache(e.n)
	}
	e.seq.Store(seq)
	if st != nil {
		e.walBytes.Store(st.WALBytes())
	}
	e.initObs()
	go e.run()
	return e
}

// NumVertices returns the (fixed) vertex count served.
func (e *Engine) NumVertices() int { return e.n }

// Index exposes the underlying index. The caller must only read it, and
// only while no batch can be applying (after Flush with no concurrent
// enqueuers, or from a post-batch hook).
func (e *Engine) Index() csc.Counter { return e.ix }

// Seq returns the sequence number of the last applied batch.
func (e *Engine) Seq() uint64 { return e.seq.Load() }

// ReadOnly reports whether the engine is in durability-lost degraded
// mode: enqueues fail with ErrReadOnly, reads keep serving.
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// Err returns the first WAL/snapshot error, if any. A non-nil error
// means the engine is in read-only degraded mode: reads keep serving
// the last durable state, but enqueues fail with ErrReadOnly and
// already-mailed ops are dropped (counted in Stats.OpsRejected), so
// served state never runs ahead of what recovery can reconstruct. Only
// a successful Snapshot — which persists the full current state and
// truncates the WAL — restores durability and clears the error.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.errv
}

func (e *Engine) setErr(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	if e.errv == nil {
		e.errv = err
	}
	e.errMu.Unlock()
}

func (e *Engine) clearErr() {
	e.errMu.Lock()
	e.errv = nil
	e.errMu.Unlock()
}

// CycleCount answers SCCnt(v) inside a reader epoch: the length of the
// shortest cycles through v (bfscount.NoCycle when none, or when v is out
// of range) and their number. Safe from any goroutine, concurrently with
// updates. A cache hit — the vertex untouched since its last read — skips
// the label join entirely; a miss computes and refills inside the same
// epoch.
func (e *Engine) CycleCount(v int) (length int, count uint64) {
	return e.read(v, true)
}

// read is the one cached epoch read behind every CycleCount variant —
// client-facing (counted) and the monitor's internal reads (uncounted)
// share the bounds check, stripe lock discipline, and cache protocol.
func (e *Engine) read(v int, counted bool) (length int, count uint64) {
	if v < 0 || v >= e.n {
		return bfscount.NoCycle, 0
	}
	if counted {
		e.queries[uint32(v)&e.lock.mask].n.Add(1)
	}
	m := e.lock.rlock(uint32(v))
	length, count = e.readCached(v, counted)
	m.RUnlock()
	return length, count
}

// readCached is the cached read of one vertex. The caller must hold v's
// stripe read-lock. counted selects whether a hit lands in the client
// hit counter — the monitor's internal reads pass false so /stats
// describes client traffic only.
func (e *Engine) readCached(v int, counted bool) (length int, count uint64) {
	if e.cache != nil {
		if l, c, ok := e.cache.get(v); ok {
			if counted {
				e.hits[uint32(v)&e.lock.mask].n.Add(1)
			}
			return l, c
		}
	}
	if e.joinNS != nil {
		t0 := time.Now()
		length, count = e.ix.CycleCount(v)
		e.joinNS.ObserveSince(t0)
	} else {
		length, count = e.ix.CycleCount(v)
	}
	if e.cache != nil {
		e.cache.put(v, e.seq.Load(), length, count)
	}
	return length, count
}

// CycleCountCtx is CycleCount bounded by a context: a reader that would
// otherwise wait out a long writer grace period (a wedged store can hold
// lockAll open indefinitely) gives up with ctx.Err() when its deadline
// passes. The no-cycle sentinel is returned alongside the error.
func (e *Engine) CycleCountCtx(ctx context.Context, v int) (length int, count uint64, err error) {
	if v < 0 || v >= e.n {
		return bfscount.NoCycle, 0, nil
	}
	e.queries[uint32(v)&e.lock.mask].n.Add(1)
	m, err := e.lock.rlockCtx(ctx, uint32(v))
	if err != nil {
		return bfscount.NoCycle, 0, err
	}
	length, count = e.readCached(v, true)
	m.RUnlock()
	return length, count, nil
}

// CycleCountBounded answers SCCnt(v) restricted to cycle lengths ≤
// maxLen, concurrently with updates. A valid cached answer is filtered
// against the bound in O(1); a miss runs the bounded join kernel without
// filling the cache (the bounded answer is partial information).
func (e *Engine) CycleCountBounded(v, maxLen int) (length int, count uint64) {
	if v < 0 || v >= e.n {
		return bfscount.NoCycle, 0
	}
	e.queries[uint32(v)&e.lock.mask].n.Add(1)
	m := e.lock.rlock(uint32(v))
	defer m.RUnlock()
	if e.cache != nil {
		if l, c, ok := e.cache.get(v); ok {
			e.hits[uint32(v)&e.lock.mask].n.Add(1)
			if l == bfscount.NoCycle || l > maxLen {
				return bfscount.NoCycle, 0
			}
			return l, c
		}
	}
	if e.boundedNS != nil {
		t0 := time.Now()
		length, count = e.ix.CycleCountBounded(v, maxLen)
		e.boundedNS.ObserveSince(t0)
		return length, count
	}
	return e.ix.CycleCountBounded(v, maxLen)
}

// CycleCountBoundedCtx is CycleCountBounded bounded by a context — the
// same wedged-writer escape hatch as CycleCountCtx.
func (e *Engine) CycleCountBoundedCtx(ctx context.Context, v, maxLen int) (length int, count uint64, err error) {
	if v < 0 || v >= e.n {
		return bfscount.NoCycle, 0, nil
	}
	e.queries[uint32(v)&e.lock.mask].n.Add(1)
	m, err := e.lock.rlockCtx(ctx, uint32(v))
	if err != nil {
		return bfscount.NoCycle, 0, err
	}
	defer m.RUnlock()
	if e.cache != nil {
		if l, c, ok := e.cache.get(v); ok {
			e.hits[uint32(v)&e.lock.mask].n.Add(1)
			if l == bfscount.NoCycle || l > maxLen {
				return bfscount.NoCycle, 0, nil
			}
			return l, c, nil
		}
	}
	if e.boundedNS != nil {
		t0 := time.Now()
		length, count = e.ix.CycleCountBounded(v, maxLen)
		e.boundedNS.ObserveSince(t0)
		return length, count, nil
	}
	length, count = e.ix.CycleCountBounded(v, maxLen)
	return length, count, nil
}

// CycleCountMany evaluates SCCnt for every vertex of vs into the caller's
// buffers (vs[i]'s answer lands in lengths[i] and counts[i]), each read
// inside its own reader epoch through the cache. Out-of-range vertices
// report no cycle. This is the *client-facing* batch read: every vertex
// counts toward the Queries/CacheHits stats. The top-k monitor's rescore
// passes and warm scans use the same read protocol through the internal
// uncounted watchQuerier instead, so /stats keeps describing client
// traffic only.
func (e *Engine) CycleCountMany(vs []int, lengths []int, counts []uint64) {
	for i, v := range vs {
		lengths[i], counts[i] = e.read(v, true)
	}
}

// watchQuerier is the monitor's view of the engine: the same cached,
// epoch-protected reads as the public CycleCount*, minus the client
// query/hit counters — warm passes and post-batch rescores are internal
// bookkeeping, and /stats should describe client traffic only. Fills
// still land in the cache, which is the point: a rescored dirty vertex
// is a warm slot for the next client read.
type watchQuerier struct{ e *Engine }

func (q watchQuerier) NumVertices() int { return q.e.n }

func (q watchQuerier) CycleCount(v int) (length int, count uint64) {
	return q.e.read(v, false)
}

func (q watchQuerier) CycleCountMany(vs []int, lengths []int, counts []uint64) {
	for i, v := range vs {
		lengths[i], counts[i] = q.e.read(v, false)
	}
}

// Insert enqueues an edge insertion. Under the default block policy it
// waits while the mailbox is full (backpressure) and returns without
// waiting for the batch to apply; use Flush for read-your-writes.
func (e *Engine) Insert(a, b int) error { return e.EnqueueEdge(OpInsert, a, b) }

// Delete enqueues an edge deletion.
func (e *Engine) Delete(a, b int) error { return e.EnqueueEdge(OpDelete, a, b) }

// InsertCtx is Insert bounded by a context: under the block policy a
// full mailbox waits only until ctx is done, so a wedged writer (a
// stalled store holding the batch open) cannot deadlock the caller.
func (e *Engine) InsertCtx(ctx context.Context, a, b int) error {
	return e.EnqueueEdgeCtx(ctx, OpInsert, a, b)
}

// DeleteCtx is Delete bounded by a context.
func (e *Engine) DeleteCtx(ctx context.Context, a, b int) error {
	return e.EnqueueEdgeCtx(ctx, OpDelete, a, b)
}

// EnqueueEdge validates full-width vertex ids and mails one op. The
// range check runs before the Op's int32 narrowing, so an id ≥ 2³² from
// an untrusted client is rejected instead of wrapping onto a small valid
// vertex.
func (e *Engine) EnqueueEdge(kind OpKind, a, b int) error {
	return e.EnqueueEdgeCtx(context.Background(), kind, a, b)
}

// EnqueueEdgeCtx is EnqueueEdge bounded by a context.
func (e *Engine) EnqueueEdgeCtx(ctx context.Context, kind OpKind, a, b int) error {
	if a < 0 || a >= e.n || b < 0 || b >= e.n {
		return graph.ErrVertexRange
	}
	return e.EnqueueCtx(ctx, Op{Kind: kind, A: int32(a), B: int32(b)})
}

// Enqueue validates and mails one op. Redundant ops (inserting a present
// edge, deleting an absent one, insert+delete pairs in the same batch)
// are accepted here and coalesced away before the batch applies.
func (e *Engine) Enqueue(op Op) error {
	return e.EnqueueCtx(context.Background(), op)
}

// EnqueueCtx is Enqueue under the engine's admission policy, bounded by
// the caller's context. Block waits for mailbox space until ctx is done
// (a Background context waits indefinitely, as Enqueue always has);
// reject fails fast with ErrOverloaded; shed drops the op, counts it,
// and reports success. Stats.OpsEnqueued counts only ops that actually
// entered the mailbox.
func (e *Engine) EnqueueCtx(ctx context.Context, op Op) error {
	if op.Kind != OpInsert && op.Kind != OpDelete {
		return errors.New("engine: unknown op kind")
	}
	a, b := int(op.A), int(op.B)
	if a < 0 || a >= e.n || b < 0 || b >= e.n {
		return graph.ErrVertexRange
	}
	if a == b {
		return graph.ErrSelfLoop
	}
	if e.closed.Load() {
		return ErrClosed
	}
	if e.readOnly.Load() {
		return ErrReadOnly
	}
	if e.opts.Admission != AdmitBlock {
		select {
		case e.mail <- op:
			e.enqueued.Add(1)
			return nil
		case <-e.done:
			return ErrClosed
		default:
		}
		if e.opts.Admission == AdmitShed {
			e.shed.Add(1)
			return nil
		}
		e.overload.Add(1)
		return ErrOverloaded
	}
	// Block policy: backpressure, bounded by ctx. A Background context's
	// Done channel is nil, and a nil case never fires — so plain Enqueue
	// keeps its wait-forever contract through the same select.
	select {
	case e.mail <- op:
		e.enqueued.Add(1)
		return nil
	case <-ctx.Done():
		e.overload.Add(1)
		return ctx.Err()
	case <-e.done:
		return ErrClosed
	}
}

// Flush applies everything enqueued before the call and returns once it
// is queryable (and, with a store, WAL-durable).
func (e *Engine) Flush() { _ = e.do(nil) }

// Snapshot flushes and writes a full snapshot, truncating the WAL.
func (e *Engine) Snapshot() error {
	return e.do(func() error { return e.snapshotNow() })
}

// WriteTo flushes pending batches and serializes the index. It implements
// the same format as the index's own WriteTo; the write happens on the writer
// goroutine, so it sees a quiescent index while readers keep serving.
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	var n int64
	err := e.do(func() error {
		e.awaitRebuilds() // a stale shard must not be serialized
		var werr error
		n, werr = e.ix.WriteTo(w)
		return werr
	})
	return n, err
}

// do runs fn on the writer goroutine after draining and applying the
// mailbox.
func (e *Engine) do(fn func() error) error {
	req := ctlReq{fn: fn, ack: make(chan error, 1)}
	select {
	case e.ctl <- req:
		return <-req.ack
	case <-e.done:
		return ErrClosed
	}
}

// OnBatch registers a post-batch hook: it runs on the writer goroutine
// after each batch's grace period ends, with the applied (coalesced) ops
// and the batch's dirty set — the sorted original-graph vertices whose
// label lists the batch mutated, which is exactly the set whose query
// answers can have changed. Hooks must not block for long — the mailbox
// stalls while they run — and must not mutate the engine. Register hooks
// before the first enqueue.
func (e *Engine) OnBatch(fn func(applied []Op, touched []int)) {
	e.hookMu.Lock()
	e.hooks = append(e.hooks, fn)
	e.hookMu.Unlock()
}

// WatchTopK attaches a continuously maintained top-k scoreboard: the
// monitor warms by scoring every vertex through the engine's cached,
// epoch-protected reads (parallelism from the Workers option, clamped to
// the vertex count) and then rides the post-batch hook, rescoring
// exactly each batch's dirty set. Because the rescore reads go through
// the engine, they also re-warm precisely the cache slots the batch
// expired — the next /cycle read of a dirty vertex is already a hit —
// without counting toward the Queries/CacheHits stats, which describe
// client traffic only. Attach before the first enqueue. The returned
// monitor's Score and Top are safe concurrently with updates; do not
// route updates through it.
func (e *Engine) WatchTopK(k int) *monitor.TopK {
	m := monitor.Watch(watchQuerier{e}, k, e.opts.Workers)
	e.OnBatch(func(_ []Op, dirty []int) { m.RescoreDirty(dirty) })
	return m
}

// Stats snapshots the engine counters. Index-size fields are read inside
// a reader epoch, so it is safe concurrently with updates.
func (e *Engine) Stats() Stats {
	var queries, hits uint64
	for i := range e.queries {
		queries += e.queries[i].n.Load()
		hits += e.hits[i].n.Load()
	}
	st := Stats{
		Queries:      queries,
		CacheHits:    hits,
		OpsEnqueued:  e.enqueued.Load(),
		OpsApplied:   e.applied.Load(),
		OpsCoalesced: e.coalesced.Load(),
		OpsRejected:  e.rejected.Load(),
		Batches:      e.batches.Load(),
		Seq:          e.seq.Load(),
		Snapshots:    e.snaps.Load(),
		QueueDepth:   len(e.mail),
		MailboxCap:   cap(e.mail),
		OpsShed:      e.shed.Load(),
		OpsOverload:  e.overload.Load(),
		WALRetries:   e.walRetries.Load(),
		ReadOnly:     e.readOnly.Load(),
	}
	if e.store != nil {
		st.WALBytes = e.walBytes.Load()
	}
	if err := e.Err(); err != nil {
		st.Err = err.Error()
	}
	m := e.lock.rlock(0)
	st.Vertices = e.n
	st.Edges = e.ix.Graph().NumEdges()
	st.Entries = e.ix.EntryCount()
	st.LabelBytes = e.ix.Bytes()
	// The sharded index exposes its out-of-band degradation state; the
	// monolithic index has none and the fields stay zero. Reading under a
	// stripe read-lock is enough: the writer only mutates these inside the
	// full grace period.
	if dx, ok := e.ix.(interface{ StaleShards() []int }); ok {
		st.Degraded = dx.StaleShards()
	}
	if ox, ok := e.ix.(interface{ OOBRebuilds() (int, int) }); ok {
		c, s := ox.OOBRebuilds()
		st.OOBRebuilds, st.OOBSuperseded = uint64(c), uint64(s)
	}
	if cx, ok := e.ix.(interface{ CompressedBytes() int }); ok {
		st.CompressedBytes = cx.CompressedBytes()
	}
	st.LabelsRefrozen = e.refrozen.Load()
	st.ReRanks = e.reranks.Load()
	m.RUnlock()
	return st
}

// ShardTable snapshots the sharded index's routing inputs — a copy of
// the vertex→shard-slot table (-1 for trivial vertices, which answer
// zero cycles with no labels at all) and the per-shard footprint stats a
// size-balanced placement weighs. ok is false on a monolithic index,
// which has no shards to place. Safe concurrently with updates: both
// reads happen inside one reader epoch.
func (e *Engine) ShardTable() (shardOf []int32, stats []csc.ShardStat, ok bool) {
	sx, sharded := e.ix.(*csc.Sharded)
	if !sharded {
		return nil, nil, false
	}
	m := e.lock.rlock(0)
	defer m.RUnlock()
	return sx.ShardMap(), sx.ShardStats(), true
}

// Close drains and applies the mailbox, syncs and closes the store, and
// stops the writer. It does not write a final snapshot (recovery replays
// the WAL); call Snapshot first for a fast next startup. Ops enqueued
// concurrently with Close may be dropped.
func (e *Engine) Close() error {
	e.closed.Store(true)
	e.closeOnce.Do(func() { close(e.quit) })
	<-e.done
	return e.Err()
}

// run is the writer goroutine: the only code that mutates the index.
func (e *Engine) run() {
	defer close(e.done)
	var timer *time.Timer
	var timerC <-chan time.Time
	// The re-rank ticker only exists when the feature is on and the index
	// can re-rank (sharded); a nil channel never fires.
	var rerankC <-chan time.Time
	if _, ok := e.ix.(*csc.Sharded); ok && e.opts.ReRankInterval > 0 {
		tk := time.NewTicker(e.opts.ReRankInterval)
		defer tk.Stop()
		rerankC = tk.C
	}
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flushAll := func() {
		for {
			e.drainMail()
			if len(e.pending) == 0 {
				break
			}
			e.applyPending()
		}
		stopTimer()
		e.refreezeQuiesced()
	}
	for {
		select {
		case op := <-e.mail:
			e.push(op)
			e.drainMail()
			switch {
			case len(e.pending) >= e.opts.MaxBatch || e.opts.FlushInterval < 0:
				e.applyPending()
				stopTimer()
				e.refreezeQuiesced()
			case timerC == nil:
				timer = time.NewTimer(e.opts.FlushInterval)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			e.applyPending()
			e.refreezeQuiesced()
		case r := <-e.rebuilt:
			e.finishRebuild(r)
		case <-rerankC:
			e.maybeReRank()
		case req := <-e.ctl:
			flushAll()
			var err error
			if req.fn != nil {
				err = req.fn()
			}
			req.ack <- err
		case <-e.quit:
			flushAll()
			e.awaitRebuilds()
			// Replication barrier before the store closes: every batch the
			// flush above committed has been handed to the sink, and Close
			// blocks until in-flight shipments land (or the sink's own
			// timeout gives up and reports the backlog).
			if e.opts.Replication != nil {
				if err := e.opts.Replication.Close(); err != nil {
					e.setErr(err)
				}
			}
			if e.store != nil {
				if err := e.store.Close(); err != nil {
					e.setErr(err)
				}
			}
			return
		}
	}
}

// refreezeQuiesced folds label lists thawed by dynamic updates back into
// the compressed frozen arena once the writer has nothing queued. Runs on
// the writer goroutine at quiesce points (timer flush, full-batch apply,
// flushAll) so a sustained update storm never pays the arena rebuild —
// only the first idle moment after one does. On an uncompressed index the
// type assertion still succeeds (both index forms export RefreezeLabels)
// but the call is a no-op with no thawed lists, so the lock sweep is the
// only cost and it is skipped unless a batch just ran.
func (e *Engine) refreezeQuiesced() {
	if len(e.pending) > 0 || len(e.mail) > 0 {
		return
	}
	rf, ok := e.ix.(interface{ RefreezeLabels() int })
	if !ok {
		return
	}
	e.lock.lockAll()
	n := rf.RefreezeLabels()
	e.lock.unlockAll()
	if n > 0 {
		e.refrozen.Add(uint64(n))
	}
}

// push appends one op to pending, stamping the batch's first-op time —
// the enqueue-wait stage of the batch trace.
func (e *Engine) push(op Op) {
	if len(e.pending) == 0 {
		e.firstOpAt = time.Now()
	}
	e.pending = append(e.pending, op)
}

// drainMail moves immediately available ops into pending, up to MaxBatch.
func (e *Engine) drainMail() {
	for len(e.pending) < e.opts.MaxBatch {
		select {
		case op := <-e.mail:
			e.push(op)
		default:
			return
		}
	}
}

// applyPending coalesces the pending ops into their net batch, logs it,
// applies it under the grace period, and fires the post-batch hooks.
func (e *Engine) applyPending() {
	if len(e.pending) == 0 {
		return
	}
	if e.readOnly.Load() {
		// Read-only degraded mode: ops that were mailed before the mode
		// engaged are dropped (counted as rejected) instead of applied, so
		// served state stays equal to the durable prefix.
		e.rejected.Add(uint64(len(e.pending)))
		e.pending = e.pending[:0]
		e.firstOpAt = time.Time{}
		return
	}
	start := time.Now()
	var waitNS int64
	if !e.firstOpAt.IsZero() {
		waitNS = start.Sub(e.firstOpAt).Nanoseconds()
		e.firstOpAt = time.Time{}
	}
	raw := len(e.pending)
	batch := e.coalesce()
	coalesceNS := time.Since(start).Nanoseconds()
	e.coalesced.Add(uint64(raw - len(batch)))
	e.pending = e.pending[:0]
	if len(batch) == 0 {
		return
	}
	seq := e.seq.Load() + 1
	var walNS int64
	if e.store != nil {
		walStart := time.Now()
		err := e.appendWithRetry(seq, batch)
		walNS = time.Since(walStart).Nanoseconds()
		if err != nil {
			// Durability lost past the retry budget: drop the batch and
			// enter read-only mode rather than applying in memory — state
			// that recovery cannot reconstruct must never be served. A
			// successful Snapshot heals the store and re-enables updates.
			e.setErr(err)
			e.readOnly.Store(true)
			e.rejected.Add(uint64(len(batch)))
			e.walBytes.Store(e.store.WALBytes())
			return
		}
		e.walBytes.Store(e.store.WALBytes())
	}
	// Ship the batch only once it is locally durable: a follower must
	// never hold a record its primary could lose in a crash-and-replay.
	var shipNS int64
	if e.opts.Replication != nil {
		shipStart := time.Now()
		e.opts.Replication.ShipBatch(seq, batch)
		shipNS = time.Since(shipStart).Nanoseconds()
	}
	applyStart := time.Now()
	touched, st, deferred := e.apply(batch, seq)
	applyNS := time.Since(applyStart).Nanoseconds()
	e.seq.Store(seq)
	e.batches.Add(1)
	e.applied.Add(uint64(len(batch)))
	e.hookMu.Lock()
	hooks := e.hooks
	e.hookMu.Unlock()
	hooksStart := time.Now()
	for _, h := range hooks {
		h(batch, touched)
	}
	hooksNS := time.Since(hooksStart).Nanoseconds()
	e.recordBatch(seq, start, raw, batch, touched, st, deferred, waitNS, coalesceNS, walNS, shipNS, applyNS, hooksNS)
	if e.store != nil && e.opts.SnapshotEvery > 0 {
		e.sinceSnap++
		// Periodic snapshots wait out any pending out-of-band rebuild
		// (serializing a stale shard would persist its pre-batch labels),
		// so skip the cadence while one is in flight rather than stall the
		// writer; sinceSnap keeps accumulating and the next quiet batch
		// triggers it.
		if e.sinceSnap >= e.opts.SnapshotEvery && e.oobInflight == nil && e.oobNext == nil {
			_ = e.snapshotNow()
		}
	}
}

// appendWithRetry appends one WAL record, retrying up to Options.WALRetry
// times with doubling backoff from 1ms. Between attempts the WAL is
// rolled back to its pre-append length: a failed attempt may have left a
// partial record on disk, and a retried record written after that tear
// would make replay silently truncate it away as the torn tail.
func (e *Engine) appendWithRetry(seq uint64, batch []Op) error {
	start := e.store.WALBytes()
	err := e.store.Append(seq, batch)
	for attempt := 0; err != nil && attempt < e.opts.WALRetry; attempt++ {
		if terr := e.store.truncateTo(start); terr != nil {
			return err // cannot roll back the tear, so cannot retry safely
		}
		e.walRetries.Add(1)
		time.Sleep(time.Millisecond << min(attempt, 8))
		err = e.store.Append(seq, batch)
	}
	if err != nil {
		// Leave the WAL at a clean record boundary so a later healed store
		// does not append after a torn partial write.
		_ = e.store.truncateTo(start)
	}
	return err
}

// coalesce reduces pending to its net effect against the live graph:
// inserting a present edge or deleting an absent one drops, and
// insert/delete pairs of the same edge cancel, whichever order they
// arrived in. One op per surviving edge remains, in first-touch order.
// Reading the graph here is safe: only the writer mutates it, and
// concurrent readers never do.
func (e *Engine) coalesce() []Op {
	g := e.ix.Graph()
	base := make(map[uint64]bool, len(e.pending))
	eff := make(map[uint64]bool, len(e.pending))
	order := make([]uint64, 0, len(e.pending))
	for _, op := range e.pending {
		k := uint64(uint32(op.A))<<32 | uint64(uint32(op.B))
		cur, seen := eff[k]
		if !seen {
			cur = g.HasEdge(int(op.A), int(op.B))
			base[k] = cur
			eff[k] = cur
			order = append(order, k)
		}
		if want := op.Kind == OpInsert; want != cur {
			eff[k] = want
		}
	}
	batch := make([]Op, 0, len(order))
	for _, k := range order {
		if eff[k] == base[k] {
			continue
		}
		op := Op{Kind: OpDelete, A: int32(k >> 32), B: int32(uint32(k))}
		if eff[k] {
			op.Kind = OpInsert
		}
		batch = append(batch, op)
	}
	return batch
}

// batchOps converts mailbox ops into the index's batch representation.
func batchOps(batch []Op) []csc.EdgeOp {
	ops := make([]csc.EdgeOp, len(batch))
	for i, op := range batch {
		k := csc.OpInsert
		if op.Kind == OpDelete {
			k = csc.OpDelete
		}
		ops[i] = csc.EdgeOp{Kind: k, A: op.A, B: op.B}
	}
	return ops
}

// apply runs one batch inside the grace period through the index's batch
// planner — the sharded index applies independent per-shard update
// streams on UpdateWorkers goroutines and computes merge/split effects
// once for the whole batch — and returns the batch's dirty set: the
// sorted original-graph vertices whose labels it touched, which is
// exactly the set whose query answers can differ (csc.DirtyVertices).
// The result cache is expired for those vertices before the grace period
// ends, so no reader ever pairs a post-batch epoch with a pre-batch
// value.
func (e *Engine) apply(batch []Op, seq uint64) (dirty []int, st pll.UpdateStats, deferred bool) {
	e.lock.lockAll()
	var err error
	var pending *csc.Rebuild
	sx, sharded := e.ix.(*csc.Sharded)
	oob := sharded && e.opts.OOBRebuildThreshold > 0
	if oob {
		st, pending, err = sx.ApplyBatchDeferred(batchOps(batch), e.opts.UpdateWorkers, e.opts.OOBRebuildThreshold)
	} else {
		st, err = e.ix.ApplyBatch(batchOps(batch), e.opts.UpdateWorkers)
	}
	if err != nil {
		// Coalescing computed the batch against the live graph, so a
		// rejected batch is unreachable short of index corruption. Fall
		// back to per-op application so one bad op cannot take the whole
		// batch down with it.
		st = e.applyPerOp(batch)
		if oob {
			pending = sx.PendingRebuild()
		}
	}
	dirty = csc.DirtyVertices(st)
	if e.cache != nil {
		e.cache.invalidate(dirty, seq)
	}
	e.lock.unlockAll()
	if oob {
		e.scheduleRebuild(pending)
	}
	return dirty, st, pending != nil
}

// scheduleRebuild reconciles the writer's rebuild slots with the index's
// pending deferral after a batch. pending is one of: nil (nothing
// deferred, or the previous deferral dissolved — a flapped bridge edge
// re-inserted before its rebuild ran owes no rebuild at all), the
// rebuild already running in the background (the batch left it current),
// or a new deferral that supersedes whatever was queued.
func (e *Engine) scheduleRebuild(pending *csc.Rebuild) {
	if pending != nil && pending == e.oobInflight {
		e.oobNext = nil
		return
	}
	e.oobNext = pending
	e.maybeStartRebuild()
}

// maybeStartRebuild hands the queued deferral to a background goroutine.
// At most one rebuild runs at a time, so the goroutine's send into the
// 1-buffered rebuilt channel can never block.
func (e *Engine) maybeStartRebuild() {
	if e.oobInflight != nil || e.oobNext == nil {
		return
	}
	r := e.oobNext
	e.oobNext = nil
	e.oobInflight = r
	workers := e.opts.UpdateWorkers
	go func() {
		t0 := time.Now()
		r.Run(workers)
		e.rebuilt <- rebuildDone{r: r, runNS: time.Since(t0).Nanoseconds()}
	}()
}

// finishRebuild swaps a finished out-of-band rebuild into the index
// under a grace period. The swap changes answers for the rebuilt region
// without a WAL record of its own — every edge behind it is already
// logged — so it bumps the sequence number purely as a cache epoch (the
// WAL tolerates the gap: replay only requires increasing sequence
// numbers). A rebuild superseded while it ran is discarded here by the
// index (CompleteRebuild reports false) and the still-pending deferral,
// if any, has already been queued by the superseding batch.
func (e *Engine) finishRebuild(d rebuildDone) {
	r := d.r
	e.oobInflight = nil
	sx, ok := e.ix.(*csc.Sharded)
	if !ok {
		return
	}
	seq := e.seq.Load() + 1
	swapStart := time.Now()
	e.lock.lockAll()
	st, installed := sx.CompleteRebuild(r)
	var dirty []int
	if installed {
		dirty = csc.DirtyVertices(st)
		if e.cache != nil {
			e.cache.invalidate(dirty, seq)
		}
		e.seq.Store(seq)
	}
	e.lock.unlockAll()
	if installed {
		// The freeze→swap window: how long the rebuilt shards served
		// stale answers, measured from the deferral's (inherited) freeze
		// point to the swap landing.
		var staleNS int64
		if fa := r.FrozenAt(); !fa.IsZero() {
			staleNS = time.Since(fa).Nanoseconds()
		}
		e.staleHist.Observe(staleNS)
		e.oobRunNS.Observe(d.runNS)
		swapNS := time.Since(swapStart).Nanoseconds()
		e.trace.Add(obs.BatchTrace{
			Seq:    seq,
			Kind:   "oob-swap",
			Start:  swapStart,
			Shards: r.StaleSlots(),
			Stages: []obs.Stage{
				{Name: "rebuild", DurNS: d.runNS},
				{Name: "swap", DurNS: swapNS},
			},
			StaleNS: staleNS,
			TotalNS: d.runNS + swapNS,
		})
	}
	if installed && len(dirty) > 0 {
		// The swap is a batch commit as far as consumers are concerned:
		// the top-k monitor must rescore the now-fresh region. No ops to
		// report — the edges were already in earlier batches' hooks.
		e.hookMu.Lock()
		hooks := e.hooks
		e.hookMu.Unlock()
		for _, h := range hooks {
			h(nil, dirty)
		}
	}
	e.maybeStartRebuild()
}

// maybeReRank runs on the writer goroutine at each re-rank tick. It is
// strictly lower priority than real work: pending ops, a pending or
// in-flight rebuild, or read-only degraded mode skip the tick entirely.
// Otherwise it enables hit counters on every live shard (idempotent —
// freshly swapped shards start counting from zero), picks the drifted
// shard with the strongest evidence, and defers a hit-weighted re-rank
// of it through the normal out-of-band path, so the background build and
// atomic swap are the same machinery structural rebuilds use.
func (e *Engine) maybeReRank() {
	if e.readOnly.Load() || e.oobInflight != nil || e.oobNext != nil ||
		len(e.pending) > 0 || len(e.mail) > 0 {
		return
	}
	sx, ok := e.ix.(*csc.Sharded)
	if !ok {
		return
	}
	e.lock.lockAll()
	reb := e.pickReRank(sx)
	e.lock.unlockAll()
	if reb == nil {
		return
	}
	e.reranks.Add(1)
	e.trace.Add(obs.BatchTrace{
		Seq:    e.seq.Load(),
		Kind:   "re-rank",
		Start:  time.Now(),
		Shards: reb.StaleSlots(),
	})
	e.oobNext = reb
	e.maybeStartRebuild()
}

// pickReRank selects and freezes the re-rank target under the caller's
// grace period: the eligible shard (hits ≥ ReRankMinHits, drift ≥
// ReRankDrift) with the highest drift. Nil when nothing qualifies —
// including the first tick after counters turn on, which has no hits
// recorded yet.
func (e *Engine) pickReRank(sx *csc.Sharded) *csc.Rebuild {
	sx.EnableHitCounters()
	best, bestDrift := -1, 0.0
	for _, st := range sx.ShardStats() {
		d, hits, ok := sx.ShardDrift(st.Slot)
		if !ok || hits < e.opts.ReRankMinHits || d < e.opts.ReRankDrift {
			continue
		}
		if best == -1 || d > bestDrift {
			best, bestDrift = st.Slot, d
		}
	}
	if best == -1 {
		return nil
	}
	reb, err := sx.ReorderShardByHits(best)
	if err != nil {
		return nil
	}
	return reb
}

// awaitRebuilds runs on the writer goroutine and completes every pending
// out-of-band rebuild synchronously — the barrier before operations that
// must see a fully fresh index (snapshots, WriteTo, close).
func (e *Engine) awaitRebuilds() {
	e.maybeStartRebuild()
	for e.oobInflight != nil {
		e.finishRebuild(<-e.rebuilt)
	}
}

// WaitRebuilds flushes the mailbox and blocks until no out-of-band
// rebuild is pending: every shard serves fresh answers afterward (until
// the next deferring batch). The quiesce point for tests and benchmarks.
func (e *Engine) WaitRebuilds() error {
	return e.do(func() error { e.awaitRebuilds(); return nil })
}

// applyPerOp is the degraded path behind apply: one edge at a time,
// counting (instead of propagating) individually rejected ops. The
// aggregated TouchedOwners are the caller's only dirty-set source —
// cache invalidation and hook rescoring both derive from them — so
// every op that mutates labels must keep reporting its owners here.
func (e *Engine) applyPerOp(batch []Op) pll.UpdateStats {
	var agg pll.UpdateStats
	for _, op := range batch {
		var st pll.UpdateStats
		var err error
		if op.Kind == OpInsert {
			st, err = e.ix.InsertEdge(int(op.A), int(op.B))
		} else {
			st, err = e.ix.DeleteEdge(int(op.A), int(op.B))
		}
		if err != nil {
			e.rejected.Add(1)
			continue
		}
		agg.TouchedOwners = append(agg.TouchedOwners, st.TouchedOwners...)
	}
	return agg
}

// snapshotNow persists a snapshot at the current sequence number. It runs
// on the writer goroutine, which is the only mutator, so serialization
// reads a quiescent index without holding the grace-period lock: readers
// keep querying throughout.
func (e *Engine) snapshotNow() error {
	if e.store == nil {
		return errors.New("engine: no store configured")
	}
	// A pending out-of-band rebuild must land first: serializing a stale
	// shard would persist pre-batch labels that disagree with the graph.
	e.awaitRebuilds()
	snapStart := time.Now()
	if err := e.store.WriteSnapshot(e.seq.Load(), e.ix); err != nil {
		// A half-done snapshot cannot be trusted to leave the WAL in an
		// appendable state (the failure may have struck mid-reset), so
		// degrade to read-only rather than risk appending after a tear.
		e.setErr(err)
		e.readOnly.Store(true)
		return err
	}
	e.snapNS.ObserveSince(snapStart)
	e.walBytes.Store(e.store.WALBytes())
	e.sinceSnap = 0
	e.snaps.Add(1)
	// The snapshot persisted the complete current state and truncated the
	// WAL, so a durability loss (failed earlier append) is healed.
	e.clearErr()
	e.readOnly.Store(false)
	return nil
}
