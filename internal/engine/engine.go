// Package engine turns a csc.Counter — the monolithic or the SCC-sharded
// CSC index — into a concurrent serving system: any
// number of reader goroutines answer SCCnt queries while one writer
// goroutine drains a batched update mailbox, coalesces redundant edge
// operations against the live graph, applies each batch inside a short
// grace period, and — when a store directory is configured — appends
// every applied batch to a write-ahead log with periodic full snapshots,
// so a killed process recovers its exact pre-crash labels by replaying
// WAL-over-snapshot (wal.go documents the on-disk format).
//
// Reads enter cheap epochs by read-locking one shard of a cache-line
// padded striped RWMutex (stripe.go); the writer's grace period locks
// every shard. Consumers that must follow updates (the top-k monitor)
// ride the post-batch hook: it runs on the writer goroutine after the
// grace period ends, so it reads a quiescent index without blocking
// readers.
package engine

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/pll"
)

// OpKind discriminates mailbox operations.
type OpKind uint8

const (
	// OpInsert inserts a directed edge.
	OpInsert OpKind = 1
	// OpDelete deletes a directed edge.
	OpDelete OpKind = 2
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "?"
}

// Op is one edge operation in the update mailbox.
type Op struct {
	Kind OpKind
	A, B int32
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("engine: closed")

// Options configures New/Open. The zero value gives serving defaults.
type Options struct {
	// MailboxSize is the update channel's buffer (default 4096). A full
	// mailbox applies backpressure: enqueues block.
	MailboxSize int
	// MaxBatch caps how many ops one grace period applies (default 256).
	MaxBatch int
	// FlushInterval bounds how long a partial batch may wait for more ops
	// before applying (default 2ms). Negative means apply as soon as the
	// mailbox drains, without waiting at all.
	FlushInterval time.Duration
	// SnapshotEvery writes a full snapshot (and truncates the WAL) every
	// that many applied batches (default 64; negative disables periodic
	// snapshots, leaving the WAL as the only durability). Only meaningful
	// with a store.
	SnapshotEvery int
	// Workers bounds the warm/rescore parallelism of WatchTopK (0 = all
	// cores; always clamped to the vertex count).
	Workers int
	// UpdateWorkers bounds the batch-apply parallelism: each coalesced
	// batch is handed to the index's ApplyBatch, which the sharded form
	// plans per shard and applies as concurrent per-shard update streams
	// (0 = all cores, 1 = sequential; the monolithic index is always
	// sequential). Readers are unaffected either way — batches still
	// apply inside the grace period.
	UpdateWorkers int
	// NoCache disables the epoch-tagged per-vertex result cache, making
	// every CycleCount redo its label join. Queries stay correct either
	// way; the knob exists for the cold-vs-cached benchmark ablation and
	// as an escape hatch (the cache costs 24 bytes per vertex).
	NoCache bool
}

func (o *Options) fill() {
	if o.MailboxSize <= 0 {
		o.MailboxSize = 4096
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	// The WAL record decoder rejects batches above maxBatchOps as corrupt,
	// and replay would then silently truncate acknowledged data as a torn
	// tail — never allow a batch that large to be written in the first
	// place.
	if o.MaxBatch > maxBatchOps {
		o.MaxBatch = maxBatchOps
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 64
	}
}

// Stats is a point-in-time engine counter snapshot, JSON-ready for the
// daemon's /stats endpoint.
type Stats struct {
	Vertices     int    `json:"vertices"`
	Edges        int    `json:"edges"`
	Entries      int    `json:"entries"`
	LabelBytes   int    `json:"label_bytes"`
	Queries      uint64 `json:"queries"`
	CacheHits    uint64 `json:"cache_hits"`
	OpsEnqueued  uint64 `json:"ops_enqueued"`
	OpsApplied   uint64 `json:"ops_applied"`
	OpsCoalesced uint64 `json:"ops_coalesced"`
	OpsRejected  uint64 `json:"ops_rejected"`
	Batches      uint64 `json:"batches"`
	Seq          uint64 `json:"seq"`
	Snapshots    uint64 `json:"snapshots"`
	WALBytes     int64  `json:"wal_bytes,omitempty"`
	Err          string `json:"error,omitempty"`
}

// Engine serves one csc.Counter under the single-writer / many-reader
// protocol.
type Engine struct {
	ix   csc.Counter
	n    int
	lock *stripedRW
	opts Options

	mail chan Op
	ctl  chan ctlReq
	quit chan struct{}
	done chan struct{}

	closed    atomic.Bool
	closeOnce sync.Once

	store *Store
	seq   atomic.Uint64

	hookMu sync.Mutex
	hooks  []func(applied []Op, touched []int)

	// cache is the epoch-tagged per-vertex result cache (cache.go), nil
	// with Options.NoCache. Batch commits expire exactly the dirty
	// vertices; every other slot keeps serving O(1) reads.
	cache *readCache

	queries, hits       []paddedCount // striped like the lock shards
	enqueued, applied   atomic.Uint64
	coalesced, rejected atomic.Uint64
	batches, snaps      atomic.Uint64
	walBytes            atomic.Int64

	errMu sync.Mutex
	errv  error // first durability error; nil again after a clean snapshot

	// Writer-goroutine state.
	pending   []Op
	sinceSnap int
}

type ctlReq struct {
	fn  func() error
	ack chan error
}

// New wraps an index in an in-memory engine (no durability) and starts
// its writer goroutine. The engine owns the index from here on: mutate it
// only through Insert/Delete, query it through CycleCount.
func New(ix csc.Counter, opts Options) *Engine {
	return start(ix, nil, 0, opts)
}

// Open recovers (or bootstraps) an engine from a store directory: the
// snapshot is loaded if one exists — bootstrap is only called for a fresh
// store — and WAL batches beyond it are replayed before serving starts.
// Every batch the returned engine applies is WAL-logged before it
// mutates the index.
func Open(dir string, bootstrap func() (csc.Counter, error), opts Options) (*Engine, error) {
	st, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	ix, seq, err := st.Recover(bootstrap)
	if err != nil {
		st.Close()
		return nil, err
	}
	return start(ix, st, seq, opts), nil
}

func start(ix csc.Counter, st *Store, seq uint64, opts Options) *Engine {
	opts.fill()
	lock := newStripedRW()
	e := &Engine{
		ix:      ix,
		n:       ix.Graph().NumVertices(),
		lock:    lock,
		opts:    opts,
		mail:    make(chan Op, opts.MailboxSize),
		ctl:     make(chan ctlReq),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		store:   st,
		queries: make([]paddedCount, len(lock.shards)),
		hits:    make([]paddedCount, len(lock.shards)),
	}
	if !opts.NoCache {
		e.cache = newReadCache(e.n)
	}
	e.seq.Store(seq)
	if st != nil {
		e.walBytes.Store(st.WALBytes())
	}
	go e.run()
	return e
}

// NumVertices returns the (fixed) vertex count served.
func (e *Engine) NumVertices() int { return e.n }

// Index exposes the underlying index. The caller must only read it, and
// only while no batch can be applying (after Flush with no concurrent
// enqueuers, or from a post-batch hook).
func (e *Engine) Index() csc.Counter { return e.ix }

// Seq returns the sequence number of the last applied batch.
func (e *Engine) Seq() uint64 { return e.seq.Load() }

// Err returns the first WAL/snapshot error, if any. A non-nil error
// means the engine keeps serving and applying in memory but durability
// is suspended: no further WAL appends happen (a partial WAL with a
// sequence gap would replay into silently wrong state), and only a
// successful Snapshot — which persists the full current state and
// truncates the WAL — restores durability and clears the error.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.errv
}

func (e *Engine) setErr(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	if e.errv == nil {
		e.errv = err
	}
	e.errMu.Unlock()
}

func (e *Engine) clearErr() {
	e.errMu.Lock()
	e.errv = nil
	e.errMu.Unlock()
}

// CycleCount answers SCCnt(v) inside a reader epoch: the length of the
// shortest cycles through v (bfscount.NoCycle when none, or when v is out
// of range) and their number. Safe from any goroutine, concurrently with
// updates. A cache hit — the vertex untouched since its last read — skips
// the label join entirely; a miss computes and refills inside the same
// epoch.
func (e *Engine) CycleCount(v int) (length int, count uint64) {
	return e.read(v, true)
}

// read is the one cached epoch read behind every CycleCount variant —
// client-facing (counted) and the monitor's internal reads (uncounted)
// share the bounds check, stripe lock discipline, and cache protocol.
func (e *Engine) read(v int, counted bool) (length int, count uint64) {
	if v < 0 || v >= e.n {
		return bfscount.NoCycle, 0
	}
	if counted {
		e.queries[uint32(v)&e.lock.mask].n.Add(1)
	}
	m := e.lock.rlock(uint32(v))
	length, count = e.readCached(v, counted)
	m.RUnlock()
	return length, count
}

// readCached is the cached read of one vertex. The caller must hold v's
// stripe read-lock. counted selects whether a hit lands in the client
// hit counter — the monitor's internal reads pass false so /stats
// describes client traffic only.
func (e *Engine) readCached(v int, counted bool) (length int, count uint64) {
	if e.cache != nil {
		if l, c, ok := e.cache.get(v); ok {
			if counted {
				e.hits[uint32(v)&e.lock.mask].n.Add(1)
			}
			return l, c
		}
	}
	length, count = e.ix.CycleCount(v)
	if e.cache != nil {
		e.cache.put(v, e.seq.Load(), length, count)
	}
	return length, count
}

// CycleCountBounded answers SCCnt(v) restricted to cycle lengths ≤
// maxLen, concurrently with updates. A valid cached answer is filtered
// against the bound in O(1); a miss runs the bounded join kernel without
// filling the cache (the bounded answer is partial information).
func (e *Engine) CycleCountBounded(v, maxLen int) (length int, count uint64) {
	if v < 0 || v >= e.n {
		return bfscount.NoCycle, 0
	}
	e.queries[uint32(v)&e.lock.mask].n.Add(1)
	m := e.lock.rlock(uint32(v))
	defer m.RUnlock()
	if e.cache != nil {
		if l, c, ok := e.cache.get(v); ok {
			e.hits[uint32(v)&e.lock.mask].n.Add(1)
			if l == bfscount.NoCycle || l > maxLen {
				return bfscount.NoCycle, 0
			}
			return l, c
		}
	}
	return e.ix.CycleCountBounded(v, maxLen)
}

// CycleCountMany evaluates SCCnt for every vertex of vs into the caller's
// buffers (vs[i]'s answer lands in lengths[i] and counts[i]), each read
// inside its own reader epoch through the cache. Out-of-range vertices
// report no cycle. This is the *client-facing* batch read: every vertex
// counts toward the Queries/CacheHits stats. The top-k monitor's rescore
// passes and warm scans use the same read protocol through the internal
// uncounted watchQuerier instead, so /stats keeps describing client
// traffic only.
func (e *Engine) CycleCountMany(vs []int, lengths []int, counts []uint64) {
	for i, v := range vs {
		lengths[i], counts[i] = e.read(v, true)
	}
}

// watchQuerier is the monitor's view of the engine: the same cached,
// epoch-protected reads as the public CycleCount*, minus the client
// query/hit counters — warm passes and post-batch rescores are internal
// bookkeeping, and /stats should describe client traffic only. Fills
// still land in the cache, which is the point: a rescored dirty vertex
// is a warm slot for the next client read.
type watchQuerier struct{ e *Engine }

func (q watchQuerier) NumVertices() int { return q.e.n }

func (q watchQuerier) CycleCount(v int) (length int, count uint64) {
	return q.e.read(v, false)
}

func (q watchQuerier) CycleCountMany(vs []int, lengths []int, counts []uint64) {
	for i, v := range vs {
		lengths[i], counts[i] = q.e.read(v, false)
	}
}

// Insert enqueues an edge insertion. It blocks while the mailbox is full
// (backpressure) and returns without waiting for the batch to apply; use
// Flush for read-your-writes.
func (e *Engine) Insert(a, b int) error { return e.EnqueueEdge(OpInsert, a, b) }

// Delete enqueues an edge deletion.
func (e *Engine) Delete(a, b int) error { return e.EnqueueEdge(OpDelete, a, b) }

// EnqueueEdge validates full-width vertex ids and mails one op. The
// range check runs before the Op's int32 narrowing, so an id ≥ 2³² from
// an untrusted client is rejected instead of wrapping onto a small valid
// vertex.
func (e *Engine) EnqueueEdge(kind OpKind, a, b int) error {
	if a < 0 || a >= e.n || b < 0 || b >= e.n {
		return graph.ErrVertexRange
	}
	return e.Enqueue(Op{Kind: kind, A: int32(a), B: int32(b)})
}

// Enqueue validates and mails one op. Redundant ops (inserting a present
// edge, deleting an absent one, insert+delete pairs in the same batch)
// are accepted here and coalesced away before the batch applies.
func (e *Engine) Enqueue(op Op) error {
	if op.Kind != OpInsert && op.Kind != OpDelete {
		return errors.New("engine: unknown op kind")
	}
	a, b := int(op.A), int(op.B)
	if a < 0 || a >= e.n || b < 0 || b >= e.n {
		return graph.ErrVertexRange
	}
	if a == b {
		return graph.ErrSelfLoop
	}
	if e.closed.Load() {
		return ErrClosed
	}
	e.enqueued.Add(1)
	select {
	case e.mail <- op:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

// Flush applies everything enqueued before the call and returns once it
// is queryable (and, with a store, WAL-durable).
func (e *Engine) Flush() { _ = e.do(nil) }

// Snapshot flushes and writes a full snapshot, truncating the WAL.
func (e *Engine) Snapshot() error {
	return e.do(func() error { return e.snapshotNow() })
}

// WriteTo flushes pending batches and serializes the index. It implements
// the same format as the index's own WriteTo; the write happens on the writer
// goroutine, so it sees a quiescent index while readers keep serving.
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	var n int64
	err := e.do(func() error {
		var werr error
		n, werr = e.ix.WriteTo(w)
		return werr
	})
	return n, err
}

// do runs fn on the writer goroutine after draining and applying the
// mailbox.
func (e *Engine) do(fn func() error) error {
	req := ctlReq{fn: fn, ack: make(chan error, 1)}
	select {
	case e.ctl <- req:
		return <-req.ack
	case <-e.done:
		return ErrClosed
	}
}

// OnBatch registers a post-batch hook: it runs on the writer goroutine
// after each batch's grace period ends, with the applied (coalesced) ops
// and the batch's dirty set — the sorted original-graph vertices whose
// label lists the batch mutated, which is exactly the set whose query
// answers can have changed. Hooks must not block for long — the mailbox
// stalls while they run — and must not mutate the engine. Register hooks
// before the first enqueue.
func (e *Engine) OnBatch(fn func(applied []Op, touched []int)) {
	e.hookMu.Lock()
	e.hooks = append(e.hooks, fn)
	e.hookMu.Unlock()
}

// WatchTopK attaches a continuously maintained top-k scoreboard: the
// monitor warms by scoring every vertex through the engine's cached,
// epoch-protected reads (parallelism from the Workers option, clamped to
// the vertex count) and then rides the post-batch hook, rescoring
// exactly each batch's dirty set. Because the rescore reads go through
// the engine, they also re-warm precisely the cache slots the batch
// expired — the next /cycle read of a dirty vertex is already a hit —
// without counting toward the Queries/CacheHits stats, which describe
// client traffic only. Attach before the first enqueue. The returned
// monitor's Score and Top are safe concurrently with updates; do not
// route updates through it.
func (e *Engine) WatchTopK(k int) *monitor.TopK {
	m := monitor.Watch(watchQuerier{e}, k, e.opts.Workers)
	e.OnBatch(func(_ []Op, dirty []int) { m.RescoreDirty(dirty) })
	return m
}

// Stats snapshots the engine counters. Index-size fields are read inside
// a reader epoch, so it is safe concurrently with updates.
func (e *Engine) Stats() Stats {
	var queries, hits uint64
	for i := range e.queries {
		queries += e.queries[i].n.Load()
		hits += e.hits[i].n.Load()
	}
	st := Stats{
		Queries:      queries,
		CacheHits:    hits,
		OpsEnqueued:  e.enqueued.Load(),
		OpsApplied:   e.applied.Load(),
		OpsCoalesced: e.coalesced.Load(),
		OpsRejected:  e.rejected.Load(),
		Batches:      e.batches.Load(),
		Seq:          e.seq.Load(),
		Snapshots:    e.snaps.Load(),
	}
	if e.store != nil {
		st.WALBytes = e.walBytes.Load()
	}
	if err := e.Err(); err != nil {
		st.Err = err.Error()
	}
	m := e.lock.rlock(0)
	st.Vertices = e.n
	st.Edges = e.ix.Graph().NumEdges()
	st.Entries = e.ix.EntryCount()
	st.LabelBytes = e.ix.Bytes()
	m.RUnlock()
	return st
}

// Close drains and applies the mailbox, syncs and closes the store, and
// stops the writer. It does not write a final snapshot (recovery replays
// the WAL); call Snapshot first for a fast next startup. Ops enqueued
// concurrently with Close may be dropped.
func (e *Engine) Close() error {
	e.closed.Store(true)
	e.closeOnce.Do(func() { close(e.quit) })
	<-e.done
	return e.Err()
}

// run is the writer goroutine: the only code that mutates the index.
func (e *Engine) run() {
	defer close(e.done)
	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flushAll := func() {
		for {
			e.drainMail()
			if len(e.pending) == 0 {
				break
			}
			e.applyPending()
		}
		stopTimer()
	}
	for {
		select {
		case op := <-e.mail:
			e.pending = append(e.pending, op)
			e.drainMail()
			switch {
			case len(e.pending) >= e.opts.MaxBatch || e.opts.FlushInterval < 0:
				e.applyPending()
				stopTimer()
			case timerC == nil:
				timer = time.NewTimer(e.opts.FlushInterval)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			e.applyPending()
		case req := <-e.ctl:
			flushAll()
			var err error
			if req.fn != nil {
				err = req.fn()
			}
			req.ack <- err
		case <-e.quit:
			flushAll()
			if e.store != nil {
				if err := e.store.Close(); err != nil {
					e.setErr(err)
				}
			}
			return
		}
	}
}

// drainMail moves immediately available ops into pending, up to MaxBatch.
func (e *Engine) drainMail() {
	for len(e.pending) < e.opts.MaxBatch {
		select {
		case op := <-e.mail:
			e.pending = append(e.pending, op)
		default:
			return
		}
	}
}

// applyPending coalesces the pending ops into their net batch, logs it,
// applies it under the grace period, and fires the post-batch hooks.
func (e *Engine) applyPending() {
	if len(e.pending) == 0 {
		return
	}
	batch := e.coalesce()
	e.coalesced.Add(uint64(len(e.pending) - len(batch)))
	e.pending = e.pending[:0]
	if len(batch) == 0 {
		return
	}
	seq := e.seq.Load() + 1
	// Once a WAL write has failed, stop appending: a WAL with a sequence
	// gap would replay into silently wrong state, which is worse than an
	// honestly suspended log (Err is surfaced; a successful Snapshot
	// resumes durability from a clean base).
	if e.store != nil && e.Err() == nil {
		if err := e.store.Append(seq, batch); err != nil {
			e.setErr(err)
		}
		e.walBytes.Store(e.store.WALBytes())
	}
	touched := e.apply(batch, seq)
	e.seq.Store(seq)
	e.batches.Add(1)
	e.applied.Add(uint64(len(batch)))
	e.hookMu.Lock()
	hooks := e.hooks
	e.hookMu.Unlock()
	for _, h := range hooks {
		h(batch, touched)
	}
	if e.store != nil && e.opts.SnapshotEvery > 0 {
		e.sinceSnap++
		if e.sinceSnap >= e.opts.SnapshotEvery {
			_ = e.snapshotNow()
		}
	}
}

// coalesce reduces pending to its net effect against the live graph:
// inserting a present edge or deleting an absent one drops, and
// insert/delete pairs of the same edge cancel, whichever order they
// arrived in. One op per surviving edge remains, in first-touch order.
// Reading the graph here is safe: only the writer mutates it, and
// concurrent readers never do.
func (e *Engine) coalesce() []Op {
	g := e.ix.Graph()
	base := make(map[uint64]bool, len(e.pending))
	eff := make(map[uint64]bool, len(e.pending))
	order := make([]uint64, 0, len(e.pending))
	for _, op := range e.pending {
		k := uint64(uint32(op.A))<<32 | uint64(uint32(op.B))
		cur, seen := eff[k]
		if !seen {
			cur = g.HasEdge(int(op.A), int(op.B))
			base[k] = cur
			eff[k] = cur
			order = append(order, k)
		}
		if want := op.Kind == OpInsert; want != cur {
			eff[k] = want
		}
	}
	batch := make([]Op, 0, len(order))
	for _, k := range order {
		if eff[k] == base[k] {
			continue
		}
		op := Op{Kind: OpDelete, A: int32(k >> 32), B: int32(uint32(k))}
		if eff[k] {
			op.Kind = OpInsert
		}
		batch = append(batch, op)
	}
	return batch
}

// batchOps converts mailbox ops into the index's batch representation.
func batchOps(batch []Op) []csc.EdgeOp {
	ops := make([]csc.EdgeOp, len(batch))
	for i, op := range batch {
		k := csc.OpInsert
		if op.Kind == OpDelete {
			k = csc.OpDelete
		}
		ops[i] = csc.EdgeOp{Kind: k, A: op.A, B: op.B}
	}
	return ops
}

// apply runs one batch inside the grace period through the index's batch
// planner — the sharded index applies independent per-shard update
// streams on UpdateWorkers goroutines and computes merge/split effects
// once for the whole batch — and returns the batch's dirty set: the
// sorted original-graph vertices whose labels it touched, which is
// exactly the set whose query answers can differ (csc.DirtyVertices).
// The result cache is expired for those vertices before the grace period
// ends, so no reader ever pairs a post-batch epoch with a pre-batch
// value.
func (e *Engine) apply(batch []Op, seq uint64) []int {
	e.lock.lockAll()
	st, err := e.ix.ApplyBatch(batchOps(batch), e.opts.UpdateWorkers)
	if err != nil {
		// Coalescing computed the batch against the live graph, so a
		// rejected batch is unreachable short of index corruption. Fall
		// back to per-op application so one bad op cannot take the whole
		// batch down with it.
		st = e.applyPerOp(batch)
	}
	dirty := csc.DirtyVertices(st)
	if e.cache != nil {
		e.cache.invalidate(dirty, seq)
	}
	e.lock.unlockAll()
	return dirty
}

// applyPerOp is the degraded path behind apply: one edge at a time,
// counting (instead of propagating) individually rejected ops. The
// aggregated TouchedOwners are the caller's only dirty-set source —
// cache invalidation and hook rescoring both derive from them — so
// every op that mutates labels must keep reporting its owners here.
func (e *Engine) applyPerOp(batch []Op) pll.UpdateStats {
	var agg pll.UpdateStats
	for _, op := range batch {
		var st pll.UpdateStats
		var err error
		if op.Kind == OpInsert {
			st, err = e.ix.InsertEdge(int(op.A), int(op.B))
		} else {
			st, err = e.ix.DeleteEdge(int(op.A), int(op.B))
		}
		if err != nil {
			e.rejected.Add(1)
			continue
		}
		agg.TouchedOwners = append(agg.TouchedOwners, st.TouchedOwners...)
	}
	return agg
}

// snapshotNow persists a snapshot at the current sequence number. It runs
// on the writer goroutine, which is the only mutator, so serialization
// reads a quiescent index without holding the grace-period lock: readers
// keep querying throughout.
func (e *Engine) snapshotNow() error {
	if e.store == nil {
		return errors.New("engine: no store configured")
	}
	if err := e.store.WriteSnapshot(e.seq.Load(), e.ix); err != nil {
		e.setErr(err)
		return err
	}
	e.walBytes.Store(e.store.WALBytes())
	e.sinceSnap = 0
	e.snaps.Add(1)
	// The snapshot persisted the complete current state and truncated the
	// WAL, so a durability suspension (failed earlier append) is healed.
	e.clearErr()
	return nil
}
