package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/obs"
)

// Observability surface of the HTTP layer:
//
//	GET /metrics      Prometheus text exposition of the engine registry,
//	                  plus the per-route request-latency histograms this
//	                  layer records
//	GET /debug/trace  recent batch-lifecycle traces as JSON, oldest
//	                  first (batches and out-of-band rebuild swaps)
//	GET /debug/pprof  the standard pprof handlers, mounted only with
//	                  Options.Pprof
//
// and, behind Options.AccessLog, one JSON line per request: timestamp,
// request id, method, path, matched route, status, duration, and bytes
// written. A /cycle query slower than Options.SlowQuery is additionally
// flagged slow with its vertex — to the access log when one is
// configured, to stderr otherwise.

// Options configures the optional observability of NewHandler. The zero
// value mounts /metrics and /debug/trace (they serve 404 when the engine
// has no registry / trace ring) and nothing else.
type Options struct {
	// AccessLog receives one JSON line per completed request. Nil
	// disables access logging. Writes are serialized by the handler.
	AccessLog io.Writer
	// SlowQuery flags /cycle reads at or above this duration: the access
	// line is marked slow and carries the queried vertex, and the line is
	// emitted even without AccessLog (to stderr). 0 disables.
	SlowQuery time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHandler mounts the serving API plus the observability surface over
// an engine. The per-route latency histograms register into the
// engine's metrics registry, so build at most one handler per engine.
func NewHandler(e *engine.Engine, watch *monitor.TopK, k int, opts Options) http.Handler {
	s := &server{
		e: e, watch: watch, k: k, start: time.Now(), opts: opts,
		slowOut: opts.AccessLog,
		boot:    fmt.Sprintf("%08x", uint32(time.Now().UnixNano())),
	}
	if s.slowOut == nil {
		s.slowOut = os.Stderr
	}
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"GET /cycle/{v}":      s.cycle,
		"GET /top":            s.top,
		"POST /edges":         s.edges(engine.OpInsert),
		"DELETE /edges":       s.edges(engine.OpDelete),
		"GET /stats":          s.stats,
		"GET /healthz":        s.healthz,
		"GET /cluster/shards": s.clusterShards,
		"GET /metrics":        s.metrics,
		"GET /debug/trace":    s.traces,
	}
	if reg := e.Metrics(); reg != nil {
		vec := reg.HistogramVec("cscd_http_request_seconds", "HTTP request latency by matched route", "route")
		s.routeNS = make(map[string]*obs.Histogram, len(routes))
		for pattern := range routes {
			s.routeNS[pattern] = vec.With(pattern)
		}
	}
	for pattern, h := range routes {
		mux.HandleFunc(pattern, h)
	}
	if opts.Pprof {
		// Index serves every /debug/pprof/{heap,goroutine,...} profile
		// itself; only the four special handlers need their own routes.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if opts.AccessLog == nil && opts.SlowQuery <= 0 && s.routeNS == nil {
		return mux // nothing to observe per-request
	}
	return s.instrument(mux)
}

// metrics serves the engine registry in Prometheus text exposition
// format 0.0.4. 404 when the engine was built without a registry.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	reg := s.e.Metrics()
	if reg == nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, 0, "metrics disabled (engine has no registry)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// traces serves the recent batch-lifecycle traces, oldest first. 404
// when tracing is disabled.
func (s *server) traces(w http.ResponseWriter, r *http.Request) {
	tr := s.e.Traces()
	if tr == nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, 0, "batch tracing disabled")
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// accessLine is one JSON access-log record.
type accessLine struct {
	Time      string  `json:"time"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Route     string  `json:"route,omitempty"`
	Status    int     `json:"status"`
	DurMS     float64 `json:"duration_ms"`
	Bytes     int64   `json:"bytes"`
	Slow      bool    `json:"slow,omitempty"`
	Vertex    string  `json:"vertex,omitempty"`
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps the mux with the per-request observability: route
// latency histogram, access log line, slow-query flagging.
func (s *server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := fmt.Sprintf("%s-%06d", s.boot, s.reqN.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sw, r)
		dur := time.Since(t0)
		_, route := mux.Handler(r)
		if h, ok := s.routeNS[route]; ok {
			h.Observe(dur.Nanoseconds())
		}
		slow := s.opts.SlowQuery > 0 && dur >= s.opts.SlowQuery &&
			strings.HasPrefix(r.URL.Path, "/cycle/")
		if s.opts.AccessLog == nil && !slow {
			return
		}
		line := accessLine{
			Time:      t0.UTC().Format(time.RFC3339Nano),
			RequestID: id,
			Method:    r.Method,
			Path:      r.URL.Path,
			Route:     route,
			Status:    sw.status,
			DurMS:     float64(dur.Microseconds()) / 1000,
			Bytes:     sw.bytes,
		}
		if slow {
			line.Slow = true
			line.Vertex = strings.TrimPrefix(r.URL.Path, "/cycle/")
		}
		out := s.opts.AccessLog
		if out == nil {
			out = s.slowOut
		}
		buf, err := json.Marshal(line)
		if err != nil {
			return
		}
		buf = append(buf, '\n')
		s.logMu.Lock()
		_, _ = out.Write(buf)
		s.logMu.Unlock()
	})
}
