package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/faultstore"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/serve"
)

func newServer(t *testing.T, n int, k int, dir string) (*engine.Engine, *httptest.Server) {
	t.Helper()
	bootstrap := func() (csc.Counter, error) {
		g := graph.New(n)
		x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
		return x, nil
	}
	var e *engine.Engine
	var err error
	opts := engine.Options{FlushInterval: -1}
	if dir != "" {
		e, err = engine.Open(dir, bootstrap, opts)
	} else {
		var x csc.Counter
		x, err = bootstrap()
		if err == nil {
			e = engine.New(x, opts)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	w := e.WatchTopK(k)
	srv := httptest.NewServer(serve.Handler(e, w, k))
	t.Cleanup(srv.Close)
	return e, srv
}

func do(t *testing.T, method, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestServeEndToEnd(t *testing.T) {
	_, srv := newServer(t, 10, 3, "")

	// Healthy from the start.
	if code, _ := do(t, "GET", srv.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz %d", code)
	}

	// Stream a triangle plus a chord, flushed for read-your-writes.
	code, body := do(t, "POST", srv.URL+"/edges?flush=1", serve.EdgesRequest{
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 1}},
	})
	if code != 200 {
		t.Fatalf("post edges: %d %v", code, body)
	}
	var enq int
	_ = json.Unmarshal(body["enqueued"], &enq)
	if enq != 4 {
		t.Fatalf("enqueued %d, want 4", enq)
	}

	// Query the cycle.
	code, body = do(t, "GET", srv.URL+"/cycle/0", nil)
	if code != 200 {
		t.Fatalf("cycle: %d", code)
	}
	var exists bool
	var length int
	_ = json.Unmarshal(body["exists"], &exists)
	_ = json.Unmarshal(body["length"], &length)
	if !exists || length != 3 {
		t.Fatalf("cycle/0 = %v", body)
	}

	// Top-k sees the 2-cycle vertices first (1 and 2 sit on cycles of
	// length 2 via the chord).
	code, body = do(t, "GET", srv.URL+"/top", nil)
	if code != 200 {
		t.Fatalf("top: %d", code)
	}
	var top []serve.CycleJSON
	_ = json.Unmarshal(body["top"], &top)
	if len(top) != 3 {
		t.Fatalf("top has %d rows, want 3: %v", len(top), top)
	}
	if top[0].Length != 2 {
		t.Fatalf("top[0] should be a 2-cycle vertex: %+v", top[0])
	}

	// Deletion via DELETE /edges.
	code, _ = do(t, "DELETE", srv.URL+"/edges?flush=1", serve.EdgesRequest{Edges: [][2]int{{2, 1}}})
	if code != 200 {
		t.Fatalf("delete edges: %d", code)
	}
	_, body = do(t, "GET", srv.URL+"/cycle/1", nil)
	_ = json.Unmarshal(body["length"], &length)
	if length != 3 {
		t.Fatalf("after chord deletion vertex 1 should be on the triangle, got %v", body)
	}

	// Bounded query: vertex 1 sits on the length-3 triangle only, so a
	// maxlen=2 screen reports no cycle while maxlen=3 reports it.
	_, body = do(t, "GET", srv.URL+"/cycle/1?maxlen=2", nil)
	exists = true
	_ = json.Unmarshal(body["exists"], &exists)
	if exists {
		t.Fatalf("maxlen=2 should screen out the triangle: %v", body)
	}
	_, body = do(t, "GET", srv.URL+"/cycle/1?maxlen=3", nil)
	_ = json.Unmarshal(body["exists"], &exists)
	_ = json.Unmarshal(body["length"], &length)
	if !exists || length != 3 {
		t.Fatalf("maxlen=3 should keep the triangle: %v", body)
	}
	if code, _ := do(t, "GET", srv.URL+"/cycle/1?maxlen=zero", nil); code != 400 {
		t.Fatalf("bad maxlen accepted: %d", code)
	}

	// Bad inputs.
	if code, _ := do(t, "GET", srv.URL+"/cycle/999", nil); code != 400 {
		t.Fatalf("out-of-range vertex: %d", code)
	}
	if code, _ := do(t, "GET", srv.URL+"/cycle/notanumber", nil); code != 400 {
		t.Fatalf("non-integer vertex: %d", code)
	}
	code, body = do(t, "POST", srv.URL+"/edges", serve.EdgesRequest{Edges: [][2]int{{5, 5}, {0, 99}}})
	if code != 200 {
		t.Fatalf("rejected edges post: %d", code)
	}
	var rejected []serve.EdgeError
	_ = json.Unmarshal(body["rejected"], &rejected)
	if len(rejected) != 2 {
		t.Fatalf("rejected %v, want self-loop and range errors", rejected)
	}

	// Stats counts what happened.
	_, body = do(t, "GET", srv.URL+"/stats", nil)
	var applied uint64
	_ = json.Unmarshal(body["ops_applied"], &applied)
	if applied != 5 {
		t.Fatalf("stats ops_applied = %s, want 5", body["ops_applied"])
	}
}

// A daemon killed without shutdown must come back serving the exact same
// answers from snapshot+WAL.
func TestServeRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e1, srv1 := newServer(t, 12, 3, dir)

	r := rand.New(rand.NewSource(3))
	var edges [][2]int
	for len(edges) < 20 {
		u, v := r.Intn(12), r.Intn(12)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	if code, _ := do(t, "POST", srv1.URL+"/edges?flush=1", serve.EdgesRequest{Edges: edges}); code != 200 {
		t.Fatal("post failed")
	}
	want := make([]string, 12)
	for v := 0; v < 12; v++ {
		_, body := do(t, "GET", srv1.URL+fmt.Sprintf("/cycle/%d", v), nil)
		want[v] = fmt.Sprint(body)
	}
	srv1.Close()
	// "Kill" the daemon: Close persists nothing new (no final snapshot;
	// the WAL fsyncs before each apply) — it only releases the store
	// lock, as process death would.
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	_, srv2 := newServer(t, 12, 3, dir)
	for v := 0; v < 12; v++ {
		_, body := do(t, "GET", srv2.URL+fmt.Sprintf("/cycle/%d", v), nil)
		if got := fmt.Sprint(body); got != want[v] {
			t.Fatalf("vertex %d after restart: %s, want %s", v, got, want[v])
		}
	}
}

// The HTTP surface under concurrent clients (meaningful with -race).
func TestServeConcurrentClients(t *testing.T) {
	_, srv := newServer(t, 30, 3, "")
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				switch r.Intn(3) {
				case 0:
					u, v := r.Intn(30), r.Intn(30)
					if u == v {
						continue
					}
					kind := "POST"
					if r.Intn(2) == 0 {
						kind = "DELETE"
					}
					do(t, kind, srv.URL+"/edges", serve.EdgesRequest{Edges: [][2]int{{u, v}}})
				case 1:
					do(t, "GET", srv.URL+fmt.Sprintf("/cycle/%d", r.Intn(30)), nil)
				default:
					do(t, "GET", srv.URL+"/top", nil)
				}
			}
		}(int64(c))
	}
	wg.Wait()
}

// TestMalformedRequests is the table-driven sweep of every route's input
// validation: malformed vertex ids (non-numeric, negative, overflowing,
// out of range) and malformed ?maxlen= must come back 400 with a JSON
// error body — never a 500, a panic, or a 404 that clients would retry
// as "not yet there" — and routes with inputs intact answer their normal
// codes. Each request must also land one access-log line carrying the
// response status.
func TestMalformedRequests(t *testing.T) {
	g := graph.New(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	e := engine.New(x, engine.Options{FlushInterval: -1})
	t.Cleanup(func() { e.Close() })

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	srv := httptest.NewServer(serve.NewHandler(e, nil, 0, serve.Options{
		AccessLog: lockedWriter{mu: &logMu, w: &logBuf},
	}))
	t.Cleanup(srv.Close)

	cases := []struct {
		name     string
		method   string
		path     string
		body     any
		want     int
		wantCode string // machine-readable error code on ≥400 responses
	}{
		{"cycle ok", "GET", "/cycle/0", nil, 200, ""},
		{"cycle bounded ok", "GET", "/cycle/0?maxlen=3", nil, 200, ""},
		{"cycle non-numeric", "GET", "/cycle/notanumber", nil, 400, serve.CodeBadVertex},
		{"cycle float", "GET", "/cycle/1.5", nil, 400, serve.CodeBadVertex},
		{"cycle negative", "GET", "/cycle/-1", nil, 400, serve.CodeBadVertex},
		{"cycle out of range", "GET", "/cycle/8", nil, 400, serve.CodeBadVertex},
		{"cycle far out of range", "GET", "/cycle/999999", nil, 400, serve.CodeBadVertex},
		{"cycle overflow", "GET", "/cycle/99999999999999999999", nil, 400, serve.CodeBadVertex},
		{"maxlen non-numeric", "GET", "/cycle/0?maxlen=abc", nil, 400, serve.CodeBadMaxLen},
		{"maxlen zero", "GET", "/cycle/0?maxlen=0", nil, 400, serve.CodeBadMaxLen},
		{"maxlen negative", "GET", "/cycle/0?maxlen=-2", nil, 400, serve.CodeBadMaxLen},
		{"maxlen overflow", "GET", "/cycle/0?maxlen=99999999999999999999", nil, 400, serve.CodeBadMaxLen},
		{"maxlen on bad vertex", "GET", "/cycle/-5?maxlen=abc", nil, 400, serve.CodeBadVertex},
		{"edges bad json", "POST", "/edges", "not json", 400, serve.CodeBadBody},
		{"edges delete bad json", "DELETE", "/edges", "not json", 400, serve.CodeBadBody},
		{"top without watch", "GET", "/top", nil, 404, serve.CodeNotFound},
		{"stats", "GET", "/stats", nil, 200, ""},
		{"healthz", "GET", "/healthz", nil, 200, ""},
		{"metrics without registry", "GET", "/metrics", nil, 404, serve.CodeNotFound},
		{"trace without ring", "GET", "/debug/trace", nil, 404, serve.CodeNotFound},
		{"cluster shards on monolithic", "GET", "/cluster/shards", nil, 404, serve.CodeNotFound},
	}
	for _, tc := range cases {
		var rd *bytes.Reader
		if s, ok := tc.body.(string); ok {
			rd = bytes.NewReader([]byte(s)) // raw, deliberately not JSON-encoded
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var body map[string]json.RawMessage
		if derr := json.NewDecoder(resp.Body).Decode(&body); derr != nil {
			t.Errorf("%s: non-JSON response body: %v", tc.name, derr)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.want, body)
		}
		if resp.StatusCode >= 400 {
			if _, ok := body["error"]; !ok {
				t.Errorf("%s: %d response carries no error field: %v", tc.name, resp.StatusCode, body)
			}
			var code string
			_ = json.Unmarshal(body["code"], &code)
			if code != tc.wantCode {
				t.Errorf("%s: machine-readable code %q, want %q", tc.name, code, tc.wantCode)
			}
		}
	}

	// Every request above must have produced an access line with its
	// status — error responses included. The log write happens after the
	// handler returns, so poll briefly for the tail to land.
	deadline := time.Now().Add(2 * time.Second)
	var lines []string
	for {
		logMu.Lock()
		lines = strings.Split(strings.TrimSpace(logBuf.String()), "\n")
		logMu.Unlock()
		if len(lines) >= len(cases) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(lines) != len(cases) {
		t.Fatalf("access log has %d lines, want %d", len(lines), len(cases))
	}
	for i, tc := range cases {
		var line struct {
			Status int    `json:"status"`
			Method string `json:"method"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &line); err != nil {
			t.Fatalf("access line %d is not JSON: %v (%q)", i, err, lines[i])
		}
		if line.Status != tc.want || line.Method != tc.method {
			t.Errorf("%s: access line records %s %d, want %s %d",
				tc.name, line.Method, line.Status, tc.method, tc.want)
		}
	}
}

// Overload answers must carry the same machine-readable shape as the
// validation errors: 429 under the reject policy comes back with code
// "overloaded", a Retry-After header, and the enqueued prefix.
func TestOverloadedErrorShape(t *testing.T) {
	g := graph.New(6)
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	e := engine.New(x, engine.Options{
		FlushInterval: -1,
		MailboxSize:   1,
		Admission:     engine.AdmitReject,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.OnBatch(func([]engine.Op, []int) {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	t.Cleanup(func() {
		close(release)
		e.Close()
	})
	srv := httptest.NewServer(serve.Handler(e, nil, 0))
	t.Cleanup(srv.Close)

	// First batch occupies the writer (parked in the hook), second fills
	// the 1-slot mailbox, third must bounce with 429.
	if code, _ := do(t, "POST", srv.URL+"/edges", serve.EdgesRequest{Edges: [][2]int{{0, 1}}}); code != 200 {
		t.Fatalf("first enqueue: %d", code)
	}
	<-entered
	if code, _ := do(t, "POST", srv.URL+"/edges", serve.EdgesRequest{Edges: [][2]int{{1, 2}}}); code != 200 {
		t.Fatalf("second enqueue: %d", code)
	}
	body, _ := json.Marshal(serve.EdgesRequest{Edges: [][2]int{{2, 3}}})
	resp, err := http.Post(srv.URL+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.EdgesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON 429 body: %v", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, out)
	}
	if out.Code != serve.CodeOverloaded || out.RetryAfterSeconds < 1 || out.Error == "" {
		t.Fatalf("429 shape: %+v", out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
}

// Read-only degradation (durability lost) must answer 503 with code
// "read_only" and a Retry-After, not a bare error string.
func TestReadOnlyErrorShape(t *testing.T) {
	fio := faultstore.New()
	bootstrap := func() (csc.Counter, error) {
		g := graph.New(6)
		x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
		return x, nil
	}
	e, err := engine.OpenIO(t.TempDir(), fio, bootstrap, engine.Options{FlushInterval: -1, WALRetry: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	srv := httptest.NewServer(serve.Handler(e, nil, 0))
	t.Cleanup(srv.Close)

	// The disk breaks; the next applied batch degrades the engine.
	fio.Inject(faultstore.Fault{Point: faultstore.WALWrite, Err: faultstore.ErrInjected})
	if code, _ := do(t, "POST", srv.URL+"/edges?flush=1", serve.EdgesRequest{Edges: [][2]int{{0, 1}}}); code != 200 {
		t.Fatalf("degrading batch enqueue: %d", code)
	}
	body, _ := json.Marshal(serve.EdgesRequest{Edges: [][2]int{{1, 2}}})
	resp, err := http.Post(srv.URL+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.EdgesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON 503 body: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%+v)", resp.StatusCode, out)
	}
	if out.Code != serve.CodeReadOnly || out.RetryAfterSeconds < 1 {
		t.Fatalf("503 shape: %+v", out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
	// Reads keep serving while degraded.
	if code, _ := do(t, "GET", srv.URL+"/cycle/0", nil); code != 200 {
		t.Fatalf("read while read-only: %d", code)
	}
}

// lockedWriter serializes test reads of the access-log buffer against
// the handler's writes.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
