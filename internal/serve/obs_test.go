package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/csc"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

// syncBuffer is a goroutine-safe access-log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// obsServer builds a sharded engine with metrics and the full
// observability handler over it.
func obsServer(t *testing.T, opts serve.Options) (*engine.Engine, *httptest.Server, *obs.Registry) {
	t.Helper()
	g := graph.New(8)
	for k := 0; k < 8; k++ {
		if err := g.AddEdge(k, (k+1)%8); err != nil {
			t.Fatal(err)
		}
	}
	x, _ := csc.BuildSharded(g, csc.Options{})
	reg := obs.New()
	e := engine.New(x, engine.Options{FlushInterval: -1, Metrics: reg})
	t.Cleanup(func() { e.Close() })
	w := e.WatchTopK(3)
	srv := httptest.NewServer(serve.NewHandler(e, w, 3, opts))
	t.Cleanup(srv.Close)
	return e, srv, reg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// checkExposition validates Prometheus text format invariants: unique
// family names, every sample line under a seen family, cumulative
// histogram buckets monotone with _count equal to the +Inf bucket. The
// same checks cmd/promcheck runs in CI.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	seen := map[string]bool{}
	type histState struct {
		last    uint64
		lastLE  float64
		inf     uint64
		hasInf  bool
		count   uint64
		hasCnt  bool
		samples int
	}
	hists := map[string]*histState{} // name+labels (minus le)
	sc := bufio.NewScanner(strings.NewReader(text))
	var curFam string
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			name := parts[2]
			if seen[name] {
				t.Fatalf("duplicate family %q", name)
			}
			seen[name] = true
			curFam = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if curFam == "" || (name != curFam && base != curFam) {
			t.Fatalf("sample %q outside its family (current %q)", line, curFam)
		}
		if strings.HasSuffix(name, "_bucket") {
			key, le, val := parseBucket(t, line)
			h := hists[key]
			if h == nil {
				h = &histState{lastLE: -1}
				hists[key] = h
			}
			if val < h.last {
				t.Fatalf("non-monotone buckets at %q: %d < %d", line, val, h.last)
			}
			if le != le { // NaN guard; le is +Inf for the last bucket
				t.Fatalf("bad le in %q", line)
			}
			if le <= h.lastLE {
				t.Fatalf("non-increasing le at %q", line)
			}
			h.last, h.lastLE = val, le
			h.samples++
			if le > 1e300 {
				h.inf, h.hasInf = val, true
			}
		}
		if strings.HasSuffix(name, "_count") && !strings.Contains(line, "le=") {
			f := strings.Fields(line)
			v, err := strconv.ParseUint(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad count %q", line)
			}
			key := strings.TrimSuffix(name, "_count") + labelsOf(line)
			if h := hists[key]; h != nil {
				h.count, h.hasCnt = v, true
			}
		}
	}
	for key, h := range hists {
		if !h.hasInf {
			t.Fatalf("histogram %q has no +Inf bucket", key)
		}
		if h.hasCnt && h.count != h.inf {
			t.Fatalf("histogram %q: _count %d != +Inf bucket %d", key, h.count, h.inf)
		}
	}
}

func parseBucket(t *testing.T, line string) (key string, le float64, val uint64) {
	t.Helper()
	name := line[:strings.Index(line, "{")]
	rest := line[strings.Index(line, "{")+1 : strings.LastIndex(line, "}")]
	var labels []string
	for _, l := range strings.Split(rest, ",") {
		if strings.HasPrefix(l, "le=") {
			raw := strings.Trim(strings.TrimPrefix(l, "le="), `"`)
			if raw == "+Inf" {
				le = math.Inf(1)
			} else {
				var err error
				le, err = strconv.ParseFloat(raw, 64)
				if err != nil {
					t.Fatalf("bad le %q in %q", raw, line)
				}
			}
			continue
		}
		labels = append(labels, l)
	}
	sort.Strings(labels)
	f := strings.Fields(line)
	v, err := strconv.ParseUint(f[len(f)-1], 10, 64)
	if err != nil {
		t.Fatalf("bad bucket value %q", line)
	}
	return strings.TrimSuffix(name, "_bucket") + "{" + strings.Join(labels, ",") + "}", le, v
}

func labelsOf(line string) string {
	i := strings.Index(line, "{")
	if i < 0 {
		return "{}"
	}
	return line[i : strings.LastIndex(line, "}")+1]
}

// TestMetricsEndpoint: /metrics serves a valid exposition carrying the
// engine, WAL-less, and HTTP-route families, and its counters match
// /stats exactly.
func TestMetricsEndpoint(t *testing.T) {
	_, srv, _ := obsServer(t, serve.Options{})

	if code, _ := get(t, srv.URL+"/cycle/0"); code != 200 {
		t.Fatal("cycle query failed")
	}
	if code, _ := get(t, srv.URL+"/cycle/1"); code != 200 {
		t.Fatal("cycle query failed")
	}
	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics %d: %s", code, body)
	}
	checkExposition(t, body)
	for _, want := range []string{
		"cscd_queries_total",
		"cscd_query_join_seconds_bucket",
		"cscd_http_request_seconds_bucket{route=\"GET /cycle/{v}\"",
		"cscd_shard_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// No drift: scrape again and compare the query counter against /stats.
	_, statsBody := get(t, srv.URL+"/stats")
	var st struct {
		Queries uint64 `json:"queries"`
	}
	if err := json.Unmarshal([]byte(statsBody), &st); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(body, fmt.Sprintf("cscd_queries_total %d", st.Queries)) {
		t.Fatalf("metrics/stats drift: stats=%d, metrics:\n%s", st.Queries,
			body[:strings.Index(body, "cscd_query")])
	}
}

// TestDebugTrace: /debug/trace serves the batch timelines as JSON.
func TestDebugTrace(t *testing.T) {
	e, srv, _ := obsServer(t, serve.Options{})
	if err := e.Insert(3, 0); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	code, body := get(t, srv.URL+"/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace %d: %s", code, body)
	}
	var traces []obs.BatchTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	tr := traces[len(traces)-1]
	if tr.Kind != "batch" || len(tr.Stages) != 6 || tr.TotalNS <= 0 {
		t.Fatalf("bad trace %+v", tr)
	}
}

// TestAccessLogAndSlowQuery: each request logs one JSON line with the
// expected fields, and a query over the (tiny) slow threshold is flagged
// with its vertex.
func TestAccessLogAndSlowQuery(t *testing.T) {
	var logBuf syncBuffer
	_, srv, _ := obsServer(t, serve.Options{AccessLog: &logBuf, SlowQuery: time.Nanosecond})

	if code, _ := get(t, srv.URL+"/cycle/2"); code != 200 {
		t.Fatal("cycle query failed")
	}
	if code, _ := get(t, srv.URL+"/stats"); code != 200 {
		t.Fatal("stats failed")
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 access lines, got %d: %s", len(lines), logBuf.String())
	}
	var first struct {
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Route     string  `json:"route"`
		Status    int     `json:"status"`
		DurMS     float64 `json:"duration_ms"`
		RequestID string  `json:"request_id"`
		Slow      bool    `json:"slow"`
		Vertex    string  `json:"vertex"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Method != "GET" || first.Path != "/cycle/2" || first.Status != 200 ||
		first.RequestID == "" || first.DurMS <= 0 {
		t.Fatalf("bad access line: %+v", first)
	}
	// Every /cycle read exceeds a 1ns threshold: flagged slow with vertex.
	if !first.Slow || first.Vertex != "2" {
		t.Fatalf("slow query not flagged: %+v", first)
	}
	var second struct {
		Route string `json:"route"`
		Slow  bool   `json:"slow"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second.Route != "GET /stats" || second.Slow {
		t.Fatalf("bad second line: %+v", second)
	}
}

// TestHealthzDegradedShards: /healthz names the stale shard slots while
// an out-of-band rebuild is pending.
func TestHealthzDegradedShards(t *testing.T) {
	g := graph.New(12)
	for k := 0; k < 6; k++ {
		if err := g.AddEdge(k, (k+1)%6); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(6+k, 6+(k+1)%6); err != nil {
			t.Fatal(err)
		}
	}
	x, _ := csc.BuildSharded(g, csc.Options{})
	reg := obs.New()
	// A huge flush interval parks the deferral: nothing completes until
	// we flush, so the stale window is observable.
	e := engine.New(x, engine.Options{FlushInterval: -1, UpdateWorkers: 1,
		OOBRebuildThreshold: 8, Metrics: reg})
	defer e.Close()
	srv := httptest.NewServer(serve.NewHandler(e, nil, 0, serve.Options{}))
	defer srv.Close()

	for _, op := range [][3]int{{1, 0, 1}, {1, 11, 6}, {0, 0, 6}, {0, 11, 1}} {
		var err error
		if op[0] == 1 {
			err = e.Delete(op[1], op[2])
		} else {
			err = e.Insert(op[1], op[2])
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	// Between Flush and WaitRebuilds the merged component may still be
	// rebuilding out-of-band; poll briefly for the degraded window (it
	// can legitimately close fast on an idle machine).
	sawDegraded := false
	var health struct {
		Status         string `json:"status"`
		DegradedShards []int  `json:"degraded_shards"`
	}
	for i := 0; i < 100 && !sawDegraded; i++ {
		_, body := get(t, srv.URL+"/healthz")
		if err := json.Unmarshal([]byte(body), &health); err != nil {
			t.Fatal(err)
		}
		if health.Status == "degraded" && len(health.DegradedShards) > 0 {
			sawDegraded = true
		}
	}
	if err := e.WaitRebuilds(); err != nil {
		t.Fatal(err)
	}
	if !sawDegraded {
		t.Skip("oob window closed before a poll landed (fast machine); field shape covered elsewhere")
	}
	_, body := get(t, srv.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.DegradedShards) != 0 {
		t.Fatalf("still degraded after WaitRebuilds: %+v", health)
	}
}

// TestPprofMount: pprof serves only when opted in.
func TestPprofMount(t *testing.T) {
	_, srvOff, _ := obsServer(t, serve.Options{})
	if code, _ := get(t, srvOff.URL+"/debug/pprof/"); code != 404 {
		t.Fatalf("pprof mounted without opt-in: %d", code)
	}
	_, srvOn, _ := obsServer(t, serve.Options{Pprof: true})
	if code, body := get(t, srvOn.URL+"/debug/pprof/goroutine?debug=1"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Fatalf("pprof not serving: %d", code)
	}
}
